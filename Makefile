# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# build/vet/race-test sequence.

GO ?= go

.PHONY: build test race vet fmt check cover bench bench-smoke serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build fmt vet race

# Coverage over every package, with a per-function summary; CI runs this.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Reproduction + serving benchmarks (compact report; see DESIGN.md §5–§7).
bench:
	$(GO) test -bench . -benchmem .

# One-shot run of the planner/executor benchmarks (DESIGN.md §10) so perf
# regressions surface in PR logs without a full bench sweep. The TopN
# number should stay well under the sort-everything baseline (≥5×).
bench-smoke:
	$(GO) test -run xxx -bench 'TopNSelect|SortEverythingBaseline|BenchmarkHashJoin|StreamingSelect' -benchtime 1x -benchmem .

# Run the HTTP server on :8080 with the demo movie universe.
serve:
	$(GO) run ./cmd/crowdserve
