# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# build/vet/race-test sequence.

GO ?= go

.PHONY: build test race vet fmt check cover bench serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build fmt vet race

# Coverage over every package, with a per-function summary; CI runs this.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Reproduction + serving benchmarks (compact report; see DESIGN.md §5–§7).
bench:
	$(GO) test -bench . -benchmem .

# Run the HTTP server on :8080 with the demo movie universe.
serve:
	$(GO) run ./cmd/crowdserve
