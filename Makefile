# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# build/vet/race-test sequence.

GO ?= go

.PHONY: build test race vet check bench serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet race

# Reproduction + serving benchmarks (compact report; see DESIGN.md §5–§7).
bench:
	$(GO) test -bench . -benchmem .

# Run the HTTP server on :8080 with the demo movie universe.
serve:
	$(GO) run ./cmd/crowdserve
