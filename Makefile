# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# build/vet/race-test sequence.

GO ?= go

# Minimum total statement coverage (percent) `make cover` enforces.
COVER_FLOOR ?= 70
# Where bench-guard writes the measured numbers (the CI artifact). Point
# it at BENCH_baseline.json to refresh the committed baseline.
BENCH_GUARD_OUT ?= bench-current.json
# Allowed fractional slowdown vs BENCH_baseline.json. The committed
# baseline encodes one machine class; after a runner/hardware change,
# refresh the baseline (see BENCH_GUARD_OUT) rather than widening this.
BENCH_GUARD_THRESHOLD ?= 0.30

.PHONY: build test race vet fmt check cover bench bench-smoke bench-guard staticcheck serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build fmt vet race

# Coverage over every package; fails below COVER_FLOOR% total statement
# coverage so the wall only ever moves up. CI runs this.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { print (t+0 >= f+0) ? 1 : 0 }'); \
	if [ "$$ok" != "1" ]; then echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; fi

# Reproduction + serving benchmarks (compact report; see DESIGN.md §5–§7).
bench:
	$(GO) test -bench . -benchmem .

# One-shot run of the planner/executor, batching, and workload-subsystem
# benchmarks (DESIGN.md §10–§11, §13) so perf regressions surface in PR
# logs without a full bench sweep. The TopN number should stay well under
# the sort-everything baseline (≥5×); BatchedElicitation should report a
# ≥2× charge reduction; CachedSelect should sit ≥20× under the uncached
# baseline; SpeculativeHitMerge should report columns-per-charge of 2.
bench-smoke:
	$(GO) test -run xxx -bench 'TopNSelect|SortEverythingBaseline|BenchmarkHashJoin|StreamingSelect|BatchedElicitation|PointLookup|RangeScan|CachedSelect|UncachedSelectBaseline|SpeculativeHitMerge|ParallelScanFilter|ParallelHashJoin|ScanDuringFill|VectorizedFilter|PerRowFilterBaseline|CompactedScan|InstrumentedSelect' -benchtime 1x -benchmem -cpu 1,4 .

# Bench-regression wall: run the guarded benchmarks with enough
# repetitions for a stable minimum, emit the numbers as JSON
# ($(BENCH_GUARD_OUT), uploaded as a CI artifact), and fail if
# BenchmarkTopNSelect, BenchmarkWALReplay, BenchmarkPointLookup,
# BenchmarkRangeScan, BenchmarkCachedSelect,
# BenchmarkSpeculativeHitMerge, BenchmarkParallelScanFilter,
# BenchmarkParallelHashJoin, BenchmarkScanDuringFill,
# BenchmarkVectorizedFilter, BenchmarkCompactedScan,
# BenchmarkInstrumentedSelect or BenchmarkStreamingSelect regressed >30%
# against the committed
# BENCH_baseline.json. -cpu 1,4 runs every guarded bench serial AND
# morsel-parallel: benchguard strips the -N suffix and keeps the minimum
# line, so the baseline (measured serially) can only be beaten by the
# parallel run, never tripped by it — while the bench log shows the
# dop-4 speedup for the Parallel* pair.
bench-guard:
	$(GO) test -run xxx -bench 'BenchmarkTopNSelect$$|BenchmarkWALReplay$$|BenchmarkPointLookup$$|BenchmarkRangeScan$$|BenchmarkCachedSelect$$|BenchmarkSpeculativeHitMerge$$|BenchmarkParallelScanFilter$$|BenchmarkParallelHashJoin$$|BenchmarkScanDuringFill$$|BenchmarkVectorizedFilter$$|BenchmarkCompactedScan$$|BenchmarkInstrumentedSelect$$|BenchmarkStreamingSelect$$' -benchtime 5x -count 3 -cpu 1,4 . | tee bench-guard.txt
	$(GO) run ./cmd/benchguard -input bench-guard.txt -baseline BENCH_baseline.json \
		-out $(BENCH_GUARD_OUT) -require BenchmarkTopNSelect,BenchmarkWALReplay,BenchmarkPointLookup,BenchmarkRangeScan,BenchmarkCachedSelect,BenchmarkSpeculativeHitMerge,BenchmarkParallelScanFilter,BenchmarkParallelHashJoin,BenchmarkScanDuringFill,BenchmarkVectorizedFilter,BenchmarkCompactedScan,BenchmarkInstrumentedSelect,BenchmarkStreamingSelect \
		-threshold $(BENCH_GUARD_THRESHOLD)

# Static analysis beyond go vet; pinned in CI (see ci.yml), best-effort
# locally if the binary is on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; CI runs the pinned version"; fi

# Run the HTTP server on :8080 with the demo movie universe.
serve:
	$(GO) run ./cmd/crowdserve
