// Batched HIT elicitation benchmarks: the cost-lever claim of DESIGN.md
// §11. Four expansions of one table that arrive together should engage
// (and charge) the crowd marketplace once when batching is on, versus
// once per column when it is off.
package crowddb_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/storage"
)

const batchBenchRows = 40

var batchBenchColumns = []string{"comedy", "drama", "action", "horror"}

// batchBenchDB builds an in-memory DB over a simulated marketplace with
// one table and four registered CROWD-method expandable columns.
// window=0 disables batching (the per-job baseline).
func batchBenchDB(tb testing.TB, seed int64, window time.Duration) *crowddb.DB {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 40}, rng)
	items := func(question string) ([]crowd.Item, error) {
		out := make([]crowd.Item, batchBenchRows)
		for i := range out {
			out[i] = crowd.Item{ID: i, Truth: i%2 == 0, Popularity: 1}
		}
		return out, nil
	}
	db, err := crowddb.Open(crowddb.Options{
		Service:     crowddb.NewSimulatedCrowd(pop, items, rng),
		BatchWindow: window,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		tb.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < batchBenchRows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%02d", i))); err != nil {
			tb.Fatal(err)
		}
	}
	for _, col := range batchBenchColumns {
		db.RegisterExpandable("movies", col, storage.KindBool,
			crowddb.ExpandOptions{Method: "CROWD", Assignments: 5})
	}
	return db
}

// expandAllColumns submits the four expansions back to back (inside one
// batching window when batching is on), waits for them, and returns the
// ledger: Jobs is the number of crowd charges the marketplace issued.
func expandAllColumns(tb testing.TB, db *crowddb.DB) crowddb.LedgerTotals {
	tb.Helper()
	var handles []*crowddb.Job
	for _, col := range batchBenchColumns {
		_, job, err := db.ExecSQLAsync(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col))
		if err != nil {
			tb.Fatalf("%s: %v", col, err)
		}
		if job == nil {
			tb.Fatalf("%s: no expansion job", col)
		}
		handles = append(handles, job)
	}
	for i, job := range handles {
		if _, err := job.Wait(context.Background()); err != nil {
			tb.Fatalf("job %d: %v", i, err)
		}
	}
	return db.Ledger()
}

// TestBatchedElicitationHalvesCharges is the PR's acceptance bar: 4
// concurrent expansions of one table must produce at least 2× fewer
// crowd charges under batching than under per-job issuing (here: 1 vs 4).
func TestBatchedElicitationHalvesCharges(t *testing.T) {
	batched := expandAllColumns(t, batchBenchDB(t, 42, 30*time.Millisecond))
	baseline := expandAllColumns(t, batchBenchDB(t, 42, 0))

	if baseline.Jobs != len(batchBenchColumns) {
		t.Fatalf("per-job baseline issued %d charges, want %d", baseline.Jobs, len(batchBenchColumns))
	}
	if batched.Jobs*2 > baseline.Jobs {
		t.Fatalf("batching issued %d charges vs baseline %d: less than the required 2x reduction",
			batched.Jobs, baseline.Jobs)
	}
	if batched.Judgments == 0 || batched.Cost == 0 {
		t.Fatalf("batched run did no crowd work: %+v", batched)
	}
}

// BenchmarkBatchedElicitation reports the charge amortization and crowd
// wall-clock of batching 4 same-table expansions into shared HIT groups,
// against the per-job baseline.
func BenchmarkBatchedElicitation(b *testing.B) {
	var batched, baseline crowddb.LedgerTotals
	for i := 0; i < b.N; i++ {
		batched = expandAllColumns(b, batchBenchDB(b, int64(100+i), 20*time.Millisecond))
		baseline = expandAllColumns(b, batchBenchDB(b, int64(100+i), 0))
	}
	b.ReportMetric(float64(batched.Jobs), "charges-batched")
	b.ReportMetric(float64(baseline.Jobs), "charges-perjob")
	b.ReportMetric(float64(baseline.Jobs)/float64(batched.Jobs), "charge-reduction-x")
	// Crowd wall-clock: batched columns share one job's duration instead
	// of queueing four jobs' worth of marketplace minutes.
	b.ReportMetric(batched.Minutes, "crowd-min-batched")
	b.ReportMetric(baseline.Minutes, "crowd-min-perjob")
}
