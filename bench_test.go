// Benchmarks regenerating every table and figure of the paper at CI scale,
// plus ablation benches for the design choices called out in DESIGN.md §6.
//
// Each benchmark reports the experiment's headline quality metric via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report. Larger-scale runs are the job of cmd/experiments.
package crowddb_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"crowddb/internal/dataset"
	"crowddb/internal/eval"
	"crowddb/internal/experiments"
	"crowddb/internal/space"
	"crowddb/internal/svm"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.TinyOptions())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1DirectCrowd reproduces Table 1 (Experiments 1–3).
func BenchmarkTable1DirectCrowd(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var acc1, acc2, acc3 float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunCrowdExperiments()
		if err != nil {
			b.Fatal(err)
		}
		acc1 = res.Experiments[0].PctCorrect()
		acc2 = res.Experiments[1].PctCorrect()
		acc3 = res.Experiments[2].PctCorrect()
	}
	b.ReportMetric(acc1, "exp1-acc")
	b.ReportMetric(acc2, "exp2-acc")
	b.ReportMetric(acc3, "exp3-acc")
}

// BenchmarkTable2NearestNeighbors reproduces Table 2.
func BenchmarkTable2NearestNeighbors(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable2(5)
		if err != nil {
			b.Fatal(err)
		}
		hits = 0
		for _, l := range res.Lists {
			hits += l.GroupHits
		}
	}
	b.ReportMetric(float64(hits), "group-hits-of-15")
}

// BenchmarkFigure3BoostOverTime reproduces Experiments 4–6 over time.
func BenchmarkFigure3BoostOverTime(b *testing.B) {
	env := benchEnvironment(b)
	t1, err := env.RunCrowdExperiments()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var finalBoost float64
	for i := 0; i < b.N; i++ {
		figs, err := env.RunBoostExperiments(t1)
		if err != nil {
			b.Fatal(err)
		}
		finalBoost = float64(figs.Series[1].FinalBoostCorrect)
	}
	b.ReportMetric(finalBoost, "exp5-final-boost-correct")
}

// BenchmarkFigure4BoostOverMoney reproduces the money axis of Figure 4:
// the boosted correct count after spending roughly an eighth of the full
// crowd budget (the paper's "538 correct after $2.82" moment).
func BenchmarkFigure4BoostOverMoney(b *testing.B) {
	env := benchEnvironment(b)
	t1, err := env.RunCrowdExperiments()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var earlyBoost, earlyCost float64
	for i := 0; i < b.N; i++ {
		figs, err := env.RunBoostExperiments(t1)
		if err != nil {
			b.Fatal(err)
		}
		series := figs.Series[0] // Exp 4 boosts the open population
		budget := series.Points[len(series.Points)-1].Cost / 8
		for _, p := range series.Points {
			if p.Cost >= budget {
				earlyBoost, earlyCost = float64(p.BoostCorrect), p.Cost
				break
			}
		}
	}
	b.ReportMetric(earlyBoost, "exp4-early-boost-correct")
	b.ReportMetric(earlyCost, "at-cost-dollars")
}

// BenchmarkTable3SmallSamples reproduces Table 3.
func BenchmarkTable3SmallSamples(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var percep, meta float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		percep = res.MeanPerceptual[len(res.MeanPerceptual)-1]
		meta = res.MeanMetadata[len(res.MeanMetadata)-1]
	}
	b.ReportMetric(percep, "perceptual-gmean-n40")
	b.ReportMetric(meta, "metadata-gmean-n40")
}

// BenchmarkTable4QuestionableHITs reproduces Table 4.
func BenchmarkTable4QuestionableHITs(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var prec, rec float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.MeanPerceptual) - 1
		prec = res.MeanPerceptual[last].Precision
		rec = res.MeanPerceptual[last].Recall
	}
	b.ReportMetric(prec, "precision-x20")
	b.ReportMetric(rec, "recall-x20")
}

// BenchmarkTable5Restaurants reproduces Table 5.
func BenchmarkTable5Restaurants(b *testing.B) {
	opt := experiments.TinyOptions()
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(opt)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Mean[len(res.Mean)-1]
	}
	b.ReportMetric(mean, "gmean-n40")
}

// BenchmarkTable6BoardGames reproduces Table 6.
func BenchmarkTable6BoardGames(b *testing.B) {
	opt := experiments.TinyOptions()
	b.ResetTimer()
	var percep, factual float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable6(opt)
		if err != nil {
			b.Fatal(err)
		}
		percep, factual = res.PerceptualVsFactualMeans()
	}
	b.ReportMetric(percep, "perceptual-gmean")
	b.ReportMetric(factual, "factual-gmean")
}

// BenchmarkTSVMVsSVM reproduces the §5 runtime comparison.
func BenchmarkTSVMVsSVM(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTSVMComparison("Comedy", 20)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.SlowdownFactor()
	}
	b.ReportMetric(slowdown, "tsvm-slowdown-x")
}

// BenchmarkSpaceTraining measures the cost of building the perceptual
// space itself (the paper reports ~2 h for 103M ratings on a notebook; the
// metric here is ratings processed per second).
func BenchmarkSpaceTraining(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 3))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := space.TrainEuclidean(u.Ratings, cfg); err != nil {
			b.Fatal(err)
		}
	}
	perIter := float64(len(u.Ratings.Ratings) * cfg.Epochs)
	b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds(), "rating-updates/s")
}

// --- ablations (DESIGN.md §6) ---

// gmeanOn evaluates a 20/20 small-sample SVM on a given space.
func gmeanOn(b *testing.B, sp *space.Space, labels []bool, seed int64) float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, v := range labels {
		if i >= sp.NumItems() {
			break
		}
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	n := 20
	var X [][]float64
	var y []bool
	train := map[int]bool{}
	for i := 0; i < n; i++ {
		X = append(X, sp.Vector(pos[i]))
		y = append(y, true)
		train[pos[i]] = true
		X = append(X, sp.Vector(neg[i]))
		y = append(y, false)
		train[neg[i]] = true
	}
	model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	var conf eval.Confusion
	for i, v := range labels {
		if i >= sp.NumItems() || train[i] {
			continue
		}
		conf.Observe(model.Predict(sp.Vector(i)), v)
	}
	return conf.GMean()
}

// BenchmarkAblationEuclideanVsSVD contrasts the paper's Euclidean
// embedding with the dot-product SVD space on genre extraction.
func BenchmarkAblationEuclideanVsSVD(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 20
	labels := u.Categories["Comedy"].Reference
	b.ResetTimer()
	var gEuc, gSVD float64
	for i := 0; i < b.N; i++ {
		em, _, err := space.TrainEuclidean(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm, _, err := space.TrainSVD(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gEuc = gmeanOn(b, space.FromModel(em), labels, 7)
		gSVD = gmeanOn(b, space.FromModel(sm), labels, 7)
	}
	b.ReportMetric(gEuc, "euclidean-gmean")
	b.ReportMetric(gSVD, "svd-gmean")
}

// BenchmarkAblationDimensionality sweeps the space dimensionality d
// (the paper: quality is stable once d is "large enough").
func BenchmarkAblationDimensionality(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	labels := u.Categories["Comedy"].Reference
	dims := []int{4, 16, 48}
	results := make([]float64, len(dims))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for di, d := range dims {
			cfg := space.DefaultConfig()
			cfg.Dims = d
			cfg.Epochs = 20
			m, _, err := space.TrainEuclidean(u.Ratings, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[di] = gmeanOn(b, space.FromModel(m), labels, 7)
		}
	}
	b.ReportMetric(results[0], "gmean-d4")
	b.ReportMetric(results[1], "gmean-d16")
	b.ReportMetric(results[2], "gmean-d48")
}

// BenchmarkAblationRegularization sweeps λ (the paper: λ = 0.02 works
// across data sets and the exact value hardly matters).
func BenchmarkAblationRegularization(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	labels := u.Categories["Comedy"].Reference
	lambdas := []float64{0, 0.02, 0.2}
	results := make([]float64, len(lambdas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for li, lam := range lambdas {
			cfg := space.DefaultConfig()
			cfg.Dims = 16
			cfg.Epochs = 20
			cfg.Lambda = lam
			m, _, err := space.TrainEuclidean(u.Ratings, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[li] = gmeanOn(b, space.FromModel(m), labels, 7)
		}
	}
	b.ReportMetric(results[0], "gmean-lambda0")
	b.ReportMetric(results[1], "gmean-lambda0.02")
	b.ReportMetric(results[2], "gmean-lambda0.2")
}

// BenchmarkAblationSGDvsALS contrasts the SGD and ALS trainers of the
// dot-product model on held-out RMSE.
func BenchmarkAblationSGDvsALS(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test := u.Ratings.Split(0.2, rng)
	cfg := space.DefaultConfig()
	cfg.Dims = 8
	cfg.Epochs = 10
	alsCfg := cfg
	alsCfg.Epochs = 4
	b.ResetTimer()
	var rmseSGD, rmseALS float64
	for i := 0; i < b.N; i++ {
		sgd, _, err := space.TrainSVD(train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		als, _, err := space.TrainSVDALS(train, alsCfg)
		if err != nil {
			b.Fatal(err)
		}
		rmseSGD = sgd.RMSE(test.Ratings)
		rmseALS = als.RMSE(test.Ratings)
	}
	b.ReportMetric(rmseSGD, "sgd-test-rmse")
	b.ReportMetric(rmseALS, "als-test-rmse")
}

// BenchmarkAblationKernel contrasts the RBF kernel (the paper's choice)
// with a linear kernel for the genre extractor.
func BenchmarkAblationKernel(b *testing.B) {
	env := benchEnvironment(b)
	labels := env.U.Categories["Comedy"].Reference
	sp := env.Space
	var pos, neg []int
	for i, v := range labels {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	b.ResetTimer()
	var gRBF, gLin float64
	for i := 0; i < b.N; i++ {
		for _, kernel := range []string{"rbf", "linear"} {
			rng := rand.New(rand.NewSource(13))
			rng.Shuffle(len(pos), func(a, c int) { pos[a], pos[c] = pos[c], pos[a] })
			rng.Shuffle(len(neg), func(a, c int) { neg[a], neg[c] = neg[c], neg[a] })
			var X [][]float64
			var y []bool
			train := map[int]bool{}
			for k := 0; k < 20; k++ {
				X = append(X, sp.Vector(pos[k]))
				y = append(y, true)
				train[pos[k]] = true
				X = append(X, sp.Vector(neg[k]))
				y = append(y, false)
				train[neg[k]] = true
			}
			cfg := svm.SVCConfig{C: 2, Seed: 13}
			if kernel == "linear" {
				cfg.Kernel = svm.LinearKernel{}
			}
			model, err := svm.TrainSVC(X, y, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var conf eval.Confusion
			for idx, v := range labels {
				if train[idx] {
					continue
				}
				conf.Observe(model.Predict(sp.Vector(idx)), v)
			}
			if kernel == "rbf" {
				gRBF = conf.GMean()
			} else {
				gLin = conf.GMean()
			}
		}
	}
	b.ReportMetric(gRBF, "rbf-gmean")
	b.ReportMetric(gLin, "linear-gmean")
}

// BenchmarkAblationParallelSGD contrasts sequential SGD with the DSGD
// parallel trainer (paper §4.2: "parallelization techniques are quite
// easy to exploit").
func BenchmarkAblationParallelSGD(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 10
	b.ResetTimer()
	var rmseSeq, rmsePar float64
	var seqNs, parNs int64
	for i := 0; i < b.N; i++ {
		t0 := nowNano()
		_, sStats, err := space.TrainEuclidean(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1 := nowNano()
		_, pStats, err := space.TrainEuclideanParallel(u.Ratings, cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		t2 := nowNano()
		rmseSeq, rmsePar = sStats.FinalRMSE(), pStats.FinalRMSE()
		seqNs += t1 - t0
		parNs += t2 - t1
	}
	b.ReportMetric(rmseSeq, "seq-rmse")
	b.ReportMetric(rmsePar, "dsgd-rmse")
	if parNs > 0 {
		b.ReportMetric(float64(seqNs)/float64(parNs), "dsgd-speedup-x")
	}
}

func nowNano() int64 { return time.Now().UnixNano() }
