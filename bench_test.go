// Benchmarks regenerating every table and figure of the paper at CI scale,
// plus ablation benches for the design choices called out in DESIGN.md §6.
//
// Each benchmark reports the experiment's headline quality metric via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report. Larger-scale runs are the job of cmd/experiments.
package crowddb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/engine"
	"crowddb/internal/engine/exec"
	"crowddb/internal/engine/plan"
	"crowddb/internal/eval"
	"crowddb/internal/experiments"
	"crowddb/internal/server"
	"crowddb/internal/space"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	"crowddb/internal/svm"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.TinyOptions())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1DirectCrowd reproduces Table 1 (Experiments 1–3).
func BenchmarkTable1DirectCrowd(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var acc1, acc2, acc3 float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunCrowdExperiments()
		if err != nil {
			b.Fatal(err)
		}
		acc1 = res.Experiments[0].PctCorrect()
		acc2 = res.Experiments[1].PctCorrect()
		acc3 = res.Experiments[2].PctCorrect()
	}
	b.ReportMetric(acc1, "exp1-acc")
	b.ReportMetric(acc2, "exp2-acc")
	b.ReportMetric(acc3, "exp3-acc")
}

// BenchmarkTable2NearestNeighbors reproduces Table 2.
func BenchmarkTable2NearestNeighbors(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable2(5)
		if err != nil {
			b.Fatal(err)
		}
		hits = 0
		for _, l := range res.Lists {
			hits += l.GroupHits
		}
	}
	b.ReportMetric(float64(hits), "group-hits-of-15")
}

// BenchmarkFigure3BoostOverTime reproduces Experiments 4–6 over time.
func BenchmarkFigure3BoostOverTime(b *testing.B) {
	env := benchEnvironment(b)
	t1, err := env.RunCrowdExperiments()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var finalBoost float64
	for i := 0; i < b.N; i++ {
		figs, err := env.RunBoostExperiments(t1)
		if err != nil {
			b.Fatal(err)
		}
		finalBoost = float64(figs.Series[1].FinalBoostCorrect)
	}
	b.ReportMetric(finalBoost, "exp5-final-boost-correct")
}

// BenchmarkFigure4BoostOverMoney reproduces the money axis of Figure 4:
// the boosted correct count after spending roughly an eighth of the full
// crowd budget (the paper's "538 correct after $2.82" moment).
func BenchmarkFigure4BoostOverMoney(b *testing.B) {
	env := benchEnvironment(b)
	t1, err := env.RunCrowdExperiments()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var earlyBoost, earlyCost float64
	for i := 0; i < b.N; i++ {
		figs, err := env.RunBoostExperiments(t1)
		if err != nil {
			b.Fatal(err)
		}
		series := figs.Series[0] // Exp 4 boosts the open population
		budget := series.Points[len(series.Points)-1].Cost / 8
		for _, p := range series.Points {
			if p.Cost >= budget {
				earlyBoost, earlyCost = float64(p.BoostCorrect), p.Cost
				break
			}
		}
	}
	b.ReportMetric(earlyBoost, "exp4-early-boost-correct")
	b.ReportMetric(earlyCost, "at-cost-dollars")
}

// BenchmarkTable3SmallSamples reproduces Table 3.
func BenchmarkTable3SmallSamples(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var percep, meta float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		percep = res.MeanPerceptual[len(res.MeanPerceptual)-1]
		meta = res.MeanMetadata[len(res.MeanMetadata)-1]
	}
	b.ReportMetric(percep, "perceptual-gmean-n40")
	b.ReportMetric(meta, "metadata-gmean-n40")
}

// BenchmarkTable4QuestionableHITs reproduces Table 4.
func BenchmarkTable4QuestionableHITs(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var prec, rec float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.MeanPerceptual) - 1
		prec = res.MeanPerceptual[last].Precision
		rec = res.MeanPerceptual[last].Recall
	}
	b.ReportMetric(prec, "precision-x20")
	b.ReportMetric(rec, "recall-x20")
}

// BenchmarkTable5Restaurants reproduces Table 5.
func BenchmarkTable5Restaurants(b *testing.B) {
	opt := experiments.TinyOptions()
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(opt)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Mean[len(res.Mean)-1]
	}
	b.ReportMetric(mean, "gmean-n40")
}

// BenchmarkTable6BoardGames reproduces Table 6.
func BenchmarkTable6BoardGames(b *testing.B) {
	opt := experiments.TinyOptions()
	b.ResetTimer()
	var percep, factual float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable6(opt)
		if err != nil {
			b.Fatal(err)
		}
		percep, factual = res.PerceptualVsFactualMeans()
	}
	b.ReportMetric(percep, "perceptual-gmean")
	b.ReportMetric(factual, "factual-gmean")
}

// BenchmarkTSVMVsSVM reproduces the §5 runtime comparison.
func BenchmarkTSVMVsSVM(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTSVMComparison("Comedy", 20)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.SlowdownFactor()
	}
	b.ReportMetric(slowdown, "tsvm-slowdown-x")
}

// BenchmarkSpaceTraining measures the cost of building the perceptual
// space itself (the paper reports ~2 h for 103M ratings on a notebook; the
// metric here is ratings processed per second).
func BenchmarkSpaceTraining(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 3))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := space.TrainEuclidean(u.Ratings, cfg); err != nil {
			b.Fatal(err)
		}
	}
	perIter := float64(len(u.Ratings.Ratings) * cfg.Epochs)
	b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds(), "rating-updates/s")
}

// --- ablations (DESIGN.md §6) ---

// gmeanOn evaluates a 20/20 small-sample SVM on a given space.
func gmeanOn(b *testing.B, sp *space.Space, labels []bool, seed int64) float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, v := range labels {
		if i >= sp.NumItems() {
			break
		}
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	n := 20
	var X [][]float64
	var y []bool
	train := map[int]bool{}
	for i := 0; i < n; i++ {
		X = append(X, sp.Vector(pos[i]))
		y = append(y, true)
		train[pos[i]] = true
		X = append(X, sp.Vector(neg[i]))
		y = append(y, false)
		train[neg[i]] = true
	}
	model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	var conf eval.Confusion
	for i, v := range labels {
		if i >= sp.NumItems() || train[i] {
			continue
		}
		conf.Observe(model.Predict(sp.Vector(i)), v)
	}
	return conf.GMean()
}

// BenchmarkAblationEuclideanVsSVD contrasts the paper's Euclidean
// embedding with the dot-product SVD space on genre extraction.
func BenchmarkAblationEuclideanVsSVD(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 20
	labels := u.Categories["Comedy"].Reference
	b.ResetTimer()
	var gEuc, gSVD float64
	for i := 0; i < b.N; i++ {
		em, _, err := space.TrainEuclidean(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm, _, err := space.TrainSVD(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gEuc = gmeanOn(b, space.FromModel(em), labels, 7)
		gSVD = gmeanOn(b, space.FromModel(sm), labels, 7)
	}
	b.ReportMetric(gEuc, "euclidean-gmean")
	b.ReportMetric(gSVD, "svd-gmean")
}

// BenchmarkAblationDimensionality sweeps the space dimensionality d
// (the paper: quality is stable once d is "large enough").
func BenchmarkAblationDimensionality(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	labels := u.Categories["Comedy"].Reference
	dims := []int{4, 16, 48}
	results := make([]float64, len(dims))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for di, d := range dims {
			cfg := space.DefaultConfig()
			cfg.Dims = d
			cfg.Epochs = 20
			m, _, err := space.TrainEuclidean(u.Ratings, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[di] = gmeanOn(b, space.FromModel(m), labels, 7)
		}
	}
	b.ReportMetric(results[0], "gmean-d4")
	b.ReportMetric(results[1], "gmean-d16")
	b.ReportMetric(results[2], "gmean-d48")
}

// BenchmarkAblationRegularization sweeps λ (the paper: λ = 0.02 works
// across data sets and the exact value hardly matters).
func BenchmarkAblationRegularization(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	labels := u.Categories["Comedy"].Reference
	lambdas := []float64{0, 0.02, 0.2}
	results := make([]float64, len(lambdas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for li, lam := range lambdas {
			cfg := space.DefaultConfig()
			cfg.Dims = 16
			cfg.Epochs = 20
			cfg.Lambda = lam
			m, _, err := space.TrainEuclidean(u.Ratings, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[li] = gmeanOn(b, space.FromModel(m), labels, 7)
		}
	}
	b.ReportMetric(results[0], "gmean-lambda0")
	b.ReportMetric(results[1], "gmean-lambda0.02")
	b.ReportMetric(results[2], "gmean-lambda0.2")
}

// BenchmarkAblationSGDvsALS contrasts the SGD and ALS trainers of the
// dot-product model on held-out RMSE.
func BenchmarkAblationSGDvsALS(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test := u.Ratings.Split(0.2, rng)
	cfg := space.DefaultConfig()
	cfg.Dims = 8
	cfg.Epochs = 10
	alsCfg := cfg
	alsCfg.Epochs = 4
	b.ResetTimer()
	var rmseSGD, rmseALS float64
	for i := 0; i < b.N; i++ {
		sgd, _, err := space.TrainSVD(train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		als, _, err := space.TrainSVDALS(train, alsCfg)
		if err != nil {
			b.Fatal(err)
		}
		rmseSGD = sgd.RMSE(test.Ratings)
		rmseALS = als.RMSE(test.Ratings)
	}
	b.ReportMetric(rmseSGD, "sgd-test-rmse")
	b.ReportMetric(rmseALS, "als-test-rmse")
}

// BenchmarkAblationKernel contrasts the RBF kernel (the paper's choice)
// with a linear kernel for the genre extractor.
func BenchmarkAblationKernel(b *testing.B) {
	env := benchEnvironment(b)
	labels := env.U.Categories["Comedy"].Reference
	sp := env.Space
	var pos, neg []int
	for i, v := range labels {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	b.ResetTimer()
	var gRBF, gLin float64
	for i := 0; i < b.N; i++ {
		for _, kernel := range []string{"rbf", "linear"} {
			rng := rand.New(rand.NewSource(13))
			rng.Shuffle(len(pos), func(a, c int) { pos[a], pos[c] = pos[c], pos[a] })
			rng.Shuffle(len(neg), func(a, c int) { neg[a], neg[c] = neg[c], neg[a] })
			var X [][]float64
			var y []bool
			train := map[int]bool{}
			for k := 0; k < 20; k++ {
				X = append(X, sp.Vector(pos[k]))
				y = append(y, true)
				train[pos[k]] = true
				X = append(X, sp.Vector(neg[k]))
				y = append(y, false)
				train[neg[k]] = true
			}
			cfg := svm.SVCConfig{C: 2, Seed: 13}
			if kernel == "linear" {
				cfg.Kernel = svm.LinearKernel{}
			}
			model, err := svm.TrainSVC(X, y, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var conf eval.Confusion
			for idx, v := range labels {
				if train[idx] {
					continue
				}
				conf.Observe(model.Predict(sp.Vector(idx)), v)
			}
			if kernel == "rbf" {
				gRBF = conf.GMean()
			} else {
				gLin = conf.GMean()
			}
		}
	}
	b.ReportMetric(gRBF, "rbf-gmean")
	b.ReportMetric(gLin, "linear-gmean")
}

// BenchmarkAblationParallelSGD contrasts sequential SGD with the DSGD
// parallel trainer (paper §4.2: "parallelization techniques are quite
// easy to exploit").
func BenchmarkAblationParallelSGD(b *testing.B) {
	u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 5))
	if err != nil {
		b.Fatal(err)
	}
	cfg := space.DefaultConfig()
	cfg.Dims = 16
	cfg.Epochs = 10
	b.ResetTimer()
	var rmseSeq, rmsePar float64
	var seqNs, parNs int64
	for i := 0; i < b.N; i++ {
		t0 := nowNano()
		_, sStats, err := space.TrainEuclidean(u.Ratings, cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1 := nowNano()
		_, pStats, err := space.TrainEuclideanParallel(u.Ratings, cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		t2 := nowNano()
		rmseSeq, rmsePar = sStats.FinalRMSE(), pStats.FinalRMSE()
		seqNs += t1 - t0
		parNs += t2 - t1
	}
	b.ReportMetric(rmseSeq, "seq-rmse")
	b.ReportMetric(rmsePar, "dsgd-rmse")
	if parNs > 0 {
		b.ReportMetric(float64(seqNs)/float64(parNs), "dsgd-speedup-x")
	}
}

func nowNano() int64 { return time.Now().UnixNano() }

// --- concurrent serving (ISSUE 1: async scheduler + query server) ---

// benchServeDB builds a 1000-row movie table with no crowd service —
// the serving benches exercise the pure read path.
func benchServeDB(b *testing.B) *crowddb.DB {
	b.Helper()
	db := crowddb.New(nil)
	b.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%04d", i)), storage.Int(int64(1950+i%70))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

const benchSelectSQL = `SELECT COUNT(*) FROM movies WHERE year > 1990`

// runConcurrentSelect fires b.N queries from gor goroutines. When
// serialize is true every query additionally takes one global mutex,
// emulating a single-mutex DB. On multi-core hardware the RWMutex path
// scales with cores; on one core the two converge (reads are CPU-bound).
func runConcurrentSelect(b *testing.B, gor int, serialize bool) {
	db := benchServeDB(b)
	var global sync.Mutex
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if serialize {
					global.Lock()
				}
				_, _, err := db.ExecSQL(benchSelectSQL)
				if serialize {
					global.Unlock()
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
}

// sleepingService is a JudgmentService whose Collect takes real
// wall-clock time, standing in for human crowd latency.
type sleepingService struct{ latency time.Duration }

func (s *sleepingService) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	time.Sleep(s.latency)
	res := &crowd.RunResult{DurationMinutes: 1}
	for _, id := range itemIDs {
		for a := 0; a < cfg.AssignmentsPerItem; a++ {
			res.Records = append(res.Records, crowd.Record{ItemID: id, WorkerID: a, Answer: crowd.Positive})
		}
	}
	res.TotalCost = float64(len(res.Records)) * cfg.PayPerHIT / float64(cfg.ItemsPerHIT)
	return res, nil
}

// runSelectDuringExpansion measures how many reads gor goroutines
// complete while one crowd expansion is in flight. This is the paper's
// pain point: crowd latency must not block the read path. With
// serialize=true the expanding query holds the same global mutex every
// read takes (the seed's single-mutex discipline), so readers complete
// ~0 queries until the crowd finishes; the async scheduler keeps them
// flowing. The headline metric is reads completed per expansion window.
func runSelectDuringExpansion(b *testing.B, gor int, serialize bool) {
	db := crowddb.New(&sleepingService{latency: 20 * time.Millisecond})
	b.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%04d", i)), storage.Int(int64(1950+i%70))); err != nil {
			b.Fatal(err)
		}
	}

	var global sync.Mutex
	exec := func(sql string) error {
		if serialize {
			global.Lock()
			defer global.Unlock()
		}
		_, _, err := db.ExecSQL(sql)
		return err
	}

	var reads atomic.Int64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		col := fmt.Sprintf("genre_%d", i)
		db.RegisterExpandable("movies", col, crowddb.KindBool,
			crowddb.ExpandOptions{Method: "CROWD"})

		// One client triggers the expansion; gor readers hammer live
		// columns until it completes. Readers only start counting once
		// the expanding query is actually underway (in the serialized
		// baseline: once it holds the global mutex), so the metric is
		// strictly "reads completed during the expansion".
		expStarted := make(chan struct{})
		expDone := make(chan struct{})
		go func() {
			defer close(expDone)
			if serialize {
				global.Lock()
				defer global.Unlock()
			}
			close(expStarted)
			if _, _, err := db.ExecSQL(fmt.Sprintf(`SELECT COUNT(*) FROM movies WHERE %s = true`, col)); err != nil {
				b.Error(err)
			}
		}()
		<-expStarted
		var wg sync.WaitGroup
		for g := 0; g < gor; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-expDone:
						return
					default:
					}
					if err := exec(benchSelectSQL); err != nil {
						b.Error(err)
						return
					}
					reads.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(reads.Load())/float64(b.N), "reads-per-expansion")
	b.ReportMetric(float64(reads.Load())/time.Since(start).Seconds(), "reads/s")
}

// BenchmarkConcurrentSelect measures aggregate read throughput at 8 and
// 64 goroutines under the catalog-level RWMutex design: pure reads
// ("idle") and reads racing an in-flight crowd expansion
// ("during-expansion" — the acceptance metric, >2× the single-mutex
// baseline's reads-per-expansion at 8 goroutines).
func BenchmarkConcurrentSelect(b *testing.B) {
	for _, gor := range []int{8, 64} {
		b.Run(fmt.Sprintf("goroutines=%d/idle", gor), func(b *testing.B) {
			runConcurrentSelect(b, gor, false)
		})
		b.Run(fmt.Sprintf("goroutines=%d/during-expansion", gor), func(b *testing.B) {
			runSelectDuringExpansion(b, gor, false)
		})
	}
}

// BenchmarkSerializedSelectBaseline is the same workload behind one
// global mutex — the seed's locking discipline. Compare metrics against
// BenchmarkConcurrentSelect at the same goroutine count.
func BenchmarkSerializedSelectBaseline(b *testing.B) {
	for _, gor := range []int{8, 64} {
		b.Run(fmt.Sprintf("goroutines=%d/idle", gor), func(b *testing.B) {
			runConcurrentSelect(b, gor, true)
		})
		b.Run(fmt.Sprintf("goroutines=%d/during-expansion", gor), func(b *testing.B) {
			runSelectDuringExpansion(b, gor, true)
		})
	}
}

// BenchmarkServerQueryRoundTrip measures one full HTTP round-trip of
// POST /query against an in-process server, at 8 concurrent clients.
func BenchmarkServerQueryRoundTrip(b *testing.B) {
	db := benchServeDB(b)
	ts := httptest.NewServer(server.New(db, server.Config{MaxInflight: 128}).Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{"sql": benchSelectSQL})

	const clients = 8
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "requests/s")
}

// BenchmarkWALReplay measures cold-start recovery: rebuilding a database
// from a 10k-mutation WAL (no snapshot — the worst case). The acceptance
// bar is well under 1s per replay; a snapshot makes it cheaper still.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	db, err := crowddb.Open(crowddb.Options{DataDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	const mutations = 10000
	for i := 0; i < mutations; i++ {
		switch {
		case i%10 == 9: // every 10th mutation is a point update
			if err := tbl.Set(i/2%1000, 1, storage.Text(fmt.Sprintf("renamed-%d", i))); err != nil {
				b.Fatal(err)
			}
		default:
			if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%d", i)), storage.Int(int64(1900+i%120))); err != nil {
				b.Fatal(err)
			}
		}
	}
	wantRows := tbl.NumRows()
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rdb, err := crowddb.Open(crowddb.Options{DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		rt, ok := rdb.Catalog().Get("movies")
		if !ok || rt.NumRows() != wantRows {
			b.Fatalf("replay lost rows: %d", rt.NumRows())
		}
		if err := rdb.Close(); err != nil {
			b.Fatal(err)
		}
	}
	perReplay := time.Since(start).Seconds() / float64(b.N)
	b.ReportMetric(perReplay*1000, "ms/replay-10k")
	if perReplay >= 1.0 {
		b.Fatalf("replaying a 10k-mutation log took %.2fs, acceptance bar is <1s", perReplay)
	}
}

// --- Planner / streaming-executor benchmarks (ISSUE 3) ---
//
// BenchmarkTopNSelect is the headline: ORDER BY + LIMIT over 1M rows
// through the TopN heap, vs BenchmarkSortEverythingBaseline which runs
// the pre-planner execution order (full stable sort of every matching
// row, truncate, project) over the same data. The acceptance bar is a
// ≥5× gap with ≈0 allocations per row on the scan side.

const topNRows = 1_000_000

var (
	bigEngineOnce sync.Once
	bigEngine     *engine.Engine
	bigEngineErr  error
)

func topNEngine(b *testing.B) *engine.Engine {
	b.Helper()
	bigEngineOnce.Do(func() {
		eng := engine.New(storage.NewCatalog())
		if _, err := eng.ExecSQL(`CREATE TABLE big (id INTEGER, score FLOAT)`); err != nil {
			bigEngineErr = err
			return
		}
		tbl, _ := eng.Catalog().Get("big")
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < topNRows; i++ {
			if err := tbl.Insert(storage.Int(int64(i)), storage.Float(rng.Float64()*1000)); err != nil {
				bigEngineErr = err
				return
			}
		}
		bigEngine = eng
	})
	if bigEngineErr != nil {
		b.Fatal(bigEngineErr)
	}
	return bigEngine
}

func BenchmarkTopNSelect(b *testing.B) {
	eng := topNEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The id tiebreak forces the TopN heap: a bare `score DESC` would
		// ride the big_score index once indexedBigEngine has run, turning
		// later -count iterations into a different (index) benchmark.
		res, err := eng.ExecSQL(`SELECT id, score FROM big ORDER BY score DESC, id LIMIT 10`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.ReportMetric(float64(topNRows), "rows-scanned/op")
}

// BenchmarkSortEverythingBaseline hand-assembles the old execution
// order — full sort of all rows, then truncate, then project — on the
// new iterator infrastructure, as the comparison point for the TopN
// speedup.
func BenchmarkSortEverythingBaseline(b *testing.B) {
	eng := topNEngine(b)
	stmt, err := sqlparse.Parse(`SELECT id, score FROM big ORDER BY score DESC`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := plan.Build(stmt.(*sqlparse.SelectStmt), eng.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		// Sort → Limit → Project is exactly the pre-planner pipeline
		// (sort everything, truncate, project the survivors).
		proj := p.Root.(*plan.Project)
		proj.Input = &plan.Limit{Input: proj.Input, N: 10}
		it, err := exec.Build(p.Root)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := exec.Drain(it)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

var (
	joinEngineOnce sync.Once
	joinEngine     *engine.Engine
	joinEngineErr  error
)

// BenchmarkHashJoin joins 100k orders against 10k customers with a
// pushed-down selection on the probe side.
func BenchmarkHashJoin(b *testing.B) {
	joinEngineOnce.Do(func() {
		eng := engine.New(storage.NewCatalog())
		seed := func(sql string) {
			if joinEngineErr == nil {
				_, joinEngineErr = eng.ExecSQL(sql)
			}
		}
		seed(`CREATE TABLE customers (cid INTEGER, name TEXT)`)
		seed(`CREATE TABLE orders (oid INTEGER, cust INTEGER, amount FLOAT)`)
		if joinEngineErr != nil {
			return
		}
		customers, _ := eng.Catalog().Get("customers")
		orders, _ := eng.Catalog().Get("orders")
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 10_000 && joinEngineErr == nil; i++ {
			joinEngineErr = customers.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("c%05d", i)))
		}
		for i := 0; i < 100_000 && joinEngineErr == nil; i++ {
			joinEngineErr = orders.Insert(storage.Int(int64(i)),
				storage.Int(int64(rng.Intn(10_000))), storage.Float(rng.Float64()*1000))
		}
		joinEngine = eng
	})
	if joinEngineErr != nil {
		b.Fatal(joinEngineErr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := joinEngine.ExecSQL(`SELECT c.name, o.amount FROM orders o
			JOIN customers c ON o.cust = c.cid WHERE o.amount > 900`)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(rows), "join-rows/op")
	// Alloc wall for the reusable-scratch key encoding: the dominant
	// remaining allocations are the build-side clones and the emitted
	// rows themselves — per-probe-row key encoding must contribute none.
	// 100k probes + 10k build rows + ~10k output rows stays far under
	// this bound; a per-probe allocation (~100k extra) blows through it.
	if perOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N); perOp > 150_000 {
		b.Fatalf("hash join allocates %.0f objects/op, budget 150000 — probe-side key encoding is allocating again", perOp)
	}
}

// BenchmarkStreamingSelect drains 200k rows through the end-to-end
// streaming path (core.RowStream over the batched storage cursor), the
// per-row cost a POST /query?stream=1 client pays.
func BenchmarkStreamingSelect(b *testing.B) {
	db := crowddb.New(nil)
	defer db.Close()
	if _, _, err := db.ExecSQL(`CREATE TABLE events (id INTEGER, kind TEXT)`); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("events")
	const n = 200_000
	for i := 0; i < n; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text("k")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s, err := db.ExecSQLStream(`SELECT id FROM events WHERE id >= 0`)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		s.Close()
		if rows != n {
			b.Fatalf("rows = %d", rows)
		}
	}
	b.ReportMetric(float64(b.N)*n/time.Since(start).Seconds(), "rows/s")
}

// ---------- secondary-index benchmarks (ISSUE 5) ----------
//
// BenchmarkPointLookup / BenchmarkRangeScan drive indexed predicates over
// the shared 1M-row table; the *ScanBaseline twins run the identical
// query with the access path forcibly downgraded to a full scan. The
// acceptance bar is a ≥20× gap on both.

var (
	idxBigOnce sync.Once
	idxBigErr  error
)

// indexedBigEngine adds the secondary indexes to the shared 1M-row
// engine. TopN benchmarks on the same table are unaffected: their ORDER
// BY carries a two-key sort (score DESC, id) that the single-column
// index cannot serve — DESC alone now rides the index through a
// reversed probe, so the tiebreak is what keeps those benchmarks
// measuring the heap regardless of whether the indexes exist yet.
func indexedBigEngine(b *testing.B) *engine.Engine {
	b.Helper()
	eng := topNEngine(b)
	idxBigOnce.Do(func() {
		if _, err := eng.ExecSQL(`CREATE INDEX big_id ON big (id) USING HASH`); err != nil {
			idxBigErr = err
			return
		}
		_, idxBigErr = eng.ExecSQL(`CREATE INDEX big_score ON big (score)`)
	})
	if idxBigErr != nil {
		b.Fatal(idxBigErr)
	}
	return eng
}

func BenchmarkPointLookup(b *testing.B) {
	eng := indexedBigEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ExecSQL(`SELECT id, score FROM big WHERE id = 777777`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// downgradeToScan rebuilds the query plan with every index access path
// replaced by a full scan evaluating the same predicate — the pre-index
// execution order, on the same iterator infrastructure.
func downgradeToScan(b *testing.B, eng *engine.Engine, sql string) *plan.SelectPlan {
	b.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(stmt.(*sqlparse.SelectStmt), eng.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	proj, ok := p.Root.(*plan.Project)
	if !ok {
		b.Fatalf("expected Project root, got %T", p.Root)
	}
	where := stmt.(*sqlparse.SelectStmt).Where
	switch n := proj.Input.(type) {
	case *plan.IndexScan:
		proj.Input = &plan.Scan{Table: n.Table, Name: n.Name, Binding: n.Binding, Filter: where, Layout: n.Layout}
	case *plan.IndexRange:
		proj.Input = &plan.Scan{Table: n.Table, Name: n.Name, Binding: n.Binding, Filter: where, Layout: n.Layout}
	default:
		b.Fatalf("expected an index access path, got %T", proj.Input)
	}
	return p
}

func BenchmarkPointLookupScanBaseline(b *testing.B) {
	eng := indexedBigEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := downgradeToScan(b, eng, `SELECT id, score FROM big WHERE id = 777777`)
		it, err := exec.Build(p.Root)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := exec.Drain(it)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	b.ReportMetric(float64(topNRows), "rows-scanned/op")
}

func BenchmarkRangeScan(b *testing.B) {
	eng := indexedBigEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := eng.ExecSQL(`SELECT id, score FROM big WHERE score > 995.0`)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
		if rows == 0 || rows > topNRows/50 {
			b.Fatalf("suspicious selectivity: %d rows", rows)
		}
	}
	b.ReportMetric(float64(rows), "match-rows/op")
}

func BenchmarkRangeScanBaseline(b *testing.B) {
	eng := indexedBigEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := downgradeToScan(b, eng, `SELECT id, score FROM big WHERE score > 995.0`)
		it, err := exec.Build(p.Root)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := exec.Drain(it)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
	b.ReportMetric(float64(topNRows), "rows-scanned/op")
}

// ---------- morsel-parallel executor benchmarks (ISSUE 7) ----------
//
// Both benchmarks run the engine's default degree of parallelism
// (GOMAXPROCS), so under CI's `-cpu 1,4` the same benchmark name yields
// a serial line and a parallel line; benchguard takes the minimum, and
// the speedup is the ratio between the two lines in the bench log. The
// tables are dedicated and index-free so plan shapes don't depend on
// which other benchmarks ran first.

const parBenchRows = 1_000_000

var (
	parEngineOnce sync.Once
	parEngine     *engine.Engine
	parEngineErr  error
)

func parallelBenchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	parEngineOnce.Do(func() {
		eng := engine.New(storage.NewCatalog())
		seed := func(sql string) {
			if parEngineErr == nil {
				_, parEngineErr = eng.ExecSQL(sql)
			}
		}
		seed(`CREATE TABLE pscan (id INTEGER, score FLOAT)`)
		seed(`CREATE TABLE pbuild (id INTEGER, score FLOAT)`)
		if parEngineErr != nil {
			return
		}
		rng := rand.New(rand.NewSource(11))
		for _, name := range []string{"pscan", "pbuild"} {
			tbl, _ := eng.Catalog().Get(name)
			for i := 0; i < parBenchRows && parEngineErr == nil; i++ {
				parEngineErr = tbl.Insert(storage.Int(int64(i)), storage.Float(rng.Float64()*1000))
			}
		}
		parEngine = eng
	})
	if parEngineErr != nil {
		b.Fatal(parEngineErr)
	}
	return parEngine
}

// BenchmarkParallelScanFilter drives a ~1%-selective filter over 1M
// rows through the morsel scan + ordered gather exchange.
func BenchmarkParallelScanFilter(b *testing.B) {
	eng := parallelBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ExecSQL(`SELECT id, score FROM pscan WHERE score > 990.0`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) < 5000 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.ReportMetric(float64(parBenchRows), "rows-scanned/op")
}

// BenchmarkParallelHashJoin joins two 1M-row tables — parallel build
// over the filtered side, parallel probe over the other, partial
// aggregation on top.
func BenchmarkParallelHashJoin(b *testing.B) {
	eng := parallelBenchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ExecSQL(`SELECT COUNT(*) FROM pscan a JOIN pbuild b ON a.id = b.id
			WHERE b.score > 500.0`)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		if n < 400_000 {
			b.Fatalf("join count = %d", n)
		}
	}
	b.ReportMetric(float64(2*parBenchRows), "rows-scanned/op")
}

// ---- MVCC snapshot scans and vectorized filters ----------------------
//
// BenchmarkScanDuringFill measures SELECT latency while a writer
// continuously bulk-fills an expansion column — the paper's crowd
// fill-in landing under live query traffic. Pre-MVCC this serialized on
// the table RWMutex (each fill blocked every reader for the whole column
// write); with versioned chunks the scans pin a snapshot and never wait,
// so the per-op time should track BenchmarkVectorizedFilter-style scan
// cost rather than the fill cadence. BenchmarkVectorizedFilter and
// BenchmarkPerRowFilterBaseline isolate the cursor's two filter paths on
// identical data: the SetPreds chunk-at-a-time selection bitmap versus
// the per-row closure it replaced.

const fillScanRows = 262_144 // 64 sealed chunks

var (
	fillScanOnce sync.Once
	fillScanEng  *engine.Engine
	fillScanTbl  *storage.Table
	fillScanErr  error
)

func fillScanEngine(b *testing.B) (*engine.Engine, *storage.Table) {
	b.Helper()
	fillScanOnce.Do(func() {
		eng := engine.New(storage.NewCatalog())
		if _, err := eng.ExecSQL(`CREATE TABLE fillscan (id INTEGER, score FLOAT)`); err != nil {
			fillScanErr = err
			return
		}
		tbl, _ := eng.Catalog().Get("fillscan")
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < fillScanRows; i++ {
			if err := tbl.Insert(storage.Int(int64(i)), storage.Float(rng.Float64()*1000)); err != nil {
				fillScanErr = err
				return
			}
		}
		if _, err := tbl.AddColumn(storage.Column{Name: "genre", Kind: storage.KindBool}); err != nil {
			fillScanErr = err
			return
		}
		fillScanEng, fillScanTbl = eng, tbl
	})
	if fillScanErr != nil {
		b.Fatal(fillScanErr)
	}
	return fillScanEng, fillScanTbl
}

func BenchmarkScanDuringFill(b *testing.B) {
	eng, tbl := fillScanEngine(b)
	// Two alternating full-column fills, prepared outside the timer.
	var fills [2][]storage.Value
	for f := range fills {
		fills[f] = make([]storage.Value, fillScanRows)
		for i := range fills[f] {
			fills[f][i] = storage.Bool(i%2 == f)
		}
	}
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				done <- n
				return
			default:
			}
			if err := tbl.FillColumn("genre", fills[n%2]); err != nil {
				b.Error(err)
				done <- n
				return
			}
			n++
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ExecSQL(`SELECT COUNT(*) FROM fillscan WHERE score > 500.0`)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		if n < fillScanRows/3 {
			b.Fatalf("count = %d", n)
		}
	}
	b.StopTimer()
	close(stop)
	fillsLanded := <-done
	b.ReportMetric(float64(fillScanRows), "rows-scanned/op")
	b.ReportMetric(float64(fillsLanded)/float64(b.N), "fills/op")
}

func BenchmarkVectorizedFilter(b *testing.B) {
	eng := parallelBenchEngine(b)
	tbl, _ := eng.Catalog().Get("pscan")
	preds := []storage.Pred{{Col: 1, Op: storage.PredGt, Val: storage.Float(990)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tbl.NewCursor(0)
		cur.SetPreds(preds)
		n := 0
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		if n < 5000 {
			b.Fatalf("rows = %d", n)
		}
	}
	b.ReportMetric(float64(parBenchRows), "rows-scanned/op")
}

// BenchmarkPerRowFilterBaseline is the comparison point: the same scan
// and selectivity through the per-row residual closure.
func BenchmarkPerRowFilterBaseline(b *testing.B) {
	eng := parallelBenchEngine(b)
	tbl, _ := eng.Catalog().Get("pscan")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tbl.NewCursor(0)
		cur.SetFilter(func(r storage.Row) (bool, error) {
			v, ok := r[1].AsFloat()
			return ok && v > 990, nil
		})
		n := 0
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		if n < 5000 {
			b.Fatalf("rows = %d", n)
		}
	}
	b.ReportMetric(float64(parBenchRows), "rows-scanned/op")
}

// ---- tombstone compaction -------------------------------------------
//
// BenchmarkCompactedScan guards the compactor's payoff: a table that had
// half its rows tombstoned and then compacted scans only the surviving,
// densely repacked chunks — no dead-row bitmap tests, half the data
// volume. A regression here means compaction stopped producing packed
// chunks (or the scan path re-grew per-row tombstone checks).

const compactScanRows = 262_144 // 64 sealed chunks before compaction

var (
	compactScanOnce sync.Once
	compactScanEng  *engine.Engine
	compactScanErr  error
)

func compactScanEngine(b *testing.B) *engine.Engine {
	b.Helper()
	compactScanOnce.Do(func() {
		eng := engine.New(storage.NewCatalog())
		if _, err := eng.ExecSQL(`CREATE TABLE cscan (id INTEGER, score FLOAT)`); err != nil {
			compactScanErr = err
			return
		}
		tbl, _ := eng.Catalog().Get("cscan")
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < compactScanRows; i++ {
			if err := tbl.Insert(storage.Int(int64(i)), storage.Float(rng.Float64()*1000)); err != nil {
				compactScanErr = err
				return
			}
		}
		doomed := make([]int, 0, compactScanRows/2)
		for i := 0; i < compactScanRows; i += 2 {
			doomed = append(doomed, i)
		}
		tbl.Delete(doomed)
		res, err := tbl.Compact(storage.CompactionPolicy{Force: true})
		if err != nil {
			compactScanErr = err
			return
		}
		if !res.Compacted || tbl.Tombstones() != 0 {
			compactScanErr = fmt.Errorf("setup compaction did not reclaim: %+v", res)
			return
		}
		compactScanEng = eng
	})
	if compactScanErr != nil {
		b.Fatal(compactScanErr)
	}
	return compactScanEng
}

func BenchmarkCompactedScan(b *testing.B) {
	eng := compactScanEngine(b)
	tbl, _ := eng.Catalog().Get("cscan")
	preds := []storage.Pred{{Col: 1, Op: storage.PredGt, Val: storage.Float(500)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tbl.NewCursor(0)
		cur.SetPreds(preds)
		n := 0
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		if n < compactScanRows/8 {
			b.Fatalf("rows = %d", n)
		}
	}
	b.ReportMetric(float64(compactScanRows/2), "rows-scanned/op")
}

// ---------- observability benchmarks (ISSUE 10) ----------
//
// BenchmarkInstrumentedSelect is the observability overhead wall: the
// default ExecSQL spine with the metrics registry live and tracing OFF
// (cache bypassed so the executor actually runs every iteration). This
// is the production hot path after the obs layer landed — the per-query
// cost of instrumentation is a handful of atomic adds and histogram
// observes, and the executor seam is literally `build(node, nil)`.
// Guarded in BENCH_baseline.json (with BenchmarkStreamingSelect) so the
// ≤2% tracing-off contract is enforced as a benchguard wall rather than
// a one-off measurement. BenchmarkInstrumentedSelectTraced runs the
// identical statement through ExecSQLTraced, pricing what ?trace=1,
// -trace, and -slow-query actually pay for the per-operator breakdown.

const instrSelectRows = 100_000

func instrumentedSelectDB(b *testing.B) *crowddb.DB {
	b.Helper()
	db := crowddb.New(nil)
	b.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE tele (id INTEGER, v FLOAT)`); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("tele")
	for i := 0; i < instrSelectRows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Float(float64(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

const instrSelectSQL = `SELECT id, v FROM tele WHERE v > 989.0 ORDER BY id LIMIT 100`

func BenchmarkInstrumentedSelect(b *testing.B) {
	db := instrumentedSelectDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := db.ExecSQLNoCache(instrSelectSQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 100 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.ReportMetric(float64(instrSelectRows), "rows-scanned/op")
}

func BenchmarkInstrumentedSelectTraced(b *testing.B) {
	db := instrumentedSelectDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, qt, err := db.ExecSQLTraced(instrSelectSQL, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 100 || qt == nil || len(qt.Plan) == 0 {
			b.Fatalf("rows = %d trace = %+v", len(res.Rows), qt)
		}
	}
	b.ReportMetric(float64(instrSelectRows), "rows-scanned/op")
}
