// Command benchguard is the CI bench-regression wall: it parses `go test
// -bench` output, emits the measured numbers as a JSON artifact, and
// fails (exit 1) when a guarded benchmark's ns/op regresses beyond a
// threshold against a committed baseline.
//
//	go test -run xxx -bench 'BenchmarkTopNSelect$|BenchmarkWALReplay$' -count 3 . | tee bench.txt
//	benchguard -input bench.txt -baseline BENCH_baseline.json -out bench-current.json \
//	    -require BenchmarkTopNSelect,BenchmarkWALReplay -threshold 0.30
//
// With -count N the minimum ns/op per benchmark is used — the minimum is
// the least noisy estimator of a benchmark's true cost on a shared CI
// runner. To refresh the baseline after an intentional perf change, run
// the same bench command and commit the -out file as BENCH_baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Measurement is one benchmark's headline number.
type Measurement struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// Baseline is the committed reference file format.
type Baseline struct {
	// Note documents provenance (machine, date, refresh command).
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// benchLine matches standard `go test -bench` result lines, e.g.
//
//	BenchmarkTopNSelect-8   	      14	  73334423 ns/op	...
//
// capturing the name (GOMAXPROCS suffix stripped) and ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts the minimum ns/op per benchmark name from bench
// output (minimum across -count repetitions).
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op on line %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev.NsPerOp {
			out[m[1]] = Measurement{NsPerOp: ns}
		}
	}
	return out, sc.Err()
}

// compare returns one failure message per guarded benchmark that is
// missing from the run, missing from the baseline, or slower than
// baseline*(1+threshold).
func compare(current, baseline map[string]Measurement, require []string, threshold float64) []string {
	var failures []string
	for _, name := range require {
		cur, okCur := current[name]
		base, okBase := baseline[name]
		switch {
		case !okCur:
			failures = append(failures, fmt.Sprintf("%s: not found in bench output", name))
		case !okBase:
			failures = append(failures, fmt.Sprintf("%s: not found in baseline", name))
		case cur.NsPerOp > base.NsPerOp*(1+threshold):
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.0f%%, limit +%.0f%%)",
				name, cur.NsPerOp, base.NsPerOp,
				100*(cur.NsPerOp/base.NsPerOp-1), 100*threshold))
		}
	}
	return failures
}

func run(input io.Reader, baselinePath, outPath, requireList string, threshold float64, stdout io.Writer) error {
	current, err := parseBench(input)
	if err != nil {
		return err
	}
	if outPath != "" {
		artifact := Baseline{Benchmarks: current}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchguard: reading baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchguard: parsing baseline: %w", err)
	}
	var require []string
	for _, name := range strings.Split(requireList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			require = append(require, name)
		}
	}
	for _, name := range require {
		if cur, ok := current[name]; ok {
			if b, okB := base.Benchmarks[name]; okB {
				fmt.Fprintf(stdout, "benchguard: %s %.0f ns/op (baseline %.0f, %+.1f%%)\n",
					name, cur.NsPerOp, b.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1))
			}
		}
	}
	if failures := compare(current, base.Benchmarks, require, threshold); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stdout, "benchguard: REGRESSION %s\n", f)
		}
		return fmt.Errorf("benchguard: %d benchmark regression(s)", len(failures))
	}
	fmt.Fprintln(stdout, "benchguard: ok")
	return nil
}

func main() {
	var (
		input     = flag.String("input", "", "bench output file (default stdin)")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
		out       = flag.String("out", "", "write the measured numbers as JSON (the CI artifact)")
		require   = flag.String("require", "", "comma-separated benchmark names that must be present and within threshold")
		threshold = flag.Float64("threshold", 0.30, "allowed fractional slowdown vs baseline")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, *baseline, *out, *require, *threshold, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
