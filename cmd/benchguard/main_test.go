package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: crowddb
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWALReplay  	       1	  89661321 ns/op	        89.66 ms/replay-10k	28446048 B/op	  498166 allocs/op
BenchmarkWALReplay  	       1	  80123456 ns/op	        80.12 ms/replay-10k	28446048 B/op	  498166 allocs/op
BenchmarkTopNSelect-8 	      14	  73334423 ns/op	   1000000 rows-scanned/op
PASS
ok  	crowddb	0.561s
`

func TestParseBenchTakesMinAndStripsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkWALReplay"].NsPerOp != 80123456 {
		t.Fatalf("WALReplay = %v, want min 80123456", got["BenchmarkWALReplay"])
	}
	if got["BenchmarkTopNSelect"].NsPerOp != 73334423 {
		t.Fatalf("TopNSelect = %v (GOMAXPROCS suffix not stripped?)", got["BenchmarkTopNSelect"])
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := map[string]Measurement{
		"BenchmarkA": {NsPerOp: 100},
		"BenchmarkB": {NsPerOp: 100},
	}
	current := map[string]Measurement{
		"BenchmarkA": {NsPerOp: 129}, // +29%: inside the 30% fence
		"BenchmarkB": {NsPerOp: 131}, // +31%: regression
	}
	fails := compare(current, base, []string{"BenchmarkA", "BenchmarkB"}, 0.30)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkB") {
		t.Fatalf("failures = %v, want exactly BenchmarkB", fails)
	}
	// Missing on either side is a failure, not a silent pass.
	fails = compare(current, base, []string{"BenchmarkC"}, 0.30)
	if len(fails) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", fails)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	out := filepath.Join(dir, "current.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks":{"BenchmarkTopNSelect":{"ns_per_op":70000000},"BenchmarkWALReplay":{"ns_per_op":85000000}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	err := run(strings.NewReader(sampleOutput), baseline, out,
		"BenchmarkTopNSelect,BenchmarkWALReplay", 0.30, &report)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, report.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	// Tighten the fence so WALReplay (80.1ms vs 85ms baseline is fine,
	// but TopN 73.3ms vs 70ms is +4.8%) trips at 2%.
	err = run(strings.NewReader(sampleOutput), baseline, "",
		"BenchmarkTopNSelect", 0.02, &report)
	if err == nil {
		t.Fatal("tight threshold did not trip")
	}
}
