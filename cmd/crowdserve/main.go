// Command crowdserve serves a crowd-enabled database over HTTP — the
// first network-servable configuration of this reproduction.
//
// It boots the paper's running example (a movie table with a perceptual
// space built from simulated Social-Web ratings and a simulated crowd
// marketplace), registers every genre as an expandable column, and then
// serves queries:
//
//	crowdserve -addr :8080 -data-dir /var/lib/crowdserve
//
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM movies"}'
//	curl -s localhost:8080/query \
//	    -d '{"sql":"SELECT name FROM movies WHERE Comedy = true LIMIT 5","mode":"async"}'
//	curl -sN 'localhost:8080/query?stream=1' \
//	    -d '{"sql":"SELECT name FROM movies ORDER BY year LIMIT 100"}'
//	curl -s localhost:8080/query -d '{"sql":"EXPLAIN SELECT name FROM movies ORDER BY year LIMIT 5"}'
//	curl -s localhost:8080/jobs/job-1?wait=1
//	curl -s localhost:8080/ledger
//	curl -s -X POST localhost:8080/admin/snapshot
//
// stream=1 serves SELECTs as NDJSON rows flushed while the scan runs;
// EXPLAIN renders the planner's operator tree (scans with pushed-down
// filters, hash joins, TopN) without executing the query.
//
// The async query returns 202 with a job handle while the crowd fills
// the column on the expansion scheduler's worker pool; concurrent reads
// keep flowing meanwhile. SIGINT/SIGTERM trigger a graceful shutdown:
// the listener drains, then in-flight expansion jobs finish.
//
// With -data-dir set, every mutation — including crowd-expanded columns
// and their cost ledger — is written to a WAL and recovered on the next
// start, so a restart never re-elicits (or re-charges for) a column the
// crowd already filled. POST /admin/snapshot compacts the log. -fsync
// extends durability from process crashes to power loss. -backend picks
// the storage engine under the WAL: "mem" (default) snapshots tables
// inline, "file" externalizes each table to a shard file under
// <data-dir>/tables/.
//
// Storage hygiene: DELETE tombstones rows without moving data; the
// compactor rewrites chunks to reclaim them once sealed-region density
// crosses -compact-tombstone-frac, checking every -compact-interval
// (0 = background compaction off). POST /v1/admin/compact forces a
// sweep; GET /v1/schema/{table} reports tombstones and cumulative
// compaction counters. The HTTP API is versioned under /v1/ — legacy
// unversioned paths still answer, stamped with a Deprecation header.
//
// Cost controls: -batch-window merges expansions of the same table that
// arrive within the window into shared HIT groups (one crowd charge for
// N columns); -default-budget caps each API key's crowd spend, enforced
// before HITs are issued. Caps can also be set per key via
//
//	curl -s localhost:8080/admin/expand \
//	    -d '{"table":"movies","column":"Comedy","key":"team-a","budget":2.50}'
//	curl -s localhost:8080/budgets
//
// which pre-warms a column explicitly; a request the key's budget cannot
// cover is rejected with 402, and both the cap and the spend survive
// restarts.
//
// Workload-aware serving: every query feeds a durable co-access model
// (inspect it via GET /workload). -speculative-budget lets the server
// pre-expand the column the model predicts will be demanded next, inside
// the same batch window as the demand expansion — so the speculative
// HITs merge into the demand job's crowd charge; the dollar cap bounds
// total speculative spend and speculation never displaces demand work.
// SELECT results are served from a semantic result cache keyed on the
// normalized plan and invalidated by any table mutation; -cache-bytes
// sizes it (-1 disables), and ?nocache=1 on POST /query bypasses it per
// request.
//
// Query execution is morsel-parallel: large scans, joins, and
// aggregations fan out across -exec-workers goroutines (0 = one per
// CPU, 1 = fully serial) while producing exactly the serial row order;
// EXPLAIN shows the chosen degree per operator as [dop=N].
//
// Observability: GET /v1/metrics serves the process-wide metric
// registry in Prometheus text format (HTTP, query, cache, storage, WAL,
// job, and crowd-cost families; catalog in DESIGN.md §17). EXPLAIN
// ANALYZE executes a SELECT and annotates each operator with actual
// rows and wall time; POST /v1/query?trace=1 returns the same per-phase
// and per-operator breakdown as JSON alongside the rows. Every response
// carries an X-Request-Id (inbound IDs propagate) and every request is
// logged structurally via log/slog. -slow-query DURATION logs any
// statement slower than the threshold with its full traced breakdown
// (this prices every SELECT at traced cost, as does -trace, which
// attaches the breakdown to all queries); both default off, keeping the
// hot path free of tracing overhead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/server"
	"crowddb/internal/space"
	"crowddb/internal/storage"

	// Register the optional file backend so -backend file resolves
	// (core itself only pulls in the default "mem" backend).
	_ "crowddb/internal/storage/filebackend"
)

// demoConfig collects everything buildDemoDB needs; the integration test
// reuses it to boot twice against one data dir.
type demoConfig struct {
	seed              int64
	items             int
	dims              int
	epochs            int
	crowdWorkers      int
	spammers          float64
	dataDir           string
	fsync             bool
	backend           string
	compactInterval   time.Duration
	compactFrac       float64
	expansionWorkers  int
	expansionQueue    int
	batchWindow       time.Duration
	defaultBudget     float64
	speculativeBudget float64
	cacheBytes        int64
	execWorkers       int
	slowQuery         time.Duration
	traceQueries      bool
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", 42, "universe and marketplace RNG seed")
		items       = flag.Int("items", dataset.ScaleTiny.Items, "movies in the demo universe")
		dims        = flag.Int("dims", 16, "perceptual-space dimensionality")
		epochs      = flag.Int("epochs", 25, "space training epochs")
		workers     = flag.Int("crowd-workers", 40, "simulated crowd population size")
		spammers    = flag.Float64("spammers", 0, "spammer fraction of the crowd population")
		maxInflight = flag.Int("max-inflight", 64, "admitted concurrent /query requests")

		dataDir = flag.String("data-dir", "", "durability directory for WAL+snapshots (empty = in-memory)")
		fsync   = flag.Bool("fsync", false, "fsync WAL batches (survive power loss, not just crashes)")
		backend = flag.String("backend", "mem",
			"storage backend: \"mem\" keeps snapshots inline, \"file\" externalizes per-table shard files under <data-dir>/tables/")
		compactInterval = flag.Duration("compact-interval", 0,
			"background tombstone-compaction sweep interval (0 = off; POST /v1/admin/compact forces a sweep either way)")
		compactFrac = flag.Float64("compact-tombstone-frac", 0,
			"sealed-region tombstone density that admits a background compaction (0 = default 0.30)")
		expWork = flag.Int("expansion-workers", 4, "expansion scheduler worker-pool size")
		expQ    = flag.Int("expansion-queue", 64, "expansion scheduler admission-queue depth")

		batchWindow = flag.Duration("batch-window", 25*time.Millisecond,
			"batching window for merging same-table expansions into shared HIT groups (0 = every expansion is its own crowd job)")
		defaultBudget = flag.Float64("default-budget", 0,
			"default per-API-key crowd budget cap in dollars for keys without an explicit cap (0 = uncapped)")
		speculativeBudget = flag.Float64("speculative-budget", 0,
			"dollar cap for workload-predicted pre-expansions (0 = speculation off); requires -batch-window > 0 to merge with demand HIT groups")
		cacheBytes = flag.Int64("cache-bytes", 0,
			"semantic result cache size in bytes (0 = default 64 MiB, negative = cache disabled)")
		execWorkers = flag.Int("exec-workers", 0,
			"degree of intra-query parallelism for SELECT execution (0 = GOMAXPROCS, 1 = serial)")
		pprofOn = flag.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof/ on the API port (profiles expose internals; enable only on trusted networks)")
		slowQuery = flag.Duration("slow-query", 0,
			"log statements slower than this threshold with a traced phase/operator breakdown (0 = off; setting it runs every SELECT traced)")
		traceQueries = flag.Bool("trace", false,
			"attach a traced phase/operator breakdown to every query (same cost as -slow-query; surfaces via ?trace=1 responses and the slow-query log)")
	)
	flag.Parse()

	db, err := buildDemoDB(demoConfig{
		seed: *seed, items: *items, dims: *dims, epochs: *epochs,
		crowdWorkers: *workers, spammers: *spammers,
		dataDir: *dataDir, fsync: *fsync,
		backend: *backend, compactInterval: *compactInterval, compactFrac: *compactFrac,
		expansionWorkers: *expWork, expansionQueue: *expQ,
		batchWindow: *batchWindow, defaultBudget: *defaultBudget,
		speculativeBudget: *speculativeBudget, cacheBytes: *cacheBytes,
		execWorkers:  *execWorkers,
		slowQuery:    *slowQuery,
		traceQueries: *traceQueries,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			log.Printf("crowdserve: close: %v", err)
		}
	}()

	srv := server.New(db, server.Config{MaxInflight: *maxInflight, EnablePprof: *pprofOn})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	durability := "in-memory"
	if *dataDir != "" {
		durability = "durable at " + *dataDir
	}
	log.Printf("crowdserve: listening on %s (%d movies, %d-d space, %s)", *addr, *items, *dims, durability)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("crowdserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("crowdserve: shutdown: %v", err)
	}
	led := db.Ledger()
	log.Printf("crowdserve: session spend $%.2f for %d judgments in %d crowd jobs",
		led.Cost, led.Judgments, led.Jobs)
}

// buildDemoDB assembles the paper's running example: a movie table, a
// perceptual space trained on the universe's ratings, a simulated crowd,
// and one registered expandable column per genre. With a data dir, prior
// state — rows, expanded columns, ledger, job history — is recovered
// first and the demo data is only seeded into an empty catalog.
func buildDemoDB(cfg demoConfig) (*core.DB, error) {
	scale := dataset.ScaleTiny
	if cfg.items > 0 {
		scale.Items = cfg.items
	}
	u, err := dataset.Generate(dataset.Movies(scale, cfg.seed))
	if err != nil {
		return nil, err
	}

	spaceCfg := space.DefaultConfig()
	spaceCfg.Dims = cfg.dims
	spaceCfg.Epochs = cfg.epochs
	model, _, err := space.TrainEuclidean(u.Ratings, spaceCfg)
	if err != nil {
		return nil, err
	}
	sp := space.FromModel(model)

	rng := rand.New(rand.NewSource(cfg.seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: cfg.crowdWorkers, SpammerFraction: cfg.spammers}, rng)
	db, err := core.Open(core.Options{
		Service:              core.NewSimulatedCrowd(pop, u.CrowdItems, rng),
		DataDir:              cfg.dataDir,
		Fsync:                cfg.fsync,
		Backend:              cfg.backend,
		CompactInterval:      cfg.compactInterval,
		CompactTombstoneFrac: cfg.compactFrac,
		Workers:              cfg.expansionWorkers, QueueDepth: cfg.expansionQueue,
		BatchWindow:       cfg.batchWindow,
		DefaultBudget:     cfg.defaultBudget,
		SpeculativeBudget: cfg.speculativeBudget,
		CacheBytes:        cfg.cacheBytes,
		ExecWorkers:       cfg.execWorkers,
		SlowQuery:         cfg.slowQuery,
		TraceQueries:      cfg.traceQueries,
	})
	if err != nil {
		return nil, err
	}

	// Recovery may have brought the table (and its paid-for expanded
	// columns) back from the WAL; seed only a fresh database.
	if _, recovered := db.Catalog().Get("movies"); !recovered {
		if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
			db.Close()
			return nil, err
		}
		tbl, _ := db.Catalog().Get("movies")
		for _, it := range u.Items {
			if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	// Binding and registry writes are idempotent; re-issuing them each
	// boot keeps them current with the freshly trained space.
	if err := db.AttachSpace("movies", "movie_id", sp); err != nil {
		db.Close()
		return nil, err
	}
	for name := range u.Categories {
		db.RegisterExpandable("movies", name, storage.KindBool,
			core.ExpandOptions{SamplesPerClass: 40})
	}
	if len(u.Categories) == 0 {
		db.Close()
		return nil, fmt.Errorf("crowdserve: universe has no categories to register")
	}
	return db, nil
}
