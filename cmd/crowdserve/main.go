// Command crowdserve serves a crowd-enabled database over HTTP — the
// first network-servable configuration of this reproduction.
//
// It boots the paper's running example (a movie table with a perceptual
// space built from simulated Social-Web ratings and a simulated crowd
// marketplace), registers every genre as an expandable column, and then
// serves queries:
//
//	crowdserve -addr :8080
//
//	curl -s localhost:8080/query -d '{"sql":"SELECT COUNT(*) FROM movies"}'
//	curl -s localhost:8080/query \
//	    -d '{"sql":"SELECT name FROM movies WHERE Comedy = true LIMIT 5","mode":"async"}'
//	curl -s localhost:8080/jobs/job-1?wait=1
//	curl -s localhost:8080/ledger
//
// The async query returns 202 with a job handle while the crowd fills
// the column on the expansion scheduler's worker pool; concurrent reads
// keep flowing meanwhile. SIGINT/SIGTERM trigger a graceful shutdown:
// the listener drains, then in-flight expansion jobs finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/server"
	"crowddb/internal/space"
	"crowddb/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", 42, "universe and marketplace RNG seed")
		items       = flag.Int("items", dataset.ScaleTiny.Items, "movies in the demo universe")
		dims        = flag.Int("dims", 16, "perceptual-space dimensionality")
		epochs      = flag.Int("epochs", 25, "space training epochs")
		workers     = flag.Int("crowd-workers", 40, "simulated crowd population size")
		spammers    = flag.Float64("spammers", 0, "spammer fraction of the crowd population")
		maxInflight = flag.Int("max-inflight", 64, "admitted concurrent /query requests")
	)
	flag.Parse()

	db, err := buildDemoDB(*seed, *items, *dims, *epochs, *workers, *spammers)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	srv := server.New(db, server.Config{MaxInflight: *maxInflight})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("crowdserve: listening on %s (%d movies, %d-d space)", *addr, *items, *dims)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("crowdserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("crowdserve: shutdown: %v", err)
	}
	led := db.Ledger()
	log.Printf("crowdserve: session spend $%.2f for %d judgments in %d crowd jobs",
		led.Cost, led.Judgments, led.Jobs)
}

// buildDemoDB assembles the paper's running example: a movie table, a
// perceptual space trained on the universe's ratings, a simulated crowd,
// and one registered expandable column per genre.
func buildDemoDB(seed int64, items, dims, epochs, workers int, spammers float64) (*core.DB, error) {
	scale := dataset.ScaleTiny
	if items > 0 {
		scale.Items = items
	}
	u, err := dataset.Generate(dataset.Movies(scale, seed))
	if err != nil {
		return nil, err
	}

	cfg := space.DefaultConfig()
	cfg.Dims = dims
	cfg.Epochs = epochs
	model, _, err := space.TrainEuclidean(u.Ratings, cfg)
	if err != nil {
		return nil, err
	}
	sp := space.FromModel(model)

	rng := rand.New(rand.NewSource(seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: workers, SpammerFraction: spammers}, rng)
	db := core.NewDB(core.NewSimulatedCrowd(pop, u.CrowdItems, rng))

	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		return nil, err
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range u.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
			return nil, err
		}
	}
	if err := db.AttachSpace("movies", "movie_id", sp); err != nil {
		return nil, err
	}
	for name := range u.Categories {
		db.RegisterExpandable("movies", name, storage.KindBool,
			core.ExpandOptions{SamplesPerClass: 40})
	}
	if len(u.Categories) == 0 {
		return nil, fmt.Errorf("crowdserve: universe has no categories to register")
	}
	return db, nil
}
