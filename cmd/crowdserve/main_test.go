package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"crowddb/internal/jobs"
	"crowddb/internal/server"
)

// TestBuildDemoDBServesEndToEnd boots a miniature demo database and
// drives it through the HTTP layer: plain query, async expansion with
// job polling, then the expanded query.
func TestBuildDemoDBServesEndToEnd(t *testing.T) {
	db, err := buildDemoDB(7, 80, 8, 10, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
	defer ts.Close()

	post := func(sql, mode string) (int, map[string]json.RawMessage) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"sql": sql, "mode": mode})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := post(`SELECT COUNT(*) FROM movies`, "")
	if code != http.StatusOK {
		t.Fatalf("count query: %d %v", code, out)
	}
	var rows [][]float64
	if err := json.Unmarshal(out["rows"], &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 80 {
		t.Fatalf("count = %v", rows[0][0])
	}

	// The paper's query, async: the genre column does not exist yet.
	code, out = post(`SELECT name FROM movies WHERE Comedy = true LIMIT 5`, "async")
	if code != http.StatusAccepted {
		t.Fatalf("async query: %d %v", code, out)
	}
	var st jobs.Status
	if err := json.Unmarshal(out["job"], &st); err != nil {
		t.Fatal(err)
	}

	// Long-poll the job to completion, then re-issue the query.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != jobs.StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if st.Ledger.Judgments == 0 || st.Ledger.Cost == 0 {
		t.Fatalf("job ledger empty: %+v", st.Ledger)
	}

	code, out = post(`SELECT COUNT(*) FROM movies WHERE Comedy = true`, "sync")
	if code != http.StatusOK {
		t.Fatalf("expanded query: %d %v", code, out)
	}
	if err := json.Unmarshal(out["rows"], &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] <= 0 {
		t.Fatalf("no comedies found after expansion: %v", rows[0][0])
	}
}
