package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"crowddb/internal/jobs"
	"crowddb/internal/server"
)

// TestBuildDemoDBServesEndToEnd boots a miniature demo database and
// drives it through the HTTP layer: plain query, async expansion with
// job polling, then the expanded query.
func TestBuildDemoDBServesEndToEnd(t *testing.T) {
	db, err := buildDemoDB(demoConfig{seed: 7, items: 80, dims: 8, epochs: 10, crowdWorkers: 30,
		expansionWorkers: 4, expansionQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
	defer ts.Close()

	post := func(sql, mode string) (int, map[string]json.RawMessage) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"sql": sql, "mode": mode})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := post(`SELECT COUNT(*) FROM movies`, "")
	if code != http.StatusOK {
		t.Fatalf("count query: %d %v", code, out)
	}
	var rows [][]float64
	if err := json.Unmarshal(out["rows"], &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 80 {
		t.Fatalf("count = %v", rows[0][0])
	}

	// The paper's query, async: the genre column does not exist yet.
	code, out = post(`SELECT name FROM movies WHERE Comedy = true LIMIT 5`, "async")
	if code != http.StatusAccepted {
		t.Fatalf("async query: %d %v", code, out)
	}
	var st jobs.Status
	if err := json.Unmarshal(out["job"], &st); err != nil {
		t.Fatal(err)
	}

	// Long-poll the job to completion, then re-issue the query.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != jobs.StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if st.Ledger.Judgments == 0 || st.Ledger.Cost == 0 {
		t.Fatalf("job ledger empty: %+v", st.Ledger)
	}

	code, out = post(`SELECT COUNT(*) FROM movies WHERE Comedy = true`, "sync")
	if code != http.StatusOK {
		t.Fatalf("expanded query: %d %v", code, out)
	}
	if err := json.Unmarshal(out["rows"], &rows); err != nil {
		t.Fatal(err)
	}
	if rows[0][0] <= 0 {
		t.Fatalf("no comedies found after expansion: %v", rows[0][0])
	}
}

// TestKillAndRestartDurability is the acceptance scenario end to end over
// HTTP: boot crowdserve with a data dir, expand a genre column (paying
// the simulated crowd), kill the process without a clean shutdown, boot a
// second instance on the same data dir, and verify the same SELECT
// answers identically with zero new crowd judgments charged.
func TestKillAndRestartDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := demoConfig{seed: 7, items: 80, dims: 8, epochs: 10, crowdWorkers: 30,
		dataDir: dir, expansionWorkers: 4, expansionQueue: 64}

	query := func(ts *httptest.Server, sql string) (float64, map[string]json.RawMessage) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"sql": sql, "mode": "sync"})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: %d %v", sql, resp.StatusCode, out)
		}
		var rows [][]float64
		if err := json.Unmarshal(out["rows"], &rows); err != nil {
			t.Fatalf("query %q: rows %s", sql, out["rows"])
		}
		return rows[0][0], out
	}
	ledger := func(ts *httptest.Server) (cost, judgments float64, perJob []json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/ledger")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var led struct {
			Cost      float64           `json:"Cost"`
			Judgments float64           `json:"Judgments"`
			PerJob    []json.RawMessage `json:"per_job"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&led); err != nil {
			t.Fatal(err)
		}
		return led.Cost, led.Judgments, led.PerJob
	}

	// --- first life: expand Comedy, note the answer and the bill ---
	db1, err := buildDemoDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(server.New(db1, server.Config{}).Handler())
	count1, _ := query(ts1, `SELECT COUNT(*) FROM movies WHERE Comedy = true`)
	if count1 <= 0 {
		t.Fatalf("no comedies after expansion: %v", count1)
	}
	cost1, judg1, perJob1 := ledger(ts1)
	if cost1 == 0 || judg1 == 0 || len(perJob1) != 1 {
		t.Fatalf("first life ledger: cost=%v judgments=%v perJob=%d", cost1, judg1, len(perJob1))
	}
	ts1.Close()
	// Kill: no db1.Close(), no snapshot. The expansion's completion
	// record was appended synchronously, so the WAL on disk is current.

	// --- second life: same data dir, fresh process state ---
	db2, err := buildDemoDB(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() { _ = db2.Close() }()
	ts2 := httptest.NewServer(server.New(db2, server.Config{}).Handler())
	defer ts2.Close()

	count2, out := query(ts2, `SELECT COUNT(*) FROM movies WHERE Comedy = true`)
	if count2 != count1 {
		t.Fatalf("answer changed across restart: %v → %v", count1, count2)
	}
	// The recovered query must not have triggered a new expansion.
	if exp, ok := out["expansion"]; ok && string(exp) != "null" {
		t.Fatalf("restart re-expanded: %s", exp)
	}
	cost2, judg2, perJob2 := ledger(ts2)
	if cost2 != cost1 || judg2 != judg1 {
		t.Fatalf("crowd charged again after restart: $%v/%v → $%v/%v", cost1, judg1, cost2, judg2)
	}
	if len(perJob2) != 1 {
		t.Fatalf("per-job history lost: %d entries", len(perJob2))
	}

	// The recovered schema still marks Comedy as expanded.
	resp, err := http.Get(ts2.URL + "/schema/movies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var schema struct {
		Columns []struct {
			Name   string `json:"name"`
			Origin string `json:"origin"`
		} `json:"columns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range schema.Columns {
		if c.Name == "Comedy" && c.Origin == "expanded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Comedy not recovered as expanded: %+v", schema.Columns)
	}
}
