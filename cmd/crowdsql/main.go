// Command crowdsql is an interactive SQL shell over a crowd-enabled movie
// database with an attached perceptual space and a simulated crowd.
//
// It boots a synthetic movie universe, trains the perceptual space from
// its ratings, loads the factual columns into a `movies` table, and drops
// you into a REPL. Any genre of the universe is registered for implicit
// query-driven expansion, so
//
//	SELECT name FROM movies WHERE Comedy = true LIMIT 5;
//
// triggers a crowd-sourced schema expansion mid-query. Meta commands:
//
//	\d            describe the movies table (expanded columns marked,
//	              secondary indexes listed, storage health: chunks,
//	              tombstones, compaction history, pinned snapshots)
//	\timing       toggle per-statement wall-clock reporting
//	\ledger       show cumulative crowd spending
//	\expand NAME METHOD   explicitly expand a genre (CROWD|SPACE|HYBRID)
//	\quit         exit
//
// Usage:
//
//	crowdsql [-scale tiny|small] [-seed N] [-spammers 0.25]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
)

func main() {
	scaleName := flag.String("scale", "tiny", "universe scale: tiny or small")
	seed := flag.Int64("seed", 1, "random seed")
	spammers := flag.Float64("spammers", 0.25, "spammer fraction of the worker population")
	flag.Parse()

	scale := dataset.ScaleTiny
	if *scaleName == "small" {
		scale = dataset.ScaleSmall
	}

	fmt.Fprintf(os.Stderr, "generating %s movie universe…\n", *scaleName)
	universe, err := dataset.Generate(dataset.Movies(scale, *seed))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "training perceptual space from %d ratings…\n", len(universe.Ratings.Ratings))
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 24
	cfg.Epochs = 30
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{
		Workers: 60, SpammerFraction: *spammers,
	}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))

	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER, country TEXT)`); err != nil {
		fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name),
			storage.Int(int64(it.Year)), storage.Text(it.Country)); err != nil {
			fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", space); err != nil {
		fatal(err)
	}
	for _, genre := range universe.CategoryNames() {
		db.RegisterExpandable("movies", genre, crowddb.KindBool,
			crowddb.ExpandOptions{SamplesPerClass: 40})
	}

	fmt.Printf("crowdsql — %d movies loaded; expandable genres: %s\n",
		len(universe.Items), strings.Join(universe.CategoryNames(), ", "))
	fmt.Println(`try: SELECT name FROM movies WHERE Comedy = true LIMIT 5;   (\q to quit)`)
	fmt.Println(`     EXPLAIN SELECT … shows the planner's operator tree; multi-table JOIN … ON is supported`)
	fmt.Println(`     CREATE INDEX idx ON movies (year) [USING HASH|ORDERED]; indexed predicates plan as IndexScan/IndexRange`)
	fmt.Println(`     DROP INDEX idx ON movies; removes it again (\d movies lists a table's indexes)`)
	fmt.Println(`     EXPLAIN ANALYZE SELECT … executes and annotates actual rows/time per operator; \timing toggles wall-clock reporting`)

	repl(db, os.Stdin, os.Stdout)
}

// session carries REPL-scoped state across statements — currently just
// the \timing toggle.
type session struct {
	db     *crowddb.DB
	timing bool
}

func repl(db *crowddb.DB, in io.Reader, out io.Writer) {
	sess := &session{db: db}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(out, "crowdsql> ")
		} else {
			fmt.Fprint(out, "     ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !metaCommand(sess, trimmed, out) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.Contains(line, ";") {
			sql := strings.Trim(pending.String(), " \t\n;")
			pending.Reset()
			if sql != "" {
				execute(sess, sql, out)
			}
		}
		prompt()
	}
}

func metaCommand(sess *session, cmd string, out io.Writer) bool {
	db := sess.db
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\q`, `\quit`, `\exit`:
		return false
	case `\d`:
		describe(db, out)
	case `\timing`:
		sess.timing = !sess.timing
		state := "off"
		if sess.timing {
			state = "on"
		}
		fmt.Fprintf(out, "timing is %s\n", state)
	case `\ledger`:
		l := db.Ledger()
		fmt.Fprintf(out, "crowd spending: $%.2f | %d judgments | %d jobs | %.0f simulated minutes\n",
			l.Cost, l.Judgments, l.Jobs, l.Minutes)
	case `\expand`:
		if len(fields) < 2 {
			fmt.Fprintln(out, `usage: \expand GENRE [CROWD|SPACE|HYBRID]`)
			break
		}
		method := "SPACE"
		if len(fields) >= 3 {
			method = strings.ToUpper(fields[2])
		}
		sql := fmt.Sprintf("EXPAND TABLE movies ADD COLUMN %s BOOLEAN USING %s WITH SAMPLES 40", fields[1], method)
		execute(sess, sql, out)
	default:
		fmt.Fprintf(out, "unknown meta command %s (try \\d, \\timing, \\ledger, \\expand, \\q)\n", fields[0])
	}
	return true
}

func describe(db *crowddb.DB, out io.Writer) {
	tbl, ok := db.Catalog().Get("movies")
	if !ok {
		fmt.Fprintln(out, "no movies table")
		return
	}
	schema := tbl.Schema()
	fmt.Fprintf(out, "table movies (%d rows)\n", tbl.NumRows())
	for i := 0; i < schema.Len(); i++ {
		c := schema.Column(i)
		flags := ""
		if c.Perceptual {
			flags += " PERCEPTUAL"
		}
		if c.Origin == storage.ColumnExpanded {
			flags += " (expanded at query time)"
		}
		fmt.Fprintf(out, "  %-16s %s%s\n", c.Name, c.Kind, flags)
	}
	if metas := tbl.IndexMetas(); len(metas) > 0 {
		fmt.Fprintln(out, "indexes:")
		for _, m := range metas {
			fmt.Fprintf(out, "  %-16s %s on %s (%d entries)\n", m.Name, m.Kind(), m.Column, m.Entries)
		}
	}
	// Storage health mirrors GET /v1/schema/{table}: tombstones count the
	// deleted-but-unreclaimed rows (it goes back down after a compaction).
	fmt.Fprintf(out, "storage: %d chunks, %d tombstones\n", tbl.ChunkCount(), tbl.Tombstones())
	if st := tbl.CompactionStats(); st.Runs > 0 {
		fmt.Fprintf(out, "compaction: %d runs reclaimed %d rows (%d chunks rewritten, %d bytes freed)\n",
			st.Runs, st.RowsReclaimed, st.ChunksRewritten, st.BytesFreed)
	}
	if epochs := tbl.LiveSnapshotEpochs(); len(epochs) > 0 {
		fmt.Fprintf(out, "snapshots: %d pinned (epochs %v) — compaction defers chunk reuse until they release\n",
			len(epochs), epochs)
	}
}

func execute(sess *session, sql string, out io.Writer) {
	start := time.Now()
	res, report, err := sess.db.ExecSQL(sql)
	elapsed := time.Since(start)
	defer func() {
		// Client-measured wall clock, printed even for errors — the
		// point of \timing is seeing what the statement cost you.
		if sess.timing {
			fmt.Fprintf(out, "Time: %.3f ms\n", float64(elapsed.Microseconds())/1000)
		}
	}()
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if report != nil {
		fmt.Fprintf(out, "-- schema expanded: %s.%s via %s (%d filled, %d judgments, $%.2f, %.0f min)\n",
			report.Table, report.Column, report.Method, report.Filled,
			report.Judgments, report.Cost, report.Minutes)
	}
	if res.Columns != nil {
		fmt.Fprintln(out, strings.Join(res.Columns, " | "))
		fmt.Fprintln(out, strings.Repeat("-", len(strings.Join(res.Columns, " | "))))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(out, strings.Join(cells, " | "))
		}
		fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
		return
	}
	if res.Message != "" {
		fmt.Fprintln(out, res.Message)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowdsql:", err)
	os.Exit(1)
}
