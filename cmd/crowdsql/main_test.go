package main

import (
	"math/rand"
	"strings"
	"testing"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
)

// testDB builds a minimal crowd-enabled DB for REPL testing (no space
// training: only plain SQL and meta commands are exercised, plus a CROWD
// expansion which needs no space).
func testDB(t *testing.T) *crowddb.DB {
	t.Helper()
	u, err := dataset.Generate(dataset.Movies(dataset.Scale{Items: 60, Users: 150, RatingsPerUser: 20}, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 20}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, u.CrowdItems, rng))
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER, country TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range u.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name),
			storage.Int(int64(it.Year)), storage.Text(it.Country)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func runREPL(t *testing.T, db *crowddb.DB, input string) string {
	t.Helper()
	var out strings.Builder
	repl(db, strings.NewReader(input), &out)
	return out.String()
}

func TestREPLSelect(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "SELECT COUNT(*) n FROM movies;\n\\q\n")
	if !strings.Contains(out, "60") || !strings.Contains(out, "(1 rows)") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestREPLMultilineStatement(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "SELECT name FROM movies\nWHERE year > 1900\nLIMIT 2;\n\\q\n")
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "...>") {
		t.Fatal("continuation prompt missing")
	}
}

func TestREPLErrorsAreReportedNotFatal(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "SELECT * FROM nope;\nSELECT COUNT(*) FROM movies;\n\\q\n")
	if !strings.Contains(out, "error:") {
		t.Fatal("error not reported")
	}
	if !strings.Contains(out, "(1 rows)") {
		t.Fatal("REPL must keep working after an error")
	}
}

func TestREPLMetaCommands(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "\\d\n\\ledger\n\\wat\n\\q\n")
	if !strings.Contains(out, "table movies (60 rows)") {
		t.Fatalf("\\d output missing:\n%s", out)
	}
	if !strings.Contains(out, "crowd spending: $0.00") {
		t.Fatal("\\ledger output missing")
	}
	if !strings.Contains(out, "tombstones") {
		t.Fatalf("\\d output missing storage health line:\n%s", out)
	}
	if !strings.Contains(out, "unknown meta command") {
		t.Fatal("unknown meta command not reported")
	}
}

func TestREPLDescribeShowsCompaction(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "DELETE FROM movies WHERE movie_id < 10;\n\\d\n\\q\n")
	if !strings.Contains(out, "10 tombstones") {
		t.Fatalf("\\d output missing tombstone count:\n%s", out)
	}
	if res := db.CompactNow()["movies"]; !res.Compacted || res.RowsReclaimed != 10 {
		t.Fatalf("CompactNow = %+v", res)
	}
	// After compaction the tombstone count goes back DOWN and the
	// cumulative compaction line appears.
	out = runREPL(t, db, "\\d\n\\q\n")
	if !strings.Contains(out, "0 tombstones") {
		t.Fatalf("\\d still shows tombstones after compaction:\n%s", out)
	}
	if !strings.Contains(out, "compaction: 1 runs reclaimed 10 rows") {
		t.Fatalf("\\d missing compaction stats:\n%s", out)
	}
}

func TestREPLExpandMeta(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "\\expand Comedy CROWD\n\\d\n\\q\n")
	if !strings.Contains(out, "schema expanded: movies.Comedy via CROWD") {
		t.Fatalf("expansion missing:\n%s", out)
	}
	if !strings.Contains(out, "expanded at query time") {
		t.Fatal("expanded column not marked in \\d")
	}
	out = runREPL(t, db, "\\expand\n\\q\n")
	if !strings.Contains(out, "usage:") {
		t.Fatal("usage hint missing")
	}
}

func TestREPLTimingToggle(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "SELECT COUNT(*) FROM movies;\n\\timing\nSELECT COUNT(*) FROM movies;\n\\timing\nSELECT COUNT(*) FROM movies;\n\\q\n")
	if !strings.Contains(out, "timing is on") || !strings.Contains(out, "timing is off") {
		t.Fatalf("\\timing toggle feedback missing:\n%s", out)
	}
	// Exactly one statement ran with timing on.
	if n := strings.Count(out, "Time: "); n != 1 {
		t.Fatalf("want 1 Time: line, got %d:\n%s", n, out)
	}
}

func TestREPLTimingCoversErrors(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, "\\timing\nSELECT * FROM nope;\n\\q\n")
	if !strings.Contains(out, "error:") || !strings.Contains(out, "Time: ") {
		t.Fatalf("timing must be reported even for failed statements:\n%s", out)
	}
}

func TestREPLQuitVariants(t *testing.T) {
	for _, q := range []string{`\q`, `\quit`, `\exit`} {
		db := testDB(t)
		out := runREPL(t, db, q+"\nSELECT COUNT(*) FROM movies;\n")
		if strings.Contains(out, "(1 rows)") {
			t.Fatalf("%s did not stop the REPL", q)
		}
	}
}

func TestREPLEmptyStatementIgnored(t *testing.T) {
	db := testDB(t)
	out := runREPL(t, db, ";\n;;\n\\q\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("empty statements must be ignored:\n%s", out)
	}
}
