// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic substrates of this repository.
//
// Usage:
//
//	experiments [-scale tiny|small|medium|paper] [-seed N] [-reps N]
//	            [-run all|1|2|3|4|5|6|fig3|fig4|tsvm|consensus] [-quiet]
//
// Examples:
//
//	experiments -run all                  # everything at the default scale
//	experiments -run 3 -scale medium      # Table 3 at a larger scale
//	experiments -run fig4 -seed 7         # Figure 4 with another seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crowddb/internal/dataset"
	"crowddb/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "universe scale: tiny, small, medium, paper")
	seed := flag.Int64("seed", 1, "random seed for all generators")
	reps := flag.Int("reps", 0, "repetitions for Tables 3-6 (0 = default)")
	run := flag.String("run", "all", "what to run: all, 1, 2, 3, 4, 5, 6, fig3, fig4, tsvm, consensus")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	flag.Parse()

	if err := realMain(*scale, *seed, *reps, *run, *quiet, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func scaleByName(name string) (dataset.Scale, error) {
	switch strings.ToLower(name) {
	case "tiny":
		return dataset.ScaleTiny, nil
	case "small":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	case "paper":
		return dataset.ScalePaper, nil
	default:
		return dataset.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

func realMain(scaleName string, seed int64, reps int, run string, quiet bool, w io.Writer) error {
	sc, err := scaleByName(scaleName)
	if err != nil {
		return err
	}
	opt := experiments.DefaultOptions()
	opt.Scale = sc
	opt.Seed = seed
	if scaleName == "tiny" {
		opt = experiments.TinyOptions()
		opt.Seed = seed
	}
	if reps > 0 {
		opt.Repetitions = reps
		opt.Table4Repetitions = 0 // refill from Repetitions
	}
	if !quiet {
		opt.Log = os.Stderr
	}

	want := func(keys ...string) bool {
		if run == "all" {
			return true
		}
		for _, k := range keys {
			if run == k {
				return true
			}
		}
		return false
	}

	// Tables 5/6 do not need the movie environment.
	needEnv := want("1", "2", "3", "4", "fig3", "fig4", "tsvm", "consensus")

	var env *experiments.Env
	if needEnv {
		env, err = experiments.NewEnv(opt)
		if err != nil {
			return err
		}
	}

	sep := func() { fmt.Fprintln(w, strings.Repeat("-", 78)) }

	var t1 *experiments.Table1Result
	if want("1", "fig3", "fig4") {
		t1, err = env.RunCrowdExperiments()
		if err != nil {
			return err
		}
	}
	if want("1") {
		sep()
		t1.Render(w)
	}
	if want("2") {
		res, err := env.RunTable2(5)
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("consensus") {
		res, err := env.RunConsensus(2000)
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("fig3", "fig4") {
		figs, err := env.RunBoostExperiments(t1)
		if err != nil {
			return err
		}
		if want("fig3") {
			sep()
			figs.RenderFigure3(w)
		}
		if want("fig4") {
			sep()
			figs.RenderFigure4(w)
		}
	}
	if want("3") {
		res, err := env.RunTable3()
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("4") {
		res, err := env.RunTable4()
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("5") {
		res, err := experiments.RunTable5(opt)
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("6") {
		res, err := experiments.RunTable6(opt)
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	if want("tsvm") {
		res, err := env.RunTSVMComparison("Comedy", 40)
		if err != nil {
			return err
		}
		sep()
		res.Render(w)
	}
	sep()
	return nil
}
