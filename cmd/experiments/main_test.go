package main

import (
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper", "TINY"} {
		if _, err := scaleByName(name); err != nil {
			t.Errorf("scaleByName(%q): %v", name, err)
		}
	}
	if _, err := scaleByName("galactic"); err == nil {
		t.Fatal("unknown scale must fail")
	}
}

// The full pipeline smoke test: every artifact renders at tiny scale.
// Fast artifacts run individually; the expensive Table 4 and figures are
// covered by the "all" run in the experiments package tests and benches.
func TestRealMainSingleArtifacts(t *testing.T) {
	for _, run := range []string{"1", "2", "5", "tsvm", "consensus"} {
		var sb strings.Builder
		if err := realMain("tiny", 1, 2, run, true, &sb); err != nil {
			t.Fatalf("run=%s: %v", run, err)
		}
		if len(sb.String()) < 40 {
			t.Fatalf("run=%s produced no output:\n%s", run, sb.String())
		}
	}
}

func TestRealMainRejectsBadScale(t *testing.T) {
	var sb strings.Builder
	if err := realMain("galactic", 1, 0, "1", true, &sb); err == nil {
		t.Fatal("bad scale must fail")
	}
}

func TestRealMainTable6WithoutEnv(t *testing.T) {
	// Tables 5/6 must not build the movie environment.
	var sb strings.Builder
	if err := realMain("tiny", 1, 2, "6", true, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "board games") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
