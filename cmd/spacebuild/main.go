// Command spacebuild trains a perceptual space from a ratings CSV and
// writes the item coordinates as CSV — the offline preprocessing step a
// production deployment would run against its own Social-Web rating dump.
//
// Input format (one rating per line, header optional):
//
//	item_id,user_id,score
//
// Item and user ids must be non-negative integers; ids index the output
// rows. Usage:
//
//	spacebuild -in ratings.csv -out space.csv [-dims 100] [-lambda 0.02]
//	           [-epochs 25] [-seed 1] [-demo]
//
// With -demo, a synthetic movie universe's ratings are used instead of
// -in, which makes the tool runnable without any data files.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"crowddb/internal/dataset"
	"crowddb/internal/space"
)

func main() {
	in := flag.String("in", "", "input ratings CSV (item_id,user_id,score)")
	out := flag.String("out", "", "output coordinates CSV (default stdout)")
	dims := flag.Int("dims", 100, "space dimensionality d")
	lambda := flag.Float64("lambda", 0.02, "regularization λ")
	epochs := flag.Int("epochs", 25, "SGD epochs")
	seed := flag.Int64("seed", 1, "random seed")
	demo := flag.Bool("demo", false, "use a synthetic demo universe instead of -in")
	flag.Parse()

	if err := run(*in, *out, *dims, *lambda, *epochs, *seed, *demo); err != nil {
		fmt.Fprintln(os.Stderr, "spacebuild:", err)
		os.Exit(1)
	}
}

func run(in, out string, dims int, lambda float64, epochs int, seed int64, demo bool) error {
	var data *space.Dataset
	switch {
	case demo:
		u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, seed))
		if err != nil {
			return err
		}
		data = u.Ratings
		fmt.Fprintf(os.Stderr, "demo universe: %d items, %d users, %d ratings\n",
			data.Items, data.Users, len(data.Ratings))
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		data, err = ReadRatingsCSV(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %d ratings (%d items, %d users, density %.2f%%)\n",
			len(data.Ratings), data.Items, data.Users, 100*data.Density())
	default:
		return fmt.Errorf("either -in or -demo is required")
	}

	cfg := space.DefaultConfig()
	cfg.Dims = dims
	cfg.Lambda = lambda
	cfg.Epochs = epochs
	cfg.Seed = seed
	model, stats, err := space.TrainEuclidean(data, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained d=%d space, final RMSE %.4f\n", dims, stats.FinalRMSE())

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return WriteSpaceCSV(w, space.FromModel(model))
}

// ReadRatingsCSV parses item_id,user_id,score triples; a non-numeric first
// line is treated as a header and skipped.
func ReadRatingsCSV(r io.Reader) (*space.Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	var ratings []space.Rating
	maxItem, maxUser := -1, -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		item, err1 := strconv.Atoi(rec[0])
		user, err2 := strconv.Atoi(rec[1])
		score, err3 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("line %d: malformed rating %v", line, rec)
		}
		if item < 0 || user < 0 {
			return nil, fmt.Errorf("line %d: negative id %v", line, rec)
		}
		ratings = append(ratings, space.Rating{Item: int32(item), User: int32(user), Score: float32(score)})
		if item > maxItem {
			maxItem = item
		}
		if user > maxUser {
			maxUser = user
		}
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("no ratings found")
	}
	return &space.Dataset{Items: maxItem + 1, Users: maxUser + 1, Ratings: ratings}, nil
}

// WriteSpaceCSV emits one line per item: item_id,coord_0,…,coord_{d−1}.
func WriteSpaceCSV(w io.Writer, sp *space.Space) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < sp.NumItems(); i++ {
		if _, err := fmt.Fprintf(bw, "%d", i); err != nil {
			return err
		}
		for _, v := range sp.Vector(i) {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
