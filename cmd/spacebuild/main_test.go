package main

import (
	"os"
	"strings"
	"testing"

	"crowddb/internal/space"
	"crowddb/internal/vecmath"
)

var osReadFile = os.ReadFile

func TestReadRatingsCSV(t *testing.T) {
	in := `item_id,user_id,score
0,0,4
1,0,2.5
0,1,5
2,1,1
`
	data, err := ReadRatingsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if data.Items != 3 || data.Users != 2 || len(data.Ratings) != 4 {
		t.Fatalf("shape = %d items, %d users, %d ratings", data.Items, data.Users, len(data.Ratings))
	}
	if data.Ratings[1].Score != 2.5 {
		t.Fatalf("score = %v", data.Ratings[1].Score)
	}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRatingsCSVWithoutHeader(t *testing.T) {
	data, err := ReadRatingsCSV(strings.NewReader("0,0,3\n1,1,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Ratings) != 2 {
		t.Fatalf("ratings = %d", len(data.Ratings))
	}
}

func TestReadRatingsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"header only":       "item,user,score\n",
		"mid-file garbage":  "0,0,3\nx,y,z\n",
		"negative id":       "-1,0,3\n",
		"wrong field count": "0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadRatingsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteSpaceCSVRoundTrip(t *testing.T) {
	coords := vecmath.NewMatrix(3, 2)
	copy(coords.Data, []float64{1, 2, 3.5, -4, 0, 0.25})
	sp := space.NewSpace(coords)
	var sb strings.Builder
	if err := WriteSpaceCSV(&sb, sp); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "1,3.5,-4" {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestRunDemoEndToEnd(t *testing.T) {
	tmp := t.TempDir() + "/space.csv"
	if err := run("", tmp, 4, 0.02, 2, 1, true); err != nil {
		t.Fatal(err)
	}
	// The output must be loadable as CSV with 1+4 fields per line.
	data, err := readFile(t, tmp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) != 300 { // ScaleTiny items
		t.Fatalf("lines = %d", len(lines))
	}
	if got := len(strings.Split(lines[0], ",")); got != 5 {
		t.Fatalf("fields = %d", got)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run("", "", 4, 0.02, 2, 1, false); err == nil {
		t.Fatal("missing -in and -demo must fail")
	}
	if err := run("/does/not/exist.csv", "", 4, 0.02, 2, 1, false); err == nil {
		t.Fatal("unreadable input must fail")
	}
}

func readFile(t *testing.T, path string) (string, error) {
	t.Helper()
	b, err := osReadFile(path)
	return string(b), err
}
