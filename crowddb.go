// Package crowddb is a crowd-enabled relational database with
// query-driven schema expansion — a from-scratch Go reproduction of
// Selke, Lofi & Balke, "Pushing the Boundaries of Crowd-enabled Databases
// with Query-driven Schema Expansion", PVLDB 5(6), 2012.
//
// A crowddb database answers SQL queries even when they reference
// attributes that no column holds yet: the missing column is created at
// query time and filled either by direct crowd-sourcing (one HIT per
// tuple batch, majority-voted) or — the paper's contribution — by
// extracting the attribute from a *perceptual space* built from
// Social-Web rating data, using only a small crowd-sourced training
// sample and a support vector machine.
//
// # Quick start
//
//	db := crowddb.New(service)        // service: a JudgmentService
//	db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`)
//	// … insert rows …
//	db.AttachSpace("movies", "movie_id", space)
//	db.RegisterExpandable("movies", "is_comedy", crowddb.KindBool,
//	    crowddb.ExpandOptions{SamplesPerClass: 40})
//
//	// The paper's running example — is_comedy does not exist yet; the
//	// database expands the schema, crowd-sources a training sample,
//	// trains an SVM on the perceptual space, fills the column, and only
//	// then answers:
//	res, report, err := db.ExecSQL(
//	    `SELECT name FROM movies WHERE is_comedy = true`)
//
// # Asynchronous expansion and serving
//
// Crowd expansions take (simulated) minutes, so they run on a background
// worker pool rather than the caller's goroutine. ExecSQL still blocks
// until the answer is complete, but concurrent queries hitting the same
// missing column share a single expansion job (singleflight — one crowd
// job, one ledger charge), and read-only queries keep flowing while an
// expansion is in flight. ExecSQLAsync never waits on the crowd:
//
//	res, job, err := db.ExecSQLAsync(
//	    `SELECT name FROM movies WHERE is_comedy = true`)
//	if job != nil {            // expansion started (or joined): poll it
//	    report, err := job.Wait(ctx)
//	    res, _, err = db.ExecSQL(…) // re-issue once done
//	}
//
// Job status is observable via db.Job(id) / db.Jobs(), each job carrying
// its own cost ledger. cmd/crowdserve serves this API over HTTP/JSON
// (POST /query, GET /jobs/{id}, GET /schema/{table}, GET /ledger) with a
// bounded admission queue and graceful shutdown; see internal/server.
//
// See examples/quickstart for a complete runnable program, and DESIGN.md
// for the system inventory and the experiment reproduction index
// (DESIGN.md §7 covers the scheduler and serving layer).
package crowddb

import (
	"math/rand"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/space"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
)

// DB is a crowd-enabled database (see package documentation).
type DB = core.DB

// New creates an in-memory crowd-enabled database using the given
// judgment service. The service may be nil for databases that only use
// GoldFill. For a database that survives restarts, use Open.
func New(service JudgmentService) *DB { return core.NewDB(service) }

// Options configures a database: judgment service, durability (DataDir,
// Fsync, SegmentBytes), and expansion-scheduler sizing (Workers,
// QueueDepth).
type Options = core.Options

// Open creates a crowd-enabled database. With Options.DataDir set, all
// state — tables, crowd-expanded columns and their provenance, space
// bindings, the expandable registry, ledger totals, and job history — is
// persisted to a write-ahead log plus snapshots and recovered on the next
// Open, so a restart never re-elicits (or re-charges for) a column the
// crowd already filled. DB.Snapshot compacts the log; DB.Close flushes it.
func Open(opts Options) (*DB, error) { return core.Open(opts) }

// JudgmentService obtains human judgments for items; implement it to
// connect a real crowd-sourcing platform, or use NewSimulatedCrowd.
type JudgmentService = core.JudgmentService

// SimulatedCrowd is a JudgmentService backed by the bundled marketplace
// simulator.
type SimulatedCrowd = core.SimulatedCrowd

// NewSimulatedCrowd wires a worker population and an item-model source
// into a JudgmentService.
func NewSimulatedCrowd(pop *crowd.Population, items core.ItemModelFunc, rng *rand.Rand) *SimulatedCrowd {
	return core.NewSimulatedCrowd(pop, items, rng)
}

// BatchJudgmentService is the optional batching extension of
// JudgmentService: one call elicits several questions in ONE shared HIT
// group (see Options.BatchWindow). SimulatedCrowd implements it.
type BatchJudgmentService = core.BatchJudgmentService

// BatchRequest is one elicitation's share of a shared HIT group.
type BatchRequest = core.BatchRequest

// BudgetStatus is one API key's budget cap and cumulative crowd spend
// (see DB.SetBudget / DB.Budgets and Options.DefaultBudget).
type BudgetStatus = core.BudgetStatus

// ErrBudgetExceeded marks an expansion rejected because its API key's
// budget cap cannot cover the projected crowd cost.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// ExpandOptions tunes one schema expansion.
type ExpandOptions = core.ExpandOptions

// ExpansionReport describes what one schema expansion did.
type ExpansionReport = core.ExpansionReport

// GoldValue is one expert-provided numeric judgment for GoldFill.
type GoldValue = core.GoldValue

// LedgerTotals is a snapshot of cumulative crowd spending.
type LedgerTotals = core.LedgerTotals

// Result is a query result set.
type Result = core.Result

// RowStream is a pull-based SELECT result (db.ExecSQLStream): rows are
// produced on demand by the planner/iterator executor, with storage read
// locks held only per scan batch. A query that triggers a schema
// expansion completes the crowd job before the first row is produced.
type RowStream = core.RowStream

// Job is a handle on an asynchronous expansion job (Wait/Status/Done).
type Job = jobs.Job

// JobStatus is a point-in-time snapshot of an expansion job, including
// its lifecycle state and per-job cost ledger.
type JobStatus = jobs.Status

// Space is an immutable perceptual-space snapshot of item coordinates.
type Space = space.Space

// SpaceConfig holds factor-model hyperparameters (the paper's d and λ).
type SpaceConfig = space.Config

// DefaultSpaceConfig mirrors the paper's published hyperparameters
// (d = 100, λ = 0.02).
func DefaultSpaceConfig() SpaceConfig { return space.DefaultConfig() }

// Rating is one ⟨item, user, score⟩ triple of Social-Web feedback.
type Rating = space.Rating

// RatingDataset is a rating collection over item/user index spaces.
type RatingDataset = space.Dataset

// BuildSpace trains the paper's Euclidean-embedding factor model on rating
// data and returns the resulting perceptual space.
func BuildSpace(data *RatingDataset, cfg SpaceConfig) (*Space, error) {
	model, _, err := space.TrainEuclidean(data, cfg)
	if err != nil {
		return nil, err
	}
	return space.FromModel(model), nil
}

// WorkloadStats is the workload subsystem's observable state (DB.Workload
// and GET /workload): durable co-access counters, the recent observation
// trace, result-cache effectiveness, and the speculative budget account.
// See Options.SpeculativeBudget / Options.CacheBytes and DESIGN.md §13.
type WorkloadStats = core.WorkloadStats

// WorkloadObservation is one workload event — a query's footprint on one
// table. DB.RecordObservation accepts these to warm the co-access model
// from an external query log.
type WorkloadObservation = workload.Observation

// Workload observation kinds.
const (
	WorkloadAccess = workload.KindAccess
	WorkloadMiss   = workload.KindMiss
	WorkloadExpand = workload.KindExpand
)

// Value kinds for RegisterExpandable.
const (
	KindBool  = storage.KindBool
	KindInt   = storage.KindInt
	KindFloat = storage.KindFloat
	KindText  = storage.KindText
)
