package crowddb_test

import (
	"math/rand"
	"testing"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
)

// TestPublicAPIEndToEnd exercises the façade exactly as the package
// documentation advertises: build a space from ratings, wire a simulated
// crowd, register an expandable column, and let a query expand the schema.
func TestPublicAPIEndToEnd(t *testing.T) {
	universe, err := dataset.Generate(dataset.Movies(dataset.Scale{
		Items: 150, Users: 400, RatingsPerUser: 50,
	}, 77))
	if err != nil {
		t.Fatal(err)
	}

	cfg := crowddb.DefaultSpaceConfig()
	if cfg.Dims != 100 || cfg.Lambda != 0.02 {
		t.Fatalf("default config must mirror the paper: %+v", cfg)
	}
	cfg.Dims = 12
	cfg.Epochs = 15
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.NumItems() != 150 || space.Dims() != 12 {
		t.Fatalf("space shape = %d×%d", space.NumItems(), space.Dims())
	}

	rng := rand.New(rand.NewSource(77))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 30}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))

	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", space); err != nil {
		t.Fatal(err)
	}
	db.RegisterExpandable("movies", "Comedy", crowddb.KindBool,
		crowddb.ExpandOptions{SamplesPerClass: 25})

	res, report, err := db.ExecSQL(`SELECT name FROM movies WHERE Comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("query must have expanded the schema")
	}
	if report.Filled != 150 {
		t.Fatalf("filled = %d", report.Filled)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no comedies found")
	}
	led := db.Ledger()
	if led.Cost <= 0 || led.Cost != report.Cost {
		t.Fatalf("ledger = %+v vs report cost %v", led, report.Cost)
	}

	// GoldFill is part of the façade too.
	gold := make([]crowddb.GoldValue, 0, 10)
	for i := 0; i < 10; i++ {
		gold = append(gold, crowddb.GoldValue{ItemID: i * 15, Value: float64(i)})
	}
	if _, err := db.GoldFill("movies", "score", gold); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecSQL(`SELECT AVG(score) FROM movies`); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSpacePropagatesErrors(t *testing.T) {
	_, err := crowddb.BuildSpace(&crowddb.RatingDataset{Items: 2, Users: 2}, crowddb.DefaultSpaceConfig())
	if err == nil {
		t.Fatal("empty ratings must fail")
	}
}
