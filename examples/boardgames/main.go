// Board games: the Table 6 domain, exercised through plain SQL.
//
// BoardGameGeek rates on a 1–10 scale and its community categorizes games
// with a mix of perceptual labels ("Party Game") and mechanical facts
// ("Modular Board"). This example expands several categories and then runs
// analytic SQL over the expanded schema — and shows how a factual category
// resists extraction from rating behaviour.
//
// It also demonstrates the ItemModelFunc seam: SQL column names like
// party_game are resolved to the community's category names by a small
// adapter around the universe's item models.
//
// Run with:
//
//	go run ./examples/boardgames
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/eval"
	"crowddb/internal/storage"
)

// normalize maps a category name to a SQL-friendly column name:
// "Party Game" → "party_game".
func normalize(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '/' || r == '-' || r == '\'' || r == '_':
			sb.WriteRune('_')
		}
	}
	return strings.Trim(sb.String(), "_")
}

func main() {
	universe, err := dataset.Generate(dataset.BoardGames(dataset.ScaleTiny, 9))
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 16
	cfg.Epochs = 25
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Resolve SQL column names back to community category names so the
	// simulated crowd knows which question is being asked.
	byColumn := map[string]string{}
	for _, name := range universe.CategoryNames() {
		byColumn[normalize(name)] = name
	}
	items := func(question string) ([]crowd.Item, error) {
		if cat, ok := byColumn[normalize(question)]; ok {
			return universe.CrowdItems(cat)
		}
		return nil, fmt.Errorf("no such category %q", question)
	}

	rng := rand.New(rand.NewSource(9))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 35}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, items, rng))

	mustExec(db, `CREATE TABLE games (game_id INTEGER, name TEXT, year INTEGER)`)
	tbl, _ := db.Catalog().Get("games")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AttachSpace("games", "game_id", space); err != nil {
		log.Fatal(err)
	}

	// Expand two perceptual categories and one factual one via SQL DDL.
	for _, col := range []string{"party_game", "cooperative", "modular_board"} {
		sql := fmt.Sprintf("EXPAND TABLE games ADD COLUMN %s BOOLEAN USING SPACE WITH SAMPLES 40", col)
		_, rep, err := db.ExecSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("expanded %-14s: %d filled, $%.2f, training size %d\n",
			col, rep.Filled, rep.Cost, rep.TrainingSize)
	}

	// Analytic SQL over the expanded schema.
	res, _, err := db.ExecSQL(`SELECT COUNT(*) n FROM games WHERE party_game = true`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := res.Rows[0][0].AsInt()
	fmt.Printf("\nparty games in the catalog: %d\n", n)

	res, _, err = db.ExecSQL(`
		SELECT name, year FROM games
		WHERE cooperative = true AND year >= 2000
		ORDER BY year DESC LIMIT 6`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recent cooperative games:")
	for _, row := range res.Rows {
		y, _ := row[1].AsInt()
		fmt.Printf("  %-30s %d\n", row[0], y)
	}

	res, _, err = db.ExecSQL(`SELECT AVG(year) FROM games WHERE party_game = true`)
	if err != nil {
		log.Fatal(err)
	}
	my, _ := res.Rows[0][0].AsFloat()
	fmt.Printf("party games: mean year %.0f\n\n", my)

	// Quality vs the community reference: perceptual beats factual.
	fmt.Println("extraction quality (g-mean vs community labels):")
	for col, cat := range map[string]string{
		"party_game":    "Party Game",
		"cooperative":   "Cooperative",
		"modular_board": "Modular Board",
	} {
		g := gmeanFor(tbl, col, universe.Categories[cat].Reference)
		kind := universe.Categories[cat].Spec.Kind
		fmt.Printf("  %-14s (%s): g-mean %.2f\n", col, kind, g)
	}
	fmt.Println("\nrating behaviour encodes how games feel, not their mechanics —")
	fmt.Println("\"party game\" extracts well, \"modular board\" does not (paper §4.5).")
}

func gmeanFor(tbl *storage.Table, column string, ref []bool) float64 {
	schema := tbl.Schema()
	colIdx, ok := schema.Lookup(column)
	if !ok {
		return 0
	}
	idIdx, _ := schema.Lookup("game_id")
	var conf eval.Confusion
	tbl.Scan(func(_ int, row storage.Row) bool {
		v := row[colIdx]
		if v.IsNull() {
			return true
		}
		b, _ := v.AsBool()
		id, _ := row[idIdx].AsInt()
		conf.Observe(b, ref[id])
		return true
	})
	return conf.GMean()
}

func mustExec(db *crowddb.DB, sql string) {
	if _, _, err := db.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
