// Cleaning: identifying questionable HIT responses (§4.4, Table 4).
//
// A movie table is filled with crowd labels containing a known fraction of
// corrupted values. The database's IdentifyQuestionable primitive trains
// an SVM on the perceptual space and flags rows whose label contradicts
// their position in the space. Flagged rows are then re-elicited — the
// paper's recipe for raising data quality at minimal cost.
//
// Run with:
//
//	go run ./examples/cleaning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
)

const genre = "Horror"

func main() {
	universe, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 11))
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 16
	cfg.Epochs = 25
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 30}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))

	mustExec(db, `CREATE TABLE movies (movie_id INTEGER, name TEXT)`)
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", space); err != nil {
		log.Fatal(err)
	}

	// Fill the column with reference labels, then corrupt 15% of them —
	// the controlled setting of Table 4.
	ref := universe.Categories[genre].Reference
	if _, err := tbl.AddColumn(storage.Column{Name: genre, Kind: storage.KindBool, Perceptual: true}); err != nil {
		log.Fatal(err)
	}
	vals := make([]storage.Value, len(ref))
	for i, v := range ref {
		vals[i] = storage.Bool(v)
	}
	swapped := map[int]bool{}
	for len(swapped) < len(ref)*15/100 {
		i := rng.Intn(len(ref))
		if swapped[i] {
			continue
		}
		swapped[i] = true
		b, _ := vals[i].AsBool()
		vals[i] = storage.Bool(!b)
	}
	if err := tbl.FillColumn(genre, vals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d corrupted labels into %d rows (15%%)\n", len(swapped), len(ref))

	// Flag questionable rows.
	flagged, err := db.IdentifyQuestionable("movies", genre)
	if err != nil {
		log.Fatal(err)
	}
	tp := 0
	for _, r := range flagged {
		if swapped[r] {
			tp++
		}
	}
	fmt.Printf("flagged %d rows: precision %.2f, recall %.2f\n",
		len(flagged), float64(tp)/float64(len(flagged)), float64(tp)/float64(len(swapped)))

	// Re-elicit only the flagged rows (vs. re-crowdsourcing everything).
	schema := tbl.Schema()
	colIdx, _ := schema.Lookup(genre)
	before := countCorrect(tbl, colIdx, ref)
	ids := make([]int, 0, len(flagged))
	for _, r := range flagged {
		ids = append(ids, r) // row index == movie_id in this table
	}
	svc := crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng)
	res, err := svc.Collect(genre, ids, crowd.JobConfig{
		ItemsPerHIT: 10, AssignmentsPerItem: 15, PayPerHIT: 0.02,
		JudgmentsPerMinute: 95, AllowDontKnow: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	votes := crowd.MajorityVote(res.Records)
	for _, r := range flagged {
		if label, ok := votes.Label[r]; ok {
			if err := tbl.Set(r, colIdx, storage.Bool(label)); err != nil {
				log.Fatal(err)
			}
		}
	}
	after := countCorrect(tbl, colIdx, ref)
	fullCost := float64(len(ref)) * 15 / 10 * 0.02
	fmt.Printf("re-elicited flagged rows for $%.2f (vs $%.2f to redo everything)\n",
		res.TotalCost, fullCost)
	fmt.Printf("correct labels: %d → %d of %d\n", before, after, len(ref))
}

func countCorrect(tbl *storage.Table, colIdx int, ref []bool) int {
	correct := 0
	tbl.Scan(func(i int, row storage.Row) bool {
		if b, ok := row[colIdx].AsBool(); ok && b == ref[i] {
			correct++
		}
		return true
	})
	return correct
}

func mustExec(db *crowddb.DB, sql string) {
	if _, _, err := db.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
