// Movies: comparing the three expansion strategies on one database.
//
// This example reproduces the §4.2 storyline interactively: the same
// is_comedy attribute is elicited three ways — direct crowd-sourcing,
// perceptual-space extraction, and the hybrid cleaning strategy — and the
// result quality, cost and time are compared against the expert reference.
// It also demonstrates the numeric side: a "humor" score is filled from a
// small expert gold sample via support vector regression, enabling the
// paper's introductory query `SELECT name FROM movies WHERE humor >= 8`.
//
// Run with:
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
	"crowddb/internal/vecmath"
)

const genre = "Comedy"

func main() {
	universe, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 7))
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 16
	cfg.Epochs = 25
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		log.Fatal(err)
	}
	reference := universe.Categories[genre].Reference

	fmt.Println("strategy     filled  unfilled  accuracy     cost    sim-minutes")
	for _, method := range []string{"CROWD", "SPACE", "HYBRID"} {
		// A fresh database and crowd per strategy keeps the comparison fair:
		// same worker population seed, same movies.
		rng := rand.New(rand.NewSource(99))
		pop := crowd.NewPopulation(crowd.PopulationConfig{
			Workers: 60, SpammerFraction: 0.25,
		}, rng)
		db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))
		loadMovies(db, universe)
		if err := db.AttachSpace("movies", "movie_id", space); err != nil {
			log.Fatal(err)
		}

		sql := fmt.Sprintf("EXPAND TABLE movies ADD COLUMN %s BOOLEAN USING %s WITH SAMPLES 40", genre, method)
		_, report, err := db.ExecSQL(sql)
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		acc := accuracy(db, reference)
		fmt.Printf("%-12s %6d  %8d  %7.1f%%  $%6.2f  %11.0f\n",
			method, report.Filled, report.Unfilled, 100*acc, report.Cost, report.Minutes)
	}

	// Numeric attribute via SVR from a small expert gold sample.
	fmt.Println("\nnumeric expansion: humor score from 50 expert judgments (SVR)")
	rng := rand.New(rand.NewSource(123))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 20}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))
	loadMovies(db, universe)
	if err := db.AttachSpace("movies", "movie_id", space); err != nil {
		log.Fatal(err)
	}
	cat := universe.Categories[genre]
	var gold []crowddb.GoldValue
	for i := 0; i < 50; i++ {
		id := i * (len(universe.Items) / 50)
		score := 4.0
		if cat.Truth[id] {
			score = 7.0 + 2*vecmath.Clamp(cat.Margin[id], 0, 1)
		} else {
			score = 4.5 - 3*vecmath.Clamp(cat.Margin[id], 0, 1)
		}
		gold = append(gold, crowddb.GoldValue{ItemID: id, Value: score})
	}
	if _, err := db.GoldFill("movies", "humor", gold); err != nil {
		log.Fatal(err)
	}
	res, _, err := db.ExecSQL(`SELECT name, humor FROM movies WHERE humor >= 8 ORDER BY humor DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most humorous movies (humor >= 8):")
	for _, row := range res.Rows {
		h, _ := row[1].AsFloat()
		fmt.Printf("  %-28s %.1f\n", row[0], h)
	}
}

func loadMovies(db *crowddb.DB, u *dataset.Universe) {
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		log.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range u.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
			log.Fatal(err)
		}
	}
}

func accuracy(db *crowddb.DB, reference []bool) float64 {
	tbl, _ := db.Catalog().Get("movies")
	schema := tbl.Schema()
	colIdx, ok := schema.Lookup(genre)
	if !ok {
		return 0
	}
	idIdx, _ := schema.Lookup("movie_id")
	correct, filled := 0, 0
	tbl.Scan(func(_ int, row storage.Row) bool {
		v := row[colIdx]
		if v.IsNull() {
			return true
		}
		filled++
		b, _ := v.AsBool()
		id, _ := row[idIdx].AsInt()
		if reference[id] == b {
			correct++
		}
		return true
	})
	if filled == 0 {
		return 0
	}
	return float64(correct) / float64(filled)
}
