// Quickstart: the paper's running example end to end.
//
// A movie table has only factual columns. The query
//
//	SELECT name FROM movies WHERE is_comedy = true
//
// references an attribute that does not exist. The crowd-enabled database
// expands the schema at query time: it crowd-sources a small training
// sample, trains an SVM on a perceptual space built from rating data, and
// fills in is_comedy for every movie — then answers the query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/storage"
)

func main() {
	// 1. A synthetic movie universe stands in for IMDb + the Netflix
	//    rating corpus (this repository is an offline reproduction).
	universe, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe: %d movies, %d ratings from %d users\n",
		len(universe.Items), len(universe.Ratings.Ratings), universe.Config.Users)

	// 2. Build the perceptual space from the ratings (paper §3.3).
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 16 // plenty for the demo scale; the paper uses 100
	cfg.Epochs = 25
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perceptual space: %d movies × %d dimensions\n\n",
		space.NumItems(), space.Dims())

	// 3. Wire a simulated crowd marketplace (honest workers).
	rng := rand.New(rand.NewSource(42))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 40}, rng)
	service := crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng)

	// 4. Create the database and load the factual data.
	db := crowddb.New(service)
	mustExec(db, `CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`)
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", space); err != nil {
		log.Fatal(err)
	}

	// 5. Declare that is_comedy may be created by query-driven expansion.
	//    (The dataset names the genre "Comedy"; that string is the crowd
	//    question.)
	db.RegisterExpandable("movies", "Comedy", crowddb.KindBool,
		crowddb.ExpandOptions{SamplesPerClass: 40})

	// 6. The paper's query. The column does not exist — watch it appear.
	res, report, err := db.ExecSQL(`SELECT name FROM movies WHERE Comedy = true ORDER BY name LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	if report != nil {
		fmt.Printf("schema expanded on the fly: method=%s, %d values filled,\n", report.Method, report.Filled)
		fmt.Printf("  crowd work: %d judgments, $%.2f, %.0f simulated minutes\n\n",
			report.Judgments, report.Cost, report.Minutes)
	}
	fmt.Println("first comedies found:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0])
	}

	// 7. The ledger shows what the whole session cost.
	led := db.Ledger()
	fmt.Printf("\ntotal crowd spend: $%.2f for %d judgments in %d jobs\n",
		led.Cost, led.Judgments, led.Jobs)
}

func mustExec(db *crowddb.DB, sql string) {
	if _, _, err := db.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
