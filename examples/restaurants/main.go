// Restaurants: schema expansion in the Table 5 domain.
//
// The paper shows the approach generalizes beyond movies by crawling San
// Francisco restaurant ratings from yelp.com. This example builds the
// synthetic equivalent, trains the perceptual space from restaurant
// ratings, and expands a "Romantic" attribute so a date-night query can be
// answered — contrasting a perceptual category with a factual one
// ("Has Parking"), which rating behaviour cannot predict.
//
// Run with:
//
//	go run ./examples/restaurants
package main

import (
	"fmt"
	"log"
	"math/rand"

	"crowddb"
	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/eval"
	"crowddb/internal/storage"
)

func main() {
	universe, err := dataset.Generate(dataset.Restaurants(dataset.ScaleTiny, 5))
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowddb.DefaultSpaceConfig()
	cfg.Dims = 16
	cfg.Epochs = 25
	space, err := crowddb.BuildSpace(universe.Ratings, cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 40}, rng)
	db := crowddb.New(crowddb.NewSimulatedCrowd(pop, universe.CrowdItems, rng))

	mustExec(db, `CREATE TABLE restaurants (rest_id INTEGER, name TEXT, country TEXT)`)
	tbl, _ := db.Catalog().Get("restaurants")
	for _, it := range universe.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Text(it.Country)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AttachSpace("restaurants", "rest_id", space); err != nil {
		log.Fatal(err)
	}

	// Register both categories for implicit query-driven expansion.
	db.RegisterExpandable("restaurants", "Romantic", crowddb.KindBool,
		crowddb.ExpandOptions{SamplesPerClass: 30})
	db.RegisterExpandable("restaurants", "Has Parking", crowddb.KindBool,
		crowddb.ExpandOptions{SamplesPerClass: 30})

	// The date-night query triggers expansion of the Romantic column.
	res, report, err := db.ExecSQL(`SELECT name FROM restaurants WHERE Romantic = true LIMIT 8`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query-driven expansion: %d values filled for $%.2f\n", report.Filled, report.Cost)
	fmt.Println("romantic restaurants:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0])
	}

	// Quality check against the editorial reference, per category kind.
	fmt.Println("\nextraction quality (g-mean vs editorial labels):")
	for _, name := range []string{"Romantic", "Has Parking"} {
		g, err := gmeanFor(db, universe, name)
		if err != nil {
			// Expand explicitly if the implicit query has not created it.
			if _, err := db.Expand("restaurants", name, crowddb.KindBool,
				crowddb.ExpandOptions{SamplesPerClass: 30}); err != nil {
				log.Fatal(err)
			}
			g, err = gmeanFor(db, universe, name)
			if err != nil {
				log.Fatal(err)
			}
		}
		kind := "perceptual"
		if name == "Has Parking" {
			kind = "factual"
		}
		fmt.Printf("  %-12s (%s): g-mean %.2f\n", name, kind, g)
	}
	fmt.Println("\nperceptual attributes extract well; factual ones do not —")
	fmt.Println("rating behaviour simply does not encode parking lots (paper §4.5).")
}

func gmeanFor(db *crowddb.DB, u *dataset.Universe, column string) (float64, error) {
	tbl, _ := db.Catalog().Get("restaurants")
	schema := tbl.Schema()
	colIdx, ok := schema.Lookup(column)
	if !ok {
		return 0, fmt.Errorf("column %q not yet expanded", column)
	}
	idIdx, _ := schema.Lookup("rest_id")
	ref := u.Categories[column].Reference
	var conf eval.Confusion
	tbl.Scan(func(_ int, row storage.Row) bool {
		v := row[colIdx]
		if v.IsNull() {
			return true
		}
		b, _ := v.AsBool()
		id, _ := row[idIdx].AsInt()
		conf.Observe(b, ref[id])
		return true
	})
	return conf.GMean(), nil
}

func mustExec(db *crowddb.DB, sql string) {
	if _, _, err := db.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
