module crowddb

// Kept at 1.23 so the CI matrix (1.23, 1.24) genuinely exercises both
// toolchains. Note: the `omitzero` JSON tag is honored by encoding/json
// from Go 1.24 and harmlessly ignored on 1.23 (zero timestamps are then
// serialized instead of omitted) — nothing asserts on that shape.
go 1.23
