package core

import (
	"errors"
	"fmt"
	"strings"

	"crowddb/internal/crowd"
	"crowddb/internal/engine"
	"crowddb/internal/jobs"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
)

// ErrExpansionFailed marks errors from an expansion job's execution (as
// opposed to rejection at submission or plain query errors); the HTTP
// layer maps it to a 5xx status.
var ErrExpansionFailed = errors.New("core: expansion failed")

// ErrExpansionInFlight marks an explicit expansion rejected because the
// same column's expansion is already queued or running (HTTP 409: the
// statement's own options would be discarded by a silent join).
var ErrExpansionInFlight = errors.New("core: expansion already in flight")

// ErrNoSuchTable marks a request against an unknown table (HTTP 404).
var ErrNoSuchTable = errors.New("core: no such table")

// Expansion scheduler sizing. Crowd jobs spend their time waiting on
// (simulated) humans, not on CPU, so a small pool is plenty; the queue is
// deep enough that a burst of distinct expandable columns does not bounce.
const (
	defaultExpansionWorkers = 4
	defaultExpansionQueue   = 64
)

// Jobs returns status snapshots of every expansion job ever submitted, in
// submission order.
func (db *DB) Jobs() []jobs.Status { return db.sched.Jobs() }

// Job returns the status of one expansion job by ID.
func (db *DB) Job(id string) (jobs.Status, bool) {
	j, ok := db.sched.Get(id)
	if !ok {
		return jobs.Status{}, false
	}
	return j.Status(), true
}

// JobHandle returns the live job handle for Wait/Done composition.
func (db *DB) JobHandle(id string) (*jobs.Job, bool) { return db.sched.Get(id) }

// ExecSQLAsync parses and executes one statement without ever blocking on
// the crowd. Three outcomes:
//
//   - the statement needs no expansion: result is non-nil, job is nil;
//   - the statement triggers (or joins) an expansion: result is nil and
//     job is the handle to poll or Wait on — re-issue the query once the
//     job is done;
//   - anything else is an error.
//
// This is the serving-path API: an HTTP frontend returns 202 + job ID
// instead of holding a connection open for crowd minutes.
func (db *DB) ExecSQLAsync(sql string) (*Result, *jobs.Job, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return db.ExecAsync(stmt)
}

// ExecAsync executes a parsed statement (see ExecSQLAsync).
func (db *DB) ExecAsync(stmt sqlparse.Statement) (*Result, *jobs.Job, error) {
	if ex, ok := stmt.(*sqlparse.ExpandStmt); ok {
		job, err := db.submitExpandStmt(ex)
		if err != nil {
			return nil, nil, err
		}
		return nil, job, nil
	}
	res, err := db.execEngine(stmt)
	if err == nil {
		return res, nil, nil
	}
	// EXPLAIN never triggers an expansion (see Exec).
	if _, isExplain := stmt.(*sqlparse.ExplainStmt); isExplain {
		return nil, nil, err
	}
	job, expErr := db.submitMissingColumn(err)
	if expErr != nil {
		return nil, nil, expErr
	}
	if job == nil {
		return nil, nil, err
	}
	return nil, job, nil
}

// expansionKey is the singleflight identity of an expansion.
func expansionKey(table, column string) string {
	return strings.ToLower(table) + "." + strings.ToLower(column)
}

// submitExpansion schedules (or joins) the expansion of table.column.
// When implicit is true the job is a query-driven expansion and skips the
// crowd run if a completed job already filled the column — closing the
// race where a query observed the column as missing, lost the CPU, and
// resubmitted after the original job finished. Explicit EXPAND statements
// pass implicit=false: re-expanding an existing column re-elicits it by
// design.
//
// With batching enabled (Options.BatchWindow), the expansion routes
// through the coalescer instead of straight onto the worker pool:
// expansions of the same table submitted within one window merge their
// sampling phases into shared HIT groups (see batch.go). Singleflight
// semantics are identical on both paths.
func (db *DB) submitExpansion(table, column string, kind storage.Kind, opts ExpandOptions, implicit bool) (*jobs.Job, bool, error) {
	if opts.Origin == "" {
		opts.Origin = OriginDemand
	}
	var job *jobs.Job
	var created bool
	var err error
	if db.coalescer != nil {
		job, created, err = db.coalescer.Submit(batchGroupKey(table), expansionKey(table, column), expansionWork{
			table: table, column: column, kind: kind, opts: opts, implicit: implicit,
		})
	} else {
		job, created, err = db.sched.Submit(expansionKey(table, column), func(ctl *jobs.Ctl) (any, error) {
			if implicit && db.columnFilled(table, column) {
				return nil, nil
			}
			runOpts := opts
			runOpts.onPhase = ctl.Phase
			runOpts.onCharge = func(res *crowd.RunResult) {
				ctl.Charge(len(res.Records), res.TotalCost, res.DurationMinutes)
			}
			report, err := db.Expand(table, column, kind, runOpts)
			if err != nil {
				return nil, fmt.Errorf("%w: %s.%s: %w", ErrExpansionFailed, table, column, err)
			}
			return report, nil
		})
	}
	if err != nil || !created {
		return job, created, err
	}
	job.SetOrigin(opts.Origin)
	db.observe(workload.Observation{Table: table, Columns: []string{column}, Kind: workload.KindExpand})
	// A freshly admitted demand expansion is the predictor's trigger:
	// speculate NOW, while the table's batch window is still open, so
	// speculative members merge into the demand member's HIT group. The
	// origin guard stops speculation from cascading off itself (and off
	// admin pre-warms, which carry no "a user will query next" signal).
	if opts.Origin == OriginDemand {
		db.speculate(table, column)
	}
	return job, created, nil
}

// submitExpandStmt schedules an explicit EXPAND statement. An expansion
// of the same column already in flight is an error rather than a silent
// join: the statement's own BUDGET/SAMPLES options would be discarded,
// and "re-elicit" semantics demand a fresh run — retry once the current
// job finishes.
func (db *DB) submitExpandStmt(ex *sqlparse.ExpandStmt) (*jobs.Job, error) {
	col, err := engine.ColumnDefToStorage(ex.Column, storage.ColumnExpanded)
	if err != nil {
		return nil, err
	}
	opts := ExpandOptions{Method: ex.Method, Budget: ex.Budget}
	if ex.Samples > 0 {
		opts.SamplesPerClass = int(ex.Samples)
	}
	job, created, err := db.submitExpansion(ex.Table, ex.Column.Name, col.Kind, opts, false)
	if err != nil {
		return nil, err
	}
	if !created {
		return nil, fmt.Errorf("%w: %s.%s (%s); retry after it completes",
			ErrExpansionInFlight, ex.Table, ex.Column.Name, job.ID())
	}
	return job, nil
}

// SubmitExpand schedules an explicit expansion programmatically — the
// POST /admin/expand path: pre-warm a column before queries need it,
// attributed to an API key whose budget cap is checked up front. The
// projected sampling cost is reserved against opts.APIKey at submission
// (ErrBudgetExceeded maps to 402 at the HTTP layer); the job re-checks
// authoritatively before issuing HITs. Like EXPAND statements, a same-
// column expansion already in flight is an error, not a silent join.
func (db *DB) SubmitExpand(table, column string, kind storage.Kind, opts ExpandOptions) (*jobs.Job, error) {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	// Pre-flight budget check on a submission-time plan. Best-effort: a
	// plan that cannot be built yet (HYBRID's two rounds, missing space)
	// defers entirely to the run-time check inside the job.
	pre := opts
	defaultMethod := sqlparse.ExpandCrowd
	if db.binding(table) != nil {
		defaultMethod = sqlparse.ExpandSpace
	}
	pre.fillDefaults(defaultMethod)
	if pre.Method == sqlparse.ExpandHybrid {
		pre.Method = sqlparse.ExpandCrowd // estimate HYBRID by its first round
	}
	if e, err := db.planElicitation(tbl, column, pre); err == nil {
		if err := db.checkBudget(pre.APIKey, e.projected()); err != nil {
			return nil, err
		}
	}
	job, created, err := db.submitExpansion(table, column, kind, opts, false)
	if err != nil {
		return nil, err
	}
	if !created {
		return nil, fmt.Errorf("%w: %s.%s (%s); retry after it completes",
			ErrExpansionInFlight, table, column, job.ID())
	}
	return job, nil
}

// columnFilled reports whether table.column exists and holds at least one
// non-NULL value — the signature of an expansion that already ran.
func (db *DB) columnFilled(table, column string) bool {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return false
	}
	colIdx, ok := tbl.Schema().Lookup(column)
	if !ok {
		return false
	}
	filled := false
	tbl.Scan(func(i int, row storage.Row) bool {
		if !row[colIdx].IsNull() {
			filled = true
			return false
		}
		return true
	})
	return filled
}
