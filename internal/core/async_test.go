package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/storage"
)

// slowService is a deterministic JudgmentService: every item gets
// Assignments judgments whose majority equals (id%2 == 0). An optional
// gate stalls Collect so tests can hold an expansion in flight.
type slowService struct {
	gate  chan struct{} // Collect blocks until closed (nil = no stall)
	calls atomic.Int32
}

func (s *slowService) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	res := &crowd.RunResult{DurationMinutes: 1}
	for _, id := range itemIDs {
		for a := 0; a < cfg.AssignmentsPerItem; a++ {
			ans := crowd.Positive
			if id%2 == 1 {
				ans = crowd.Negative
			}
			res.Records = append(res.Records, crowd.Record{ItemID: id, WorkerID: a, Answer: ans})
		}
	}
	res.TotalCost = float64(len(res.Records)) * cfg.PayPerHIT / float64(cfg.ItemsPerHIT)
	return res, nil
}

// newAsyncDB builds a 40-row table with a registered CROWD-method
// expandable column backed by the given service.
func newAsyncDB(t testing.TB, service JudgmentService) *DB {
	t.Helper()
	db := NewDB(service)
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%03d", i)), storage.Int(int64(1970+i))); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterExpandable("movies", "is_comedy", storage.KindBool,
		ExpandOptions{Method: "CROWD"})
	return db
}

// TestSingleflightOneJobOneCharge is the acceptance test for singleflight:
// N concurrent queries on the same unexpanded column must produce exactly
// one expansion job, one service call, and one ledger charge.
func TestSingleflightOneJobOneCharge(t *testing.T) {
	svc := &slowService{gate: make(chan struct{})}
	db := newAsyncDB(t, svc)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	reports := make([]*ExpansionReport, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, reports[i], errs[i] = db.ExecSQL(`SELECT name FROM movies WHERE is_comedy = true`)
		}(i)
	}
	// Let the goroutines pile onto the missing column, then release the
	// crowd.
	time.Sleep(20 * time.Millisecond)
	close(svc.gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("service called %d times, want 1 (singleflight broken)", got)
	}
	if led := db.Ledger(); led.Jobs != 1 {
		t.Fatalf("ledger charged %d jobs, want 1", led.Jobs)
	}
	jobList := db.Jobs()
	if len(jobList) != 1 {
		t.Fatalf("%d expansion jobs, want 1", len(jobList))
	}
	st := jobList[0]
	if st.State != jobs.StateDone || st.Ledger.Charges != 1 {
		t.Fatalf("job status = %+v", st)
	}
	// At least one caller gets the report; every caller gets the rows.
	gotReport := 0
	for _, r := range reports {
		if r != nil {
			gotReport++
		}
	}
	if gotReport == 0 {
		t.Fatal("no caller received the expansion report")
	}
}

// TestConcurrentReadsDuringExpansion fires read-only SELECTs on other
// columns while an expansion is held in flight: the reads must complete
// without waiting for the crowd (run under -race in CI).
func TestConcurrentReadsDuringExpansion(t *testing.T) {
	svc := &slowService{gate: make(chan struct{})}
	db := newAsyncDB(t, svc)

	// Kick off the expansion asynchronously; it stalls on the gate.
	_, job, err := db.ExecSQLAsync(`SELECT name FROM movies WHERE is_comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if job == nil {
		t.Fatal("expected a job handle for the expanding query")
	}
	if st := job.Status(); st.State.Terminal() {
		t.Fatalf("job already terminal: %s", st.State)
	}

	// 8 readers × 50 queries each against live columns, while the
	// expansion is pending. None of them may block on the crowd gate.
	var wg sync.WaitGroup
	readErrs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, rep, err := db.ExecSQL(`SELECT COUNT(*) FROM movies WHERE year > 1980`)
				if err != nil {
					readErrs <- err
					return
				}
				if rep != nil {
					readErrs <- fmt.Errorf("read-only query expanded something")
					return
				}
				if n, _ := res.Rows[0][0].AsInt(); n != 29 {
					readErrs <- fmt.Errorf("count = %d, want 29", n)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-readErrs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("readers blocked behind the in-flight expansion")
	}

	// Release the crowd; the async job completes and the query now
	// answers directly.
	close(svc.gate)
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, job2, err := db.ExecSQLAsync(`SELECT COUNT(*) FROM movies WHERE is_comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if job2 != nil {
		t.Fatal("column already expanded; no new job expected")
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 20 {
		t.Fatalf("comedies = %d, want 20", n)
	}
}

// TestAsyncExpandStatement routes an explicit EXPAND through the async
// API and polls it to completion.
func TestAsyncExpandStatement(t *testing.T) {
	svc := &slowService{}
	db := newAsyncDB(t, svc)

	res, job, err := db.ExecSQLAsync(`EXPAND TABLE movies ADD COLUMN is_comedy BOOLEAN USING CROWD`)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || job == nil {
		t.Fatalf("want job-only response, got res=%v job=%v", res, job)
	}
	result, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	report, ok := result.(*ExpansionReport)
	if !ok || report.Filled != 40 {
		t.Fatalf("report = %+v", result)
	}
	st, ok := db.Job(job.ID())
	if !ok || st.State != jobs.StateDone {
		t.Fatalf("poll: ok=%v st=%+v", ok, st)
	}
	if st.Ledger.Judgments != report.Judgments {
		t.Fatalf("job ledger %d judgments, report %d", st.Ledger.Judgments, report.Judgments)
	}
}

// TestImplicitRaceAfterCompletion covers the resubmit race: a query that
// observed the column as missing but submits after the original job
// finished must not trigger a second crowd run.
func TestImplicitRaceAfterCompletion(t *testing.T) {
	svc := &slowService{}
	db := newAsyncDB(t, svc)

	if _, _, err := db.ExecSQL(`SELECT name FROM movies WHERE is_comedy = true`); err != nil {
		t.Fatal(err)
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("calls = %d", got)
	}
	// Simulate the losing racer: submit the same implicit expansion again.
	spec, ok := db.expandableSpec("movies", "is_comedy")
	if !ok {
		t.Fatal("spec vanished")
	}
	job, created, err := db.submitExpansion("movies", "is_comedy", spec.kind, spec.opts, true)
	if err != nil || !created {
		t.Fatalf("created=%v err=%v", created, err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("late resubmit re-ran the crowd: calls = %d", got)
	}
}
