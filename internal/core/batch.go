package core

import (
	"fmt"
	"strings"

	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Batched HIT elicitation, the cost lever of this layer: when several
// expansions of the same table are in flight together — four genre
// columns touched by one dashboard, a pre-warm sweep over a category set —
// their sampling phases are merged into shared HIT groups. The crowd is
// engaged once per batch: one job, one charge booked to the global
// ledger, the cost split across the member jobs' ledgers in proportion to
// the judgments each received.
//
// The flow: submitExpansion routes into the jobs.Coalescer (grouped by
// table) instead of straight onto the scheduler; when the batching window
// closes, runExpansionBatch receives the sealed members and (1) plans
// each member's sampling phase, (2) enforces its API key's budget cap,
// (3) issues ONE CollectBatch per shareable marketplace configuration,
// and (4) finishes each member — votes, SVM training, column fill — from
// its share of the combined judgment log.

// expansionWork is the payload an expansion carries through the
// coalescer.
type expansionWork struct {
	table, column string
	kind          storage.Kind
	opts          ExpandOptions
	implicit      bool
}

// batchErr wraps a member failure the way scheduler-run expansions do, so
// the HTTP layer classifies batched and solo failures identically.
func batchErr(table, column string, err error) error {
	return fmt.Errorf("%w: %s.%s: %w", ErrExpansionFailed, table, column, err)
}

// runExpansionBatch executes one sealed batch of same-table expansions.
// Members that cannot join a shared HIT group — already-filled implicit
// expansions, plan or budget rejections, HYBRID's two-round protocol —
// are finished individually; the rest are partitioned by marketplace
// configuration and elicited through CollectBatch, one charge per
// partition.
func (db *DB) runExpansionBatch(members []*jobs.BatchMember) {
	type planned struct {
		m *jobs.BatchMember
		w expansionWork
		e *elicitation
	}
	var ready []planned
	for _, m := range members {
		w := m.Payload.(expansionWork)
		if w.implicit && db.columnFilled(w.table, w.column) {
			m.Finish(nil, nil)
			continue
		}
		ctl := m.Ctl()
		opts := w.opts
		opts.onPhase = ctl.Phase
		opts.onCharge = func(res *crowd.RunResult) {
			ctl.Charge(len(res.Records), res.TotalCost, res.DurationMinutes)
		}
		tbl, err := db.prepareExpansion(w.table, w.column, w.kind, &opts)
		if err != nil {
			m.Finish(nil, batchErr(w.table, w.column, err))
			continue
		}
		if opts.Method == sqlparse.ExpandHybrid {
			// Two crowd rounds (elicit, clean, re-elicit): no single
			// sampling phase to merge, so it runs solo inside the batch.
			report, err := db.expandHybrid(tbl, w.column, opts)
			if err != nil {
				m.Finish(nil, batchErr(w.table, w.column, err))
			} else {
				m.Finish(report, nil)
			}
			continue
		}
		e, err := db.planElicitation(tbl, w.column, opts)
		if err != nil {
			m.Finish(nil, batchErr(w.table, w.column, err))
			continue
		}
		ready = append(ready, planned{m: m, w: w, e: e})
	}
	if len(ready) == 0 {
		return
	}

	// Partition by marketplace configuration: two elicitations share a
	// HIT group only if workers would see identical job parameters.
	partitions := map[string][]planned{}
	var order []string
	for _, p := range ready {
		key := fmt.Sprintf("%+v", p.e.opts.Job)
		if _, ok := partitions[key]; !ok {
			order = append(order, key)
		}
		partitions[key] = append(partitions[key], p)
	}

	bsvc, batchable := db.service.(BatchJudgmentService)
	for _, key := range order {
		part := partitions[key]
		if len(part) == 1 || !batchable {
			// runElicitation reserves the member's budget internally.
			for _, p := range part {
				report, err := db.runElicitation(p.e)
				if err != nil {
					p.m.Finish(nil, batchErr(p.w.table, p.w.column, err))
				} else {
					p.m.Finish(report, nil)
				}
			}
			continue
		}

		// The budget wall: reserve every member's projected share before
		// the shared HIT group is issued. Reservations are sequential
		// and cumulative, so N same-key members cannot each pass against
		// the same headroom; members that don't fit are rejected here,
		// costing (and charging) nothing.
		var issued []planned
		var releases []func()
		for _, p := range part {
			release, err := db.reserveBudget(p.e.opts.APIKey, p.e.projected())
			if err != nil {
				p.m.Finish(nil, batchErr(p.w.table, p.w.column, err))
				continue
			}
			issued = append(issued, p)
			releases = append(releases, release)
		}
		if len(issued) == 0 {
			continue
		}
		reqs := make([]BatchRequest, len(issued))
		for i, p := range issued {
			p.e.opts.phase(jobs.StateSampling)
			reqs[i] = BatchRequest{Question: p.e.column, ItemIDs: p.e.judgeIDs}
		}
		batch, err := bsvc.CollectBatch(reqs, issued[0].e.opts.Job)
		if err != nil {
			for i, p := range issued {
				releases[i]()
				p.m.Finish(nil, batchErr(p.w.table, p.w.column, err))
			}
			continue
		}
		// One charge for the whole shared HIT group; each member's job
		// ledger and budget key sees only its proportional share, and
		// its reservation is released once that share is booked.
		db.chargeCombined(batch.Combined)
		for i, p := range issued {
			share := batch.PerQuestion[i]
			db.chargeMemberShare(share, &p.e.opts)
			releases[i]()
			report, err := db.finishElicitation(p.e, share)
			if err != nil {
				p.m.Finish(nil, batchErr(p.w.table, p.w.column, err))
			} else {
				p.m.Finish(report, nil)
			}
		}
	}
}

// batchGroupKey groups expansions for coalescing: one batch per table.
func batchGroupKey(table string) string { return strings.ToLower(table) }
