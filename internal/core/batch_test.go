package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/storage"
)

// batchCountingService is deterministic like slowService but also
// implements BatchJudgmentService, counting how the database chose to
// elicit: per-question Collect calls vs merged CollectBatch calls.
type batchCountingService struct {
	collects      atomic.Int32
	batchCollects atomic.Int32
	batchSizes    sync.Map // call ordinal → member count
}

func deterministicRun(question string, itemIDs []int, cfg crowd.JobConfig) *crowd.RunResult {
	res := &crowd.RunResult{DurationMinutes: 1}
	for _, id := range itemIDs {
		for a := 0; a < cfg.AssignmentsPerItem; a++ {
			ans := crowd.Positive
			if id%2 == 1 {
				ans = crowd.Negative
			}
			res.Records = append(res.Records, crowd.Record{ItemID: id, WorkerID: a, Answer: ans})
		}
	}
	res.TotalCost = float64(len(res.Records)) * cfg.PayPerHIT / float64(cfg.ItemsPerHIT)
	return res
}

func (s *batchCountingService) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	s.collects.Add(1)
	return deterministicRun(question, itemIDs, cfg), nil
}

func (s *batchCountingService) CollectBatch(reqs []BatchRequest, cfg crowd.JobConfig) (*crowd.BatchResult, error) {
	n := s.batchCollects.Add(1)
	s.batchSizes.Store(n, len(reqs))
	combined := &crowd.RunResult{DurationMinutes: 1}
	per := make([]*crowd.RunResult, len(reqs))
	for i, req := range reqs {
		r := deterministicRun(req.Question, req.ItemIDs, cfg)
		per[i] = r
		combined.Records = append(combined.Records, r.Records...)
		combined.TotalCost += r.TotalCost
	}
	return &crowd.BatchResult{Combined: combined, PerQuestion: per}, nil
}

// newBatchedDB builds an in-memory DB with batching enabled and four
// registered CROWD-method expandable genre columns on one table.
func newBatchedDB(t testing.TB, svc JudgmentService, window time.Duration) *DB {
	t.Helper()
	db, err := Open(Options{Service: svc, BatchWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range []string{"comedy", "drama", "action", "horror"} {
		db.RegisterExpandable("movies", col, storage.KindBool, ExpandOptions{Method: "CROWD"})
	}
	return db
}

// TestBatchedExpansionsShareOneCharge is the tentpole acceptance test:
// four concurrent expansions of one table must issue ONE crowd charge
// (one CollectBatch, one global-ledger job), with the cost split across
// the four member job ledgers.
func TestBatchedExpansionsShareOneCharge(t *testing.T) {
	svc := &batchCountingService{}
	db := newBatchedDB(t, svc, 50*time.Millisecond)

	// Submit all four concurrently-pending expansions inside one window:
	// async submission returns in microseconds, so the batch is
	// deterministic; the queries are then answered after the jobs finish.
	cols := []string{"comedy", "drama", "action", "horror"}
	var handles []*jobs.Job
	for _, col := range cols {
		_, job, err := db.ExecSQLAsync(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col))
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		if job == nil {
			t.Fatalf("%s: no expansion job", col)
		}
		handles = append(handles, job)
	}
	for i, job := range handles {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for _, col := range cols {
		if _, _, err := db.ExecSQL(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col)); err != nil {
			t.Fatalf("re-query %s: %v", col, err)
		}
	}

	if got := svc.batchCollects.Load(); got != 1 {
		t.Fatalf("CollectBatch called %d times, want 1", got)
	}
	if got := svc.collects.Load(); got != 0 {
		t.Fatalf("solo Collect called %d times, want 0 (batching bypassed)", got)
	}
	if size, _ := svc.batchSizes.Load(int32(1)); size != 4 {
		t.Fatalf("batch merged %v members, want 4", size)
	}
	led := db.Ledger()
	if led.Jobs != 1 {
		t.Fatalf("global ledger booked %d crowd charges, want 1", led.Jobs)
	}

	// Four member jobs, each with its own proportional ledger share.
	jobsList := db.Jobs()
	if len(jobsList) != 4 {
		t.Fatalf("%d jobs in history, want 4", len(jobsList))
	}
	var shareSum float64
	for _, st := range jobsList {
		if st.Ledger.Charges != 1 {
			t.Fatalf("job %s has %d ledger charges, want 1", st.ID, st.Ledger.Charges)
		}
		if st.Ledger.Cost <= 0 {
			t.Fatalf("job %s booked no cost share", st.ID)
		}
		shareSum += st.Ledger.Cost
	}
	if diff := shareSum - led.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("member shares sum to $%.6f, combined charge $%.6f", shareSum, led.Cost)
	}

	// Every column actually got filled.
	for _, col := range cols {
		if !db.columnFilled("movies", col) {
			t.Fatalf("column %s not filled", col)
		}
	}
}

// TestBatchWindowSplitsDistantSubmissions: submissions further apart than
// the window run as separate batches — batching trades a bounded delay,
// never unbounded staleness.
func TestBatchWindowSplitsDistantSubmissions(t *testing.T) {
	svc := &batchCountingService{}
	db := newBatchedDB(t, svc, 20*time.Millisecond)

	if _, _, err := db.ExecSQL(`SELECT name FROM movies WHERE comedy = true`); err != nil {
		t.Fatal(err)
	}
	// The first batch has flushed (ExecSQL waited for it); this lands in
	// a new window.
	if _, _, err := db.ExecSQL(`SELECT name FROM movies WHERE drama = true`); err != nil {
		t.Fatal(err)
	}
	total := svc.batchCollects.Load() + svc.collects.Load()
	if total != 2 {
		t.Fatalf("%d elicitations for 2 distant expansions, want 2", total)
	}
}

// TestBatchFallbackWithoutBatchService: a JudgmentService that lacks
// CollectBatch still works under a coalescer — members elicit solo.
func TestBatchFallbackWithoutBatchService(t *testing.T) {
	svc := &slowService{}
	db, err := Open(Options{Service: svc, BatchWindow: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterExpandable("movies", "comedy", storage.KindBool, ExpandOptions{Method: "CROWD"})
	db.RegisterExpandable("movies", "drama", storage.KindBool, ExpandOptions{Method: "CROWD"})

	for _, col := range []string{"comedy", "drama"} {
		if _, _, err := db.ExecSQL(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col)); err != nil {
			t.Fatalf("%s: %v", col, err)
		}
	}
	if got := svc.calls.Load(); got != 2 {
		t.Fatalf("fallback made %d Collect calls, want 2", got)
	}
}

// TestBatchedSimulatedCrowd runs the real simulator end to end through
// the batch path: two SPACE-less CROWD expansions over the simulated
// marketplace, one shared HIT group.
func TestBatchedSimulatedCrowd(t *testing.T) {
	const rows = 30
	svc := simulatedService(3, rows)
	db, err := Open(Options{Service: svc, BatchWindow: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterExpandable("movies", "comedy", storage.KindBool, ExpandOptions{Method: "CROWD", Assignments: 5})
	db.RegisterExpandable("movies", "drama", storage.KindBool, ExpandOptions{Method: "CROWD", Assignments: 5})

	var handles []*jobs.Job
	for _, col := range []string{"comedy", "drama"} {
		_, job, err := db.ExecSQLAsync(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col))
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		handles = append(handles, job)
	}
	for i, job := range handles {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if led := db.Ledger(); led.Jobs != 1 {
		t.Fatalf("simulator batch booked %d charges, want 1", led.Jobs)
	}
}
