package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Per-API-key budget caps.
//
// Crowd elicitation spends real money, so the serving layer attributes
// expansions to API keys and the database enforces a hard dollar cap per
// key BEFORE any HIT is issued: the projected cost of the sampling phase
// is checked against the key's remaining budget, and an expansion that
// would blow the cap is rejected up front — no partial HIT groups, no
// surprise charges. Caps and cumulative spend are durable (typed WAL
// records + snapshot fields), so a restart preserves both: a key that was
// over budget before a crash is still over budget after it.

// ErrBudgetExceeded marks an expansion rejected because the attributed
// API key's cap cannot cover the projected crowd cost. The HTTP layer
// maps it to 402 Payment Required.
var ErrBudgetExceeded = errors.New("core: budget cap exceeded")

// BudgetStatus is one API key's durable budget state.
type BudgetStatus struct {
	Key   string  `json:"key"`
	Cap   float64 `json:"cap"`
	Spent float64 `json:"spent"`
}

// Remaining is the budget left before the cap.
func (b BudgetStatus) Remaining() float64 {
	if r := b.Cap - b.Spent; r > 0 {
		return r
	}
	return 0
}

// budgetBook tracks caps, durable spend, and transient in-flight
// reservations per API key. The zero value is usable.
type budgetBook struct {
	mu         sync.Mutex
	defaultCap float64
	caps       map[string]float64
	spent      map[string]float64
	// reserved holds projected costs of elicitations that have passed
	// the cap check but not yet booked their actual spend, so concurrent
	// (or batched) expansions under one key cannot collectively blow the
	// cap. Never persisted: a crash releases reservations by definition.
	reserved map[string]float64
}

// budgetCapRecord / budgetSpendRecord are the typed WAL payloads.
type budgetCapRecord struct {
	Key string  `json:"key"`
	Cap float64 `json:"cap"`
}

type budgetSpendRecord struct {
	Key    string  `json:"key"`
	Amount float64 `json:"amount"`
}

func (b *budgetBook) setCap(key string, limit float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.caps == nil {
		b.caps = map[string]float64{}
		b.spent = map[string]float64{}
	}
	b.caps[key] = limit
}

func (b *budgetBook) addSpend(key string, amount float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.spent == nil {
		b.caps = map[string]float64{}
		b.spent = map[string]float64{}
	}
	b.spent[key] += amount
}

func (b *budgetBook) status(key string) (BudgetStatus, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	limit, ok := b.caps[key]
	if !ok {
		return BudgetStatus{}, false
	}
	return BudgetStatus{Key: key, Cap: limit, Spent: b.spent[key]}, true
}

// SetBudget installs (or replaces) the dollar cap for an API key, durably.
// Spend already recorded against the key is kept — raising a cap unblocks
// a key, it never forgives past spending.
func (db *DB) SetBudget(key string, limit float64) error {
	if key == "" {
		return fmt.Errorf("core: budget cap requires a non-empty key")
	}
	if limit < 0 {
		return fmt.Errorf("core: budget cap must be non-negative, got %g", limit)
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.wal != nil {
		if _, err := db.wal.Append(recBudgetCap, budgetCapRecord{Key: key, Cap: limit}); err != nil {
			return err
		}
	}
	db.budgets.setCap(key, limit)
	return nil
}

// Budget returns one key's budget state; ok is false for unknown keys
// (unknown keys are uncapped unless a default budget is configured).
func (db *DB) Budget(key string) (BudgetStatus, bool) {
	return db.budgets.status(key)
}

// Budgets lists every key with a cap, sorted by key.
func (db *DB) Budgets() []BudgetStatus {
	db.budgets.mu.Lock()
	defer db.budgets.mu.Unlock()
	out := make([]BudgetStatus, 0, len(db.budgets.caps))
	for key, limit := range db.budgets.caps {
		out = append(out, BudgetStatus{Key: key, Cap: limit, Spent: db.budgets.spent[key]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// releaseNop is returned by reserveBudget for uncapped keys.
func releaseNop() {}

// reserveBudget reserves a projected crowd cost against key's cap:
// spent + outstanding reservations + projected must fit under the cap,
// or the elicitation is rejected before any HIT is issued. On success
// the projection is held as a reservation — concurrent and batched
// expansions under the same key see each other's holds — and the
// returned release MUST be called exactly once, after the actual spend
// has been booked via spendBudget (or the elicitation abandoned).
//
// A key never seen before inherits the default cap (if one is
// configured), durably, so the cap that rejected a request survives a
// restart even if the default flag later changes.
func (db *DB) reserveBudget(key string, projected float64) (release func(), err error) {
	if key == "" {
		return releaseNop, nil
	}
	if _, ok := db.budgets.status(key); !ok {
		db.budgets.mu.Lock()
		defaultCap := db.budgets.defaultCap
		db.budgets.mu.Unlock()
		if defaultCap <= 0 {
			return releaseNop, nil // uncapped key
		}
		if err := db.SetBudget(key, defaultCap); err != nil {
			return nil, err
		}
	}
	b := &db.budgets
	b.mu.Lock()
	defer b.mu.Unlock()
	limit := b.caps[key]
	held := b.reserved[key]
	if b.spent[key]+held+projected > limit+1e-9 {
		mBudgetDenials.Inc()
		return nil, fmt.Errorf("%w: key %q cap $%.2f, spent $%.2f, reserved $%.2f, projected $%.2f",
			ErrBudgetExceeded, key, limit, b.spent[key], held, projected)
	}
	if b.reserved == nil {
		b.reserved = map[string]float64{}
	}
	b.reserved[key] += projected
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if r := b.reserved[key] - projected; r > 1e-12 {
				b.reserved[key] = r
			} else {
				delete(b.reserved, key)
			}
		})
	}, nil
}

// checkBudget is the read-only variant of reserveBudget for submission-
// time pre-flight: the same cap arithmetic, no hold taken (the job
// re-reserves authoritatively before issuing HITs).
func (db *DB) checkBudget(key string, projected float64) error {
	release, err := db.reserveBudget(key, projected)
	if err == nil {
		release()
	}
	return err
}

// spendBudget books actual crowd spend against a key, durably. Caller
// holds db.gate.RLock (the same discipline as logCharge).
func (db *DB) spendBudget(key string, amount float64) {
	if key == "" || amount == 0 {
		return
	}
	if db.wal != nil {
		_, _ = db.wal.Append(recBudgetSpend, budgetSpendRecord{Key: key, Amount: amount})
	}
	db.budgets.addSpend(key, amount)
}

// projectedCost is the up-front dollar estimate for judging n items under
// the given options — the quantity budget caps are enforced against.
func projectedCost(nItems int, opts *ExpandOptions) float64 {
	perJudgment := opts.Job.PayPerHIT / float64(opts.Job.ItemsPerHIT)
	return float64(nItems) * float64(opts.Assignments) * perJudgment
}
