package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"crowddb/internal/jobs"
	"crowddb/internal/storage"
)

// expandWithKey runs one explicit CROWD expansion attributed to an API
// key and returns the report error.
func expandWithKey(db *DB, column, key string) (*ExpansionReport, error) {
	return db.Expand("movies", column, storage.KindBool,
		ExpandOptions{Method: "CROWD", APIKey: key})
}

func newBudgetDB(t *testing.T, svc JudgmentService, opts Options) *DB {
	t.Helper()
	opts.Service = svc
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestBudgetCapRejectsBeforeHIT: an expansion whose projected cost blows
// the key's cap is rejected before the crowd is contacted at all.
func TestBudgetCapRejectsBeforeHIT(t *testing.T) {
	svc := &slowService{}
	db := newBudgetDB(t, svc, Options{})
	if err := db.SetBudget("team-a", 0.01); err != nil {
		t.Fatal(err)
	}
	// 40 rows × 10 assignments × $0.002/judgment = $0.80 projected ≫ 1¢.
	_, err := expandWithKey(db, "comedy", "team-a")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if got := svc.calls.Load(); got != 0 {
		t.Fatalf("crowd contacted %d times despite cap", got)
	}
	if st, _ := db.Budget("team-a"); st.Spent != 0 {
		t.Fatalf("rejection recorded spend: %+v", st)
	}
}

// TestBudgetSpendAccumulates: an affordable expansion debits the key by
// the actual crowd cost, and the running total eventually trips the cap.
func TestBudgetSpendAccumulates(t *testing.T) {
	svc := &slowService{}
	db := newBudgetDB(t, svc, Options{})
	if err := db.SetBudget("team-a", 1.0); err != nil {
		t.Fatal(err)
	}
	rep, err := expandWithKey(db, "comedy", "team-a")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := db.Budget("team-a")
	if !ok {
		t.Fatal("key vanished")
	}
	if math.Abs(st.Spent-rep.Cost) > 1e-9 {
		t.Fatalf("spent $%.4f, expansion cost $%.4f", st.Spent, rep.Cost)
	}
	// $0.80 spent of $1.00: the next $0.80 projection must be rejected.
	if _, err := expandWithKey(db, "drama", "team-a"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("second expansion: %v, want ErrBudgetExceeded", err)
	}
	// An unattributed expansion is not capped.
	if _, err := expandWithKey(db, "action", ""); err != nil {
		t.Fatalf("uncapped expansion: %v", err)
	}
}

// TestDefaultBudgetMaterializes: a never-seen key inherits the default
// cap durably the first time it is checked.
func TestDefaultBudgetMaterializes(t *testing.T) {
	svc := &slowService{}
	db := newBudgetDB(t, svc, Options{DefaultBudget: 0.05})
	if _, err := expandWithKey(db, "comedy", "newcomer"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded from default cap", err)
	}
	st, ok := db.Budget("newcomer")
	if !ok || st.Cap != 0.05 {
		t.Fatalf("default cap not materialized: %+v (ok=%v)", st, ok)
	}
	// An explicit cap overrides the default.
	if err := db.SetBudget("newcomer", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := expandWithKey(db, "comedy", "newcomer"); err != nil {
		t.Fatalf("after raising cap: %v", err)
	}
}

// TestBudgetReservationBlocksConcurrentOverspend: while one expansion's
// HITs are in flight, its projected cost is HELD against the key, so a
// concurrent expansion on the same key cannot pass the cap check against
// the not-yet-booked spend and collectively blow the cap.
func TestBudgetReservationBlocksConcurrentOverspend(t *testing.T) {
	svc := &slowService{gate: make(chan struct{})}
	db := newBudgetDB(t, svc, Options{})
	// One expansion projects $0.80; the cap fits one but not two.
	if err := db.SetBudget("team-a", 1.0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := expandWithKey(db, "comedy", "team-a")
		done <- err
	}()
	// Wait until the first expansion is inside the (stalled) crowd call:
	// its $0.80 is reserved, nothing is spent yet.
	deadline := time.Now().Add(5 * time.Second)
	for svc.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first expansion never reached the crowd")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := expandWithKey(db, "drama", "team-a"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("concurrent expansion: %v, want ErrBudgetExceeded from reservation", err)
	}
	close(svc.gate)
	if err := <-done; err != nil {
		t.Fatalf("first expansion: %v", err)
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("crowd contacted %d times, want 1", got)
	}
}

// TestBudgetReservationInBatch: a batch of same-key members reserves
// sequentially and cumulatively — a cap that covers one member admits
// exactly one, and the rest are rejected before the shared HIT group is
// issued.
func TestBudgetReservationInBatch(t *testing.T) {
	svc := &batchCountingService{}
	db, err := Open(Options{Service: svc, BatchWindow: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Each member projects $0.80; the cap fits exactly one of the four.
	if err := db.SetBudget("team-a", 1.0); err != nil {
		t.Fatal(err)
	}
	cols := []string{"comedy", "drama", "action", "horror"}
	for _, col := range cols {
		db.RegisterExpandable("movies", col, storage.KindBool,
			ExpandOptions{Method: "CROWD", APIKey: "team-a"})
	}
	var handles []*jobs.Job
	for _, col := range cols {
		_, job, err := db.ExecSQLAsync(fmt.Sprintf(`SELECT name FROM movies WHERE %s = true`, col))
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		handles = append(handles, job)
	}
	okCount, rejected := 0, 0
	for i, job := range handles {
		_, err := job.Wait(context.Background())
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrBudgetExceeded):
			rejected++
		default:
			t.Fatalf("job %d: unexpected error %v", i, err)
		}
	}
	if okCount != 1 || rejected != 3 {
		t.Fatalf("ok=%d rejected=%d, want 1/3 (reservations not cumulative?)", okCount, rejected)
	}
	st, _ := db.Budget("team-a")
	if st.Spent > st.Cap+1e-9 {
		t.Fatalf("cap blown: %+v", st)
	}
	// Reservations must all be released once the batch settles: the
	// remaining headroom is usable again.
	if err := db.SetBudget("team-a", 2.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Expand("movies", "thriller", storage.KindBool,
		ExpandOptions{Method: "CROWD", APIKey: "team-a"}); err != nil {
		t.Fatalf("post-batch expansion under raised cap: %v", err)
	}
}

// TestBudgetSurvivesRestart is the durability acceptance scenario: a
// restart after a budget-capped rejection preserves both the cap and the
// spend — the key stays over budget, nothing is re-elicited, and the cap
// is not reset even if the server's default-budget flag changed.
func TestBudgetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const rows = 60

	db1 := seedExpandableDB(t, dir, simulatedService(7, rows), rows)
	if err := db1.SetBudget("team-a", 0.50); err != nil {
		t.Fatal(err)
	}
	// SPACE expansion (≈40 samples × 5 assignments × $0.002 = $0.40):
	// affordable once, not twice.
	rep, err := db1.Expand("movies", "is_comedy", storage.KindBool,
		ExpandOptions{Method: "SPACE", SamplesPerClass: 10, APIKey: "team-a"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost <= 0 {
		t.Fatal("expansion cost nothing")
	}
	st1, _ := db1.Budget("team-a")
	// The second elicitation must be rejected on budget grounds.
	_, err = db1.Expand("movies", "is_scifi", storage.KindBool,
		ExpandOptions{Method: "SPACE", SamplesPerClass: 10, APIKey: "team-a"})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("pre-restart rejection: %v, want ErrBudgetExceeded", err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against a dead crowd and a generous default budget: the
	// recovered cap must win over the new default, the recorded spend
	// must survive, and the already-paid column must answer queries with
	// zero new crowd work.
	dead := &deadService{}
	db2, err := Open(Options{Service: dead, DataDir: dir, DefaultBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	st2, ok := db2.Budget("team-a")
	if !ok {
		t.Fatal("budget key lost across restart")
	}
	if st2.Cap != st1.Cap || math.Abs(st2.Spent-st1.Spent) > 1e-9 {
		t.Fatalf("budget state drifted: before %+v, after %+v", st1, st2)
	}
	if _, _, err := db2.ExecSQL(`SELECT name FROM movies WHERE is_comedy = true`); err != nil {
		t.Fatalf("recovered column unanswerable: %v", err)
	}
	if dead.calls != 0 {
		t.Fatalf("restart re-elicited: %d crowd calls", dead.calls)
	}
	// Still over budget: the rejection outcome is reproducible.
	_, err = db2.Expand("movies", "is_scifi", storage.KindBool,
		ExpandOptions{Method: "SPACE", SamplesPerClass: 10, APIKey: "team-a"})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("post-restart rejection: %v, want ErrBudgetExceeded", err)
	}
	if dead.calls != 0 {
		t.Fatalf("budget re-check contacted the crowd %d times", dead.calls)
	}
}
