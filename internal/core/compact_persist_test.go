package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crowddb/internal/storage"
	_ "crowddb/internal/storage/filebackend"
)

func allMovieNames(t *testing.T, db *DB) []string {
	t.Helper()
	res, _, err := db.ExecSQL(`SELECT movie_id, name FROM movies ORDER BY movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range res.Rows {
		id, _ := row[0].AsInt()
		name, _ := row[1].AsText()
		out = append(out, fmt.Sprintf("%d:%s", id, name))
	}
	return out
}

// TestRestartReplaysCompactionDeterministically is the durability
// acceptance for the compactor: expand (paying the crowd), tombstone,
// compact, mutate THROUGH post-compaction physical row IDs, restart from
// the WAL alone — recovery must replay the OpCompact at exactly the same
// point so the later records resolve identically, answering the same
// queries with zero new crowd charges.
func TestRestartReplaysCompactionDeterministically(t *testing.T) {
	dir := t.TempDir()
	const rows = 60

	db1 := seedExpandableDB(t, dir, simulatedService(7, rows), rows)
	comediesBefore := queryComedyNames(t, db1)
	if len(comediesBefore) == 0 {
		t.Fatal("expansion produced no comedies")
	}

	// Tombstone a third of the table, then reclaim.
	if _, _, err := db1.ExecSQL(`DELETE FROM movies WHERE movie_id < 20`); err != nil {
		t.Fatal(err)
	}
	results := db1.CompactNow()
	res, ok := results["movies"]
	if !ok || !res.Compacted || res.RowsReclaimed != 20 {
		t.Fatalf("CompactNow = %+v", results)
	}
	tbl, _ := db1.Catalog().Get("movies")
	if got := tbl.Tombstones(); got != 0 {
		t.Fatalf("tombstones after compaction = %d", got)
	}

	// Mutations referencing post-compaction physical IDs: their WAL
	// records only replay correctly if recovery compacts at the same spot.
	if _, _, err := db1.ExecSQL(`UPDATE movies SET name = 'renamed after compaction' WHERE movie_id = 30`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db1.ExecSQL(`INSERT INTO movies (movie_id, name) VALUES (999, 'post-compaction insert')`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db1.ExecSQL(`DELETE FROM movies WHERE movie_id = 41`); err != nil {
		t.Fatal(err)
	}

	namesBefore := allMovieNames(t, db1)
	comediesBefore = queryComedyNames(t, db1)
	led1 := db1.Ledger()
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	dead := &deadService{}
	db2, err := Open(Options{Service: dead, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	if after := allMovieNames(t, db2); strings.Join(after, "|") != strings.Join(namesBefore, "|") {
		t.Fatalf("rows diverged after restart:\n before %v\n after  %v", namesBefore, after)
	}
	if after := queryComedyNames(t, db2); strings.Join(after, "|") != strings.Join(comediesBefore, "|") {
		t.Fatalf("comedy answers diverged after restart:\n before %v\n after  %v", comediesBefore, after)
	}
	if dead.calls != 0 {
		t.Fatalf("restart re-elicited the crowd %d times", dead.calls)
	}
	if led2 := db2.Ledger(); led2 != led1 {
		t.Fatalf("ledger changed across restart: %+v → %+v", led1, led2)
	}

	// Replay went through ReplayCompact: the counters prove it, and the
	// replayed table carries only the post-compaction tombstone.
	tbl2, _ := db2.Catalog().Get("movies")
	if st := tbl2.CompactionStats(); st.Runs < 1 || st.RowsReclaimed != 20 {
		t.Fatalf("replayed compaction stats = %+v", st)
	}
	if got := tbl2.Tombstones(); got != 1 { // the movie_id=41 delete
		t.Fatalf("tombstones after replay = %d, want 1", got)
	}
}

// TestSnapshotAfterCompactionRestart: a snapshot taken after compaction
// must capture the compacted physical layout, so WAL records appended
// after it keep resolving on restore.
func TestSnapshotAfterCompactionRestart(t *testing.T) {
	dir := t.TempDir()
	const rows = 60

	db1 := seedExpandableDB(t, dir, simulatedService(11, rows), rows)
	queryComedyNames(t, db1)
	if _, _, err := db1.ExecSQL(`DELETE FROM movies WHERE movie_id >= 40`); err != nil {
		t.Fatal(err)
	}
	if res := db1.CompactNow()["movies"]; !res.Compacted || res.RowsReclaimed != 20 {
		t.Fatalf("CompactNow = %+v", res)
	}
	if _, err := db1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail records against the compacted layout.
	if _, _, err := db1.ExecSQL(`UPDATE movies SET name = 'tail update' WHERE movie_id = 5`); err != nil {
		t.Fatal(err)
	}
	namesBefore := allMovieNames(t, db1)
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	dead := &deadService{}
	db2, err := Open(Options{Service: dead, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if after := allMovieNames(t, db2); strings.Join(after, "|") != strings.Join(namesBefore, "|") {
		t.Fatalf("rows diverged after snapshot+restart:\n before %v\n after  %v", namesBefore, after)
	}
	if dead.calls != 0 {
		t.Fatalf("restart re-elicited the crowd %d times", dead.calls)
	}
}

// TestBackgroundCompactorReclaims: with CompactInterval set, tombstones
// past the density threshold are reclaimed without any explicit call.
func TestBackgroundCompactorReclaims(t *testing.T) {
	db, err := Open(Options{
		Service:              &deadService{},
		CompactInterval:      5 * time.Millisecond,
		CompactTombstoneFrac: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, _, err := db.ExecSQL(`CREATE TABLE nums (n INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("nums")
	for i := 0; i < storage.ChunkRows+10; i++ {
		if err := tbl.Insert(storage.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.ExecSQL(`DELETE FROM nums WHERE n < 2000`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tbl.Tombstones() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never reclaimed: %d tombstones", tbl.Tombstones())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := tbl.CompactionStats(); st.Runs < 1 || st.RowsReclaimed != 2000 {
		t.Fatalf("compaction stats = %+v", st)
	}
}

// TestFileBackendEndToEnd drives the second Backend implementation
// through core: snapshots externalize per-table shards under
// <dir>/tables/, and a restart over the same directory restores from
// them. This is the proof the seam is real — core never special-cases
// the backend.
func TestFileBackendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db1, err := Open(Options{Service: &deadService{}, DataDir: dir, Backend: "file"})
	if err != nil {
		t.Fatal(err)
	}
	if got := db1.Backend(); got != "file" {
		t.Fatalf("Backend() = %q", got)
	}
	if _, _, err := db1.ExecSQL(`CREATE TABLE kv (k INTEGER, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := db1.ExecSQL(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'x')`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db1.ExecSQL(`DELETE FROM kv WHERE k = 3`); err != nil {
		t.Fatal(err)
	}
	if _, err := db1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	shards, err := filepath.Glob(filepath.Join(dir, "tables", "*.json"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shard files written (err=%v)", err)
	}
	// Post-snapshot tail mutation.
	if _, _, err := db1.ExecSQL(`UPDATE kv SET v = 'updated' WHERE k = 7`); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Service: &deadService{}, DataDir: dir, Backend: "file"})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, _, err := db2.ExecSQL(`SELECT k, v FROM kv ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("recovered %d rows, want 9", len(res.Rows))
	}
	for _, row := range res.Rows {
		k, _ := row[0].AsInt()
		v, _ := row[1].AsText()
		want := "x"
		if k == 7 {
			want = "updated"
		}
		if k == 3 {
			t.Fatal("deleted row recovered")
		}
		if v != want {
			t.Fatalf("k=%d v=%q, want %q", k, v, want)
		}
	}

	// The unknown-backend path fails loudly, listing what is registered.
	if _, err := Open(Options{Service: &deadService{}, Backend: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("bogus backend error = %v", err)
	}
}
