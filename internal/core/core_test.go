package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"crowddb/internal/crowd"
	"crowddb/internal/dataset"
	"crowddb/internal/eval"
	"crowddb/internal/space"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	"crowddb/internal/vecmath"
)

// The test fixture builds one tiny movie universe and one trained
// perceptual space shared by all tests (training is the expensive part).
var (
	fixtureOnce sync.Once
	fixtureU    *dataset.Universe
	fixtureSp   *space.Space
)

func fixture(t *testing.T) (*dataset.Universe, *space.Space) {
	t.Helper()
	fixtureOnce.Do(func() {
		u, err := dataset.Generate(dataset.Movies(dataset.ScaleTiny, 7))
		if err != nil {
			t.Fatal(err)
		}
		cfg := space.DefaultConfig()
		cfg.Dims = 12
		cfg.Epochs = 30
		model, _, err := space.TrainEuclidean(u.Ratings, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureU = u
		fixtureSp = space.FromModel(model)
	})
	return fixtureU, fixtureSp
}

// newMovieDB builds a DB loaded with the fixture's movies and an attached
// space + simulated crowd (honest population by default).
func newMovieDB(t *testing.T, spammers float64, seed int64) (*DB, *dataset.Universe) {
	t.Helper()
	u, sp := fixture(t)
	rng := rand.New(rand.NewSource(seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 60, SpammerFraction: spammers}, rng)
	service := NewSimulatedCrowd(pop, u.CrowdItems, rng)
	db := NewDB(service)

	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for _, it := range u.Items {
		if err := tbl.Insert(storage.Int(int64(it.ID)), storage.Text(it.Name), storage.Int(int64(it.Year))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", sp); err != nil {
		t.Fatal(err)
	}
	return db, u
}

func columnConfusion(t *testing.T, db *DB, column string, truth []bool) (filled int, conf eval.Confusion) {
	t.Helper()
	tbl, _ := db.Catalog().Get("movies")
	schema := tbl.Schema()
	colIdx, ok := schema.Lookup(column)
	if !ok {
		t.Fatalf("column %s missing", column)
	}
	idIdx, _ := schema.Lookup("movie_id")
	tbl.Scan(func(i int, row storage.Row) bool {
		v := row[colIdx]
		if v.IsNull() {
			return true
		}
		filled++
		b, _ := v.AsBool()
		id, _ := row[idIdx].AsInt()
		conf.Observe(b, truth[id])
		return true
	})
	return filled, conf
}

func columnAccuracy(t *testing.T, db *DB, column string, truth []bool) (int, float64) {
	t.Helper()
	filled, conf := columnConfusion(t, db, column, truth)
	return filled, conf.Accuracy()
}

func TestPassthroughSQL(t *testing.T) {
	db, _ := newMovieDB(t, 0, 1)
	res, rep, err := db.ExecSQL("SELECT COUNT(*) FROM movies")
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("plain query must not expand")
	}
	n, _ := res.Rows[0][0].AsInt()
	if int(n) != dataset.ScaleTiny.Items {
		t.Fatalf("count = %d", n)
	}
}

func TestUnregisteredMissingColumnStaysError(t *testing.T) {
	db, _ := newMovieDB(t, 0, 2)
	if _, _, err := db.ExecSQL("SELECT * FROM movies WHERE no_such_column = true"); err == nil {
		t.Fatal("typo column must stay an error")
	}
}

func TestExplicitExpandUsingCrowd(t *testing.T) {
	db, u := newMovieDB(t, 0, 3)
	res, rep, err := db.ExecSQL(
		"EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING CROWD")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || res == nil {
		t.Fatal("expansion must report")
	}
	if rep.Method != sqlparse.ExpandCrowd {
		t.Fatalf("method = %v", rep.Method)
	}
	filled, acc := columnAccuracy(t, db, "Comedy", u.Categories["Comedy"].Reference)
	if filled < 200 {
		t.Fatalf("filled = %d, want most of %d", filled, dataset.ScaleTiny.Items)
	}
	// Honest population: accuracy well above the base rate.
	if acc < 0.70 {
		t.Fatalf("crowd accuracy = %.3f", acc)
	}
	led := db.Ledger()
	if led.Cost <= 0 || led.Judgments == 0 || led.Jobs != 1 {
		t.Fatalf("ledger = %+v", led)
	}
	if vecmath.Clamp(rep.Cost, 0, 1e9) != rep.Cost || rep.Cost != led.Cost {
		t.Fatalf("report cost %v != ledger %v", rep.Cost, led.Cost)
	}
}

func TestExplicitExpandUsingSpace(t *testing.T) {
	db, u := newMovieDB(t, 0, 4)
	_, rep, err := db.ExecSQL(
		"EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING SPACE WITH SAMPLES 40")
	if err != nil {
		t.Fatal(err)
	}
	// The strategy judges ~4×SamplesPerClass items and trains on every
	// one that reaches a majority.
	if rep.TrainingSize == 0 || rep.TrainingSize > 4*40 {
		t.Fatalf("training size = %d", rep.TrainingSize)
	}
	filled, conf := columnConfusion(t, db, "Comedy", u.Categories["Comedy"].Reference)
	// SPACE fills every mappable row — 100% coverage is the headline.
	if filled != dataset.ScaleTiny.Items {
		t.Fatalf("filled = %d, want all %d", filled, dataset.ScaleTiny.Items)
	}
	// The training sample is class-balanced (Table 3 protocol), so g-mean
	// is the meaningful quality measure; tiny scale caps it well below the
	// paper's full-scale 0.80.
	if g := conf.GMean(); g < 0.5 {
		t.Fatalf("space g-mean = %.3f", g)
	}
	// Drastically cheaper than judging everything 10 times.
	if rep.Judgments >= dataset.ScaleTiny.Items*10/2 {
		t.Fatalf("space expansion used %d judgments, not cheap", rep.Judgments)
	}
}

func TestImplicitQueryDrivenExpansion(t *testing.T) {
	db, _ := newMovieDB(t, 0, 5)
	db.RegisterExpandable("movies", "Comedy", storage.KindBool, ExpandOptions{
		Method: sqlparse.ExpandSpace, SamplesPerClass: 30,
	})
	res, rep, err := db.ExecSQL("SELECT name FROM movies WHERE Comedy = true")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("query must have triggered expansion")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no comedies found after expansion")
	}
	// Second query must NOT re-expand.
	_, rep2, err := db.ExecSQL("SELECT name FROM movies WHERE Comedy = true")
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != nil {
		t.Fatal("column already exists; no expansion expected")
	}
}

func TestExpandStatementDefaultsToSpaceWhenBound(t *testing.T) {
	db, _ := newMovieDB(t, 0, 6)
	_, rep, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Horror BOOLEAN")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != sqlparse.ExpandSpace {
		t.Fatalf("method = %v, want SPACE (space attached)", rep.Method)
	}
}

func TestSpammersHurtCrowdButSpaceSurvives(t *testing.T) {
	dbCrowd, u := newMovieDB(t, 0.6, 7)
	_, repCrowd, err := dbCrowd.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING CROWD")
	if err != nil {
		t.Fatal(err)
	}
	_, accCrowd := columnAccuracy(t, dbCrowd, "Comedy", u.Categories["Comedy"].Reference)

	dbSpace, _ := newMovieDB(t, 0.6, 7)
	_, repSpace, err := dbSpace.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING SPACE WITH SAMPLES 40")
	if err != nil {
		t.Fatal(err)
	}
	filledSpace, _ := columnAccuracy(t, dbSpace, "Comedy", u.Categories["Comedy"].Reference)

	// The headline coverage claim: space classifies everything, the crowd
	// leaves unknowable items unclassified or wrong.
	if filledSpace != dataset.ScaleTiny.Items {
		t.Fatalf("space filled %d", filledSpace)
	}
	if repSpace.Cost >= repCrowd.Cost {
		t.Fatalf("space cost $%.2f should undercut crowd cost $%.2f", repSpace.Cost, repCrowd.Cost)
	}
	_ = accCrowd // accuracy comparison is exercised at scale in the experiments
}

func TestBudgetShrinksWork(t *testing.T) {
	db, _ := newMovieDB(t, 0, 8)
	_, rep, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING CROWD WITH BUDGET 0.50")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost > 0.50+1e-9 {
		t.Fatalf("cost $%.4f exceeds budget", rep.Cost)
	}
	if rep.Filled+rep.Unfilled != dataset.ScaleTiny.Items {
		t.Fatalf("rows accounted = %d", rep.Filled+rep.Unfilled)
	}
	if rep.Filled >= dataset.ScaleTiny.Items/2 {
		t.Fatalf("budget $0.50 should fill only a fraction, filled %d", rep.Filled)
	}
	// Impossible budget fails loudly.
	if _, _, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Horror BOOLEAN USING CROWD WITH BUDGET 0.001"); err == nil {
		t.Fatal("hopeless budget must fail")
	}
}

func TestIdentifyQuestionable(t *testing.T) {
	db, u := newMovieDB(t, 0, 9)
	// Fill the column with the reference labels, then corrupt 15%.
	tbl, _ := db.Catalog().Get("movies")
	cat := u.Categories["Comedy"]
	vals := make([]storage.Value, len(u.Items))
	for i := range u.Items {
		vals[i] = storage.Bool(cat.Reference[i])
	}
	if _, err := tbl.AddColumn(storage.Column{Name: "Comedy", Kind: storage.KindBool, Perceptual: true}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	swapped := map[int]bool{}
	for len(swapped) < len(u.Items)*15/100 {
		i := rng.Intn(len(u.Items))
		if swapped[i] {
			continue
		}
		swapped[i] = true
		b, _ := vals[i].AsBool()
		vals[i] = storage.Bool(!b)
	}
	if err := tbl.FillColumn("Comedy", vals); err != nil {
		t.Fatal(err)
	}

	flagged, err := db.IdentifyQuestionable("movies", "Comedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) == 0 {
		t.Fatal("nothing flagged")
	}
	hit := 0
	for _, r := range flagged {
		if swapped[r] {
			hit++
		}
	}
	recall := float64(hit) / float64(len(swapped))
	precision := float64(hit) / float64(len(flagged))
	// Paper's Table 4 shape at full scale is P≈0.7/R≈0.9; at tiny scale we
	// assert the qualitative property.
	if recall < 0.5 {
		t.Fatalf("recall = %.3f, want >= 0.5", recall)
	}
	if precision < 0.3 {
		t.Fatalf("precision = %.3f, want >= 0.3", precision)
	}
}

func TestIdentifyQuestionableErrors(t *testing.T) {
	db, _ := newMovieDB(t, 0, 11)
	if _, err := db.IdentifyQuestionable("nope", "x"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := db.IdentifyQuestionable("movies", "name"); err == nil {
		t.Fatal("non-bool column must fail")
	}
	if _, err := db.IdentifyQuestionable("movies", "missing"); err == nil {
		t.Fatal("missing column must fail")
	}
}

func TestHybridExpansion(t *testing.T) {
	// Same seed and population for both runs: the only difference is the
	// §4.4 cleaning pass.
	dbCrowd, u := newMovieDB(t, 0.2, 12)
	if _, _, err := dbCrowd.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING CROWD"); err != nil {
		t.Fatal(err)
	}
	_, confCrowd := columnConfusion(t, dbCrowd, "Comedy", u.Categories["Comedy"].Reference)

	dbHybrid, _ := newMovieDB(t, 0.2, 12)
	_, rep, err := dbHybrid.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING HYBRID")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != sqlparse.ExpandHybrid {
		t.Fatalf("method = %v", rep.Method)
	}
	if rep.Requeried == 0 {
		t.Fatal("hybrid should flag and requery tuples")
	}
	filled, confHybrid := columnConfusion(t, dbHybrid, "Comedy", u.Categories["Comedy"].Reference)
	if filled < 200 {
		t.Fatalf("filled = %d", filled)
	}
	// Cleaning must not hurt, and usually helps.
	if confHybrid.GMean() < confCrowd.GMean()-0.03 {
		t.Fatalf("hybrid g-mean %.3f fell below crowd-only %.3f",
			confHybrid.GMean(), confCrowd.GMean())
	}
}

func TestGoldFillNumericAttribute(t *testing.T) {
	db, u := newMovieDB(t, 0, 13)
	// Build a "humor" score from the comedy margin: comedies score high.
	cat := u.Categories["Comedy"]
	humor := make([]float64, len(u.Items))
	for i := range humor {
		if cat.Truth[i] {
			humor[i] = 6.5 + 2.5*vecmath.Clamp(cat.Margin[i], 0, 1)
		} else {
			humor[i] = 4.5 - 3*vecmath.Clamp(cat.Margin[i], 0, 1)
		}
	}
	var gold []GoldValue
	for i := 0; i < 60; i++ {
		gold = append(gold, GoldValue{ItemID: i * 5, Value: humor[i*5]})
	}
	rep, err := db.GoldFill("movies", "humor", gold)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filled != dataset.ScaleTiny.Items {
		t.Fatalf("filled = %d", rep.Filled)
	}
	// The paper's motivating query now runs.
	res, _, err := db.ExecSQL("SELECT name, humor FROM movies WHERE humor >= 8 ORDER BY humor DESC LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no humorous movies found")
	}
	// Most of the results should truly be comedies.
	idOf := map[string]int{}
	for _, it := range u.Items {
		idOf[it.Name] = it.ID
	}
	comedies := 0
	for _, row := range res.Rows {
		name, _ := row[0].AsText()
		if cat.Truth[idOf[name]] {
			comedies++
		}
	}
	if float64(comedies) < 0.6*float64(len(res.Rows)) {
		t.Fatalf("only %d of %d high-humor results are comedies", comedies, len(res.Rows))
	}
}

func TestGoldFillValidation(t *testing.T) {
	db, _ := newMovieDB(t, 0, 14)
	if _, err := db.GoldFill("movies", "humor", nil); err == nil {
		t.Fatal("empty gold must fail")
	}
	if _, err := db.GoldFill("nope", "humor", make([]GoldValue, 5)); err == nil {
		t.Fatal("unknown table must fail")
	}
	bad := []GoldValue{{ItemID: -1, Value: 1}, {ItemID: 1, Value: 2}, {ItemID: 2, Value: 3}, {ItemID: 3, Value: 4}}
	if _, err := db.GoldFill("movies", "humor", bad); err == nil {
		t.Fatal("out-of-space gold must fail")
	}
	// GoldFill on an existing non-float column must fail.
	if _, _, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING SPACE"); err != nil {
		t.Fatal(err)
	}
	ok := []GoldValue{{ItemID: 0, Value: 1}, {ItemID: 1, Value: 2}, {ItemID: 2, Value: 3}, {ItemID: 3, Value: 4}}
	if _, err := db.GoldFill("movies", "Comedy", ok); err == nil {
		t.Fatal("bool column must reject GoldFill")
	}
}

func TestExpandRequiresBoolKind(t *testing.T) {
	db, _ := newMovieDB(t, 0, 15)
	if _, err := db.Expand("movies", "humor", storage.KindFloat, ExpandOptions{}); err == nil {
		t.Fatal("float crowd expansion must point at GoldFill")
	}
}

func TestExpandErrors(t *testing.T) {
	db, _ := newMovieDB(t, 0, 16)
	if _, err := db.Expand("nope", "c", storage.KindBool, ExpandOptions{}); err == nil {
		t.Fatal("unknown table must fail")
	}
	// No service: crowd expansion impossible.
	db2 := NewDB(nil)
	if _, _, err := db2.ExecSQL("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Expand("t", "c", storage.KindBool, ExpandOptions{Method: sqlparse.ExpandCrowd}); err == nil {
		t.Fatal("missing service must fail")
	}
	// SPACE without binding.
	if _, err := db2.Expand("t", "c", storage.KindBool, ExpandOptions{Method: sqlparse.ExpandSpace}); err == nil {
		t.Fatal("missing binding must fail")
	}
}

func TestAttachSpaceValidation(t *testing.T) {
	db, _ := newMovieDB(t, 0, 17)
	_, sp := fixture(t)
	if err := db.AttachSpace("nope", "movie_id", sp); err == nil {
		t.Fatal("unknown table must fail")
	}
	if err := db.AttachSpace("movies", "nope", sp); err == nil {
		t.Fatal("unknown id column must fail")
	}
	if err := db.AttachSpace("movies", "name", sp); err == nil {
		t.Fatal("non-integer id column must fail")
	}
}

func TestLedgerAccumulatesAcrossExpansions(t *testing.T) {
	db, _ := newMovieDB(t, 0, 18)
	if _, _, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING SPACE WITH SAMPLES 20"); err != nil {
		t.Fatal(err)
	}
	l1 := db.Ledger()
	if _, _, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Horror BOOLEAN USING SPACE WITH SAMPLES 20"); err != nil {
		t.Fatal(err)
	}
	l2 := db.Ledger()
	if l2.Jobs != 2 || l2.Cost <= l1.Cost || l2.Judgments <= l1.Judgments {
		t.Fatalf("ledger did not accumulate: %+v then %+v", l1, l2)
	}
}

func TestSimulatedCrowdUnknownItem(t *testing.T) {
	u, _ := fixture(t)
	rng := rand.New(rand.NewSource(19))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 5}, rng)
	svc := NewSimulatedCrowd(pop, u.CrowdItems, rng)
	_, err := svc.Collect("Comedy", []int{999999}, crowd.JobConfig{
		ItemsPerHIT: 10, AssignmentsPerItem: 1, PayPerHIT: 0.02, JudgmentsPerMinute: 95,
	})
	if err == nil || !strings.Contains(err.Error(), "no crowd item model") {
		t.Fatalf("err = %v", err)
	}
	if _, err := svc.Collect("NoSuchCategory", []int{0}, crowd.JobConfig{}); err == nil {
		t.Fatal("unknown question must fail")
	}
}

func TestResultMessageMentionsExpansion(t *testing.T) {
	db, _ := newMovieDB(t, 0, 20)
	res, _, err := db.ExecSQL("EXPAND TABLE movies ADD COLUMN Comedy BOOLEAN USING SPACE WITH SAMPLES 20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "expanded movies.Comedy") {
		t.Fatalf("message = %q", res.Message)
	}
}

func TestWeightedVoteOptionImprovesSpammedExpansion(t *testing.T) {
	// Moderate spam: EM reliability weighting should match or beat the
	// plain majority at identical cost.
	run := func(weighted bool) (int, float64) {
		db, u := newMovieDB(t, 0.3, 21)
		_, err := db.Expand("movies", "Comedy", storage.KindBool, ExpandOptions{
			Method: sqlparse.ExpandCrowd, WeightedVote: weighted,
		})
		if err != nil {
			t.Fatal(err)
		}
		filled, conf := columnConfusion(t, db, "Comedy", u.Categories["Comedy"].Reference)
		return filled, conf.Accuracy()
	}
	filledPlain, accPlain := run(false)
	filledWeighted, accWeighted := run(true)
	// The EM posterior almost never lands on exactly 0.5, so weighted
	// voting classifies every judged tuple (plain majority leaves ties
	// NULL). The meaningful comparison is the correct-count — coverage ×
	// accuracy — the same metric as the paper's Figures 3–4.
	if filledWeighted < filledPlain {
		t.Fatalf("weighted vote classified fewer tuples: %d vs %d", filledWeighted, filledPlain)
	}
	correctPlain := float64(filledPlain) * accPlain
	correctWeighted := float64(filledWeighted) * accWeighted
	if correctWeighted < correctPlain {
		t.Fatalf("weighted correct count %.0f fell below plain %.0f", correctWeighted, correctPlain)
	}
}

func TestDBAccessors(t *testing.T) {
	db, _ := newMovieDB(t, 0, 30)
	if db.Engine() == nil || db.Catalog() == nil {
		t.Fatal("accessors returned nil")
	}
	if _, ok := db.Catalog().Get("movies"); !ok {
		t.Fatal("catalog lost the table")
	}
}
