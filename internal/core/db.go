package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/engine"
	"crowddb/internal/jobs"
	"crowddb/internal/space"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	"crowddb/internal/wal"
	"crowddb/internal/workload"
	rescache "crowddb/internal/workload/cache"
)

// ExpandOptions tunes one schema expansion.
type ExpandOptions struct {
	// Method selects the fill strategy; defaults to SPACE when a
	// perceptual space is attached, CROWD otherwise.
	Method sqlparse.ExpandMethod
	// SamplesPerClass is the SPACE strategy's crowd-sourced training
	// sample size per class (the paper's n; default 40).
	SamplesPerClass int
	// Assignments is the number of judgments per item (default 10 for
	// CROWD, 5 for SPACE training samples).
	Assignments int
	// Budget caps crowd spending in dollars (0 = unlimited). When the
	// budget cannot cover the requested work, the job is shrunk, exactly
	// like a requester running out of money mid-experiment.
	Budget float64
	// Job carries marketplace parameters; zero fields get defaults
	// (10 items/HIT, $0.02/HIT, 95 judgments/min, don't-know allowed).
	Job crowd.JobConfig
	// WeightedVote aggregates judgments with EM-estimated worker
	// reliabilities (binary Dawid–Skene) instead of a plain majority —
	// the quality-management extension of the paper's §6 references
	// [32]/[33]. Most useful when spammer contamination is expected but
	// not dominant.
	WeightedVote bool
	// APIKey attributes the expansion's crowd spend to a per-key budget
	// (see SetBudget). Empty means unattributed: no cap applies unless
	// the database was opened with a DefaultBudget.
	APIKey string `json:"api_key,omitempty"`
	// Origin tags the expansion's provenance (OriginDemand, OriginAdmin,
	// OriginSpeculative; see workload.go). Empty defaults to demand at
	// submission. The tag rides the job for spend auditing and guards the
	// predictor against speculating on its own speculations.
	Origin string `json:"origin,omitempty"`

	// onPhase and onCharge are set by the job scheduler so that an
	// expansion running on a worker goroutine can report lifecycle
	// transitions and crowd spending to its job handle. They are
	// internal: callers outside core cannot set them.
	onPhase  func(jobs.State)
	onCharge func(*crowd.RunResult)
}

// phase reports a lifecycle transition to the owning job, if any.
func (o *ExpandOptions) phase(s jobs.State) {
	if o.onPhase != nil {
		o.onPhase(s)
	}
}

func (o *ExpandOptions) fillDefaults(method sqlparse.ExpandMethod) {
	if o.Method == "" {
		o.Method = method
	}
	if o.SamplesPerClass <= 0 {
		o.SamplesPerClass = 40
	}
	if o.Assignments <= 0 {
		if o.Method == sqlparse.ExpandCrowd || o.Method == sqlparse.ExpandHybrid {
			o.Assignments = 10
		} else {
			o.Assignments = 5
		}
	}
	if o.Job.ItemsPerHIT <= 0 {
		o.Job.ItemsPerHIT = 10
	}
	if o.Job.PayPerHIT <= 0 {
		o.Job.PayPerHIT = 0.02
	}
	if o.Job.JudgmentsPerMinute <= 0 {
		o.Job.JudgmentsPerMinute = 95
	}
	o.Job.AssignmentsPerItem = o.Assignments
}

// ExpansionReport describes what one schema expansion did.
type ExpansionReport struct {
	Table  string
	Column string
	Method sqlparse.ExpandMethod
	// Filled is the number of rows that received a value.
	Filled int
	// Unfilled is the number of rows left NULL (no majority, no space
	// coordinates, or budget exhausted).
	Unfilled int
	// TrainingSize is the number of labeled examples the SPACE strategy
	// trained on (0 for CROWD).
	TrainingSize int
	// Judgments, Cost and Minutes account the crowd work of this
	// expansion alone.
	Judgments int
	Cost      float64
	Minutes   float64
	// Requeried counts tuples re-elicited by the HYBRID cleaning pass.
	Requeried int
}

// tableBinding connects a table to a perceptual space.
type tableBinding struct {
	space    *space.Space
	idColumn string
}

// expandableSpec registers a column that implicit expansion may create.
type expandableSpec struct {
	kind storage.Kind
	opts ExpandOptions
}

// DB is a crowd-enabled database.
//
// Reads and expansions are decoupled: SELECTs run concurrently under the
// storage layer's read locks, while schema expansions execute on the job
// scheduler's worker pool. The DB-level RWMutex below guards only the
// expansion metadata (space bindings and expandable registrations), so
// read-only queries never serialize behind crowd latency.
type DB struct {
	// backend is the storage engine below the journal (see
	// storage.Backend); the engine executes against its catalog.
	backend storage.Backend
	engine  *engine.Engine
	service JudgmentService
	ledger  *Ledger
	sched   *jobs.Scheduler

	// compactStop/compactDone bracket the background compactor goroutine
	// (nil when Options.CompactInterval is zero).
	compactStop chan struct{}
	compactDone chan struct{}

	// coalescer, when non-nil, batches same-table expansions submitted
	// within a short window into shared HIT groups (see batch.go). Nil
	// means every expansion runs as its own crowd job.
	coalescer *jobs.Coalescer

	// budgets holds per-API-key spending caps and cumulative spend,
	// enforced before HITs are issued and persisted via the WAL.
	budgets budgetBook

	// tracker records every query's column footprint and misses — the
	// co-access model behind predictive pre-expansion (always present).
	tracker *workload.Tracker
	// rcache is the semantic result cache (nil when disabled via
	// Options.CacheBytes < 0). Invalidation is seq-based: the storage
	// observer bumps a per-table sequence on every journaled mutation,
	// and core bumps it explicitly for index DDL, which emits no Op.
	rcache *rescache.Cache
	// specBudget caps total speculative crowd spend (dollars booked under
	// SpeculativeBudgetKey); non-positive disables speculation entirely.
	specBudget float64

	// slowQuery, when positive, logs every query slower than the
	// threshold via slog with its traced phase/operator breakdown; it
	// forces the traced execution path for all SELECTs (see autoTrace).
	slowQuery time.Duration
	// traceAll forces traced execution for every ExecSQL even without a
	// slow-query threshold (the -trace flag).
	traceAll bool

	// wal is the durability log (nil when opened without a DataDir).
	// gate serializes snapshots against journaled mutations: every
	// mutation path holds gate.RLock across "apply + append", and
	// Snapshot holds gate.Lock while capturing state — see persist.go.
	wal  *wal.WAL
	gate sync.RWMutex

	mu          sync.RWMutex
	bindings    map[string]*tableBinding             // table name (lower) → space
	expandables map[string]map[string]expandableSpec // table → column → spec
}

// NewDB creates an in-memory crowd-enabled database. The judgment service
// may be nil for a database that only uses pre-labeled gold samples. For
// a durable database, use Open with a DataDir.
func NewDB(service JudgmentService) *DB {
	db, _ := Open(Options{Service: service}) // no DataDir → no error paths
	return db
}

// Close shuts down the batching coalescer (flushing pending batches) and
// the expansion scheduler, waiting for in-flight jobs, then flushes and
// closes the WAL. The returned error reports any append failure latched
// during operation — state that may not have reached disk.
func (db *DB) Close() error {
	// The compactor logs OpCompact records, so it stops first — before
	// the WAL goes away underneath it.
	if db.compactStop != nil {
		close(db.compactStop)
		<-db.compactDone
		db.compactStop = nil
	}
	if db.coalescer != nil {
		db.coalescer.Close()
	}
	db.sched.Close()
	backendErr := db.backend.Close()
	if db.wal == nil {
		return backendErr
	}
	stickyErr := db.wal.Err()
	if err := db.wal.Close(); err != nil {
		return err
	}
	if stickyErr != nil {
		return stickyErr
	}
	return backendErr
}

// Backend exposes the storage backend's registry name (for /schema
// introspection and the server banner).
func (db *DB) Backend() string { return db.backend.Name() }

// CompactNow synchronously compacts every table, bypassing the density
// threshold (the pin/fence admission gates still apply — see
// storage.Table.Compact). It returns the per-table results, keyed by
// table name. This is the POST /admin/compact handler and the test
// hook; the background compactor runs the same pass with the
// configured threshold instead of Force.
func (db *DB) CompactNow() map[string]storage.CompactionResult {
	return db.compactPass(storage.CompactionPolicy{Force: true})
}

// compactPass runs one compaction sweep over all tables under policy.
// Each table compacts under the snapshot gate (read side), so the
// OpCompact record and the version swap land atomically with respect to
// Snapshot — exactly like any other journaled mutation.
func (db *DB) compactPass(policy storage.CompactionPolicy) map[string]storage.CompactionResult {
	out := make(map[string]storage.CompactionResult)
	for _, name := range db.Catalog().Names() {
		var res storage.CompactionResult
		err := db.mutate(func() error {
			var cerr error
			res, cerr = db.backend.Compact(name, policy)
			return cerr
		})
		if err != nil {
			// Dropped table or a latched WAL failure; the WAL surfaces the
			// latter at the next Snapshot/Close.
			continue
		}
		out[name] = res
	}
	return out
}

// compactLoop is the background compactor: a periodic sweep with the
// configured density threshold. Tables busy with pinned snapshots or
// write fences are skipped and retried next tick.
func (db *DB) compactLoop(interval time.Duration, frac float64) {
	defer close(db.compactDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-db.compactStop:
			return
		case <-ticker.C:
			db.compactPass(storage.CompactionPolicy{MinTombstoneFrac: frac})
		}
	}
}

// mutate runs fn (a storage mutation plus its WAL append) under the
// snapshot gate. Never hold the gate across a crowd wait.
func (db *DB) mutate(fn func() error) error {
	db.gate.RLock()
	defer db.gate.RUnlock()
	return fn()
}

// execEngine executes a statement under the snapshot gate, so DML lands
// atomically with respect to Snapshot. SELECT-heavy workloads are not
// serialized: the gate is an RWMutex and statements take the read side.
func (db *DB) execEngine(stmt sqlparse.Statement) (*Result, error) {
	return db.execEngineOpt(stmt, false)
}

// execEngineOpt is execEngine with the result cache optionally bypassed
// for this statement (the ?nocache=1 escape hatch).
func (db *DB) execEngineOpt(stmt sqlparse.Statement, nocache bool) (*Result, error) {
	return db.execEngineQT(stmt, nocache, nil)
}

// execEngineQT is execEngineOpt with an optional query trace: when qt is
// non-nil, SELECTs execute with per-operator instrumentation and fill in
// their phase timings.
func (db *DB) execEngineQT(stmt sqlparse.Statement, nocache bool, qt *QueryTrace) (*Result, error) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	switch s := stmt.(type) {
	// Index DDL takes a detour for the virtual-column check, its
	// durability record, and cache invalidation (see indexes.go).
	case *sqlparse.CreateIndexStmt:
		return db.execCreateIndex(s)
	case *sqlparse.DropIndexStmt:
		return db.execDropIndex(s)
	// SELECTs route through the workload tracker and result cache.
	case *sqlparse.SelectStmt:
		return db.execSelectStmt(s, nocache, qt)
	}
	return db.engine.Exec(stmt)
}

// Engine exposes the underlying SQL engine (read-only use).
func (db *DB) Engine() *engine.Engine { return db.engine }

// Catalog exposes the storage catalog.
func (db *DB) Catalog() *storage.Catalog { return db.engine.Catalog() }

// Ledger returns the cumulative crowd-sourcing account.
func (db *DB) Ledger() LedgerTotals { return db.ledger.Snapshot() }

// AttachSpace associates a perceptual space with a table. idColumn names
// the INTEGER column whose value is the item's index in the space; rows
// whose id falls outside the space are simply not predictable.
func (db *DB) AttachSpace(table, idColumn string, sp *space.Space) error {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return fmt.Errorf("core: no such table %q", table)
	}
	schema := tbl.Schema()
	idx, ok := schema.Lookup(idColumn)
	if !ok {
		return fmt.Errorf("core: table %q has no column %q", table, idColumn)
	}
	if schema.Column(idx).Kind != storage.KindInt {
		return fmt.Errorf("core: id column %q must be INTEGER", idColumn)
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	binding := &tableBinding{space: sp, idColumn: idColumn}
	// Log before installing (same discipline as storage mutators): on an
	// append failure the binding is neither durable nor active.
	if db.wal != nil {
		if _, err := db.wal.Append(recSpace, bindingToRecord(strings.ToLower(table), binding)); err != nil {
			return err
		}
	}
	db.bindings[strings.ToLower(table)] = binding
	return nil
}

// RegisterExpandable declares that the named column may be created by
// implicit query-driven expansion (a SELECT referencing it). This is the
// "malleable schema" declaration: the paper's §2 argues the DBMS should
// answer queries whether the data exists or not, but it still needs to
// know the new attribute's type and elicitation parameters.
func (db *DB) RegisterExpandable(table, column string, kind storage.Kind, opts ExpandOptions) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(table)
	if db.expandables[key] == nil {
		db.expandables[key] = map[string]expandableSpec{}
	}
	db.expandables[key][strings.ToLower(column)] = expandableSpec{kind: kind, opts: opts}
	if db.wal != nil {
		// The signature cannot surface an append failure; the WAL latches
		// it and Snapshot/Close reports it.
		_, _ = db.wal.Append(recExpandable, expandableRecord{
			Table: key, Column: strings.ToLower(column), Kind: kind, Opts: opts,
		})
	}
}

// binding returns the space binding for a table, if any.
func (db *DB) binding(table string) *tableBinding {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.bindings[strings.ToLower(table)]
}

func (db *DB) expandableSpec(table, column string) (expandableSpec, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.expandables[strings.ToLower(table)]
	if m == nil {
		return expandableSpec{}, false
	}
	spec, ok := m[strings.ToLower(column)]
	return spec, ok
}

// Result re-exports the engine result type.
type Result = engine.Result

// ExecSQL parses and executes one statement. SELECTs that reference a
// registered expandable column trigger schema expansion transparently and
// are then re-executed — the query-driven loop of the paper's title.
// The returned report is non-nil iff an expansion happened.
func (db *DB) ExecSQL(sql string) (*Result, *ExpansionReport, error) {
	res, rep, _, err := db.execSQLTimed(sql, false, db.autoTrace())
	return res, rep, err
}

// ExecSQLNoCache is ExecSQL with the semantic result cache bypassed for
// this statement: neither served from nor stored into the cache. The
// escape hatch behind POST /query?nocache=1 — for verifying a cached
// answer or benchmarking the executor.
func (db *DB) ExecSQLNoCache(sql string) (*Result, *ExpansionReport, error) {
	res, rep, _, err := db.execSQLTimed(sql, true, db.autoTrace())
	return res, rep, err
}

// Exec executes a parsed statement (see ExecSQL). The caller blocks until
// the answer is complete, but the expansion itself runs on the job
// scheduler: concurrent queries hitting the same missing column join one
// shared job (singleflight) instead of each paying for its own crowd run.
func (db *DB) Exec(stmt sqlparse.Statement) (*Result, *ExpansionReport, error) {
	return db.exec(stmt, false)
}

func (db *DB) exec(stmt sqlparse.Statement, nocache bool) (*Result, *ExpansionReport, error) {
	return db.execQT(stmt, nocache, nil)
}

// execQT is exec with an optional query trace threaded down to the
// SELECT path (nil means untraced).
func (db *DB) execQT(stmt sqlparse.Statement, nocache bool, qt *QueryTrace) (*Result, *ExpansionReport, error) {
	if ex, ok := stmt.(*sqlparse.ExpandStmt); ok {
		job, err := db.submitExpandStmt(ex)
		if err != nil {
			return nil, nil, err
		}
		report, err := waitReport(job)
		if err != nil {
			return nil, nil, err
		}
		msg := fmt.Sprintf("expanded %s.%s via %s: %d filled, %d unfilled, $%.2f",
			ex.Table, ex.Column.Name, report.Method, report.Filled, report.Unfilled, report.Cost)
		return &Result{Message: msg}, report, nil
	}

	res, err := db.execEngineQT(stmt, nocache, qt)
	if err == nil {
		return res, nil, nil
	}
	// EXPLAIN never runs (or pays for) an expansion: planning a query on
	// a missing column reports the miss instead of eliciting it.
	if _, isExplain := stmt.(*sqlparse.ExplainStmt); isExplain {
		return nil, nil, err
	}
	// Implicit query-driven expansion: only registered columns qualify —
	// a typo must stay an error, not a $20 crowd job.
	job, expErr := db.submitMissingColumn(err)
	if expErr != nil {
		return nil, nil, expErr
	}
	if job == nil {
		return nil, nil, err
	}
	report, err := waitReport(job)
	if err != nil {
		return nil, nil, err
	}
	res, err = db.execEngineQT(stmt, nocache, qt)
	if err != nil {
		return nil, report, err
	}
	return res, report, nil
}

// submitMissingColumn inspects err; if it is a MissingColumnError on a
// registered expandable column, the expansion is submitted (or joined, if
// already in flight) and the job returned. For an unqualified miss in a
// multi-table query the planner cannot know the intended table, so every
// candidate table's registry is consulted (FROM order). A nil, nil return
// means err was not an expandable miss and the caller should surface it
// unchanged.
func (db *DB) submitMissingColumn(err error) (*jobs.Job, error) {
	var missing *engine.MissingColumnError
	if !errors.As(err, &missing) {
		return nil, nil
	}
	table := missing.Table
	spec, ok := db.expandableSpec(table, missing.Column)
	for _, cand := range missing.Candidates {
		if ok {
			break
		}
		table = cand
		spec, ok = db.expandableSpec(table, missing.Column)
	}
	if !ok {
		return nil, nil
	}
	// The miss is a workload signal in its own right: it feeds the
	// co-access model (a miss IS a demand for the column) and the
	// /workload miss counters operators watch.
	db.observe(workload.Observation{
		Table: table, Columns: []string{missing.Column}, Kind: workload.KindMiss,
	})
	job, _, submitErr := db.submitExpansion(table, missing.Column, spec.kind, spec.opts, true)
	if submitErr != nil {
		return nil, fmt.Errorf("core: query-driven expansion of %s.%s rejected: %w",
			table, missing.Column, submitErr)
	}
	return job, nil
}

// waitReport blocks on the job and unwraps its *ExpansionReport. A nil
// report with nil error means a racing job already filled the column.
func waitReport(job *jobs.Job) (*ExpansionReport, error) {
	result, err := job.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	report, _ := result.(*ExpansionReport)
	return report, nil
}

// prepareExpansion is the shared pre-sampling phase of Expand and of the
// batch runner: resolve defaults, validate the kind, and add the column
// to the table if absent. opts is updated in place with its defaults.
func (db *DB) prepareExpansion(table, column string, kind storage.Kind, opts *ExpandOptions) (*storage.Table, error) {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return nil, fmt.Errorf("core: no such table %q", table)
	}

	defaultMethod := sqlparse.ExpandCrowd
	if db.binding(table) != nil {
		defaultMethod = sqlparse.ExpandSpace
	}
	opts.fillDefaults(defaultMethod)

	if kind != storage.KindBool {
		return nil, fmt.Errorf("core: only BOOLEAN perceptual attributes are crowd-expandable in this build; %s has kind %s (use GoldFill for numeric attributes)", column, kind)
	}

	schema := tbl.Schema()
	if _, exists := schema.Lookup(column); !exists {
		err := db.mutate(func() error {
			_, err := tbl.AddColumn(storage.Column{
				Name: column, Kind: kind, Perceptual: true, Origin: storage.ColumnExpanded,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// Expand adds the column to the table (if absent) and fills it with the
// selected strategy. It is idempotent on the column: re-expanding an
// existing column re-elicits its values.
func (db *DB) Expand(table, column string, kind storage.Kind, opts ExpandOptions) (*ExpansionReport, error) {
	tbl, err := db.prepareExpansion(table, column, kind, &opts)
	if err != nil {
		return nil, err
	}

	switch opts.Method {
	case sqlparse.ExpandCrowd:
		return db.expandDirectCrowd(tbl, column, opts)
	case sqlparse.ExpandSpace:
		return db.expandViaSpace(tbl, column, opts)
	case sqlparse.ExpandHybrid:
		return db.expandHybrid(tbl, column, opts)
	default:
		return nil, fmt.Errorf("core: unknown expansion method %q", opts.Method)
	}
}
