package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"crowddb/internal/storage"
)

// explainText plans a query and returns the EXPLAIN tree as one string.
func explainText(t *testing.T, db *DB, sql string) string {
	t.Helper()
	res, _, err := db.ExecSQL("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	var lines []string
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		lines = append(lines, s)
	}
	return strings.Join(lines, "\n")
}

// tornTail chops a few bytes off the newest WAL segment — the signature
// of a crash mid-append.
func tornTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 8 {
		t.Fatalf("segment %s too small to tear", last)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
}

// TestIndexesSurviveRestartWithTornTail is the PR's durability
// acceptance: create indexes (one over an expanded, crowd-paid column),
// kill the process with a torn WAL tail, and require the restarted DB to
// rebuild every index, answer the same point/range queries through them,
// and charge the crowd nothing.
func TestIndexesSurviveRestartWithTornTail(t *testing.T) {
	dir := t.TempDir()
	const rows = 60

	db1 := seedExpandableDB(t, dir, simulatedService(7, rows), rows)
	before := queryComedyNames(t, db1) // triggers + pays for the expansion
	if len(before) == 0 {
		t.Fatal("expansion produced no comedies")
	}
	mustExec := func(db *DB, sql string) {
		t.Helper()
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(db1, `CREATE INDEX idx_mid ON movies (movie_id) USING HASH`)
	mustExec(db1, `CREATE INDEX idx_mid_ord ON movies (movie_id)`)
	mustExec(db1, `CREATE INDEX idx_comedy ON movies (is_comedy) USING HASH`)
	// Scratch writes AFTER the index DDL: the torn tail must land on
	// these, proving recovery drops only the torn record while every
	// create_index record (and the data before it) survives.
	mustExec(db1, `CREATE TABLE scratch (x INTEGER)`)
	mustExec(db1, `INSERT INTO scratch VALUES (1)`)
	mustExec(db1, `INSERT INTO scratch VALUES (2)`)
	led1 := db1.Ledger()

	pointQ := `SELECT name FROM movies WHERE movie_id = 17`
	rangeQ := `SELECT name FROM movies WHERE movie_id >= 10 AND movie_id < 15 ORDER BY movie_id`
	comedyQ := `SELECT name FROM movies WHERE is_comedy = true ORDER BY name`
	answers := func(db *DB, sql string) string {
		t.Helper()
		res, _, err := db.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var out []string
		for _, row := range res.Rows {
			s, _ := row[0].AsText()
			out = append(out, s)
		}
		return strings.Join(out, "|")
	}
	point1, range1, comedy1 := answers(db1, pointQ), answers(db1, rangeQ), answers(db1, comedyQ)
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	tornTail(t, dir)

	dead := &deadService{}
	db2, err := Open(Options{Service: dead, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	// Index definitions recovered, contents rebuilt from recovered rows.
	metas := db2.TableIndexes("movies")
	if len(metas) != 3 {
		t.Fatalf("recovered %d indexes, want 3: %+v", len(metas), metas)
	}
	byName := map[string]storage.IndexMeta{}
	for _, m := range metas {
		byName[m.Name] = m
	}
	if m := byName["idx_mid"]; m.Column != "movie_id" || m.Ordered || m.Entries != rows {
		t.Fatalf("idx_mid recovered wrong: %+v", m)
	}
	if m := byName["idx_mid_ord"]; !m.Ordered || m.Entries != rows {
		t.Fatalf("idx_mid_ord recovered wrong: %+v", m)
	}
	if m := byName["idx_comedy"]; m.Column != "is_comedy" || m.Entries == 0 {
		t.Fatalf("idx_comedy recovered empty (expanded values lost?): %+v", m)
	}

	// The planner uses them again…
	if p := explainText(t, db2, pointQ); !strings.Contains(p, "IndexScan(idx_mid, movie_id=17)") {
		t.Fatalf("point query not index-planned after restart:\n%s", p)
	}
	if p := explainText(t, db2, rangeQ); !strings.Contains(p, "IndexRange(idx_mid_ord, 10..15)") {
		t.Fatalf("range query not index-planned after restart:\n%s", p)
	}
	// …and the answers are bit-identical, with zero new crowd work.
	if got := answers(db2, pointQ); got != point1 {
		t.Fatalf("point answers diverged: %q vs %q", got, point1)
	}
	if got := answers(db2, rangeQ); got != range1 {
		t.Fatalf("range answers diverged: %q vs %q", got, range1)
	}
	if got := answers(db2, comedyQ); got != comedy1 {
		t.Fatalf("comedy answers diverged: %q vs %q", got, comedy1)
	}
	if dead.calls != 0 {
		t.Fatalf("restart re-elicited the crowd %d times", dead.calls)
	}
	if led2 := db2.Ledger(); led2 != led1 {
		t.Fatalf("ledger changed across restart: %+v → %+v", led1, led2)
	}
}

// TestIndexSurvivesSnapshotPlusReplay covers the other recovery path: the
// index definition rides the snapshot, and WAL-replayed inserts after the
// snapshot are re-applied into the rebuilt index.
func TestIndexSurvivesSnapshotPlusReplay(t *testing.T) {
	dir := t.TempDir()
	db1, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	exec := func(db *DB, sql string) {
		t.Helper()
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	exec(db1, `CREATE TABLE readings (sensor INTEGER, temp FLOAT)`)
	for i := 0; i < 40; i++ {
		exec(db1, fmt.Sprintf(`INSERT INTO readings VALUES (%d, %d.5)`, i%4, i))
	}
	exec(db1, `CREATE INDEX r_temp ON readings (temp)`)
	if _, err := db1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: replayed inserts must land in the rebuilt index.
	for i := 40; i < 60; i++ {
		exec(db1, fmt.Sprintf(`INSERT INTO readings VALUES (%d, %d.5)`, i%4, i))
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	metas := db2.TableIndexes("readings")
	if len(metas) != 1 || metas[0].Entries != 60 {
		t.Fatalf("recovered index = %+v, want 60 entries", metas)
	}
	res, _, err := db2.ExecSQL(`SELECT sensor FROM readings WHERE temp > 49.0 AND temp < 55.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // temps 49.5 … 54.5
		t.Fatalf("range rows = %d, want 6", len(res.Rows))
	}
	if p := explainText(t, db2, `SELECT sensor FROM readings WHERE temp > 49.0 AND temp < 55.0`); !strings.Contains(p, "IndexRange(r_temp") {
		t.Fatalf("replayed index not used:\n%s", p)
	}
}

// TestCreateIndexOnVirtualColumnRejected is the satellite fix: indexing a
// registered-but-unexpanded column fails with the typed sentinel (HTTP
// 400), and crucially does NOT trigger the expansion; once the column is
// filled, the same statement succeeds.
func TestCreateIndexOnVirtualColumnRejected(t *testing.T) {
	const rows = 60
	db := seedExpandableDB(t, t.TempDir(), simulatedService(7, rows), rows)
	defer db.Close()

	led0 := db.Ledger()
	_, _, err := db.ExecSQL(`CREATE INDEX idx_c ON movies (is_comedy)`)
	if !errors.Is(err, ErrIndexOnVirtualColumn) {
		t.Fatalf("err = %v, want ErrIndexOnVirtualColumn", err)
	}
	if led := db.Ledger(); led != led0 {
		t.Fatalf("rejected CREATE INDEX charged the crowd: %+v → %+v", led0, led)
	}
	if _, ok := db.Catalog().Get("movies"); !ok {
		t.Fatal("movies vanished")
	}
	tbl, _ := db.Catalog().Get("movies")
	if _, exists := tbl.Schema().Lookup("is_comedy"); exists {
		t.Fatal("rejected CREATE INDEX materialized the virtual column")
	}

	// Fill it, then index it.
	if got := queryComedyNames(t, db); len(got) == 0 {
		t.Fatal("expansion produced no comedies")
	}
	if _, _, err := db.ExecSQL(`CREATE INDEX idx_c ON movies (is_comedy)`); err != nil {
		t.Fatalf("CREATE INDEX after expansion: %v", err)
	}
	metas := db.TableIndexes("movies")
	if len(metas) != 1 || metas[0].Entries == 0 {
		t.Fatalf("index after expansion = %+v", metas)
	}
}
