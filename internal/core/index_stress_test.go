package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// TestIndexStressConcurrentInsertsReadsAndFill is the PR's race
// satellite (run under -race in CI and nightly): concurrent INSERTs,
// index-backed point and range reads, and an in-flight crowd expansion
// bulk-filling an indexed column, all against one database. Correctness
// bar: no probe ever returns a row that fails its own predicate, and the
// final index answers match a full scan.
func TestIndexStressConcurrentInsertsReadsAndFill(t *testing.T) {
	const rows = 60
	db := seedExpandableDB(t, t.TempDir(), simulatedService(7, rows), rows)
	defer func() {
		if err := db.Close(); err != nil {
			t.Error(err)
		}
	}()

	// First expansion materializes is_comedy so it can be indexed.
	if got := queryComedyNames(t, db); len(got) == 0 {
		t.Fatal("expansion produced no comedies")
	}
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE INDEX idx_comedy ON movies (is_comedy) USING HASH`)
	mustExec(`CREATE INDEX idx_mid ON movies (movie_id)`)
	mustExec(`CREATE TABLE events (id INTEGER, bucket INTEGER)`)
	mustExec(`CREATE INDEX ev_bucket ON events (bucket) USING HASH`)
	mustExec(`CREATE INDEX ev_id ON events (id)`)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: a stream of inserts into the indexed events table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			sql := fmt.Sprintf(`INSERT INTO events VALUES (%d, %d)`, i, i%7)
			if _, _, err := db.ExecSQL(sql); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()

	// Readers: index-backed point + range probes on both tables while the
	// writer and the expansion below are running.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := db.ExecSQL(`SELECT id, bucket FROM events WHERE bucket = 3`)
				if err != nil {
					t.Errorf("point read: %v", err)
					return
				}
				for _, row := range res.Rows {
					if b, _ := row[1].AsInt(); b != 3 {
						t.Errorf("point probe returned bucket %d", b)
						return
					}
				}
				res, _, err = db.ExecSQL(`SELECT id FROM events WHERE id >= 100 AND id < 200`)
				if err != nil {
					t.Errorf("range read: %v", err)
					return
				}
				if len(res.Rows) > 100 {
					t.Errorf("range probe returned %d rows for a 100-wide window", len(res.Rows))
					return
				}
				if _, _, err := db.ExecSQL(`SELECT name FROM movies WHERE is_comedy = true`); err != nil {
					t.Errorf("comedy read: %v", err)
					return
				}
			}
		}()
	}

	// The in-flight expansion: re-elicit is_comedy, whose bulk FillColumn
	// rebuilds idx_comedy under the table lock while the readers above
	// are probing it.
	stmt, err := sqlparse.Parse(`EXPAND TABLE movies ADD COLUMN is_comedy BOOLEAN USING SPACE WITH SAMPLES 10`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(stmt); err != nil {
		t.Fatalf("re-expansion: %v", err)
	}
	close(stop)
	wg.Wait()

	// Settled state: index answers must agree with a scan-side recount.
	res, _, err := db.ExecSQL(`SELECT count(*) n FROM events WHERE bucket = 3`)
	if err != nil {
		t.Fatal(err)
	}
	viaIndex, _ := res.Rows[0][0].AsInt()
	tbl, _ := db.Catalog().Get("events")
	want := int64(0)
	tbl.Scan(func(i int, row storage.Row) bool {
		if b, _ := row[1].AsInt(); b == 3 {
			want++
		}
		return true
	})
	// count(*) plans through the aggregate over the index scan; verify the
	// plan actually used the index so the comparison means something.
	if p := explainText(t, db, `SELECT count(*) n FROM events WHERE bucket = 3`); !strings.Contains(p, "IndexScan(ev_bucket") {
		t.Fatalf("count not index-planned:\n%s", p)
	}
	if viaIndex != want {
		t.Fatalf("index count %d != scan count %d", viaIndex, want)
	}
	if m := db.TableIndexes("movies"); len(m) != 2 {
		t.Fatalf("movies indexes = %+v", m)
	}
}
