package core

import (
	"errors"
	"fmt"
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// ErrIndexOnVirtualColumn marks a CREATE INDEX against a column that is
// registered for query-driven expansion but has not been materialized
// yet: there is nothing to index until the crowd fills it. The HTTP layer
// maps it to 400 — it is the client's sequencing mistake, not a server
// fault, and it must never trigger (or charge for) the expansion itself.
var ErrIndexOnVirtualColumn = errors.New("core: cannot index a not-yet-expanded column")

// execCreateIndex handles CREATE INDEX on the crowd-enabled layer: it
// rejects indexes on virtual (registered-but-unexpanded) columns with a
// typed error, delegates the build to the engine, and journals a
// create_index record so the index is rebuilt on recovery. Caller holds
// db.gate.RLock (the execEngine path), so the record lands atomically
// with respect to Snapshot.
func (db *DB) execCreateIndex(ci *sqlparse.CreateIndexStmt) (*Result, error) {
	cols := ci.Columns
	if len(cols) == 0 {
		cols = []sqlparse.IndexCol{{Name: ci.Column}}
	}
	if tbl, ok := db.Catalog().Get(ci.Table); ok {
		for _, col := range cols {
			if _, exists := tbl.Schema().Lookup(col.Name); exists {
				continue
			}
			if _, registered := db.expandableSpec(ci.Table, col.Name); registered {
				return nil, fmt.Errorf("%w: %s.%s is registered for query-driven expansion but holds no data yet; EXPAND it (or query it) first",
					ErrIndexOnVirtualColumn, ci.Table, col.Name)
			}
		}
	}
	res, err := db.engine.Exec(ci)
	if err != nil {
		return nil, err
	}
	// Index DDL emits no storage.Op, so the result cache's observer never
	// fires — bump the table's sequence here. (Strictly the rows are
	// unchanged, but the ISSUE's invalidation contract is "any mutation
	// bumps the seq", and a plan-shape change is cheap to over-invalidate.)
	if db.rcache != nil {
		db.rcache.InvalidateTable(strings.ToLower(ci.Table))
	}
	if db.wal != nil {
		// Logged after a successful attach: the record describes derived
		// state (rebuildable from rows), so a crash in the window loses
		// only the index, never data. An append failure latches in the WAL
		// and surfaces at the next Snapshot/Close.
		names := make([]string, len(cols))
		dirs := make([]bool, len(cols))
		for i, c := range cols {
			names[i], dirs[i] = c.Name, c.Desc
		}
		_, _ = db.wal.Append(recIndex, indexRecord{
			Name: ci.Name, Table: ci.Table, Column: names[0],
			Columns: names, Dirs: dirs, Kind: ci.Kind,
		})
	}
	return res, nil
}

// execDropIndex handles DROP INDEX on the crowd-enabled layer: delegate
// the detach to the engine, invalidate cached plans over the table, and
// journal a drop_index record so the removal survives recovery (replay
// re-creates then re-drops; the snapshot simply omits dropped indexes).
// Caller holds db.gate.RLock.
func (db *DB) execDropIndex(di *sqlparse.DropIndexStmt) (*Result, error) {
	res, err := db.engine.Exec(di)
	if err != nil {
		return nil, err
	}
	if db.rcache != nil {
		db.rcache.InvalidateTable(strings.ToLower(di.Table))
	}
	if db.wal != nil {
		_, _ = db.wal.Append(recDropIndex, indexRecord{Name: di.Name, Table: di.Table})
	}
	return res, nil
}

// applyIndexRecord rebuilds one persisted index from the (already
// restored or replayed) table rows. Used by snapshot restore and WAL
// replay; the journal is not attached yet, so nothing is re-logged.
func (db *DB) applyIndexRecord(ir indexRecord) error {
	cols := ir.indexCols()
	_, err := db.engine.Exec(&sqlparse.CreateIndexStmt{
		Name: ir.Name, Table: ir.Table, Columns: cols, Column: cols[0].Name, Kind: ir.Kind,
	})
	return err
}

// TableIndexes returns the index inventory of one table — a convenience
// for embedders and tests. The HTTP and REPL surfaces hold the *Table
// already and read tbl.IndexMetas() directly.
func (db *DB) TableIndexes(table string) []storage.IndexMeta {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return nil
	}
	return tbl.IndexMetas()
}
