package core

import "crowddb/internal/obs"

// Core-layer metric families. Package-level so registration happens once
// at init; all DB instances in a process share them (counters are
// cumulative by contract — see internal/obs). The catalog lives in
// DESIGN.md §17.
var (
	mQuerySeconds = obs.Default.Histogram("crowddb_query_seconds",
		"End-to-end ExecSQL latency, parse through result, in seconds.", nil)
	mQueryPhase = obs.Default.HistogramVec("crowddb_query_phase_seconds",
		"SELECT latency split by phase (parse, plan, cache_lookup, execute).", nil, "phase")
	mCacheHits = obs.Default.Counter("crowddb_cache_hits_total",
		"SELECTs served from the semantic result cache.")
	mCacheMisses = obs.Default.Counter("crowddb_cache_misses_total",
		"SELECTs that consulted the result cache and executed anyway.")
	mSlowQueries = obs.Default.Counter("crowddb_slow_queries_total",
		"Queries that exceeded the -slow-query threshold.")

	mBudgetDenials = obs.Default.Counter("crowddb_budget_denials_total",
		"Crowd work rejected because an API key's budget cap could not cover it.")
	mCrowdCharges = obs.Default.Counter("crowddb_crowd_charges_total",
		"Crowd runs charged to the ledger.")
	mCrowdJudgments = obs.Default.Counter("crowddb_crowd_judgments_total",
		"Human judgments collected across all crowd runs.")
	mCrowdDollars = obs.Default.FloatCounter("crowddb_crowd_cost_dollars_total",
		"Cumulative crowd spend in dollars.")
)
