package core

import (
	"fmt"

	"crowddb/internal/storage"
	"crowddb/internal/svm"
)

// GoldValue is one expert-provided numeric judgment for a tuple, keyed by
// the table's space item id.
type GoldValue struct {
	ItemID int
	Value  float64
}

// GoldFill expands (or refills) a FLOAT perceptual column from a small
// gold sample of numeric judgments: a support vector regression machine is
// trained on the samples' perceptual-space coordinates and evaluated for
// every tuple — the §3.4 workflow for graded attributes such as a movie's
// humor score ("SELECT name FROM movies WHERE humor >= 8").
//
// The gold sample is passed in directly rather than crowd-sourced: numeric
// elicitation UIs are out of scope of the marketplace simulator, and the
// paper likewise obtains its graded samples from trusted experts.
func (db *DB) GoldFill(table, column string, gold []GoldValue) (*ExpansionReport, error) {
	if len(gold) < 4 {
		return nil, fmt.Errorf("core: GoldFill needs at least 4 gold values, got %d", len(gold))
	}
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return nil, fmt.Errorf("core: no such table %q", table)
	}
	binding := db.binding(table)
	if binding == nil {
		return nil, fmt.Errorf("core: GoldFill requires AttachSpace on %q", table)
	}
	sp := binding.space

	schema := tbl.Schema()
	if _, exists := schema.Lookup(column); !exists {
		err := db.mutate(func() error {
			_, err := tbl.AddColumn(storage.Column{
				Name: column, Kind: storage.KindFloat, Perceptual: true, Origin: storage.ColumnExpanded,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
	} else {
		idx, _ := schema.Lookup(column)
		if schema.Column(idx).Kind != storage.KindFloat {
			return nil, fmt.Errorf("core: GoldFill requires a FLOAT column, %s is %s",
				column, schema.Column(idx).Kind)
		}
	}

	var X [][]float64
	var y []float64
	for _, g := range gold {
		if g.ItemID < 0 || g.ItemID >= sp.NumItems() {
			return nil, fmt.Errorf("core: gold item %d outside the space [0,%d)", g.ItemID, sp.NumItems())
		}
		X = append(X, sp.Vector(g.ItemID))
		y = append(y, g.Value)
	}
	model, err := svm.TrainSVR(X, y, svm.SVRConfig{C: 10, Epsilon: 0.1})
	if err != nil {
		return nil, err
	}

	rows, ids, err := db.rowItemIDs(tbl)
	if err != nil {
		return nil, err
	}
	report := &ExpansionReport{Table: tbl.Name(), Column: column, Method: "GOLD-SVR", TrainingSize: len(gold)}
	vals := make([]storage.Value, len(rows))
	for i := range rows {
		id := ids[i]
		if id < 0 || id >= sp.NumItems() {
			vals[i] = storage.Null()
			report.Unfilled++
			continue
		}
		vals[i] = storage.Float(model.Predict(sp.Vector(id)))
		report.Filled++
	}
	if err := db.mutate(func() error { return tbl.FillColumn(column, vals) }); err != nil {
		return nil, err
	}
	return report, nil
}
