package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/engine"
	"crowddb/internal/jobs"
	"crowddb/internal/space"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	_ "crowddb/internal/storage/membackend" // registers the default "mem" backend
	"crowddb/internal/vecmath"
	"crowddb/internal/wal"
	"crowddb/internal/workload"
	rescache "crowddb/internal/workload/cache"
)

// Durability: every state change — storage mutations, ledger charges,
// space bindings, expandable registrations, job completions — flows
// through the WAL, and Open reconstructs the database from snapshot +
// replay. Expanded columns are the point: each one cost real crowd
// dollars, and a restart must never charge for them again.
//
// Consistency model. Mutators hold db.gate.RLock around the mutation and
// its log append; Snapshot holds db.gate.Lock while reading state and the
// covering sequence number. An RWMutex writer excludes readers, so the
// captured state reflects exactly the records up to the captured seq —
// replay after restore neither double-applies nor drops a mutation. The
// gate is never held across crowd waits (only around the storage/ledger
// touch itself), so snapshots don't stall behind HIT latency.

// Options configures a crowd-enabled database.
type Options struct {
	// Service obtains human judgments; may be nil for databases that only
	// use GoldFill.
	Service JudgmentService
	// DataDir enables durability: WAL segments and snapshots live here,
	// and Open recovers from them. Empty means in-memory only.
	DataDir string
	// Fsync makes WAL appends reach the platter (batched group commit);
	// off, appends still reach the OS promptly and survive process
	// crashes, but not power loss.
	Fsync bool
	// SegmentBytes is the WAL segment rotation threshold (default 8 MiB).
	SegmentBytes int64
	// Workers sizes the expansion scheduler's worker pool (default 4).
	Workers int
	// QueueDepth bounds the expansion admission queue (default 64).
	QueueDepth int
	// BatchWindow, when positive, enables batched HIT elicitation:
	// expansions of the same table submitted within this window merge
	// their sampling phases into shared HIT groups, charged once. Zero
	// disables batching (every expansion is its own crowd job).
	BatchWindow time.Duration
	// DefaultBudget, when positive, caps the crowd spend of every API
	// key that has no explicit SetBudget cap. Zero leaves unknown keys
	// uncapped.
	DefaultBudget float64
	// SpeculativeBudget, when positive, enables predictive pre-expansion
	// and caps its total crowd spend in dollars (booked under
	// SpeculativeBudgetKey). Requires BatchWindow — speculation exists to
	// merge into the demand expansion's batch. Zero disables speculation.
	SpeculativeBudget float64
	// CacheBytes bounds the semantic result cache. Zero means the default
	// (64 MiB); negative disables the cache entirely.
	CacheBytes int64
	// ExecWorkers is the degree of intra-query parallelism for SELECT
	// execution: 0 picks GOMAXPROCS, 1 forces fully serial plans.
	ExecWorkers int
	// Backend selects the storage engine below the journal by registry
	// name (see storage.RegisterBackend). Empty means "mem", the MVCC
	// in-memory engine with inline snapshots; "file" snapshots each
	// table to its own shard file under DataDir.
	Backend string
	// CompactInterval, when positive, runs the background tombstone
	// compactor: every interval, each table whose sealed-chunk tombstone
	// density exceeds CompactTombstoneFrac is rewritten without its dead
	// rows (gated on live snapshot pins and write fences — see
	// storage.Table.Compact). Zero disables background compaction;
	// CompactNow remains available.
	CompactInterval time.Duration
	// CompactTombstoneFrac is the sealed-region tombstone density
	// threshold for background compaction; non-positive means the
	// storage default (0.30).
	CompactTombstoneFrac float64
	// SlowQuery, when positive, slog-logs every query slower than the
	// threshold with its traced phase and operator breakdown. Setting it
	// runs all SELECTs on the traced executor path (the breakdown must
	// exist before the query is known to be slow), trading a little
	// per-row overhead for attribution.
	SlowQuery time.Duration
	// TraceQueries forces the traced executor path for every statement,
	// threshold or not — the -trace flag, for debugging sessions.
	TraceQueries bool
}

// ErrNoDataDir is returned by Snapshot on a database opened without a
// data directory.
var ErrNoDataDir = errors.New("core: database has no data dir (durability disabled)")

// WAL record types above the storage layer.
const (
	recOp          = "op"           // storage.Op — table/catalog mutation
	recSpace       = "space"        // perceptual-space binding
	recExpandable  = "expandable"   // expandable-column registration
	recCharge      = "charge"       // crowd spend booked to the ledger
	recJob         = "job"          // expansion job reached a terminal state
	recBudgetCap   = "budget_cap"   // per-API-key budget cap installed
	recBudgetSpend = "budget_spend" // crowd spend debited against a key
	recIndex       = "create_index" // secondary index created on a table
	recDropIndex   = "drop_index"   // secondary index dropped from a table
	recWorkload    = "workload_obs" // one workload observation (query footprint)
)

// spaceRecord persists one table↔space binding, coordinates included, so
// SPACE/HYBRID strategies work immediately after recovery.
type spaceRecord struct {
	Table    string      `json:"table"`
	IDColumn string      `json:"id_column"`
	Vectors  [][]float64 `json:"vectors"`
}

// expandableRecord persists one RegisterExpandable declaration.
// ExpandOptions' callbacks are unexported and skipped by encoding/json;
// every tunable field survives.
type expandableRecord struct {
	Table  string        `json:"table"`
	Column string        `json:"column"`
	Kind   storage.Kind  `json:"kind"`
	Opts   ExpandOptions `json:"opts"`
}

// chargeRecord persists one crowd run's cost, mirroring Ledger.add.
type chargeRecord struct {
	Judgments int     `json:"judgments"`
	Cost      float64 `json:"cost"`
	Minutes   float64 `json:"minutes"`
}

// jobRecord persists one terminal expansion job: its identity, outcome,
// and per-job ledger — the completion record that proves an expansion was
// paid for and must not be re-elicited.
type jobRecord struct {
	ID       string           `json:"id"`
	Key      string           `json:"key"`
	State    jobs.State       `json:"state"`
	Created  time.Time        `json:"created"`
	Started  time.Time        `json:"started,omitzero"`
	Finished time.Time        `json:"finished,omitzero"`
	Error    string           `json:"error,omitempty"`
	Ledger   jobs.Ledger      `json:"ledger"`
	Origin   string           `json:"origin,omitempty"`
	Report   *ExpansionReport `json:"report,omitempty"`
}

// indexRecord persists one CREATE INDEX. Only the definition is durable:
// index contents are derived data, rebuilt from the recovered rows by
// re-running the attach during restore/replay — no entry payload to keep
// consistent with the row log.
type indexRecord struct {
	Name  string `json:"name"`
	Table string `json:"table"`
	// Column is the first key column — written for every record so logs
	// produced by this version still decode on pre-composite readers.
	Column string `json:"column"`
	// Columns/Dirs carry the full composite key; absent on legacy records
	// (which decode as a single ascending column).
	Columns []string `json:"columns,omitempty"`
	Dirs    []bool   `json:"dirs,omitempty"`
	Kind    string   `json:"kind"` // "hash" or "ordered"
}

// indexCols converts a persisted record's key spec into statement columns,
// tolerating legacy single-column records.
func (ir indexRecord) indexCols() []sqlparse.IndexCol {
	if len(ir.Columns) == 0 {
		return []sqlparse.IndexCol{{Name: ir.Column}}
	}
	cols := make([]sqlparse.IndexCol, len(ir.Columns))
	for i, name := range ir.Columns {
		cols[i] = sqlparse.IndexCol{Name: name, Desc: i < len(ir.Dirs) && ir.Dirs[i]}
	}
	return cols
}

// snapshotState is the complete durable state of a DB at one sequence
// number. Tables are captured and restored by the storage backend
// (storage.TableState keeps the legacy inline wire form, so snapshots
// written before the Backend seam still decode).
type snapshotState struct {
	Tables      []storage.TableState `json:"tables"`
	Bindings    []spaceRecord        `json:"bindings,omitempty"`
	Expandables []expandableRecord   `json:"expandables,omitempty"`
	Ledger      LedgerTotals         `json:"ledger"`
	Jobs        []jobRecord          `json:"jobs,omitempty"`
	// Budgets carries every API key's cap and cumulative spend: money
	// state, as durable as the ledger itself.
	Budgets []BudgetStatus `json:"budgets,omitempty"`
	// Indexes carries every secondary-index definition; contents are
	// rebuilt from Tables during restore.
	Indexes []indexRecord `json:"indexes,omitempty"`
	// Workload carries the tracker's aggregate counters (the durable half
	// of the workload trace; the recent-observation ring restarts empty).
	Workload *workload.CounterState `json:"workload,omitempty"`
}

// walJournal adapts the WAL to storage.Journal: every storage mutation
// becomes an "op" record. Append errors latch in the WAL and surface at
// the next Snapshot/Close even when the mutator signature drops them.
type walJournal struct{ db *DB }

func (j walJournal) LogOp(op storage.Op) error {
	_, err := j.db.wal.Append(recOp, op)
	return err
}

// Open creates a crowd-enabled database. With a DataDir it first recovers
// all prior state — tables, expanded columns with provenance, space
// bindings, the expandable registry, ledger totals, and terminal job
// history — from the latest snapshot plus WAL replay, then attaches the
// journal so new mutations are logged.
func Open(opts Options) (*DB, error) {
	workers, depth := opts.Workers, opts.QueueDepth
	if workers <= 0 {
		workers = defaultExpansionWorkers
	}
	if depth <= 0 {
		depth = defaultExpansionQueue
	}
	backendName := opts.Backend
	if backendName == "" {
		backendName = "mem"
	}
	be, err := storage.NewBackend(backendName)
	if err != nil {
		return nil, err
	}
	if err := be.Open(opts.DataDir); err != nil {
		return nil, err
	}
	db := &DB{
		backend:     be,
		engine:      engine.New(be.Catalog()),
		service:     opts.Service,
		ledger:      &Ledger{},
		sched:       jobs.NewScheduler(workers, depth),
		bindings:    map[string]*tableBinding{},
		expandables: map[string]map[string]expandableSpec{},
		tracker:     workload.NewTracker(0),
		specBudget:  opts.SpeculativeBudget,
		slowQuery:   opts.SlowQuery,
		traceAll:    opts.TraceQueries,
	}
	db.engine.SetExecWorkers(opts.ExecWorkers)
	if opts.CacheBytes >= 0 {
		db.rcache = rescache.New(opts.CacheBytes)
	}
	db.sched.OnTerminal = db.onJobTerminal
	db.budgets.defaultCap = opts.DefaultBudget
	if opts.BatchWindow > 0 {
		db.coalescer = jobs.NewCoalescer(db.sched, opts.BatchWindow, db.runExpansionBatch)
	}
	if opts.DataDir == "" {
		db.finishOpen(opts)
		return db, nil
	}

	w, walErr := wal.Open(opts.DataDir, wal.Options{SegmentBytes: opts.SegmentBytes, Fsync: opts.Fsync})
	if walErr != nil {
		return nil, walErr
	}
	restored := map[string]jobs.RestoredJob{}
	var snap snapshotState
	ok, err := w.LoadSnapshot(&snap)
	if err != nil {
		w.Close()
		return nil, err
	}
	if ok {
		if err := db.restoreSnapshot(&snap, restored); err != nil {
			w.Close()
			return nil, fmt.Errorf("core: restoring snapshot: %w", err)
		}
	}
	if err := w.Replay(func(rec wal.Record) error {
		if err := db.applyRecord(rec, restored); err != nil {
			return fmt.Errorf("core: replaying record %d (%s): %w", rec.Seq, rec.Type, err)
		}
		return nil
	}); err != nil {
		w.Close()
		return nil, err
	}
	db.sched.Restore(sortRestored(restored))

	// Recovery complete: from here on, mutations are journaled.
	db.wal = w
	db.Catalog().SetJournal(walJournal{db})
	db.finishOpen(opts)
	return db, nil
}

// finishOpen wires the workload subsystem after any recovery: the cache
// invalidation observer attaches only now, so replayed mutations are not
// re-observed (the cache is empty anyway — correctly cold after a
// restart), and the speculative cap from Options is applied last so the
// flag always wins over a stale recovered cap. The cap is set directly
// (no WAL record): Options re-asserts it on every Open.
func (db *DB) finishOpen(opts Options) {
	if db.rcache != nil {
		rc := db.rcache
		db.Catalog().SetObserver(func(op storage.Op) {
			rc.InvalidateTable(strings.ToLower(op.Table))
		})
	}
	if opts.SpeculativeBudget > 0 {
		db.budgets.setCap(SpeculativeBudgetKey, opts.SpeculativeBudget)
	}
	if opts.CompactInterval > 0 {
		db.compactStop = make(chan struct{})
		db.compactDone = make(chan struct{})
		go db.compactLoop(opts.CompactInterval, opts.CompactTombstoneFrac)
	}
}

// Snapshot persists the full current state and truncates the WAL segments
// it covers, returning the covered sequence number. Mutations are briefly
// excluded while state is captured (see the consistency-model comment);
// the file write happens outside the gate.
func (db *DB) Snapshot() (uint64, error) {
	if db.wal == nil {
		return 0, ErrNoDataDir
	}
	if err := db.wal.Err(); err != nil {
		return 0, fmt.Errorf("core: WAL is wedged, refusing to snapshot: %w", err)
	}
	db.gate.Lock()
	state, err := db.collectState()
	seq := db.wal.Seq()
	db.gate.Unlock()
	if err != nil {
		return 0, err
	}
	if err := db.wal.WriteSnapshot(seq, state); err != nil {
		return 0, err
	}
	return seq, nil
}

// collectState captures the DB's durable state. Caller holds db.gate.Lock,
// so no journaled mutation is mid-flight. Table contents come from the
// backend (which may externalize them); index definitions are collected
// here, since they live above the seam.
func (db *DB) collectState() (*snapshotState, error) {
	st := &snapshotState{Ledger: db.ledger.Snapshot()}
	tables, err := db.backend.Capture()
	if err != nil {
		return nil, fmt.Errorf("core: backend capture: %w", err)
	}
	st.Tables = tables
	c := db.Catalog()
	for _, name := range c.Names() {
		tbl, ok := c.Get(name)
		if !ok {
			continue
		}
		for _, im := range tbl.IndexMetas() {
			st.Indexes = append(st.Indexes, indexRecord{
				Name: im.Name, Table: tbl.Name(), Column: im.Column,
				Columns: im.Columns, Dirs: im.Dirs, Kind: im.Kind(),
			})
		}
	}

	db.mu.RLock()
	for table, b := range db.bindings {
		st.Bindings = append(st.Bindings, bindingToRecord(table, b))
	}
	for table, cols := range db.expandables {
		for col, spec := range cols {
			st.Expandables = append(st.Expandables, expandableRecord{
				Table: table, Column: col, Kind: spec.kind, Opts: spec.opts,
			})
		}
	}
	db.mu.RUnlock()
	sort.Slice(st.Bindings, func(i, j int) bool { return st.Bindings[i].Table < st.Bindings[j].Table })
	sort.Slice(st.Expandables, func(i, j int) bool {
		a, b := st.Expandables[i], st.Expandables[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.Column < b.Column
	})

	// Only terminal jobs are durable: a job still running has written no
	// completion record, and after a crash it simply re-runs.
	for _, js := range db.sched.Jobs() {
		if !js.State.Terminal() {
			continue
		}
		st.Jobs = append(st.Jobs, statusToJobRecord(js))
	}
	st.Budgets = db.Budgets()
	if db.tracker != nil {
		cs := db.tracker.Export()
		st.Workload = &cs
	}
	return st, nil
}

// restoreSnapshot rebuilds the DB from a snapshot. The catalog has no
// journal attached yet, so nothing here is re-logged.
func (db *DB) restoreSnapshot(st *snapshotState, restored map[string]jobs.RestoredJob) error {
	if err := db.backend.Restore(st.Tables); err != nil {
		return err
	}
	for _, ir := range st.Indexes {
		if err := db.applyIndexRecord(ir); err != nil {
			return fmt.Errorf("index %s on %s: %w", ir.Name, ir.Table, err)
		}
	}
	for _, b := range st.Bindings {
		if err := db.applySpaceRecord(b); err != nil {
			return err
		}
	}
	for _, e := range st.Expandables {
		db.RegisterExpandable(e.Table, e.Column, e.Kind, e.Opts)
	}
	db.ledger.restore(st.Ledger)
	for _, b := range st.Budgets {
		db.budgets.setCap(b.Key, b.Cap)
		db.budgets.addSpend(b.Key, b.Spent)
	}
	for _, jr := range st.Jobs {
		restored[jr.ID] = jobRecordToRestored(jr)
	}
	if st.Workload != nil {
		db.tracker.Import(*st.Workload)
	}
	return nil
}

// applyRecord applies one replayed WAL record.
func (db *DB) applyRecord(rec wal.Record, restored map[string]jobs.RestoredJob) error {
	switch rec.Type {
	case recOp:
		var op storage.Op
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return err
		}
		return db.backend.ApplyOp(op)
	case recSpace:
		var sr spaceRecord
		if err := json.Unmarshal(rec.Data, &sr); err != nil {
			return err
		}
		return db.applySpaceRecord(sr)
	case recExpandable:
		var er expandableRecord
		if err := json.Unmarshal(rec.Data, &er); err != nil {
			return err
		}
		db.RegisterExpandable(er.Table, er.Column, er.Kind, er.Opts)
		return nil
	case recCharge:
		var cr chargeRecord
		if err := json.Unmarshal(rec.Data, &cr); err != nil {
			return err
		}
		db.ledger.addRaw(cr.Judgments, cr.Cost, cr.Minutes)
		return nil
	case recJob:
		var jr jobRecord
		if err := json.Unmarshal(rec.Data, &jr); err != nil {
			return err
		}
		restored[jr.ID] = jobRecordToRestored(jr)
		return nil
	case recBudgetCap:
		var br budgetCapRecord
		if err := json.Unmarshal(rec.Data, &br); err != nil {
			return err
		}
		db.budgets.setCap(br.Key, br.Cap)
		return nil
	case recBudgetSpend:
		var br budgetSpendRecord
		if err := json.Unmarshal(rec.Data, &br); err != nil {
			return err
		}
		db.budgets.addSpend(br.Key, br.Amount)
		return nil
	case recIndex:
		var ir indexRecord
		if err := json.Unmarshal(rec.Data, &ir); err != nil {
			return err
		}
		return db.applyIndexRecord(ir)
	case recDropIndex:
		var ir indexRecord
		if err := json.Unmarshal(rec.Data, &ir); err != nil {
			return err
		}
		_, err := db.engine.Exec(&sqlparse.DropIndexStmt{Name: ir.Name, Table: ir.Table})
		return err
	case recWorkload:
		var obs workload.Observation
		if err := json.Unmarshal(rec.Data, &obs); err != nil {
			return err
		}
		// Straight into the tracker — replay must not re-append.
		db.tracker.Observe(obs)
		return nil
	default:
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
}

// applySpaceRecord rebuilds a perceptual space from persisted coordinates
// and binds it, without logging (used by restore and replay).
func (db *DB) applySpaceRecord(sr spaceRecord) error {
	if len(sr.Vectors) == 0 {
		return fmt.Errorf("space record for %q has no vectors", sr.Table)
	}
	m := vecmath.NewMatrix(len(sr.Vectors), len(sr.Vectors[0]))
	for i, v := range sr.Vectors {
		if len(v) != m.Cols {
			return fmt.Errorf("space record for %q: ragged vector %d", sr.Table, i)
		}
		copy(m.Row(i), v)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bindings[strings.ToLower(sr.Table)] = &tableBinding{
		space: space.NewSpace(m), idColumn: sr.IDColumn,
	}
	return nil
}

func bindingToRecord(table string, b *tableBinding) spaceRecord {
	sr := spaceRecord{Table: table, IDColumn: b.idColumn}
	for i := 0; i < b.space.NumItems(); i++ {
		sr.Vectors = append(sr.Vectors, append([]float64(nil), b.space.Vector(i)...))
	}
	return sr
}

func statusToJobRecord(st jobs.Status) jobRecord {
	jr := jobRecord{
		ID: st.ID, Key: st.Key, State: st.State,
		Created: st.Created, Started: st.Started, Finished: st.Finished,
		Error: st.Error, Ledger: st.Ledger, Origin: st.Origin,
	}
	if rep, ok := st.Result.(*ExpansionReport); ok {
		jr.Report = rep
	}
	return jr
}

func jobRecordToRestored(jr jobRecord) jobs.RestoredJob {
	r := jobs.RestoredJob{
		ID: jr.ID, Key: jr.Key, State: jr.State,
		Created: jr.Created, Started: jr.Started, Finished: jr.Finished,
		Ledger: jr.Ledger, Origin: jr.Origin,
	}
	if jr.Error != "" {
		r.Err = fmt.Errorf("%w: %s", ErrExpansionFailed, jr.Error)
	}
	if jr.Report != nil {
		r.Result = jr.Report
	}
	return r
}

// sortRestored orders recovered jobs by their numeric ID so /jobs keeps
// submission order across restarts.
func sortRestored(m map[string]jobs.RestoredJob) []jobs.RestoredJob {
	out := make([]jobs.RestoredJob, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	num := func(id string) int {
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
			return 1<<31 - 1
		}
		return n
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := num(out[i].ID), num(out[j].ID)
		if a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// onJobTerminal is the scheduler's completion hook: it durably records
// that an expansion finished (and what it cost) before anyone can observe
// the job as done and query the filled column.
func (db *DB) onJobTerminal(st jobs.Status) {
	if db.wal == nil {
		return
	}
	db.gate.RLock()
	defer db.gate.RUnlock()
	// Synchronous append: losing a completion record means re-paying the
	// crowd for a finished job after a crash.
	_, _ = db.wal.AppendSync(recJob, statusToJobRecord(st))
}

// logCharge books crowd spend into the WAL; called by db.charge under the
// gate.
func (db *DB) logCharge(res *crowd.RunResult) {
	if db.wal == nil {
		return
	}
	_, _ = db.wal.Append(recCharge, chargeRecord{
		Judgments: len(res.Records), Cost: res.TotalCost, Minutes: res.DurationMinutes,
	})
}

// restore overwrites the ledger with recovered totals.
func (l *Ledger) restore(t LedgerTotals) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals = t
}

// addRaw mirrors add for replayed charge records.
func (l *Ledger) addRaw(judgments int, cost, minutes float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals.Judgments += judgments
	l.totals.Cost += cost
	l.totals.Minutes += minutes
	l.totals.Jobs++
}
