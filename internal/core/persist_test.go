package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"crowddb/internal/crowd"
	"crowddb/internal/space"
	"crowddb/internal/storage"
	"crowddb/internal/vecmath"
)

// deadService fails every Collect — opened after recovery it proves that
// answering a query over a previously expanded column needs zero new
// crowd work.
type deadService struct{ calls int }

func (s *deadService) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	s.calls++
	return nil, errors.New("deadService: the crowd is gone")
}

// persistTestSpace builds a tiny deterministic space whose first half and
// second half of items are separable — enough for the SVM to train.
func persistTestSpace(items, dims int) *space.Space {
	m := vecmath.NewMatrix(items, dims)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < items; i++ {
		base := -1.0
		if i >= items/2 {
			base = 1.0
		}
		for d := 0; d < dims; d++ {
			m.Row(i)[d] = base + 0.1*rng.NormFloat64()
		}
	}
	return space.NewSpace(m)
}

// seedExpandableDB creates a durable DB with a movies table, a space
// binding, a registered expandable column, and rows.
func seedExpandableDB(t *testing.T, dir string, svc JudgmentService, rows int) *DB {
	t.Helper()
	db, err := Open(Options{Service: svc, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf(`INSERT INTO movies VALUES (%d, 'movie %d')`, i, i)
		if _, _, err := db.ExecSQL(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AttachSpace("movies", "movie_id", persistTestSpace(rows, 4)); err != nil {
		t.Fatal(err)
	}
	db.RegisterExpandable("movies", "is_comedy", storage.KindBool, ExpandOptions{SamplesPerClass: 10})
	return db
}

func simulatedService(seed int64, rows int) JudgmentService {
	rng := rand.New(rand.NewSource(seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 20}, rng)
	items := func(question string) ([]crowd.Item, error) {
		out := make([]crowd.Item, rows)
		for i := range out {
			out[i] = crowd.Item{ID: i, Truth: i >= rows/2, Popularity: 1}
		}
		return out, nil
	}
	return NewSimulatedCrowd(pop, items, rng)
}

func queryComedyNames(t *testing.T, db *DB) []string {
	t.Helper()
	res, _, err := db.ExecSQL(`SELECT name FROM movies WHERE is_comedy = true ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		out = append(out, s)
	}
	return out
}

// TestRestartRecoversExpandedColumnWithZeroCharges is the acceptance
// scenario: expand a column (paying the crowd), restart from WAL alone
// (no snapshot, no clean close), and answer the same SELECT with zero new
// crowd judgments — against a service that would fail if asked.
func TestRestartRecoversExpandedColumnWithZeroCharges(t *testing.T) {
	dir := t.TempDir()
	const rows = 60

	db1 := seedExpandableDB(t, dir, simulatedService(7, rows), rows)
	before := queryComedyNames(t, db1)
	if len(before) == 0 {
		t.Fatal("expansion produced no comedies")
	}
	led1 := db1.Ledger()
	if led1.Cost == 0 || led1.Judgments == 0 {
		t.Fatalf("expansion charged nothing: %+v", led1)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart. The crowd is dead: any elicitation attempt fails loudly.
	dead := &deadService{}
	db2, err := Open(Options{Service: dead, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	after := queryComedyNames(t, db2)
	if strings.Join(after, "|") != strings.Join(before, "|") {
		t.Fatalf("answers diverged after restart:\n before %v\n after  %v", before, after)
	}
	if dead.calls != 0 {
		t.Fatalf("restart re-elicited the crowd %d times", dead.calls)
	}
	led2 := db2.Ledger()
	if led2 != led1 {
		t.Fatalf("ledger changed across restart: %+v → %+v", led1, led2)
	}

	// Provenance must survive: the column recovered as expanded+perceptual.
	tbl, _ := db2.Catalog().Get("movies")
	schema := tbl.Schema()
	idx, ok := schema.Lookup("is_comedy")
	if !ok {
		t.Fatal("is_comedy missing after restart")
	}
	if col := schema.Column(idx); col.Origin != storage.ColumnExpanded || !col.Perceptual {
		t.Fatalf("provenance lost: %+v", col)
	}

	// Job history survived too: the expansion job is visible, done, and
	// carries its ledger.
	jobsList := db2.Jobs()
	if len(jobsList) != 1 {
		t.Fatalf("restored %d jobs, want 1", len(jobsList))
	}
	if st := jobsList[0]; st.Key != "movies.is_comedy" || st.Ledger.Cost != led1.Cost {
		t.Fatalf("restored job = %+v", st)
	}
}

// TestSnapshotThenMoreMutationsThenRestart exercises the combined path:
// snapshot mid-life, keep mutating, restart = snapshot + tail replay.
func TestSnapshotThenMoreMutationsThenRestart(t *testing.T) {
	dir := t.TempDir()
	const rows = 60
	db1 := seedExpandableDB(t, dir, simulatedService(11, rows), rows)
	before := queryComedyNames(t, db1)

	seq, err := db1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("snapshot covered nothing")
	}
	// Post-snapshot mutations must replay on top of the snapshot.
	if _, _, err := db1.ExecSQL(`INSERT INTO movies (movie_id, name) VALUES (997, 'postsnap')`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db1.ExecSQL(`UPDATE movies SET name = 'renamed 0' WHERE movie_id = 0`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db1.ExecSQL(`DELETE FROM movies WHERE movie_id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Service: &deadService{}, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	res, _, err := db2.ExecSQL(`SELECT COUNT(*) FROM movies`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != rows+1-1 {
		t.Fatalf("row count after restart = %d, want %d", n, rows)
	}
	res, _, err = db2.ExecSQL(`SELECT name FROM movies WHERE movie_id = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.Rows[0][0].AsText(); s != "renamed 0" {
		t.Fatalf("post-snapshot UPDATE lost: %q", s)
	}
	res, _, err = db2.ExecSQL(`SELECT COUNT(*) FROM movies WHERE movie_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatal("post-snapshot DELETE lost")
	}
	after := queryComedyNames(t, db2)
	// The expanded column survived (modulo the renamed/deleted rows).
	if len(after) == 0 || len(after) > len(before) {
		t.Fatalf("expanded column degraded: before %d comedies, after %d", len(before), len(after))
	}
}

// TestRestartRecoversSpaceBindingForNewExpansions: recovery must rebuild
// the space binding itself, so a *new* SPACE expansion works without any
// re-binding by the application.
func TestRestartRecoversSpaceBindingForNewExpansions(t *testing.T) {
	dir := t.TempDir()
	const rows = 60
	db1 := seedExpandableDB(t, dir, simulatedService(13, rows), rows)
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Service: simulatedService(13, rows), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// No AttachSpace, no RegisterExpandable: everything comes off disk.
	report, err := db2.Expand("movies", "is_drama", storage.KindBool, ExpandOptions{SamplesPerClass: 10})
	if err != nil {
		t.Fatal(err)
	}
	if report.Method != "SPACE" {
		t.Fatalf("recovered binding not used: method %s", report.Method)
	}
	if report.Filled == 0 {
		t.Fatal("new expansion filled nothing")
	}
}

// TestFreshDirIsEmpty: opening a durable DB on an empty directory is a
// clean slate, and a second open of untouched state is idempotent.
func TestFreshDirIsEmpty(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if names := db.Catalog().Names(); len(names) != 0 {
		t.Fatalf("fresh DB has tables: %v", names)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWithoutDataDirFails: Snapshot on an in-memory DB is a
// usage error, reported as ErrNoDataDir.
func TestSnapshotWithoutDataDirFails(t *testing.T) {
	db := NewDB(nil)
	defer db.Close()
	if _, err := db.Snapshot(); !errors.Is(err, ErrNoDataDir) {
		t.Fatalf("err = %v, want ErrNoDataDir", err)
	}
}
