// Package core implements the paper's primary contribution: a
// crowd-enabled database whose schema expands at query time.
//
// A query may reference an attribute that no column holds yet
// (`SELECT * FROM movies WHERE is_comedy = true`). The database then
// creates the column and fills it using one of three strategies:
//
//   - CROWD  — direct crowd-sourcing: every tuple is judged by several
//     workers and majority-voted (the paper's baseline, Experiments 1–3);
//   - SPACE  — perceptual-space extraction: only a small training sample
//     is crowd-sourced, an RBF-SVM is trained on the items' coordinates in
//     a perceptual space built from Social-Web ratings, and all remaining
//     values are predicted (the paper's contribution, Experiments 4–6);
//   - HYBRID — direct crowd-sourcing followed by space-based cleaning:
//     responses that contradict the space are re-elicited (§4.4).
//
// The crowd itself is reached through the JudgmentService interface; this
// repository ships a simulator-backed implementation (the real CrowdFlower
// service is not reachable from an offline reproduction — see DESIGN.md).
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"crowddb/internal/crowd"
)

// JudgmentService obtains human judgments for items. Implementations may
// talk to a real crowd-sourcing platform or to the bundled simulator.
type JudgmentService interface {
	// Collect runs a crowd job asking the given yes/no question about the
	// identified items and returns the full judgment log.
	Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error)
}

// BatchRequest is one elicitation's share of a shared HIT group: a yes/no
// question over a set of item IDs.
type BatchRequest struct {
	Question string
	ItemIDs  []int
}

// BatchJudgmentService is the optional batching extension of
// JudgmentService: one call runs ONE crowd job whose HITs interleave
// several questions, so N pending elicitations engage (and charge) the
// marketplace once instead of N times. Services that do not implement it
// fall back to per-question Collect calls.
type BatchJudgmentService interface {
	// CollectBatch merges the requests into a single shared HIT group
	// and returns the combined run plus its per-question split (indexed
	// like reqs).
	CollectBatch(reqs []BatchRequest, cfg crowd.JobConfig) (*crowd.BatchResult, error)
}

// ItemModelFunc supplies the simulator's behavioural item models for a
// question (latent truth, popularity, ambiguity), keyed by item ID.
// dataset.Universe.CrowdItems provides exactly this shape.
type ItemModelFunc func(question string) ([]crowd.Item, error)

// SimulatedCrowd is a JudgmentService backed by the marketplace simulator.
type SimulatedCrowd struct {
	mu         sync.Mutex
	population *crowd.Population
	items      ItemModelFunc
	rng        *rand.Rand

	// Gold optionally mixes known-answer screening questions into every
	// job (Experiment 3 setup).
	Gold             []crowd.Item
	GoldFailureLimit int
}

// NewSimulatedCrowd wires a worker population and an item-model source
// into a JudgmentService. The rng drives all marketplace randomness.
func NewSimulatedCrowd(pop *crowd.Population, items ItemModelFunc, rng *rand.Rand) *SimulatedCrowd {
	return &SimulatedCrowd{population: pop, items: items, rng: rng}
}

// Collect implements JudgmentService.
func (s *SimulatedCrowd) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	models, err := s.items(question)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]crowd.Item, len(models))
	for _, m := range models {
		byID[m.ID] = m
	}
	selected := make([]crowd.Item, 0, len(itemIDs))
	for _, id := range itemIDs {
		m, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("core: no crowd item model for id %d (question %q)", id, question)
		}
		selected = append(selected, m)
	}
	if len(s.Gold) > 0 && len(cfg.GoldItems) == 0 {
		cfg.GoldItems = s.Gold
		cfg.GoldFailureLimit = s.GoldFailureLimit
	}
	return crowd.RunJob(s.population, selected, cfg, s.rng)
}

// CollectBatch implements BatchJudgmentService: the requests' items are
// merged into one simulated crowd job (shared HIT group, shared worker
// pass, one wall-clock window) and the judgment log is split back per
// question.
func (s *SimulatedCrowd) CollectBatch(reqs []BatchRequest, cfg crowd.JobConfig) (*crowd.BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := make([]crowd.BatchRequest, 0, len(reqs))
	for _, req := range reqs {
		models, err := s.items(req.Question)
		if err != nil {
			return nil, err
		}
		byID := make(map[int]crowd.Item, len(models))
		for _, m := range models {
			byID[m.ID] = m
		}
		selected := make([]crowd.Item, 0, len(req.ItemIDs))
		for _, id := range req.ItemIDs {
			m, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("core: no crowd item model for id %d (question %q)", id, req.Question)
			}
			selected = append(selected, m)
		}
		batch = append(batch, crowd.BatchRequest{Question: req.Question, Items: selected})
	}
	if len(s.Gold) > 0 && len(cfg.GoldItems) == 0 {
		cfg.GoldItems = s.Gold
		cfg.GoldFailureLimit = s.GoldFailureLimit
	}
	return crowd.RunBatchJob(s.population, batch, cfg, s.rng)
}

// LedgerTotals is a point-in-time snapshot of crowd-sourcing spend.
type LedgerTotals struct {
	// Judgments is the total number of human judgments collected.
	Judgments int
	// Cost is the total payment in dollars.
	Cost float64
	// Minutes is the total simulated crowd wall-clock.
	Minutes float64
	// Jobs is the number of crowd jobs issued.
	Jobs int
}

// Ledger accumulates the crowd-sourcing cost of a database across
// expansions, the accounting the paper's Figures 3–4 are drawn from.
type Ledger struct {
	mu     sync.Mutex
	totals LedgerTotals
}

func (l *Ledger) add(res *crowd.RunResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals.Judgments += len(res.Records)
	l.totals.Cost += res.TotalCost
	l.totals.Minutes += res.DurationMinutes
	l.totals.Jobs++
	// The money metrics: every global-ledger booking (direct or batched
	// combined run) is one charge. Member shares of a combined run are
	// budget debits, not new charges, and do not pass through here.
	mCrowdCharges.Inc()
	mCrowdJudgments.Add(int64(len(res.Records)))
	mCrowdDollars.Add(res.TotalCost)
}

// Snapshot returns a copy of the current totals.
func (l *Ledger) Snapshot() LedgerTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals
}
