package core

import (
	"fmt"
	"math"
	"sort"

	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
	"crowddb/internal/svm"
)

// charge books one crowd run into the global ledger (and its WAL record,
// under the snapshot gate so totals and log stay consistent), debits the
// attributed API key's budget, and, when the expansion runs under a
// scheduled job, books into that job's ledger too.
func (db *DB) charge(res *crowd.RunResult, opts *ExpandOptions) {
	db.gate.RLock()
	db.ledger.add(res)
	db.logCharge(res)
	db.spendBudget(opts.APIKey, res.TotalCost)
	db.gate.RUnlock()
	if opts.onCharge != nil {
		opts.onCharge(res)
	}
}

// chargeCombined books ONE combined (batched) crowd run into the global
// ledger: N merged elicitations cost the requester a single charge.
func (db *DB) chargeCombined(res *crowd.RunResult) {
	db.gate.RLock()
	db.ledger.add(res)
	db.logCharge(res)
	db.gate.RUnlock()
}

// chargeMemberShare books one member's split of a combined run: the
// member's API-key budget and its per-job ledger see exactly its share,
// while the global ledger saw the batch once via chargeCombined.
func (db *DB) chargeMemberShare(share *crowd.RunResult, opts *ExpandOptions) {
	db.gate.RLock()
	db.spendBudget(opts.APIKey, share.TotalCost)
	db.gate.RUnlock()
	if opts.onCharge != nil {
		opts.onCharge(share)
	}
}

// rowIDs extracts (rowIndex, itemID) pairs for a table using its space
// binding's id column, or the row index itself when no binding exists.
func (db *DB) rowItemIDs(tbl *storage.Table) ([]int, []int, error) {
	schema := tbl.Schema()
	binding := db.binding(tbl.Name())
	idCol := -1
	if binding != nil {
		c, ok := schema.Lookup(binding.idColumn)
		if !ok {
			return nil, nil, fmt.Errorf("core: id column %q vanished from %q", binding.idColumn, tbl.Name())
		}
		idCol = c
	}
	var rows, ids []int
	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		id := i
		if idCol >= 0 {
			v, ok := row[idCol].AsInt()
			if !ok {
				scanErr = fmt.Errorf("core: row %d has non-integer id", i)
				return false
			}
			id = int(v)
		}
		rows = append(rows, i)
		ids = append(ids, id)
		return true
	})
	return rows, ids, scanErr
}

// applyBudget shrinks the set of items to judge so that the projected cost
// stays within budget (0 = unlimited). Judging fewer items mirrors a
// requester stopping when the money runs out.
func applyBudget(ids []int, opts *ExpandOptions) []int {
	if opts.Budget <= 0 {
		return ids
	}
	perJudgment := opts.Job.PayPerHIT / float64(opts.Job.ItemsPerHIT)
	maxJudgments := int(opts.Budget / perJudgment)
	maxItems := maxJudgments / opts.Assignments
	if maxItems < len(ids) {
		return ids[:maxItems]
	}
	return ids
}

// aggregateVotes applies the configured vote aggregation.
func aggregateVotes(records []crowd.Record, opts ExpandOptions) map[int]bool {
	if opts.WeightedVote {
		return crowd.WeightedMajorityVote(records, 0).Label
	}
	return crowd.MajorityVote(records).Label
}

// elicitation is the planned sampling phase of one expansion, split off
// from the collect/finish phases so that the batching layer can merge the
// sampling of several pending expansions into one shared HIT group: plan
// each member, issue ONE crowd job for all of them, then finish each
// member from its share of the judgment log.
type elicitation struct {
	tbl    *storage.Table
	column string
	method sqlparse.ExpandMethod
	opts   ExpandOptions
	// rows/ids cover the whole table; judgeIDs is the subset of ids sent
	// to the crowd (everything for CROWD, the training sample for SPACE).
	rows, ids []int
	judgeIDs  []int
}

// projected is the elicitation's up-front cost estimate, the number the
// per-key budget cap is checked against before any HIT is issued.
func (e *elicitation) projected() float64 {
	return projectedCost(len(e.judgeIDs), &e.opts)
}

// planCrowd plans the paper's baseline: judge every tuple (Experiments
// 1–3), capped by the per-expansion dollar budget.
func (db *DB) planCrowd(tbl *storage.Table, column string, opts ExpandOptions) (*elicitation, error) {
	if db.service == nil {
		return nil, fmt.Errorf("core: direct crowd expansion requires a JudgmentService")
	}
	rows, ids, err := db.rowItemIDs(tbl)
	if err != nil {
		return nil, err
	}
	judgeIDs := applyBudget(ids, &opts)
	if len(judgeIDs) == 0 {
		return nil, fmt.Errorf("core: budget $%.2f cannot cover a single tuple", opts.Budget)
	}
	return &elicitation{
		tbl: tbl, column: column, method: sqlparse.ExpandCrowd, opts: opts,
		rows: rows, ids: ids, judgeIDs: judgeIDs,
	}, nil
}

// planSpace plans the paper's contribution: crowd-source only a small
// training sample (Experiments 4–6, §4.3).
func (db *DB) planSpace(tbl *storage.Table, column string, opts ExpandOptions) (*elicitation, error) {
	binding := db.binding(tbl.Name())
	if binding == nil {
		return nil, fmt.Errorf("core: SPACE expansion of %q requires AttachSpace", tbl.Name())
	}
	if db.service == nil {
		return nil, fmt.Errorf("core: SPACE expansion requires a JudgmentService for the training sample")
	}
	rows, ids, err := db.rowItemIDs(tbl)
	if err != nil {
		return nil, err
	}
	sp := binding.space

	// Sample tuples to crowd-source: the most popular items give honest
	// workers the best chance of knowing them, but a uniformly random
	// sample is the paper's protocol — we take a deterministic spread.
	inSpace := make([]int, 0, len(ids))
	for _, id := range ids {
		if id >= 0 && id < sp.NumItems() {
			inSpace = append(inSpace, id)
		}
	}
	if len(inSpace) == 0 {
		return nil, fmt.Errorf("core: no row of %q maps into the attached space", tbl.Name())
	}
	want := 2 * opts.SamplesPerClass * 2 // oversample: don't-knows and ties shrink it
	if want > len(inSpace) {
		want = len(inSpace)
	}
	sampleIDs := spreadSample(inSpace, want)
	sampleIDs = applyBudget(sampleIDs, &opts)
	if len(sampleIDs) == 0 {
		return nil, fmt.Errorf("core: budget $%.2f cannot cover a training sample", opts.Budget)
	}
	return &elicitation{
		tbl: tbl, column: column, method: sqlparse.ExpandSpace, opts: opts,
		rows: rows, ids: ids, judgeIDs: sampleIDs,
	}, nil
}

// planElicitation dispatches on the (defaulted) method. HYBRID has no
// plannable single sampling phase — it runs two rounds — and returns an
// error; callers route it through expandHybrid instead.
func (db *DB) planElicitation(tbl *storage.Table, column string, opts ExpandOptions) (*elicitation, error) {
	switch opts.Method {
	case sqlparse.ExpandCrowd:
		return db.planCrowd(tbl, column, opts)
	case sqlparse.ExpandSpace:
		return db.planSpace(tbl, column, opts)
	default:
		return nil, fmt.Errorf("core: method %q has no single-phase elicitation plan", opts.Method)
	}
}

// finishElicitation turns a judgment log (the elicitation's share of a
// crowd run) into column values and a report, per the planned method.
func (db *DB) finishElicitation(e *elicitation, res *crowd.RunResult) (*ExpansionReport, error) {
	switch e.method {
	case sqlparse.ExpandCrowd:
		return db.finishCrowd(e, res)
	case sqlparse.ExpandSpace:
		return db.finishSpace(e, res)
	default:
		return nil, fmt.Errorf("core: cannot finish method %q", e.method)
	}
}

// finishCrowd majority-votes the log and writes the result.
func (db *DB) finishCrowd(e *elicitation, res *crowd.RunResult) (*ExpansionReport, error) {
	e.opts.phase(jobs.StateFilling)
	labels := aggregateVotes(res.Records, e.opts)
	report := &ExpansionReport{
		Table: e.tbl.Name(), Column: e.column, Method: sqlparse.ExpandCrowd,
		Judgments: len(res.Records), Cost: res.TotalCost, Minutes: res.DurationMinutes,
	}
	vals := make([]storage.Value, len(e.rows))
	for i := range e.rows {
		if label, ok := labels[e.ids[i]]; ok {
			vals[i] = storage.Bool(label)
			report.Filled++
		} else {
			vals[i] = storage.Null()
			report.Unfilled++
		}
	}
	if err := db.mutate(func() error { return e.tbl.FillColumn(e.column, vals) }); err != nil {
		return nil, err
	}
	return report, nil
}

// finishSpace trains an RBF-SVM on the voted sample over the perceptual
// space and predicts every tuple.
func (db *DB) finishSpace(e *elicitation, res *crowd.RunResult) (*ExpansionReport, error) {
	binding := db.binding(e.tbl.Name())
	if binding == nil {
		return nil, fmt.Errorf("core: space binding for %q vanished mid-expansion", e.tbl.Name())
	}
	sp := binding.space
	e.opts.phase(jobs.StateTraining)
	voteLabels := aggregateVotes(res.Records, e.opts)

	// Train on every sampled item that reached a majority, with whatever
	// class balance the crowd produced — the Experiment 4–6 protocol.
	// (The controlled Table 3 study uses balanced gold samples instead;
	// that protocol lives in internal/experiments.)
	var X [][]float64
	var y []bool
	perClass := map[bool]int{}
	for _, id := range e.judgeIDs {
		label, ok := voteLabels[id]
		if !ok {
			continue
		}
		perClass[label]++
		X = append(X, sp.Vector(id))
		y = append(y, label)
	}
	report := &ExpansionReport{
		Table: e.tbl.Name(), Column: e.column, Method: sqlparse.ExpandSpace,
		Judgments: len(res.Records), Cost: res.TotalCost, Minutes: res.DurationMinutes,
		TrainingSize: len(X),
	}
	if perClass[true] == 0 || perClass[false] == 0 {
		return nil, fmt.Errorf("core: crowd training sample for %s is single-class (pos=%d, neg=%d)",
			e.column, perClass[true], perClass[false])
	}

	model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2})
	if err != nil {
		return nil, err
	}

	e.opts.phase(jobs.StateFilling)
	vals := make([]storage.Value, len(e.rows))
	for i := range e.rows {
		id := e.ids[i]
		if id < 0 || id >= sp.NumItems() {
			vals[i] = storage.Null()
			report.Unfilled++
			continue
		}
		vals[i] = storage.Bool(model.Predict(sp.Vector(id)))
		report.Filled++
	}
	if err := db.mutate(func() error { return e.tbl.FillColumn(e.column, vals) }); err != nil {
		return nil, err
	}
	return report, nil
}

// runElicitation is the solo (unbatched) collect step: budget
// reservation, one crowd job for this elicitation alone, one charge.
func (db *DB) runElicitation(e *elicitation) (*ExpansionReport, error) {
	release, err := db.reserveBudget(e.opts.APIKey, e.projected())
	if err != nil {
		return nil, err
	}
	// Released after charge books the actual spend (or on error), so a
	// concurrent same-key elicitation never sees the cap headroom free
	// while this one's HITs are in flight.
	defer release()
	e.opts.phase(jobs.StateSampling)
	res, err := db.service.Collect(e.column, e.judgeIDs, e.opts.Job)
	if err != nil {
		return nil, err
	}
	db.charge(res, &e.opts)
	return db.finishElicitation(e, res)
}

// expandDirectCrowd is the paper's baseline: judge every tuple, majority
// vote, write the result (Experiments 1–3).
func (db *DB) expandDirectCrowd(tbl *storage.Table, column string, opts ExpandOptions) (*ExpansionReport, error) {
	e, err := db.planCrowd(tbl, column, opts)
	if err != nil {
		return nil, err
	}
	return db.runElicitation(e)
}

// expandViaSpace is the paper's contribution: crowd-source a small
// training sample, train an RBF-SVM on the perceptual space, predict
// everything (Experiments 4–6, §4.3).
func (db *DB) expandViaSpace(tbl *storage.Table, column string, opts ExpandOptions) (*ExpansionReport, error) {
	e, err := db.planSpace(tbl, column, opts)
	if err != nil {
		return nil, err
	}
	return db.runElicitation(e)
}

// expandHybrid crowd-sources everything, then uses the space to flag and
// re-elicit questionable responses (§4.4): direct crowd quality at a
// fraction of the re-verification cost. Two crowd rounds, so it never
// joins a shared HIT batch.
func (db *DB) expandHybrid(tbl *storage.Table, column string, opts ExpandOptions) (*ExpansionReport, error) {
	binding := db.binding(tbl.Name())
	if binding == nil {
		return nil, fmt.Errorf("core: HYBRID expansion of %q requires AttachSpace", tbl.Name())
	}
	crowdReport, err := db.expandDirectCrowd(tbl, column, opts)
	if err != nil {
		return nil, err
	}
	report := *crowdReport
	report.Method = sqlparse.ExpandHybrid

	questionable, err := db.IdentifyQuestionable(tbl.Name(), column)
	if err != nil {
		return nil, err
	}
	if len(questionable) == 0 {
		return &report, nil
	}

	// Re-elicit flagged tuples with tripled redundancy.
	rows, ids, err := db.rowItemIDs(tbl)
	if err != nil {
		return nil, err
	}
	rowToID := map[int]int{}
	for i, r := range rows {
		rowToID[r] = ids[i]
	}
	var reIDs []int
	for _, r := range questionable {
		if id, ok := rowToID[r]; ok {
			reIDs = append(reIDs, id)
		}
	}
	// No phase report here: expandDirectCrowd already advanced the job to
	// filling, and the lifecycle only moves forward — the HYBRID
	// re-elicitation is part of the filling phase from the outside.
	reOpts := opts
	reOpts.Assignments = opts.Assignments * 3
	reOpts.Job.AssignmentsPerItem = reOpts.Assignments
	release, err := db.reserveBudget(opts.APIKey, projectedCost(len(reIDs), &reOpts))
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := db.service.Collect(column, reIDs, reOpts.Job)
	if err != nil {
		return nil, err
	}
	db.charge(res, &opts)
	requeryLabels := aggregateVotes(res.Records, opts)

	schema := tbl.Schema()
	colIdx, _ := schema.Lookup(column)
	// The crowd wait above took minutes; the physical row IDs captured
	// before it may have been remapped by a compaction since. Re-resolve
	// item IDs to current rows inside a write fence, which excludes the
	// compactor across the whole resolve→Set window.
	err = tbl.WithWriteFence(func() error {
		curRows, curIDs, err := db.rowItemIDs(tbl)
		if err != nil {
			return err
		}
		idToRow := make(map[int]int, len(curIDs))
		for i, id := range curIDs {
			idToRow[id] = curRows[i]
		}
		return db.mutate(func() error {
			for _, id := range reIDs {
				label, ok := requeryLabels[id]
				if !ok {
					continue
				}
				r, live := idToRow[id]
				if !live {
					continue // row deleted while the crowd deliberated
				}
				if err := tbl.Set(r, colIdx, storage.Bool(label)); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	report.Judgments += len(res.Records)
	report.Cost += res.TotalCost
	report.Minutes += res.DurationMinutes
	report.Requeried = len(reIDs)
	return &report, nil
}

// IdentifyQuestionable trains an SVM on the column's current values over
// the attached perceptual space and returns the row indices whose stored
// label contradicts the model's prediction — the §4.4 cleaning primitive.
func (db *DB) IdentifyQuestionable(table, column string) ([]int, error) {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return nil, fmt.Errorf("core: no such table %q", table)
	}
	binding := db.binding(table)
	if binding == nil {
		return nil, fmt.Errorf("core: IdentifyQuestionable requires AttachSpace on %q", table)
	}
	schema := tbl.Schema()
	colIdx, ok := schema.Lookup(column)
	if !ok {
		return nil, fmt.Errorf("core: table %q has no column %q", table, column)
	}
	if schema.Column(colIdx).Kind != storage.KindBool {
		return nil, fmt.Errorf("core: IdentifyQuestionable requires a BOOLEAN column")
	}
	rows, ids, err := db.rowItemIDs(tbl)
	if err != nil {
		return nil, err
	}
	sp := binding.space

	var X [][]float64
	var y []bool
	type labeled struct {
		row   int
		id    int
		label bool
	}
	var all []labeled
	for i, r := range rows {
		v, err := tbl.Value(r, colIdx)
		if err != nil {
			return nil, err
		}
		b, ok := v.AsBool()
		if !ok {
			continue // NULL or non-bool: nothing to verify
		}
		id := ids[i]
		if id < 0 || id >= sp.NumItems() {
			continue
		}
		X = append(X, sp.Vector(id))
		y = append(y, b)
		all = append(all, labeled{row: r, id: id, label: b})
	}
	if len(X) < 10 {
		return nil, fmt.Errorf("core: too few labeled rows (%d) to identify questionable responses", len(X))
	}
	model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2})
	if err != nil {
		return nil, err
	}
	var out []int
	for _, l := range all {
		if model.Predict(sp.Vector(l.id)) != l.label {
			out = append(out, l.row)
		}
	}
	sort.Ints(out)
	return out, nil
}

// spreadSample picks k elements evenly spread over ids (deterministic).
func spreadSample(ids []int, k int) []int {
	if k >= len(ids) {
		return append([]int(nil), ids...)
	}
	out := make([]int, 0, k)
	step := float64(len(ids)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, ids[int(math.Floor(float64(i)*step))])
	}
	return out
}
