package core

import (
	"fmt"

	"crowddb/internal/engine"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// RowStream is a pull-based SELECT result over a crowd-enabled database.
//
// Unlike Exec, which materializes the whole answer under one read-side
// acquisition of the snapshot gate, a RowStream holds no locks at all
// between Next calls: the storage cursors underneath pin an immutable
// MVCC snapshot at open and read it lock-free, so a client slowly
// draining a large result never blocks snapshots, writers, or expansions
// for the duration of the transfer. The stream sees the table as of
// open; concurrent mutations land in later versions it never reads.
//
// Rows may alias executor buffers and are valid only until the next call;
// callers that retain rows must Clone them. Close must be called when
// done (it is idempotent).
type RowStream struct {
	db     *DB
	res    *engine.StreamResult
	report *ExpansionReport
	rows   int
}

// Columns returns the output column names.
func (s *RowStream) Columns() []string { return s.res.Columns }

// Expansion reports the schema expansion this query triggered, if any.
func (s *RowStream) Expansion() *ExpansionReport { return s.report }

// Rows returns the number of rows streamed so far.
func (s *RowStream) Rows() int { return s.rows }

// Next returns the next row, or ok=false at end of stream. No gate
// acquisition: the cursors read a pinned snapshot, and the gate only
// orders mutations against WAL capture — a pure reader needs neither.
func (s *RowStream) Next() (storage.Row, bool, error) {
	row, ok, err := s.res.Next()
	if ok {
		s.rows++
	}
	return row, ok, err
}

// Close releases the stream's resources.
func (s *RowStream) Close() error { return s.res.Close() }

// ExecSQLStream parses sql and opens a streaming SELECT (see ExecStream).
func (db *DB) ExecSQLStream(sql string) (*RowStream, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStream(stmt)
}

// ExecStream opens a SELECT for row-at-a-time consumption. Like Exec, a
// query referencing a registered expandable column triggers (or joins)
// the expansion job and blocks until it completes — the stream only
// starts producing rows once the column is filled, so a client never
// observes a half-expanded answer. Statements other than SELECT are not
// streamable.
func (db *DB) ExecStream(stmt sqlparse.Statement) (*RowStream, error) {
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: streaming supports SELECT statements only, got %T", stmt)
	}

	open := func() (*engine.StreamResult, error) {
		// Planning validates columns and opens the iterators (blocking
		// operators do their work here) under the gate's read side; row
		// delivery re-acquires it per Next.
		db.gate.RLock()
		defer db.gate.RUnlock()
		return db.engine.Stream(sel)
	}

	res, err := open()
	if err == nil {
		return &RowStream{db: db, res: res}, nil
	}
	// Plan-time detection of a missing expandable column: the job runs
	// (or is joined) before a single row is produced.
	job, expErr := db.submitMissingColumn(err)
	if expErr != nil {
		return nil, expErr
	}
	if job == nil {
		return nil, err
	}
	report, err := waitReport(job)
	if err != nil {
		return nil, err
	}
	res, err = open()
	if err != nil {
		return nil, err
	}
	return &RowStream{db: db, res: res, report: report}, nil
}
