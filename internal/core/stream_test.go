package core

import (
	"errors"
	"strings"
	"testing"

	"crowddb/internal/engine"
	"crowddb/internal/storage"
)

func TestExecStreamBasic(t *testing.T) {
	db := NewDB(nil)
	defer db.Close()
	mustSQL := func(sql string) {
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSQL(`CREATE TABLE nums (n INTEGER)`)
	mustSQL(`INSERT INTO nums VALUES (1), (2), (3), (4), (5)`)

	s, err := db.ExecSQLStream(`SELECT n FROM nums WHERE n >= 2 ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Columns(); len(got) != 1 || got[0] != "n" {
		t.Fatalf("columns = %v", got)
	}
	var vals []int64
	for {
		row, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		v, _ := row[0].AsInt()
		vals = append(vals, v)
	}
	if len(vals) != 4 || vals[0] != 5 || vals[3] != 2 {
		t.Fatalf("vals = %v", vals)
	}
	if s.Rows() != 4 {
		t.Fatalf("Rows() = %d", s.Rows())
	}
}

func TestExecStreamRejectsNonSelect(t *testing.T) {
	db := NewDB(nil)
	defer db.Close()
	if _, err := db.ExecSQLStream(`DELETE FROM nowhere`); err == nil {
		t.Fatal("streaming DML must fail")
	}
}

// A streaming query on a registered-but-unexpanded column must not
// produce any rows until the expansion job has completed — the stream
// opens only after the job fills the column.
func TestExecStreamTriggersExpansionBeforeFirstRow(t *testing.T) {
	db, u := newMovieDB(t, 0, 11)
	defer db.Close()
	genre := u.CategoryNames()[0]
	db.RegisterExpandable("movies", genre, storage.KindBool,
		ExpandOptions{SamplesPerClass: 8, Assignments: 3})

	s, err := db.ExecSQLStream(`SELECT name FROM movies WHERE ` + genre + ` = true`)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Expansion() == nil {
		t.Fatal("stream must report the expansion it triggered")
	}
	// By the time the stream produces rows, the column must exist and be
	// filled — the job completed before the first row.
	tbl, _ := db.Catalog().Get("movies")
	if _, ok := tbl.Schema().Lookup(genre); !ok {
		t.Fatalf("column %s not created before first row", genre)
	}
	n := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("expanded query streamed no rows")
	}
	if s.Expansion().Filled == 0 {
		t.Fatal("expansion filled nothing")
	}
}

// A streaming query on an unregistered column stays an error (a typo must
// not become a crowd job) and streams nothing.
func TestExecStreamUnregisteredColumnFails(t *testing.T) {
	db := NewDB(nil)
	defer db.Close()
	if _, _, err := db.ExecSQL(`CREATE TABLE t (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	_, err := db.ExecSQLStream(`SELECT nosuch FROM t`)
	var missing *engine.MissingColumnError
	if !errors.As(err, &missing) {
		t.Fatalf("err = %v, want MissingColumnError", err)
	}
}

// An unqualified reference to a column registered on a *joined* table
// (not the primary FROM table) must still trigger implicit expansion:
// the planner reports every table in scope as a candidate and core
// consults each registry.
func TestImplicitExpansionOnJoinedTable(t *testing.T) {
	db, u := newMovieDB(t, 0, 17)
	defer db.Close()
	if _, _, err := db.ExecSQL(`CREATE TABLE awards (movie INTEGER, prize TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecSQL(`INSERT INTO awards VALUES (0, 'Gold'), (1, 'Silver')`); err != nil {
		t.Fatal(err)
	}
	genre := u.CategoryNames()[2]
	db.RegisterExpandable("movies", genre, storage.KindBool,
		ExpandOptions{SamplesPerClass: 8, Assignments: 3})

	// movies is the *joined* table; the genre reference is unqualified.
	res, report, err := db.ExecSQL(`SELECT m.name FROM awards a JOIN movies m ON a.movie = m.movie_id
		WHERE ` + genre + ` = true`)
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || report.Table != "movies" || report.Column != genre {
		t.Fatalf("report = %+v", report)
	}
	_ = res
}

// EXPLAIN must plan without executing — and must never trigger (or pay
// for) an expansion, even on a registered expandable column.
func TestExplainDoesNotTriggerExpansion(t *testing.T) {
	db, u := newMovieDB(t, 0, 13)
	defer db.Close()
	genre := u.CategoryNames()[1]
	db.RegisterExpandable("movies", genre, storage.KindBool, ExpandOptions{})

	_, _, err := db.ExecSQL(`EXPLAIN SELECT name FROM movies WHERE ` + genre + ` = true`)
	if err == nil {
		t.Fatal("EXPLAIN on a missing column must surface the miss, not expand it")
	}
	if len(db.Jobs()) != 0 {
		t.Fatalf("EXPLAIN submitted %d expansion jobs", len(db.Jobs()))
	}
	if led := db.Ledger(); led.Cost != 0 {
		t.Fatalf("EXPLAIN charged $%.2f", led.Cost)
	}

	// On existing columns EXPLAIN renders the plan.
	res, _, err := db.ExecSQL(`EXPLAIN SELECT name FROM movies WHERE year > 1980 ORDER BY year LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	text := resultText(res.Rows)
	if !strings.Contains(text, "TopN") || !strings.Contains(text, "Scan(movies, filter=") {
		t.Fatalf("plan missing TopN/pushdown:\n%s", text)
	}
}

func resultText(rows []storage.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		s, _ := r[0].AsText()
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	return sb.String()
}
