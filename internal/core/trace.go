package core

import (
	"log/slog"
	"time"

	"crowddb/internal/sqlparse"
)

// QueryTrace is one query's phase breakdown, produced by ExecSQLTraced
// (the POST /v1/query?trace=1 payload and the slow-query log record).
// Durations are microseconds; Plan carries the operator tree annotated
// with per-operator actuals when the query executed (un-annotated when
// the answer came from the result cache — nothing ran).
type QueryTrace struct {
	SQL     string `json:"sql,omitempty"`
	ParseUS int64  `json:"parse_us"`
	PlanUS  int64  `json:"plan_us"`
	// CacheUS is the result-cache probe time (0 when the cache is
	// disabled or bypassed).
	CacheUS  int64    `json:"cache_lookup_us"`
	ExecUS   int64    `json:"execute_us"`
	TotalUS  int64    `json:"total_us"`
	CacheHit bool     `json:"cache_hit"`
	Rows     int      `json:"rows"`
	Plan     []string `json:"plan,omitempty"`
}

// ExecSQLTraced is ExecSQL with per-phase and per-operator tracing on:
// the returned QueryTrace carries the phase split and, for SELECTs that
// actually executed, the plan tree annotated with actual rows and wall
// time per operator. nocache additionally bypasses the result cache
// (?trace=1&nocache=1 composes). Tracing slows the executor's row path,
// so this is the ?trace=1 / slow-query path, not the default.
func (db *DB) ExecSQLTraced(sql string, nocache bool) (*Result, *ExpansionReport, *QueryTrace, error) {
	return db.execSQLTimed(sql, nocache, true)
}

// autoTrace reports whether plain ExecSQL calls should run traced anyway:
// a slow-query threshold needs the operator breakdown in hand *before*
// it knows the query was slow, so configuring -slow-query (or -trace)
// prices every SELECT at traced cost. The ≤2% overhead contract of
// BenchmarkInstrumentedSelect applies only with both off.
func (db *DB) autoTrace() bool { return db.traceAll || db.slowQuery > 0 }

// execSQLTimed is the shared ExecSQL spine: parse, execute, record the
// end-to-end and parse-phase metrics, and — when traced — assemble the
// QueryTrace and feed the slow-query log.
func (db *DB) execSQLTimed(sql string, nocache, traced bool) (*Result, *ExpansionReport, *QueryTrace, error) {
	var qt *QueryTrace
	if traced {
		qt = &QueryTrace{SQL: sql}
	}
	start := time.Now()
	stmt, err := sqlparse.Parse(sql)
	parse := time.Since(start)
	mQueryPhase.With("parse").Observe(parse.Seconds())
	if qt != nil {
		qt.ParseUS = parse.Microseconds()
	}
	if err != nil {
		return nil, nil, nil, err
	}
	res, rep, execErr := db.execQT(stmt, nocache, qt)
	total := time.Since(start)
	mQuerySeconds.Observe(total.Seconds())
	if qt != nil {
		qt.TotalUS = total.Microseconds()
		if res != nil {
			qt.Rows = len(res.Rows)
		}
		db.logSlow(qt, total, execErr)
	}
	return res, rep, qt, execErr
}

// logSlow emits the slow-query log record when the threshold is set and
// exceeded. Structured (slog) so it is machine-collectable; the format
// contract is DESIGN.md §17.
func (db *DB) logSlow(qt *QueryTrace, total time.Duration, execErr error) {
	if db.slowQuery <= 0 || total < db.slowQuery {
		return
	}
	mSlowQueries.Inc()
	attrs := []any{
		"sql", truncateSQL(qt.SQL),
		"total_us", qt.TotalUS,
		"parse_us", qt.ParseUS,
		"plan_us", qt.PlanUS,
		"cache_lookup_us", qt.CacheUS,
		"execute_us", qt.ExecUS,
		"cache_hit", qt.CacheHit,
		"rows", qt.Rows,
		"threshold", db.slowQuery.String(),
	}
	if len(qt.Plan) > 0 {
		attrs = append(attrs, "plan", qt.Plan)
	}
	if execErr != nil {
		attrs = append(attrs, "error", execErr.Error())
	}
	slog.Warn("slow query", attrs...)
}

// truncateSQL bounds the SQL text in a log record; a multi-megabyte
// INSERT must not become a multi-megabyte log line.
func truncateSQL(sql string) string {
	const max = 512
	if len(sql) <= max {
		return sql
	}
	return sql[:max] + "…"
}
