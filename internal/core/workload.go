package core

import (
	"strings"
	"time"

	"crowddb/internal/engine"
	"crowddb/internal/sqlparse"
	"crowddb/internal/workload"
	rescache "crowddb/internal/workload/cache"
)

// Workload-aware serving layer: every SELECT feeds the workload tracker
// (the co-access model behind predictive pre-expansion) and, unless
// bypassed, the semantic result cache. The pieces live in
// internal/workload; this file is the glue that decides WHEN they fire —
// observation under the snapshot gate, speculation inside the open
// coalescer window, cache seq-capture before execution. See DESIGN.md §13.

// Origin values for expansion jobs. The tag rides the job (jobs.Status),
// the per-job WAL completion record, and /ledger, so operators can audit
// how much of the crowd spend was speculative.
const (
	// OriginDemand marks an expansion a user query was blocked on — a
	// missing-column miss, an explicit EXPAND, or a programmatic
	// SubmitExpand without an explicit origin.
	OriginDemand = "demand"
	// OriginSpeculative marks a pre-expansion submitted by the workload
	// predictor. Best effort by contract: capped by SpeculativeBudget,
	// admission-bounded, never joined-on by a blocked query at submission.
	OriginSpeculative = "speculative"
	// OriginAdmin marks an expansion submitted via POST /admin/expand.
	OriginAdmin = "admin"
)

// SpeculativeBudgetKey is the API key all speculative expansions spend
// under. Routing the spend through one well-known key reuses the entire
// per-key budget machinery from PR 4 — the two-phase reservation inside
// the batch runner is the authoritative cap check, so a speculative
// member that would blow Options.SpeculativeBudget is rejected at
// reservation time and costs nothing.
const SpeculativeBudgetKey = "__speculative__"

// maxSpeculations bounds how many predicted columns one demand expansion
// chases. Two is deliberate: the pairwise model's precision decays fast
// past the top candidates, and every speculative member occupies batch
// admission headroom demand work may want.
const maxSpeculations = 2

// observeLocked records one workload event and journals it as a typed
// workload_obs record. Caller holds db.gate.RLock (the execEngineOpt
// path), so the record lands atomically with respect to Snapshot.
func (db *DB) observeLocked(obs workload.Observation) {
	if db.tracker == nil {
		return
	}
	db.tracker.Observe(obs)
	if db.wal != nil {
		_, _ = db.wal.Append(recWorkload, obs)
	}
}

// observe is observeLocked for callers not holding the snapshot gate
// (the expansion submission paths).
func (db *DB) observe(obs workload.Observation) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	db.observeLocked(obs)
}

// RecordObservation feeds one workload event into the tracker (and the
// WAL), exactly as a live query would. It exists to warm the co-access
// model from an external query log before the predictor has seen live
// traffic; table and column names are normalized internally.
func (db *DB) RecordObservation(obs workload.Observation) {
	db.observe(obs)
}

// WorkloadStats is the GET /workload payload: durable counters, the
// recent in-memory trace, cache effectiveness, and the speculative
// budget account.
type WorkloadStats struct {
	Counters workload.CounterState  `json:"counters"`
	Recent   []workload.Observation `json:"recent,omitempty"`
	Cache    *rescache.Stats        `json:"cache,omitempty"`
	// SpeculativeBudget is the __speculative__ key's account (nil when no
	// speculative cap is configured and nothing was ever spent).
	SpeculativeBudget *BudgetStatus `json:"speculative_budget,omitempty"`
}

// Workload returns the current workload-subsystem state.
func (db *DB) Workload() WorkloadStats {
	st := WorkloadStats{}
	if db.tracker != nil {
		st.Counters = db.tracker.Export()
		st.Recent = db.tracker.Recent()
	}
	if db.rcache != nil {
		s := db.rcache.Stats()
		st.Cache = &s
	}
	if b, ok := db.Budget(SpeculativeBudgetKey); ok {
		st.SpeculativeBudget = &b
	}
	return st
}

// CacheStats returns the result cache's counters (zero Stats when the
// cache is disabled).
func (db *DB) CacheStats() rescache.Stats {
	if db.rcache == nil {
		return rescache.Stats{}
	}
	return db.rcache.Stats()
}

// execSelectStmt is the cached SELECT path. Caller holds db.gate.RLock.
//
// Order matters: the table-seq snapshot is taken BEFORE execution, so a
// mutation landing mid-query bumps the live seq past the snapshot and
// the entry — stored against the snapshot — can never be served (the
// cache validates seqs on every Get). Plan errors propagate untouched so
// a MissingColumnError still reaches the expansion machinery.
//
// Every phase feeds the crowddb_query_phase_seconds histogram; a non-nil
// qt additionally runs the executor with per-operator tracing and fills
// in the QueryTrace.
func (db *DB) execSelectStmt(sel *sqlparse.SelectStmt, nocache bool, qt *QueryTrace) (*Result, error) {
	planStart := time.Now()
	p, err := db.engine.PlanSelect(sel)
	planDur := time.Since(planStart)
	mQueryPhase.With("plan").Observe(planDur.Seconds())
	if qt != nil {
		qt.PlanUS += planDur.Microseconds()
	}
	if err != nil {
		return nil, err
	}
	for _, obs := range accessObservations(sel) {
		db.observeLocked(obs)
	}
	// run executes the plan, traced iff qt is set, and accounts the
	// execute phase either way.
	run := func() (*Result, error) {
		execStart := time.Now()
		var res *Result
		var rerr error
		if qt != nil {
			res2, tr, terr := engine.ExecPlanTraced(p)
			res, rerr = res2, terr
			if terr == nil {
				qt.Plan = p.ExplainWith(tr.Annotate)
			}
		} else {
			res, rerr = engine.ExecPlan(p)
		}
		execDur := time.Since(execStart)
		mQueryPhase.With("execute").Observe(execDur.Seconds())
		if qt != nil {
			qt.ExecUS += execDur.Microseconds()
		}
		return res, rerr
	}
	if db.rcache == nil {
		return run()
	}
	fp := p.Fingerprint()
	if !nocache {
		cacheStart := time.Now()
		cols, rows, ok := db.rcache.Get(fp)
		cacheDur := time.Since(cacheStart)
		mQueryPhase.With("cache_lookup").Observe(cacheDur.Seconds())
		if qt != nil {
			qt.CacheUS += cacheDur.Microseconds()
		}
		if ok {
			mCacheHits.Inc()
			if qt != nil {
				// Served from cache: nothing executed, so the plan tree
				// carries no actuals.
				qt.CacheHit = true
				qt.Plan = p.Explain()
			}
			return &Result{Columns: cols, Rows: rows, Affected: len(rows)}, nil
		}
		mCacheMisses.Inc()
	}
	snap := db.rcache.TableSeqs(p.Tables())
	res, err := run()
	if err != nil {
		return nil, err
	}
	if !nocache {
		db.rcache.Put(fp, snap, res.Columns, res.Rows)
	}
	return res, nil
}

// accessObservations derives per-table workload observations from a
// plannable SELECT: each base table in scope gets one observation
// carrying the columns the query references on it. Qualified references
// resolve through the statement's alias bindings; unqualified ones are
// attributed to the primary FROM table (the planner resolved them
// successfully, and single-table queries — the workload the predictor
// targets — have no ambiguity).
func accessObservations(sel *sqlparse.SelectStmt) []workload.Observation {
	primary := strings.ToLower(sel.Table)
	bindings := map[string]string{}
	alias := sel.TableAlias
	if alias == "" {
		alias = sel.Table
	}
	bindings[strings.ToLower(alias)] = primary
	colsByTable := map[string][]string{primary: nil}
	for _, j := range sel.Joins {
		a := j.Alias
		if a == "" {
			a = j.Table
		}
		bindings[strings.ToLower(a)] = strings.ToLower(j.Table)
		colsByTable[strings.ToLower(j.Table)] = nil
	}
	add := func(c *sqlparse.ColumnRef) {
		table := primary
		if c.Table != "" {
			t, ok := bindings[strings.ToLower(c.Table)]
			if !ok {
				return
			}
			table = t
		}
		colsByTable[table] = append(colsByTable[table], c.Name)
	}
	for _, it := range sel.Items {
		sqlparse.WalkColumns(it.Expr, add)
	}
	for _, j := range sel.Joins {
		sqlparse.WalkColumns(j.On, add)
	}
	sqlparse.WalkColumns(sel.Where, add)
	for _, g := range sel.GroupBy {
		sqlparse.WalkColumns(g, add)
	}
	sqlparse.WalkColumns(sel.Having, add)
	for _, o := range sel.OrderBy {
		sqlparse.WalkColumns(o.Expr, add)
	}
	out := make([]workload.Observation, 0, len(colsByTable))
	for table, cols := range colsByTable {
		out = append(out, workload.Observation{Table: table, Columns: cols, Kind: workload.KindAccess})
	}
	return out
}

// speculate submits pre-expansions for the columns the workload model
// predicts will be demanded next, given that table.trigger was just
// demand-expanded. Called synchronously from submitExpansion right after
// the demand member was admitted, while the coalescer's batch window for
// the table is still open — so speculative and demand members seal into
// ONE batch and their sampling phases merge into shared HIT groups,
// charged once (see runExpansionBatch).
//
// Strictly best effort, in this order: speculation requires batching and
// a positive speculative budget; it stops when pending members reach
// half the admission bound (never starving demand submissions into
// ErrQueueFull); it skips columns already filled or not registered; and
// it pre-flights the projected cost against SpeculativeBudget, with the
// batch runner's per-member reservation as the authoritative check.
func (db *DB) speculate(table, trigger string) {
	if db.coalescer == nil || db.specBudget <= 0 || db.tracker == nil {
		return
	}
	for _, pred := range db.tracker.Predict(table, trigger, maxSpeculations) {
		if db.coalescer.Pending()*2 >= db.coalescer.Depth() {
			return
		}
		spec, ok := db.expandableSpec(table, pred.Column)
		if !ok || db.columnFilled(table, pred.Column) {
			continue
		}
		opts := spec.opts
		opts.Origin = OriginSpeculative
		opts.APIKey = SpeculativeBudgetKey
		if !db.speculationAffordable(table, pred.Column, opts) {
			continue
		}
		// implicit=true: if a racing job fills the column first, the
		// speculative run degrades to a no-op instead of re-eliciting.
		_, _, _ = db.submitExpansion(table, pred.Column, spec.kind, opts, true)
	}
}

// speculationAffordable pre-flights a speculative expansion's projected
// sampling cost against the speculative budget — the same best-effort
// shape as SubmitExpand's check: a plan that cannot be built yet defers
// entirely to the batch runner's authoritative per-member reservation.
func (db *DB) speculationAffordable(table, column string, opts ExpandOptions) bool {
	tbl, ok := db.Catalog().Get(table)
	if !ok {
		return false
	}
	pre := opts
	defaultMethod := sqlparse.ExpandCrowd
	if db.binding(table) != nil {
		defaultMethod = sqlparse.ExpandSpace
	}
	pre.fillDefaults(defaultMethod)
	if pre.Method == sqlparse.ExpandHybrid {
		pre.Method = sqlparse.ExpandCrowd // estimate HYBRID by its first round
	}
	if e, err := db.planElicitation(tbl, column, pre); err == nil {
		if err := db.checkBudget(pre.APIKey, e.projected()); err != nil {
			return false
		}
	}
	return true
}
