package crowd

import (
	"fmt"
	"math/rand"
	"sort"
)

// Batched HIT issuing: several pending elicitations — typically different
// perceptual attributes of the same table whose expansions happen to be in
// flight together — are merged into ONE crowd job. Workers see a single
// HIT group whose items interleave every question, so the marketplace is
// engaged once: one posting, one worker pass, one charge. The requester
// pays the combined judgment volume, but the fixed per-job overhead
// (posting, worker ramp-up, wall-clock) is shared, and the accounting
// layer books a single charge instead of one per attribute.

// BatchRequest is one pending elicitation joining a shared HIT group: a
// yes/no question over a set of items. Item IDs only need to be unique
// within one request; the same tuple may appear under several questions.
type BatchRequest struct {
	Question string
	Items    []Item
}

// BatchResult is the outcome of one shared HIT group that served several
// questions at once.
type BatchResult struct {
	// Combined is the shared job as the marketplace saw it: the full
	// judgment timeline over the merged item set, total cost, total
	// duration. Item IDs in Combined.Records are the batch's internal
	// (question, item) slot IDs, not the callers' item IDs — use
	// PerQuestion for anything per-item.
	Combined *RunResult
	// PerQuestion has one entry per request, in request order: the
	// records of that question's items (original item IDs restored),
	// the question's proportional share of the total cost, and the
	// SHARED wall-clock duration — the whole point of batching is that
	// N questions complete in one job's time, not N jobs' time.
	PerQuestion []*RunResult
}

// RunBatchJob executes several elicitation requests as one simulated
// crowd job. Each (question, item) pair is remapped onto a unique slot ID,
// the merged slot list runs through RunJob — so worker behaviour, gold
// screening, and marketplace dynamics are exactly those of a single job —
// and the judgment log is split back per question afterwards.
//
// The combined cost is split across questions proportionally to the
// judgments each question's items received; overhead judgments (gold
// questions, discarded work from excluded workers) are distributed the
// same way, so the per-question costs sum to the combined total.
func RunBatchJob(pop *Population, reqs []BatchRequest, cfg JobConfig, rng *rand.Rand) (*BatchResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("crowd: empty batch")
	}

	// Remap every (question, item) pair onto a dense non-negative slot ID.
	// Gold items use negative IDs by convention, so slots cannot collide
	// with them.
	type origin struct {
		req int
		id  int
	}
	var merged []Item
	var origins []origin
	for ri, req := range reqs {
		for _, it := range req.Items {
			slot := it
			slot.ID = len(merged)
			merged = append(merged, slot)
			origins = append(origins, origin{req: ri, id: it.ID})
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("crowd: batch has no items")
	}

	combined, err := RunJob(pop, merged, cfg, rng)
	if err != nil {
		return nil, err
	}

	// Split the timeline back per question, restoring original item IDs.
	per := make([]*RunResult, len(reqs))
	for i := range per {
		per[i] = &RunResult{DurationMinutes: combined.DurationMinutes}
	}
	workersSeen := make([]map[int]bool, len(reqs))
	for i := range workersSeen {
		workersSeen[i] = map[int]bool{}
	}
	kept := 0
	for _, rec := range combined.Records {
		if rec.Gold {
			continue // screening questions belong to the whole batch
		}
		o := origins[rec.ItemID]
		rec.ItemID = o.id
		per[o.req].Records = append(per[o.req].Records, rec)
		workersSeen[o.req][rec.WorkerID] = true
		kept++
	}

	// Proportional cost split; the remainder from rounding overhead onto
	// shares is folded into the last non-empty question so the split sums
	// exactly to the combined charge.
	assigned := 0.0
	last := -1
	for i, r := range per {
		r.DistinctWorkers = len(workersSeen[i])
		r.ExcludedWorkers = append([]int(nil), combined.ExcludedWorkers...)
		if kept > 0 {
			r.TotalCost = combined.TotalCost * float64(len(r.Records)) / float64(kept)
		} else {
			r.TotalCost = combined.TotalCost / float64(len(per))
		}
		assigned += r.TotalCost
		if len(r.Records) > 0 || kept == 0 {
			last = i
		}
	}
	if last >= 0 {
		per[last].TotalCost += combined.TotalCost - assigned
	}
	for _, r := range per {
		sort.SliceStable(r.Records, func(i, j int) bool { return r.Records[i].Time < r.Records[j].Time })
	}
	return &BatchResult{Combined: combined, PerQuestion: per}, nil
}
