package crowd

import (
	"math"
	"math/rand"
	"testing"
)

// TestRunBatchJobSplitsPerQuestion checks the core batching invariants:
// every (question, item) pair gets its full assignment count, original
// item IDs are restored per question, costs split to the combined total,
// and every question shares one job's wall-clock.
func TestRunBatchJobSplitsPerQuestion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pop := NewPopulation(PopulationConfig{Workers: 60}, rng)
	// Two questions over overlapping item IDs: the same tuples judged for
	// two different attributes.
	itemsA := makeItems(30, rng)
	itemsB := makeItems(30, rng)
	cfg := defaultJob()
	cfg.AllowDontKnow = false

	res, err := RunBatchJob(pop, []BatchRequest{
		{Question: "comedy", Items: itemsA},
		{Question: "drama", Items: itemsB},
	}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuestion) != 2 {
		t.Fatalf("PerQuestion = %d, want 2", len(res.PerQuestion))
	}

	wantTotal := (len(itemsA) + len(itemsB)) * cfg.AssignmentsPerItem
	if len(res.Combined.Records) != wantTotal {
		t.Fatalf("combined records = %d, want %d", len(res.Combined.Records), wantTotal)
	}

	for qi, q := range res.PerQuestion {
		items := itemsA
		if qi == 1 {
			items = itemsB
		}
		if len(q.Records) != len(items)*cfg.AssignmentsPerItem {
			t.Fatalf("question %d records = %d, want %d", qi, len(q.Records), len(items)*cfg.AssignmentsPerItem)
		}
		// Original IDs restored: every record's ItemID is a known item and
		// each item got exactly AssignmentsPerItem judgments.
		counts := map[int]int{}
		for _, rec := range q.Records {
			counts[rec.ItemID]++
		}
		for _, it := range items {
			if counts[it.ID] != cfg.AssignmentsPerItem {
				t.Fatalf("question %d item %d got %d judgments, want %d", qi, it.ID, counts[it.ID], cfg.AssignmentsPerItem)
			}
		}
		if q.DurationMinutes != res.Combined.DurationMinutes {
			t.Fatalf("question %d duration %v, want shared %v", qi, q.DurationMinutes, res.Combined.DurationMinutes)
		}
		// Timeline stays sorted after the split.
		for i := 1; i < len(q.Records); i++ {
			if q.Records[i].Time < q.Records[i-1].Time {
				t.Fatalf("question %d records not sorted by time", qi)
			}
		}
	}

	sum := 0.0
	for _, q := range res.PerQuestion {
		sum += q.TotalCost
	}
	if math.Abs(sum-res.Combined.TotalCost) > 1e-9 {
		t.Fatalf("per-question costs sum to %.6f, combined charge is %.6f", sum, res.Combined.TotalCost)
	}
}

// TestRunBatchJobMajoritiesMatchSingleJobs: with an honest, fully-informed
// population the majorities recovered from a batch must match the items'
// latent truth, question by question — merging must not leak judgments
// across questions even when item IDs overlap.
func TestRunBatchJobMajoritiesMatchSingleJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop := NewPopulation(PopulationConfig{Workers: 80, LookupFraction: 1}, rng)
	cfg := defaultJob()
	cfg.AllowDontKnow = false
	cfg.AssignmentsPerItem = 9

	// Same IDs, opposite truths: any cross-question leakage flips votes.
	var a, b []Item
	for i := 0; i < 20; i++ {
		a = append(a, Item{ID: i, Truth: i%2 == 0, Popularity: 1})
		b = append(b, Item{ID: i, Truth: i%2 != 0, Popularity: 1})
	}
	res, err := RunBatchJob(pop, []BatchRequest{
		{Question: "q-a", Items: a},
		{Question: "q-b", Items: b},
	}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, items := range [][]Item{a, b} {
		votes := MajorityVote(res.PerQuestion[qi].Records)
		for _, it := range items {
			label, ok := votes.Label[it.ID]
			if !ok {
				t.Fatalf("question %d item %d unclassified", qi, it.ID)
			}
			if label != it.Truth {
				t.Fatalf("question %d item %d voted %v, truth %v", qi, it.ID, label, it.Truth)
			}
		}
	}
}

func TestRunBatchJobRejectsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := NewPopulation(PopulationConfig{Workers: 5}, rng)
	if _, err := RunBatchJob(pop, nil, defaultJob(), rng); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := RunBatchJob(pop, []BatchRequest{{Question: "q"}}, defaultJob(), rng); err == nil {
		t.Fatal("itemless batch accepted")
	}
}
