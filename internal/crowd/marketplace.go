package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// JobConfig describes one crowd-sourcing job (a HIT group).
type JobConfig struct {
	// ItemsPerHIT is how many items one HIT bundles (10 in the paper).
	ItemsPerHIT int
	// AssignmentsPerItem is how many distinct workers judge each item
	// (10 in the paper, for majority voting).
	AssignmentsPerItem int
	// PayPerHIT is the payment per completed HIT in dollars
	// ($0.02 in Experiments 1–2, $0.03 in Experiment 3).
	PayPerHIT float64
	// JudgmentsPerMinute is the aggregate marketplace throughput. The
	// paper observed ~95/min for the cheap perceptual task (Exp 1),
	// a similar rate for the filtered population (Exp 2), and ~18/min for
	// the laborious lookup task (Exp 3).
	JudgmentsPerMinute float64
	// AllowDontKnow mirrors the HIT option set; Experiment 3 removed the
	// "I do not know this movie" choice.
	AllowDontKnow bool
	// ExcludeCountries drops workers from these countries (Experiment 2).
	ExcludeCountries []string
	// Gold configures gold-question screening (Experiment 3): GoldItems
	// known-answer items are mixed into the job; workers whose gold error
	// count exceeds GoldFailureLimit are excluded and their judgments
	// discarded and re-issued. Gold item IDs must not collide with
	// ordinary item IDs (use negative IDs by convention).
	GoldItems        []Item
	GoldFailureLimit int
}

// Record is one judgment event in the job's timeline.
type Record struct {
	// Time is minutes since the job started.
	Time float64
	// WorkerID identifies the judging worker.
	WorkerID int
	// ItemID identifies the judged item; gold items use their own IDs.
	ItemID int
	// Gold marks screening questions (excluded from majority votes).
	Gold bool
	// Answer is the judgment given.
	Answer Judgment
}

// WorkerStats summarizes one worker's behaviour during a job, mirroring the
// per-worker analysis of §4.1 (claimed coverage and positive-answer rate).
type WorkerStats struct {
	WorkerID   int
	Archetype  Archetype
	Judgments  int
	DontKnows  int
	Positives  int
	GoldErrors int
	Excluded   bool
}

// ClaimedCoverage is the fraction of items the worker claimed to know.
func (s WorkerStats) ClaimedCoverage() float64 {
	if s.Judgments == 0 {
		return 0
	}
	return 1 - float64(s.DontKnows)/float64(s.Judgments)
}

// PositiveRate is the fraction of the worker's non-DontKnow answers that
// were Positive.
func (s WorkerStats) PositiveRate() float64 {
	answered := s.Judgments - s.DontKnows
	if answered == 0 {
		return 0
	}
	return float64(s.Positives) / float64(answered)
}

// RunResult is the full outcome of a simulated crowd job.
type RunResult struct {
	// Records is the judgment timeline, sorted by Time ascending. Records
	// from workers that were later excluded by gold screening have already
	// been removed, matching CrowdFlower's behaviour of discarding
	// untrusted judgments.
	Records []Record
	// DurationMinutes is the completion time of the whole job.
	DurationMinutes float64
	// TotalCost is the total payment in dollars (excluded workers are
	// still paid for completed HITs — the requester eats that cost).
	TotalCost float64
	// DistinctWorkers is the number of workers that contributed at least
	// one judgment (including later-excluded ones).
	DistinctWorkers int
	// Stats has one entry per participating worker.
	Stats []WorkerStats
	// ExcludedWorkers lists workers removed by gold screening.
	ExcludedWorkers []int
}

// CostAt returns the money spent up to minute t, assuming payment accrues
// per judgment (PayPerHIT / ItemsPerHIT each). Used for Figure 4's
// money axis.
func (r *RunResult) CostAt(t float64, cfg JobConfig) float64 {
	if r.DurationMinutes <= 0 {
		return 0
	}
	perJudgment := cfg.PayPerHIT / float64(cfg.ItemsPerHIT)
	n := 0
	for _, rec := range r.Records {
		if rec.Time <= t {
			n++
		}
	}
	return float64(n) * perJudgment
}

// RunJob simulates executing a crowd job over items with the given worker
// population. The simulation is an arrival process: judgment slots arrive
// at an exponential rate of cfg.JudgmentsPerMinute and are served by
// workers sampled proportionally to their Speed, subject to the constraint
// that a worker judges any given item at most once.
func RunJob(pop *Population, items []Item, cfg JobConfig, rng *rand.Rand) (*RunResult, error) {
	if cfg.ItemsPerHIT <= 0 || cfg.AssignmentsPerItem <= 0 {
		return nil, fmt.Errorf("crowd: ItemsPerHIT and AssignmentsPerItem must be positive")
	}
	if cfg.JudgmentsPerMinute <= 0 {
		return nil, fmt.Errorf("crowd: JudgmentsPerMinute must be positive")
	}
	workers := pop.Filter(cfg.ExcludeCountries).Workers
	if len(workers) == 0 {
		return nil, fmt.Errorf("crowd: no eligible workers after country filter")
	}

	// The work queue: every item needs AssignmentsPerItem judgments; gold
	// items are interleaved at the recommended ~10% ratio by listing them
	// like ordinary items.
	type slot struct {
		item Item
		gold bool
	}
	var queue []slot
	for _, it := range items {
		queue = append(queue, slot{item: it})
	}
	for _, g := range cfg.GoldItems {
		queue = append(queue, slot{item: g, gold: true})
	}
	// Shuffle so gold questions are indistinguishable by position.
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })

	// pending[i] = remaining assignments for queue entry i.
	pending := make([]int, len(queue))
	remaining := 0
	for i := range queue {
		pending[i] = cfg.AssignmentsPerItem
		remaining += cfg.AssignmentsPerItem
	}

	// judged[worker] = set of queue indices already judged by the worker.
	judged := make([]map[int]bool, len(workers))
	for i := range judged {
		judged[i] = make(map[int]bool)
	}

	totalSpeed := 0.0
	for _, w := range workers {
		totalSpeed += w.Speed
	}

	excluded := make([]bool, len(workers))
	stats := make([]WorkerStats, len(workers))
	for i, w := range workers {
		stats[i] = WorkerStats{WorkerID: w.ID, Archetype: w.Archetype}
	}

	var records []Record
	recordOwner := make([]int, 0) // parallel to records: local worker index
	now := 0.0
	judgmentsDone := 0

	pickWorker := func() int {
		// Sample proportional to Speed among non-excluded workers.
		active := 0.0
		for i, w := range workers {
			if !excluded[i] {
				active += w.Speed
			}
		}
		if active == 0 {
			return -1
		}
		x := rng.Float64() * active
		for i, w := range workers {
			if excluded[i] {
				continue
			}
			x -= w.Speed
			if x <= 0 {
				return i
			}
		}
		for i := range workers {
			if !excluded[i] {
				return i
			}
		}
		return -1
	}

	// Safety valve: if the eligible population cannot supply enough
	// distinct workers for the remaining items, stop cleanly instead of
	// looping forever.
	stall := 0
	maxStall := 50 * (len(workers) + 1)

	for remaining > 0 {
		wi := pickWorker()
		if wi == -1 {
			break // everyone excluded
		}
		// Find a queue entry this worker has not judged yet, preferring
		// the most under-served entries (highest pending).
		best := -1
		for qi := range queue {
			if pending[qi] == 0 || judged[wi][qi] {
				continue
			}
			if best == -1 || pending[qi] > pending[best] {
				best = qi
			}
		}
		if best == -1 {
			stall++
			if stall > maxStall {
				break
			}
			continue
		}
		stall = 0

		now += rng.ExpFloat64() / cfg.JudgmentsPerMinute
		w := workers[wi]
		sl := queue[best]
		ans := w.Judge(sl.item, cfg.AllowDontKnow, rng)

		judged[wi][best] = true
		pending[best]--
		remaining--
		judgmentsDone++

		st := &stats[wi]
		st.Judgments++
		if ans == DontKnow {
			st.DontKnows++
		}
		if ans == Positive {
			st.Positives++
		}

		if sl.gold {
			truthAns := Negative
			if sl.item.Truth {
				truthAns = Positive
			}
			if ans != truthAns {
				st.GoldErrors++
				if cfg.GoldFailureLimit > 0 && st.GoldErrors > cfg.GoldFailureLimit && !excluded[wi] {
					excluded[wi] = true
					st.Excluded = true
					// Discard the cheater's judgments and re-issue them.
					kept := records[:0]
					keptOwners := recordOwner[:0]
					for ri, rec := range records {
						if recordOwner[ri] == wi {
							// Find the queue entry and put the
							// assignment back.
							for qi := range queue {
								if queue[qi].item.ID == rec.ItemID && queue[qi].gold == rec.Gold {
									pending[qi]++
									remaining++
									break
								}
							}
							continue
						}
						kept = append(kept, rec)
						keptOwners = append(keptOwners, recordOwner[ri])
					}
					records = kept
					recordOwner = keptOwners
					// The triggering gold judgment is dropped and
					// re-issued as well.
					pending[best]++
					remaining++
					continue
				}
			}
		}

		records = append(records, Record{
			Time:     now,
			WorkerID: w.ID,
			ItemID:   sl.item.ID,
			Gold:     sl.gold,
			Answer:   ans,
		})
		recordOwner = append(recordOwner, wi)
	}

	sort.SliceStable(records, func(i, j int) bool { return records[i].Time < records[j].Time })

	res := &RunResult{
		Records:         records,
		DurationMinutes: now,
		TotalCost:       float64(judgmentsDone) / float64(cfg.ItemsPerHIT) * cfg.PayPerHIT,
	}
	for i := range stats {
		if stats[i].Judgments > 0 {
			res.DistinctWorkers++
			res.Stats = append(res.Stats, stats[i])
		}
		if stats[i].Excluded {
			res.ExcludedWorkers = append(res.ExcludedWorkers, stats[i].WorkerID)
		}
	}
	return res, nil
}

// VoteOutcome is the result of majority voting over a judgment log.
type VoteOutcome struct {
	// Label maps item ID to the majority classification. Items with no
	// usable judgments or a tie are absent.
	Label map[int]bool
	// Unclassified lists item IDs that received judgments but no majority.
	Unclassified []int
}

// Classified returns the number of items with a majority label.
func (v *VoteOutcome) Classified() int { return len(v.Label) }

// MajorityVote aggregates judgments per item, ignoring DontKnow answers and
// gold questions. Ties and empty vote sets leave the item unclassified,
// exactly as in §4.1.
func MajorityVote(records []Record) *VoteOutcome {
	return MajorityVoteAt(records, math.Inf(1))
}

// MajorityVoteAt is MajorityVote restricted to records with Time <= t.
// Experiments 4–6 use it to snapshot the crowd's progress every five
// simulated minutes while the SVM trains on the evolving majority.
func MajorityVoteAt(records []Record, t float64) *VoteOutcome {
	pos := map[int]int{}
	neg := map[int]int{}
	seen := map[int]bool{}
	for _, r := range records {
		if r.Gold || r.Time > t {
			continue
		}
		seen[r.ItemID] = true
		switch r.Answer {
		case Positive:
			pos[r.ItemID]++
		case Negative:
			neg[r.ItemID]++
		}
	}
	out := &VoteOutcome{Label: make(map[int]bool)}
	for id := range seen {
		p, n := pos[id], neg[id]
		switch {
		case p > n:
			out.Label[id] = true
		case n > p:
			out.Label[id] = false
		default:
			out.Unclassified = append(out.Unclassified, id)
		}
	}
	sort.Ints(out.Unclassified)
	return out
}

// AccuracyAgainst measures a vote outcome against ground truth: the number
// of classified items, and of those, how many match truth.
func (v *VoteOutcome) AccuracyAgainst(truth map[int]bool) (classified, correct int) {
	for id, label := range v.Label {
		classified++
		if truth[id] == label {
			correct++
		}
	}
	return classified, correct
}
