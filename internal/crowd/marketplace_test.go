package crowd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// makeItems builds n items with the paper's comedy base rate (~30%) and a
// long-tailed popularity distribution.
func makeItems(n int, rng *rand.Rand) []Item {
	items := make([]Item, n)
	for i := range items {
		pop := 0.05 + rng.Float64()*rng.Float64() // skewed toward obscure
		items[i] = Item{
			ID:         i,
			Truth:      rng.Float64() < 0.301,
			Popularity: pop,
			Ambiguity:  rng.Float64() * 0.15,
		}
	}
	return items
}

func truthMap(items []Item) map[int]bool {
	m := make(map[int]bool, len(items))
	for _, it := range items {
		m[it.ID] = it.Truth
	}
	return m
}

func defaultJob() JobConfig {
	return JobConfig{
		ItemsPerHIT:        10,
		AssignmentsPerItem: 5,
		PayPerHIT:          0.02,
		JudgmentsPerMinute: 95,
		AllowDontKnow:      true,
	}
}

func TestRunJobBasicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := NewPopulation(PopulationConfig{Workers: 40, SpammerFraction: 0.3}, rng)
	items := makeItems(100, rng)
	cfg := defaultJob()
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 100*cfg.AssignmentsPerItem {
		t.Fatalf("records = %d, want %d", len(res.Records), 100*cfg.AssignmentsPerItem)
	}
	// Timeline must be sorted.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Time < res.Records[i-1].Time {
			t.Fatal("records not sorted by time")
		}
	}
	// No worker judges the same item twice.
	seen := map[[2]int]bool{}
	for _, r := range res.Records {
		key := [2]int{r.WorkerID, r.ItemID}
		if seen[key] {
			t.Fatalf("worker %d judged item %d twice", r.WorkerID, r.ItemID)
		}
		seen[key] = true
	}
	// Every item received exactly AssignmentsPerItem judgments.
	perItem := map[int]int{}
	for _, r := range res.Records {
		perItem[r.ItemID]++
	}
	for id, n := range perItem {
		if n != cfg.AssignmentsPerItem {
			t.Fatalf("item %d got %d judgments", id, n)
		}
	}
	// Cost: 500 judgments / 10 per HIT * $0.02 = $1.
	if res.TotalCost != 1.0 {
		t.Fatalf("cost = %v, want 1.0", res.TotalCost)
	}
	if res.DurationMinutes <= 0 {
		t.Fatal("duration must be positive")
	}
	if res.DistinctWorkers == 0 || res.DistinctWorkers > 40 {
		t.Fatalf("distinct workers = %d", res.DistinctWorkers)
	}
}

func TestRunJobConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := NewPopulation(PopulationConfig{Workers: 5}, rng)
	items := makeItems(10, rng)
	bad := defaultJob()
	bad.ItemsPerHIT = 0
	if _, err := RunJob(pop, items, bad, rng); err == nil {
		t.Fatal("zero ItemsPerHIT must fail")
	}
	bad = defaultJob()
	bad.JudgmentsPerMinute = 0
	if _, err := RunJob(pop, items, bad, rng); err == nil {
		t.Fatal("zero throughput must fail")
	}
	bad = defaultJob()
	bad.ExcludeCountries = []string{"US", "DE", "GB", "IN", "ZZ", "YY"}
	if _, err := RunJob(pop, items, bad, rng); err == nil {
		t.Fatal("empty filtered population must fail")
	}
}

func TestSpammerContaminationDegradesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	items := makeItems(300, rng)
	truth := truthMap(items)
	cfg := defaultJob()
	cfg.AssignmentsPerItem = 10

	// Open population: 2/3 spammers (they flock to easy HITs).
	open := NewPopulation(PopulationConfig{Workers: 90, SpammerFraction: 0.65}, rng)
	resOpen, err := RunJob(open, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	votesOpen := MajorityVote(resOpen.Records)
	clOpen, okOpen := votesOpen.AccuracyAgainst(truth)

	// Trusted population: country filter removes the spammers.
	cfgTrusted := cfg
	cfgTrusted.ExcludeCountries = []string{"ZZ", "YY"}
	resTrusted, err := RunJob(open, items, cfgTrusted, rng)
	if err != nil {
		t.Fatal(err)
	}
	votesTrusted := MajorityVote(resTrusted.Records)
	clTrusted, okTrusted := votesTrusted.AccuracyAgainst(truth)

	accOpen := float64(okOpen) / float64(clOpen)
	accTrusted := float64(okTrusted) / float64(clTrusted)
	if accTrusted <= accOpen {
		t.Fatalf("country filter must improve accuracy: open %.3f vs trusted %.3f", accOpen, accTrusted)
	}
	// Trusted coverage drops (honest workers admit ignorance).
	if clTrusted >= clOpen {
		t.Fatalf("trusted coverage should drop: open %d vs trusted %d", clOpen, clTrusted)
	}
}

func TestGoldQuestionScreeningExcludesSpammers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := makeItems(200, rng)
	pop := NewPopulation(PopulationConfig{Workers: 60, SpammerFraction: 0.5}, rng)
	cfg := defaultJob()
	cfg.AssignmentsPerItem = 5
	cfg.AllowDontKnow = false
	var gold []Item
	for i := 0; i < 20; i++ {
		gold = append(gold, Item{ID: -(i + 1), Truth: i%2 == 0, Popularity: 1})
	}
	cfg.GoldItems = gold
	cfg.GoldFailureLimit = 2
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExcludedWorkers) == 0 {
		t.Fatal("gold screening should exclude at least one spammer")
	}
	// All excluded workers must be spammers (honest workers rarely fail
	// several gold questions).
	arch := map[int]Archetype{}
	for _, w := range pop.Workers {
		arch[w.ID] = w.Archetype
	}
	spamExcluded := 0
	for _, id := range res.ExcludedWorkers {
		if arch[id] == Spammer {
			spamExcluded++
		}
	}
	if float64(spamExcluded) < 0.8*float64(len(res.ExcludedWorkers)) {
		t.Fatalf("excluded workers should be mostly spammers: %d of %d", spamExcluded, len(res.ExcludedWorkers))
	}
	// No records from excluded workers survive.
	excluded := map[int]bool{}
	for _, id := range res.ExcludedWorkers {
		excluded[id] = true
	}
	for _, r := range res.Records {
		if excluded[r.WorkerID] {
			t.Fatalf("record from excluded worker %d survived", r.WorkerID)
		}
	}
	// Every ordinary item still ends with full coverage.
	perItem := map[int]int{}
	for _, r := range res.Records {
		if !r.Gold {
			perItem[r.ItemID]++
		}
	}
	for _, it := range items {
		if perItem[it.ID] != cfg.AssignmentsPerItem {
			t.Fatalf("item %d coverage = %d after exclusions", it.ID, perItem[it.ID])
		}
	}
}

func TestMajorityVote(t *testing.T) {
	recs := []Record{
		{ItemID: 1, Answer: Positive},
		{ItemID: 1, Answer: Positive},
		{ItemID: 1, Answer: Negative},
		{ItemID: 2, Answer: Negative},
		{ItemID: 2, Answer: DontKnow},
		{ItemID: 3, Answer: Positive},
		{ItemID: 3, Answer: Negative}, // tie
		{ItemID: 4, Answer: DontKnow}, // no usable votes
		{ItemID: 5, Answer: Positive, Gold: true},
	}
	v := MajorityVote(recs)
	if got, ok := v.Label[1]; !ok || !got {
		t.Fatalf("item 1 = %v, %v", got, ok)
	}
	if got, ok := v.Label[2]; !ok || got {
		t.Fatalf("item 2 = %v, %v", got, ok)
	}
	if _, ok := v.Label[3]; ok {
		t.Fatal("tie must stay unclassified")
	}
	if _, ok := v.Label[4]; ok {
		t.Fatal("all-dont-know must stay unclassified")
	}
	if _, ok := v.Label[5]; ok {
		t.Fatal("gold records must be ignored")
	}
	if len(v.Unclassified) != 2 {
		t.Fatalf("unclassified = %v", v.Unclassified)
	}
	if v.Classified() != 2 {
		t.Fatalf("classified = %d", v.Classified())
	}
}

func TestMajorityVoteAtIsMonotonicInTime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop := NewPopulation(PopulationConfig{Workers: 30, SpammerFraction: 0.2}, rng)
	items := makeItems(100, rng)
	cfg := defaultJob()
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var lastSeen int
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		v := MajorityVoteAt(res.Records, res.DurationMinutes*frac)
		seen := len(v.Label) + len(v.Unclassified)
		if seen < lastSeen {
			t.Fatalf("items with judgments decreased over time: %d -> %d", lastSeen, seen)
		}
		lastSeen = seen
	}
	if lastSeen != 100 {
		t.Fatalf("full run should cover all items, got %d", lastSeen)
	}
}

func TestCostAt(t *testing.T) {
	cfg := defaultJob()
	res := &RunResult{
		DurationMinutes: 10,
		Records: []Record{
			{Time: 1}, {Time: 2}, {Time: 3}, {Time: 8},
		},
	}
	if got := res.CostAt(2.5, cfg); got != 2*0.002 {
		t.Fatalf("CostAt(2.5) = %v", got)
	}
	if got := res.CostAt(100, cfg); got != 4*0.002 {
		t.Fatalf("CostAt(100) = %v", got)
	}
	empty := &RunResult{}
	if empty.CostAt(1, cfg) != 0 {
		t.Fatal("empty result must cost 0")
	}
}

func TestWorkerStatsTwoGroupsVisible(t *testing.T) {
	// Reproduce the paper's §4.1 analysis: spammers and honest workers are
	// separable by claimed coverage.
	rng := rand.New(rand.NewSource(13))
	pop := NewPopulation(PopulationConfig{Workers: 60, SpammerFraction: 0.5}, rng)
	items := makeItems(400, rng)
	cfg := defaultJob()
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stats {
		if st.Judgments < 40 {
			continue // too little signal
		}
		cov := st.ClaimedCoverage()
		switch st.Archetype {
		case Spammer:
			if cov < 0.80 {
				t.Fatalf("spammer %d claimed coverage %.2f, want >= 0.80", st.WorkerID, cov)
			}
		case Honest:
			if cov > 0.60 {
				t.Fatalf("honest worker %d claimed coverage %.2f, want <= 0.60", st.WorkerID, cov)
			}
		}
	}
}

func TestWorkerStatsRates(t *testing.T) {
	s := WorkerStats{Judgments: 10, DontKnows: 4, Positives: 3}
	if got := s.ClaimedCoverage(); got != 0.6 {
		t.Fatalf("ClaimedCoverage = %v", got)
	}
	if got := s.PositiveRate(); got != 0.5 {
		t.Fatalf("PositiveRate = %v", got)
	}
	empty := WorkerStats{}
	if empty.ClaimedCoverage() != 0 || empty.PositiveRate() != 0 {
		t.Fatal("empty stats must be zero")
	}
	allDK := WorkerStats{Judgments: 5, DontKnows: 5}
	if allDK.PositiveRate() != 0 {
		t.Fatal("all-dont-know PositiveRate must be 0")
	}
}

// Property: majority vote never classifies an item with zero usable votes
// and classification counts are bounded by the item set.
func TestMajorityVoteProperty(t *testing.T) {
	f := func(raw []struct {
		Item   uint8
		Answer uint8
		Gold   bool
	}) bool {
		recs := make([]Record, len(raw))
		usable := map[int]int{}
		for i, r := range raw {
			ans := Judgment(r.Answer % 3)
			recs[i] = Record{ItemID: int(r.Item % 16), Answer: ans, Gold: r.Gold}
			if !r.Gold && ans != DontKnow {
				usable[int(r.Item%16)]++
			}
		}
		v := MajorityVote(recs)
		for id := range v.Label {
			if usable[id] == 0 {
				return false
			}
		}
		return len(v.Label)+len(v.Unclassified) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: equal seeds produce identical runs.
func TestRunJobDeterministic(t *testing.T) {
	run := func() *RunResult {
		rng := rand.New(rand.NewSource(99))
		pop := NewPopulation(PopulationConfig{Workers: 20, SpammerFraction: 0.25}, rng)
		items := makeItems(50, rng)
		res, err := RunJob(pop, items, defaultJob(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) || a.DurationMinutes != b.DurationMinutes {
		t.Fatal("runs with equal seeds differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
