package crowd

import (
	"math"
	"sort"
)

// WeightedVoteOutcome is the result of reliability-weighted voting.
type WeightedVoteOutcome struct {
	// Label maps item ID to the inferred classification.
	Label map[int]bool
	// Confidence maps item ID to the posterior probability of the label.
	Confidence map[int]float64
	// WorkerReliability maps worker ID to the estimated probability that
	// the worker's answer matches the inferred truth.
	WorkerReliability map[int]float64
	// Unclassified lists items whose posterior stayed at exactly 0.5.
	Unclassified []int
}

// Classified returns the number of items with an inferred label.
func (v *WeightedVoteOutcome) Classified() int { return len(v.Label) }

// WeightedMajorityVote infers item labels and per-worker reliabilities
// jointly by expectation-maximization — a binary Dawid–Skene model, the
// technique behind the paper's related work on "inferring a single
// reliable judgment from conflicting responses" ([32], [33] in §6).
//
//   - E-step: given worker reliabilities, compute each item's posterior
//     probability of being positive (starting from the unweighted vote).
//   - M-step: given posteriors, re-estimate each worker's reliability as
//     the expected fraction of their answers that match the labels.
//
// DontKnow answers and gold records are ignored. Workers with very few
// answers are shrunk toward 0.5 (uninformative) so a lucky two-answer
// worker cannot dominate. The iteration is damped and capped; it
// typically converges in well under ten rounds.
func WeightedMajorityVote(records []Record, iterations int) *WeightedVoteOutcome {
	if iterations <= 0 {
		iterations = 10
	}
	type vote struct {
		worker int
		pos    bool
	}
	votes := map[int][]vote{} // item → votes
	workerAnswers := map[int]int{}
	for _, r := range records {
		if r.Gold || r.Answer == DontKnow {
			continue
		}
		votes[r.ItemID] = append(votes[r.ItemID], vote{worker: r.WorkerID, pos: r.Answer == Positive})
		workerAnswers[r.WorkerID]++
	}

	// Initialize posteriors from the unweighted vote.
	posterior := map[int]float64{}
	for item, vs := range votes {
		pos := 0
		for _, v := range vs {
			if v.pos {
				pos++
			}
		}
		posterior[item] = float64(pos) / float64(len(vs))
	}
	reliability := map[int]float64{}
	for w := range workerAnswers {
		reliability[w] = 0.7 // mildly trusting prior
	}

	clampP := func(p float64) float64 {
		// Keep log-odds finite; perfect certainty would lock the EM.
		return math.Min(0.99, math.Max(0.01, p))
	}

	for it := 0; it < iterations; it++ {
		// M-step: reliability = expected agreement with current labels,
		// shrunk toward 0.5 by a pseudo-count of 4.
		agree := map[int]float64{}
		for item, vs := range votes {
			p := posterior[item]
			for _, v := range vs {
				if v.pos {
					agree[v.worker] += p
				} else {
					agree[v.worker] += 1 - p
				}
			}
		}
		for w, n := range workerAnswers {
			reliability[w] = clampP((agree[w] + 2) / (float64(n) + 4))
		}

		// E-step: posterior of each item from weighted log-odds.
		for item, vs := range votes {
			logOdds := 0.0
			for _, v := range vs {
				r := reliability[v.worker]
				l := math.Log(r / (1 - r))
				if v.pos {
					logOdds += l
				} else {
					logOdds -= l
				}
			}
			posterior[item] = 1 / (1 + math.Exp(-logOdds))
		}
	}

	out := &WeightedVoteOutcome{
		Label:             map[int]bool{},
		Confidence:        map[int]float64{},
		WorkerReliability: reliability,
	}
	for item, p := range posterior {
		switch {
		case p > 0.5:
			out.Label[item] = true
			out.Confidence[item] = p
		case p < 0.5:
			out.Label[item] = false
			out.Confidence[item] = 1 - p
		default:
			out.Unclassified = append(out.Unclassified, item)
		}
	}
	sort.Ints(out.Unclassified)
	return out
}

// AccuracyAgainst measures the weighted outcome against ground truth.
func (v *WeightedVoteOutcome) AccuracyAgainst(truth map[int]bool) (classified, correct int) {
	for id, label := range v.Label {
		classified++
		if truth[id] == label {
			correct++
		}
	}
	return classified, correct
}
