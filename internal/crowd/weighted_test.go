package crowd

import (
	"math/rand"
	"testing"
)

func TestWeightedVoteBeatsPlainMajorityUnderSpam(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	items := makeItems(400, rng)
	truth := truthMap(items)
	pop := NewPopulation(PopulationConfig{Workers: 60, SpammerFraction: 0.5}, rng)
	cfg := defaultJob()
	cfg.AssignmentsPerItem = 9
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}

	plain := MajorityVote(res.Records)
	weighted := WeightedMajorityVote(res.Records, 10)

	_, plainCorrect := plain.AccuracyAgainst(truth)
	_, weightedCorrect := weighted.AccuracyAgainst(truth)
	if weightedCorrect <= plainCorrect {
		t.Fatalf("EM-weighted vote (%d correct) must beat plain majority (%d) under spam",
			weightedCorrect, plainCorrect)
	}
}

func TestWeightedVoteIdentifiesSpammers(t *testing.T) {
	// EM reliability estimation needs the consensus to be mostly right:
	// with a minority of spammers, honest workers' mutual agreement
	// separates the groups. (With spammers in the majority the inferred
	// "truth" IS the spam consensus — a documented limitation of
	// agreement-based quality estimation.)
	rng := rand.New(rand.NewSource(42))
	items := makeItems(400, rng)
	pop := NewPopulation(PopulationConfig{Workers: 40, SpammerFraction: 0.25}, rng)
	cfg := defaultJob()
	cfg.AssignmentsPerItem = 9
	res, err := RunJob(pop, items, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	weighted := WeightedMajorityVote(res.Records, 10)

	arch := map[int]Archetype{}
	for _, w := range pop.Workers {
		arch[w.ID] = w.Archetype
	}
	// Count only usable (non-DontKnow) answers per worker: reliability of
	// workers who mostly answer "don't know" is dominated by shrinkage.
	usable := map[int]int{}
	for _, rec := range res.Records {
		if rec.Answer != DontKnow && !rec.Gold {
			usable[rec.WorkerID]++
		}
	}
	var honestSum, honestN, spamSum, spamN float64
	for w, r := range weighted.WorkerReliability {
		if usable[w] < 15 {
			continue
		}
		if arch[w] == Spammer {
			spamSum += r
			spamN++
		} else if arch[w] == Honest {
			honestSum += r
			honestN++
		}
	}
	if honestN == 0 || spamN == 0 {
		t.Skip("not enough workers with 15+ usable answers")
	}
	if honestSum/honestN <= spamSum/spamN+0.05 {
		t.Fatalf("honest reliability %.3f must clearly exceed spammer reliability %.3f",
			honestSum/honestN, spamSum/spamN)
	}
}

func TestWeightedVoteBasics(t *testing.T) {
	recs := []Record{
		{WorkerID: 1, ItemID: 1, Answer: Positive},
		{WorkerID: 2, ItemID: 1, Answer: Positive},
		{WorkerID: 3, ItemID: 1, Answer: Negative},
		{WorkerID: 1, ItemID: 2, Answer: Negative},
		{WorkerID: 2, ItemID: 2, Answer: Negative},
		{WorkerID: 4, ItemID: 3, Answer: DontKnow},
		{WorkerID: 5, ItemID: 4, Answer: Positive, Gold: true},
	}
	v := WeightedMajorityVote(recs, 5)
	if got, ok := v.Label[1]; !ok || !got {
		t.Fatalf("item 1 = %v, %v", got, ok)
	}
	if got, ok := v.Label[2]; !ok || got {
		t.Fatalf("item 2 = %v, %v", got, ok)
	}
	if _, ok := v.Label[3]; ok {
		t.Fatal("all-dont-know item must stay unlabeled")
	}
	if _, ok := v.Label[4]; ok {
		t.Fatal("gold-only item must stay unlabeled")
	}
	if v.Confidence[1] <= 0.5 || v.Confidence[1] > 1 {
		t.Fatalf("confidence = %v", v.Confidence[1])
	}
	for _, r := range v.WorkerReliability {
		if r < 0.01 || r > 0.99 {
			t.Fatalf("reliability %v outside clamp", r)
		}
	}
	if v.Classified() != 2 {
		t.Fatalf("classified = %d", v.Classified())
	}
}

func TestWeightedVoteEmptyAndDefaults(t *testing.T) {
	v := WeightedMajorityVote(nil, 0)
	if v.Classified() != 0 || len(v.Unclassified) != 0 {
		t.Fatal("empty input must yield empty outcome")
	}
}
