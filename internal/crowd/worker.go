// Package crowd simulates a crowd-sourcing marketplace (CrowdFlower /
// Amazon Mechanical Turk in the paper) well enough to reproduce the
// population effects the paper measures in Experiments 1–3:
//
//   - an open worker population contaminated by spammers who claim to know
//     nearly every item and answer quasi-randomly (Experiment 1),
//   - a country-filtered population of honest workers who only judge items
//     they actually know (Experiment 2),
//   - a "lookup" task formulation with gold-question screening, where
//     workers research the answer on the Web: slow but accurate
//     (Experiment 3).
//
// The simulator is calibrated to the *worker statistics* the paper reports
// (§4.1: answer-option split, the two visible worker groups, judgments per
// minute); the experiment outcomes — accuracy, coverage, duration, cost —
// then fall out of the simulation rather than being hard-coded.
package crowd

import (
	"fmt"
	"math/rand"
)

// Judgment is one worker's answer for one item.
type Judgment int8

const (
	// DontKnow means the worker admitted not knowing the item.
	DontKnow Judgment = iota
	// Positive means "the item has the attribute" (e.g. "is a comedy").
	Positive
	// Negative means "the item does not have the attribute".
	Negative
)

func (j Judgment) String() string {
	switch j {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "dont-know"
	}
}

// Item is one tuple whose attribute value is being crowd-sourced.
type Item struct {
	// ID identifies the tuple (e.g. the movie_id).
	ID int
	// Truth is the answer a knowledgeable worker's perception converges
	// to. Note that the caller decides what this is: the dataset layer
	// supplies the *perceived* label, which systematically disagrees with
	// the expert reference near category boundaries — that is why crowd
	// majorities cannot reach 100% accuracy against the reference even
	// with honest workers (§4.1).
	Truth bool
	// Popularity in (0, 1] scales how likely a worker is to know the item.
	// A random sample of a large movie catalog is mostly obscure titles —
	// the paper estimates an average person knows 10–20% of them.
	Popularity float64
	// Ambiguity in [0, 0.5) is the probability that even a knowledgeable
	// honest worker judges against the latent truth (borderline comedies
	// exist; the expert databases disagree on them too).
	Ambiguity float64
}

// Archetype is a worker behaviour model.
type Archetype uint8

const (
	// Honest workers answer only items they know, with good accuracy.
	// The paper's "group b": knew ~26% of items, judged 32% comedy.
	Honest Archetype = iota
	// Spammer workers claim to know nearly everything and answer without
	// regard for the truth. The paper's "group a": claimed to know 94% of
	// all movies and called 56% of them comedies.
	Spammer
	// Lookup workers research the answer on the Web (Experiment 3): they
	// can answer for every item with high accuracy, but are ~5x slower.
	Lookup
)

func (a Archetype) String() string {
	switch a {
	case Honest:
		return "honest"
	case Spammer:
		return "spammer"
	case Lookup:
		return "lookup"
	default:
		return fmt.Sprintf("Archetype(%d)", uint8(a))
	}
}

// Worker is one simulated crowd worker.
type Worker struct {
	ID        int
	Country   string
	Archetype Archetype

	// KnowRate is the base probability of knowing an item of average
	// popularity (honest workers only; spammers claim to know everything,
	// lookup workers can always research).
	KnowRate float64
	// Accuracy is the probability of answering according to the latent
	// truth when the worker knows (or has looked up) the item, before
	// item ambiguity is applied.
	Accuracy float64
	// PositiveBias is the probability that a spammer answers Positive when
	// fabricating a judgment.
	PositiveBias float64
	// Speed is a relative judgment-rate weight: the probability that a
	// given marketplace judgment slot is served by this worker is
	// proportional to Speed.
	Speed float64
}

// Judge simulates the worker answering one item. allowDontKnow mirrors the
// HIT design: Experiment 3 removed the "I do not know this movie" option.
func (w *Worker) Judge(item Item, allowDontKnow bool, rng *rand.Rand) Judgment {
	switch w.Archetype {
	case Spammer:
		// Spammers occasionally click "don't know" to look plausible.
		if allowDontKnow && rng.Float64() > 0.94 {
			return DontKnow
		}
		// Lazily truthful: a spammer who happens to know the movie
		// answers from memory (it is no extra effort); everything else
		// gets a biased guess. This matches §4.1's "group a": claimed to
		// know 94% of all movies, 56% of their answers were "comedy".
		if w.KnowRate > 0 && rng.Float64() < w.KnowRate*item.Popularity {
			return truthful(item, w.Accuracy, rng)
		}
		if rng.Float64() < w.PositiveBias {
			return Positive
		}
		return Negative

	case Lookup:
		// Research nearly always succeeds; looking up the wrong entry or
		// misreading the page is rare.
		return truthful(item, w.Accuracy, rng)

	default: // Honest
		knows := rng.Float64() < w.KnowRate*item.Popularity
		if !knows {
			if allowDontKnow {
				return DontKnow
			}
			// Forced to answer an unknown item: guess with the base rate
			// of the domain in mind (a coin flip is the honest model).
			if rng.Float64() < 0.5 {
				return Positive
			}
			return Negative
		}
		return truthful(item, w.Accuracy, rng)
	}
}

func truthful(item Item, accuracy float64, rng *rand.Rand) Judgment {
	correct := rng.Float64() < accuracy*(1-item.Ambiguity)
	answer := item.Truth
	if !correct {
		answer = !answer
	}
	if answer {
		return Positive
	}
	return Negative
}

// PopulationConfig describes a marketplace worker population.
type PopulationConfig struct {
	// Workers is the number of distinct workers that participate.
	Workers int
	// SpammerFraction is the share of workers that are spammers.
	SpammerFraction float64
	// LookupFraction is the share of workers that research answers.
	LookupFraction float64
	// SpammerCountries is the country set spammers are drawn from;
	// Experiment 2's filter excludes exactly these. Defaults to
	// {"ZZ", "YY"} when empty.
	SpammerCountries []string
	// HonestCountries is the country set for everyone else. Defaults to
	// {"US", "DE", "GB", "IN"} when empty.
	HonestCountries []string
}

// Population is an immutable set of simulated workers.
type Population struct {
	Workers []*Worker
}

// NewPopulation samples a worker population. The per-archetype parameter
// ranges are calibrated to the paper's observed statistics:
// honest workers know 10–30% of a typical movie sample and match the true
// comedy base rate; spammers claim ~94% coverage with a ~56% positive
// answer bias; spammers also judge faster than honest workers (that is how
// they maximize income).
func NewPopulation(cfg PopulationConfig, rng *rand.Rand) *Population {
	if cfg.Workers <= 0 {
		panic("crowd: PopulationConfig.Workers must be positive")
	}
	spamCountries := cfg.SpammerCountries
	if len(spamCountries) == 0 {
		spamCountries = []string{"ZZ", "YY"}
	}
	honestCountries := cfg.HonestCountries
	if len(honestCountries) == 0 {
		honestCountries = []string{"US", "DE", "GB", "IN"}
	}

	nSpam := int(float64(cfg.Workers)*cfg.SpammerFraction + 0.5)
	nLookup := int(float64(cfg.Workers)*cfg.LookupFraction + 0.5)
	if nSpam+nLookup > cfg.Workers {
		nLookup = cfg.Workers - nSpam
	}

	pop := &Population{}
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{ID: i}
		switch {
		case i < nSpam:
			w.Archetype = Spammer
			w.Country = spamCountries[rng.Intn(len(spamCountries))]
			w.PositiveBias = 0.54 + rng.Float64()*0.12 // ~60% positive guesses
			w.KnowRate = 0.20 + rng.Float64()*0.15     // lazily truthful on famous items
			w.Accuracy = 0.75
			w.Speed = 1.6 + rng.Float64()*1.2 // spammers churn fast
		case i < nSpam+nLookup:
			w.Archetype = Lookup
			w.Country = honestCountries[rng.Intn(len(honestCountries))]
			w.Accuracy = 0.93 + rng.Float64()*0.05
			w.Speed = 0.8 + rng.Float64()*0.4
		default:
			w.Archetype = Honest
			w.Country = honestCountries[rng.Intn(len(honestCountries))]
			w.KnowRate = 0.50 + rng.Float64()*0.45 // ×popularity ≈ 10–30%
			w.Accuracy = 0.82 + rng.Float64()*0.08
			w.Speed = 1.0 + rng.Float64()*1.0
		}
		pop.Workers = append(pop.Workers, w)
	}
	return pop
}

// Filter returns the sub-population whose country is not in excluded.
// This is Experiment 2's crude-but-effective country filter.
func (p *Population) Filter(excluded []string) *Population {
	bad := make(map[string]bool, len(excluded))
	for _, c := range excluded {
		bad[c] = true
	}
	out := &Population{}
	for _, w := range p.Workers {
		if !bad[w.Country] {
			out.Workers = append(out.Workers, w)
		}
	}
	return out
}

// Countries returns the distinct country codes present in the population.
func (p *Population) Countries() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range p.Workers {
		if !seen[w.Country] {
			seen[w.Country] = true
			out = append(out, w.Country)
		}
	}
	return out
}
