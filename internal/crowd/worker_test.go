package crowd

import (
	"math/rand"
	"testing"
)

func TestNewPopulationComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := NewPopulation(PopulationConfig{Workers: 100, SpammerFraction: 0.3, LookupFraction: 0.1}, rng)
	if len(pop.Workers) != 100 {
		t.Fatalf("workers = %d", len(pop.Workers))
	}
	counts := map[Archetype]int{}
	for _, w := range pop.Workers {
		counts[w.Archetype]++
	}
	if counts[Spammer] != 30 || counts[Lookup] != 10 || counts[Honest] != 60 {
		t.Fatalf("composition = %v", counts)
	}
}

func TestNewPopulationPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPopulation(PopulationConfig{}, rand.New(rand.NewSource(1)))
}

func TestSpammersLiveInSpammerCountries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pop := NewPopulation(PopulationConfig{Workers: 50, SpammerFraction: 0.5}, rng)
	for _, w := range pop.Workers {
		isSpamCountry := w.Country == "ZZ" || w.Country == "YY"
		if (w.Archetype == Spammer) != isSpamCountry {
			t.Fatalf("worker %d: archetype %v in country %s", w.ID, w.Archetype, w.Country)
		}
	}
	filtered := pop.Filter([]string{"ZZ", "YY"})
	for _, w := range filtered.Workers {
		if w.Archetype == Spammer {
			t.Fatal("country filter must remove all spammers")
		}
	}
	if len(filtered.Workers) != 25 {
		t.Fatalf("filtered size = %d", len(filtered.Workers))
	}
}

func TestHonestWorkerAdmitsIgnorance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := &Worker{Archetype: Honest, KnowRate: 0.25, Accuracy: 0.9}
	item := Item{ID: 1, Truth: true, Popularity: 1.0}
	dontKnow := 0
	n := 10000
	for i := 0; i < n; i++ {
		if w.Judge(item, true, rng) == DontKnow {
			dontKnow++
		}
	}
	rate := float64(dontKnow) / float64(n)
	if rate < 0.70 || rate > 0.80 {
		t.Fatalf("dont-know rate = %v, want ≈ 0.75", rate)
	}
}

func TestHonestWorkerIsAccurateWhenKnowing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := &Worker{Archetype: Honest, KnowRate: 1.0, Accuracy: 0.9}
	item := Item{ID: 1, Truth: true, Popularity: 1.0}
	correct, answered := 0, 0
	for i := 0; i < 10000; i++ {
		switch w.Judge(item, true, rng) {
		case Positive:
			correct++
			answered++
		case Negative:
			answered++
		}
	}
	acc := float64(correct) / float64(answered)
	if acc < 0.87 || acc > 0.93 {
		t.Fatalf("accuracy = %v, want ≈ 0.9", acc)
	}
}

func TestAmbiguityDegradesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := &Worker{Archetype: Honest, KnowRate: 1.0, Accuracy: 1.0}
	hard := Item{ID: 1, Truth: true, Popularity: 1, Ambiguity: 0.4}
	correct := 0
	for i := 0; i < 10000; i++ {
		if w.Judge(hard, true, rng) == Positive {
			correct++
		}
	}
	acc := float64(correct) / 10000
	if acc < 0.57 || acc > 0.63 {
		t.Fatalf("ambiguous accuracy = %v, want ≈ 0.6", acc)
	}
}

func TestSpammerClaimsToKnowEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := &Worker{Archetype: Spammer, PositiveBias: 0.56}
	item := Item{ID: 1, Truth: false, Popularity: 0.05} // obscure movie
	dontKnow, positive, total := 0, 0, 20000
	for i := 0; i < total; i++ {
		switch w.Judge(item, true, rng) {
		case DontKnow:
			dontKnow++
		case Positive:
			positive++
		}
	}
	claimed := 1 - float64(dontKnow)/float64(total)
	if claimed < 0.92 || claimed > 0.96 {
		t.Fatalf("claimed coverage = %v, want ≈ 0.94", claimed)
	}
	posRate := float64(positive) / float64(total-dontKnow)
	if posRate < 0.52 || posRate > 0.60 {
		t.Fatalf("positive rate = %v, want ≈ 0.56", posRate)
	}
}

func TestLookupWorkerAnswersEverythingAccurately(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := &Worker{Archetype: Lookup, Accuracy: 0.95}
	item := Item{ID: 1, Truth: true, Popularity: 0.01}
	correct := 0
	for i := 0; i < 10000; i++ {
		ans := w.Judge(item, true, rng)
		if ans == DontKnow {
			t.Fatal("lookup workers never answer dont-know")
		}
		if ans == Positive {
			correct++
		}
	}
	if acc := float64(correct) / 10000; acc < 0.92 || acc > 0.97 {
		t.Fatalf("lookup accuracy = %v", acc)
	}
}

func TestForcedAnswerWithoutDontKnowOption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := &Worker{Archetype: Honest, KnowRate: 0.0, Accuracy: 0.9}
	item := Item{ID: 1, Truth: true, Popularity: 1}
	pos := 0
	for i := 0; i < 10000; i++ {
		ans := w.Judge(item, false, rng)
		if ans == DontKnow {
			t.Fatal("dont-know must not appear when the option is removed")
		}
		if ans == Positive {
			pos++
		}
	}
	rate := float64(pos) / 10000
	if rate < 0.47 || rate > 0.53 {
		t.Fatalf("forced-guess positive rate = %v, want ≈ 0.5", rate)
	}
}

func TestArchetypeAndJudgmentStrings(t *testing.T) {
	if Honest.String() != "honest" || Spammer.String() != "spammer" || Lookup.String() != "lookup" {
		t.Fatal("archetype strings wrong")
	}
	if Positive.String() != "positive" || Negative.String() != "negative" || DontKnow.String() != "dont-know" {
		t.Fatal("judgment strings wrong")
	}
}

func TestPopulationCountries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop := NewPopulation(PopulationConfig{Workers: 40, SpammerFraction: 0.5}, rng)
	countries := pop.Countries()
	if len(countries) < 3 {
		t.Fatalf("countries = %v", countries)
	}
	seen := map[string]bool{}
	for _, c := range countries {
		if seen[c] {
			t.Fatalf("duplicate country %s", c)
		}
		seen[c] = true
	}
	if !seen["ZZ"] && !seen["YY"] {
		t.Fatal("spammer countries missing")
	}
}
