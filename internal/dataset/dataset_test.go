package dataset

import (
	"math"
	"testing"

	"crowddb/internal/eval"
	"crowddb/internal/space"
	"crowddb/internal/vecmath"
)

func tinyMovies(t *testing.T) *Universe {
	t.Helper()
	u, err := Generate(Movies(ScaleTiny, 1))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestGenerateValidation(t *testing.T) {
	bad := Movies(ScaleTiny, 1)
	bad.Items = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero items must fail")
	}
	bad = Movies(ScaleTiny, 1)
	bad.Categories = nil
	if _, err := Generate(bad); err == nil {
		t.Fatal("no categories must fail")
	}
	bad = Movies(ScaleTiny, 1)
	bad.Categories = []CategorySpec{{Name: "X", Rate: 1.5}}
	if _, err := Generate(bad); err == nil {
		t.Fatal("rate out of range must fail")
	}
	bad = Movies(ScaleTiny, 1)
	bad.Items = 5 // fewer than the named movies
	if _, err := Generate(bad); err == nil {
		t.Fatal("named groups exceeding items must fail")
	}
	bad = Movies(ScaleTiny, 1)
	bad.RatingMax = 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("rating scale < 2 must fail")
	}
}

func TestUniverseShape(t *testing.T) {
	u := tinyMovies(t)
	if len(u.Items) != ScaleTiny.Items {
		t.Fatalf("items = %d", len(u.Items))
	}
	if len(u.Categories) != len(MovieGenres) {
		t.Fatalf("categories = %d", len(u.Categories))
	}
	if u.Ratings == nil || len(u.Ratings.Ratings) == 0 {
		t.Fatal("no ratings generated")
	}
	if err := u.Ratings.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every item has metadata.
	for _, it := range u.Items {
		if it.Name == "" || it.Year < 1900 || it.Country == "" || it.Director == "" || len(it.Actors) == 0 {
			t.Fatalf("incomplete metadata: %+v", it)
		}
		if it.Popularity <= 0 || it.Popularity > 1 {
			t.Fatalf("popularity out of range: %v", it.Popularity)
		}
	}
}

func TestRatingsLookLikeStars(t *testing.T) {
	u := tinyMovies(t)
	for _, r := range u.Ratings.Ratings {
		if r.Score < 1 || r.Score > 5 || r.Score != float32(math.Trunc(float64(r.Score))) {
			t.Fatalf("score %v is not a 1..5 star value", r.Score)
		}
	}
	mean := u.Ratings.Mean()
	if mean < 2.5 || mean > 4.5 {
		t.Fatalf("mean rating = %v, implausible", mean)
	}
}

func TestCategoryRatesApproximateTargets(t *testing.T) {
	u := tinyMovies(t)
	for name, cat := range u.Categories {
		got := 0
		for _, v := range cat.Truth {
			if v {
				got++
			}
		}
		rate := float64(got) / float64(len(cat.Truth))
		if math.Abs(rate-cat.Spec.Rate) > 0.05 {
			t.Errorf("category %s rate = %.3f, target %.3f", name, rate, cat.Spec.Rate)
		}
	}
}

// Expert databases must land in the paper's quality band: individually
// imperfect (g-mean ≈ 0.91–0.95 vs the majority reference) but far better
// than chance.
func TestExpertGMeanBand(t *testing.T) {
	u, err := Generate(Movies(Scale{Items: 2000, Users: 100, RatingsPerUser: 5}, 2))
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, cat := range u.Categories {
		for e := range cat.Expert {
			c := eval.CompareLabels(cat.Expert[e], cat.Reference)
			all = append(all, c.GMean())
		}
	}
	mean, _ := eval.MeanStd(all)
	if mean < 0.87 || mean > 0.98 {
		t.Fatalf("mean expert g-mean = %.3f, want in [0.87, 0.98]", mean)
	}
}

func TestNamedGroupsShareNeighbourhoods(t *testing.T) {
	u := tinyMovies(t)
	rocky := u.FindItem("Rocky (1976)")
	rocky2 := u.FindItem("Rocky II (1979)")
	birds := u.FindItem("The Birds (1963)")
	if rocky < 0 || rocky2 < 0 || birds < 0 {
		t.Fatal("named movies missing")
	}
	same := vecmath.Dist(u.Latent.Row(rocky), u.Latent.Row(rocky2))
	diff := vecmath.Dist(u.Latent.Row(rocky), u.Latent.Row(birds))
	if same >= diff {
		t.Fatalf("franchise distance %v must be below cross-style %v", same, diff)
	}
	if u.FindItem("No Such Movie") != -1 {
		t.Fatal("FindItem must return -1 for unknown names")
	}
}

func TestNamedItemsAreFamous(t *testing.T) {
	u := tinyMovies(t)
	for i := 0; i < 18; i++ { // 3 groups × 6 names
		if u.Items[i].Popularity < 0.8 {
			t.Fatalf("named item %q popularity %v, want famous", u.Items[i].Name, u.Items[i].Popularity)
		}
	}
}

func TestCrowdItems(t *testing.T) {
	u := tinyMovies(t)
	items, err := u.CrowdItems("Comedy")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(u.Items) {
		t.Fatal("length mismatch")
	}
	cat := u.Categories["Comedy"]
	agree := 0
	for i, it := range items {
		if it.Truth == cat.Reference[i] {
			agree++
		}
		if it.Ambiguity < 0 || it.Ambiguity > 0.35 {
			t.Fatalf("ambiguity %v out of range", it.Ambiguity)
		}
	}
	// Perception mostly follows the reference but systematically diverges
	// near category boundaries (that is the point).
	rate := float64(agree) / float64(len(items))
	if rate < 0.80 || rate == 1.0 {
		t.Fatalf("perceived/reference agreement = %.3f, want in [0.80, 1)", rate)
	}
	// Determinism: a second call yields identical perceived labels.
	again, err := u.CrowdItems("Comedy")
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i].Truth != again[i].Truth {
			t.Fatal("CrowdItems must be deterministic")
		}
	}
	if _, err := u.CrowdItems("NoSuch"); err == nil {
		t.Fatal("unknown category must fail")
	}
}

func TestReferenceMap(t *testing.T) {
	u := tinyMovies(t)
	m, err := u.ReferenceMap("Horror")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(u.Items) {
		t.Fatal("length mismatch")
	}
	if _, err := u.ReferenceMap("NoSuch"); err == nil {
		t.Fatal("unknown category must fail")
	}
}

func TestFactualCategoriesUncorrelatedWithGeometry(t *testing.T) {
	u, err := Generate(BoardGames(ScaleTiny, 3))
	if err != nil {
		t.Fatal(err)
	}
	cat := u.Categories["Modular Board"]
	if cat.Spec.Kind != Factual {
		t.Fatal("Modular Board should be factual")
	}
	// Correlate the label with each latent coordinate: should be noise.
	n := len(cat.Truth)
	labels := make([]float64, n)
	for i, v := range cat.Truth {
		if v {
			labels[i] = 1
		}
	}
	for k := 0; k < u.Config.TrueDims; k++ {
		coord := make([]float64, n)
		for i := 0; i < n; i++ {
			coord[i] = u.Latent.At(i, k)
		}
		// Items are clustered, so coordinates are not i.i.d. across
		// items; allow sampling noise but reject real coupling.
		if r := math.Abs(vecmath.Pearson(labels, coord)); r > 0.25 {
			t.Fatalf("factual label correlates with latent dim %d (r=%.3f)", k, r)
		}
	}
}

func TestPerceptualCategoriesFollowGeometry(t *testing.T) {
	u := tinyMovies(t)
	cat := u.Categories["Comedy"]
	n := len(cat.Truth)
	labels := make([]float64, n)
	for i, v := range cat.Truth {
		if v {
			labels[i] = 1
		}
	}
	// At least one latent dimension must correlate clearly.
	best := 0.0
	for k := 0; k < u.Config.TrueDims; k++ {
		coord := make([]float64, n)
		for i := 0; i < n; i++ {
			coord[i] = u.Latent.At(i, k)
		}
		if r := math.Abs(vecmath.Pearson(labels, coord)); r > best {
			best = r
		}
	}
	if best < 0.2 {
		t.Fatalf("perceptual label correlates with no latent dim (best r=%.3f)", best)
	}
}

func TestDocumentsShape(t *testing.T) {
	u := tinyMovies(t)
	docs := u.Documents(4)
	if len(docs) != len(u.Items) {
		t.Fatal("one document per item required")
	}
	for i, d := range docs {
		if len(d) < 10 {
			t.Fatalf("document %d suspiciously short: %v", i, d)
		}
	}
	// Determinism.
	again := u.Documents(4)
	for i := range docs {
		if len(docs[i]) != len(again[i]) {
			t.Fatal("Documents must be deterministic per seed")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u1 := tinyMovies(t)
	u2 := tinyMovies(t)
	if len(u1.Ratings.Ratings) != len(u2.Ratings.Ratings) {
		t.Fatal("rating counts differ across equal seeds")
	}
	for i := range u1.Ratings.Ratings {
		if u1.Ratings.Ratings[i] != u2.Ratings.Ratings[i] {
			t.Fatal("ratings differ across equal seeds")
		}
	}
	for name, c1 := range u1.Categories {
		c2 := u2.Categories[name]
		for i := range c1.Reference {
			if c1.Reference[i] != c2.Reference[i] {
				t.Fatal("references differ across equal seeds")
			}
		}
	}
}

func TestDomainPresets(t *testing.T) {
	for _, cfg := range []Config{
		Movies(ScaleTiny, 1), Restaurants(ScaleTiny, 1), BoardGames(ScaleTiny, 1),
	} {
		if err := cfg.validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", cfg.Name, err)
		}
	}
	if len(BoardGameCategories) != 20 {
		t.Fatalf("board games need 20 categories (paper), got %d", len(BoardGameCategories))
	}
	if len(RestaurantCategories) != 10 {
		t.Fatalf("restaurants need 10 categories (paper), got %d", len(RestaurantCategories))
	}
	bg, err := Generate(BoardGames(ScaleTiny, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bg.Ratings.Ratings {
		if r.Score < 1 || r.Score > 10 {
			t.Fatalf("BGG score %v outside 1..10", r.Score)
		}
	}
}

// End-to-end sanity: a space trained on generated ratings recovers the
// latent geometry — learned item–item distances correlate with latent
// distances (this is the property every downstream experiment relies on;
// the paper's §4.2 user study measures the same thing against human
// consensus and reports r = 0.52).
func TestSpaceTrainedOnUniverseRecoversGeometry(t *testing.T) {
	u := tinyMovies(t)
	cfg := space.DefaultConfig()
	cfg.Dims = 12
	cfg.Epochs = 30
	model, _, err := space.TrainEuclidean(u.Ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.FromModel(model)
	var learned, latent []float64
	for i := 0; i < 120; i++ {
		for j := i + 1; j < 120; j++ {
			learned = append(learned, sp.Distance(i, j))
			latent = append(latent, vecmath.Dist(u.Latent.Row(i), u.Latent.Row(j)))
		}
	}
	if r := vecmath.Pearson(learned, latent); r < 0.35 {
		t.Fatalf("learned/latent distance correlation = %.3f, want >= 0.35", r)
	}
}

func TestCategoryKindString(t *testing.T) {
	if Perceptual.String() != "perceptual" || Factual.String() != "factual" {
		t.Fatal("kind strings wrong")
	}
}

func TestCategoryNamesOrder(t *testing.T) {
	u := tinyMovies(t)
	names := u.CategoryNames()
	if len(names) != len(MovieGenres) {
		t.Fatalf("names = %v", names)
	}
	for i, spec := range MovieGenres {
		if names[i] != spec.Name {
			t.Fatalf("declaration order broken: %v", names)
		}
	}
}
