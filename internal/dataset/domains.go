package dataset

// Scale selects how large a generated universe is. The paper's full data
// sizes (10,562 movies × 480k users × 86M ratings) are reproducible in
// shape at a fraction of the volume; experiments accept any scale and the
// benchmarks default to ScaleTiny so `go test -bench` stays fast.
type Scale struct {
	Items          int
	Users          int
	RatingsPerUser int
}

// Predefined scales.
var (
	// ScaleTiny is for unit tests and CI benchmarks (seconds).
	ScaleTiny = Scale{Items: 300, Users: 1000, RatingsPerUser: 90}
	// ScaleSmall is the default for the experiments binary (tens of
	// seconds). The per-item rating volume (~300) is what makes learned
	// neighbourhoods crisp; the paper's Netflix corpus had ~5,800
	// ratings per movie.
	ScaleSmall = Scale{Items: 1200, Users: 3000, RatingsPerUser: 150}
	// ScaleMedium approaches the paper's movie count at reduced user
	// volume (minutes).
	ScaleMedium = Scale{Items: 4000, Users: 10000, RatingsPerUser: 150}
	// ScalePaper matches the paper's item count for the movie domain.
	ScalePaper = Scale{Items: 10562, Users: 40000, RatingsPerUser: 200}
)

// MovieGenres are the six genres shared by all three expert databases
// (paper §4.3), with base rates close to the reference data set's
// (30.1% comedies; horror ≈ 10%).
var MovieGenres = []CategorySpec{
	{Name: "Comedy", Kind: Perceptual, Rate: 0.301},
	{Name: "Documentary", Kind: Perceptual, Rate: 0.07},
	{Name: "Drama", Kind: Perceptual, Rate: 0.42},
	{Name: "Family", Kind: Perceptual, Rate: 0.12},
	{Name: "Horror", Kind: Perceptual, Rate: 0.10},
	{Name: "Romance", Kind: Perceptual, Rate: 0.17},
}

// Table2Groups are the franchise/style neighbourhoods of the paper's
// Table 2; each group shares a latent anchor so a faithful perceptual
// space must reunite them.
var Table2Groups = []NamedGroup{
	{Names: []string{
		"Rocky (1976)", "Rocky II (1979)", "Rocky III (1982)",
		"Hoosiers (1986)", "The Natural (1984)", "The Karate Kid (1984)",
	}},
	{Names: []string{
		"Dirty Dancing (1987)", "Pretty Woman (1990)", "Footloose (1984)",
		"Grease (1978)", "Ghost (1990)", "Flashdance (1983)",
	}},
	{Names: []string{
		"The Birds (1963)", "Psycho (1960)", "Vertigo (1958)",
		"Rear Window (1954)", "North By Northwest (1959)", "Dial M for Murder (1954)",
	}},
}

// Movies returns the movie-domain configuration: Netflix-style 5-star
// ratings, three expert databases, six shared genres, and the Table 2
// named franchises.
func Movies(s Scale, seed int64) Config {
	return Config{
		Name:               "movies",
		Items:              s.Items,
		Users:              s.Users,
		RatingsPerUser:     s.RatingsPerUser,
		TrueDims:           8,
		Clusters:           10,
		RatingMax:          5,
		Categories:         MovieGenres,
		Experts:            3,
		ExpertBaseFlip:     0.015,
		ExpertBoundaryFlip: 0.30,
		NamedGroups:        Table2Groups,
		Seed:               seed,
	}
}

// RestaurantCategories mirrors Table 5's Yelp categories. Most are
// perceptual; a couple are kept factual-leaning to exercise the contrast.
var RestaurantCategories = []CategorySpec{
	{Name: "Ambience: Trendy", Kind: Perceptual, Rate: 0.18},
	{Name: "Attire: Dressy", Kind: Perceptual, Rate: 0.12},
	{Name: "Category: Fast Food", Kind: Perceptual, Rate: 0.15},
	{Name: "Good For Kids", Kind: Perceptual, Rate: 0.35},
	{Name: "Noise Level: Very Loud", Kind: Perceptual, Rate: 0.10},
	{Name: "Romantic", Kind: Perceptual, Rate: 0.14},
	{Name: "Casual", Kind: Perceptual, Rate: 0.45},
	{Name: "Has Parking", Kind: Factual, Rate: 0.40},
	{Name: "Open Late", Kind: Factual, Rate: 0.25},
	{Name: "Upscale", Kind: Perceptual, Rate: 0.10},
}

// Restaurants returns the Yelp-like domain of Table 5 (the paper crawled
// 3,811 San Francisco restaurants, 128k users, 626k ratings).
func Restaurants(s Scale, seed int64) Config {
	return Config{
		Name:               "restaurants",
		Items:              s.Items,
		Users:              s.Users,
		RatingsPerUser:     s.RatingsPerUser,
		TrueDims:           6,
		Clusters:           8,
		RatingMax:          5,
		Categories:         RestaurantCategories,
		Experts:            1, // a single editorial source, as on yelp.com
		ExpertBaseFlip:     0.03,
		ExpertBoundaryFlip: 0.25,
		Seed:               seed,
	}
}

// BoardGameCategories mirrors Table 6's BoardGameGeek categories: truly
// perceptual ones ("Party Game") extract well; mechanical/factual ones
// ("Modular Board") do not.
var BoardGameCategories = []CategorySpec{
	{Name: "Collectible Components", Kind: Perceptual, Rate: 0.08},
	{Name: "Children's Game", Kind: Perceptual, Rate: 0.12},
	{Name: "Party Game", Kind: Perceptual, Rate: 0.15},
	{Name: "Modular Board", Kind: Factual, Rate: 0.18},
	{Name: "Route/Network Building", Kind: Perceptual, Rate: 0.10},
	{Name: "Worker Placement", Kind: Perceptual, Rate: 0.09},
	{Name: "Deck Building", Kind: Perceptual, Rate: 0.07},
	{Name: "Dexterity", Kind: Perceptual, Rate: 0.06},
	{Name: "Cooperative", Kind: Perceptual, Rate: 0.11},
	{Name: "Wargame", Kind: Perceptual, Rate: 0.16},
	{Name: "Abstract Strategy", Kind: Perceptual, Rate: 0.09},
	{Name: "Dice Rolling", Kind: Factual, Rate: 0.30},
	{Name: "Tile Placement", Kind: Factual, Rate: 0.14},
	{Name: "Economic", Kind: Perceptual, Rate: 0.13},
	{Name: "Fantasy Theme", Kind: Perceptual, Rate: 0.20},
	{Name: "Sci-Fi Theme", Kind: Perceptual, Rate: 0.12},
	{Name: "Horror Theme", Kind: Perceptual, Rate: 0.06},
	{Name: "Trivia", Kind: Perceptual, Rate: 0.05},
	{Name: "Bluffing", Kind: Perceptual, Rate: 0.08},
	{Name: "Legacy", Kind: Factual, Rate: 0.03},
}

// BoardGames returns the BoardGameGeek-like domain of Table 6 (the paper
// crawled 32,337 games, 73k users, 3.5M ratings; BGG rates on a 10 scale).
func BoardGames(s Scale, seed int64) Config {
	return Config{
		Name:               "boardgames",
		Items:              s.Items,
		Users:              s.Users,
		RatingsPerUser:     s.RatingsPerUser,
		TrueDims:           7,
		Clusters:           9,
		RatingMax:          10,
		Categories:         BoardGameCategories,
		Experts:            1,
		ExpertBaseFlip:     0.03,
		ExpertBoundaryFlip: 0.25,
		Seed:               seed,
	}
}
