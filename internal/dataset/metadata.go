package dataset

import (
	"fmt"
	"math/rand"
)

// Vocabulary pools for generated factual metadata. The metadata is
// deliberately only weakly coupled to the latent perceptual geometry: the
// paper's point (§4.3) is that factual attributes do not contain perceptual
// judgments, so the LSI baseline must fail to extract them.
var (
	titleAdjectives = []string{
		"Lost", "Silent", "Golden", "Broken", "Midnight", "Crimson",
		"Hidden", "Final", "Eternal", "Distant", "Burning", "Frozen",
		"Savage", "Gentle", "Electric", "Hollow", "Scarlet", "Iron",
	}
	titleNouns = []string{
		"River", "Empire", "Shadow", "Garden", "Highway", "Station",
		"Harbor", "Mountain", "Letter", "Promise", "Voyage", "Castle",
		"Orchard", "Mirror", "Storm", "Canyon", "Lantern", "Bridge",
	}
	countries = []string{
		"us", "uk", "fr", "de", "it", "jp", "in", "ca", "es", "se",
	}
	plotWords = []string{
		"story", "life", "family", "city", "man", "woman", "journey",
		"secret", "past", "night", "world", "house", "friend", "father",
		"mother", "town", "year", "dream", "truth", "war", "home",
		"stranger", "memory", "road", "heart", "child", "game", "letter",
		"summer", "winter", "band", "school", "team", "crime", "case",
		"doctor", "artist", "writer", "detective", "teacher", "village",
	}
	// genreHints maps category names to a weakly-linked vocabulary token.
	// Hints are injected with low probability so the metadata space carries
	// a trace of signal — enough to overfit on, not enough to classify by.
	genreHints = map[string]string{
		"Comedy":      "laugh",
		"Documentary": "archive",
		"Drama":       "tears",
		"Family":      "kids",
		"Horror":      "scream",
		"Romance":     "kiss",
	}
)

// fillMetadata assigns names, years, countries, directors and actors.
func fillMetadata(u *Universe, rng *rand.Rand) {
	cfg := u.Config
	nDirectors := cfg.Items/15 + 2
	nActors := cfg.Items/4 + 5

	for i := range u.Items {
		it := &u.Items[i]
		if it.Name == "" {
			adj := titleAdjectives[rng.Intn(len(titleAdjectives))]
			noun := titleNouns[rng.Intn(len(titleNouns))]
			it.Name = fmt.Sprintf("The %s %s #%d", adj, noun, i)
		}
		it.Year = 1935 + rng.Intn(76)
		it.Country = countries[rng.Intn(len(countries))]
		it.Director = fmt.Sprintf("director_%d", rng.Intn(nDirectors))
		nCast := 2 + rng.Intn(3)
		for a := 0; a < nCast; a++ {
			it.Actors = append(it.Actors, fmt.Sprintf("actor_%d", rng.Intn(nActors)))
		}
	}
}

// Documents renders one metadata document per item for the LSI baseline:
// title, plot keywords, cast, director, year bucket and country, mirroring
// the attribute list of §4.3. Category hints leak in with low probability
// to model the faint perceptual traces real metadata carries.
func (u *Universe) Documents(seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]string, len(u.Items))
	for i, it := range u.Items {
		var doc []string
		// Title words (lowercased naive split).
		for _, tok := range tokenizeName(it.Name) {
			doc = append(doc, tok)
		}
		// Plot keywords.
		nPlot := 8 + rng.Intn(10)
		for k := 0; k < nPlot; k++ {
			doc = append(doc, plotWords[rng.Intn(len(plotWords))])
		}
		// Weak category hints.
		for name, cat := range u.Categories {
			hint, ok := genreHints[name]
			if !ok || cat.Spec.Kind != Perceptual {
				continue
			}
			if cat.Reference[i] && rng.Float64() < 0.15 {
				doc = append(doc, hint)
			}
		}
		// Cast and crew.
		doc = append(doc, it.Director)
		doc = append(doc, it.Actors...)
		// Era bucket and country.
		doc = append(doc, fmt.Sprintf("era_%d", it.Year/10*10))
		doc = append(doc, "country_"+it.Country)
		docs[i] = doc
	}
	return docs
}

func tokenizeName(name string) []string {
	var out []string
	cur := make([]rune, 0, 16)
	flush := func() {
		if len(cur) > 0 {
			out = append(out, string(cur))
			cur = cur[:0]
		}
	}
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			cur = append(cur, r+('a'-'A'))
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur = append(cur, r)
		default:
			flush()
		}
	}
	flush()
	return out
}
