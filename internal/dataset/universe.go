// Package dataset generates the synthetic data universes that stand in for
// the paper's external resources: the Netflix Prize rating corpus, the
// IMDb/Netflix/RottenTomatoes expert genre databases, and the Yelp and
// BoardGameGeek crawls (see DESIGN.md §4 for the substitution argument).
//
// The generative model is the one the paper's method assumes holds in the
// real world: every item and every user occupies a point in a latent
// perceptual geometry; ratings fall off with item–user distance, carry
// item/user biases and noise, and are quantized to a star scale.
// Perceptual categories are regions of the latent geometry (so they are
// recoverable from rating behaviour); factual categories are independent
// of it (so they are not — the contrast Tables 5–6 demonstrate). Expert
// databases are noisy views of the latent truth whose disagreement
// concentrates near category boundaries, which reproduces the paper's
// imperfect 0.91–0.95 inter-expert g-means.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"crowddb/internal/crowd"
	"crowddb/internal/space"
	"crowddb/internal/vecmath"
)

// CategoryKind distinguishes perceptual from factual categories.
type CategoryKind uint8

const (
	// Perceptual categories live in the latent geometry: genre, mood,
	// "party game", "trendy ambience".
	Perceptual CategoryKind = iota
	// Factual categories are independent of perception: "modular board",
	// release-era flags. They cannot be extracted from rating behaviour.
	Factual
)

func (k CategoryKind) String() string {
	if k == Factual {
		return "factual"
	}
	return "perceptual"
}

// CategorySpec declares one binary category of a universe.
type CategorySpec struct {
	Name string
	Kind CategoryKind
	// Rate is the target fraction of items with the label (e.g. 0.301 for
	// the paper's comedy base rate).
	Rate float64
}

// NamedGroup pins a set of recognizable item names to a shared location in
// the latent space. The movie preset uses it to reproduce Table 2's
// franchise neighbourhoods (Rocky / Dirty Dancing / The Birds).
type NamedGroup struct {
	Names []string
}

// Config parameterizes universe generation.
type Config struct {
	Name           string
	Items          int
	Users          int
	RatingsPerUser int
	// TrueDims is the latent geometry's dimensionality.
	TrueDims int
	// Clusters is the number of latent item clusters (taste neighbourhoods).
	Clusters int
	// RatingMax is the star-scale maximum (5 for Netflix, 10 for IMDb).
	RatingMax int
	// Categories declares the binary attributes with ground truth.
	Categories []CategorySpec
	// Experts is the number of independent expert databases (3 for movies).
	Experts int
	// ExpertBaseFlip is each expert's label error rate far from category
	// boundaries; ExpertBoundaryFlip is the additional error rate at the
	// boundary (decaying with margin).
	ExpertBaseFlip     float64
	ExpertBoundaryFlip float64
	// NamedGroups seed famous items (see NamedGroup).
	NamedGroups []NamedGroup
	Seed        int64
}

func (c *Config) validate() error {
	if c.Items <= 0 || c.Users <= 0 {
		return fmt.Errorf("dataset: Items and Users must be positive (%d, %d)", c.Items, c.Users)
	}
	if c.RatingsPerUser <= 0 {
		return fmt.Errorf("dataset: RatingsPerUser must be positive")
	}
	if c.TrueDims <= 0 || c.Clusters <= 0 {
		return fmt.Errorf("dataset: TrueDims and Clusters must be positive")
	}
	if c.RatingMax < 2 {
		return fmt.Errorf("dataset: RatingMax must be at least 2")
	}
	if len(c.Categories) == 0 {
		return fmt.Errorf("dataset: at least one category required")
	}
	named := 0
	for _, g := range c.NamedGroups {
		named += len(g.Names)
	}
	if named > c.Items {
		return fmt.Errorf("dataset: %d named items exceed %d items", named, c.Items)
	}
	for _, cat := range c.Categories {
		if cat.Rate <= 0 || cat.Rate >= 1 {
			return fmt.Errorf("dataset: category %q rate %g outside (0,1)", cat.Name, cat.Rate)
		}
	}
	return nil
}

// Item is one generated catalog entry with factual metadata.
type Item struct {
	ID       int
	Name     string
	Year     int
	Country  string
	Director string
	Actors   []string
	// Popularity in (0, 1] drives both rating volume and how likely crowd
	// workers are to know the item.
	Popularity float64
}

// Category is one generated category with all label views.
type Category struct {
	Spec CategorySpec
	// Truth is the latent ground truth (never directly observable in the
	// paper's setting; used for calibration tests only).
	Truth []bool
	// Margin is each item's distance from the category boundary, in
	// score-standard-deviation units; small margin = genuinely ambiguous.
	Margin []float64
	// Expert[e] is expert database e's label vector.
	Expert [][]bool
	// Reference is the majority vote over experts — the paper's ground
	// truth for all experiments.
	Reference []bool
}

// Universe is a fully generated synthetic domain.
type Universe struct {
	Config     Config
	Items      []Item
	Latent     *vecmath.Matrix // latent item positions (test/calibration only)
	Categories map[string]*Category
	Ratings    *space.Dataset
	// UserLatent retains user positions for diagnostics.
	UserLatent *vecmath.Matrix
}

// Generate builds a universe from cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Universe, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	u := &Universe{Config: cfg, Categories: map[string]*Category{}}

	// --- latent geometry -------------------------------------------------
	centers := vecmath.NewMatrix(cfg.Clusters, cfg.TrueDims)
	centers.FillRandom(rng, 2.0)

	u.Latent = vecmath.NewMatrix(cfg.Items, cfg.TrueDims)
	itemBias := make([]float64, cfg.Items)

	// Named groups first: each group shares an anchor.
	idx := 0
	for _, g := range cfg.NamedGroups {
		anchor := make([]float64, cfg.TrueDims)
		for k := range anchor {
			anchor[k] = (rng.Float64()*2 - 1) * 2.2
		}
		for _, name := range g.Names {
			row := u.Latent.Row(idx)
			for k := range row {
				row[k] = anchor[k] + rng.NormFloat64()*0.15
			}
			u.Items = append(u.Items, Item{ID: idx, Name: name})
			idx++
		}
	}
	// Remaining items from the cluster mixture.
	for ; idx < cfg.Items; idx++ {
		c := rng.Intn(cfg.Clusters)
		row := u.Latent.Row(idx)
		copy(row, centers.Row(c))
		for k := range row {
			row[k] += rng.NormFloat64() * 0.55
		}
		u.Items = append(u.Items, Item{ID: idx})
	}
	for i := range itemBias {
		itemBias[i] = rng.NormFloat64() * 0.35
	}

	// --- factual metadata -------------------------------------------------
	fillMetadata(u, rng)

	// --- popularity: Zipf-ish with named items famous ---------------------
	namedCount := 0
	for _, g := range cfg.NamedGroups {
		namedCount += len(g.Names)
	}
	ranks := rng.Perm(cfg.Items)
	for i := 0; i < cfg.Items; i++ {
		if i < namedCount {
			u.Items[i].Popularity = 0.85 + rng.Float64()*0.15
			continue
		}
		r := float64(ranks[i]+1) / float64(cfg.Items) // uniform (0,1]
		u.Items[i].Popularity = vecmath.Clamp(math.Pow(r, 1.8)+0.05, 0.05, 1)
	}

	// --- categories --------------------------------------------------------
	for _, spec := range cfg.Categories {
		cat, err := generateCategory(u, spec, rng)
		if err != nil {
			return nil, err
		}
		u.Categories[spec.Name] = cat
	}

	// --- ratings ------------------------------------------------------------
	generateRatings(u, itemBias, rng)
	return u, nil
}

func generateCategory(u *Universe, spec CategorySpec, rng *rand.Rand) (*Category, error) {
	cfg := u.Config
	n := cfg.Items
	cat := &Category{Spec: spec, Truth: make([]bool, n), Margin: make([]float64, n)}

	switch spec.Kind {
	case Perceptual:
		// Category = half-space of a random direction, thresholded at the
		// quantile matching the target rate. Using the latent geometry
		// makes the label recoverable from rating behaviour.
		w := make([]float64, cfg.TrueDims)
		for k := range w {
			w[k] = rng.NormFloat64()
		}
		vecmath.Normalize(w)
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = vecmath.Dot(u.Latent.Row(i), w)
		}
		thr := quantile(scores, 1-spec.Rate)
		std := math.Sqrt(vecmath.Variance(scores))
		if std == 0 {
			std = 1
		}
		for i := 0; i < n; i++ {
			cat.Truth[i] = scores[i] > thr
			cat.Margin[i] = math.Abs(scores[i]-thr) / std
		}
	case Factual:
		// Independent of the latent geometry: a deterministic function of
		// factual metadata (publication era + a random salt), so experts
		// agree nearly perfectly and rating behaviour carries no signal.
		for i := 0; i < n; i++ {
			cat.Truth[i] = rng.Float64() < spec.Rate
			cat.Margin[i] = 3.0 // far from any perceptual boundary
		}
	default:
		return nil, fmt.Errorf("dataset: unknown category kind %v", spec.Kind)
	}

	// Expert databases: flip labels with probability base + boundary·e^(−3m).
	experts := cfg.Experts
	if experts <= 0 {
		experts = 3
	}
	for e := 0; e < experts; e++ {
		labels := make([]bool, n)
		for i := 0; i < n; i++ {
			p := cfg.ExpertBaseFlip + cfg.ExpertBoundaryFlip*math.Exp(-3*cat.Margin[i])
			labels[i] = cat.Truth[i]
			if rng.Float64() < p {
				labels[i] = !labels[i]
			}
		}
		cat.Expert = append(cat.Expert, labels)
	}

	// Reference = majority vote over experts.
	cat.Reference = make([]bool, n)
	for i := 0; i < n; i++ {
		votes := 0
		for e := range cat.Expert {
			if cat.Expert[e][i] {
				votes++
			}
		}
		cat.Reference[i] = votes*2 > len(cat.Expert)
	}
	return cat, nil
}

func generateRatings(u *Universe, itemBias []float64, rng *rand.Rand) {
	cfg := u.Config
	u.UserLatent = vecmath.NewMatrix(cfg.Users, cfg.TrueDims)
	u.UserLatent.FillRandom(rng, 2.0)
	userBias := make([]float64, cfg.Users)
	for i := range userBias {
		userBias[i] = rng.NormFloat64() * 0.3
	}

	// Popularity-weighted item sampling via the alias-free CDF method.
	cdf := make([]float64, cfg.Items)
	var total float64
	for i, it := range u.Items {
		total += it.Popularity
		cdf[i] = total
	}
	pickItem := func() int {
		x := rng.Float64() * total
		lo, hi := 0, cfg.Items-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Normalize the distance penalty by the empirical mean squared
	// item–user distance so that a typical pair loses ~30% of the scale
	// regardless of TrueDims; without this, high-dimensional geometries
	// would push every rating to the bottom of the scale.
	var meanD2 float64
	{
		samples := 0
		for s := 0; s < 2000; s++ {
			it := rng.Intn(cfg.Items)
			usr := rng.Intn(cfg.Users)
			meanD2 += vecmath.SqDist(u.Latent.Row(it), u.UserLatent.Row(usr))
			samples++
		}
		meanD2 /= float64(samples)
	}
	targetDrop := 0.30 * float64(cfg.RatingMax-1)
	alpha := targetDrop / meanD2
	// Center the scale so the mean rating lands near 72% of the maximum
	// (e.g. ≈3.6 stars of 5) after the average distance penalty.
	mu := float64(cfg.RatingMax)*0.72 + targetDrop

	var ratings []space.Rating
	for usr := 0; usr < cfg.Users; usr++ {
		// Rating counts vary ±50% around the mean.
		n := int(float64(cfg.RatingsPerUser) * (0.5 + rng.Float64()))
		if n < 1 {
			n = 1
		}
		seen := map[int]bool{}
		for r := 0; r < n; r++ {
			it := pickItem()
			if seen[it] {
				continue
			}
			seen[it] = true
			d2 := vecmath.SqDist(u.Latent.Row(it), u.UserLatent.Row(usr))
			score := mu + itemBias[it] + userBias[usr] - alpha*d2 + rng.NormFloat64()*0.45
			stars := math.Round(vecmath.Clamp(score, 1, float64(cfg.RatingMax)))
			ratings = append(ratings, space.Rating{
				Item:  int32(it),
				User:  int32(usr),
				Score: float32(stars),
			})
		}
	}
	u.Ratings = &space.Dataset{Items: cfg.Items, Users: cfg.Users, Ratings: ratings}
}

// quantile returns the q-quantile (0..1) of xs by sorting a copy.
func quantile(xs []float64, q float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 0 {
		return 0
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// CrowdItems converts the universe's items into crowd-simulator items for
// the given category. The item's Truth is the *perceived* label: near the
// category boundary the crowd's perception systematically disagrees with
// the expert reference (deterministically per item), which is what caps
// honest-majority accuracy below 100% without inflating tie rates — the
// paper's Exp 2 stalls at 79.4% and Exp 3 at 93.5% for exactly this
// reason. Per-judgment ambiguity adds individual wobble on top.
func (u *Universe) CrowdItems(category string) ([]crowd.Item, error) {
	cat, ok := u.Categories[category]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown category %q", category)
	}
	rng := rand.New(rand.NewSource(u.Config.Seed ^ int64(len(category))<<32 ^ 0x5eed))
	out := make([]crowd.Item, len(u.Items))
	for i, it := range u.Items {
		perceived := cat.Reference[i]
		pFlip := 0.30 * math.Exp(-2.0*cat.Margin[i])
		if rng.Float64() < pFlip {
			perceived = !perceived
		}
		amb := 0.25 * math.Exp(-2.5*cat.Margin[i])
		out[i] = crowd.Item{
			ID:         it.ID,
			Truth:      perceived,
			Popularity: it.Popularity,
			Ambiguity:  vecmath.Clamp(amb, 0, 0.35),
		}
	}
	return out, nil
}

// ReferenceMap returns the reference labels of a category as an ID-keyed
// map, the shape the crowd vote-accuracy helpers expect.
func (u *Universe) ReferenceMap(category string) (map[int]bool, error) {
	cat, ok := u.Categories[category]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown category %q", category)
	}
	m := make(map[int]bool, len(cat.Reference))
	for i, v := range cat.Reference {
		m[i] = v
	}
	return m, nil
}

// CategoryNames returns the configured category names in declaration order.
func (u *Universe) CategoryNames() []string {
	out := make([]string, 0, len(u.Config.Categories))
	for _, c := range u.Config.Categories {
		out = append(out, c.Name)
	}
	return out
}

// FindItem returns the index of the item with the given name, or -1.
func (u *Universe) FindItem(name string) int {
	for i, it := range u.Items {
		if it.Name == name {
			return i
		}
	}
	return -1
}
