package engine

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// EXPLAIN ANALYZE coverage. The acceptance bar: the root operator's
// "actual rows" annotation must exactly match the row count the same
// query returns when run for real — at dop=1 (every operator traced)
// and dop=8 (morsel chains under Gather carry no per-op iterator, but
// the root always does).

var actualRowsRE = regexp.MustCompile(`actual rows=(\d+)`)

// flattenPlan flattens an EXPLAIN result (one text row per line) for
// substring checks.
func flattenPlan(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("explain columns = %v", res.Columns)
	}
	var lines []string
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		lines = append(lines, s)
	}
	return strings.Join(lines, "\n")
}

// rootActualRows parses the root line's actual-rows annotation.
func rootActualRows(t *testing.T, res *Result) int {
	t.Helper()
	root, _ := res.Rows[0][0].AsText()
	m := actualRowsRE.FindStringSubmatch(root)
	if m == nil {
		t.Fatalf("root line missing actual rows: %q", root)
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

func TestExplainAnalyzeRootRowsMatchRealQuery(t *testing.T) {
	e := parallelEngine(t)
	queries := []string{
		`SELECT id, score FROM wide WHERE score > 899.0`,
		`SELECT id FROM wide ORDER BY score LIMIT 7`,
		`SELECT grp, COUNT(*) c FROM wide GROUP BY grp`,
		`SELECT w.id, d.label FROM wide w JOIN dims d ON w.k = d.k WHERE w.grp = 2`,
	}
	for _, dop := range []int{1, 8} {
		e.SetExecWorkers(dop)
		for _, sql := range queries {
			real := mustExec(t, e, sql)
			an := mustExec(t, e, "EXPLAIN ANALYZE "+sql)
			if got, want := rootActualRows(t, an), len(real.Rows); got != want {
				t.Errorf("dop=%d %s: root actual rows=%d, real query returned %d\n%s",
					dop, sql, got, want, flattenPlan(t, an))
			}
			if !strings.Contains(flattenPlan(t, an), "time=") {
				t.Errorf("dop=%d %s: missing wall-time annotation\n%s", dop, sql, flattenPlan(t, an))
			}
		}
	}
	e.SetExecWorkers(1)
}

// At dop=1 every operator has its own iterator, so every plan line must
// carry actuals — and intermediate counts must be self-consistent: a
// Filter's input SeqScan reports the full table.
func TestExplainAnalyzeSerialAnnotatesEveryOperator(t *testing.T) {
	e := parallelEngine(t)
	e.SetExecWorkers(1)
	an := mustExec(t, e, `EXPLAIN ANALYZE SELECT id FROM wide WHERE grp = 1`)
	for _, row := range an.Rows {
		line, _ := row[0].AsText()
		if !actualRowsRE.MatchString(line) {
			t.Errorf("serial plan line missing actuals: %q", line)
		}
	}
}

// Plain EXPLAIN must stay annotation-free (its text feeds the result
// cache fingerprint) and must not execute anything.
func TestExplainWithoutAnalyzeHasNoActuals(t *testing.T) {
	e := parallelEngine(t)
	res := mustExec(t, e, `EXPLAIN SELECT id FROM wide WHERE grp = 1`)
	if txt := flattenPlan(t, res); strings.Contains(txt, "actual rows") || strings.Contains(txt, "parallel chain") {
		t.Fatalf("plain EXPLAIN carries analyze annotations:\n%s", txt)
	}
}

// Parallel chains build no per-operator iterator; their lines must say
// so rather than reporting misleading zeros.
func TestExplainAnalyzeMarksParallelChains(t *testing.T) {
	e := parallelEngine(t)
	e.SetExecWorkers(8)
	defer e.SetExecWorkers(1)
	an := mustExec(t, e, `EXPLAIN ANALYZE SELECT id, score FROM wide WHERE score > 899.0`)
	txt := flattenPlan(t, an)
	if !strings.Contains(txt, "[dop=8]") {
		t.Skipf("plan did not parallelize (small machine?):\n%s", txt)
	}
	if !strings.Contains(txt, "(in parallel chain)") {
		t.Fatalf("dop-8 plan lacks parallel-chain marker:\n%s", txt)
	}
}

func TestExplainAnalyzeRejectsNonSelect(t *testing.T) {
	e := parallelEngine(t)
	if _, err := e.ExecSQL(`EXPLAIN ANALYZE INSERT INTO tiny VALUES (1, 'x')`); err == nil {
		t.Fatal("EXPLAIN ANALYZE INSERT must fail")
	}
}
