package engine

import (
	"fmt"
	"strings"

	"crowddb/internal/engine/exec"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// dmlEnv resolves column references for one row of a single table during
// INSERT/UPDATE/DELETE evaluation. A table qualifier, when present, must
// name the statement's target table.
type dmlEnv struct {
	table  string
	schema *storage.Schema
	row    storage.Row
}

func (env *dmlEnv) Lookup(table, name string) (storage.Value, error) {
	if table != "" && !strings.EqualFold(table, env.table) {
		return storage.Null(), fmt.Errorf("engine: unknown table or alias %q in reference %s.%s", table, table, name)
	}
	idx, ok := env.schema.Lookup(name)
	if !ok {
		return storage.Null(), &MissingColumnError{Table: env.table, Column: name}
	}
	return env.row[idx], nil
}

func (e *Engine) execInsert(s *sqlparse.InsertStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()

	// Map the statement's column list onto schema positions.
	positions := make([]int, 0, schema.Len())
	if s.Columns == nil {
		for i := 0; i < schema.Len(); i++ {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			idx, ok := schema.Lookup(name)
			if !ok {
				return nil, &MissingColumnError{Table: s.Table, Column: name}
			}
			positions = append(positions, idx)
		}
	}

	inserted := 0
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(positions) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(rowExprs), len(positions))
		}
		vals := make([]storage.Value, schema.Len())
		for i := range vals {
			vals[i] = storage.Null()
		}
		env := &dmlEnv{table: s.Table, schema: schema, row: make(storage.Row, schema.Len())}
		for i, expr := range rowExprs {
			v, err := exec.EvalValue(expr, env)
			if err != nil {
				return nil, err
			}
			vals[positions[i]] = v
		}
		if err := tbl.Insert(vals...); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{Affected: inserted, Message: fmt.Sprintf("inserted %d rows", inserted)}, nil
}

func (e *Engine) execUpdate(s *sqlparse.UpdateStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()

	type change struct {
		row, col int
		val      storage.Value
	}
	var changes []change
	var scanErr error
	// The physical row IDs collected by the scan are written back below;
	// the fence keeps the compactor from remapping them in between.
	tbl.AcquireWriteFence()
	defer tbl.ReleaseWriteFence()
	tbl.Scan(func(i int, row storage.Row) bool {
		env := &dmlEnv{table: s.Table, schema: schema, row: row}
		if s.Where != nil {
			t, err := exec.EvalPredicate(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			if t != exec.TriTrue {
				return true
			}
		}
		for _, asg := range s.Set {
			col, ok := schema.Lookup(asg.Column)
			if !ok {
				scanErr = &MissingColumnError{Table: s.Table, Column: asg.Column}
				return false
			}
			v, err := exec.EvalValue(asg.Expr, env)
			if err != nil {
				scanErr = err
				return false
			}
			changes = append(changes, change{row: i, col: col, val: v})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	touched := map[int]bool{}
	for _, c := range changes {
		if err := tbl.Set(c.row, c.col, c.val); err != nil {
			return nil, err
		}
		touched[c.row] = true
	}
	return &Result{Affected: len(touched), Message: fmt.Sprintf("updated %d rows", len(touched))}, nil
}

func (e *Engine) execDelete(s *sqlparse.DeleteStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()
	var doomed []int
	var scanErr error
	// Fence the scan→Delete window: the collected physical IDs must not
	// be remapped by a concurrent compaction before Delete resolves them.
	tbl.AcquireWriteFence()
	defer tbl.ReleaseWriteFence()
	tbl.Scan(func(i int, row storage.Row) bool {
		if s.Where == nil {
			doomed = append(doomed, i)
			return true
		}
		env := &dmlEnv{table: s.Table, schema: schema, row: row}
		t, err := exec.EvalPredicate(s.Where, env)
		if err != nil {
			scanErr = err
			return false
		}
		if t == exec.TriTrue {
			doomed = append(doomed, i)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	n := tbl.Delete(doomed)
	return &Result{Affected: n, Message: fmt.Sprintf("deleted %d rows", n)}, nil
}
