// Package engine executes parsed SQL statements against the storage layer.
//
// Since the planner/executor split, the engine is a thin shell over two
// subpackages: internal/engine/plan lowers SELECTs into a logical plan
// tree (alias resolution, predicate/projection pushdown, join key
// extraction, plan-time column validation), and internal/engine/exec runs
// that tree as volcano-style iterators streaming rows off the storage
// cursor. DDL and DML stay here (dml.go); SELECT, EXPLAIN and the
// streaming entry point live in select.go.
//
// The engine deliberately knows nothing about crowds: when a query
// references a column the schema lacks, planning fails with a
// *MissingColumnError before any row is read. The crowd-enabled layer in
// internal/core catches that error, performs schema expansion, and
// re-runs the query — this is exactly the "query-driven" part of the
// paper's title.
package engine

import (
	"fmt"
	"runtime"
	"strings"

	"crowddb/internal/engine/plan"
	"crowddb/internal/index"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// MissingColumnError reports that a query referenced a column that the
// table's schema does not (yet) contain. It is produced at plan time and
// re-exported here so callers keep matching it as engine.MissingColumnError.
type MissingColumnError = plan.MissingColumnError

// Result is the outcome of executing one statement.
type Result struct {
	// Columns are the output column names (SELECT only).
	Columns []string
	// Rows are the output tuples (SELECT only).
	Rows []storage.Row
	// Affected counts rows inserted/updated/deleted for DML, or rows in
	// the result set for SELECT.
	Affected int
	// Message is a human-readable summary for DDL.
	Message string
}

// Engine executes statements against a catalog.
type Engine struct {
	catalog *storage.Catalog

	// execWorkers is the degree of intra-query parallelism; 0 means
	// GOMAXPROCS, 1 means fully serial plans.
	execWorkers int
}

// New creates an engine over catalog.
func New(catalog *storage.Catalog) *Engine { return &Engine{catalog: catalog} }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// SetExecWorkers sets the degree of intra-query parallelism for SELECT
// execution: 0 picks GOMAXPROCS, 1 keeps plans fully serial. Call before
// serving queries — the setting is read at plan time.
func (e *Engine) SetExecWorkers(n int) { e.execWorkers = n }

// dop resolves the effective degree of parallelism.
func (e *Engine) dop() int {
	if e.execWorkers > 0 {
		return e.execWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// ExecSQL parses and executes a single statement.
func (e *Engine) ExecSQL(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Exec(stmt)
}

// Exec executes a parsed statement. ExpandStmt is not handled here — it
// requires crowd machinery and is executed by internal/core, which owns an
// Engine.
func (e *Engine) Exec(stmt sqlparse.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return e.execSelect(s)
	case *sqlparse.ExplainStmt:
		return e.execExplain(s)
	case *sqlparse.CreateTableStmt:
		return e.execCreate(s)
	case *sqlparse.CreateIndexStmt:
		return e.execCreateIndex(s)
	case *sqlparse.DropIndexStmt:
		return e.execDropIndex(s)
	case *sqlparse.InsertStmt:
		return e.execInsert(s)
	case *sqlparse.UpdateStmt:
		return e.execUpdate(s)
	case *sqlparse.DeleteStmt:
		return e.execDelete(s)
	case *sqlparse.DropTableStmt:
		if !e.catalog.Drop(s.Table) {
			return nil, fmt.Errorf("engine: no such table %q", s.Table)
		}
		return &Result{Message: fmt.Sprintf("dropped table %s", s.Table)}, nil
	case *sqlparse.ExpandStmt:
		return nil, fmt.Errorf("engine: EXPAND requires a crowd-enabled database (use crowddb.DB)")
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func kindOf(typeName string) (storage.Kind, error) {
	switch typeName {
	case "INTEGER":
		return storage.KindInt, nil
	case "FLOAT":
		return storage.KindFloat, nil
	case "TEXT":
		return storage.KindText, nil
	case "BOOLEAN":
		return storage.KindBool, nil
	default:
		return storage.KindNull, fmt.Errorf("engine: unknown type %q", typeName)
	}
}

// ColumnDefToStorage converts a parsed column definition into a storage
// column. Exported for internal/core, which creates expanded columns from
// EXPAND statements.
func ColumnDefToStorage(def sqlparse.ColumnDef, origin storage.ColumnOrigin) (storage.Column, error) {
	kind, err := kindOf(def.Type)
	if err != nil {
		return storage.Column{}, err
	}
	return storage.Column{Name: def.Name, Kind: kind, Perceptual: def.Perceptual, Origin: origin}, nil
}

// execCreateIndex builds the requested secondary index and bulk-loads it
// from the table's current rows, under the table's write lock. The error
// for a missing column is deliberately NOT a *MissingColumnError: CREATE
// INDEX must never trigger (and pay for) an implicit crowd expansion —
// the crowd-enabled layer adds its own typed rejection for
// registered-but-unexpanded columns before delegating here.
func (e *Engine) execCreateIndex(s *sqlparse.CreateIndexStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	cols, dirs := indexKeySpec(s)
	idx, err := index.NewComposite(index.Kind(s.Kind), s.Name, cols, dirs)
	if err != nil {
		return nil, err
	}
	if err := tbl.AttachIndex(idx); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created %s index %s on %s (%s), %d entries",
		s.Kind, s.Name, s.Table, strings.Join(cols, ", "), idx.Entries())}, nil
}

// indexKeySpec normalizes a CreateIndexStmt's key columns. Programmatic
// callers (WAL replay of pre-composite records, embedders) may populate
// only the legacy single-column field.
func indexKeySpec(s *sqlparse.CreateIndexStmt) (cols []string, dirs []bool) {
	if len(s.Columns) == 0 {
		return []string{s.Column}, []bool{false}
	}
	cols = make([]string, len(s.Columns))
	dirs = make([]bool, len(s.Columns))
	for i, c := range s.Columns {
		cols[i], dirs[i] = c.Name, c.Desc
	}
	return cols, dirs
}

// execDropIndex detaches the named index from its table. Plans built
// afterwards fall back to scans; the rows themselves are untouched.
func (e *Engine) execDropIndex(s *sqlparse.DropIndexStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	if err := tbl.DetachIndex(s.Name); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("dropped index %s on %s", s.Name, s.Table)}, nil
}

func (e *Engine) execCreate(s *sqlparse.CreateTableStmt) (*Result, error) {
	cols := make([]storage.Column, 0, len(s.Columns))
	for _, def := range s.Columns {
		col, err := ColumnDefToStorage(def, storage.ColumnDeclared)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if _, err := e.catalog.Create(s.Table, schema); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d columns)", s.Table, len(cols))}, nil
}
