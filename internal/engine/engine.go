package engine

import (
	"fmt"
	"sort"
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Columns are the output column names (SELECT only).
	Columns []string
	// Rows are the output tuples (SELECT only).
	Rows []storage.Row
	// Affected counts rows inserted/updated/deleted for DML, or rows in
	// the result set for SELECT.
	Affected int
	// Message is a human-readable summary for DDL.
	Message string
}

// Engine executes statements against a catalog.
type Engine struct {
	catalog *storage.Catalog
}

// New creates an engine over catalog.
func New(catalog *storage.Catalog) *Engine { return &Engine{catalog: catalog} }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.catalog }

// ExecSQL parses and executes a single statement.
func (e *Engine) ExecSQL(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Exec(stmt)
}

// Exec executes a parsed statement. ExpandStmt is not handled here — it
// requires crowd machinery and is executed by internal/core, which owns an
// Engine.
func (e *Engine) Exec(stmt sqlparse.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return e.execSelect(s)
	case *sqlparse.CreateTableStmt:
		return e.execCreate(s)
	case *sqlparse.InsertStmt:
		return e.execInsert(s)
	case *sqlparse.UpdateStmt:
		return e.execUpdate(s)
	case *sqlparse.DeleteStmt:
		return e.execDelete(s)
	case *sqlparse.DropTableStmt:
		if !e.catalog.Drop(s.Table) {
			return nil, fmt.Errorf("engine: no such table %q", s.Table)
		}
		return &Result{Message: fmt.Sprintf("dropped table %s", s.Table)}, nil
	case *sqlparse.ExpandStmt:
		return nil, fmt.Errorf("engine: EXPAND requires a crowd-enabled database (use crowddb.DB)")
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func kindOf(typeName string) (storage.Kind, error) {
	switch typeName {
	case "INTEGER":
		return storage.KindInt, nil
	case "FLOAT":
		return storage.KindFloat, nil
	case "TEXT":
		return storage.KindText, nil
	case "BOOLEAN":
		return storage.KindBool, nil
	default:
		return storage.KindNull, fmt.Errorf("engine: unknown type %q", typeName)
	}
}

// ColumnDefToStorage converts a parsed column definition into a storage
// column. Exported for internal/core, which creates expanded columns from
// EXPAND statements.
func ColumnDefToStorage(def sqlparse.ColumnDef, origin storage.ColumnOrigin) (storage.Column, error) {
	kind, err := kindOf(def.Type)
	if err != nil {
		return storage.Column{}, err
	}
	return storage.Column{Name: def.Name, Kind: kind, Perceptual: def.Perceptual, Origin: origin}, nil
}

func (e *Engine) execCreate(s *sqlparse.CreateTableStmt) (*Result, error) {
	cols := make([]storage.Column, 0, len(s.Columns))
	for _, def := range s.Columns {
		col, err := ColumnDefToStorage(def, storage.ColumnDeclared)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if _, err := e.catalog.Create(s.Table, schema); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("created table %s (%d columns)", s.Table, len(cols))}, nil
}

func (e *Engine) execInsert(s *sqlparse.InsertStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()

	// Map the statement's column list onto schema positions.
	positions := make([]int, 0, schema.Len())
	if s.Columns == nil {
		for i := 0; i < schema.Len(); i++ {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			idx, ok := schema.Lookup(name)
			if !ok {
				return nil, &MissingColumnError{Table: s.Table, Column: name}
			}
			positions = append(positions, idx)
		}
	}

	inserted := 0
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(positions) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(rowExprs), len(positions))
		}
		vals := make([]storage.Value, schema.Len())
		for i := range vals {
			vals[i] = storage.Null()
		}
		env := &rowEnv{table: s.Table, schema: schema, row: make(storage.Row, schema.Len())}
		for i, expr := range rowExprs {
			v, err := evalValue(expr, env)
			if err != nil {
				return nil, err
			}
			vals[positions[i]] = v
		}
		if err := tbl.Insert(vals...); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{Affected: inserted, Message: fmt.Sprintf("inserted %d rows", inserted)}, nil
}

func (e *Engine) execUpdate(s *sqlparse.UpdateStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()

	type change struct {
		row, col int
		val      storage.Value
	}
	var changes []change
	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		env := &rowEnv{table: s.Table, schema: schema, row: row}
		if s.Where != nil {
			t, err := evalPredicate(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			if t != triTrue {
				return true
			}
		}
		for _, asg := range s.Set {
			col, ok := schema.Lookup(asg.Column)
			if !ok {
				scanErr = &MissingColumnError{Table: s.Table, Column: asg.Column}
				return false
			}
			v, err := evalValue(asg.Expr, env)
			if err != nil {
				scanErr = err
				return false
			}
			changes = append(changes, change{row: i, col: col, val: v})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	touched := map[int]bool{}
	for _, c := range changes {
		if err := tbl.Set(c.row, c.col, c.val); err != nil {
			return nil, err
		}
		touched[c.row] = true
	}
	return &Result{Affected: len(touched), Message: fmt.Sprintf("updated %d rows", len(touched))}, nil
}

func (e *Engine) execDelete(s *sqlparse.DeleteStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()
	var doomed []int
	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		if s.Where == nil {
			doomed = append(doomed, i)
			return true
		}
		env := &rowEnv{table: s.Table, schema: schema, row: row}
		t, err := evalPredicate(s.Where, env)
		if err != nil {
			scanErr = err
			return false
		}
		if t == triTrue {
			doomed = append(doomed, i)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	n := tbl.Delete(doomed)
	return &Result{Affected: n, Message: fmt.Sprintf("deleted %d rows", n)}, nil
}

func (e *Engine) execSelect(s *sqlparse.SelectStmt) (*Result, error) {
	tbl, ok := e.catalog.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", s.Table)
	}
	schema := tbl.Schema()

	// ORDER BY may reference select-list aliases (ORDER BY age for
	// SELECT year - 1900 age …); rewrite those to the aliased expression
	// before validation.
	if len(s.OrderBy) > 0 {
		aliases := map[string]sqlparse.Expr{}
		for _, item := range s.Items {
			if item.Alias != "" && item.Expr != nil && item.Agg == sqlparse.AggNone {
				aliases[strings.ToLower(item.Alias)] = item.Expr
			}
		}
		if len(aliases) > 0 {
			rewritten := make([]sqlparse.OrderKey, len(s.OrderBy))
			copy(rewritten, s.OrderBy)
			changed := false
			for i, key := range rewritten {
				ref, ok := key.Expr.(*sqlparse.ColumnRef)
				if !ok {
					continue
				}
				// A real column of the same name wins over the alias.
				if _, isCol := schema.Lookup(ref.Name); isCol {
					continue
				}
				if e, isAlias := aliases[strings.ToLower(ref.Name)]; isAlias {
					rewritten[i].Expr = e
					changed = true
				}
			}
			if changed {
				clone := *s
				clone.OrderBy = rewritten
				s = &clone
			}
		}
	}

	// Validate column references up front so that schema expansion
	// triggers before any work happens (and regardless of row contents).
	if err := checkSelectColumns(s, schema); err != nil {
		return nil, err
	}

	hasAgg := false
	for _, item := range s.Items {
		if item.Agg != sqlparse.AggNone {
			hasAgg = true
		}
	}
	if hasAgg || len(s.GroupBy) > 0 {
		return e.execGrouped(s, tbl, schema)
	}
	if s.Having != nil {
		return nil, fmt.Errorf("engine: HAVING requires GROUP BY or aggregates")
	}

	// Collect matching rows.
	type matched struct {
		idx int
		row storage.Row
	}
	var rows []matched
	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		if s.Where != nil {
			env := &rowEnv{table: s.Table, schema: schema, row: row}
			t, err := evalPredicate(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			if t != triTrue {
				return true
			}
		}
		rows = append(rows, matched{idx: i, row: row.Clone()})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	// ORDER BY.
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(a, b int) bool {
			for _, key := range s.OrderBy {
				envA := &rowEnv{table: s.Table, schema: schema, row: rows[a].row}
				envB := &rowEnv{table: s.Table, schema: schema, row: rows[b].row}
				va, err := evalValue(key.Expr, envA)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := evalValue(key.Expr, envB)
				if err != nil {
					sortErr = err
					return false
				}
				// NULLs sort last regardless of direction.
				switch {
				case va.IsNull() && vb.IsNull():
					continue
				case va.IsNull():
					return false
				case vb.IsNull():
					return true
				}
				c, err := va.Compare(vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// LIMIT. Under DISTINCT the limit applies to deduplicated output, so
	// it is deferred to the projection loop below.
	if !s.Distinct && s.Limit >= 0 && int64(len(rows)) > s.Limit {
		rows = rows[:s.Limit]
	}

	// Projection.
	outCols, project, err := buildProjection(s, schema)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: outCols}
	seen := map[string]bool{}
	for _, m := range rows {
		env := &rowEnv{table: s.Table, schema: schema, row: m.row}
		out, err := project(env)
		if err != nil {
			return nil, err
		}
		if s.Distinct {
			key := rowKey(out)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, out)
	}
	// DISTINCT may have shrunk the row set below LIMIT expectations; the
	// LIMIT above applied pre-projection, so re-apply it here.
	if s.Distinct && s.Limit >= 0 && int64(len(res.Rows)) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// rowKey builds a deduplication key for DISTINCT and GROUP BY. The kind
// tag keeps 1 and '1' distinct.
func rowKey(row storage.Row) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteByte(byte(v.Kind()))
		sb.WriteString(v.String())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// checkSelectColumns walks every base-table expression in the statement
// and returns a MissingColumnError for the first unresolved column.
// HAVING is excluded (it resolves against output columns), as is ORDER BY
// for grouped queries.
func checkSelectColumns(s *sqlparse.SelectStmt, schema *storage.Schema) error {
	grouped := len(s.GroupBy) > 0
	for _, item := range s.Items {
		if item.Agg != sqlparse.AggNone {
			grouped = true
		}
	}
	var missing *MissingColumnError
	check := func(e sqlparse.Expr) {
		sqlparse.WalkColumns(e, func(c *sqlparse.ColumnRef) {
			if missing != nil {
				return
			}
			if _, ok := schema.Lookup(c.Name); !ok {
				missing = &MissingColumnError{Table: s.Table, Column: c.Name}
			}
		})
	}
	for _, item := range s.Items {
		if item.Expr != nil {
			check(item.Expr)
		}
	}
	check(s.Where)
	for _, g := range s.GroupBy {
		check(g)
	}
	if !grouped {
		for _, key := range s.OrderBy {
			check(key.Expr)
		}
	}
	if missing != nil {
		return missing
	}
	return nil
}

func buildProjection(s *sqlparse.SelectStmt, schema *storage.Schema) ([]string, func(*rowEnv) (storage.Row, error), error) {
	var names []string
	type projector func(*rowEnv) (storage.Value, error)
	var projs []projector

	for _, item := range s.Items {
		switch {
		case item.Star:
			for i := 0; i < schema.Len(); i++ {
				col := schema.Column(i)
				idx := i
				names = append(names, col.Name)
				projs = append(projs, func(env *rowEnv) (storage.Value, error) {
					return env.row[idx], nil
				})
			}
		default:
			name := item.Alias
			if name == "" {
				name = item.Expr.String()
				if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
					name = ref.Name
				}
			}
			names = append(names, name)
			expr := item.Expr
			projs = append(projs, func(env *rowEnv) (storage.Value, error) {
				return evalValue(expr, env)
			})
		}
	}
	return names, func(env *rowEnv) (storage.Row, error) {
		out := make(storage.Row, len(projs))
		for i, p := range projs {
			v, err := p(env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count   int
	sum     float64
	min     storage.Value
	max     storage.Value
	any     bool
	numeric bool
}

func (st *aggState) observe(v storage.Value) {
	if v.IsNull() {
		return
	}
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.sum += f
		st.numeric = true
	}
	if !st.any {
		st.min, st.max, st.any = v, v, true
		return
	}
	if c, err := v.Compare(st.min); err == nil && c < 0 {
		st.min = v
	}
	if c, err := v.Compare(st.max); err == nil && c > 0 {
		st.max = v
	}
}

func (st *aggState) finalize(agg sqlparse.AggFunc) storage.Value {
	switch agg {
	case sqlparse.AggCount:
		return storage.Int(int64(st.count))
	case sqlparse.AggSum:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum)
	case sqlparse.AggAvg:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum / float64(st.count))
	case sqlparse.AggMin:
		if !st.any {
			return storage.Null()
		}
		return st.min
	case sqlparse.AggMax:
		if !st.any {
			return storage.Null()
		}
		return st.max
	default:
		return storage.Null()
	}
}

// outputEnv resolves column references against a grouped query's output
// row, for HAVING and ORDER BY.
type outputEnv struct {
	names map[string]int
	row   storage.Row
}

func (env *outputEnv) lookup(name string) (storage.Value, error) {
	if idx, ok := env.names[strings.ToLower(name)]; ok {
		return env.row[idx], nil
	}
	return storage.Null(), fmt.Errorf("engine: HAVING/ORDER BY column %q is not in the grouped output", name)
}

// execGrouped executes SELECTs with aggregates and/or GROUP BY. Scalar
// select items must textually appear in the GROUP BY list; HAVING and
// ORDER BY resolve against the output columns (including aliases).
func (e *Engine) execGrouped(s *sqlparse.SelectStmt, tbl *storage.Table, schema *storage.Schema) (*Result, error) {
	if s.Distinct {
		return nil, fmt.Errorf("engine: DISTINCT with aggregates/GROUP BY is not supported")
	}
	groupTexts := map[string]bool{}
	for _, g := range s.GroupBy {
		groupTexts[g.String()] = true
	}
	names := make([]string, len(s.Items))
	for k, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates/GROUP BY")
		}
		if item.Agg == sqlparse.AggNone && !groupTexts[item.Expr.String()] {
			return nil, fmt.Errorf("engine: %s must appear in GROUP BY or an aggregate", item.Expr.String())
		}
		name := item.Alias
		if name == "" {
			if item.Agg == sqlparse.AggNone {
				name = item.Expr.String()
				if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
					name = ref.Name
				}
			} else {
				arg := "*"
				if item.Expr != nil {
					arg = item.Expr.String()
				}
				name = strings.ToLower(string(item.Agg)) + "(" + arg + ")"
			}
		}
		names[k] = name
	}

	type group struct {
		firstRow storage.Row
		states   []aggState
	}
	groups := map[string]*group{}
	var order []string // group insertion order, for deterministic output

	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		env := &rowEnv{table: s.Table, schema: schema, row: row}
		if s.Where != nil {
			t, err := evalPredicate(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			if t != triTrue {
				return true
			}
		}
		// Group key.
		keyVals := make(storage.Row, len(s.GroupBy))
		for gi, g := range s.GroupBy {
			v, err := evalValue(g, env)
			if err != nil {
				scanErr = err
				return false
			}
			keyVals[gi] = v
		}
		key := rowKey(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{firstRow: row.Clone(), states: make([]aggState, len(s.Items))}
			groups[key] = grp
			order = append(order, key)
		}
		for k, item := range s.Items {
			if item.Agg == sqlparse.AggNone {
				continue
			}
			if item.Expr == nil { // COUNT(*)
				grp.states[k].count++
				continue
			}
			v, err := evalValue(item.Expr, env)
			if err != nil {
				scanErr = err
				return false
			}
			grp.states[k].observe(v)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	// Aggregates without GROUP BY yield exactly one row, even for empty
	// input (standard SQL).
	if len(s.GroupBy) == 0 && len(order) == 0 {
		key := "∅"
		groups[key] = &group{states: make([]aggState, len(s.Items))}
		order = append(order, key)
	}

	nameIdx := map[string]int{}
	for k, n := range names {
		lower := strings.ToLower(n)
		if _, dup := nameIdx[lower]; !dup {
			nameIdx[lower] = k
		}
	}

	res := &Result{Columns: names}
	for _, key := range order {
		grp := groups[key]
		out := make(storage.Row, len(s.Items))
		for k, item := range s.Items {
			if item.Agg != sqlparse.AggNone {
				out[k] = grp.states[k].finalize(item.Agg)
				continue
			}
			if grp.firstRow == nil {
				out[k] = storage.Null()
				continue
			}
			env := &rowEnv{table: s.Table, schema: schema, row: grp.firstRow}
			v, err := evalValue(item.Expr, env)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		if s.Having != nil {
			t, err := evalPredicate(s.Having, &outputEnv{names: nameIdx, row: out})
			if err != nil {
				return nil, err
			}
			if t != triTrue {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}

	// ORDER BY over output columns.
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, keyExpr := range s.OrderBy {
				va, err := evalValue(keyExpr.Expr, &outputEnv{names: nameIdx, row: res.Rows[a]})
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := evalValue(keyExpr.Expr, &outputEnv{names: nameIdx, row: res.Rows[b]})
				if err != nil {
					sortErr = err
					return false
				}
				switch {
				case va.IsNull() && vb.IsNull():
					continue
				case va.IsNull():
					return false
				case vb.IsNull():
					return true
				}
				c, err := va.Compare(vb)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if keyExpr.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if s.Limit >= 0 && int64(len(res.Rows)) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	res.Affected = len(res.Rows)
	return res, nil
}
