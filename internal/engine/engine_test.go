package engine

import (
	"errors"
	"testing"

	"crowddb/internal/storage"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE movies (
		movie_id INTEGER, name TEXT, year INTEGER, rating FLOAT,
		is_comedy BOOLEAN PERCEPTUAL
	)`)
	rows := []string{
		"(1, 'Rocky', 1976, 8.1, false)",
		"(2, 'Airplane', 1980, 7.8, true)",
		"(3, 'Psycho', 1960, 8.5, false)",
		"(4, 'Ghostbusters', 1984, 7.8, true)",
		"(5, 'Vertigo', 1958, 8.3, NULL)",
	}
	for _, r := range rows {
		mustExec(t, e, "INSERT INTO movies VALUES "+r)
	}
	return e
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT * FROM movies")
	if len(res.Rows) != 5 || len(res.Columns) != 5 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[1] != "name" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectWhereComparison(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name FROM movies WHERE year >= 1980")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectWherePaperQuery(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name FROM movies WHERE is_comedy = true")
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 comedies, got %d", len(res.Rows))
	}
}

func TestNullSemanticsInWhere(t *testing.T) {
	e := newTestEngine(t)
	// Vertigo has NULL is_comedy: neither = true nor = false matches it.
	r1 := mustExec(t, e, "SELECT * FROM movies WHERE is_comedy = true")
	r2 := mustExec(t, e, "SELECT * FROM movies WHERE is_comedy = false")
	r3 := mustExec(t, e, "SELECT * FROM movies WHERE NOT is_comedy = true")
	if len(r1.Rows)+len(r2.Rows) != 4 {
		t.Fatalf("NULL row leaked into equality results: %d + %d", len(r1.Rows), len(r2.Rows))
	}
	if len(r3.Rows) != 2 {
		t.Fatalf("NOT over UNKNOWN must stay UNKNOWN; got %d rows", len(r3.Rows))
	}
	r4 := mustExec(t, e, "SELECT * FROM movies WHERE is_comedy IS NULL")
	if len(r4.Rows) != 1 {
		t.Fatalf("IS NULL rows = %d", len(r4.Rows))
	}
	r5 := mustExec(t, e, "SELECT * FROM movies WHERE is_comedy IS NOT NULL")
	if len(r5.Rows) != 4 {
		t.Fatalf("IS NOT NULL rows = %d", len(r5.Rows))
	}
}

func TestBooleanColumnAsBarePredicate(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name FROM movies WHERE is_comedy")
	if len(res.Rows) != 2 {
		t.Fatalf("bare boolean predicate rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, "SELECT name FROM movies WHERE NOT is_comedy")
	if len(res.Rows) != 2 {
		t.Fatalf("NOT bare boolean rows = %d", len(res.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name, year FROM movies ORDER BY year DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	n0, _ := res.Rows[0][0].AsText()
	n1, _ := res.Rows[1][0].AsText()
	if n0 != "Ghostbusters" || n1 != "Airplane" {
		t.Fatalf("order = %s, %s", n0, n1)
	}
}

func TestOrderByNullsLast(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name FROM movies ORDER BY is_comedy")
	last, _ := res.Rows[4][0].AsText()
	if last != "Vertigo" {
		t.Fatalf("NULL row must sort last, got %s", last)
	}
	res = mustExec(t, e, "SELECT name FROM movies ORDER BY is_comedy DESC")
	last, _ = res.Rows[4][0].AsText()
	if last != "Vertigo" {
		t.Fatalf("NULL row must sort last under DESC too, got %s", last)
	}
}

func TestOrderByStability(t *testing.T) {
	e := newTestEngine(t)
	// rating 7.8 is shared by Airplane(2) and Ghostbusters(4): stable sort
	// must preserve insertion order for ties.
	res := mustExec(t, e, "SELECT movie_id FROM movies ORDER BY rating")
	id0, _ := res.Rows[0][0].AsInt()
	id1, _ := res.Rows[1][0].AsInt()
	if id0 != 2 || id1 != 4 {
		t.Fatalf("tie order = %d, %d; want 2, 4", id0, id1)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT name, year - 1900 age FROM movies WHERE movie_id = 1")
	if res.Columns[1] != "age" {
		t.Fatalf("columns = %v", res.Columns)
	}
	v, _ := res.Rows[0][1].AsInt()
	if v != 76 {
		t.Fatalf("age = %d", v)
	}
}

func TestArithmetic(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT rating * 10 FROM movies WHERE movie_id = 3")
	f, _ := res.Rows[0][0].AsFloat()
	if f != 85 {
		t.Fatalf("rating*10 = %v", f)
	}
	if _, err := e.ExecSQL("SELECT rating / 0 FROM movies"); err == nil {
		t.Fatal("division by zero must fail")
	}
	if _, err := e.ExecSQL("SELECT name + 1 FROM movies"); err == nil {
		t.Fatal("text arithmetic must fail")
	}
}

func TestAggregates(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT COUNT(*), COUNT(is_comedy), AVG(rating), MIN(year), MAX(year), SUM(rating) FROM movies")
	row := res.Rows[0]
	if n, _ := row[0].AsInt(); n != 5 {
		t.Fatalf("COUNT(*) = %v", row[0])
	}
	if n, _ := row[1].AsInt(); n != 4 {
		t.Fatalf("COUNT(is_comedy) must skip NULL, got %v", row[1])
	}
	if f, _ := row[2].AsFloat(); f != (8.1+7.8+8.5+7.8+8.3)/5 {
		t.Fatalf("AVG = %v", row[2])
	}
	if y, _ := row[3].AsInt(); y != 1958 {
		t.Fatalf("MIN = %v", row[3])
	}
	if y, _ := row[4].AsInt(); y != 1984 {
		t.Fatalf("MAX = %v", row[4])
	}
}

func TestAggregateWithWhereAndEmptyInput(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "SELECT COUNT(*), AVG(rating) FROM movies WHERE year > 3000")
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("COUNT = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("AVG of empty set must be NULL, got %v", res.Rows[0][1])
	}
}

func TestAggregateMixError(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.ExecSQL("SELECT name, COUNT(*) FROM movies"); err == nil {
		t.Fatal("mixing aggregates and scalars must fail")
	}
}

func TestMissingColumnError(t *testing.T) {
	e := newTestEngine(t)
	_, err := e.ExecSQL("SELECT * FROM movies WHERE humor >= 8")
	var missing *MissingColumnError
	if !errors.As(err, &missing) {
		t.Fatalf("err = %v, want MissingColumnError", err)
	}
	if missing.Table != "movies" || missing.Column != "humor" {
		t.Fatalf("missing = %+v", missing)
	}
	// Must trigger even when the table is empty or predicates short-circuit.
	mustExec(t, e, "DELETE FROM movies")
	_, err = e.ExecSQL("SELECT * FROM movies WHERE humor >= 8")
	if !errors.As(err, &missing) {
		t.Fatalf("empty table: err = %v, want MissingColumnError", err)
	}
	// Also for ORDER BY and select list.
	_, err = e.ExecSQL("SELECT humor FROM movies")
	if !errors.As(err, &missing) {
		t.Fatalf("select list: err = %v", err)
	}
	_, err = e.ExecSQL("SELECT name FROM movies ORDER BY humor")
	if !errors.As(err, &missing) {
		t.Fatalf("order by: err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "UPDATE movies SET rating = rating + 1 WHERE is_comedy = true")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := mustExec(t, e, "SELECT rating FROM movies WHERE movie_id = 2")
	if f, _ := check.Rows[0][0].AsFloat(); f != 8.8 {
		t.Fatalf("rating = %v", f)
	}
	if _, err := e.ExecSQL("UPDATE movies SET nosuch = 1"); err == nil {
		t.Fatal("unknown SET column must fail")
	}
}

func TestDelete(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, "DELETE FROM movies WHERE year < 1970")
	if res.Affected != 2 {
		t.Fatalf("deleted = %d", res.Affected)
	}
	left := mustExec(t, e, "SELECT COUNT(*) FROM movies")
	if n, _ := left.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("remaining = %d", n)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "INSERT INTO movies (movie_id, name) VALUES (6, 'New')")
	res := mustExec(t, e, "SELECT year FROM movies WHERE movie_id = 6")
	if !res.Rows[0][0].IsNull() {
		t.Fatal("unlisted columns must be NULL")
	}
	if _, err := e.ExecSQL("INSERT INTO movies (movie_id, nosuch) VALUES (7, 1)"); err == nil {
		t.Fatal("unknown insert column must fail")
	}
	if _, err := e.ExecSQL("INSERT INTO movies (movie_id) VALUES (7, 8)"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestCreateDropErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.ExecSQL("CREATE TABLE movies (a INTEGER)"); err == nil {
		t.Fatal("duplicate table must fail")
	}
	mustExec(t, e, "DROP TABLE movies")
	if _, err := e.ExecSQL("DROP TABLE movies"); err == nil {
		t.Fatal("double drop must fail")
	}
	if _, err := e.ExecSQL("SELECT * FROM movies"); err == nil {
		t.Fatal("select from dropped table must fail")
	}
}

func TestExpandRejectedByPlainEngine(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.ExecSQL("EXPAND TABLE movies ADD COLUMN humor FLOAT USING CROWD"); err == nil {
		t.Fatal("plain engine must reject EXPAND")
	}
}

// The three-valued-logic truth table lives with the evaluator now:
// internal/engine/exec TestThreeValuedLogicTruthTable.
