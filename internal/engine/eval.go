// Package engine executes parsed SQL statements against the storage layer.
//
// It implements a straightforward single-table engine: full scans with
// predicate filtering, projection, ORDER BY, LIMIT, and ungrouped
// aggregates. WHERE predicates use SQL's three-valued logic (NULL
// comparisons yield UNKNOWN, which filters the row out).
//
// The engine deliberately knows nothing about crowds: when a query
// references a column the schema lacks, execution fails with a
// *MissingColumnError. The crowd-enabled layer in internal/core catches
// that error, performs schema expansion, and re-runs the query — this is
// exactly the "query-driven" part of the paper's title.
package engine

import (
	"fmt"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// MissingColumnError reports that a query referenced a column that the
// table's schema does not (yet) contain.
type MissingColumnError struct {
	Table  string
	Column string
}

func (e *MissingColumnError) Error() string {
	return fmt.Sprintf("engine: table %q has no column %q", e.Table, e.Column)
}

// tribool is SQL three-valued logic.
type tribool uint8

const (
	triFalse tribool = iota
	triTrue
	triUnknown
)

func triOf(b bool) tribool {
	if b {
		return triTrue
	}
	return triFalse
}

func (t tribool) not() tribool {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triUnknown
	}
}

func (t tribool) and(o tribool) tribool {
	if t == triFalse || o == triFalse {
		return triFalse
	}
	if t == triUnknown || o == triUnknown {
		return triUnknown
	}
	return triTrue
}

func (t tribool) or(o tribool) tribool {
	if t == triTrue || o == triTrue {
		return triTrue
	}
	if t == triUnknown || o == triUnknown {
		return triUnknown
	}
	return triFalse
}

// valueEnv resolves column references during expression evaluation.
// rowEnv resolves against a table row; outputEnv (engine.go) resolves
// against a grouped query's output columns for HAVING and ORDER BY.
type valueEnv interface {
	lookup(name string) (storage.Value, error)
}

// rowEnv resolves column references for one row.
type rowEnv struct {
	table  string
	schema *storage.Schema
	row    storage.Row
}

func (env *rowEnv) lookup(name string) (storage.Value, error) {
	idx, ok := env.schema.Lookup(name)
	if !ok {
		return storage.Null(), &MissingColumnError{Table: env.table, Column: name}
	}
	return env.row[idx], nil
}

// evalValue computes a scalar expression for the row.
func evalValue(e sqlparse.Expr, env valueEnv) (storage.Value, error) {
	switch n := e.(type) {
	case *sqlparse.Literal:
		return literalValue(n), nil
	case *sqlparse.ColumnRef:
		return env.lookup(n.Name)
	case *sqlparse.UnaryExpr:
		switch n.Op {
		case "-":
			v, err := evalValue(n.Expr, env)
			if err != nil {
				return storage.Null(), err
			}
			if v.IsNull() {
				return storage.Null(), nil
			}
			if i, ok := v.AsInt(); ok && v.Kind() == storage.KindInt {
				return storage.Int(-i), nil
			}
			if f, ok := v.AsFloat(); ok {
				return storage.Float(-f), nil
			}
			return storage.Null(), fmt.Errorf("engine: cannot negate %s value", v.Kind())
		case "NOT":
			t, err := evalPredicate(n, env)
			if err != nil {
				return storage.Null(), err
			}
			return triValue(t), nil
		}
		return storage.Null(), fmt.Errorf("engine: unknown unary operator %q", n.Op)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
			t, err := evalPredicate(n, env)
			if err != nil {
				return storage.Null(), err
			}
			return triValue(t), nil
		case "+", "-", "*", "/":
			return evalArith(n, env)
		}
		return storage.Null(), fmt.Errorf("engine: unknown binary operator %q", n.Op)
	case *sqlparse.IsNullExpr:
		t, err := evalPredicate(n, env)
		if err != nil {
			return storage.Null(), err
		}
		return triValue(t), nil
	default:
		return storage.Null(), fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func triValue(t tribool) storage.Value {
	switch t {
	case triTrue:
		return storage.Bool(true)
	case triFalse:
		return storage.Bool(false)
	default:
		return storage.Null()
	}
}

func literalValue(l *sqlparse.Literal) storage.Value {
	switch l.Kind {
	case sqlparse.LitNull:
		return storage.Null()
	case sqlparse.LitBool:
		return storage.Bool(l.Bool)
	case sqlparse.LitInt:
		return storage.Int(l.Int)
	case sqlparse.LitFloat:
		return storage.Float(l.Float)
	case sqlparse.LitString:
		return storage.Text(l.Str)
	default:
		return storage.Null()
	}
}

func evalArith(n *sqlparse.BinaryExpr, env valueEnv) (storage.Value, error) {
	l, err := evalValue(n.Left, env)
	if err != nil {
		return storage.Null(), err
	}
	r, err := evalValue(n.Right, env)
	if err != nil {
		return storage.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return storage.Null(), nil
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return storage.Null(), fmt.Errorf("engine: arithmetic on non-numeric values (%s %s %s)", l.Kind(), n.Op, r.Kind())
	}
	bothInt := l.Kind() == storage.KindInt && r.Kind() == storage.KindInt
	switch n.Op {
	case "+":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li + ri), nil
		}
		return storage.Float(lf + rf), nil
	case "-":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li - ri), nil
		}
		return storage.Float(lf - rf), nil
	case "*":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li * ri), nil
		}
		return storage.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return storage.Null(), fmt.Errorf("engine: division by zero")
		}
		return storage.Float(lf / rf), nil
	}
	return storage.Null(), fmt.Errorf("engine: unknown arithmetic operator %q", n.Op)
}

// evalPredicate computes a boolean expression under three-valued logic.
func evalPredicate(e sqlparse.Expr, env valueEnv) (tribool, error) {
	switch n := e.(type) {
	case *sqlparse.Literal:
		if n.Kind == sqlparse.LitNull {
			return triUnknown, nil
		}
		if n.Kind == sqlparse.LitBool {
			return triOf(n.Bool), nil
		}
		return triFalse, fmt.Errorf("engine: %s literal used as predicate", n.String())
	case *sqlparse.ColumnRef:
		v, err := env.lookup(n.Name)
		if err != nil {
			return triFalse, err
		}
		if v.IsNull() {
			return triUnknown, nil
		}
		if b, ok := v.AsBool(); ok {
			return triOf(b), nil
		}
		return triFalse, fmt.Errorf("engine: column %q is not boolean", n.Name)
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			t, err := evalPredicate(n.Expr, env)
			if err != nil {
				return triFalse, err
			}
			return t.not(), nil
		}
		return triFalse, fmt.Errorf("engine: %q used as predicate", n.Op)
	case *sqlparse.IsNullExpr:
		v, err := evalValue(n.Expr, env)
		if err != nil {
			return triFalse, err
		}
		isNull := v.IsNull()
		if n.Negate {
			return triOf(!isNull), nil
		}
		return triOf(isNull), nil
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND":
			l, err := evalPredicate(n.Left, env)
			if err != nil {
				return triFalse, err
			}
			r, err := evalPredicate(n.Right, env)
			if err != nil {
				return triFalse, err
			}
			return l.and(r), nil
		case "OR":
			l, err := evalPredicate(n.Left, env)
			if err != nil {
				return triFalse, err
			}
			r, err := evalPredicate(n.Right, env)
			if err != nil {
				return triFalse, err
			}
			return l.or(r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			l, err := evalValue(n.Left, env)
			if err != nil {
				return triFalse, err
			}
			r, err := evalValue(n.Right, env)
			if err != nil {
				return triFalse, err
			}
			if l.IsNull() || r.IsNull() {
				return triUnknown, nil
			}
			switch n.Op {
			case "=":
				return triOf(l.Equal(r)), nil
			case "!=":
				return triOf(!l.Equal(r)), nil
			default:
				c, err := l.Compare(r)
				if err != nil {
					return triFalse, err
				}
				switch n.Op {
				case "<":
					return triOf(c < 0), nil
				case "<=":
					return triOf(c <= 0), nil
				case ">":
					return triOf(c > 0), nil
				case ">=":
					return triOf(c >= 0), nil
				}
			}
		}
		return triFalse, fmt.Errorf("engine: operator %q used as predicate", n.Op)
	default:
		return triFalse, fmt.Errorf("engine: unsupported predicate %T", e)
	}
}
