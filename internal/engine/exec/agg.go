package exec

import (
	"errors"
	"sort"

	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// aggState accumulates one aggregate over one group.
type aggState struct {
	count   int
	sum     float64
	min     storage.Value
	max     storage.Value
	any     bool
	numeric bool
}

func (st *aggState) observe(v storage.Value) {
	if v.IsNull() {
		return
	}
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.sum += f
		st.numeric = true
	}
	if !st.any {
		st.min, st.max, st.any = v, v, true
		return
	}
	if c, err := v.Compare(st.min); err == nil && c < 0 {
		st.min = v
	}
	if c, err := v.Compare(st.max); err == nil && c > 0 {
		st.max = v
	}
}

// merge folds another partial state into st — the combine step of
// parallel partial aggregation. Every supported aggregate is
// decomposable: count and sum add, min/max compare, avg derives from
// count+sum at finalize.
func (st *aggState) merge(o *aggState) {
	st.count += o.count
	st.sum += o.sum
	st.numeric = st.numeric || o.numeric
	if !o.any {
		return
	}
	if !st.any {
		st.min, st.max, st.any = o.min, o.max, true
		return
	}
	if c, err := o.min.Compare(st.min); err == nil && c < 0 {
		st.min = o.min
	}
	if c, err := o.max.Compare(st.max); err == nil && c > 0 {
		st.max = o.max
	}
}

func (st *aggState) finalize(agg sqlparse.AggFunc) storage.Value {
	switch agg {
	case sqlparse.AggCount:
		return storage.Int(int64(st.count))
	case sqlparse.AggSum:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum)
	case sqlparse.AggAvg:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum / float64(st.count))
	case sqlparse.AggMin:
		if !st.any {
			return storage.Null()
		}
		return st.min
	case sqlparse.AggMax:
		if !st.any {
			return storage.Null()
		}
		return st.max
	default:
		return storage.Null()
	}
}

// aggIter implements HashAggregate: Open consumes the whole input,
// hashing rows into groups and folding aggregate states; Next emits one
// output row per group in first-seen order, with HAVING applied against
// the output columns. Scalar (group-key) items evaluate against the
// group's first row. Aggregates without GROUP BY yield exactly one row,
// even for empty input (standard SQL).
//
// When the node's Dop is > 1 and its input is a morsel chain (input is
// nil then), Open instead folds partial per-worker group maps over the
// chain's morsels and merges them — states via aggState.merge, group
// identity (first row, first-seen sequence) from the partial with the
// lowest sequence — so output order and values match a serial fold
// exactly.
type aggIter struct {
	input Iterator // nil when the fold runs parallel over the input chain
	node  *plan.Aggregate
	env   rowEnv

	out []storage.Row
	pos int
}

type aggGroup struct {
	firstRow storage.Row
	firstSeq int64 // input sequence of the group's first row
	states   []aggState
}

// foldRow hashes one input row into its group and observes every
// aggregate item. seq is the row's global input sequence, used to keep
// group output in first-seen order across parallel partials.
func foldRow(s *plan.Aggregate, env *rowEnv, row storage.Row, seq int64, groups map[string]*aggGroup) error {
	env.row = row
	keyVals := make(storage.Row, len(s.GroupBy))
	for gi, g := range s.GroupBy {
		v, err := EvalValue(g, env)
		if err != nil {
			return err
		}
		keyVals[gi] = v
	}
	key := rowKey(keyVals)
	grp, ok := groups[key]
	if !ok {
		grp = &aggGroup{firstRow: row.Clone(), firstSeq: seq, states: make([]aggState, len(s.Items))}
		groups[key] = grp
	}
	for k, item := range s.Items {
		if item.Agg == sqlparse.AggNone {
			continue
		}
		if item.Expr == nil { // COUNT(*)
			grp.states[k].count++
			continue
		}
		v, err := EvalValue(item.Expr, env)
		if err != nil {
			return err
		}
		grp.states[k].observe(v)
	}
	return nil
}

func (a *aggIter) Open() error {
	a.env.layout = a.node.Layout
	a.out, a.pos = nil, 0

	var groups map[string]*aggGroup
	var err error
	if a.input != nil {
		groups, err = a.foldSerial()
	} else {
		groups, err = a.foldParallel()
	}
	if err != nil {
		return err
	}
	return a.emit(groups)
}

func (a *aggIter) foldSerial() (map[string]*aggGroup, error) {
	if err := a.input.Open(); err != nil {
		return nil, err
	}
	groups := map[string]*aggGroup{}
	var seq int64
	for {
		row, ok, err := a.input.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return groups, nil
		}
		if err := foldRow(a.node, &a.env, row, seq, groups); err != nil {
			return nil, err
		}
		seq++
	}
}

// foldParallel folds partial group maps per worker over the input
// chain's morsels, then merges them. Each worker stamps rows with
// idx*morselRows+local — morsel-ordered sequences — so the merged
// first-seen order equals the serial one.
func (a *aggIter) foldParallel() (map[string]*aggGroup, error) {
	src, err := chainSource(a.node.Input)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("engine: internal: parallel aggregate input is not a morsel chain")
	}
	partials := make([]map[string]*aggGroup, a.node.Dop)
	err = runMorsels(src, a.node.Dop, func(w int) func(idx int, it Iterator) error {
		groups := map[string]*aggGroup{}
		partials[w] = groups
		env := &rowEnv{layout: a.node.Layout}
		return func(idx int, it Iterator) error {
			seq := int64(idx) * morselRows
			for {
				row, ok, err := it.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := foldRow(a.node, env, row, seq, groups); err != nil {
					return err
				}
				seq++
			}
		}
	})
	if err != nil {
		return nil, err
	}

	merged := map[string]*aggGroup{}
	for _, part := range partials {
		for key, g := range part {
			ex, ok := merged[key]
			if !ok {
				merged[key] = g
				continue
			}
			if g.firstSeq < ex.firstSeq {
				// g saw the group earlier: keep its identity, fold ex in.
				for k := range g.states {
					g.states[k].merge(&ex.states[k])
				}
				merged[key] = g
			} else {
				for k := range ex.states {
					ex.states[k].merge(&g.states[k])
				}
			}
		}
	}
	return merged, nil
}

// emit finalizes every group — in first-seen input order — applying
// HAVING against the named output columns.
func (a *aggIter) emit(groups map[string]*aggGroup) error {
	s := a.node
	order := make([]string, 0, len(groups))
	for key := range groups {
		order = append(order, key)
	}
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]].firstSeq < groups[order[j]].firstSeq
	})

	if len(s.GroupBy) == 0 && len(order) == 0 {
		key := "∅"
		groups[key] = &aggGroup{states: make([]aggState, len(s.Items))}
		order = append(order, key)
	}

	havingEnv := newOutputEnv(s.Names)
	for _, key := range order {
		grp := groups[key]
		out := make(storage.Row, len(s.Items))
		for k, item := range s.Items {
			if item.Agg != sqlparse.AggNone {
				out[k] = grp.states[k].finalize(item.Agg)
				continue
			}
			if grp.firstRow == nil {
				out[k] = storage.Null()
				continue
			}
			a.env.row = grp.firstRow
			v, err := EvalValue(item.Expr, &a.env)
			if err != nil {
				return err
			}
			out[k] = v
		}
		if s.Having != nil {
			havingEnv.row = out
			t, err := EvalPredicate(s.Having, havingEnv)
			if err != nil {
				return err
			}
			if t != TriTrue {
				continue
			}
		}
		a.out = append(a.out, out)
	}
	return nil
}

func (a *aggIter) Next() (storage.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, true, nil
}

func (a *aggIter) Close() error {
	a.out = nil
	if a.input != nil {
		return a.input.Close()
	}
	return nil
}
