package exec

import (
	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// aggState accumulates one aggregate over one group.
type aggState struct {
	count   int
	sum     float64
	min     storage.Value
	max     storage.Value
	any     bool
	numeric bool
}

func (st *aggState) observe(v storage.Value) {
	if v.IsNull() {
		return
	}
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.sum += f
		st.numeric = true
	}
	if !st.any {
		st.min, st.max, st.any = v, v, true
		return
	}
	if c, err := v.Compare(st.min); err == nil && c < 0 {
		st.min = v
	}
	if c, err := v.Compare(st.max); err == nil && c > 0 {
		st.max = v
	}
}

func (st *aggState) finalize(agg sqlparse.AggFunc) storage.Value {
	switch agg {
	case sqlparse.AggCount:
		return storage.Int(int64(st.count))
	case sqlparse.AggSum:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum)
	case sqlparse.AggAvg:
		if st.count == 0 || !st.numeric {
			return storage.Null()
		}
		return storage.Float(st.sum / float64(st.count))
	case sqlparse.AggMin:
		if !st.any {
			return storage.Null()
		}
		return st.min
	case sqlparse.AggMax:
		if !st.any {
			return storage.Null()
		}
		return st.max
	default:
		return storage.Null()
	}
}

// aggIter implements HashAggregate: Open consumes the whole input,
// hashing rows into groups and folding aggregate states; Next emits one
// output row per group in first-seen order, with HAVING applied against
// the output columns. Scalar (group-key) items evaluate against the
// group's first row. Aggregates without GROUP BY yield exactly one row,
// even for empty input (standard SQL).
type aggIter struct {
	input Iterator
	node  *plan.Aggregate
	env   rowEnv

	out []storage.Row
	pos int
}

type aggGroup struct {
	firstRow storage.Row
	states   []aggState
}

func (a *aggIter) Open() error {
	if err := a.input.Open(); err != nil {
		return err
	}
	a.env.layout = a.node.Layout
	a.out, a.pos = nil, 0
	s := a.node

	groups := map[string]*aggGroup{}
	var order []string // group insertion order, for deterministic output
	for {
		row, ok, err := a.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		a.env.row = row
		keyVals := make(storage.Row, len(s.GroupBy))
		for gi, g := range s.GroupBy {
			v, err := EvalValue(g, &a.env)
			if err != nil {
				return err
			}
			keyVals[gi] = v
		}
		key := rowKey(keyVals)
		grp, ok2 := groups[key]
		if !ok2 {
			grp = &aggGroup{firstRow: row.Clone(), states: make([]aggState, len(s.Items))}
			groups[key] = grp
			order = append(order, key)
		}
		for k, item := range s.Items {
			if item.Agg == sqlparse.AggNone {
				continue
			}
			if item.Expr == nil { // COUNT(*)
				grp.states[k].count++
				continue
			}
			v, err := EvalValue(item.Expr, &a.env)
			if err != nil {
				return err
			}
			grp.states[k].observe(v)
		}
	}

	if len(s.GroupBy) == 0 && len(order) == 0 {
		key := "∅"
		groups[key] = &aggGroup{states: make([]aggState, len(s.Items))}
		order = append(order, key)
	}

	havingEnv := newOutputEnv(s.Names)
	for _, key := range order {
		grp := groups[key]
		out := make(storage.Row, len(s.Items))
		for k, item := range s.Items {
			if item.Agg != sqlparse.AggNone {
				out[k] = grp.states[k].finalize(item.Agg)
				continue
			}
			if grp.firstRow == nil {
				out[k] = storage.Null()
				continue
			}
			a.env.row = grp.firstRow
			v, err := EvalValue(item.Expr, &a.env)
			if err != nil {
				return err
			}
			out[k] = v
		}
		if s.Having != nil {
			havingEnv.row = out
			t, err := EvalPredicate(s.Having, havingEnv)
			if err != nil {
				return err
			}
			if t != TriTrue {
				continue
			}
		}
		a.out = append(a.out, out)
	}
	return nil
}

func (a *aggIter) Next() (storage.Row, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, true, nil
}

func (a *aggIter) Close() error {
	a.out = nil
	return a.input.Close()
}
