// Package exec executes logical plans from internal/engine/plan as a tree
// of volcano-style iterators: each operator pulls rows from its input via
// Open/Next/Close, so results stream from the storage cursor to the
// caller without materializing intermediate row sets (except where the
// operator is inherently blocking: sort, aggregation, a join's build
// side).
//
// It also owns SQL expression evaluation under three-valued logic (NULL
// comparisons yield UNKNOWN, which filters the row out), shared with the
// engine's DML paths.
package exec

import (
	"fmt"

	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Tribool is SQL three-valued logic.
type Tribool uint8

const (
	TriFalse Tribool = iota
	TriTrue
	TriUnknown
)

func triOf(b bool) Tribool {
	if b {
		return TriTrue
	}
	return TriFalse
}

// Not is 3VL negation (UNKNOWN stays UNKNOWN).
func (t Tribool) Not() Tribool {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriUnknown
	}
}

// And is 3VL conjunction.
func (t Tribool) And(o Tribool) Tribool {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriTrue
}

// Or is 3VL disjunction.
func (t Tribool) Or(o Tribool) Tribool {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriFalse
}

// Env resolves column references during expression evaluation. The table
// qualifier is empty for unqualified references.
type Env interface {
	Lookup(table, name string) (storage.Value, error)
}

// EvalValue computes a scalar expression for one row.
func EvalValue(e sqlparse.Expr, env Env) (storage.Value, error) {
	switch n := e.(type) {
	case *sqlparse.Literal:
		return literalValue(n), nil
	case *sqlparse.ColumnRef:
		return env.Lookup(n.Table, n.Name)
	case *sqlparse.UnaryExpr:
		switch n.Op {
		case "-":
			v, err := EvalValue(n.Expr, env)
			if err != nil {
				return storage.Null(), err
			}
			if v.IsNull() {
				return storage.Null(), nil
			}
			if i, ok := v.AsInt(); ok && v.Kind() == storage.KindInt {
				return storage.Int(-i), nil
			}
			if f, ok := v.AsFloat(); ok {
				return storage.Float(-f), nil
			}
			return storage.Null(), fmt.Errorf("engine: cannot negate %s value", v.Kind())
		case "NOT":
			t, err := EvalPredicate(n, env)
			if err != nil {
				return storage.Null(), err
			}
			return triValue(t), nil
		}
		return storage.Null(), fmt.Errorf("engine: unknown unary operator %q", n.Op)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
			t, err := EvalPredicate(n, env)
			if err != nil {
				return storage.Null(), err
			}
			return triValue(t), nil
		case "+", "-", "*", "/":
			return evalArith(n, env)
		}
		return storage.Null(), fmt.Errorf("engine: unknown binary operator %q", n.Op)
	case *sqlparse.IsNullExpr:
		t, err := EvalPredicate(n, env)
		if err != nil {
			return storage.Null(), err
		}
		return triValue(t), nil
	default:
		return storage.Null(), fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func triValue(t Tribool) storage.Value {
	switch t {
	case TriTrue:
		return storage.Bool(true)
	case TriFalse:
		return storage.Bool(false)
	default:
		return storage.Null()
	}
}

// literalValue delegates to the planner's single authoritative
// Literal→Value switch, so the evaluator and the index-probe paths can
// never disagree about a literal's storage value.
func literalValue(l *sqlparse.Literal) storage.Value { return plan.LitValue(l) }

func evalArith(n *sqlparse.BinaryExpr, env Env) (storage.Value, error) {
	l, err := EvalValue(n.Left, env)
	if err != nil {
		return storage.Null(), err
	}
	r, err := EvalValue(n.Right, env)
	if err != nil {
		return storage.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return storage.Null(), nil
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return storage.Null(), fmt.Errorf("engine: arithmetic on non-numeric values (%s %s %s)", l.Kind(), n.Op, r.Kind())
	}
	bothInt := l.Kind() == storage.KindInt && r.Kind() == storage.KindInt
	switch n.Op {
	case "+":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li + ri), nil
		}
		return storage.Float(lf + rf), nil
	case "-":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li - ri), nil
		}
		return storage.Float(lf - rf), nil
	case "*":
		if bothInt {
			li, _ := l.AsInt()
			ri, _ := r.AsInt()
			return storage.Int(li * ri), nil
		}
		return storage.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return storage.Null(), fmt.Errorf("engine: division by zero")
		}
		return storage.Float(lf / rf), nil
	}
	return storage.Null(), fmt.Errorf("engine: unknown arithmetic operator %q", n.Op)
}

// EvalPredicate computes a boolean expression under three-valued logic.
func EvalPredicate(e sqlparse.Expr, env Env) (Tribool, error) {
	switch n := e.(type) {
	case *sqlparse.Literal:
		if n.Kind == sqlparse.LitNull {
			return TriUnknown, nil
		}
		if n.Kind == sqlparse.LitBool {
			return triOf(n.Bool), nil
		}
		return TriFalse, fmt.Errorf("engine: %s literal used as predicate", n.String())
	case *sqlparse.ColumnRef:
		v, err := env.Lookup(n.Table, n.Name)
		if err != nil {
			return TriFalse, err
		}
		if v.IsNull() {
			return TriUnknown, nil
		}
		if b, ok := v.AsBool(); ok {
			return triOf(b), nil
		}
		return TriFalse, fmt.Errorf("engine: column %q is not boolean", n.Name)
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			t, err := EvalPredicate(n.Expr, env)
			if err != nil {
				return TriFalse, err
			}
			return t.Not(), nil
		}
		return TriFalse, fmt.Errorf("engine: %q used as predicate", n.Op)
	case *sqlparse.IsNullExpr:
		v, err := EvalValue(n.Expr, env)
		if err != nil {
			return TriFalse, err
		}
		isNull := v.IsNull()
		if n.Negate {
			return triOf(!isNull), nil
		}
		return triOf(isNull), nil
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND":
			l, err := EvalPredicate(n.Left, env)
			if err != nil {
				return TriFalse, err
			}
			r, err := EvalPredicate(n.Right, env)
			if err != nil {
				return TriFalse, err
			}
			return l.And(r), nil
		case "OR":
			l, err := EvalPredicate(n.Left, env)
			if err != nil {
				return TriFalse, err
			}
			r, err := EvalPredicate(n.Right, env)
			if err != nil {
				return TriFalse, err
			}
			return l.Or(r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			l, err := EvalValue(n.Left, env)
			if err != nil {
				return TriFalse, err
			}
			r, err := EvalValue(n.Right, env)
			if err != nil {
				return TriFalse, err
			}
			if l.IsNull() || r.IsNull() {
				return TriUnknown, nil
			}
			switch n.Op {
			case "=":
				return triOf(l.Equal(r)), nil
			case "!=":
				return triOf(!l.Equal(r)), nil
			default:
				c, err := l.Compare(r)
				if err != nil {
					return TriFalse, err
				}
				switch n.Op {
				case "<":
					return triOf(c < 0), nil
				case "<=":
					return triOf(c <= 0), nil
				case ">":
					return triOf(c > 0), nil
				case ">=":
					return triOf(c >= 0), nil
				}
			}
		}
		return TriFalse, fmt.Errorf("engine: operator %q used as predicate", n.Op)
	default:
		return TriFalse, fmt.Errorf("engine: unsupported predicate %T", e)
	}
}
