package exec

import "testing"

func TestThreeValuedLogicTruthTable(t *testing.T) {
	cases := []struct {
		a, b, and, or Tribool
	}{
		{TriTrue, TriTrue, TriTrue, TriTrue},
		{TriTrue, TriFalse, TriFalse, TriTrue},
		{TriTrue, TriUnknown, TriUnknown, TriTrue},
		{TriFalse, TriFalse, TriFalse, TriFalse},
		{TriFalse, TriUnknown, TriFalse, TriUnknown},
		{TriUnknown, TriUnknown, TriUnknown, TriUnknown},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); got != c.and {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.and)
		}
		if got := c.b.And(c.a); got != c.and {
			t.Errorf("AND must be symmetric")
		}
		if got := c.a.Or(c.b); got != c.or {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.or)
		}
		if got := c.b.Or(c.a); got != c.or {
			t.Errorf("OR must be symmetric")
		}
	}
	if TriUnknown.Not() != TriUnknown || TriTrue.Not() != TriFalse {
		t.Fatal("NOT truth table broken")
	}
}
