package exec

import (
	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// indexIter streams the rows an index probe selects, through the storage
// layer's batched index cursor: matching row IDs come from the index
// under the table's read lock, and only those rows are copied out, batch
// by batch — the scan primitive for IndexScan (point probe) and
// IndexRange (bound probe) plan nodes. The residual predicate runs inside
// the refill like a pushed-down scan filter, so rows it rejects are never
// copied at all. Rows returned by Next alias the cursor's batch buffer.
type indexIter struct {
	table    *storage.Table
	index    string
	probe    storage.IndexProbe
	residual sqlparse.Expr
	layout   *plan.Layout

	cur *storage.IndexCursor
	env rowEnv
}

// newIndexScanIter builds the iterator for an equality point probe.
func newIndexScanIter(n *plan.IndexScan) *indexIter {
	v := plan.LitValue(n.Key)
	return &indexIter{
		table: n.Table, index: n.Index,
		probe:    storage.IndexProbe{Point: &v},
		residual: n.Residual, layout: n.Layout,
	}
}

// rangeProbeOf lowers an IndexRange node's bounds into a storage probe —
// shared by the serial iterator and the morsel partitioner.
func rangeProbeOf(n *plan.IndexRange) storage.IndexProbe {
	probe := storage.IndexProbe{LoInc: n.LoInc, HiInc: n.HiInc}
	if n.Lo != nil {
		v := plan.LitValue(n.Lo)
		probe.Lo = &v
	}
	if n.Hi != nil {
		v := plan.LitValue(n.Hi)
		probe.Hi = &v
	}
	return probe
}

// newIndexRangeIter builds the iterator for a bound probe.
func newIndexRangeIter(n *plan.IndexRange) *indexIter {
	return &indexIter{
		table: n.Table, index: n.Index,
		probe:    rangeProbeOf(n),
		residual: n.Residual, layout: n.Layout,
	}
}

func (s *indexIter) Open() error {
	cur, err := s.table.NewIndexCursor(s.index, s.probe, 0)
	if err != nil {
		return err
	}
	s.cur = cur
	s.env.layout = s.layout
	if s.residual != nil {
		pred := s.residual
		s.cur.SetFilter(func(row storage.Row) (bool, error) {
			s.env.row = row
			t, err := EvalPredicate(pred, &s.env)
			return t == TriTrue, err
		})
	}
	return nil
}

func (s *indexIter) Next() (storage.Row, bool, error) {
	row, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return row, true, nil
}

func (s *indexIter) Close() error { return nil }
