package exec

import (
	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// indexIter streams the rows an index probe selects, through the storage
// layer's batched index cursor: matching row IDs come from the index
// under the table's read lock, and only those rows are copied out, batch
// by batch — the scan primitive for IndexScan (point probe) and
// IndexRange (bound probe) plan nodes. The residual predicate runs inside
// the refill like a pushed-down scan filter, so rows it rejects are never
// copied at all. Rows returned by Next alias the cursor's batch buffer.
type indexIter struct {
	table    *storage.Table
	index    string
	probe    storage.IndexProbe
	residual sqlparse.Expr
	layout   *plan.Layout

	cur *storage.IndexCursor
	env rowEnv
}

// pointProbeOf lowers an IndexScan node's equality key — composite when
// the planner matched several conjuncts — into a storage probe. Shared by
// the serial iterator and the index-only path.
func pointProbeOf(n *plan.IndexScan) storage.IndexProbe {
	if len(n.Keys) > 0 {
		key := make([]storage.Value, len(n.Keys))
		for i, l := range n.Keys {
			key[i] = plan.LitValue(l)
		}
		return storage.IndexProbe{Key: key}
	}
	v := plan.LitValue(n.Key)
	return storage.IndexProbe{Point: &v}
}

// newIndexScanIter builds the iterator for an equality point probe.
func newIndexScanIter(n *plan.IndexScan) *indexIter {
	return &indexIter{
		table: n.Table, index: n.Index,
		probe:    pointProbeOf(n),
		residual: n.Residual, layout: n.Layout,
	}
}

// rangeProbeOf lowers an IndexRange node's bounds into a storage probe —
// shared by the serial iterator, the morsel partitioner and the
// index-only path. Desc becomes a reversed probe: same rows, opposite
// key order.
func rangeProbeOf(n *plan.IndexRange) storage.IndexProbe {
	probe := storage.IndexProbe{LoInc: n.LoInc, HiInc: n.HiInc, Reverse: n.Desc}
	if n.Lo != nil {
		v := plan.LitValue(n.Lo)
		probe.Lo = &v
	}
	if n.Hi != nil {
		v := plan.LitValue(n.Hi)
		probe.Hi = &v
	}
	return probe
}

// newIndexRangeIter builds the iterator for a bound probe.
func newIndexRangeIter(n *plan.IndexRange) *indexIter {
	return &indexIter{
		table: n.Table, index: n.Index,
		probe:    rangeProbeOf(n),
		residual: n.Residual, layout: n.Layout,
	}
}

func (s *indexIter) Open() error {
	cur, err := s.table.NewIndexCursor(s.index, s.probe, 0)
	if err != nil {
		return err
	}
	s.cur = cur
	s.env.layout = s.layout
	if s.residual != nil {
		pred := s.residual
		s.cur.SetFilter(func(row storage.Row) (bool, error) {
			s.env.row = row
			t, err := EvalPredicate(pred, &s.env)
			return t == TriTrue, err
		})
	}
	return nil
}

func (s *indexIter) Next() (storage.Row, bool, error) {
	row, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return row, true, nil
}

func (s *indexIter) Close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// indexOnlyIter serves a covering query straight off the index: the
// executor never touches table data. Point probes emit the probe key
// itself once per matching row ID; range probes emit each entry's key
// tuple in probe order. Emitted rows are shaped like the plan node's
// pseudo-layout (the key columns, in index order) and are owned by the
// iterator's backing arrays — safe to alias until Close.
type indexOnlyIter struct {
	node *plan.IndexOnlyScan

	ids  []int
	keys [][]storage.Value
	key  storage.Row // point form: the one shared key tuple
	pos  int
}

func (s *indexOnlyIter) Open() error {
	probe := indexOnlyProbeOf(s.node)
	ids, keys, err := s.node.Table.IndexOnlyProbe(s.node.Index, probe)
	if err != nil {
		return err
	}
	s.ids, s.keys, s.pos = ids, keys, 0
	if probe.Key != nil {
		s.key = storage.Row(probe.Key)
	} else if probe.Point != nil {
		s.key = storage.Row{*probe.Point}
	}
	return nil
}

func (s *indexOnlyIter) Next() (storage.Row, bool, error) {
	if s.pos >= len(s.ids) {
		return nil, false, nil
	}
	i := s.pos
	s.pos++
	if s.keys == nil {
		return s.key, true, nil
	}
	return storage.Row(s.keys[i]), true, nil
}

func (s *indexOnlyIter) Close() error { return nil }

// indexOnlyProbeOf lowers an IndexOnlyScan node into its storage probe:
// point form when key literals are present, range form otherwise.
func indexOnlyProbeOf(n *plan.IndexOnlyScan) storage.IndexProbe {
	if len(n.Keys) > 0 {
		key := make([]storage.Value, len(n.Keys))
		for i, l := range n.Keys {
			key[i] = plan.LitValue(l)
		}
		return storage.IndexProbe{Key: key}
	}
	probe := storage.IndexProbe{LoInc: n.LoInc, HiInc: n.HiInc, Reverse: n.Desc}
	if n.Lo != nil {
		v := plan.LitValue(n.Lo)
		probe.Lo = &v
	}
	if n.Hi != nil {
		v := plan.LitValue(n.Hi)
		probe.Hi = &v
	}
	return probe
}
