package exec

import (
	"fmt"
	"strconv"
	"strings"

	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// Iterator is the volcano row-pull contract every operator implements.
//
// Open prepares the operator (blocking operators consume their whole
// input here); Next returns the next row, reporting ok=false at end of
// stream; Close releases resources. Rows returned by Next may alias
// internal buffers and are valid only until the following Next call —
// callers that retain rows must Clone them. Operators that construct
// fresh rows (Project, Aggregate, HashJoin output) hand over ownership.
type Iterator interface {
	Open() error
	Next() (storage.Row, bool, error)
	Close() error
}

// Build lowers a plan node into its iterator tree.
func Build(n plan.Node) (Iterator, error) { return build(n, nil) }

// BuildTraced lowers a plan node like Build, additionally wrapping every
// materialized iterator so tr records per-operator rows-out and wall
// time. Nodes inside morsel-parallel chains build no iterator and record
// no stats (see Trace). With tr == nil it is exactly Build — the
// tracing-off path adds zero work.
func BuildTraced(n plan.Node, tr *Trace) (Iterator, error) { return build(n, tr) }

func build(n plan.Node, tr *Trace) (Iterator, error) {
	it, err := buildRaw(n, tr)
	if err != nil || tr == nil {
		return it, err
	}
	return tr.wrap(n, it), nil
}

func buildRaw(n plan.Node, tr *Trace) (Iterator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return &scanIter{node: t}, nil
	case *plan.IndexScan:
		return newIndexScanIter(t), nil
	case *plan.IndexRange:
		return newIndexRangeIter(t), nil
	case *plan.IndexOnlyScan:
		return &indexOnlyIter{node: t}, nil
	case *plan.Filter:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &filterIter{input: in, node: t}, nil
	case *plan.Gather:
		return gatherOf(t), nil
	case *plan.HashJoin:
		// A side the Parallelize pass marked as a morsel chain gets no
		// child iterator: the join runs that phase (build fill or probe)
		// over the chain's morsels itself.
		j := &hashJoinIter{node: t}
		if !(t.Dop > 1 && parallelChain(t.Left)) {
			left, err := build(t.Left, tr)
			if err != nil {
				return nil, err
			}
			j.left = left
		}
		if !(t.Dop > 1 && parallelChain(t.Right)) {
			right, err := build(t.Right, tr)
			if err != nil {
				return nil, err
			}
			j.right = right
		}
		return j, nil
	case *plan.Project:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &projectIter{input: in, node: t}, nil
	case *plan.Aggregate:
		if t.Dop > 1 && parallelChain(t.Input) {
			return &aggIter{node: t}, nil // folds the chain's morsels itself
		}
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &aggIter{input: in, node: t}, nil
	case *plan.Sort:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &sortIter{input: in, keys: t.Keys, env: keyEnv(t.Layout, t.ByOutput)}, nil
	case *plan.TopN:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &topNIter{input: in, keys: t.Keys, n: t.N, env: keyEnv(t.Layout, t.ByOutput)}, nil
	case *plan.Distinct:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &distinctIter{input: in}, nil
	case *plan.Limit:
		in, err := build(t.Input, tr)
		if err != nil {
			return nil, err
		}
		return &limitIter{input: in, n: t.N}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported plan node %T", n)
	}
}

// rowEnv resolves references against a base (layout-shaped) row. The row
// field is repointed per row, so one env serves a whole scan.
type rowEnv struct {
	layout *plan.Layout
	row    storage.Row
}

func (e *rowEnv) Lookup(table, name string) (storage.Value, error) {
	idx, err := e.layout.Resolve(table, name)
	if err != nil {
		return storage.Null(), err
	}
	return e.row[idx], nil
}

// outputEnv resolves references against named output columns (a grouped
// query's result shape), for HAVING and grouped ORDER BY.
type outputEnv struct {
	names map[string]int
	row   storage.Row
}

// newOutputEnv indexes names; on duplicates the first occurrence wins.
func newOutputEnv(names []string) *outputEnv {
	idx := map[string]int{}
	for i, n := range names {
		lower := strings.ToLower(n)
		if _, dup := idx[lower]; !dup {
			idx[lower] = i
		}
	}
	return &outputEnv{names: idx}
}

func (e *outputEnv) Lookup(table, name string) (storage.Value, error) {
	if table == "" {
		if i, ok := e.names[strings.ToLower(name)]; ok {
			return e.row[i], nil
		}
	}
	return storage.Null(), fmt.Errorf("engine: HAVING/ORDER BY column %q is not in the grouped output", name)
}

// bindEnv is the repointable env shared by sort/topN key evaluation: one
// of layout or byOutput is set, matching the plan node.
type bindEnv interface {
	Env
	bind(row storage.Row)
}

func (e *rowEnv) bind(row storage.Row)    { e.row = row }
func (e *outputEnv) bind(row storage.Row) { e.row = row }

func keyEnv(layout *plan.Layout, byOutput []string) bindEnv {
	if layout != nil {
		return &rowEnv{layout: layout}
	}
	return newOutputEnv(byOutput)
}

// rowKey builds a deduplication key for DISTINCT and GROUP BY. The kind
// tag keeps 1 and '1' distinct; values are length-prefixed so text
// containing separator or kind-tag bytes cannot forge a collision
// between different rows.
func rowKey(row storage.Row) string {
	var sb strings.Builder
	for _, v := range row {
		s := v.String()
		sb.WriteByte(byte(v.Kind()))
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// Drain runs an iterator to completion, returning all rows. It does NOT
// clone: the caller must ensure the tree's root owns the rows it emits
// (every root the planner produces — Project, Aggregate, or an operator
// above them — does; a hand-built tree rooted at Scan or Filter would
// return rows aliasing the reused batch buffer).
func Drain(it Iterator) ([]storage.Row, error) {
	if err := it.Open(); err != nil {
		_ = it.Close()
		return nil, err
	}
	defer it.Close()
	var out []storage.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
