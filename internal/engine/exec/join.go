package exec

import (
	"errors"
	"sort"
	"strconv"
	"sync"

	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// hashJoinIter is an inner equi-join: Open drains the right (build) input
// into a hash table keyed on the join columns; Next streams the left
// (probe) input, emitting one combined row per match. Rows with a NULL
// join key never match (NULL = anything is UNKNOWN under three-valued
// logic), so they are dropped on both sides. Residual (non-equi) ON
// conjuncts filter the combined rows.
//
// With no keys, the single hash bucket degenerates into a cross join,
// filtered by the residual.
//
// When the plan's Dop is > 1 and a child is a morsel chain, that phase
// runs parallel: build workers insert sequence-stamped entries into a
// sharded table (buckets are re-sorted by sequence after the barrier, so
// probe output matches a serial build exactly), and the probe side
// streams through the ordered gather exchange. Either side can be
// parallel independently; a non-chain child (e.g. a lower join) keeps
// its serial iterator.
type hashJoinIter struct {
	node        *plan.HashJoin
	left, right Iterator // serial children; nil when that side runs parallel

	table *joinTable

	leftEnv  rowEnv
	rightEnv rowEnv
	outEnv   rowEnv

	// Reusable per-iterator scratch for key encoding and key-value
	// buffers: the probe hot path allocates nothing per input row.
	scratch []byte
	valBuf  []storage.Value

	// Serial probe state: the current left row's pending matches.
	leftRow storage.Row
	matches []joinEntry
	mi      int

	gather *gatherIter // parallel probe exchange, nil when left is serial
}

// appendJoinKey appends an encoding of the key values to dst, with the
// same equality semantics as the `=` operator: numeric values compare
// across int/float, so both hash through their float form. Text is
// length-prefixed so values containing separator bytes cannot forge a
// multi-key collision (a key list is equal iff every component is).
// ok=false when any value is NULL. The appended dst is returned so
// callers can keep one scratch buffer per iterator instead of allocating
// per row.
func appendJoinKey(dst []byte, vals []storage.Value) ([]byte, bool) {
	for _, v := range vals {
		switch v.Kind() {
		case storage.KindNull:
			return dst, false
		case storage.KindBool:
			b, _ := v.AsBool()
			if b {
				dst = append(dst, 'b', '1')
			} else {
				dst = append(dst, 'b', '0')
			}
		case storage.KindInt, storage.KindFloat:
			f, _ := v.AsFloat()
			dst = append(dst, 'n')
			dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		case storage.KindText:
			t, _ := v.AsText()
			dst = append(dst, 't')
			dst = strconv.AppendInt(dst, int64(len(t)), 10)
			dst = append(dst, ':')
			dst = append(dst, t...)
		}
		dst = append(dst, 0x1f)
	}
	return dst, true
}

// joinTable is the shared build table: a fixed shard array so parallel
// build workers contend on a shard mutex, not one global lock. After the
// build barrier it is read-only and probed without locking.
const joinShards = 64

type joinEntry struct {
	seq int64 // build-side row sequence, for deterministic probe output
	row storage.Row
}

type joinShard struct {
	mu sync.Mutex
	m  map[string][]joinEntry
}

type joinTable struct{ shards [joinShards]joinShard }

func newJoinTable() *joinTable {
	jt := &joinTable{}
	for i := range jt.shards {
		jt.shards[i] = joinShard{m: map[string][]joinEntry{}}
	}
	return jt
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (jt *joinTable) insert(key []byte, seq int64, row storage.Row) {
	s := &jt.shards[fnv1a(key)%joinShards]
	s.mu.Lock()
	s.m[string(key)] = append(s.m[string(key)], joinEntry{seq: seq, row: row})
	s.mu.Unlock()
}

// lookup is lock-free: only legal after the build barrier.
func (jt *joinTable) lookup(key []byte) []joinEntry {
	return jt.shards[fnv1a(key)%joinShards].m[string(key)]
}

// sortBuckets orders every bucket by build sequence. Parallel workers
// insert in claim-completion order; sorting restores the serial build's
// bucket order, so probing emits byte-identical row sequences at any dop.
func (jt *joinTable) sortBuckets() {
	for i := range jt.shards {
		for _, entries := range jt.shards[i].m {
			sort.Slice(entries, func(a, b int) bool { return entries[a].seq < entries[b].seq })
		}
	}
}

func (j *hashJoinIter) Open() error {
	j.leftEnv.layout = j.node.LeftLayout
	j.rightEnv.layout = j.node.RightLayout
	j.outEnv.layout = j.node.Layout
	j.table = newJoinTable()
	j.leftRow, j.matches, j.mi = nil, nil, 0

	if err := j.build(); err != nil {
		return err
	}
	if j.left != nil {
		return j.left.Open()
	}
	j.gather = &gatherIter{dop: j.node.Dop, mkSource: j.probeSource}
	return j.gather.Open()
}

// build fills the hash table from the right input — serially through the
// child iterator, or with Dop workers over the chain's morsels. Build
// rows are cloned either way: the scan beneath reuses its batch buffer.
func (j *hashJoinIter) build() error {
	if j.right != nil {
		if err := j.right.Open(); err != nil {
			return err
		}
		var seq int64
		for {
			row, ok, err := j.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := j.insertBuildRow(row, seq, &j.rightEnv, &j.scratch, &j.valBuf); err != nil {
				return err
			}
			seq++
		}
	}

	src, err := chainSource(j.node.Right)
	if err != nil {
		return err
	}
	if src == nil {
		return errors.New("engine: internal: parallel build side is not a morsel chain")
	}
	err = runMorsels(src, j.node.Dop, func(int) func(idx int, it Iterator) error {
		env := rowEnv{layout: j.node.RightLayout}
		var scratch []byte
		var vals []storage.Value
		return func(idx int, it Iterator) error {
			seq := int64(idx) * morselRows
			for {
				row, ok, err := it.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := j.insertBuildRow(row, seq, &env, &scratch, &vals); err != nil {
					return err
				}
				seq++
			}
		}
	})
	if err != nil {
		return err
	}
	j.table.sortBuckets()
	return nil
}

// insertBuildRow evaluates the build keys into the caller's scratch
// buffers and inserts the cloned row. NULL keys are dropped.
func (j *hashJoinIter) insertBuildRow(row storage.Row, seq int64, env *rowEnv, scratch *[]byte, valBuf *[]storage.Value) error {
	env.row = row
	vals := (*valBuf)[:0]
	for _, e := range j.node.RightKeys {
		v, err := EvalValue(e, env)
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	*valBuf = vals
	key, ok := appendJoinKey((*scratch)[:0], vals)
	*scratch = key
	if !ok {
		return nil
	}
	j.table.insert(key, seq, row.Clone())
	return nil
}

func (j *hashJoinIter) Next() (storage.Row, bool, error) {
	if j.gather != nil {
		return j.gather.Next()
	}
	for {
		for j.mi < len(j.matches) {
			right := j.matches[j.mi].row
			j.mi++
			combined := make(storage.Row, 0, len(j.leftRow)+len(right))
			combined = append(append(combined, j.leftRow...), right...)
			if j.node.Residual != nil {
				j.outEnv.row = combined
				t, err := EvalPredicate(j.node.Residual, &j.outEnv)
				if err != nil {
					return nil, false, err
				}
				if t != TriTrue {
					continue
				}
			}
			return combined, true, nil
		}

		row, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.leftEnv.row = row
		vals := j.valBuf[:0]
		for _, e := range j.node.LeftKeys {
			v, err := EvalValue(e, &j.leftEnv)
			if err != nil {
				return nil, false, err
			}
			vals = append(vals, v)
		}
		j.valBuf = vals
		key, keyOK := appendJoinKey(j.scratch[:0], vals)
		j.scratch = key
		if !keyOK {
			continue
		}
		// No clone: each emitted row copies the left values, and the scan
		// buffer beneath is only recycled on the next left pull.
		j.matches, j.mi, j.leftRow = j.table.lookup(key), 0, row
	}
}

// probeSource wraps the left chain's morsels in probe iterators for the
// gather exchange: each morsel probes the shared (now read-only) build
// table with worker-private envs and scratch, emitting owned combined
// rows.
func (j *hashJoinIter) probeSource() (*morselSource, error) {
	src, err := chainSource(j.node.Left)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("engine: internal: parallel probe side is not a morsel chain")
	}
	inner := src.open
	src.open = func(i int) (Iterator, error) {
		it, err := inner(i)
		if err != nil {
			return nil, err
		}
		return &probeMorselIter{input: it, j: j}, nil
	}
	src.owned = true // combined rows are fresh allocations
	return src, nil
}

// probeMorselIter runs the serial probe loop over one morsel of the left
// input.
type probeMorselIter struct {
	input Iterator
	j     *hashJoinIter

	leftEnv rowEnv
	outEnv  rowEnv
	scratch []byte
	valBuf  []storage.Value

	leftRow storage.Row
	matches []joinEntry
	mi      int
}

func (p *probeMorselIter) Open() error {
	p.leftEnv.layout = p.j.node.LeftLayout
	p.outEnv.layout = p.j.node.Layout
	return p.input.Open()
}

func (p *probeMorselIter) Next() (storage.Row, bool, error) {
	node := p.j.node
	for {
		for p.mi < len(p.matches) {
			right := p.matches[p.mi].row
			p.mi++
			combined := make(storage.Row, 0, len(p.leftRow)+len(right))
			combined = append(append(combined, p.leftRow...), right...)
			if node.Residual != nil {
				p.outEnv.row = combined
				t, err := EvalPredicate(node.Residual, &p.outEnv)
				if err != nil {
					return nil, false, err
				}
				if t != TriTrue {
					continue
				}
			}
			return combined, true, nil
		}

		row, ok, err := p.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		p.leftEnv.row = row
		vals := p.valBuf[:0]
		for _, e := range node.LeftKeys {
			v, err := EvalValue(e, &p.leftEnv)
			if err != nil {
				return nil, false, err
			}
			vals = append(vals, v)
		}
		p.valBuf = vals
		key, keyOK := appendJoinKey(p.scratch[:0], vals)
		p.scratch = key
		if !keyOK {
			continue
		}
		p.matches, p.mi, p.leftRow = p.j.table.lookup(key), 0, row
	}
}

func (p *probeMorselIter) Close() error { return p.input.Close() }

// Close closes every side it owns, joining errors so a right-side
// failure is never masked by a left-side one.
func (j *hashJoinIter) Close() error {
	j.table = nil
	var errs []error
	if j.left != nil {
		errs = append(errs, j.left.Close())
	}
	if j.right != nil {
		errs = append(errs, j.right.Close())
	}
	if j.gather != nil {
		errs = append(errs, j.gather.Close())
	}
	return errors.Join(errs...)
}
