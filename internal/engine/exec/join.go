package exec

import (
	"strconv"
	"strings"

	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// hashJoinIter is an inner equi-join: Open drains the right (build) input
// into a hash table keyed on the join columns; Next streams the left
// (probe) input, emitting one combined row per match. Rows with a NULL
// join key never match (NULL = anything is UNKNOWN under three-valued
// logic), so they are dropped on both sides. Residual (non-equi) ON
// conjuncts filter the combined rows.
//
// With no keys, the single hash bucket degenerates into a cross join,
// filtered by the residual.
type hashJoinIter struct {
	left, right Iterator
	node        *plan.HashJoin

	table    map[string][]storage.Row // build side, keyed by join key
	leftEnv  rowEnv
	rightEnv rowEnv
	outEnv   rowEnv

	// Probe state: the current left row's pending matches.
	leftRow storage.Row
	matches []storage.Row
	mi      int
}

// joinKey encodes key values for hashing with the same equality semantics
// as the `=` operator: numeric values compare across int/float, so both
// hash through their float form. Text is length-prefixed so values
// containing separator bytes cannot forge a multi-key collision (a key
// list is equal iff every component is). ok=false when any value is NULL.
func joinKey(vals []storage.Value) (string, bool) {
	var sb strings.Builder
	for _, v := range vals {
		switch v.Kind() {
		case storage.KindNull:
			return "", false
		case storage.KindBool:
			b, _ := v.AsBool()
			if b {
				sb.WriteString("b1")
			} else {
				sb.WriteString("b0")
			}
		case storage.KindInt, storage.KindFloat:
			f, _ := v.AsFloat()
			sb.WriteByte('n')
			sb.WriteString(storage.Float(f).String())
		case storage.KindText:
			t, _ := v.AsText()
			sb.WriteByte('t')
			sb.WriteString(strconv.Itoa(len(t)))
			sb.WriteByte(':')
			sb.WriteString(t)
		}
		sb.WriteByte(0x1f)
	}
	return sb.String(), true
}

func (j *hashJoinIter) Open() error {
	j.leftEnv.layout = j.node.LeftLayout
	j.rightEnv.layout = j.node.RightLayout
	j.outEnv.layout = j.node.Layout
	j.table = map[string][]storage.Row{}
	j.leftRow, j.matches, j.mi = nil, nil, 0

	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	// Build phase: hash the right input. Rows are cloned — the scan
	// beneath reuses its batch buffer.
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.rightEnv.row = row
		vals := make([]storage.Value, len(j.node.RightKeys))
		for i, e := range j.node.RightKeys {
			v, err := EvalValue(e, &j.rightEnv)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		key, ok := joinKey(vals)
		if !ok {
			continue
		}
		j.table[key] = append(j.table[key], row.Clone())
	}
	return nil
}

func (j *hashJoinIter) Next() (storage.Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			right := j.matches[j.mi]
			j.mi++
			combined := make(storage.Row, 0, len(j.leftRow)+len(right))
			combined = append(append(combined, j.leftRow...), right...)
			if j.node.Residual != nil {
				j.outEnv.row = combined
				t, err := EvalPredicate(j.node.Residual, &j.outEnv)
				if err != nil {
					return nil, false, err
				}
				if t != TriTrue {
					continue
				}
			}
			return combined, true, nil
		}

		row, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.leftEnv.row = row
		vals := make([]storage.Value, len(j.node.LeftKeys))
		for i, e := range j.node.LeftKeys {
			v, err := EvalValue(e, &j.leftEnv)
			if err != nil {
				return nil, false, err
			}
			vals[i] = v
		}
		key, keyOK := joinKey(vals)
		if !keyOK {
			continue
		}
		// No clone: each emitted row copies the left values, and the scan
		// buffer beneath is only recycled on the next left pull.
		j.matches, j.mi, j.leftRow = j.table[key], 0, row
	}
}

func (j *hashJoinIter) Close() error {
	j.table = nil
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
