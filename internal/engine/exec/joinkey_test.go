package exec

import (
	"testing"

	"crowddb/internal/storage"
)

// appendJoinKey is the probe hot path: once the scratch buffer has grown
// to the key size, encoding a key must not allocate at all.
func TestAppendJoinKeyNoAllocs(t *testing.T) {
	vals := []storage.Value{storage.Int(1234567), storage.Text("some-name"), storage.Bool(true)}
	scratch := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		key, ok := appendJoinKey(scratch[:0], vals)
		if !ok || len(key) == 0 {
			t.Fatal("key encoding failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("appendJoinKey allocates %.1f times per key, want 0", allocs)
	}
}

func TestAppendJoinKeySemantics(t *testing.T) {
	enc := func(vals ...storage.Value) (string, bool) {
		key, ok := appendJoinKey(nil, vals)
		return string(key), ok
	}

	// Numeric equality crosses int/float, so 1 and 1.0 must collide.
	ik, _ := enc(storage.Int(1))
	fk, _ := enc(storage.Float(1.0))
	if ik != fk {
		t.Fatalf("1 and 1.0 encode differently: %q vs %q", ik, fk)
	}

	// Text containing the separator byte must not forge a multi-key
	// collision with a differently split pair.
	a, _ := enc(storage.Text("x\x1f"), storage.Text("y"))
	b, _ := enc(storage.Text("x"), storage.Text("\x1fy"))
	if a == b {
		t.Fatalf("separator-containing texts collide: %q", a)
	}

	// Any NULL kills the whole key (the row can never match).
	if _, ok := enc(storage.Int(1), storage.Null()); ok {
		t.Fatal("NULL component produced a usable key")
	}

	// Kinds stay distinct: 1 and '1' must not collide.
	tk, _ := enc(storage.Text("1"))
	if ik == tk {
		t.Fatalf("int 1 and text '1' collide: %q", ik)
	}
}
