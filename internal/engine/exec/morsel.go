package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// Morsel-driven parallelism (see DESIGN.md §14). A plan chain the
// Parallelize pass marked — Filter*/Project* over a Scan or IndexRange —
// is split into fixed-size morsels: disjoint row-index ranges for scans,
// disjoint chunks of the resolved row-ID list for index probes. Each
// worker claims whole morsels and runs a private iterator stack over its
// morsel, so the only shared state below the exchange is the table's
// read lock, which the batched cursors already take per 256-row batch.

// morselRows is the number of table rows per morsel: big enough that
// per-morsel setup (cursor allocation, goroutine handoff) is noise,
// small enough that a filtered scan load-balances across workers.
const morselRows = 4096

// morselSource describes a partitioned chain: count morsels, each opened
// as an independent iterator. owned reports that emitted rows are fresh
// allocations (a Project top) rather than aliases of a cursor batch
// buffer, letting the exchange skip its copy. release drops the shared
// snapshot pin every morsel reads through; the phase driver calls it
// exactly once, after all workers have stopped.
type morselSource struct {
	count   int
	owned   bool
	open    func(i int) (Iterator, error)
	release func()
}

// Release drops the source's snapshot pin, if any. Idempotence is the
// release closure's job (sync.Once).
func (s *morselSource) Release() {
	if s != nil && s.release != nil {
		s.release()
	}
}

// parallelChain reports whether the Parallelize pass marked this subtree
// as a morsel chain (its partitionable leaf carries Dop > 1).
func parallelChain(n plan.Node) bool {
	switch leaf := plan.ChainLeaf(n).(type) {
	case *plan.Scan:
		return leaf.Dop > 1
	case *plan.IndexRange:
		return leaf.Dop > 1
	default:
		return false
	}
}

// chainSource lowers a morsel chain into its source, snapshotting the
// partition (row count / resolved IDs) at call time. Returns nil when the
// subtree is not a partitionable chain.
func chainSource(n plan.Node) (*morselSource, error) {
	switch t := n.(type) {
	case *plan.Filter:
		src, err := chainSource(t.Input)
		if err != nil || src == nil {
			return src, err
		}
		inner := src.open
		src.open = func(i int) (Iterator, error) {
			it, err := inner(i)
			if err != nil {
				return nil, err
			}
			return &filterIter{input: it, node: t}, nil
		}
		return src, nil
	case *plan.Project:
		src, err := chainSource(t.Input)
		if err != nil || src == nil {
			return src, err
		}
		inner := src.open
		src.open = func(i int) (Iterator, error) {
			it, err := inner(i)
			if err != nil {
				return nil, err
			}
			return &projectIter{input: it, node: t}, nil
		}
		src.owned = true
		return src, nil
	case *plan.Scan:
		// One snapshot pin shared by every morsel: all workers read the
		// same immutable version, so dop=N output is row-identical to a
		// serial run regardless of concurrent writers.
		snap := t.Table.Pin()
		rows := snap.NumRows()
		var once sync.Once
		return &morselSource{
			count:   (rows + morselRows - 1) / morselRows,
			release: func() { once.Do(snap.Release) },
			open: func(i int) (Iterator, error) {
				lo := i * morselRows
				hi := min(lo+morselRows, rows)
				return &morselScanIter{node: t, snap: snap, lo: lo, hi: hi}, nil
			},
		}, nil
	case *plan.IndexRange:
		probe := rangeProbeOf(t)
		snap, ids, err := t.Table.PinIndexProbe(t.Index, probe)
		if err != nil {
			return nil, err
		}
		var once sync.Once
		return &morselSource{
			count:   (len(ids) + morselRows - 1) / morselRows,
			release: func() { once.Do(snap.Release) },
			open: func(i int) (Iterator, error) {
				lo := i * morselRows
				hi := min(lo+morselRows, len(ids))
				return &morselIndexIter{node: t, snap: snap, ids: ids[lo:hi]}, nil
			},
		}, nil
	default:
		return nil, nil
	}
}

// morselScanIter is scanIter over one row-index window of the source's
// shared snapshot (borrowed pin — the source releases it).
type morselScanIter struct {
	node   *plan.Scan
	snap   *storage.Snap
	lo, hi int
	cur    *storage.Cursor
	env    rowEnv
}

func (s *morselScanIter) Open() error {
	s.cur = storage.NewRangeCursorAt(s.snap, s.lo, s.hi, 0)
	s.env.layout = s.node.Layout
	preds, rest := splitVectorizable(s.node.Filter, s.node.Layout)
	if len(preds) > 0 {
		s.cur.SetPreds(preds)
	}
	if rest != nil {
		pred := rest
		s.cur.SetFilter(func(row storage.Row) (bool, error) {
			s.env.row = row
			t, err := EvalPredicate(pred, &s.env)
			return t == TriTrue, err
		})
	}
	return nil
}

func (s *morselScanIter) Next() (storage.Row, bool, error) {
	row, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return row, true, nil
}

func (s *morselScanIter) Close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// morselIndexIter is indexIter over one chunk of pre-resolved row IDs
// against the source's shared snapshot (borrowed pin).
type morselIndexIter struct {
	node *plan.IndexRange
	snap *storage.Snap
	ids  []int
	cur  *storage.IndexCursor
	env  rowEnv
}

func (s *morselIndexIter) Open() error {
	s.cur = storage.NewIndexCursorAt(s.snap, s.ids, 0)
	s.env.layout = s.node.Layout
	if s.node.Residual != nil {
		pred := s.node.Residual
		s.cur.SetFilter(func(row storage.Row) (bool, error) {
			s.env.row = row
			t, err := EvalPredicate(pred, &s.env)
			return t == TriTrue, err
		})
	}
	return nil
}

func (s *morselIndexIter) Next() (storage.Row, bool, error) {
	row, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return row, true, nil
}

func (s *morselIndexIter) Close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// rowArena copies rows that alias cursor batch buffers into chunked
// backing arrays: one allocation per ~8K values instead of one per row,
// and headers stay valid because a chunk is never grown past its
// capacity.
const arenaChunkVals = 8192

type rowArena struct{ chunk []storage.Value }

func (a *rowArena) add(row storage.Row) storage.Row {
	n := len(row)
	if cap(a.chunk)-len(a.chunk) < n {
		size := arenaChunkVals
		if n > size {
			size = n
		}
		a.chunk = make([]storage.Value, 0, size)
	}
	start := len(a.chunk)
	a.chunk = append(a.chunk, row...)
	return a.chunk[start : start+n : start+n]
}

// runMorsels drives a barrier-style parallel phase (hash-join build,
// partial aggregation): dop workers claim morsels off an atomic counter,
// open each morsel's iterator, hand it to the worker's per-morsel
// function, and close it. The first error cancels remaining claims;
// runMorsels returns after every worker has stopped.
func runMorsels(src *morselSource, dop int, mkWorker func(w int) func(idx int, it Iterator) error) error {
	defer src.Release()
	if src.count == 0 {
		return nil
	}
	if dop > src.count {
		dop = src.count
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, dop)
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := mkWorker(w)
			for !failed.Load() {
				idx := int(next.Add(1) - 1)
				if idx >= src.count {
					return
				}
				it, err := src.open(idx)
				if err == nil {
					if err = it.Open(); err != nil {
						_ = it.Close()
					} else {
						err = fn(idx, it)
						if cerr := it.Close(); err == nil {
							err = cerr
						}
					}
				}
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// gatherIter is the ordered exchange operator: dop workers each drain
// whole morsels into per-morsel result buffers, and the consumer emits
// those buffers strictly in morsel order — so the output row sequence is
// identical to a serial run of the same chain, errors included (a
// morsel's error surfaces exactly after the rows of every earlier
// morsel). A bounded claim window (2×dop morsels ahead of the consumer)
// backpressures workers so a slow consumer doesn't buffer the whole
// table.
type gatherIter struct {
	mkSource func() (*morselSource, error)
	dop      int

	src  *morselSource
	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup
	stop atomic.Bool

	results   map[int]*morselResult
	nextClaim int
	nextEmit  int
	closed    bool

	cur    *morselResult
	curPos int
	err    error
}

type morselResult struct {
	rows []storage.Row
	err  error
}

func (g *gatherIter) Open() error {
	src, err := g.mkSource()
	if err != nil {
		return err
	}
	g.src = src
	g.results = map[int]*morselResult{}
	g.cond = sync.NewCond(&g.mu)
	g.nextClaim, g.nextEmit, g.cur, g.curPos, g.err = 0, 0, nil, 0, nil
	workers := min(g.dop, src.count)
	for w := 0; w < workers; w++ {
		g.wg.Add(1)
		go g.worker()
	}
	return nil
}

func (g *gatherIter) worker() {
	defer g.wg.Done()
	window := 2 * g.dop
	for {
		g.mu.Lock()
		for !g.closed && g.nextClaim < g.src.count && g.nextClaim >= g.nextEmit+window {
			g.cond.Wait()
		}
		if g.closed || g.nextClaim >= g.src.count {
			g.mu.Unlock()
			return
		}
		idx := g.nextClaim
		g.nextClaim++
		g.mu.Unlock()

		res := g.runMorsel(idx)
		g.mu.Lock()
		g.results[idx] = res
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// runMorsel drains one morsel into an owned buffer. Rows that alias the
// cursor's batch buffer are copied through a chunked arena; rows a
// Project already owns pass straight through.
func (g *gatherIter) runMorsel(idx int) *morselResult {
	res := &morselResult{}
	it, err := g.src.open(idx)
	if err != nil {
		res.err = err
		return res
	}
	if err := it.Open(); err != nil {
		_ = it.Close()
		res.err = err
		return res
	}
	var arena rowArena
	for !g.stop.Load() {
		row, ok, err := it.Next()
		if err != nil {
			res.err = err
			break
		}
		if !ok {
			break
		}
		if g.src.owned {
			res.rows = append(res.rows, row)
		} else {
			res.rows = append(res.rows, arena.add(row))
		}
	}
	if err := it.Close(); err != nil && res.err == nil {
		res.err = err
	}
	return res
}

func (g *gatherIter) Next() (storage.Row, bool, error) {
	for {
		if g.err != nil {
			return nil, false, g.err
		}
		if g.cur != nil {
			if g.curPos < len(g.cur.rows) {
				row := g.cur.rows[g.curPos]
				g.curPos++
				return row, true, nil
			}
			g.cur = nil
			g.mu.Lock()
			g.nextEmit++
			g.cond.Broadcast()
			g.mu.Unlock()
		}
		g.mu.Lock()
		if g.nextEmit >= g.src.count {
			g.mu.Unlock()
			return nil, false, nil
		}
		for g.results[g.nextEmit] == nil && !g.closed {
			g.cond.Wait()
		}
		if g.closed {
			g.mu.Unlock()
			return nil, false, nil
		}
		res := g.results[g.nextEmit]
		delete(g.results, g.nextEmit)
		g.mu.Unlock()
		if res.err != nil {
			g.err = res.err
			return nil, false, res.err
		}
		g.cur, g.curPos = res, 0
	}
}

// Close cancels in-flight morsels and waits for every worker to exit, so
// no goroutine outlives the query.
func (g *gatherIter) Close() error {
	if g.cond == nil {
		return nil // Open never ran (or failed before spawning workers)
	}
	g.stop.Store(true)
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	g.wg.Wait()
	g.src.Release() // after every worker has stopped reading the snapshot
	return nil
}

// gatherOf builds the executor for a plan.Gather node.
func gatherOf(t *plan.Gather) *gatherIter {
	return &gatherIter{
		dop: t.Dop,
		mkSource: func() (*morselSource, error) {
			src, err := chainSource(t.Input)
			if err != nil {
				return nil, err
			}
			if src == nil {
				return nil, fmt.Errorf("engine: internal: Gather over non-chain input %T", t.Input)
			}
			return src, nil
		},
	}
}
