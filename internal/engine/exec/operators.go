package exec

import (
	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// scanIter streams a table through the storage cursor: values are copied
// into the cursor's reusable batch buffer under a per-batch read lock —
// no per-row allocation, no lock held across operator boundaries. The
// plan's pushed-down filter runs inside the refill, so rejected rows are
// never copied at all.
type scanIter struct {
	node *plan.Scan
	cur  *storage.Cursor
	env  rowEnv
}

func (s *scanIter) Open() error {
	s.cur = s.node.Table.NewCursor(0)
	s.env.layout = s.node.Layout
	preds, rest := splitVectorizable(s.node.Filter, s.node.Layout)
	if len(preds) > 0 {
		s.cur.SetPreds(preds)
	}
	if rest != nil {
		pred := rest
		s.cur.SetFilter(func(row storage.Row) (bool, error) {
			s.env.row = row
			t, err := EvalPredicate(pred, &s.env)
			return t == TriTrue, err
		})
	}
	return nil
}

func (s *scanIter) Next() (storage.Row, bool, error) {
	row, ok := s.cur.Next()
	if !ok {
		return nil, false, s.cur.Err()
	}
	return row, true, nil
}

func (s *scanIter) Close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// filterIter drops rows whose predicate is not TRUE.
type filterIter struct {
	input Iterator
	node  *plan.Filter
	env   rowEnv
}

func (f *filterIter) Open() error {
	f.env.layout = f.node.Layout
	return f.input.Open()
}

func (f *filterIter) Next() (storage.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.row = row
		t, err := EvalPredicate(f.node.Pred, &f.env)
		if err != nil {
			return nil, false, err
		}
		if t == TriTrue {
			return row, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.input.Close() }

// projectIter evaluates the select list into a fresh output row.
type projectIter struct {
	input Iterator
	node  *plan.Project
	env   rowEnv
}

func (p *projectIter) Open() error {
	p.env.layout = p.node.Layout
	return p.input.Open()
}

func (p *projectIter) Next() (storage.Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.env.row = row
	out := make(storage.Row, len(p.node.Exprs))
	for i, e := range p.node.Exprs {
		v, err := EvalValue(e, &p.env)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectIter) Close() error { return p.input.Close() }

// limitIter passes through at most n rows.
type limitIter struct {
	input Iterator
	n     int64
	seen  int64
}

func (l *limitIter) Open() error {
	l.seen = 0
	return l.input.Open()
}

func (l *limitIter) Next() (storage.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	row, ok, err := l.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *limitIter) Close() error { return l.input.Close() }

// distinctIter drops duplicate rows. Input rows are projection output
// (fresh), so they can be passed through without cloning.
type distinctIter struct {
	input Iterator
	seen  map[string]bool
}

func (d *distinctIter) Open() error {
	d.seen = map[string]bool{}
	return d.input.Open()
}

func (d *distinctIter) Next() (storage.Row, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := rowKey(row)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return row, true, nil
	}
}

func (d *distinctIter) Close() error { return d.input.Close() }
