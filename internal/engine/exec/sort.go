package exec

import (
	"sort"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// keyedRow is a retained row with its precomputed sort keys and input
// sequence number (the stability tie-break).
type keyedRow struct {
	row  storage.Row
	keys []storage.Value
	seq  int
}

// compareKeyed orders two rows under the ORDER BY keys: NULLs sort last
// regardless of direction, DESC flips the comparison, ties fall through
// to the next key and finally to input order (stable).
func compareKeyed(a, b *keyedRow, keys []sqlparse.OrderKey) (int, error) {
	for i, key := range keys {
		va, vb := a.keys[i], b.keys[i]
		switch {
		case va.IsNull() && vb.IsNull():
			continue
		case va.IsNull():
			return 1, nil
		case vb.IsNull():
			return -1, nil
		}
		c, err := va.Compare(vb)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if key.Desc {
			return -c, nil
		}
		return c, nil
	}
	return a.seq - b.seq, nil
}

// evalKeysInto computes the ORDER BY key values for one row into dst,
// so hot paths (TopN candidate rejection) can reuse one buffer.
func evalKeysInto(keys []sqlparse.OrderKey, env bindEnv, row storage.Row, dst []storage.Value) error {
	env.bind(row)
	for i, key := range keys {
		v, err := EvalValue(key.Expr, env)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// evalKeys computes the ORDER BY key values for one row.
func evalKeys(keys []sqlparse.OrderKey, env bindEnv, row storage.Row) ([]storage.Value, error) {
	out := make([]storage.Value, len(keys))
	if err := evalKeysInto(keys, env, row, out); err != nil {
		return nil, err
	}
	return out, nil
}

// sortIter fully sorts its input (blocking). Input rows are cloned, since
// upstream operators may reuse their buffers.
type sortIter struct {
	input Iterator
	keys  []sqlparse.OrderKey
	env   bindEnv
	rows  []keyedRow
	pos   int
}

func (s *sortIter) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	s.rows, s.pos = nil, 0
	for seq := 0; ; seq++ {
		row, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		kv, err := evalKeys(s.keys, s.env, row)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, keyedRow{row: row.Clone(), keys: kv, seq: seq})
	}
	var cmpErr error
	sort.Slice(s.rows, func(a, b int) bool {
		c, err := compareKeyed(&s.rows[a], &s.rows[b], s.keys)
		if err != nil && cmpErr == nil {
			cmpErr = err
		}
		return c < 0
	})
	return cmpErr
}

func (s *sortIter) Next() (storage.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos].row
	s.pos++
	return row, true, nil
}

func (s *sortIter) Close() error {
	s.rows = nil
	return s.input.Close()
}

// topNIter keeps the n best rows under the sort keys with a bounded
// binary max-heap (worst kept row at the root): ORDER BY + LIMIT without
// sorting — or even retaining — the full input. Including the sequence
// number in the comparison makes the result identical to a stable full
// sort followed by truncation.
type topNIter struct {
	input Iterator
	keys  []sqlparse.OrderKey
	n     int64
	env   bindEnv
	heap  []keyedRow // max-heap while filling, sorted ascending for output
	pos   int
}

func (t *topNIter) Open() error {
	if err := t.input.Open(); err != nil {
		return err
	}
	t.heap, t.pos = nil, 0
	if t.n <= 0 {
		return nil
	}
	// Candidate keys evaluate into one reused buffer: a row the heap
	// rejects — the overwhelmingly common case once the heap is warm —
	// costs zero allocations. Keys (and the row) are cloned only on
	// insertion.
	keyBuf := make([]storage.Value, len(t.keys))
	for seq := 0; ; seq++ {
		row, ok, err := t.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := evalKeysInto(t.keys, t.env, row, keyBuf); err != nil {
			return err
		}
		cand := keyedRow{keys: keyBuf, seq: seq}
		if int64(len(t.heap)) >= t.n {
			// Replace the worst kept row only when strictly better; an
			// equal row arrived later and loses the stable tie-break.
			c, err := compareKeyed(&cand, &t.heap[0], t.keys)
			if err != nil {
				return err
			}
			if c >= 0 {
				continue
			}
		}
		kept := keyedRow{
			row:  row.Clone(),
			keys: append(make([]storage.Value, 0, len(keyBuf)), keyBuf...),
			seq:  seq,
		}
		if int64(len(t.heap)) < t.n {
			t.heap = append(t.heap, kept)
			if err := t.siftUp(len(t.heap) - 1); err != nil {
				return err
			}
			continue
		}
		t.heap[0] = kept
		if err := t.siftDown(0); err != nil {
			return err
		}
	}
	var cmpErr error
	sort.Slice(t.heap, func(a, b int) bool {
		c, err := compareKeyed(&t.heap[a], &t.heap[b], t.keys)
		if err != nil && cmpErr == nil {
			cmpErr = err
		}
		return c < 0
	})
	return cmpErr
}

func (t *topNIter) less(a, b int) (bool, error) {
	c, err := compareKeyed(&t.heap[a], &t.heap[b], t.keys)
	return c < 0, err
}

func (t *topNIter) siftUp(i int) error {
	for i > 0 {
		parent := (i - 1) / 2
		// Max-heap: the parent must not be less than the child.
		lt, err := t.less(parent, i)
		if err != nil {
			return err
		}
		if !lt {
			return nil
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
	return nil
}

func (t *topNIter) siftDown(i int) error {
	for {
		largest := i
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(t.heap) {
				lt, err := t.less(largest, child)
				if err != nil {
					return err
				}
				if lt {
					largest = child
				}
			}
		}
		if largest == i {
			return nil
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

func (t *topNIter) Next() (storage.Row, bool, error) {
	if t.pos >= len(t.heap) {
		return nil, false, nil
	}
	row := t.heap[t.pos].row
	t.pos++
	return row, true, nil
}

func (t *topNIter) Close() error {
	t.heap = nil
	return t.input.Close()
}
