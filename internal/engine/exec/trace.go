package exec

import (
	"fmt"
	"sync"
	"time"

	"crowddb/internal/engine/plan"
	"crowddb/internal/storage"
)

// OpStats is the per-operator actuals a traced execution records: rows
// emitted by the operator and inclusive wall time spent inside it
// (Open + every Next + Close, children included — the PostgreSQL
// EXPLAIN ANALYZE convention).
type OpStats struct {
	Rows int64
	Wall time.Duration
}

// Trace collects OpStats for the plan nodes that materialize as
// iterators during one execution. Nodes inside a morsel-parallel chain
// (under a Gather, or the parallel side of a HashJoin/Aggregate) never
// build an iterator — the parent operator folds their morsels directly —
// so they carry no stats; Annotate marks them as such. The root operator
// always has an iterator, so root row counts are exact at any dop.
//
// The map is built single-threaded during build() and only read after
// Drain completes, but Gather closes worker-side iterators concurrently,
// so stat updates go through the per-OpStats pointer (one writer per
// iterator) and the map itself is guarded for the build phase only.
type Trace struct {
	mu  sync.Mutex
	ops map[plan.Node]*OpStats
}

// NewTrace returns an empty trace to pass to BuildTraced.
func NewTrace() *Trace {
	return &Trace{ops: map[plan.Node]*OpStats{}}
}

// Stats returns the recorded actuals for n, or nil if n never built an
// iterator (morsel-chain interior node).
func (t *Trace) Stats(n plan.Node) *OpStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops[n]
}

// wrap registers n and returns it wrapped in a measuring iterator.
func (t *Trace) wrap(n plan.Node, it Iterator) Iterator {
	st := &OpStats{}
	t.mu.Lock()
	t.ops[n] = st
	t.mu.Unlock()
	return &tracedIter{inner: it, st: st}
}

// Annotate is the plan.ExplainWith hook rendering one node's actuals,
// e.g. " (actual rows=42 time=1.3ms)". Nodes executed inside a morsel
// chain report no per-operator actuals.
func (t *Trace) Annotate(n plan.Node) string {
	st := t.Stats(n)
	if st == nil {
		return " (in parallel chain)"
	}
	return fmt.Sprintf(" (actual rows=%d time=%s)", st.Rows, st.Wall.Round(time.Microsecond))
}

// tracedIter measures one operator: wall time across Open/Next/Close and
// rows handed upward. Row ownership passes through untouched.
type tracedIter struct {
	inner Iterator
	st    *OpStats
}

func (t *tracedIter) Open() error {
	start := time.Now()
	err := t.inner.Open()
	t.st.Wall += time.Since(start)
	return err
}

func (t *tracedIter) Next() (storage.Row, bool, error) {
	start := time.Now()
	row, ok, err := t.inner.Next()
	t.st.Wall += time.Since(start)
	if ok {
		t.st.Rows++
	}
	return row, ok, err
}

func (t *tracedIter) Close() error {
	start := time.Now()
	err := t.inner.Close()
	t.st.Wall += time.Since(start)
	return err
}
