package exec

import (
	"strings"

	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// splitVectorizable lowers the vectorizable conjuncts of a pushed-down
// scan filter into storage.Pred entries — evaluated chunk-at-a-time into
// the cursor's selection bitmap — and returns whatever remains as a
// residual expression for the per-row evaluator.
//
// A conjunct vectorizes only when storage's predMatch provably agrees
// with EvalPredicate on every input:
//
//   - col = lit / col != lit with a non-NULL literal. NULL literals stay
//     residual: predMatch has no tri-state, so `col != NULL` would match
//     rows the evaluator treats as UNKNOWN (excluded).
//   - col < lit (and friends) when plan.LitCompatible reports the literal
//     comparable with the column's declared kind — Value.Compare errors
//     on a class mismatch and the bitmap path has no error channel.
//   - a bare boolean column reference (col ≡ col = TRUE). Non-boolean
//     columns stay residual: the evaluator rejects them with an error.
//   - col IS [NOT] NULL.
//
// Mirrored forms (lit < col) lower with the comparison flipped. Layouts
// with more than one segment never vectorize — Pred.Col indexes the
// single scanned table's schema.
func splitVectorizable(filter sqlparse.Expr, layout *plan.Layout) ([]storage.Pred, sqlparse.Expr) {
	if filter == nil || layout == nil || len(layout.Segs) != 1 {
		return nil, filter
	}
	seg := layout.Segs[0]
	var conj []sqlparse.Expr
	flattenAnd(filter, &conj)

	var preds []storage.Pred
	var rest sqlparse.Expr
	for _, e := range conj {
		if p, ok := vectorize(e, seg); ok {
			preds = append(preds, p)
			continue
		}
		if rest == nil {
			rest = e
		} else {
			rest = &sqlparse.BinaryExpr{Op: "AND", Left: rest, Right: e}
		}
	}
	return preds, rest
}

// flattenAnd appends the AND-conjuncts of e to out.
func flattenAnd(e sqlparse.Expr, out *[]sqlparse.Expr) {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		flattenAnd(b.Left, out)
		flattenAnd(b.Right, out)
		return
	}
	*out = append(*out, e)
}

// segColumn resolves e as a bare reference to a column of seg, returning
// its schema index.
func segColumn(e sqlparse.Expr, seg plan.Segment) (int, bool) {
	ref, ok := e.(*sqlparse.ColumnRef)
	if !ok {
		return 0, false
	}
	if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
		return 0, false
	}
	return seg.Schema.Lookup(ref.Name)
}

// vectorize lowers one conjunct, reporting ok=false when it must stay on
// the per-row evaluator.
func vectorize(e sqlparse.Expr, seg plan.Segment) (storage.Pred, bool) {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		ci, ok := segColumn(n, seg)
		if !ok || seg.Schema.Column(ci).Kind != storage.KindBool {
			return storage.Pred{}, false
		}
		return storage.Pred{Col: ci, Op: storage.PredEq, Val: storage.Bool(true)}, true
	case *sqlparse.IsNullExpr:
		ci, ok := segColumn(n.Expr, seg)
		if !ok {
			return storage.Pred{}, false
		}
		op := storage.PredIsNull
		if n.Negate {
			op = storage.PredNotNull
		}
		return storage.Pred{Col: ci, Op: op}, true
	case *sqlparse.BinaryExpr:
		var op storage.PredOp
		switch n.Op {
		case "=":
			op = storage.PredEq
		case "!=":
			op = storage.PredNe
		case "<":
			op = storage.PredLt
		case "<=":
			op = storage.PredLe
		case ">":
			op = storage.PredGt
		case ">=":
			op = storage.PredGe
		default:
			return storage.Pred{}, false
		}
		col, lit := n.Left, n.Right
		ci, ok := segColumn(col, seg)
		if !ok {
			// Mirrored form: lit OP col ⇔ col flip(OP) lit.
			col, lit = n.Right, n.Left
			if ci, ok = segColumn(col, seg); !ok {
				return storage.Pred{}, false
			}
			switch op {
			case storage.PredLt:
				op = storage.PredGt
			case storage.PredLe:
				op = storage.PredGe
			case storage.PredGt:
				op = storage.PredLt
			case storage.PredGe:
				op = storage.PredLe
			}
		}
		l, ok := lit.(*sqlparse.Literal)
		if !ok || l.Kind == sqlparse.LitNull {
			return storage.Pred{}, false
		}
		if op != storage.PredEq && op != storage.PredNe &&
			!plan.LitCompatible(l, seg.Schema.Column(ci).Kind) {
			return storage.Pred{}, false
		}
		return storage.Pred{Col: ci, Op: op, Val: plan.LitValue(l)}, true
	default:
		return storage.Pred{}, false
	}
}
