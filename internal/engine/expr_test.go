package engine

import (
	"testing"

	"crowddb/internal/storage"
)

// exprEngine builds a one-row table for projecting expressions.
func exprEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE t (a INTEGER, b INTEGER, f FLOAT, s TEXT, flag BOOLEAN, n INTEGER)`)
	mustExec(t, e, `INSERT INTO t VALUES (7, 3, 2.5, 'x', true, NULL)`)
	return e
}

// project evaluates a single expression for the single row.
func project(t *testing.T, e *Engine, expr string) storage.Value {
	t.Helper()
	res := mustExec(t, e, "SELECT "+expr+" FROM t")
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("projection %q shape = %dx%d", expr, len(res.Rows), len(res.Rows[0]))
	}
	return res.Rows[0][0]
}

func TestExpressionProjection(t *testing.T) {
	e := exprEngine(t)
	cases := []struct {
		expr string
		want storage.Value
	}{
		// Comparisons as values.
		{"a = 7", storage.Bool(true)},
		{"a != 7", storage.Bool(false)},
		{"a < b", storage.Bool(false)},
		{"a >= b", storage.Bool(true)},
		{"s = 'x'", storage.Bool(true)},
		// Logic as values.
		{"flag AND a > 1", storage.Bool(true)},
		{"NOT flag", storage.Bool(false)},
		{"flag OR n > 0", storage.Bool(true)},       // TRUE OR UNKNOWN
		{"NOT flag AND n > 0", storage.Bool(false)}, // FALSE AND UNKNOWN
		// NULL propagation into values.
		{"n = 1", storage.Null()},
		{"n + 1", storage.Null()},
		{"-n", storage.Null()},
		{"NOT n > 0", storage.Null()},
		// IS NULL as value.
		{"n IS NULL", storage.Bool(true)},
		{"a IS NULL", storage.Bool(false)},
		{"a IS NOT NULL", storage.Bool(true)},
		// Arithmetic typing.
		{"a + b", storage.Int(10)},
		{"a - b", storage.Int(4)},
		{"a * b", storage.Int(21)},
		{"a / b", storage.Float(7.0 / 3.0)},
		{"a + f", storage.Float(9.5)},
		{"-a", storage.Int(-7)},
		{"-f", storage.Float(-2.5)},
		{"-(a + b)", storage.Int(-10)},
		// Literals.
		{"42", storage.Int(42)},
		{"4.5", storage.Float(4.5)},
		{"'lit'", storage.Text("lit")},
		{"true", storage.Bool(true)},
		{"NULL", storage.Null()},
	}
	for _, c := range cases {
		got := project(t, e, c.expr)
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%s = %v, want NULL", c.expr, got)
			}
			continue
		}
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("%s = %v (%v), want %v (%v)", c.expr, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	e := exprEngine(t)
	for _, expr := range []string{
		"-s",          // negate text
		"s + 1",       // text arithmetic
		"a / 0",       // division by zero
		"s AND flag",  // text as predicate
		"a AND flag",  // int as predicate
		"1 = 1 AND 5", // numeric literal as predicate operand
	} {
		if _, err := e.ExecSQL("SELECT " + expr + " FROM t"); err == nil {
			t.Errorf("SELECT %s must fail", expr)
		}
	}
}

func TestWhereTextComparisons(t *testing.T) {
	e := exprEngine(t)
	res := mustExec(t, e, "SELECT a FROM t WHERE s < 'y' AND s > 'a'")
	if len(res.Rows) != 1 {
		t.Fatalf("text range match failed")
	}
	if _, err := e.ExecSQL("SELECT a FROM t WHERE s < 5"); err == nil {
		t.Fatal("text/int comparison must fail")
	}
}
