package engine

import (
	"errors"
	"testing"

	"crowddb/internal/storage"
)

func groupEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE sales (region TEXT, product TEXT, amount FLOAT, qty INTEGER)`)
	rows := []string{
		"('north', 'ale', 10.0, 1)",
		"('north', 'ale', 20.0, 2)",
		"('north', 'rum', 5.0, 1)",
		"('south', 'ale', 7.5, 3)",
		"('south', 'rum', 2.5, 1)",
		"('south', 'rum', NULL, 2)",
		"('east', 'gin', 30.0, 1)",
	}
	for _, r := range rows {
		mustExec(t, e, "INSERT INTO sales VALUES "+r)
	}
	return e
}

func TestGroupByBasic(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, COUNT(*) n, SUM(amount) total FROM sales GROUP BY region ORDER BY region`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Columns[0] != "region" || res.Columns[1] != "n" || res.Columns[2] != "total" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// east, north, south (ordered).
	r0, _ := res.Rows[0][0].AsText()
	if r0 != "east" {
		t.Fatalf("first group = %s", r0)
	}
	nNorth, _ := res.Rows[1][1].AsInt()
	if nNorth != 3 {
		t.Fatalf("north count = %d", nNorth)
	}
	totSouth, _ := res.Rows[2][2].AsFloat()
	if totSouth != 10.0 {
		t.Fatalf("south total = %v (NULL amounts must be skipped)", totSouth)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, product, COUNT(*) FROM sales GROUP BY region, product ORDER BY region, product`)
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestGroupByHaving(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, COUNT(*) n FROM sales GROUP BY region HAVING n >= 3 ORDER BY region`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		n, _ := row[1].AsInt()
		if n < 3 {
			t.Fatalf("HAVING leaked group with n = %d", n)
		}
	}
}

func TestGroupByHavingOnGroupColumn(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, COUNT(*) n FROM sales GROUP BY region HAVING region = 'north'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestGroupByWithWhere(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT product, AVG(amount) FROM sales WHERE region = 'north' GROUP BY product ORDER BY product`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	ale, _ := res.Rows[0][1].AsFloat()
	if ale != 15.0 {
		t.Fatalf("ale avg = %v", ale)
	}
}

func TestGroupByOrderByAggregateDesc(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, SUM(qty) total FROM sales GROUP BY region ORDER BY total DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t0, _ := res.Rows[0][1].AsInt()
	t1, _ := res.Rows[1][1].AsInt()
	if t0 < t1 {
		t.Fatalf("order broken: %d then %d", t0, t1)
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT qty * 2, COUNT(*) FROM sales GROUP BY qty * 2 ORDER BY COUNT(*) DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d (qty values 1,2,3 → keys 2,4,6)", len(res.Rows))
	}
}

func TestGroupByValidation(t *testing.T) {
	e := groupEngine(t)
	if _, err := e.ExecSQL(`SELECT product, COUNT(*) FROM sales GROUP BY region`); err == nil {
		t.Fatal("non-grouped scalar column must fail")
	}
	if _, err := e.ExecSQL(`SELECT *, COUNT(*) FROM sales GROUP BY region`); err == nil {
		t.Fatal("star with GROUP BY must fail")
	}
	if _, err := e.ExecSQL(`SELECT region FROM sales HAVING region = 'x'`); err == nil {
		t.Fatal("HAVING without grouping must fail")
	}
	if _, err := e.ExecSQL(`SELECT DISTINCT region, COUNT(*) FROM sales GROUP BY region`); err == nil {
		t.Fatal("DISTINCT with GROUP BY must fail")
	}
	if _, err := e.ExecSQL(`SELECT region, COUNT(*) n FROM sales GROUP BY region HAVING nosuch > 1`); err == nil {
		t.Fatal("HAVING with unknown output column must fail")
	}
	var missing *MissingColumnError
	_, err := e.ExecSQL(`SELECT nosuch, COUNT(*) FROM sales GROUP BY nosuch`)
	if !errors.As(err, &missing) {
		t.Fatalf("unknown group column: err = %v", err)
	}
}

func TestAggregateEmptyInputStillOneRow(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT COUNT(*), SUM(amount) FROM sales WHERE region = 'mars'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("count = %d", n)
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatal("SUM over empty set must be NULL")
	}
	// But GROUP BY over empty input yields zero rows.
	res = mustExec(t, e, `SELECT region, COUNT(*) FROM sales WHERE region = 'mars' GROUP BY region`)
	if len(res.Rows) != 0 {
		t.Fatalf("grouped empty input rows = %d, want 0", len(res.Rows))
	}
}

func TestGroupByMissingColumnTriggersExpansionPath(t *testing.T) {
	e := groupEngine(t)
	var missing *MissingColumnError
	_, err := e.ExecSQL(`SELECT region, COUNT(*) FROM sales WHERE is_organic = true GROUP BY region`)
	if !errors.As(err, &missing) || missing.Column != "is_organic" {
		t.Fatalf("err = %v", err)
	}
}

func TestDistinct(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT DISTINCT region FROM sales ORDER BY region`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `SELECT DISTINCT region, product FROM sales`)
	if len(res.Rows) != 5 {
		t.Fatalf("pairs = %d", len(res.Rows))
	}
	// DISTINCT + LIMIT applies the limit after deduplication.
	res = mustExec(t, e, `SELECT DISTINCT region FROM sales LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("limited distinct rows = %d", len(res.Rows))
	}
	// Kind-tagged keys: 1 and '1' stay distinct.
	mustExec(t, e, `CREATE TABLE mix (a INTEGER, b TEXT)`)
	mustExec(t, e, `INSERT INTO mix VALUES (1, '1'), (1, '1')`)
	res = mustExec(t, e, `SELECT DISTINCT a, b FROM mix`)
	if len(res.Rows) != 1 {
		t.Fatalf("mix rows = %d", len(res.Rows))
	}
}

func TestGroupByMinMaxOnText(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, MIN(product), MAX(product) FROM sales GROUP BY region ORDER BY region`)
	minN, _ := res.Rows[1][1].AsText()
	maxN, _ := res.Rows[1][2].AsText()
	if minN != "ale" || maxN != "rum" {
		t.Fatalf("north min/max = %s/%s", minN, maxN)
	}
}

func TestOrderByAlias(t *testing.T) {
	e := groupEngine(t)
	res := mustExec(t, e, `SELECT region, amount * 2 double_amount FROM sales
		WHERE amount IS NOT NULL ORDER BY double_amount DESC LIMIT 2`)
	v0, _ := res.Rows[0][1].AsFloat()
	v1, _ := res.Rows[1][1].AsFloat()
	if v0 < v1 || v0 != 60 {
		t.Fatalf("alias ordering broken: %v then %v", v0, v1)
	}
	// A real column shadows an alias of the same name.
	res = mustExec(t, e, `SELECT qty, amount qty FROM sales WHERE amount IS NOT NULL ORDER BY qty DESC LIMIT 1`)
	q, _ := res.Rows[0][0].AsInt()
	if q != 3 {
		t.Fatalf("real column must win over alias, got qty %d", q)
	}
	// Unknown names still error (and still trigger expansion upstream).
	if _, err := e.ExecSQL(`SELECT region r FROM sales ORDER BY nosuch`); err == nil {
		t.Fatal("unknown ORDER BY column must fail")
	}
}
