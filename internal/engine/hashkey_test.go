package engine

import (
	"testing"

	"crowddb/internal/storage"
)

// Hash keys (join keys, DISTINCT/GROUP BY row keys) concatenate several
// values into one string; these regressions pin down that text values
// containing the encoding's separator or kind-tag bytes cannot forge a
// collision between different rows.

func TestJoinKeyNoSeparatorForgery(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE a (x TEXT, y TEXT)`)
	mustExec(t, e, `CREATE TABLE b (x TEXT, y TEXT)`)
	ta, _ := e.Catalog().Get("a")
	tb, _ := e.Catalog().Get("b")
	// Under a naive "value ␟ value" encoding both rows hash identically
	// even though neither component matches.
	if err := ta.Insert(storage.Text("p"), storage.Text("q\x1ftr")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(storage.Text("p\x1ftq"), storage.Text("r")); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT a.x FROM a JOIN b ON a.x = b.x AND a.y = b.y`)
	if len(res.Rows) != 0 {
		t.Fatalf("forged join emitted %d rows", len(res.Rows))
	}
	// Genuinely equal multi-part keys still match, separators included.
	if err := ta.Insert(storage.Text("same\x1f"), storage.Text("key")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(storage.Text("same\x1f"), storage.Text("key")); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, e, `SELECT a.x FROM a JOIN b ON a.x = b.x AND a.y = b.y`)
	if len(res.Rows) != 1 {
		t.Fatalf("equal keys with separator bytes matched %d times", len(res.Rows))
	}
}

func TestDistinctKeyNoForgery(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE d (x TEXT, y TEXT)`)
	td, _ := e.Catalog().Get("d")
	// ("a␟Tb", "c") vs ("a", "b␟Tc") — where T is the text kind tag —
	// collide under a kind-tag ␟-separated encoding without length
	// prefixes.
	tag := string([]byte{byte(storage.KindText)})
	if err := td.Insert(storage.Text("a\x1f"+tag+"b"), storage.Text("c")); err != nil {
		t.Fatal(err)
	}
	if err := td.Insert(storage.Text("a"), storage.Text("b\x1f"+tag+"c")); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT DISTINCT x, y FROM d`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct collapsed %d different rows", 2-len(res.Rows)+1)
	}
}
