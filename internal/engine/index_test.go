package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"crowddb/internal/storage"
)

// indexedEngine builds a table with enough shape to exercise every access
// path: an int id, a float score (with some NULLs), and a text tier.
func indexedEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec := func(sql string) *Result {
		t.Helper()
		res, err := e.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec(`CREATE TABLE items (id INTEGER, score FLOAT, tier TEXT)`)
	tbl, _ := e.Catalog().Get("items")
	for i := 0; i < 500; i++ {
		score := storage.Value(storage.Float(float64((i * 37) % 250)))
		if i%50 == 0 {
			score = storage.Null() // NULL keys must never be indexed
		}
		if err := tbl.Insert(storage.Int(int64(i)), score, storage.Text(fmt.Sprintf("t%d", i%5))); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE INDEX idx_id ON items (id) USING HASH`)
	mustExec(`CREATE INDEX idx_score ON items (score)`)
	return e
}

func explainLines(t *testing.T, e *Engine, sql string) []string {
	t.Helper()
	res, err := e.ExecSQL("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	var out []string
	for _, row := range res.Rows {
		s, _ := row[0].AsText()
		out = append(out, s)
	}
	return out
}

func planText(t *testing.T, e *Engine, sql string) string {
	return strings.Join(explainLines(t, e, sql), "\n")
}

func TestExplainChoosesIndexScanForIndexedEquality(t *testing.T) {
	e := indexedEngine(t)
	p := planText(t, e, `SELECT id, tier FROM items WHERE id = 42`)
	if !strings.Contains(p, "IndexScan(idx_id, id=42)") {
		t.Fatalf("plan does not use the hash index:\n%s", p)
	}
	// An unindexed column still plans a plain Scan.
	p = planText(t, e, `SELECT id FROM items WHERE tier = 't1'`)
	if !strings.Contains(p, "Scan(items") || strings.Contains(p, "IndexScan") {
		t.Fatalf("unindexed equality should full-scan:\n%s", p)
	}
}

func TestExplainChoosesIndexRangeForRangeConjuncts(t *testing.T) {
	e := indexedEngine(t)
	p := planText(t, e, `SELECT id FROM items WHERE score > 100 AND score <= 200`)
	if !strings.Contains(p, "IndexRange(idx_score, 100..200)") {
		t.Fatalf("plan does not use the ordered index:\n%s", p)
	}
	// Residual conjuncts render on the probe node.
	p = planText(t, e, `SELECT id FROM items WHERE score > 100 AND tier = 't1'`)
	if !strings.Contains(p, "IndexRange(idx_score, score > 100) filter=") {
		t.Fatalf("residual missing from IndexRange:\n%s", p)
	}
	// A range on a hash-indexed-only column cannot use the index.
	p = planText(t, e, `SELECT id FROM items WHERE id > 400`)
	if strings.Contains(p, "Index") {
		t.Fatalf("hash index must not answer a range probe:\n%s", p)
	}
}

// TestIndexAnswersMatchScan runs the same queries with and without
// indexes and requires identical results — the index is an access path,
// never a semantics change.
func TestIndexAnswersMatchScan(t *testing.T) {
	indexed := indexedEngine(t)
	plain := New(storage.NewCatalog())
	if _, err := plain.ExecSQL(`CREATE TABLE items (id INTEGER, score FLOAT, tier TEXT)`); err != nil {
		t.Fatal(err)
	}
	src, _ := indexed.Catalog().Get("items")
	dst, _ := plain.Catalog().Get("items")
	src.Scan(func(i int, row storage.Row) bool {
		if err := dst.Insert(row...); err != nil {
			t.Fatal(err)
		}
		return true
	})

	queries := []string{
		`SELECT id, score, tier FROM items WHERE id = 42`,
		`SELECT id FROM items WHERE id = -1`,
		`SELECT id FROM items WHERE 42 = id`,
		`SELECT id, score FROM items WHERE score > 100 AND score <= 200 ORDER BY id`,
		`SELECT id FROM items WHERE score >= 0 ORDER BY id`,
		`SELECT id FROM items WHERE score > 100 AND tier = 't1' ORDER BY id`,
		`SELECT id FROM items WHERE id = 10 AND score IS NULL`,
		`SELECT id, score FROM items WHERE score > 50 ORDER BY score LIMIT 7`,
		`SELECT id, score FROM items WHERE score > 50 ORDER BY score`,
		`SELECT id, score FROM items ORDER BY score LIMIT 9`,
		`SELECT id, score FROM items ORDER BY score DESC LIMIT 9`,
		`SELECT id, score FROM items ORDER BY score`,
		`SELECT count(*) c FROM items WHERE score > 100`,
	}
	for _, q := range queries {
		want, err := plain.ExecSQL(q)
		if err != nil {
			t.Fatalf("%s (plain): %v", q, err)
		}
		got, err := indexed.ExecSQL(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows indexed vs %d plain", q, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				g, w := got.Rows[i][j], want.Rows[i][j]
				if g.String() != w.String() || g.Kind() != w.Kind() {
					t.Fatalf("%s: row %d col %d = %v, want %v", q, i, j, g, w)
				}
			}
		}
	}
}

// TestOrderByNullsStayLast covers the elision guard: ORDER BY over a
// column with NULLs must keep NULL rows (sorted last), even when an
// ordered index on that column exists.
func TestOrderByNullsStayLast(t *testing.T) {
	e := indexedEngine(t)
	res, err := e.ExecSQL(`SELECT id, score FROM items ORDER BY score`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("rows = %d, want all 500 (NULL scores must not vanish)", len(res.Rows))
	}
	tail := res.Rows[len(res.Rows)-10]
	if !tail[1].IsNull() {
		t.Fatalf("NULL scores should sort last, tail row = %v", tail)
	}
}

// TestOrderByLimitUsesIndexOrder checks the TopN-to-Limit rewrite: a bare
// ORDER BY key LIMIT n over an ordered index becomes an index-ordered
// Limit with no TopN operator.
func TestOrderByLimitUsesIndexOrder(t *testing.T) {
	e := indexedEngine(t)
	p := planText(t, e, `SELECT id, score FROM items ORDER BY score LIMIT 9`)
	if !strings.Contains(p, "IndexRange(idx_score, score)") || strings.Contains(p, "TopN") {
		t.Fatalf("ORDER BY+LIMIT should ride the ordered index:\n%s", p)
	}
	// DESC rides the same index through a reversed probe (group-wise, so
	// tie order still matches a stable DESC sort).
	p = planText(t, e, `SELECT id, score FROM items ORDER BY score DESC LIMIT 9`)
	if !strings.Contains(p, "IndexRange(idx_score, score desc)") || strings.Contains(p, "TopN") {
		t.Fatalf("DESC should ride the reversed ordered index:\n%s", p)
	}
	// A bounded range already in index order drops the sort entirely.
	p = planText(t, e, `SELECT id, score FROM items WHERE score > 50 ORDER BY score`)
	if strings.Contains(p, "Sort") || !strings.Contains(p, "IndexRange") {
		t.Fatalf("bounded range should elide the sort:\n%s", p)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	e := indexedEngine(t)
	if _, err := e.ExecSQL(`CREATE INDEX idx_id ON items (id)`); err == nil || !strings.Contains(err.Error(), "already has an index") {
		t.Fatalf("duplicate index name: %v", err)
	}
	if _, err := e.ExecSQL(`CREATE INDEX idx_x ON items (nope)`); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Fatalf("missing column: %v", err)
	}
	var missing *MissingColumnError
	if _, err := e.ExecSQL(`CREATE INDEX idx_x ON items (nope)`); errors.As(err, &missing) {
		t.Fatal("CREATE INDEX must not raise MissingColumnError (it would trigger a crowd expansion)")
	}
	if _, err := e.ExecSQL(`CREATE INDEX idx_y ON ghosts (id)`); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("missing table: %v", err)
	}
}

// TestIndexMaintainedAcrossDML checks that inserts, updates, and deletes
// keep index answers correct.
func TestIndexMaintainedAcrossDML(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec := func(sql string) {
		t.Helper()
		if _, err := e.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE kv (k INTEGER, v TEXT)`)
	mustExec(`CREATE INDEX kv_k ON kv (k) USING HASH`)
	mustExec(`CREATE INDEX kv_k_ord ON kv (k)`)
	for i := 0; i < 100; i++ {
		mustExec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, i%10, i))
	}
	count := func(sql string) int {
		t.Helper()
		res, err := e.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return len(res.Rows)
	}
	if n := count(`SELECT v FROM kv WHERE k = 3`); n != 10 {
		t.Fatalf("k=3 rows = %d, want 10", n)
	}
	mustExec(`UPDATE kv SET k = 99 WHERE v = 'v3'`) // one row leaves k=3
	if n := count(`SELECT v FROM kv WHERE k = 3`); n != 9 {
		t.Fatalf("after update, k=3 rows = %d, want 9", n)
	}
	if n := count(`SELECT v FROM kv WHERE k = 99`); n != 1 {
		t.Fatalf("after update, k=99 rows = %d, want 1", n)
	}
	mustExec(`DELETE FROM kv WHERE k = 4`)
	if n := count(`SELECT v FROM kv WHERE k = 4`); n != 0 {
		t.Fatalf("after delete, k=4 rows = %d, want 0", n)
	}
	// Delete compacted row IDs; every other key must still answer.
	if n := count(`SELECT v FROM kv WHERE k = 5`); n != 10 {
		t.Fatalf("after delete, k=5 rows = %d, want 10", n)
	}
	if n := count(`SELECT v FROM kv WHERE k >= 8 AND k <= 9`); n != 20 {
		t.Fatalf("range after delete = %d, want 20", n)
	}
}

// TestIndexScanInJoin verifies the access path composes under a join:
// the probe side of the join still picks up an index for its pushed-down
// equality.
func TestIndexScanInJoin(t *testing.T) {
	e := indexedEngine(t)
	if _, err := e.ExecSQL(`CREATE TABLE tags (item INTEGER, tag TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := e.ExecSQL(fmt.Sprintf(`INSERT INTO tags VALUES (%d, 'tag%d')`, i*10, i)); err != nil {
			t.Fatal(err)
		}
	}
	p := planText(t, e, `SELECT g.tag FROM items i JOIN tags g ON i.id = g.item WHERE i.id = 420`)
	if !strings.Contains(p, "IndexScan(idx_id, id=420)") {
		t.Fatalf("join input should use the index:\n%s", p)
	}
	res, err := e.ExecSQL(`SELECT g.tag FROM items i JOIN tags g ON i.id = g.item WHERE i.id = 420`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %d, want 1", len(res.Rows))
	}
	if tag, _ := res.Rows[0][0].AsText(); tag != "tag42" {
		t.Fatalf("tag = %q", tag)
	}
}
