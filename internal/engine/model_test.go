package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"crowddb/internal/storage"
)

// TestEngineAgainstModel is a model-based property test: a random table is
// loaded into both the SQL engine and a plain Go slice; random simple
// queries are executed on both and must agree exactly.
func TestEngineAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))

	type modelRow struct {
		id   int64
		cat  string
		val  float64
		flag interface{} // bool or nil
	}

	for trial := 0; trial < 25; trial++ {
		e := New(storage.NewCatalog())
		mustExec(t, e, `CREATE TABLE m (id INTEGER, cat TEXT, val FLOAT, flag BOOLEAN)`)
		n := 5 + rng.Intn(60)
		rows := make([]modelRow, n)
		cats := []string{"a", "b", "c"}
		for i := range rows {
			rows[i] = modelRow{
				id:  int64(i),
				cat: cats[rng.Intn(len(cats))],
				val: float64(rng.Intn(100)) / 4,
			}
			switch rng.Intn(3) {
			case 0:
				rows[i].flag = true
			case 1:
				rows[i].flag = false
			}
			flagSQL := "NULL"
			if b, ok := rows[i].flag.(bool); ok {
				flagSQL = fmt.Sprintf("%v", b)
			}
			mustExec(t, e, fmt.Sprintf("INSERT INTO m VALUES (%d, '%s', %g, %s)",
				rows[i].id, rows[i].cat, rows[i].val, flagSQL))
		}

		// Query 1: val threshold filter.
		thr := float64(rng.Intn(100)) / 4
		res := mustExec(t, e, fmt.Sprintf("SELECT id FROM m WHERE val >= %g", thr))
		want := 0
		for _, r := range rows {
			if r.val >= thr {
				want++
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("trial %d: val >= %g returned %d rows, model says %d",
				trial, thr, len(res.Rows), want)
		}

		// Query 2: compound predicate with NULL-able flag.
		cat := cats[rng.Intn(len(cats))]
		res = mustExec(t, e, fmt.Sprintf(
			"SELECT id FROM m WHERE cat = '%s' AND flag = true", cat))
		want = 0
		for _, r := range rows {
			if b, ok := r.flag.(bool); ok && b && r.cat == cat {
				want++
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("trial %d: compound predicate returned %d, model says %d",
				trial, len(res.Rows), want)
		}

		// Query 3: OR with IS NULL.
		res = mustExec(t, e, fmt.Sprintf(
			"SELECT id FROM m WHERE flag IS NULL OR val < %g", thr))
		want = 0
		for _, r := range rows {
			if r.flag == nil || r.val < thr {
				want++
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("trial %d: OR/IS NULL returned %d, model says %d",
				trial, len(res.Rows), want)
		}

		// Query 4: GROUP BY with COUNT and SUM.
		res = mustExec(t, e, "SELECT cat, COUNT(*) n, SUM(val) s FROM m GROUP BY cat")
		type agg struct {
			n int
			s float64
		}
		wantAgg := map[string]*agg{}
		for _, r := range rows {
			a := wantAgg[r.cat]
			if a == nil {
				a = &agg{}
				wantAgg[r.cat] = a
			}
			a.n++
			a.s += r.val
		}
		if len(res.Rows) != len(wantAgg) {
			t.Fatalf("trial %d: %d groups, model says %d", trial, len(res.Rows), len(wantAgg))
		}
		for _, row := range res.Rows {
			c, _ := row[0].AsText()
			gotN, _ := row[1].AsInt()
			gotS, _ := row[2].AsFloat()
			a := wantAgg[c]
			if a == nil || int(gotN) != a.n || gotS != a.s {
				t.Fatalf("trial %d: group %s = (%d, %g), model says (%d, %g)",
					trial, c, gotN, gotS, a.n, a.s)
			}
		}

		// Query 5: ORDER BY val DESC, id ASC — verify full ordering.
		res = mustExec(t, e, "SELECT id, val FROM m ORDER BY val DESC, id")
		for i := 1; i < len(res.Rows); i++ {
			prevV, _ := res.Rows[i-1][1].AsFloat()
			curV, _ := res.Rows[i][1].AsFloat()
			if prevV < curV {
				t.Fatalf("trial %d: ORDER BY DESC violated at %d", trial, i)
			}
			if prevV == curV {
				prevID, _ := res.Rows[i-1][0].AsInt()
				curID, _ := res.Rows[i][0].AsInt()
				if prevID > curID {
					t.Fatalf("trial %d: tie-break ordering violated at %d", trial, i)
				}
			}
		}

		// Query 6: UPDATE then re-check with the model.
		mustExec(t, e, fmt.Sprintf("UPDATE m SET val = val + 1 WHERE cat = '%s'", cat))
		for i := range rows {
			if rows[i].cat == cat {
				rows[i].val++
			}
		}
		res = mustExec(t, e, "SELECT SUM(val) FROM m")
		var wantSum float64
		for _, r := range rows {
			wantSum += r.val
		}
		gotSum, _ := res.Rows[0][0].AsFloat()
		if gotSum != wantSum {
			t.Fatalf("trial %d: post-update SUM = %g, model says %g", trial, gotSum, wantSum)
		}

		// Query 7: DELETE and count.
		mustExec(t, e, fmt.Sprintf("DELETE FROM m WHERE val > %g", thr+5))
		kept := rows[:0]
		for _, r := range rows {
			if !(r.val > thr+5) {
				kept = append(kept, r)
			}
		}
		rows = kept
		res = mustExec(t, e, "SELECT COUNT(*) FROM m")
		gotN, _ := res.Rows[0][0].AsInt()
		if int(gotN) != len(rows) {
			t.Fatalf("trial %d: post-delete count = %d, model says %d", trial, gotN, len(rows))
		}
	}
}
