package engine

import (
	"testing"

	"crowddb/internal/storage"
)

// NULL three-valued logic across the new executor operators: filter,
// hash-join keys, DISTINCT, and TopN comparisons (the satellite coverage
// item of the planner/executor split).

func nullEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE l (id INTEGER, k INTEGER, v TEXT)`)
	mustExec(t, e, `INSERT INTO l VALUES
		(1, 10, 'a'), (2, NULL, 'b'), (3, 20, 'c'), (4, NULL, 'd'), (5, 10, 'e')`)
	mustExec(t, e, `CREATE TABLE r (rid INTEGER, k INTEGER, w TEXT)`)
	mustExec(t, e, `INSERT INTO r VALUES
		(1, 10, 'x'), (2, NULL, 'y'), (3, 30, 'z')`)
	return e
}

func TestNullFilterOperator(t *testing.T) {
	e := nullEngine(t)
	// UNKNOWN filters the row out; OR can rescue it, AND cannot.
	if res := mustExec(t, e, `SELECT id FROM l WHERE k = 10`); len(res.Rows) != 2 {
		t.Fatalf("k = 10 rows = %d", len(res.Rows))
	}
	if res := mustExec(t, e, `SELECT id FROM l WHERE NOT k = 10`); len(res.Rows) != 1 {
		t.Fatalf("NOT k = 10 must keep only k=20, got %d", len(res.Rows))
	}
	if res := mustExec(t, e, `SELECT id FROM l WHERE k = 10 OR k IS NULL`); len(res.Rows) != 4 {
		t.Fatalf("OR IS NULL rows = %d", len(res.Rows))
	}
	if res := mustExec(t, e, `SELECT id FROM l WHERE k > 0 AND v = 'b'`); len(res.Rows) != 0 {
		t.Fatalf("UNKNOWN AND TRUE must not match, got %d rows", len(res.Rows))
	}
}

// Rows with a NULL join key must never match — on either side — because
// NULL = anything is UNKNOWN.
func TestNullJoinKeys(t *testing.T) {
	e := nullEngine(t)
	res := mustExec(t, e, `SELECT l.id, r.rid FROM l JOIN r ON l.k = r.k`)
	// Matches: l1(k=10)–r1, l5(k=10)–r1. NULL keys on l2, l4, r2 drop out;
	// k=20/k=30 have no partner.
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		rid, _ := row[1].AsInt()
		if rid != 1 {
			t.Fatalf("unexpected match %v", row)
		}
	}
	// The same holds when the NULL side is the probe side (swap tables).
	res = mustExec(t, e, `SELECT r.rid, l.id FROM r JOIN l ON r.k = l.k`)
	if len(res.Rows) != 2 {
		t.Fatalf("swapped join rows = %v", res.Rows)
	}
}

// A NULL in a non-equi residual ON conjunct also drops the pair.
func TestNullJoinResidual(t *testing.T) {
	e := nullEngine(t)
	res := mustExec(t, e, `SELECT l.id FROM l JOIN r ON l.k = r.k AND l.k > r.rid`)
	// l1/l5 (k=10) vs r1 (rid=1): 10 > 1 TRUE → both survive.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT l.id FROM l JOIN r ON l.id = r.rid AND l.k > r.k`)
	// Pairs by id: (1,1): 10>10 F; (2,2): NULL>NULL UNKNOWN; (3,3): 20>30 F.
	if len(res.Rows) != 0 {
		t.Fatalf("UNKNOWN residual must drop the pair, got %v", res.Rows)
	}
}

// DISTINCT treats NULLs as duplicates of each other (standard SQL).
func TestNullDistinct(t *testing.T) {
	e := nullEngine(t)
	res := mustExec(t, e, `SELECT DISTINCT k FROM l ORDER BY k`)
	// Values 10, 20, NULL — two NULL rows collapse into one.
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	if !res.Rows[2][0].IsNull() {
		t.Fatalf("NULL must sort last: %v", res.Rows)
	}
	// But NULL stays distinct from values of any kind.
	if v, _ := res.Rows[0][0].AsInt(); v != 10 {
		t.Fatalf("first = %v", res.Rows[0][0])
	}
}

// TopN must order NULL keys last regardless of direction — exactly like a
// full sort followed by LIMIT.
func TestNullTopN(t *testing.T) {
	e := nullEngine(t)
	asc := mustExec(t, e, `SELECT id FROM l ORDER BY k LIMIT 3`)
	wantIDs(t, asc, 1, 5, 3) // k=10 (ids 1,5 stable), k=20
	desc := mustExec(t, e, `SELECT id FROM l ORDER BY k DESC LIMIT 3`)
	wantIDs(t, desc, 3, 1, 5) // k=20, then k=10 in insertion order
	// When the limit reaches into the NULL tail, NULL rows appear —
	// after every non-NULL key, in insertion order.
	tail := mustExec(t, e, `SELECT id FROM l ORDER BY k LIMIT 5`)
	wantIDs(t, tail, 1, 5, 3, 2, 4)
	// The heap path and the full-sort path agree.
	full := mustExec(t, e, `SELECT id FROM l ORDER BY k`)
	wantIDs(t, full, 1, 5, 3, 2, 4)
}

func wantIDs(t *testing.T, res *Result, want ...int64) {
	t.Helper()
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		got, _ := res.Rows[i][0].AsInt()
		if got != w {
			t.Fatalf("row %d id = %d, want %d (all: %v)", i, got, w, res.Rows)
		}
	}
}

// Aggregation over joined rows with NULLs: COUNT skips NULL, SUM/AVG
// ignore them, and grouped keys treat NULL as one group.
func TestNullAggregateOverJoin(t *testing.T) {
	e := nullEngine(t)
	res := mustExec(t, e, `SELECT COUNT(k), COUNT(*) FROM l`)
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("COUNT(k) = %d", n)
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 5 {
		t.Fatalf("COUNT(*) = %d", n)
	}
	res = mustExec(t, e, `SELECT k, COUNT(*) n FROM l GROUP BY k ORDER BY n DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
}
