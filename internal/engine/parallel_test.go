package engine

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"crowddb/internal/storage"
)

// Parallel-executor coverage: every query here runs once with serial
// plans (exec-workers 1) and once at dop 8, and the two results must be
// identical row for row — the morsel executor's ordering contract. The
// fixtures are sized past plan.MinParallelRows (4096) so the dop-8 runs
// actually take the parallel paths.

const parRows = 5000

// parallelEngine builds wide (parRows rows, every 7th join key NULL),
// dims (10 distinct join keys), and tiny (3 rows, for cross joins).
func parallelEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE wide (id INTEGER, k INTEGER, grp INTEGER, score FLOAT)`)
	mustExec(t, e, `CREATE TABLE dims (k INTEGER, label TEXT)`)
	mustExec(t, e, `CREATE TABLE tiny (bound INTEGER, tag TEXT)`)
	wide, _ := e.Catalog().Get("wide")
	for i := 0; i < parRows; i++ {
		k := storage.Int(int64(i % 10))
		if i%7 == 0 {
			k = storage.Null()
		}
		if err := wide.Insert(storage.Int(int64(i)), k,
			storage.Int(int64(i%4)), storage.Float(float64(i%1000))); err != nil {
			t.Fatal(err)
		}
	}
	dims, _ := e.Catalog().Get("dims")
	for k := 0; k < 10; k++ {
		if err := dims.Insert(storage.Int(int64(k)), storage.Text(fmt.Sprintf("label-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, e, `INSERT INTO tiny VALUES (3, 'lo'), (4700, 'hi'), (NULL, 'null')`)
	return e
}

// bothDops runs sql at exec-workers 1 and 8 and requires identical
// results (columns, rows, and row order).
func bothDops(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	e.SetExecWorkers(1)
	serial := mustExec(t, e, sql)
	e.SetExecWorkers(8)
	defer e.SetExecWorkers(1)
	parallel := mustExec(t, e, sql)
	if !reflect.DeepEqual(serial.Columns, parallel.Columns) {
		t.Fatalf("columns diverge: serial %v parallel %v", serial.Columns, parallel.Columns)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts diverge: serial %d parallel %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if !reflect.DeepEqual(serial.Rows[i], parallel.Rows[i]) {
			t.Fatalf("row %d diverges: serial %v parallel %v", i, serial.Rows[i], parallel.Rows[i])
		}
	}
	return serial
}

func TestParallelScanFilterMatchesSerial(t *testing.T) {
	e := parallelEngine(t)
	res := bothDops(t, e, `SELECT id, score FROM wide WHERE score > 899.0`)
	if len(res.Rows) != 500 { // 100 per 1000-block × 5 blocks
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Gather must preserve the serial scan order.
	first, _ := res.Rows[0][0].AsInt()
	second, _ := res.Rows[1][0].AsInt()
	if first != 900 || second != 901 {
		t.Fatalf("order wrong: %v %v", res.Rows[0], res.Rows[1])
	}
}

func TestParallelJoinDropsNullKeysBothSides(t *testing.T) {
	e := parallelEngine(t)
	res := bothDops(t, e, `SELECT w.id, d.label FROM wide w JOIN dims d ON w.k = d.k`)
	// Every 7th wide row has a NULL key and must not match anything:
	// ceil(5000/7) = 715 dropped rows.
	if want := parRows - 715; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row[1].IsNull() {
			t.Fatalf("NULL-keyed row leaked into the join output: %v", row)
		}
	}
}

func TestParallelCrossJoinResidualOnly(t *testing.T) {
	e := parallelEngine(t)
	// No equality conjunct at all: the join degenerates to a keyless
	// cross join filtered by the residual, still morsel-parallel on the
	// probe side. The NULL bound matches nothing (3VL).
	res := bothDops(t, e, `SELECT w.id, t.tag FROM wide w JOIN tiny t ON w.id < t.bound`)
	if want := 3 + 4700; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestParallelGroupByMatchesSerial(t *testing.T) {
	e := parallelEngine(t)
	res := bothDops(t, e, `SELECT grp, COUNT(*), SUM(score), MIN(score), MAX(score), AVG(score)
		FROM wide GROUP BY grp HAVING COUNT(*) > 0`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// First-seen order: grp cycles 0,1,2,3 from row 0.
	for g := 0; g < 4; g++ {
		grp, _ := res.Rows[g][0].AsInt()
		count, _ := res.Rows[g][1].AsInt()
		if grp != int64(g) || count != int64(parRows/4) {
			t.Fatalf("group %d = %v", g, res.Rows[g])
		}
	}
}

func TestParallelAggregateOverJoin(t *testing.T) {
	e := parallelEngine(t)
	res := bothDops(t, e, `SELECT COUNT(*) FROM wide w JOIN dims d ON w.k = d.k WHERE w.score > 500.0`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestExplainParallelJoinShape is the planner acceptance check: in a
// three-table join the greedy orderer must pick the small table as the
// hash build side even when it comes first in syntax order, and EXPLAIN
// must render the degree of parallelism on every parallel operator.
func TestExplainParallelJoinShape(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE small (k INTEGER, name TEXT)`)
	mustExec(t, e, `CREATE TABLE big1 (id INTEGER, v FLOAT)`)
	mustExec(t, e, `CREATE TABLE big2 (id INTEGER, w FLOAT)`)
	small, _ := e.Catalog().Get("small")
	for i := 0; i < 50; i++ {
		if err := small.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"big1", "big2"} {
		tbl, _ := e.Catalog().Get(name)
		for i := 0; i < parRows; i++ {
			if err := tbl.Insert(storage.Int(int64(i)), storage.Float(float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.SetExecWorkers(8)

	res := mustExec(t, e, `EXPLAIN SELECT b1.id FROM small s
		JOIN big1 b1 ON s.k = b1.id
		JOIN big2 b2 ON b1.id = b2.id`)
	var lines []string
	for _, row := range res.Rows {
		line, _ := row[0].AsText()
		lines = append(lines, line)
	}
	text := strings.Join(lines, "\n")

	// small is syntactically first but must end up as the build (right)
	// input of its join: the key pair renders probe-side first.
	if !strings.Contains(text, "HashJoin(b1.id = s.k)") {
		t.Fatalf("small table is not the build side:\n%s", text)
	}
	// Parallel operators render their dop; the 50-row small scan stays
	// serial.
	for _, want := range []string{
		"Scan(big1 b1) [dop=8]",
		"Scan(big2 b2) [dop=8]",
		"[dop=8]\n", // at least one HashJoin line carries it too
	} {
		if !strings.Contains(text+"\n", want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "Scan(small s) [dop") {
		t.Fatalf("50-row scan should stay serial:\n%s", text)
	}
	joinLines := 0
	for _, l := range lines {
		if strings.Contains(l, "HashJoin") && strings.Contains(l, "[dop=8]") {
			joinLines++
		}
	}
	if joinLines != 2 {
		t.Fatalf("want both joins parallel, got %d:\n%s", joinLines, text)
	}
}

// TestParallelJoinDuringCrowdFill races parallel join queries against
// concurrent cell fills and row inserts on the probe table — the exact
// interleaving a crowd expansion produces while readers keep querying.
// Run under -race (nightly does); correctness here is "no error and
// plausible results", since concurrent writers make exact counts racy.
func TestParallelJoinDuringCrowdFill(t *testing.T) {
	e := parallelEngine(t)
	e.SetExecWorkers(8)
	wide, _ := e.Catalog().Get("wide")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Fill cells like a crowd job does, and append fresh rows.
			if err := wide.Set(i%parRows, 3, storage.Float(float64(i))); err != nil {
				t.Error(err)
				return
			}
			if i%50 == 0 {
				if err := wide.Insert(storage.Int(int64(parRows+i)), storage.Int(int64(i%10)),
					storage.Int(int64(i%4)), storage.Null()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for q := 0; q < 30; q++ {
		res, err := e.ExecSQL(`SELECT w.id, d.label FROM wide w JOIN dims d ON w.k = d.k`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) < parRows-715 {
			t.Fatalf("query %d returned %d rows, fewer than the seeded minimum", q, len(res.Rows))
		}
	}
	close(stop)
	wg.Wait()
}
