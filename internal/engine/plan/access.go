package plan

import (
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Access-path selection: given the conjuncts pushed down to one table,
// pick an index probe instead of a full scan when the predicate shape
// allows it.
//
// Selection rules (see DESIGN.md §12):
//
//  1. An equality conjunct `col = literal` (either operand order) on an
//     indexed column becomes an IndexScan point probe. Any index kind
//     answers equality — hash is preferred. The literal may be of any
//     non-NULL type: Value.Equal never errors, and a probe of a foreign
//     type simply selects nothing, exactly like the filter would.
//  2. Otherwise, range conjuncts (<, <=, >, >=) on an ordered-indexed
//     column are folded into one bound probe (IndexRange), keeping the
//     tightest bound per side. Range probes require the literal's type
//     class to match the column's (numeric/text/bool): a mismatched
//     comparison is a runtime error in the evaluator, and the scan must
//     stay the one to raise it.
//  3. Everything not consumed by the probe stays as a residual filter,
//     evaluated during batch refill like a pushed-down scan filter.
//
// NULL literals never select an index: `col = NULL` is never TRUE under
// three-valued logic and the filter path already returns zero rows.

// eqProbe matches `col = literal` with col bound to seg, returning the
// column name and literal.
func eqProbe(e sqlparse.Expr, seg Segment) (string, *sqlparse.Literal, bool) {
	bin, ok := e.(*sqlparse.BinaryExpr)
	if !ok || bin.Op != "=" {
		return "", nil, false
	}
	if col, lit, ok := colLiteral(bin.Left, bin.Right, seg); ok {
		return col, lit, true
	}
	return colLiteral(bin.Right, bin.Left, seg)
}

// rangeProbe matches `col OP literal` (or the flipped literal OP col) for
// a range operator, returning the operator normalized to the column on
// the left.
func rangeProbe(e sqlparse.Expr, seg Segment) (col string, op string, lit *sqlparse.Literal, ok bool) {
	bin, isBin := e.(*sqlparse.BinaryExpr)
	if !isBin {
		return "", "", nil, false
	}
	var flip string
	switch bin.Op {
	case "<":
		flip = ">"
	case "<=":
		flip = ">="
	case ">":
		flip = "<"
	case ">=":
		flip = "<="
	default:
		return "", "", nil, false
	}
	if c, l, match := colLiteral(bin.Left, bin.Right, seg); match {
		return c, bin.Op, l, true
	}
	if c, l, match := colLiteral(bin.Right, bin.Left, seg); match {
		return c, flip, l, true
	}
	return "", "", nil, false
}

// colLiteral matches (ColumnRef-of-seg, Literal) across the two operands.
func colLiteral(a, b sqlparse.Expr, seg Segment) (string, *sqlparse.Literal, bool) {
	ref, ok := a.(*sqlparse.ColumnRef)
	if !ok {
		return "", nil, false
	}
	lit, ok := b.(*sqlparse.Literal)
	if !ok {
		return "", nil, false
	}
	if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
		return "", nil, false
	}
	if _, ok := seg.Schema.Lookup(ref.Name); !ok {
		return "", nil, false
	}
	return ref.Name, lit, true
}

// LitValue converts a parse-tree literal into a storage value. It is the
// one authoritative Literal→Value switch: the evaluator and the index
// probes (internal/engine/exec) delegate here, so a future literal kind
// cannot silently diverge between the scan and index paths.
func LitValue(l *sqlparse.Literal) storage.Value {
	switch l.Kind {
	case sqlparse.LitBool:
		return storage.Bool(l.Bool)
	case sqlparse.LitInt:
		return storage.Int(l.Int)
	case sqlparse.LitFloat:
		return storage.Float(l.Float)
	case sqlparse.LitString:
		return storage.Text(l.Str)
	default:
		return storage.Null()
	}
}

// LitCompatible reports whether an ordering comparison between the
// literal and a column of kind k evaluates without a type error —
// exported for internal/engine/exec, whose vectorized-filter lowering
// must make exactly the same call before replacing the evaluator (which
// surfaces the type error) with a storage predicate (which cannot).
func LitCompatible(l *sqlparse.Literal, k storage.Kind) bool {
	return classCompatible(l, k)
}

// classCompatible reports whether a range comparison between the literal
// and a column of kind k evaluates without a type error (numeric↔numeric,
// text↔text, bool↔bool — mirroring storage.Value.Compare).
func classCompatible(l *sqlparse.Literal, k storage.Kind) bool {
	switch l.Kind {
	case sqlparse.LitInt, sqlparse.LitFloat:
		return k == storage.KindInt || k == storage.KindFloat
	case sqlparse.LitString:
		return k == storage.KindText
	case sqlparse.LitBool:
		return k == storage.KindBool
	default:
		return false
	}
}

// rangeBounds accumulates the tightest lo/hi bounds for one column.
type rangeBounds struct {
	lo, hi       *sqlparse.Literal
	loInc, hiInc bool
	used         int // conjunct count consumed into the bounds
}

// tightenLo keeps the larger lower bound (exclusive beats inclusive on a
// tie).
func (r *rangeBounds) tightenLo(lit *sqlparse.Literal, inc bool) {
	r.used++
	if r.lo == nil {
		r.lo, r.loInc = lit, inc
		return
	}
	c, err := LitValue(lit).Compare(LitValue(r.lo))
	if err != nil {
		return // mixed numeric/text bounds on one column: keep the first
	}
	if c > 0 || (c == 0 && r.loInc && !inc) {
		r.lo, r.loInc = lit, inc
	}
}

// tightenHi keeps the smaller upper bound (exclusive beats inclusive on a
// tie).
func (r *rangeBounds) tightenHi(lit *sqlparse.Literal, inc bool) {
	r.used++
	if r.hi == nil {
		r.hi, r.hiInc = lit, inc
		return
	}
	c, err := LitValue(lit).Compare(LitValue(r.hi))
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && r.hiInc && !inc) {
		r.hi, r.hiInc = lit, inc
	}
}

// accessPath builds segment i's access node from its pushed-down
// conjuncts: an IndexScan for an indexed equality, an IndexRange for
// indexed range bounds, or the plain Scan.
func (b *builder) accessPath(i int, cs []sqlparse.Expr) Node {
	tbl := b.tables[i]
	seg := b.segs[i]
	layout := b.singleLayout(i)

	// 1. Equality point probe: pool the `col = literal` conjuncts (a NULL
	// literal is never TRUE and stays on the filter path) and pick the
	// index whose key columns are ALL pinned by one — widest key first
	// (most conjuncts consumed, narrowest probe), then hash over ordered,
	// then name, for plan stability. Composite indexes need the full key:
	// a prefix match cannot probe, and rows with a NULL anywhere in the
	// key are absent from the index — which full-key equality (3VL)
	// excludes anyway, keeping the probe exact.
	type eqConj struct {
		lit *sqlparse.Literal
		pos int
	}
	eqs := map[string]eqConj{}
	for k, c := range cs {
		col, lit, ok := eqProbe(c, seg)
		if !ok || lit.Kind == sqlparse.LitNull {
			continue
		}
		lc := strings.ToLower(col)
		if _, dup := eqs[lc]; !dup {
			eqs[lc] = eqConj{lit: lit, pos: k}
		}
	}
	if len(eqs) > 0 {
		var best *storage.IndexMeta
		for _, meta := range tbl.IndexMetas() {
			meta := meta
			covered := len(meta.Columns) <= len(eqs)
			for _, col := range meta.Columns {
				if _, ok := eqs[strings.ToLower(col)]; !ok {
					covered = false
					break
				}
			}
			if covered && (best == nil || betterEqIndex(meta, *best)) {
				best = &meta
			}
		}
		if best != nil {
			keys := make([]*sqlparse.Literal, len(best.Columns))
			used := map[int]bool{}
			for i, col := range best.Columns {
				e := eqs[strings.ToLower(col)]
				keys[i] = e.lit
				used[e.pos] = true
			}
			rest := make([]sqlparse.Expr, 0, len(cs))
			for k, c := range cs {
				if !used[k] {
					rest = append(rest, c)
				}
			}
			return &IndexScan{
				Table: tbl, Name: seg.Table, Binding: seg.Binding,
				Index: best.Name, Column: best.Columns[0], Cols: best.Columns,
				Key: keys[0], Keys: keys,
				Residual: conjoin(rest), Layout: layout,
			}
		}
	}

	// 2. Range probe on an ordered index: fold every usable bound on the
	// first ordered-indexed column that has one. Single-column indexes
	// only: a composite index omits rows with a NULL in any later key
	// column, rows the first-column bound alone would keep.
	var (
		rangeCol  string
		rangeMeta storage.IndexMeta
		bounds    rangeBounds
		rest      []sqlparse.Expr
	)
	for _, c := range cs {
		col, op, lit, ok := rangeProbe(c, seg)
		if ok && rangeCol == "" {
			if idx, found := seg.Schema.Lookup(col); found && classCompatible(lit, seg.Schema.Column(idx).Kind) {
				if meta, has := tbl.IndexOn(col, true); has && len(meta.Columns) == 1 {
					rangeCol, rangeMeta = col, meta
				}
			}
		}
		if ok && rangeCol != "" && strings.EqualFold(col, rangeCol) {
			ci, _ := seg.Schema.Lookup(col)
			if classCompatible(lit, seg.Schema.Column(ci).Kind) {
				switch op {
				case ">":
					bounds.tightenLo(lit, false)
				case ">=":
					bounds.tightenLo(lit, true)
				case "<":
					bounds.tightenHi(lit, false)
				case "<=":
					bounds.tightenHi(lit, true)
				}
				continue
			}
		}
		rest = append(rest, c)
	}
	if bounds.used > 0 {
		return &IndexRange{
			Table: tbl, Name: seg.Table, Binding: seg.Binding,
			Index: rangeMeta.Name, Column: rangeCol,
			Lo: bounds.lo, Hi: bounds.hi, LoInc: bounds.loInc, HiInc: bounds.hiInc,
			Residual: conjoin(rest), Layout: layout,
		}
	}

	return &Scan{
		Table: tbl, Name: seg.Table, Binding: seg.Binding,
		Filter: conjoin(cs), Layout: layout,
	}
}

// betterEqIndex ranks equality-probe candidates whose keys are fully
// covered: widest key first (consumes the most conjuncts), then hash over
// ordered (O(1) equality), then name, for plan stability.
func betterEqIndex(a, b storage.IndexMeta) bool {
	switch {
	case len(a.Columns) != len(b.Columns):
		return len(a.Columns) > len(b.Columns)
	case a.Ordered != b.Ordered:
		return !a.Ordered
	default:
		return strings.ToLower(a.Name) < strings.ToLower(b.Name)
	}
}

// tryIndexOrder attempts to satisfy ORDER BY from index order, returning
// the (possibly replaced) access node and whether the sort can be elided.
//
// Index order is by key per the index's directions with ties in table
// order — identical to a stable sort in those directions (reversed for
// the opposite directions) — but the index holds no NULL keys, and the
// sorter places NULL keys last. Elision is therefore only legal when
// NULL-keyed rows provably cannot reach the output:
//
//   - above an IndexScan point probe whose ORDER BY columns are all part
//     of the (fully fixed, non-NULL) probe key: every emitted row ties on
//     every ORDER BY key, so the probe's row order is a valid stable
//     order in ANY direction;
//   - above an IndexRange on the ORDER BY column, whose bounds already
//     reject NULL keys (3VL) — DESC is served by reversing the probe;
//   - converting a bare unfiltered Scan when a LIMIT is present and a
//     single-column ordered index holds at least LIMIT entries at plan
//     time, so the NULL tail (which sorts last under either direction)
//     can never be reached. Composite indexes are excluded: a row with a
//     NULL in a later key column is absent from the index yet does NOT
//     sort last on the leading column, so the Entries guard cannot make
//     it safe.
func (b *builder) tryIndexOrder(node Node, orderBy []sqlparse.OrderKey, limit int64, distinct bool) (Node, bool) {
	if len(b.segs) != 1 || len(orderBy) == 0 {
		return node, false
	}
	seg := b.segs[0]
	names := make([]string, len(orderBy))
	for i, key := range orderBy {
		ref, ok := key.Expr.(*sqlparse.ColumnRef)
		if !ok {
			return node, false
		}
		if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
			return node, false
		}
		if _, ok := seg.Schema.Lookup(ref.Name); !ok {
			return node, false
		}
		names[i] = ref.Name
	}

	switch t := node.(type) {
	case *IndexScan:
		fixed := map[string]bool{}
		for _, c := range t.Cols {
			fixed[strings.ToLower(c)] = true
		}
		if len(t.Cols) == 0 {
			fixed[strings.ToLower(t.Column)] = true
		}
		for _, n := range names {
			if !fixed[strings.ToLower(n)] {
				return node, false
			}
		}
		return node, true
	case *IndexRange:
		if len(names) != 1 || !strings.EqualFold(t.Column, names[0]) {
			return node, false
		}
		t.Desc = orderBy[0].Desc
		return t, true
	case *Scan:
		if t.Filter != nil || distinct || limit < 0 || len(names) != 1 {
			return node, false
		}
		meta, has := t.Table.IndexOn(names[0], true)
		if !has || len(meta.Columns) != 1 || int64(meta.Entries) < limit {
			return node, false
		}
		return &IndexRange{
			Table: t.Table, Name: t.Name, Binding: t.Binding,
			Index: meta.Name, Column: names[0], Desc: orderBy[0].Desc,
			Layout: t.Layout,
		}, true
	default:
		return node, false
	}
}

// tryIndexOnly converts a residual-free index probe (optionally under a
// Limit) into an IndexOnlyScan when every projected expression is a bare
// reference to one of the probe's key columns: the executor then reads
// key tuples off the index and never touches table data. Returns the
// rewritten subtree and the pseudo-layout the Project above must resolve
// against.
func (b *builder) tryIndexOnly(node Node, exprs []sqlparse.Expr) (Node, *Layout, bool) {
	if len(b.segs) != 1 {
		return nil, nil, false
	}
	seg := b.segs[0]
	inner := node
	var lim *Limit
	if l, ok := node.(*Limit); ok {
		lim, inner = l, l.Input
	}

	var io *IndexOnlyScan
	switch t := inner.(type) {
	case *IndexScan:
		if t.Residual != nil || len(t.Cols) == 0 {
			return nil, nil, false
		}
		io = &IndexOnlyScan{
			Table: t.Table, Name: t.Name, Binding: t.Binding, Index: t.Index,
			Cols: t.Cols, Keys: t.Keys,
		}
	case *IndexRange:
		if t.Residual != nil {
			return nil, nil, false
		}
		// Range keys come off the index itself (storage.KeyRanger); range
		// probes are planned over ordered indexes only, which implement it.
		io = &IndexOnlyScan{
			Table: t.Table, Name: t.Name, Binding: t.Binding, Index: t.Index,
			Cols: []string{t.Column},
			Lo:   t.Lo, Hi: t.Hi, LoInc: t.LoInc, HiInc: t.HiInc, Desc: t.Desc,
		}
	default:
		return nil, nil, false
	}

	covered := map[string]bool{}
	for _, c := range io.Cols {
		covered[strings.ToLower(c)] = true
	}
	for _, e := range exprs {
		ref, ok := e.(*sqlparse.ColumnRef)
		if !ok {
			return nil, nil, false
		}
		if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
			return nil, nil, false
		}
		if !covered[strings.ToLower(ref.Name)] {
			return nil, nil, false
		}
	}

	// The pseudo-layout: one segment shaped like the key columns, kinds
	// copied from the base schema.
	keyCols := make([]storage.Column, len(io.Cols))
	for i, name := range io.Cols {
		ci, ok := seg.Schema.Lookup(name)
		if !ok {
			return nil, nil, false
		}
		keyCols[i] = seg.Schema.Column(ci)
	}
	keySchema, err := storage.NewSchema(keyCols...)
	if err != nil {
		return nil, nil, false
	}
	lay := NewLayout(Segment{Binding: seg.Binding, Table: seg.Table, Schema: keySchema})
	io.Layout = lay
	if lim != nil {
		return &Limit{Input: io, N: lim.N}, lay, true
	}
	return io, lay, true
}
