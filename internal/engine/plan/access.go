package plan

import (
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Access-path selection: given the conjuncts pushed down to one table,
// pick an index probe instead of a full scan when the predicate shape
// allows it.
//
// Selection rules (see DESIGN.md §12):
//
//  1. An equality conjunct `col = literal` (either operand order) on an
//     indexed column becomes an IndexScan point probe. Any index kind
//     answers equality — hash is preferred. The literal may be of any
//     non-NULL type: Value.Equal never errors, and a probe of a foreign
//     type simply selects nothing, exactly like the filter would.
//  2. Otherwise, range conjuncts (<, <=, >, >=) on an ordered-indexed
//     column are folded into one bound probe (IndexRange), keeping the
//     tightest bound per side. Range probes require the literal's type
//     class to match the column's (numeric/text/bool): a mismatched
//     comparison is a runtime error in the evaluator, and the scan must
//     stay the one to raise it.
//  3. Everything not consumed by the probe stays as a residual filter,
//     evaluated during batch refill like a pushed-down scan filter.
//
// NULL literals never select an index: `col = NULL` is never TRUE under
// three-valued logic and the filter path already returns zero rows.

// eqProbe matches `col = literal` with col bound to seg, returning the
// column name and literal.
func eqProbe(e sqlparse.Expr, seg Segment) (string, *sqlparse.Literal, bool) {
	bin, ok := e.(*sqlparse.BinaryExpr)
	if !ok || bin.Op != "=" {
		return "", nil, false
	}
	if col, lit, ok := colLiteral(bin.Left, bin.Right, seg); ok {
		return col, lit, true
	}
	return colLiteral(bin.Right, bin.Left, seg)
}

// rangeProbe matches `col OP literal` (or the flipped literal OP col) for
// a range operator, returning the operator normalized to the column on
// the left.
func rangeProbe(e sqlparse.Expr, seg Segment) (col string, op string, lit *sqlparse.Literal, ok bool) {
	bin, isBin := e.(*sqlparse.BinaryExpr)
	if !isBin {
		return "", "", nil, false
	}
	var flip string
	switch bin.Op {
	case "<":
		flip = ">"
	case "<=":
		flip = ">="
	case ">":
		flip = "<"
	case ">=":
		flip = "<="
	default:
		return "", "", nil, false
	}
	if c, l, match := colLiteral(bin.Left, bin.Right, seg); match {
		return c, bin.Op, l, true
	}
	if c, l, match := colLiteral(bin.Right, bin.Left, seg); match {
		return c, flip, l, true
	}
	return "", "", nil, false
}

// colLiteral matches (ColumnRef-of-seg, Literal) across the two operands.
func colLiteral(a, b sqlparse.Expr, seg Segment) (string, *sqlparse.Literal, bool) {
	ref, ok := a.(*sqlparse.ColumnRef)
	if !ok {
		return "", nil, false
	}
	lit, ok := b.(*sqlparse.Literal)
	if !ok {
		return "", nil, false
	}
	if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
		return "", nil, false
	}
	if _, ok := seg.Schema.Lookup(ref.Name); !ok {
		return "", nil, false
	}
	return ref.Name, lit, true
}

// LitValue converts a parse-tree literal into a storage value. It is the
// one authoritative Literal→Value switch: the evaluator and the index
// probes (internal/engine/exec) delegate here, so a future literal kind
// cannot silently diverge between the scan and index paths.
func LitValue(l *sqlparse.Literal) storage.Value {
	switch l.Kind {
	case sqlparse.LitBool:
		return storage.Bool(l.Bool)
	case sqlparse.LitInt:
		return storage.Int(l.Int)
	case sqlparse.LitFloat:
		return storage.Float(l.Float)
	case sqlparse.LitString:
		return storage.Text(l.Str)
	default:
		return storage.Null()
	}
}

// classCompatible reports whether a range comparison between the literal
// and a column of kind k evaluates without a type error (numeric↔numeric,
// text↔text, bool↔bool — mirroring storage.Value.Compare).
func classCompatible(l *sqlparse.Literal, k storage.Kind) bool {
	switch l.Kind {
	case sqlparse.LitInt, sqlparse.LitFloat:
		return k == storage.KindInt || k == storage.KindFloat
	case sqlparse.LitString:
		return k == storage.KindText
	case sqlparse.LitBool:
		return k == storage.KindBool
	default:
		return false
	}
}

// rangeBounds accumulates the tightest lo/hi bounds for one column.
type rangeBounds struct {
	lo, hi       *sqlparse.Literal
	loInc, hiInc bool
	used         int // conjunct count consumed into the bounds
}

// tightenLo keeps the larger lower bound (exclusive beats inclusive on a
// tie).
func (r *rangeBounds) tightenLo(lit *sqlparse.Literal, inc bool) {
	r.used++
	if r.lo == nil {
		r.lo, r.loInc = lit, inc
		return
	}
	c, err := LitValue(lit).Compare(LitValue(r.lo))
	if err != nil {
		return // mixed numeric/text bounds on one column: keep the first
	}
	if c > 0 || (c == 0 && r.loInc && !inc) {
		r.lo, r.loInc = lit, inc
	}
}

// tightenHi keeps the smaller upper bound (exclusive beats inclusive on a
// tie).
func (r *rangeBounds) tightenHi(lit *sqlparse.Literal, inc bool) {
	r.used++
	if r.hi == nil {
		r.hi, r.hiInc = lit, inc
		return
	}
	c, err := LitValue(lit).Compare(LitValue(r.hi))
	if err != nil {
		return
	}
	if c < 0 || (c == 0 && r.hiInc && !inc) {
		r.hi, r.hiInc = lit, inc
	}
}

// accessPath builds segment i's access node from its pushed-down
// conjuncts: an IndexScan for an indexed equality, an IndexRange for
// indexed range bounds, or the plain Scan.
func (b *builder) accessPath(i int, cs []sqlparse.Expr) Node {
	tbl := b.tables[i]
	seg := b.segs[i]
	layout := b.singleLayout(i)

	// 1. Equality point probe.
	for k, c := range cs {
		col, lit, ok := eqProbe(c, seg)
		if !ok || lit.Kind == sqlparse.LitNull {
			continue
		}
		meta, found := tbl.IndexOn(col, false)
		if !found {
			continue
		}
		rest := make([]sqlparse.Expr, 0, len(cs)-1)
		rest = append(rest, cs[:k]...)
		rest = append(rest, cs[k+1:]...)
		return &IndexScan{
			Table: tbl, Name: seg.Table, Binding: seg.Binding,
			Index: meta.Name, Column: col, Key: lit,
			Residual: conjoin(rest), Layout: layout,
		}
	}

	// 2. Range probe on an ordered index: fold every usable bound on the
	// first ordered-indexed column that has one.
	var (
		rangeCol  string
		rangeMeta storage.IndexMeta
		bounds    rangeBounds
		rest      []sqlparse.Expr
	)
	for _, c := range cs {
		col, op, lit, ok := rangeProbe(c, seg)
		if ok && rangeCol == "" {
			if idx, found := seg.Schema.Lookup(col); found && classCompatible(lit, seg.Schema.Column(idx).Kind) {
				if meta, has := tbl.IndexOn(col, true); has {
					rangeCol, rangeMeta = col, meta
				}
			}
		}
		if ok && rangeCol != "" && strings.EqualFold(col, rangeCol) {
			ci, _ := seg.Schema.Lookup(col)
			if classCompatible(lit, seg.Schema.Column(ci).Kind) {
				switch op {
				case ">":
					bounds.tightenLo(lit, false)
				case ">=":
					bounds.tightenLo(lit, true)
				case "<":
					bounds.tightenHi(lit, false)
				case "<=":
					bounds.tightenHi(lit, true)
				}
				continue
			}
		}
		rest = append(rest, c)
	}
	if bounds.used > 0 {
		return &IndexRange{
			Table: tbl, Name: seg.Table, Binding: seg.Binding,
			Index: rangeMeta.Name, Column: rangeCol,
			Lo: bounds.lo, Hi: bounds.hi, LoInc: bounds.loInc, HiInc: bounds.hiInc,
			Residual: conjoin(rest), Layout: layout,
		}
	}

	return &Scan{
		Table: tbl, Name: seg.Table, Binding: seg.Binding,
		Filter: conjoin(cs), Layout: layout,
	}
}

// tryIndexOrder attempts to satisfy ORDER BY from index order, returning
// the (possibly replaced) access node and whether the sort can be elided.
//
// Index order is ascending by key with ties in table order — identical to
// a stable ASC sort — but the index holds no NULL keys, and the sorter
// places NULL keys last. Elision is therefore only legal when NULL-keyed
// rows provably cannot appear in the output:
//
//   - above an IndexScan/IndexRange on the ORDER BY column, whose
//     equality/range predicate already rejects NULL keys (3VL), or
//   - converting a bare unfiltered Scan when a LIMIT is present and the
//     index holds at least LIMIT entries at plan time, so the NULL tail
//     can never be reached. (Entries can shrink under a concurrent
//     delete — the same weak-consistency window the batched cursor
//     already documents.)
func (b *builder) tryIndexOrder(node Node, orderBy []sqlparse.OrderKey, limit int64, distinct bool) (Node, bool) {
	if len(b.segs) != 1 || len(orderBy) != 1 || orderBy[0].Desc {
		return node, false
	}
	ref, ok := orderBy[0].Expr.(*sqlparse.ColumnRef)
	if !ok {
		return node, false
	}
	seg := b.segs[0]
	if ref.Table != "" && strings.ToLower(ref.Table) != seg.Binding {
		return node, false
	}
	if _, ok := seg.Schema.Lookup(ref.Name); !ok {
		return node, false
	}

	switch t := node.(type) {
	case *IndexScan:
		// A single-key point probe emits rows in table order; every key is
		// equal and non-NULL, so any order is a stable ASC order.
		return node, strings.EqualFold(t.Column, ref.Name)
	case *IndexRange:
		return node, strings.EqualFold(t.Column, ref.Name)
	case *Scan:
		if t.Filter != nil || distinct || limit < 0 {
			return node, false
		}
		meta, has := t.Table.IndexOn(ref.Name, true)
		if !has || int64(meta.Entries) < limit {
			return node, false
		}
		return &IndexRange{
			Table: t.Table, Name: t.Name, Binding: t.Binding,
			Index: meta.Name, Column: ref.Name, Layout: t.Layout,
		}, true
	default:
		return node, false
	}
}
