package plan

import (
	"fmt"
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Build lowers a parsed SELECT into a logical plan over cat's tables.
//
// Planning validates every base-table column reference up front, so a
// query touching a not-yet-expanded column fails here — with a
// *MissingColumnError — before any row is read, which is what lets
// internal/core route it to the expansion scheduler instead of a scan.
func Build(s *sqlparse.SelectStmt, cat *storage.Catalog) (*SelectPlan, error) {
	b := &builder{stmt: s}
	if err := b.resolveTables(cat); err != nil {
		return nil, err
	}

	// ORDER BY may reference select-list aliases (ORDER BY age for
	// SELECT year - 1900 age …), including inside expressions
	// (ORDER BY age + 1). Rewrite before validation; real columns shadow
	// aliases. Grouped queries resolve ORDER BY against output columns
	// instead, so the rewrite only applies to the non-grouped path.
	grouped := len(s.GroupBy) > 0
	for _, item := range s.Items {
		if item.Agg != sqlparse.AggNone {
			grouped = true
		}
	}
	orderBy := s.OrderBy
	if !grouped && len(orderBy) > 0 {
		orderBy = b.rewriteOrderByAliases(orderBy)
	}

	if err := b.validate(grouped, orderBy); err != nil {
		return nil, err
	}
	if !grouped && s.Having != nil {
		return nil, fmt.Errorf("engine: HAVING requires GROUP BY or aggregates")
	}
	if grouped && s.Distinct {
		return nil, fmt.Errorf("engine: DISTINCT with aggregates/GROUP BY is not supported")
	}

	root, err := b.buildJoinTree()
	if err != nil {
		return nil, err
	}
	if grouped {
		return b.finishGrouped(root, orderBy)
	}
	return b.finishPlain(root, orderBy)
}

type builder struct {
	stmt   *sqlparse.SelectStmt
	segs   []Segment
	tables []*storage.Table // parallel to segs
	layout *Layout          // syntax-order layout over all segments (validation, star expansion)
	phys   *Layout          // physical layout of the join output (probe-major; = layout until reordering)
}

func (b *builder) resolveTables(cat *storage.Catalog) error {
	add := func(name, alias string) error {
		tbl, ok := cat.Get(name)
		if !ok {
			return fmt.Errorf("engine: no such table %q", name)
		}
		binding := strings.ToLower(alias)
		if binding == "" {
			binding = strings.ToLower(name)
		}
		for _, s := range b.segs {
			if s.Binding == binding {
				return fmt.Errorf("engine: duplicate table binding %q (alias the second occurrence)", binding)
			}
		}
		b.segs = append(b.segs, Segment{Binding: binding, Table: tbl.Name(), Schema: tbl.Schema()})
		b.tables = append(b.tables, tbl)
		return nil
	}
	if err := add(b.stmt.Table, b.stmt.TableAlias); err != nil {
		return err
	}
	for _, j := range b.stmt.Joins {
		if err := add(j.Table, j.Alias); err != nil {
			return err
		}
	}
	b.layout = NewLayout(b.segs...)
	return nil
}

// prefixLayout is the layout over the first n segments (the tables in
// scope to the left of join n-1).
func (b *builder) prefixLayout(n int) *Layout { return NewLayout(b.segs[:n]...) }

// singleLayout is the one-segment layout a scan of segment i produces.
func (b *builder) singleLayout(i int) *Layout { return NewLayout(b.segs[i]) }

// rewriteOrderByAliases deep-rewrites unqualified column references that
// name a select-list alias (and no real column) into the aliased
// expression.
func (b *builder) rewriteOrderByAliases(orderBy []sqlparse.OrderKey) []sqlparse.OrderKey {
	aliases := map[string]sqlparse.Expr{}
	for _, item := range b.stmt.Items {
		if item.Alias != "" && item.Expr != nil && item.Agg == sqlparse.AggNone {
			aliases[strings.ToLower(item.Alias)] = item.Expr
		}
	}
	if len(aliases) == 0 {
		return orderBy
	}
	isRealColumn := func(name string) bool {
		for _, s := range b.segs {
			if _, ok := s.Schema.Lookup(name); ok {
				return true
			}
		}
		return false
	}
	var rewrite func(e sqlparse.Expr) sqlparse.Expr
	rewrite = func(e sqlparse.Expr) sqlparse.Expr {
		switch n := e.(type) {
		case *sqlparse.ColumnRef:
			if n.Table != "" || isRealColumn(n.Name) {
				return n
			}
			if repl, ok := aliases[strings.ToLower(n.Name)]; ok {
				return repl
			}
			return n
		case *sqlparse.BinaryExpr:
			return &sqlparse.BinaryExpr{Op: n.Op, Left: rewrite(n.Left), Right: rewrite(n.Right)}
		case *sqlparse.UnaryExpr:
			return &sqlparse.UnaryExpr{Op: n.Op, Expr: rewrite(n.Expr)}
		case *sqlparse.IsNullExpr:
			return &sqlparse.IsNullExpr{Expr: rewrite(n.Expr), Negate: n.Negate}
		default:
			return e
		}
	}
	out := make([]sqlparse.OrderKey, len(orderBy))
	for i, key := range orderBy {
		out[i] = sqlparse.OrderKey{Expr: rewrite(key.Expr), Desc: key.Desc}
	}
	return out
}

// validate resolves every base-table column reference. HAVING is excluded
// (it resolves against output columns), as is ORDER BY for grouped
// queries.
func (b *builder) validate(grouped bool, orderBy []sqlparse.OrderKey) error {
	check := func(e sqlparse.Expr, layout *Layout) error {
		var firstErr error
		sqlparse.WalkColumns(e, func(c *sqlparse.ColumnRef) {
			if firstErr != nil {
				return
			}
			if _, err := layout.Resolve(c.Table, c.Name); err != nil {
				firstErr = err
			}
		})
		return firstErr
	}
	for _, item := range b.stmt.Items {
		if item.Expr != nil {
			if err := check(item.Expr, b.layout); err != nil {
				return err
			}
		}
	}
	if err := check(b.stmt.Where, b.layout); err != nil {
		return err
	}
	for _, g := range b.stmt.GroupBy {
		if err := check(g, b.layout); err != nil {
			return err
		}
	}
	if !grouped {
		for _, key := range orderBy {
			if err := check(key.Expr, b.layout); err != nil {
				return err
			}
		}
	}
	// ON conditions are scoped to the tables joined so far plus the table
	// being joined.
	for i := range b.stmt.Joins {
		if err := check(b.stmt.Joins[i].On, b.prefixLayout(i+2)); err != nil {
			return err
		}
	}
	return nil
}

// conjuncts flattens a predicate's AND tree.
func conjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if bin, ok := e.(*sqlparse.BinaryExpr); ok && bin.Op == "AND" {
		return append(conjuncts(bin.Left), conjuncts(bin.Right)...)
	}
	if e == nil {
		return nil
	}
	return []sqlparse.Expr{e}
}

// conjoin rebuilds a single predicate from conjuncts (nil when empty).
func conjoin(cs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", Left: out, Right: c}
		}
	}
	return out
}

// bindings returns the set of segment bindings an expression references.
// Unqualified references resolve through the full layout (validation has
// already ensured they are unambiguous).
func (b *builder) bindings(e sqlparse.Expr) map[string]bool {
	out := map[string]bool{}
	sqlparse.WalkColumns(e, func(c *sqlparse.ColumnRef) {
		if c.Table != "" {
			out[strings.ToLower(c.Table)] = true
			return
		}
		for _, s := range b.segs {
			if _, ok := s.Schema.Lookup(c.Name); ok {
				out[s.Binding] = true
				return
			}
		}
	})
	return out
}

func subset(set map[string]bool, allowed map[string]bool) bool {
	for k := range set {
		if !allowed[k] {
			return false
		}
	}
	return true
}

// buildJoinTree assembles scans and joins with predicate pushdown: WHERE
// and ON conjuncts referencing a single table become scan filters (or
// index probes, see access.go); equality conjuncts whose two sides each
// touch exactly one table become equi-join graph edges consumed as hash
// keys; everything else attaches as a residual/Filter at the lowest join
// where all its tables are in scope. Multi-table queries are ordered
// greedily over that graph (order.go) instead of in syntax order, which
// also sets b.phys — the physical layout of the join output.
func (b *builder) buildJoinTree() (Node, error) {
	b.phys = b.layout

	// Pool WHERE and ON conjuncts and classify each by the binding set it
	// touches.
	pushed := map[string][]sqlparse.Expr{} // binding → conjuncts for its access path
	var edges []joinEdge
	var pending []joinConjunct
	collect := func(e sqlparse.Expr, fromOn bool) {
		for _, c := range conjuncts(e) {
			refs := b.bindings(c)
			if len(refs) == 1 {
				for binding := range refs {
					pushed[binding] = append(pushed[binding], c)
				}
				continue
			}
			if eq, ok := c.(*sqlparse.BinaryExpr); ok && eq.Op == "=" && len(refs) == 2 {
				lr, rr := b.bindings(eq.Left), b.bindings(eq.Right)
				if len(lr) == 1 && len(rr) == 1 {
					la, ra := oneKey(lr), oneKey(rr)
					if la != ra {
						edges = append(edges, joinEdge{a: la, b: ra, aExpr: eq.Left, bExpr: eq.Right})
						continue
					}
				}
			}
			pending = append(pending, joinConjunct{expr: c, refs: refs, fromOn: fromOn})
		}
	}
	collect(b.stmt.Where, false)
	for ji := range b.stmt.Joins {
		collect(b.stmt.Joins[ji].On, true)
	}

	if len(b.segs) == 1 {
		node := Node(b.accessPath(0, pushed[b.segs[0].Binding]))
		// Conjuncts referencing no column at all (constant predicates)
		// stay above the scan.
		var rest []sqlparse.Expr
		for _, p := range pending {
			rest = append(rest, p.expr)
		}
		if pred := conjoin(rest); pred != nil {
			node = &Filter{Input: node, Pred: pred, Layout: b.layout}
		}
		return node, nil
	}

	node, phys := b.greedyJoin(pushed, edges, pending)
	b.phys = phys
	return node, nil
}

// oneKey returns the single key of a one-element set.
func oneKey(set map[string]bool) string {
	for k := range set {
		return k
	}
	return ""
}

// outputName derives the display name of a select item (mirrors the
// pre-planner engine's naming).
func outputName(item sqlparse.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if item.Agg != sqlparse.AggNone {
		arg := "*"
		if item.Expr != nil {
			arg = item.Expr.String()
		}
		return strings.ToLower(string(item.Agg)) + "(" + arg + ")"
	}
	if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
		return ref.Name
	}
	return item.Expr.String()
}

// finishPlain assembles the non-grouped pipeline:
// scan/join → [sort|topN] → project → [distinct] → [limit].
func (b *builder) finishPlain(node Node, orderBy []sqlparse.OrderKey) (*SelectPlan, error) {
	s := b.stmt

	// Expand the select list (stars become one column ref per layout
	// column, qualified by their segment binding).
	var names []string
	var exprs []sqlparse.Expr
	for _, item := range s.Items {
		if item.Star {
			for _, seg := range b.layout.Segs {
				for i := 0; i < seg.Schema.Len(); i++ {
					col := seg.Schema.Column(i)
					names = append(names, col.Name)
					exprs = append(exprs, &sqlparse.ColumnRef{Table: seg.Binding, Name: col.Name})
				}
			}
			continue
		}
		if item.Agg != sqlparse.AggNone {
			return nil, fmt.Errorf("engine: internal: aggregate item in non-grouped plan")
		}
		names = append(names, outputName(item))
		exprs = append(exprs, item.Expr)
	}

	// ORDER BY evaluates against base rows (pre-projection), so it sits
	// below Project. An ordered-index access path already emitting rows in
	// key order satisfies the ORDER BY by itself (tryIndexOrder), reducing
	// TopN to a plain Limit. Otherwise ORDER BY + LIMIT without DISTINCT
	// collapses into a TopN heap; LIMIT under DISTINCT applies to
	// deduplicated output and stays above it.
	ordered := false
	if len(orderBy) > 0 {
		node, ordered = b.tryIndexOrder(node, orderBy, s.Limit, s.Distinct)
	}
	if len(orderBy) > 0 && !ordered {
		if !s.Distinct && s.Limit >= 0 {
			node = &TopN{Input: node, Keys: orderBy, N: s.Limit, Layout: b.phys}
		} else {
			node = &Sort{Input: node, Keys: orderBy, Layout: b.phys}
		}
	} else if !s.Distinct && s.Limit >= 0 {
		node = &Limit{Input: node, N: s.Limit}
	}
	// Index-only rewrite: when the access path is a residual-free index
	// probe and the projection reads nothing but the index's key columns,
	// serve the query from index keys alone — the Project above resolves
	// against a pseudo-layout shaped like the key tuple.
	projLayout := b.phys
	if len(b.segs) == 1 {
		if n2, lay, ok := b.tryIndexOnly(node, exprs); ok {
			node, projLayout = n2, lay
		}
	}
	node = &Project{Input: node, Names: names, Exprs: exprs, Layout: projLayout}
	if s.Distinct {
		node = &Distinct{Input: node}
		if s.Limit >= 0 {
			node = &Limit{Input: node, N: s.Limit}
		}
	}
	return &SelectPlan{Root: node, Columns: names}, nil
}

// finishGrouped assembles the aggregate pipeline:
// scan/join → hashAggregate → [sort|topN] → [limit], with ORDER BY and
// HAVING resolving against the output columns.
func (b *builder) finishGrouped(node Node, orderBy []sqlparse.OrderKey) (*SelectPlan, error) {
	s := b.stmt
	groupTexts := map[string]bool{}
	for _, g := range s.GroupBy {
		groupTexts[g.String()] = true
	}
	names := make([]string, len(s.Items))
	for k, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates/GROUP BY")
		}
		if item.Agg == sqlparse.AggNone && !groupTexts[item.Expr.String()] {
			return nil, fmt.Errorf("engine: %s must appear in GROUP BY or an aggregate", item.Expr.String())
		}
		names[k] = outputName(item)
	}

	node = &Aggregate{
		Input:  node,
		Layout: b.phys,
		Items:  s.Items, GroupBy: s.GroupBy, Having: s.Having,
		Names: names,
	}
	if len(orderBy) > 0 {
		if s.Limit >= 0 {
			node = &TopN{Input: node, Keys: orderBy, N: s.Limit, ByOutput: names}
		} else {
			node = &Sort{Input: node, Keys: orderBy, ByOutput: names}
		}
	} else if s.Limit >= 0 {
		node = &Limit{Input: node, N: s.Limit}
	}
	return &SelectPlan{Root: node, Columns: names}, nil
}
