package plan

import (
	"math"
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Greedy bottom-up join ordering (see DESIGN.md §14).
//
// The database keeps no statistics beyond what storage maintains anyway —
// table row counts and index Entries() — so the planner orders N-way
// joins with a greedy heuristic over the equi-join graph instead of
// exhaustive enumeration: WHERE and ON conjuncts are pooled, equality
// conjuncts whose two sides each touch exactly one (distinct) table
// become graph edges, and components are merged smallest-estimated-output
// first, with the smaller side of every merge becoming the hash-join
// build input. Components with no connecting edge are only ever merged as
// a last resort (cross-join demotion). Ties break toward SQL syntax
// order, so queries the heuristic cannot distinguish keep their
// historical left-deep shape (and their EXPLAIN fingerprints).

// joinConjunct is a WHERE/ON conjunct that references zero or ≥2 tables
// and is not usable as a hash key: it attaches to the first join whose
// output covers all its references — ON-sourced ones as the join's
// residual, WHERE-sourced ones as a Filter above it.
type joinConjunct struct {
	expr   sqlparse.Expr
	refs   map[string]bool
	fromOn bool
	placed bool
}

// joinEdge is an equality conjunct `exprA = exprB` with each side bound
// to exactly one table — an edge of the equi-join graph.
type joinEdge struct {
	a, b         string // bindings of the two sides
	aExpr, bExpr sqlparse.Expr
	used         bool
}

// joinComponent is a connected sub-plan under construction.
type joinComponent struct {
	node     Node
	bindings map[string]bool
	segs     []int // segment indices in physical (probe-major) order
	est      float64
	minSyn   int // smallest syntax index inside, for deterministic ties
}

// estimateAccess is the no-ANALYZE cardinality guess for an access path:
// the signals storage maintains anyway (NumRows, index Entries) scaled by
// fixed selectivity fractions — 1/3 per pushed filter or range probe,
// 1/10 for an indexed equality. Floored at 1 so empty tables tie (and the
// tie-break keeps syntax order) instead of producing degenerate zeros.
func estimateAccess(n Node) float64 {
	switch t := n.(type) {
	case *Scan:
		rows := float64(t.Table.NumRows())
		if t.Filter != nil {
			rows /= 3
		}
		return math.Max(1, rows)
	case *IndexScan:
		return math.Max(1, float64(indexEntries(t.Table, t.Index))/10)
	case *IndexRange:
		entries := float64(indexEntries(t.Table, t.Index))
		if t.Lo != nil || t.Hi != nil {
			entries /= 3
		}
		return math.Max(1, entries)
	default:
		return 1
	}
}

// indexEntries returns the named index's entry count (0 if detached
// since planning began — the estimate only needs to be roughly right).
func indexEntries(t *storage.Table, name string) int {
	for _, m := range t.IndexMetas() {
		if strings.EqualFold(m.Name, name) {
			return m.Entries
		}
	}
	return 0
}

// greedyJoin orders the ≥2-table join greedily and returns the root node
// plus the physical layout of its output rows (segments in probe-major
// order, which can differ from syntax order).
func (b *builder) greedyJoin(pushed map[string][]sqlparse.Expr, edges []joinEdge, pending []joinConjunct) (Node, *Layout) {
	comps := make([]*joinComponent, len(b.segs))
	for i, seg := range b.segs {
		node := b.accessPath(i, pushed[seg.Binding])
		comps[i] = &joinComponent{
			node:     node,
			bindings: map[string]bool{seg.Binding: true},
			segs:     []int{i},
			est:      estimateAccess(node),
			minSyn:   i,
		}
	}

	connected := func(x, y *joinComponent) bool {
		for _, e := range edges {
			if e.used {
				continue
			}
			if (x.bindings[e.a] && y.bindings[e.b]) || (x.bindings[e.b] && y.bindings[e.a]) {
				return true
			}
		}
		return false
	}

	for len(comps) > 1 {
		// Pick the cheapest merge: equi-connected pairs produce
		// max(estL, estR) rows under the FK-ish uniform assumption, cross
		// joins produce the product — and are only considered when no
		// connected pair remains at all (cross-join demotion). comps stays
		// ordered by minSyn, so the first minimal pair is the
		// syntax-earliest one.
		bi, bj, bestEst, haveEdge := -1, -1, math.Inf(1), false
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				conn := connected(comps[i], comps[j])
				if haveEdge && !conn {
					continue
				}
				var est float64
				if conn {
					est = math.Max(comps[i].est, comps[j].est)
				} else {
					est = comps[i].est * comps[j].est
				}
				if (conn && !haveEdge) || est < bestEst {
					bi, bj, bestEst, haveEdge = i, j, est, conn
				}
			}
		}

		probe, build := comps[bi], comps[bj]
		// The smaller estimated side becomes the build input (drained into
		// the hash table); ties keep the syntax-later component as build,
		// reproducing the historical left-deep shape.
		if probe.est < build.est {
			probe, build = build, probe
		}

		// Consume every edge crossing the pair as a key pair, oriented
		// probe-side first (LeftKeys evaluate against probe rows).
		var leftKeys, rightKeys []sqlparse.Expr
		for k := range edges {
			e := &edges[k]
			if e.used {
				continue
			}
			switch {
			case probe.bindings[e.a] && build.bindings[e.b]:
				leftKeys, rightKeys = append(leftKeys, e.aExpr), append(rightKeys, e.bExpr)
				e.used = true
			case probe.bindings[e.b] && build.bindings[e.a]:
				leftKeys, rightKeys = append(leftKeys, e.bExpr), append(rightKeys, e.aExpr)
				e.used = true
			}
		}

		merged := &joinComponent{
			bindings: map[string]bool{},
			segs:     append(append([]int{}, probe.segs...), build.segs...),
			est:      bestEst,
			minSyn:   min(probe.minSyn, build.minSyn),
		}
		for bd := range probe.bindings {
			merged.bindings[bd] = true
		}
		for bd := range build.bindings {
			merged.bindings[bd] = true
		}

		// Attach every pending conjunct whose references are now all in
		// scope: ON conjuncts as the join residual, WHERE conjuncts as a
		// Filter above it. Each shrinks the estimate by the fixed 1/3.
		var onRes, whereRes []sqlparse.Expr
		for k := range pending {
			p := &pending[k]
			if p.placed || !subset(p.refs, merged.bindings) {
				continue
			}
			p.placed = true
			if p.fromOn {
				onRes = append(onRes, p.expr)
			} else {
				whereRes = append(whereRes, p.expr)
			}
			merged.est = math.Max(1, merged.est/3)
		}

		outLayout := b.layoutFor(merged.segs)
		var node Node = &HashJoin{
			Left: probe.node, Right: build.node,
			LeftKeys: leftKeys, RightKeys: rightKeys,
			Residual:    conjoin(onRes),
			LeftLayout:  b.layoutFor(probe.segs),
			RightLayout: b.layoutFor(build.segs),
			Layout:      outLayout,
		}
		if pred := conjoin(whereRes); pred != nil {
			node = &Filter{Input: node, Pred: pred, Layout: outLayout}
		}
		merged.node = node

		comps[bi] = merged
		comps = append(comps[:bj], comps[bj+1:]...)
	}

	return comps[0].node, b.layoutFor(comps[0].segs)
}

// layoutFor builds the layout of a row composed of the given segments, in
// order.
func (b *builder) layoutFor(idxs []int) *Layout {
	segs := make([]Segment, len(idxs))
	for i, si := range idxs {
		segs[i] = b.segs[si]
	}
	return NewLayout(segs...)
}
