package plan

// Parallelize is the physical-parallelism pass (see DESIGN.md §14): it
// walks a built plan and marks the pieces the executor can run
// morsel-parallel at the given degree of parallelism.
//
//   - A Filter*/Project* chain over a Scan or IndexRange leaf becomes a
//     Gather exchange: the leaf is split into row-range (or row-ID-chunk)
//     morsels, the chain runs morsel-local on dop workers, and Gather
//     re-emits rows in morsel order — the serial row sequence.
//   - A HashJoin whose build and/or probe child is such a chain gets
//     Dop set: the build table is filled by parallel workers (entries
//     carry sequence numbers so probing stays deterministic) and the
//     probe side streams through an ordered gather.
//   - An Aggregate over such a chain gets Dop set: workers fold partial
//     groups per morsel and a final merge combines them in first-seen
//     order.
//
// Leaves estimated below MinParallelRows stay serial: tiny inputs gain
// nothing from fan-out, and keeping their plans byte-identical keeps
// result-cache fingerprints and EXPLAIN output stable for small tables.
// IndexScan point probes are never split — they select a handful of rows
// by construction.
//
// dop <= 1 is a no-op: the plan keeps today's fully serial shape.

// MinParallelRows is the minimum estimated leaf cardinality before a
// scan/probe is split into morsels. A variable, not a constant, so tests
// can lower it to exercise parallel paths on small fixtures.
var MinParallelRows = 4096

// Parallelize rewrites p in place for intra-query parallelism at degree
// dop.
func Parallelize(p *SelectPlan, dop int) {
	if dop <= 1 {
		return
	}
	p.Root = parallelize(p.Root, dop)
}

func parallelize(n Node, dop int) Node {
	switch t := n.(type) {
	case *Scan, *IndexRange, *Filter, *Project:
		if markChain(n, dop) {
			return &Gather{Input: n, Dop: dop}
		}
		switch c := n.(type) {
		case *Filter:
			c.Input = parallelize(c.Input, dop)
		case *Project:
			c.Input = parallelize(c.Input, dop)
		}
		return n
	case *HashJoin:
		if markChain(t.Right, dop) {
			t.Dop = dop
		} else {
			t.Right = parallelize(t.Right, dop)
		}
		if markChain(t.Left, dop) {
			t.Dop = dop
		} else {
			t.Left = parallelize(t.Left, dop)
		}
		return t
	case *Aggregate:
		if markChain(t.Input, dop) {
			t.Dop = dop
		} else {
			t.Input = parallelize(t.Input, dop)
		}
		return t
	case *Sort:
		t.Input = parallelize(t.Input, dop)
		return t
	case *TopN:
		t.Input = parallelize(t.Input, dop)
		return t
	case *Distinct:
		t.Input = parallelize(t.Input, dop)
		return t
	case *Limit:
		t.Input = parallelize(t.Input, dop)
		return t
	default:
		return n
	}
}

// ChainLeaf returns the partitionable leaf (Scan or IndexRange) under a
// chain of Filter/Project nodes, or nil when the subtree is not such a
// chain. Exported for the executor, which lowers marked chains into
// per-morsel iterator stacks.
func ChainLeaf(n Node) Node {
	switch t := n.(type) {
	case *Scan:
		return t
	case *IndexRange:
		return t
	case *Filter:
		return ChainLeaf(t.Input)
	case *Project:
		return ChainLeaf(t.Input)
	default:
		return nil
	}
}

// markChain marks the chain's leaf with dop when the subtree is a
// partitionable chain over a big-enough leaf, reporting whether it did.
func markChain(n Node, dop int) bool {
	switch leaf := ChainLeaf(n).(type) {
	case *Scan:
		if leaf.Table.NumRows() < MinParallelRows {
			return false
		}
		leaf.Dop = dop
		return true
	case *IndexRange:
		if indexEntries(leaf.Table, leaf.Index) < MinParallelRows {
			return false
		}
		leaf.Dop = dop
		return true
	default:
		return false
	}
}
