// Package plan lowers parsed SELECT statements into a logical plan tree.
//
// The planner is the engine's front half: it resolves tables and aliases,
// validates every column reference (so a missing expandable column is
// detected *before* any row work — the hook query-driven schema expansion
// relies on), rewrites ORDER BY aliases, splits WHERE into conjuncts and
// pushes single-table predicates below joins into the scans, and extracts
// equi-join keys from ON conditions. The resulting tree is executed by
// the volcano-style iterators in internal/engine/exec.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// MissingColumnError reports that a query referenced a column that the
// table's schema does not (yet) contain. internal/core catches it and, if
// the column is registered as expandable, routes the query to the crowd
// instead of failing it.
type MissingColumnError struct {
	Table  string
	Column string
	// Candidates lists every other table in scope that also lacks the
	// column. It is set for unqualified references in multi-table
	// queries, where the planner cannot know which table the user (or an
	// expandable registration) meant — core tries each candidate's
	// registry before giving up.
	Candidates []string
}

func (e *MissingColumnError) Error() string {
	return fmt.Sprintf("engine: table %q has no column %q", e.Table, e.Column)
}

// Segment is one base table's slice of an executor row.
type Segment struct {
	Binding string // resolution name: alias if given, else table name (lower)
	Table   string // real table name, for error messages and expansion
	Schema  *storage.Schema
	Start   int // offset of this segment's first column in the combined row
}

// Layout maps column references onto positions in an executor row, which
// is the concatenation of one segment per joined table.
type Layout struct {
	Segs  []Segment
	Width int
}

// NewLayout builds a layout from segments, assigning offsets.
func NewLayout(segs ...Segment) *Layout {
	l := &Layout{}
	for _, s := range segs {
		s.Start = l.Width
		l.Width += s.Schema.Len()
		l.Segs = append(l.Segs, s)
	}
	return l
}

// Resolve returns the combined-row index of table.name (table may be
// empty for an unqualified reference). Unqualified names present in more
// than one segment are ambiguous; names found nowhere yield a
// *MissingColumnError attributed to the primary table, with the other
// tables in scope listed as candidates (an expandable registration on
// any of them can still trigger implicit expansion).
func (l *Layout) Resolve(table, name string) (int, error) {
	if table != "" {
		key := strings.ToLower(table)
		for _, s := range l.Segs {
			if s.Binding == key {
				if idx, ok := s.Schema.Lookup(name); ok {
					return s.Start + idx, nil
				}
				return 0, &MissingColumnError{Table: s.Table, Column: name}
			}
		}
		return 0, fmt.Errorf("engine: unknown table or alias %q in reference %s.%s", table, table, name)
	}
	found, hits := -1, 0
	for _, s := range l.Segs {
		if idx, ok := s.Schema.Lookup(name); ok {
			found = s.Start + idx
			hits++
		}
	}
	switch hits {
	case 1:
		return found, nil
	case 0:
		var candidates []string
		for _, s := range l.Segs[1:] {
			candidates = append(candidates, s.Table)
		}
		return 0, &MissingColumnError{Table: l.Segs[0].Table, Column: name, Candidates: candidates}
	default:
		return 0, fmt.Errorf("engine: column reference %q is ambiguous (qualify it with a table name)", name)
	}
}

// ---------- plan nodes ----------

// Node is one operator of a logical plan tree.
type Node interface {
	node()
	// Describe renders the operator's own line of EXPLAIN output.
	Describe() string
}

// Scan reads one table through the storage cursor, evaluating the
// pushed-down Filter during batch refill so non-matching rows are never
// copied out of the table.
type Scan struct {
	Table   *storage.Table
	Name    string // table name
	Binding string
	Filter  sqlparse.Expr // nil when nothing was pushed down
	Layout  *Layout       // single-segment layout of this scan's rows
	// Dop > 1 marks the scan as split into row-range morsels read by that
	// many workers (set by Parallelize; the executor partitions by
	// disjoint row ranges, so batched cursors need no extra coordination).
	Dop int
}

// IndexScan answers equality predicates on an index's key columns with a
// point probe: the index yields the matching row IDs in the same critical
// section that pins the table snapshot, and only those rows are ever
// copied out. Composite indexes require equality literals on every key
// column (a prefix cannot probe). Residual carries the remaining
// pushed-down conjuncts, evaluated during batch refill.
type IndexScan struct {
	Table    *storage.Table
	Name     string // table name
	Binding  string
	Index    string              // index name
	Column   string              // first key column (= Cols[0])
	Cols     []string            // full key columns of the chosen index
	Key      *sqlparse.Literal   // first key literal (= Keys[0])
	Keys     []*sqlparse.Literal // one equality literal per key column
	Residual sqlparse.Expr       // nil when the equalities were the whole filter
	Layout   *Layout
}

// IndexRange answers range conjuncts on an ordered-indexed column with a
// bound probe. Rows come back in index order — ascending by key, ties in
// table order — which is exactly a stable ORDER BY on the key, letting
// the planner elide a Sort/TopN above it (see finishPlain). Desc flips
// the probe to reverse index order, serving ORDER BY ... DESC the same
// way. Only single-column ordered indexes are planned here: a composite
// index omits rows with a NULL in any key column, which a bound on the
// first column alone does not exclude.
type IndexRange struct {
	Table   *storage.Table
	Name    string
	Binding string
	Index   string
	Column  string
	// Lo/Hi are the range bounds; nil means open on that side (a fully
	// open probe is an index-ordered scan of the whole table).
	Lo, Hi       *sqlparse.Literal
	LoInc, HiInc bool
	Desc         bool
	Residual     sqlparse.Expr
	Layout       *Layout
	// Dop > 1 marks the probe as split into morsels over disjoint chunks
	// of the resolved row-ID list (set by Parallelize).
	Dop int
}

// IndexOnlyScan answers a query entirely from an index: every projected
// column is an index key column and no residual predicate remains, so the
// executor reads key tuples straight off the index and never materializes
// table rows. Point probes emit the probe literals themselves; range
// probes enumerate keys through storage.KeyRanger (which ordered indexes
// implement). The node emits rows shaped like Cols, described by Layout —
// a single pseudo-segment the Project above resolves against unchanged.
type IndexOnlyScan struct {
	Table   *storage.Table
	Name    string
	Binding string
	Index   string
	Cols    []string // index key columns, in key order = emitted row shape
	// Keys is the point form (one literal per key column); when nil the
	// probe is the Lo/Hi range on the first key column.
	Keys         []*sqlparse.Literal
	Lo, Hi       *sqlparse.Literal
	LoInc, HiInc bool
	Desc         bool
	Layout       *Layout
}

// Filter drops rows whose predicate is not TRUE (three-valued logic).
type Filter struct {
	Input  Node
	Pred   sqlparse.Expr
	Layout *Layout
}

// HashJoin is an inner equi-join: the right input is built into a hash
// table on RightKeys, the left input probes with LeftKeys, and Residual
// (non-equi ON conjuncts) filters the combined rows. With no keys it
// degenerates into a filtered cross join.
type HashJoin struct {
	Left, Right                     Node
	LeftKeys, RightKeys             []sqlparse.Expr
	Residual                        sqlparse.Expr
	LeftLayout, RightLayout, Layout *Layout
	// Dop > 1 runs the build and/or probe phase morsel-parallel over
	// whichever child is a partitionable chain (set by Parallelize).
	Dop int
}

// Project evaluates the select list into fresh output rows.
type Project struct {
	Input  Node
	Names  []string
	Exprs  []sqlparse.Expr
	Layout *Layout
}

// Aggregate implements GROUP BY / aggregate queries: it hashes input rows
// by the group keys, folds aggregate states, applies HAVING against the
// output columns, and emits one row per surviving group in first-seen
// order.
type Aggregate struct {
	Input   Node
	Layout  *Layout // input row layout
	Items   []sqlparse.SelectItem
	GroupBy []sqlparse.Expr
	Having  sqlparse.Expr
	Names   []string // output column names
	// Dop > 1 folds per-worker partial aggregates over the input morsels
	// and merges them (set by Parallelize).
	Dop int
}

// Sort fully sorts its input. Exactly one of Layout (keys evaluate
// against base rows) or ByOutput (keys resolve against output column
// names, the grouped path) is set.
type Sort struct {
	Input    Node
	Keys     []sqlparse.OrderKey
	Layout   *Layout
	ByOutput []string
}

// TopN keeps the N smallest rows under the sort keys using a bounded
// heap — ORDER BY + LIMIT without sorting (or even retaining) the full
// input. Tie-breaking by input order reproduces a stable full sort
// followed by truncation.
type TopN struct {
	Input    Node
	Keys     []sqlparse.OrderKey
	N        int64
	Layout   *Layout
	ByOutput []string
}

// Gather is the exchange operator: it runs its input — a Filter/Project
// chain over a morsel-split Scan or IndexRange leaf — on Dop workers,
// each worker consuming whole morsels, and re-emits the rows in morsel
// order, so the output sequence is identical to a serial execution of the
// same chain.
type Gather struct {
	Input Node
	Dop   int
}

// Distinct drops duplicate rows (kind-tagged equality, so 1 and '1' stay
// distinct).
type Distinct struct{ Input Node }

// Limit passes through at most N rows.
type Limit struct {
	Input Node
	N     int64
}

func (*Scan) node()          {}
func (*IndexScan) node()     {}
func (*IndexRange) node()    {}
func (*IndexOnlyScan) node() {}
func (*Filter) node()        {}
func (*HashJoin) node()      {}
func (*Project) node()       {}
func (*Aggregate) node()     {}
func (*Sort) node()          {}
func (*TopN) node()          {}
func (*Gather) node()        {}
func (*Distinct) node()      {}
func (*Limit) node()         {}

// dopSuffix renders the " [dop=N]" EXPLAIN annotation of a parallelized
// operator (empty for the serial default).
func dopSuffix(dop int) string {
	if dop <= 1 {
		return ""
	}
	return fmt.Sprintf(" [dop=%d]", dop)
}

func (s *Scan) Describe() string {
	b := s.Name
	if s.Binding != strings.ToLower(s.Name) {
		b += " " + s.Binding
	}
	if s.Filter != nil {
		return fmt.Sprintf("Scan(%s, filter=%s)", b, s.Filter.String()) + dopSuffix(s.Dop)
	}
	return fmt.Sprintf("Scan(%s)", b) + dopSuffix(s.Dop)
}

// eqKeyList renders "a=1 AND b=2" for a point probe's key columns. The
// single-column form matches the historical EXPLAIN output byte for byte,
// keeping result-cache fingerprints of existing plans stable.
func eqKeyList(cols []string, keys []*sqlparse.Literal) string {
	eqs := make([]string, len(cols))
	for i, col := range cols {
		eqs[i] = fmt.Sprintf("%s=%s", col, keys[i].String())
	}
	return strings.Join(eqs, " AND ")
}

func (s *IndexScan) Describe() string {
	cols, keys := s.Cols, s.Keys
	if len(cols) == 0 {
		cols, keys = []string{s.Column}, []*sqlparse.Literal{s.Key}
	}
	d := fmt.Sprintf("IndexScan(%s, %s)", s.Index, eqKeyList(cols, keys))
	if s.Residual != nil {
		d += fmt.Sprintf(" filter=%s", s.Residual.String())
	}
	return d
}

// boundString renders a range probe's bound window for EXPLAIN.
func boundString(col string, lo, hi *sqlparse.Literal, loInc, hiInc, desc bool) string {
	bound := col
	switch {
	case lo != nil && hi != nil:
		bound = fmt.Sprintf("%s..%s", lo.String(), hi.String())
	case lo != nil:
		op := ">"
		if loInc {
			op = ">="
		}
		bound = fmt.Sprintf("%s %s %s", col, op, lo.String())
	case hi != nil:
		op := "<"
		if hiInc {
			op = "<="
		}
		bound = fmt.Sprintf("%s %s %s", col, op, hi.String())
	}
	if desc {
		bound += " desc"
	}
	return bound
}

func (s *IndexRange) Describe() string {
	d := fmt.Sprintf("IndexRange(%s, %s)", s.Index, boundString(s.Column, s.Lo, s.Hi, s.LoInc, s.HiInc, s.Desc))
	if s.Residual != nil {
		d += fmt.Sprintf(" filter=%s", s.Residual.String())
	}
	return d + dopSuffix(s.Dop)
}

func (s *IndexOnlyScan) Describe() string {
	if s.Keys != nil {
		return fmt.Sprintf("IndexOnlyScan(%s, %s)", s.Index, eqKeyList(s.Cols, s.Keys))
	}
	return fmt.Sprintf("IndexOnlyScan(%s, %s)", s.Index, boundString(s.Cols[0], s.Lo, s.Hi, s.LoInc, s.HiInc, s.Desc))
}

func (f *Filter) Describe() string { return fmt.Sprintf("Filter(%s)", f.Pred.String()) }

func (j *HashJoin) Describe() string {
	if len(j.LeftKeys) == 0 {
		if j.Residual != nil {
			return fmt.Sprintf("NestedJoin(on=%s)", j.Residual.String()) + dopSuffix(j.Dop)
		}
		return "CrossJoin" + dopSuffix(j.Dop)
	}
	var keys []string
	for i := range j.LeftKeys {
		keys = append(keys, j.LeftKeys[i].String()+" = "+j.RightKeys[i].String())
	}
	d := fmt.Sprintf("HashJoin(%s)", strings.Join(keys, " AND "))
	if j.Residual != nil {
		d += fmt.Sprintf(" residual=%s", j.Residual.String())
	}
	return d + dopSuffix(j.Dop)
}

func (p *Project) Describe() string {
	return fmt.Sprintf("Project(%s)", strings.Join(p.Names, ", "))
}

func (a *Aggregate) Describe() string {
	if len(a.GroupBy) == 0 {
		return fmt.Sprintf("HashAggregate(%s)", strings.Join(a.Names, ", ")) + dopSuffix(a.Dop)
	}
	var keys []string
	for _, g := range a.GroupBy {
		keys = append(keys, g.String())
	}
	return fmt.Sprintf("HashAggregate(by=%s → %s)", strings.Join(keys, ", "), strings.Join(a.Names, ", ")) + dopSuffix(a.Dop)
}

func orderKeyList(keys []sqlparse.OrderKey) string {
	var out []string
	for _, k := range keys {
		s := k.Expr.String()
		if k.Desc {
			s += " DESC"
		}
		out = append(out, s)
	}
	return strings.Join(out, ", ")
}

func (s *Sort) Describe() string { return fmt.Sprintf("Sort(%s)", orderKeyList(s.Keys)) }
func (t *TopN) Describe() string {
	return fmt.Sprintf("TopN(n=%d, %s)", t.N, orderKeyList(t.Keys))
}
func (g *Gather) Describe() string { return fmt.Sprintf("Gather(dop=%d)", g.Dop) }
func (*Distinct) Describe() string { return "Distinct" }
func (l *Limit) Describe() string  { return fmt.Sprintf("Limit(%d)", l.N) }

// Children returns a node's inputs in display order.
func Children(n Node) []Node {
	switch t := n.(type) {
	case *Scan:
		return nil
	case *IndexScan:
		return nil
	case *IndexRange:
		return nil
	case *IndexOnlyScan:
		return nil
	case *Filter:
		return []Node{t.Input}
	case *HashJoin:
		return []Node{t.Left, t.Right}
	case *Project:
		return []Node{t.Input}
	case *Aggregate:
		return []Node{t.Input}
	case *Sort:
		return []Node{t.Input}
	case *TopN:
		return []Node{t.Input}
	case *Gather:
		return []Node{t.Input}
	case *Distinct:
		return []Node{t.Input}
	case *Limit:
		return []Node{t.Input}
	default:
		return nil
	}
}

// SelectPlan is a planned SELECT: the operator tree plus the output
// column names.
type SelectPlan struct {
	Root    Node
	Columns []string
}

// Explain renders the plan tree, one operator per line, children indented
// under their parent. Its output feeds Fingerprint (the result-cache key),
// so it must stay free of runtime annotations — EXPLAIN ANALYZE goes
// through ExplainWith instead.
func (p *SelectPlan) Explain() []string {
	return p.ExplainWith(nil)
}

// ExplainWith renders the plan tree like Explain, appending annot(n) to
// each node's line when annot is non-nil and returns a non-empty string.
// This is how EXPLAIN ANALYZE attaches per-operator actuals without
// perturbing the fingerprint-stable Explain output.
func (p *SelectPlan) ExplainWith(annot func(Node) string) []string {
	var lines []string
	var walk func(n Node, prefix string, childPrefix string)
	walk = func(n Node, prefix, childPrefix string) {
		line := prefix + n.Describe()
		if annot != nil {
			if a := annot(n); a != "" {
				line += a
			}
		}
		lines = append(lines, line)
		kids := Children(n)
		for i, k := range kids {
			last := i == len(kids)-1
			connector, cont := "├─ ", "│  "
			if last {
				connector, cont = "└─ ", "   "
			}
			walk(k, childPrefix+connector, childPrefix+cont)
		}
	}
	walk(p.Root, "", "")
	return lines
}

// Fingerprint is the plan's normalized identity, used as the semantic
// result-cache key. Two SQL texts that lower to the same plan — aliases
// resolved, predicates canonicalized by Expr.String, pushdowns applied,
// output columns fixed — produce the same fingerprint and therefore the
// same result against unchanged tables. Built from Explain() rather than
// the AST so every normalization the planner performs is inherited for
// free.
func (p *SelectPlan) Fingerprint() string {
	return strings.Join(p.Columns, ",") + "\n" + strings.Join(p.Explain(), "\n")
}

// Tables returns the distinct base tables the plan reads (lower-cased,
// sorted) — the cache's invalidation scope: a mutation of any of them
// must kill the cached result.
func (p *SelectPlan) Tables() []string {
	seen := map[string]bool{}
	var walk func(n Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Scan:
			seen[strings.ToLower(t.Name)] = true
		case *IndexScan:
			seen[strings.ToLower(t.Name)] = true
		case *IndexRange:
			seen[strings.ToLower(t.Name)] = true
		case *IndexOnlyScan:
			seen[strings.ToLower(t.Name)] = true
		}
		for _, k := range Children(n) {
			walk(k)
		}
	}
	walk(p.Root)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
