package plan

import (
	"errors"
	"strings"
	"testing"

	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mkTable := func(name string, cols ...storage.Column) {
		schema, err := storage.NewSchema(cols...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Create(name, schema); err != nil {
			t.Fatal(err)
		}
	}
	mkTable("movies",
		storage.Column{Name: "movie_id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText},
		storage.Column{Name: "year", Kind: storage.KindInt},
	)
	mkTable("credits",
		storage.Column{Name: "credit_id", Kind: storage.KindInt},
		storage.Column{Name: "movie", Kind: storage.KindInt},
		storage.Column{Name: "role", Kind: storage.KindText},
	)
	return cat
}

func buildPlan(t *testing.T, cat *storage.Catalog, sql string) *SelectPlan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(stmt.(*sqlparse.SelectStmt), cat)
	if err != nil {
		t.Fatalf("Build(%q): %v", sql, err)
	}
	return p
}

func explainText(p *SelectPlan) string { return strings.Join(p.Explain(), "\n") }

func TestPushdownBelowJoin(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, `SELECT m.name FROM movies m JOIN credits c ON m.movie_id = c.movie
		WHERE m.year >= 1995 AND c.role = 'director'`)
	text := explainText(p)
	for _, want := range []string{
		"HashJoin(m.movie_id = c.movie)",
		"Scan(movies m, filter=(m.year >= 1995))",
		"Scan(credits c, filter=(c.role = 'director'))",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, "Filter(") {
		t.Fatalf("single-table conjuncts must be fully pushed:\n%s", text)
	}
}

func TestCrossTablePredicateStaysResidual(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, `SELECT m.name FROM movies m JOIN credits c ON m.movie_id = c.movie
		WHERE m.year + c.credit_id > 2000`)
	text := explainText(p)
	if !strings.Contains(text, "Filter(((m.year + c.credit_id) > 2000))") {
		t.Fatalf("cross-table conjunct must stay above the join:\n%s", text)
	}
}

func TestNonEquiOnConditionBecomesResidual(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, `SELECT m.name FROM movies m JOIN credits c
		ON m.movie_id = c.movie AND m.year > c.credit_id`)
	text := explainText(p)
	if !strings.Contains(text, "HashJoin(m.movie_id = c.movie) residual=(m.year > c.credit_id)") {
		t.Fatalf("non-equi ON conjunct must become the join residual:\n%s", text)
	}
}

func TestTopNOnlyWithOrderByAndLimit(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		sql       string
		want, not string
	}{
		{`SELECT name FROM movies ORDER BY year LIMIT 10`, "TopN(n=10, year)", "Sort"},
		{`SELECT name FROM movies ORDER BY year`, "Sort(year)", "TopN"},
		{`SELECT name FROM movies LIMIT 10`, "Limit(10)", "TopN"},
		{`SELECT DISTINCT name FROM movies ORDER BY year LIMIT 10`, "Sort(year)", "TopN"},
	}
	for _, c := range cases {
		text := explainText(buildPlan(t, cat, c.sql))
		if !strings.Contains(text, c.want) {
			t.Errorf("%q: missing %q:\n%s", c.sql, c.want, text)
		}
		if strings.Contains(text, c.not) {
			t.Errorf("%q: unexpected %q:\n%s", c.sql, c.not, text)
		}
	}
}

// Satellite regression: ORDER BY must resolve select-list aliases even
// when the alias appears *inside* an expression, not just as a bare
// reference.
func TestOrderByAliasInsideExpression(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sqlparse.Parse(`SELECT name, year - 1900 age FROM movies ORDER BY age + 1 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(stmt.(*sqlparse.SelectStmt), cat)
	if err != nil {
		t.Fatalf("alias inside ORDER BY expression must plan: %v", err)
	}
	text := explainText(p)
	if !strings.Contains(text, "Sort(((year - 1900) + 1) DESC)") {
		t.Fatalf("alias not rewritten inside the expression:\n%s", text)
	}
}

// A real column of the same name shadows the alias — inside expressions
// too.
func TestOrderByAliasShadowedByRealColumn(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, `SELECT name, movie_id year FROM movies ORDER BY year + 1`)
	text := explainText(p)
	if !strings.Contains(text, "Sort((year + 1))") {
		t.Fatalf("real column must win over alias:\n%s", text)
	}
}

func TestPlanTimeMissingColumn(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		sql          string
		table, colum string
	}{
		{`SELECT humor FROM movies`, "movies", "humor"},
		{`SELECT name FROM movies WHERE humor > 1`, "movies", "humor"},
		{`SELECT name FROM movies ORDER BY humor`, "movies", "humor"},
		{`SELECT m.humor FROM movies m JOIN credits c ON m.movie_id = c.movie`, "movies", "humor"},
		{`SELECT c.humor FROM movies m JOIN credits c ON m.movie_id = c.movie`, "credits", "humor"},
		// Unqualified misses in a join are attributed to the primary
		// table (where implicit expansion would create the column).
		{`SELECT humor FROM movies m JOIN credits c ON m.movie_id = c.movie`, "movies", "humor"},
	}
	for _, c := range cases {
		stmt, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Build(stmt.(*sqlparse.SelectStmt), cat)
		var missing *MissingColumnError
		if !errors.As(err, &missing) {
			t.Fatalf("%q: err = %v, want MissingColumnError", c.sql, err)
		}
		if missing.Table != c.table || missing.Column != c.colum {
			t.Fatalf("%q: missing = %+v", c.sql, missing)
		}
	}
}

func TestAmbiguousAndUnknownReferences(t *testing.T) {
	cat := testCatalog(t)
	// movie_id is only in movies; credit_id only in credits — but both
	// tables lack "both", and an identically named column in both tables
	// is ambiguous when unqualified.
	schema, _ := storage.NewSchema(storage.Column{Name: "name", Kind: storage.KindText})
	if _, err := cat.Create("other", schema); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`SELECT name FROM movies m JOIN other o ON m.movie_id = 1`,   // ambiguous name
		`SELECT x.name FROM movies m JOIN other o ON m.movie_id = 1`, // unknown alias x
		`SELECT name FROM movies m JOIN movies x ON 1 = 1 WHERE nosuch.y = 1`,
	} {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Build(stmt.(*sqlparse.SelectStmt), cat); err == nil {
			t.Errorf("%q must fail to plan", sql)
		}
	}
	// Duplicate binding without alias is rejected.
	stmt, _ := sqlparse.Parse(`SELECT * FROM movies JOIN movies ON 1 = 1`)
	if _, err := Build(stmt.(*sqlparse.SelectStmt), cat); err == nil ||
		!strings.Contains(err.Error(), "duplicate table binding") {
		t.Fatalf("self-join without alias: err = %v", err)
	}
}

func TestGroupedPlanShape(t *testing.T) {
	cat := testCatalog(t)
	p := buildPlan(t, cat, `SELECT year, COUNT(*) n FROM movies WHERE year > 1950
		GROUP BY year HAVING n > 1 ORDER BY n DESC LIMIT 5`)
	text := explainText(p)
	for _, want := range []string{
		"TopN(n=5, n DESC)",
		"HashAggregate(by=year → year, n)",
		"Scan(movies, filter=(year > 1950))",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	if p.Columns[0] != "year" || p.Columns[1] != "n" {
		t.Fatalf("columns = %v", p.Columns)
	}
}
