package engine

import (
	"fmt"

	"crowddb/internal/engine/exec"
	"crowddb/internal/engine/plan"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// execSelect plans and executes a SELECT, materializing the full result.
// Column validation happens at plan time, so schema expansion triggers
// before any row work (and regardless of row contents).
func (e *Engine) execSelect(s *sqlparse.SelectStmt) (*Result, error) {
	p, err := e.PlanSelect(s)
	if err != nil {
		return nil, err
	}
	return ExecPlan(p)
}

// PlanSelect lowers a SELECT into its logical plan without executing it.
// The split from ExecPlan exists for the result cache in internal/core:
// the plan's fingerprint (plan.SelectPlan.Fingerprint) is the cache key,
// so core plans first, consults the cache, and only executes on a miss.
// The parallelism pass runs here so the fingerprint covers the physical
// shape (a dop-8 plan and a serial plan produce identical rows, but
// EXPLAIN must render what will actually run).
func (e *Engine) PlanSelect(s *sqlparse.SelectStmt) (*plan.SelectPlan, error) {
	p, err := plan.Build(s, e.catalog)
	if err != nil {
		return nil, err
	}
	plan.Parallelize(p, e.dop())
	return p, nil
}

// ExecPlan runs a previously built SELECT plan and materializes the
// result.
func ExecPlan(p *plan.SelectPlan) (*Result, error) {
	it, err := exec.Build(p.Root)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(it)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: p.Columns, Rows: rows, Affected: len(rows)}, nil
}

// ExecPlanTraced runs a SELECT plan with per-operator instrumentation on
// and returns the result alongside the populated trace. The trace slows
// every Next call, so this path is reserved for EXPLAIN ANALYZE,
// ?trace=1 requests, and the slow-query log.
func ExecPlanTraced(p *plan.SelectPlan) (*Result, *exec.Trace, error) {
	tr := exec.NewTrace()
	it, err := exec.BuildTraced(p.Root, tr)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Drain(it)
	if err != nil {
		return nil, nil, err
	}
	return &Result{Columns: p.Columns, Rows: rows, Affected: len(rows)}, tr, nil
}

// execExplain handles EXPLAIN and EXPLAIN ANALYZE over a SELECT. Plain
// EXPLAIN plans without executing; ANALYZE executes the query with
// tracing on, discards its rows, and annotates each operator line with
// actual rows-out and wall time. Neither form ever triggers schema
// expansion — plan errors (missing columns included) surface directly.
func (e *Engine) execExplain(x *sqlparse.ExplainStmt) (*Result, error) {
	sel, ok := x.Stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT statements only, got %T", x.Stmt)
	}
	p, err := e.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	lines := p.Explain()
	if x.Analyze {
		_, tr, err := ExecPlanTraced(p)
		if err != nil {
			return nil, err
		}
		lines = p.ExplainWith(tr.Annotate)
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range lines {
		res.Rows = append(res.Rows, storage.Row{storage.Text(line)})
	}
	res.Affected = len(res.Rows)
	return res, nil
}

// StreamResult is a pull-based SELECT result: rows are produced on demand
// by the iterator tree, with the storage read lock held only per scan
// batch. Rows may alias internal buffers and are valid until the next
// call; Close must be called when done.
type StreamResult struct {
	// Columns are the output column names.
	Columns []string
	it      exec.Iterator
	done    bool
}

// Stream plans and opens a SELECT for row-at-a-time consumption.
// Blocking operators (sort, aggregation, a join's build side) still do
// their work inside this call; pure scan/filter/project/limit pipelines
// stream end to end.
func (e *Engine) Stream(s *sqlparse.SelectStmt) (*StreamResult, error) {
	p, err := e.PlanSelect(s)
	if err != nil {
		return nil, err
	}
	it, err := exec.Build(p.Root)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		_ = it.Close()
		return nil, err
	}
	return &StreamResult{Columns: p.Columns, it: it}, nil
}

// Next returns the next row, or ok=false at end of stream.
func (r *StreamResult) Next() (storage.Row, bool, error) {
	if r.done {
		return nil, false, nil
	}
	row, ok, err := r.it.Next()
	if err != nil || !ok {
		r.done = true
	}
	return row, ok, err
}

// Close releases the stream's resources (idempotent).
func (r *StreamResult) Close() error {
	if r.it == nil {
		return nil
	}
	it := r.it
	r.it, r.done = nil, true
	return it.Close()
}
