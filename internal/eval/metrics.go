// Package eval implements the evaluation metrics used throughout the
// paper's experiments: plain accuracy for the direct-crowdsourcing study
// (Table 1, Figures 3–4), the g-mean measure for the class-imbalanced
// genre studies (Tables 3, 5, 6), and precision/recall for the
// questionable-HIT-response study (Table 4).
package eval

import "math"

// Confusion is a binary-classification confusion matrix. The positive class
// is the attribute value being extracted (e.g. is_comedy = true).
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one (predicted, actual) pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of observed pairs.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the fraction of correct predictions, or 0 when empty.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Sensitivity (recall of the positive class): accuracy on items that truly
// belong to the class. Returns 0 when there are no positives.
func (c Confusion) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity: accuracy on items that truly do not belong to the class.
// Returns 0 when there are no negatives.
func (c Confusion) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return 0
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// Precision: fraction of positive predictions that are correct.
// Returns 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is a synonym for Sensitivity, named as in Table 4.
func (c Confusion) Recall() float64 { return c.Sensitivity() }

// GMean is the geometric mean of sensitivity and specificity ([20] in the
// paper). It punishes classifiers that sacrifice the minority class: the
// naive "never Horror" classifier scores 0 even at 90% raw accuracy.
func (c Confusion) GMean() float64 {
	return math.Sqrt(c.Sensitivity() * c.Specificity())
}

// F1 is the harmonic mean of precision and recall (reported alongside
// precision/recall in extended runs of Table 4).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// CompareLabels builds a confusion matrix from parallel predicted/actual
// label slices. It panics on length mismatch: a silent zip-to-shortest
// would invalidate experiment results.
func CompareLabels(predicted, actual []bool) Confusion {
	if len(predicted) != len(actual) {
		panic("eval: CompareLabels length mismatch")
	}
	var c Confusion
	for i := range predicted {
		c.Observe(predicted[i], actual[i])
	}
	return c
}

// MeanStd returns the mean and (population) standard deviation of xs.
// Experiments report means over 20 random repetitions; Table 3 additionally
// discusses the standard deviation across samples.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
