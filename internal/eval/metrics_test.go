package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestObserveCounts(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, false)  // FP
	c.Observe(false, false) // TN
	c.Observe(false, true)  // FN
	c.Observe(true, true)   // TP
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestAccuracy(t *testing.T) {
	c := Confusion{TP: 3, TN: 1, FP: 1, FN: 0}
	if got := c.Accuracy(); got != 0.8 {
		t.Fatalf("Accuracy = %v, want 0.8", got)
	}
	if got := (Confusion{}).Accuracy(); got != 0 {
		t.Fatalf("empty Accuracy = %v, want 0", got)
	}
}

func TestSensitivitySpecificity(t *testing.T) {
	c := Confusion{TP: 8, FN: 2, TN: 6, FP: 4}
	if got := c.Sensitivity(); got != 0.8 {
		t.Fatalf("Sensitivity = %v", got)
	}
	if got := c.Specificity(); got != 0.6 {
		t.Fatalf("Specificity = %v", got)
	}
	if got := c.GMean(); math.Abs(got-math.Sqrt(0.48)) > 1e-12 {
		t.Fatalf("GMean = %v", got)
	}
}

// The paper's motivating example: a classifier that labels nothing Horror
// on a 10%-horror dataset has 90% accuracy but 0 g-mean.
func TestNaiveClassifierGMeanIsZero(t *testing.T) {
	c := Confusion{TN: 900, FN: 100}
	if got := c.Accuracy(); got != 0.9 {
		t.Fatalf("Accuracy = %v, want 0.9", got)
	}
	if got := c.GMean(); got != 0 {
		t.Fatalf("GMean = %v, want 0", got)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 6, FP: 2, FN: 2, TN: 10}
	if got := c.Precision(); got != 0.75 {
		t.Fatalf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.75 {
		t.Fatalf("Recall = %v", got)
	}
	if got := c.F1(); got != 0.75 {
		t.Fatalf("F1 = %v", got)
	}
	empty := Confusion{TN: 5}
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Fatal("degenerate confusion must yield zero precision/recall/F1")
	}
}

func TestCompareLabels(t *testing.T) {
	pred := []bool{true, true, false, false}
	act := []bool{true, false, false, true}
	c := CompareLabels(pred, act)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestCompareLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	CompareLabels([]bool{true}, []bool{true, false})
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("MeanStd = %v, %v; want 5, 2", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatal("MeanStd(nil) should be 0,0")
	}
}

// Property: metrics are always within [0, 1] and g-mean lies between
// min and max of sensitivity and specificity (geometric-mean bound).
func TestMetricBoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		vals := []float64{c.Accuracy(), c.Sensitivity(), c.Specificity(), c.Precision(), c.GMean(), c.F1()}
		for _, v := range vals {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		lo := math.Min(c.Sensitivity(), c.Specificity())
		hi := math.Max(c.Sensitivity(), c.Specificity())
		return c.GMean() >= lo-1e-12 && c.GMean() <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CompareLabels observation counts add up and agree with a
// direct recount.
func TestCompareLabelsCountProperty(t *testing.T) {
	f := func(pairs []struct{ P, A bool }) bool {
		pred := make([]bool, len(pairs))
		act := make([]bool, len(pairs))
		for i, p := range pairs {
			pred[i], act[i] = p.P, p.A
		}
		c := CompareLabels(pred, act)
		if c.Total() != len(pairs) {
			return false
		}
		correct := 0
		for i := range pred {
			if pred[i] == act[i] {
				correct++
			}
		}
		return c.TP+c.TN == correct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
