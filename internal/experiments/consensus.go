package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crowddb/internal/vecmath"
)

// ConsensusResult reproduces the §4.2 user-study measurement: the Pearson
// correlation between perceptual-space distances and perceived
// dissimilarity. The paper reports r = 0.52 for the space vs the human
// consensus — comparable to the r = 0.55 an average individual user
// achieves against the same consensus.
//
// In this reproduction the "consensus" is the latent geometry the ratings
// were generated from, and simulated individual users judge dissimilarity
// with personal noise.
type ConsensusResult struct {
	Pairs int
	// SpaceVsConsensus is the space's correlation with the consensus.
	SpaceVsConsensus float64
	// UserVsConsensus is the mean correlation of individual noisy users.
	UserVsConsensus float64
}

// RunConsensus samples item pairs and correlates learned distances with
// the latent geometry plus simulated individual judgments.
func (e *Env) RunConsensus(pairs int) (*ConsensusResult, error) {
	if pairs <= 0 {
		pairs = 2000
	}
	rng := rand.New(rand.NewSource(e.Opt.Seed + 42))
	n := e.Space.NumItems()
	if n < 2 {
		return nil, fmt.Errorf("experiments: space too small")
	}
	sampled := make([][2]int, 0, pairs)
	consensus := make([]float64, 0, pairs)
	learned := make([]float64, 0, pairs)
	for k := 0; k < pairs; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		sampled = append(sampled, [2]int{i, j})
		consensus = append(consensus, vecmath.Dist(e.U.Latent.Row(i), e.U.Latent.Row(j)))
		learned = append(learned, e.Space.Distance(i, j))
	}
	res := &ConsensusResult{Pairs: len(sampled)}
	res.SpaceVsConsensus = vecmath.Pearson(learned, consensus)

	// Individual users: consensus + personal noise scaled to match the
	// paper's observed individual-vs-consensus agreement band.
	users := 25
	var sum float64
	std := vecmath.Mean(consensus) * 0.55
	for u := 0; u < users; u++ {
		judged := make([]float64, len(consensus))
		for k := range judged {
			judged[k] = consensus[k] + rng.NormFloat64()*std
		}
		sum += vecmath.Pearson(judged, consensus)
	}
	res.UserVsConsensus = sum / float64(users)
	e.logf("consensus: space r=%.3f, individual users r̄=%.3f over %d pairs",
		res.SpaceVsConsensus, res.UserVsConsensus, res.Pairs)
	return res, nil
}

// Render prints the measurement.
func (c *ConsensusResult) Render(w io.Writer) {
	fmt.Fprintf(w, "§4.2 similarity consensus (%d movie pairs)\n", c.Pairs)
	fmt.Fprintf(w, "  space distance vs consensus:      r = %.2f (paper: 0.52)\n", c.SpaceVsConsensus)
	fmt.Fprintf(w, "  individual users vs consensus:    r = %.2f (paper: 0.55)\n", c.UserVsConsensus)
}
