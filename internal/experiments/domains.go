package experiments

import (
	"fmt"
	"io"

	"crowddb/internal/dataset"
	"crowddb/internal/eval"
	"crowddb/internal/space"
)

// DomainRow is one category's small-sample g-means in a non-movie domain.
type DomainRow struct {
	Category string
	Kind     dataset.CategoryKind
	GMean    []float64 // indexed like SampleSizes
}

// DomainResult reproduces Table 5 (restaurants) or Table 6 (board games).
type DomainResult struct {
	Domain      string
	Rows        []DomainRow
	Mean        []float64
	Repetitions int
	Items       int
}

// runDomain generates the domain universe, trains its perceptual space,
// and repeats the §4.3 small-sample study over its categories.
func runDomain(cfg dataset.Config, opt Options) (*DomainResult, error) {
	opt.fillDefaults()
	u, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	scfg := space.DefaultConfig()
	scfg.Dims = opt.SpaceDims
	scfg.Epochs = opt.SpaceEpochs
	scfg.Seed = opt.Seed
	model, _, err := space.TrainEuclidean(u.Ratings, scfg)
	if err != nil {
		return nil, err
	}
	sp := space.FromModel(model)

	res := &DomainResult{
		Domain:      cfg.Name,
		Repetitions: opt.Repetitions,
		Items:       cfg.Items,
		Mean:        make([]float64, len(SampleSizes)),
	}
	counted := make([]int, len(SampleSizes))
	for _, spec := range cfg.Categories {
		cat := u.Categories[spec.Name]
		row := DomainRow{Category: spec.Name, Kind: spec.Kind}
		for si, n := range SampleSizes {
			var gs []float64
			for rep := 0; rep < opt.Repetitions; rep++ {
				seed := opt.Seed + int64(1000*si+rep)
				if g, ok := smallSampleGMean(sp, cat.Reference, n, seed); ok {
					gs = append(gs, g)
				}
			}
			if len(gs) == 0 {
				// Rare category too small for this n at this scale; report
				// NaN-free zero and skip it in the mean.
				row.GMean = append(row.GMean, 0)
				continue
			}
			m, _ := eval.MeanStd(gs)
			row.GMean = append(row.GMean, m)
			res.Mean[si] += m
			counted[si]++
		}
		res.Rows = append(res.Rows, row)
	}
	for si := range res.Mean {
		if counted[si] > 0 {
			res.Mean[si] /= float64(counted[si])
		}
	}
	return res, nil
}

// RunTable5 reproduces the restaurant domain study (Table 5).
func RunTable5(opt Options) (*DomainResult, error) {
	opt.fillDefaults()
	return runDomain(dataset.Restaurants(opt.Scale, opt.Seed+50), opt)
}

// RunTable6 reproduces the board-game domain study (Table 6).
func RunTable6(opt Options) (*DomainResult, error) {
	opt.fillDefaults()
	return runDomain(dataset.BoardGames(opt.Scale, opt.Seed+60), opt)
}

// PerceptualVsFactualMeans splits the domain's mean g-mean (at the largest
// n) by category kind — quantifying the paper's observation that "party
// game" extracts far better than "modular board".
func (d *DomainResult) PerceptualVsFactualMeans() (perceptual, factual float64) {
	var pSum, fSum float64
	var pN, fN int
	last := len(SampleSizes) - 1
	for _, row := range d.Rows {
		if len(row.GMean) <= last || row.GMean[last] == 0 {
			continue
		}
		if row.Kind == dataset.Factual {
			fSum += row.GMean[last]
			fN++
		} else {
			pSum += row.GMean[last]
			pN++
		}
	}
	if pN > 0 {
		perceptual = pSum / float64(pN)
	}
	if fN > 0 {
		factual = fSum / float64(fN)
	}
	return perceptual, factual
}

// Render prints the domain table.
func (d *DomainResult) Render(w io.Writer) {
	title := "Table 5. Results for restaurants"
	if d.Domain == "boardgames" {
		title = "Table 6. Results for board games"
	}
	fmt.Fprintf(w, "%s (g-mean; %d items, %d repetitions)\n", title, d.Items, d.Repetitions)
	fmt.Fprintf(w, "%-26s %-10s |", "Category", "kind")
	for _, n := range SampleSizes {
		fmt.Fprintf(w, "  n=%-4d", n)
	}
	fmt.Fprintln(w)
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-26s %-10s |", row.Category, row.Kind)
		for _, g := range row.GMean {
			fmt.Fprintf(w, "  %5.2f ", g)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-26s %-10s |", "Mean", "")
	for _, g := range d.Mean {
		fmt.Fprintf(w, "  %5.2f ", g)
	}
	fmt.Fprintln(w)
	p, f := d.PerceptualVsFactualMeans()
	fmt.Fprintf(w, "perceptual categories mean %.2f vs factual %.2f (n=%d)\n",
		p, f, SampleSizes[len(SampleSizes)-1])
}
