// Package experiments reproduces every table and figure of the paper's
// evaluation section (§4–§5) on the synthetic substrates of this
// repository. Each experiment returns a plain result struct plus a
// Render method that prints the same rows/series the paper reports;
// cmd/experiments drives them and EXPERIMENTS.md records paper-vs-measured
// values. See DESIGN.md for the per-experiment index.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"crowddb/internal/dataset"
	"crowddb/internal/lsi"
	"crowddb/internal/space"
)

// Options configures an experiment environment.
type Options struct {
	// Scale selects the universe size (dataset.ScaleTiny … ScalePaper).
	Scale dataset.Scale
	// Seed drives all randomness.
	Seed int64
	// SpaceDims is the perceptual space dimensionality (paper: 100).
	SpaceDims int
	// SpaceEpochs is the SGD epoch count for space training.
	SpaceEpochs int
	// MetaDims is the LSI metadata-space dimensionality (paper: 100).
	MetaDims int
	// SampleSize is the crowd-experiment movie sample (paper: 1,000).
	SampleSize int
	// Repetitions is the random-repeat count for Tables 3–6 (paper: 20).
	Repetitions int
	// Table4Repetitions overrides Repetitions for the costly Table 4 runs
	// (training on all items); 0 means max(3, Repetitions/4).
	Table4Repetitions int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultOptions returns the configuration used by cmd/experiments:
// small scale, paper hyperparameters scaled to it.
func DefaultOptions() Options {
	return Options{
		Scale:       dataset.ScaleSmall,
		Seed:        1,
		SpaceDims:   50,
		SpaceEpochs: 30,
		MetaDims:    50,
		SampleSize:  1000,
		Repetitions: 20,
	}
}

// TinyOptions returns a CI-scale configuration (seconds, for tests and
// benchmarks).
func TinyOptions() Options {
	return Options{
		Scale:       dataset.ScaleTiny,
		Seed:        1,
		SpaceDims:   16,
		SpaceEpochs: 20,
		MetaDims:    16,
		SampleSize:  250,
		Repetitions: 3,
	}
}

func (o *Options) fillDefaults() {
	if o.Scale.Items == 0 {
		o.Scale = dataset.ScaleSmall
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SpaceDims <= 0 {
		o.SpaceDims = 50
	}
	if o.SpaceEpochs <= 0 {
		o.SpaceEpochs = 30
	}
	if o.MetaDims <= 0 {
		o.MetaDims = 50
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 1000
	}
	if o.SampleSize > o.Scale.Items {
		o.SampleSize = o.Scale.Items
	}
	if o.Repetitions <= 0 {
		o.Repetitions = 20
	}
	if o.Table4Repetitions <= 0 {
		o.Table4Repetitions = o.Repetitions / 4
		if o.Table4Repetitions < 3 {
			o.Table4Repetitions = 3
		}
	}
}

// Env is a prepared experiment environment: the movie universe, its
// trained perceptual space, the LSI metadata space, and the 1,000-movie
// crowd sample shared by Experiments 1–6.
type Env struct {
	Opt   Options
	U     *dataset.Universe
	Space *space.Space
	// MetaSpace is the LSI embedding of the factual metadata.
	MetaSpace *space.Space
	// Sample is the random item subset used by the crowd experiments.
	Sample []int
	// SpaceRMSE is the factor model's final training RMSE (diagnostics).
	SpaceRMSE float64
}

func (e *Env) logf(format string, args ...interface{}) {
	if e.Opt.Log != nil {
		fmt.Fprintf(e.Opt.Log, format+"\n", args...)
	}
}

// NewEnv generates the movie universe, trains the perceptual space, and
// builds the metadata space. This is the expensive shared setup.
func NewEnv(opt Options) (*Env, error) {
	opt.fillDefaults()
	env := &Env{Opt: opt}

	start := time.Now()
	u, err := dataset.Generate(dataset.Movies(opt.Scale, opt.Seed))
	if err != nil {
		return nil, err
	}
	env.U = u
	env.logf("universe: %d movies, %d users, %d ratings (%.1fs)",
		opt.Scale.Items, opt.Scale.Users, len(u.Ratings.Ratings), time.Since(start).Seconds())

	start = time.Now()
	scfg := space.DefaultConfig()
	scfg.Dims = opt.SpaceDims
	scfg.Epochs = opt.SpaceEpochs
	scfg.Seed = opt.Seed
	model, stats, err := space.TrainEuclidean(u.Ratings, scfg)
	if err != nil {
		return nil, err
	}
	env.Space = space.FromModel(model)
	env.SpaceRMSE = stats.FinalRMSE()
	env.logf("perceptual space: d=%d, RMSE=%.4f (%.1fs)",
		opt.SpaceDims, env.SpaceRMSE, time.Since(start).Seconds())

	start = time.Now()
	corpus, err := lsi.NewCorpus(u.Documents(opt.Seed), 2)
	if err != nil {
		return nil, err
	}
	emb, err := corpus.TruncatedSVD(opt.MetaDims, 25, opt.Seed)
	if err != nil {
		return nil, err
	}
	env.MetaSpace = space.NewSpace(emb.Coords)
	env.logf("metadata space: d=%d over %d terms (%.1fs)",
		emb.Coords.Cols, corpus.VocabSize(), time.Since(start).Seconds())

	// The fixed random 1,000-movie sample of §4.1.
	rng := rand.New(rand.NewSource(opt.Seed + 1000))
	perm := rng.Perm(opt.Scale.Items)
	env.Sample = append(env.Sample, perm[:opt.SampleSize]...)
	return env, nil
}
