package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"crowddb/internal/dataset"
)

// One shared tiny environment: building it trains the perceptual space,
// which dominates test time.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(TinyOptions())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fillDefaults()
	if o.Scale.Items == 0 || o.SpaceDims == 0 || o.Repetitions == 0 || o.Table4Repetitions == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	small := Options{SampleSize: 5000, Scale: dataset.ScaleTiny}
	small.fillDefaults()
	if small.SampleSize != dataset.ScaleTiny.Items {
		t.Fatalf("sample must clamp to item count, got %d", small.SampleSize)
	}
}

func TestEnvConstruction(t *testing.T) {
	e := tinyEnv(t)
	if e.Space.NumItems() != dataset.ScaleTiny.Items {
		t.Fatalf("space items = %d", e.Space.NumItems())
	}
	if e.MetaSpace.NumItems() != dataset.ScaleTiny.Items {
		t.Fatalf("meta space items = %d", e.MetaSpace.NumItems())
	}
	if len(e.Sample) != 250 {
		t.Fatalf("sample = %d", len(e.Sample))
	}
	if e.SpaceRMSE <= 0 || e.SpaceRMSE > 1.5 {
		t.Fatalf("space RMSE = %v", e.SpaceRMSE)
	}
}

func TestTable1Shape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunCrowdExperiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 3 {
		t.Fatalf("experiments = %d", len(res.Experiments))
	}
	exp1, exp2, exp3 := res.Experiments[0], res.Experiments[1], res.Experiments[2]

	// The paper's ordering: accuracy Exp1 < Exp2 < Exp3.
	if !(exp1.PctCorrect() < exp2.PctCorrect() && exp2.PctCorrect() < exp3.PctCorrect()) {
		t.Fatalf("accuracy ordering violated: %.3f, %.3f, %.3f",
			exp1.PctCorrect(), exp2.PctCorrect(), exp3.PctCorrect())
	}
	// Bands around the paper's 59.7% / 79.4% / 93.5%.
	if exp1.PctCorrect() < 0.45 || exp1.PctCorrect() > 0.72 {
		t.Fatalf("Exp1 accuracy %.3f outside band", exp1.PctCorrect())
	}
	if exp2.PctCorrect() < 0.68 || exp2.PctCorrect() > 0.90 {
		t.Fatalf("Exp2 accuracy %.3f outside band", exp2.PctCorrect())
	}
	if exp3.PctCorrect() < 0.85 {
		t.Fatalf("Exp3 accuracy %.3f outside band", exp3.PctCorrect())
	}
	// Coverage: Exp2 classifies fewer movies than Exp1 (honest workers
	// admit ignorance); Exp3 classifies the most (lookup always answers).
	if exp2.Classified >= exp1.Classified {
		t.Fatalf("Exp2 coverage %d should undercut Exp1 %d", exp2.Classified, exp1.Classified)
	}
	if exp3.Classified <= exp2.Classified {
		t.Fatalf("Exp3 coverage %d should exceed Exp2 %d", exp3.Classified, exp2.Classified)
	}
	// Time: the lookup task is several times slower.
	if exp3.Run.DurationMinutes < 3*exp1.Run.DurationMinutes {
		t.Fatalf("Exp3 should be much slower: %.0f vs %.0f min",
			exp3.Run.DurationMinutes, exp1.Run.DurationMinutes)
	}
	// Cost: Exp3 pays more per HIT.
	if exp3.Run.TotalCost <= exp1.Run.TotalCost {
		t.Fatalf("Exp3 cost $%.2f should exceed Exp1 $%.2f",
			exp3.Run.TotalCost, exp1.Run.TotalCost)
	}

	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "Exp 3: Lookup") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestFiguresShape(t *testing.T) {
	e := tinyEnv(t)
	t1, err := e.RunCrowdExperiments()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.RunBoostExperiments(t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs.Series) != 3 {
		t.Fatalf("series = %d", len(figs.Series))
	}
	for _, s := range figs.Series {
		if len(s.Points) < 5 {
			t.Fatalf("%s has only %d checkpoints", s.Name, len(s.Points))
		}
		// Costs and times must be non-decreasing.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Cost < s.Points[i-1].Cost || s.Points[i].Minute < s.Points[i-1].Minute {
				t.Fatalf("%s: non-monotonic axis", s.Name)
			}
		}
		// The final boosted classification must cover and outperform the
		// crowd when training quality allows; at minimum it classifies
		// every movie, which the raw crowd never achieves in Exp 1/2.
		if s.FinalBoostCorrect == 0 {
			t.Fatalf("%s: boost never trained", s.Name)
		}
	}
	// Early advantage (the paper's headline): after ~15% of the runtime
	// the boosted pipeline beats the raw crowd's correct count in the
	// honest-worker experiment (Exp 5 boosts Exp 2).
	s5 := figs.Series[1]
	var early *BoostPoint
	for i := range s5.Points {
		if s5.Points[i].RelTime >= 0.15 {
			early = &s5.Points[i]
			break
		}
	}
	if early == nil {
		t.Fatal("no early checkpoint")
	}
	if early.BoostCorrect <= early.CrowdCorrect {
		t.Fatalf("early boost %d should beat early crowd %d", early.BoostCorrect, early.CrowdCorrect)
	}

	var buf bytes.Buffer
	figs.RenderFigure3(&buf)
	figs.RenderFigure4(&buf)
	if !strings.Contains(buf.String(), "Figure 3") || !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("figure rendering broken")
	}
}

func TestTable2Shape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunTable2(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lists) != 3 {
		t.Fatalf("lists = %d", len(res.Lists))
	}
	totalHits := 0
	for _, l := range res.Lists {
		if len(l.Neighbors) != 5 {
			t.Fatalf("%s has %d neighbours", l.Anchor, len(l.Neighbors))
		}
		totalHits += l.GroupHits
	}
	// Across the three anchors, the majority of neighbours should come
	// from the anchor's own franchise/style group (paper: all of them).
	if totalHits < 8 {
		t.Fatalf("group hits = %d of 15, expected >= 8", totalHits)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Rocky (1976)") {
		t.Fatal("render missing anchor")
	}
}

func TestTable3Shape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Perceptual g-mean must grow with n and beat the metadata space,
	// which must hover near or below random (overfitting).
	for si := range SampleSizes {
		if res.MeanPerceptual[si] <= res.MeanMetadata[si] {
			t.Fatalf("n=%d: perceptual %.3f must beat metadata %.3f",
				SampleSizes[si], res.MeanPerceptual[si], res.MeanMetadata[si])
		}
	}
	if res.MeanPerceptual[2] <= res.MeanPerceptual[0]-0.02 {
		t.Fatalf("perceptual g-mean should not degrade with n: %.3f → %.3f",
			res.MeanPerceptual[0], res.MeanPerceptual[2])
	}
	if res.MeanPerceptual[2] < 0.55 {
		t.Fatalf("perceptual g-mean at n=40 = %.3f, too low", res.MeanPerceptual[2])
	}
	if res.MeanMetadata[2] > 0.62 {
		t.Fatalf("metadata g-mean at n=40 = %.3f, suspiciously high", res.MeanMetadata[2])
	}
	// Experts sit in the paper's band and above the space.
	for _, g := range res.MeanExpert {
		if g < 0.85 || g > 1.0 {
			t.Fatalf("expert g-mean %.3f outside band", g)
		}
		if g <= res.MeanPerceptual[2] {
			t.Fatalf("experts (%.3f) must beat the space (%.3f)", g, res.MeanPerceptual[2])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 3") || !strings.Contains(buf.String(), "Comedy") {
		t.Fatal("render broken")
	}
}

func TestTable4Shape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Perceptual space: precision grows with the swap rate (more true
	// positives to find); recall stays high; metadata is far worse.
	mp := res.MeanPerceptual
	if !(mp[0].Precision < mp[2].Precision) {
		t.Fatalf("precision should grow with x: %.3f → %.3f", mp[0].Precision, mp[2].Precision)
	}
	if mp[2].Recall < 0.5 {
		t.Fatalf("recall at x=20%% = %.3f, too low", mp[2].Recall)
	}
	for xi := range SwapRates {
		if res.MeanMetadata[xi].Recall >= mp[xi].Recall {
			t.Fatalf("x=%.0f%%: metadata recall %.3f must trail perceptual %.3f",
				100*SwapRates[xi], res.MeanMetadata[xi].Recall, mp[xi].Recall)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("render broken")
	}
}

func TestTables5And6Shape(t *testing.T) {
	opt := TinyOptions()
	t5, err := RunTable5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if t5.Domain != "restaurants" || len(t5.Rows) != 10 {
		t.Fatalf("t5 = %s, %d rows", t5.Domain, len(t5.Rows))
	}
	t6, err := RunTable6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if t6.Domain != "boardgames" || len(t6.Rows) != 20 {
		t.Fatalf("t6 = %s, %d rows", t6.Domain, len(t6.Rows))
	}
	for _, d := range []*DomainResult{t5, t6} {
		// g-mean grows with n on average.
		if d.Mean[2] < d.Mean[0] {
			t.Fatalf("%s: mean g-mean should grow with n: %v", d.Domain, d.Mean)
		}
		// Perceptual categories extract better than factual ones.
		p, f := d.PerceptualVsFactualMeans()
		if p <= f {
			t.Fatalf("%s: perceptual %.3f must beat factual %.3f", d.Domain, p, f)
		}
		var buf bytes.Buffer
		d.Render(&buf)
		if !strings.Contains(buf.String(), "g-mean") {
			t.Fatal("render broken")
		}
	}
}

func TestTSVMComparisonShape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunTSVMComparison("Comedy", 20)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy roughly equal (±0.12 at tiny scale), runtime much larger.
	if res.TSVMGMean < res.SVMGMean-0.12 {
		t.Fatalf("TSVM g-mean %.3f far below SVM %.3f", res.TSVMGMean, res.SVMGMean)
	}
	if res.SlowdownFactor() < 3 {
		t.Fatalf("TSVM slowdown %.1fx, expected substantial", res.SlowdownFactor())
	}
	if res.TSVMRetrains < 2 {
		t.Fatalf("TSVM retrains = %d", res.TSVMRetrains)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TSVM") {
		t.Fatal("render broken")
	}
	if _, err := e.RunTSVMComparison("NoSuch", 10); err == nil {
		t.Fatal("unknown genre must fail")
	}
	if _, err := e.RunTSVMComparison("Horror", 100000); err == nil {
		t.Fatal("oversized n must fail")
	}
}

func TestConsensusShape(t *testing.T) {
	e := tinyEnv(t)
	res, err := e.RunConsensus(1500)
	if err != nil {
		t.Fatal(err)
	}
	// The space must correlate positively and substantially with the
	// consensus, in the same regime as individual users (paper: 0.52 vs
	// 0.55).
	if res.SpaceVsConsensus < 0.3 {
		t.Fatalf("space consensus r = %.3f, too low", res.SpaceVsConsensus)
	}
	if res.UserVsConsensus < 0.4 || res.UserVsConsensus > 0.95 {
		t.Fatalf("user consensus r = %.3f outside plausible band", res.UserVsConsensus)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "consensus") {
		t.Fatal("render broken")
	}
}
