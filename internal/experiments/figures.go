package experiments

import (
	"fmt"
	"io"

	"crowddb/internal/crowd"
	"crowddb/internal/svm"
)

// BoostPoint is one checkpoint of Experiments 4–6: the crowd's progress at
// a moment in time, and the perceptual-space-boosted classification built
// from the crowd's labels collected so far.
type BoostPoint struct {
	// Minute is the absolute simulated time of the checkpoint.
	Minute float64
	// RelTime is Minute divided by the experiment's total duration
	// (Figure 3's x-axis).
	RelTime float64
	// Cost is the money spent up to the checkpoint (Figure 4's x-axis).
	Cost float64
	// CrowdCorrect counts sample movies the raw crowd majority has
	// classified correctly so far.
	CrowdCorrect int
	// BoostCorrect counts sample movies classified correctly by the SVM
	// trained on the crowd labels so far (always covering all movies).
	BoostCorrect int
	// TrainSize is the SVM's training-set size at the checkpoint.
	TrainSize int
}

// BoostSeries is one experiment's trajectory (Exp 4 boosts Exp 1's
// judgments, Exp 5 boosts Exp 2's, Exp 6 boosts Exp 3's).
type BoostSeries struct {
	Name   string
	Source string // the underlying §4.1 experiment
	Points []BoostPoint
	// FinalCrowdCorrect / FinalBoostCorrect snapshot the end state.
	FinalCrowdCorrect int
	FinalBoostCorrect int
}

// FiguresResult holds the data behind Figure 3 (over time) and Figure 4
// (over money).
type FiguresResult struct {
	Series     []*BoostSeries
	SampleSize int
}

// RunBoostExperiments reproduces Experiments 4–6 (§4.2): every few
// simulated minutes the crowd's current majority labels become the SVM
// training set; the SVM classifies all sample movies from their
// perceptual-space coordinates, fixing labeling errors and covering even
// movies no worker knows.
func (e *Env) RunBoostExperiments(t1 *Table1Result) (*FiguresResult, error) {
	truth, err := e.U.ReferenceMap(Question)
	if err != nil {
		return nil, err
	}
	out := &FiguresResult{SampleSize: t1.SampleSize}
	for i, ex := range t1.Experiments {
		series, err := e.boostSeries(fmt.Sprintf("Exp %d", i+4), ex, truth)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// checkpoints returns the evaluation time grid: the paper retrains every
// 5 minutes; to bound SMO work on long runs the grid is capped at 24
// checkpoints (the paper's Figure 3 is plotted on relative time anyway).
func checkpoints(duration float64) []float64 {
	step := 5.0
	if duration/step > 24 {
		step = duration / 24
	}
	var ts []float64
	for t := step; t < duration; t += step {
		ts = append(ts, t)
	}
	ts = append(ts, duration)
	return ts
}

func (e *Env) boostSeries(name string, ex *CrowdExperiment, truth map[int]bool) (*BoostSeries, error) {
	series := &BoostSeries{Name: name, Source: ex.Name}
	sp := e.Space

	for _, t := range checkpoints(ex.Run.DurationMinutes) {
		votes := crowd.MajorityVoteAt(ex.Run.Records, t)
		point := BoostPoint{
			Minute:  t,
			RelTime: t / ex.Run.DurationMinutes,
			Cost:    ex.Run.CostAt(t, ex.Cfg),
		}
		// Raw crowd progress.
		_, correct := votes.AccuracyAgainst(truth)
		point.CrowdCorrect = correct

		// Space boost: train on every currently-classified movie.
		var X [][]float64
		var y []bool
		pos, neg := 0, 0
		for id, label := range votes.Label {
			if id < 0 || id >= sp.NumItems() {
				continue
			}
			X = append(X, sp.Vector(id))
			y = append(y, label)
			if label {
				pos++
			} else {
				neg++
			}
		}
		point.TrainSize = len(X)
		if pos > 0 && neg > 0 {
			model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2, Seed: e.Opt.Seed})
			if err != nil {
				return nil, err
			}
			boostCorrect := 0
			for _, id := range e.Sample {
				if model.Predict(sp.Vector(id)) == truth[id] {
					boostCorrect++
				}
			}
			point.BoostCorrect = boostCorrect
		}
		series.Points = append(series.Points, point)
	}
	if n := len(series.Points); n > 0 {
		series.FinalCrowdCorrect = series.Points[n-1].CrowdCorrect
		series.FinalBoostCorrect = series.Points[n-1].BoostCorrect
	}
	e.logf("%s (boosting %s): final crowd %d vs boosted %d correct",
		name, ex.Name, series.FinalCrowdCorrect, series.FinalBoostCorrect)
	return series, nil
}

// RenderFigure3 prints the correctly-classified-over-relative-time series.
func (f *FiguresResult) RenderFigure3(w io.Writer) {
	fmt.Fprintf(w, "Figure 3. Correctly classified movies over time (sample=%d)\n", f.SampleSize)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%s (boosting %s):\n", s.Name, s.Source)
		fmt.Fprintf(w, "  %8s %8s %12s %12s %10s\n", "rel.time", "minute", "crowd-corr", "boost-corr", "train")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %8.2f %8.1f %12d %12d %10d\n",
				p.RelTime, p.Minute, p.CrowdCorrect, p.BoostCorrect, p.TrainSize)
		}
	}
}

// RenderFigure4 prints the correctly-classified-over-money series.
func (f *FiguresResult) RenderFigure4(w io.Writer) {
	fmt.Fprintf(w, "Figure 4. Correctly classified movies over money spent (sample=%d)\n", f.SampleSize)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%s (boosting %s):\n", s.Name, s.Source)
		fmt.Fprintf(w, "  %10s %12s %12s\n", "cost($)", "crowd-corr", "boost-corr")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %10.2f %12d %12d\n", p.Cost, p.CrowdCorrect, p.BoostCorrect)
		}
	}
}
