package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crowddb/internal/crowd"
)

// CrowdExperiment is one of the paper's three direct-crowdsourcing runs
// (§4.1), with its full judgment timeline retained for Figures 3–4.
type CrowdExperiment struct {
	Name string
	// Cfg is the job configuration used.
	Cfg crowd.JobConfig
	// Run is the raw marketplace outcome.
	Run *crowd.RunResult
	// Classified is the number of sample movies with a majority label.
	Classified int
	// Correct is the number of classified movies matching the reference.
	Correct int
}

// PctCorrect is the paper's "%Correct": correct / classified.
func (c *CrowdExperiment) PctCorrect() float64 {
	if c.Classified == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.Classified)
}

// Table1Result reproduces Table 1 ("Classification accuracy for direct
// crowd-sourcing"): Exp 1 open population, Exp 2 trusted (country-
// filtered) population, Exp 3 lookup task with gold questions.
type Table1Result struct {
	Experiments []*CrowdExperiment
	// SampleSize is the number of movies judged (paper: 1,000).
	SampleSize int
}

// Question is the attribute crowd-sourced throughout §4.1 ("is_comedy").
const Question = "Comedy"

// RunCrowdExperiments executes Experiments 1–3 on the environment's movie
// sample. Population compositions are calibrated to the paper's observed
// worker statistics (§4.1); see internal/crowd for the archetype models.
func (e *Env) RunCrowdExperiments() (*Table1Result, error) {
	items, err := e.U.CrowdItems(Question)
	if err != nil {
		return nil, err
	}
	sample := make([]crowd.Item, 0, len(e.Sample))
	for _, id := range e.Sample {
		sample = append(sample, items[id])
	}
	truth, err := e.U.ReferenceMap(Question)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{SampleSize: len(sample)}

	// Experiment 1: open population. The paper observed 89 workers, most
	// of the judgment volume from spammers, 95 judgments/min, $0.02/HIT.
	rng := rand.New(rand.NewSource(e.Opt.Seed + 11))
	openPop := crowd.NewPopulation(crowd.PopulationConfig{
		Workers: 89, SpammerFraction: 0.45,
	}, rng)
	cfg1 := crowd.JobConfig{
		ItemsPerHIT: 10, AssignmentsPerItem: 10, PayPerHIT: 0.02,
		JudgmentsPerMinute: 95, AllowDontKnow: true,
	}
	exp1, err := e.runCrowdExperiment("Exp 1: All", openPop, sample, cfg1, truth, rng)
	if err != nil {
		return nil, err
	}
	res.Experiments = append(res.Experiments, exp1)

	// Experiment 2: the same marketplace with spammer countries excluded.
	// The paper saw 27 workers and a similar completion time (116 min).
	rng2 := rand.New(rand.NewSource(e.Opt.Seed + 12))
	cfg2 := cfg1
	cfg2.ExcludeCountries = []string{"ZZ", "YY"}
	cfg2.JudgmentsPerMinute = 86
	exp2, err := e.runCrowdExperiment("Exp 2: Trusted", openPop, sample, cfg2, truth, rng2)
	if err != nil {
		return nil, err
	}
	res.Experiments = append(res.Experiments, exp2)

	// Experiment 3: the lookup formulation — workers research answers on
	// the Web (slow, accurate), 100 gold questions screen cheaters, no
	// "don't know" option, $0.03/HIT, ~18 judgments/min (562 min total).
	rng3 := rand.New(rand.NewSource(e.Opt.Seed + 13))
	lookupPop := crowd.NewPopulation(crowd.PopulationConfig{
		Workers: 51, SpammerFraction: 0.25, LookupFraction: 0.75,
	}, rng3)
	nGold := 100
	if nGold > len(sample)/10 {
		nGold = len(sample) / 10 // keep the recommended ~10% gold ratio
	}
	gold := make([]crowd.Item, 0, nGold)
	for i := 0; i < nGold; i++ {
		gold = append(gold, crowd.Item{
			ID: -(i + 1), Truth: i%3 == 0, Popularity: 1,
		})
	}
	// The observed net throughput was ~17.8 judgments/min (10,000 in 562
	// minutes); the gross rate is higher because judgments from workers
	// later excluded by gold screening are discarded and re-issued.
	cfg3 := crowd.JobConfig{
		ItemsPerHIT: 10, AssignmentsPerItem: 10, PayPerHIT: 0.03,
		JudgmentsPerMinute: 21, AllowDontKnow: false,
		GoldItems: gold, GoldFailureLimit: 2,
	}
	exp3, err := e.runCrowdExperiment("Exp 3: Lookup", lookupPop, sample, cfg3, truth, rng3)
	if err != nil {
		return nil, err
	}
	res.Experiments = append(res.Experiments, exp3)
	return res, nil
}

func (e *Env) runCrowdExperiment(name string, pop *crowd.Population, items []crowd.Item,
	cfg crowd.JobConfig, truth map[int]bool, rng *rand.Rand) (*CrowdExperiment, error) {

	run, err := crowd.RunJob(pop, items, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	votes := crowd.MajorityVote(run.Records)
	classified, correct := votes.AccuracyAgainst(truth)
	e.logf("%s: %d classified, %d correct (%.1f%%), %.0f min, $%.2f, %d workers",
		name, classified, correct, 100*float64(correct)/float64(max(classified, 1)),
		run.DurationMinutes, run.TotalCost, run.DistinctWorkers)
	return &CrowdExperiment{
		Name: name, Cfg: cfg, Run: run,
		Classified: classified, Correct: correct,
	}, nil
}

// Render prints the table in the paper's format.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1. Classification accuracy for direct crowd-sourcing (%d movies, 10 judgments each)\n", t.SampleSize)
	fmt.Fprintf(w, "%-16s %12s %10s %10s %10s %9s\n",
		"Evaluation", "#Classified", "%Correct", "Time(min)", "Cost($)", "Workers")
	for _, ex := range t.Experiments {
		fmt.Fprintf(w, "%-16s %12d %9.1f%% %10.0f %10.2f %9d\n",
			ex.Name, ex.Classified, 100*ex.PctCorrect(),
			ex.Run.DurationMinutes, ex.Run.TotalCost, ex.Run.DistinctWorkers)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
