package experiments

import (
	"fmt"
	"io"
	"strings"
)

// NeighborList is one anchor movie with its nearest neighbours in the
// perceptual space.
type NeighborList struct {
	Anchor    string
	Neighbors []string
	// GroupHits counts neighbours from the anchor's own named group
	// (franchise/style) — the quantitative version of Table 2's
	// eyeball test.
	GroupHits int
}

// Table2Result reproduces Table 2: example movies and their five nearest
// neighbours in perceptual space.
type Table2Result struct {
	Lists []NeighborList
	K     int
}

// Table2Anchors are the paper's three example movies.
var Table2Anchors = []string{"Rocky (1976)", "Dirty Dancing (1987)", "The Birds (1963)"}

// RunTable2 computes the k-nearest-neighbour lists for the paper's anchor
// movies from the trained perceptual space.
func (e *Env) RunTable2(k int) (*Table2Result, error) {
	if k <= 0 {
		k = 5
	}
	res := &Table2Result{K: k}

	// Map each named movie to its group for the GroupHits metric.
	groupOf := map[string]int{}
	for g, grp := range e.U.Config.NamedGroups {
		for _, name := range grp.Names {
			groupOf[name] = g
		}
	}

	for _, anchor := range Table2Anchors {
		idx := e.U.FindItem(anchor)
		if idx < 0 {
			return nil, fmt.Errorf("experiments: anchor movie %q not in universe", anchor)
		}
		nns, err := e.Space.NearestNeighbors(idx, k)
		if err != nil {
			return nil, err
		}
		list := NeighborList{Anchor: anchor}
		for _, nb := range nns {
			name := e.U.Items[nb.Item].Name
			list.Neighbors = append(list.Neighbors, name)
			if g, ok := groupOf[name]; ok && g == groupOf[anchor] {
				list.GroupHits++
			}
		}
		res.Lists = append(res.Lists, list)
		e.logf("Table 2: %s → %s (%d/%d group hits)",
			anchor, strings.Join(list.Neighbors, ", "), list.GroupHits, k)
	}
	return res, nil
}

// Render prints the neighbour lists side by side, like the paper's table.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2. Example movies and their %d nearest neighbors in perceptual space\n", t.K)
	for _, l := range t.Lists {
		fmt.Fprintf(w, "%s  (same-group neighbours: %d/%d)\n", l.Anchor, l.GroupHits, t.K)
		for _, n := range l.Neighbors {
			fmt.Fprintf(w, "    %s\n", n)
		}
	}
}
