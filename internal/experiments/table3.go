package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crowddb/internal/eval"
	"crowddb/internal/space"
	"crowddb/internal/svm"
)

// SampleSizes are the paper's training sample sizes (n positive and n
// negative examples).
var SampleSizes = []int{10, 20, 40}

// Table3Row is one genre's results.
type Table3Row struct {
	Genre string
	// PerceptualGMean[i] is the mean g-mean with SampleSizes[i] examples
	// per class on the perceptual space; PerceptualStd its std deviation.
	PerceptualGMean []float64
	PerceptualStd   []float64
	// MetadataGMean is the same on the LSI metadata space.
	MetadataGMean []float64
	MetadataStd   []float64
	// ExpertGMean[e] is expert database e's g-mean vs the reference.
	ExpertGMean []float64
}

// Table3Result reproduces Table 3 ("Automatic schema expansion from small
// samples").
type Table3Result struct {
	Rows        []Table3Row
	Items       int
	Repetitions int
	// MeanPerceptual[i] / MeanMetadata[i] aggregate over genres.
	MeanPerceptual []float64
	MeanMetadata   []float64
	MeanExpert     []float64
}

// smallSampleGMean trains an RBF-SVM on n positive + n negative examples
// drawn from labels (over sp's coordinates) and evaluates g-mean on all
// remaining items. It returns ok=false when the class population cannot
// supply n examples.
func smallSampleGMean(sp *space.Space, labels []bool, n int, seed int64) (float64, bool) {
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, v := range labels {
		if i >= sp.NumItems() {
			break
		}
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < n+1 || len(neg) < n+1 {
		return 0, false
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	var X [][]float64
	var y []bool
	train := make(map[int]bool, 2*n)
	for i := 0; i < n; i++ {
		X = append(X, sp.Vector(pos[i]))
		y = append(y, true)
		train[pos[i]] = true
		X = append(X, sp.Vector(neg[i]))
		y = append(y, false)
		train[neg[i]] = true
	}
	model, err := svm.TrainSVC(X, y, svm.SVCConfig{C: 2, Seed: seed})
	if err != nil {
		return 0, false
	}
	var conf eval.Confusion
	for i, v := range labels {
		if i >= sp.NumItems() || train[i] {
			continue
		}
		conf.Observe(model.Predict(sp.Vector(i)), v)
	}
	return conf.GMean(), true
}

// RunTable3 runs the controlled small-sample study: for every genre and
// every n ∈ {10, 20, 40}, train on n positive + n negative reference
// examples (100% accurate, as in §4.3) and classify all other movies —
// once on the perceptual space and once on the LSI metadata space; the
// expert databases' own g-means complete the comparison.
func (e *Env) RunTable3() (*Table3Result, error) {
	res := &Table3Result{
		Items:          e.U.Config.Items,
		Repetitions:    e.Opt.Repetitions,
		MeanPerceptual: make([]float64, len(SampleSizes)),
		MeanMetadata:   make([]float64, len(SampleSizes)),
	}
	contributors := make([]int, len(SampleSizes))
	for _, spec := range e.U.Config.Categories {
		cat := e.U.Categories[spec.Name]
		row := Table3Row{Genre: spec.Name}
		for si, n := range SampleSizes {
			var pG, mG []float64
			for rep := 0; rep < e.Opt.Repetitions; rep++ {
				seed := e.Opt.Seed + int64(1000*si+rep)
				if g, ok := smallSampleGMean(e.Space, cat.Reference, n, seed); ok {
					pG = append(pG, g)
				}
				if g, ok := smallSampleGMean(e.MetaSpace, cat.Reference, n, seed); ok {
					mG = append(mG, g)
				}
			}
			if len(pG) == 0 || len(mG) == 0 {
				// The genre population cannot supply n examples per class
				// at this scale (e.g. Documentary at CI scale). Record
				// zeros and exclude the combination from the means.
				e.logf("Table 3: %s skipped at n=%d (class too small)", spec.Name, n)
				row.PerceptualGMean = append(row.PerceptualGMean, 0)
				row.PerceptualStd = append(row.PerceptualStd, 0)
				row.MetadataGMean = append(row.MetadataGMean, 0)
				row.MetadataStd = append(row.MetadataStd, 0)
				continue
			}
			pm, ps := eval.MeanStd(pG)
			mm, ms := eval.MeanStd(mG)
			row.PerceptualGMean = append(row.PerceptualGMean, pm)
			row.PerceptualStd = append(row.PerceptualStd, ps)
			row.MetadataGMean = append(row.MetadataGMean, mm)
			row.MetadataStd = append(row.MetadataStd, ms)
			res.MeanPerceptual[si] += pm
			res.MeanMetadata[si] += mm
			contributors[si]++
		}
		for eIdx := range cat.Expert {
			c := eval.CompareLabels(cat.Expert[eIdx], cat.Reference)
			row.ExpertGMean = append(row.ExpertGMean, c.GMean())
		}
		e.logf("Table 3: %-12s perceptual %v metadata %v",
			spec.Name, fmtVals(row.PerceptualGMean), fmtVals(row.MetadataGMean))
		res.Rows = append(res.Rows, row)
	}
	for si := range SampleSizes {
		if contributors[si] > 0 {
			res.MeanPerceptual[si] /= float64(contributors[si])
			res.MeanMetadata[si] /= float64(contributors[si])
		}
	}
	// Mean expert g-mean per expert index.
	if len(res.Rows) > 0 && len(res.Rows[0].ExpertGMean) > 0 {
		nExp := len(res.Rows[0].ExpertGMean)
		res.MeanExpert = make([]float64, nExp)
		for _, row := range res.Rows {
			for eIdx := 0; eIdx < nExp && eIdx < len(row.ExpertGMean); eIdx++ {
				res.MeanExpert[eIdx] += row.ExpertGMean[eIdx]
			}
		}
		for i := range res.MeanExpert {
			res.MeanExpert[i] /= float64(len(res.Rows))
		}
	}
	return res, nil
}

func fmtVals(vals []float64) string {
	s := ""
	for i, v := range vals {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s
}

// Render prints the table in the paper's layout.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3. Automatic schema expansion from small samples (g-mean; %d items, %d repetitions)\n",
		t.Items, t.Repetitions)
	fmt.Fprintf(w, "%-14s %6s |", "Genre", "Random")
	for _, n := range SampleSizes {
		fmt.Fprintf(w, " P n=%-3d", n)
	}
	fmt.Fprintf(w, "|")
	for _, n := range SampleSizes {
		fmt.Fprintf(w, " M n=%-3d", n)
	}
	fmt.Fprintf(w, "| experts\n")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-14s %6.2f |", row.Genre, 0.50)
		for _, v := range row.PerceptualGMean {
			fmt.Fprintf(w, " %7.2f", v)
		}
		fmt.Fprintf(w, "|")
		for _, v := range row.MetadataGMean {
			fmt.Fprintf(w, " %7.2f", v)
		}
		fmt.Fprintf(w, "|")
		for _, v := range row.ExpertGMean {
			fmt.Fprintf(w, " %5.2f", v)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "%-14s %6.2f |", "Mean", 0.50)
	for _, v := range t.MeanPerceptual {
		fmt.Fprintf(w, " %7.2f", v)
	}
	fmt.Fprintf(w, "|")
	for _, v := range t.MeanMetadata {
		fmt.Fprintf(w, " %7.2f", v)
	}
	fmt.Fprintf(w, "|")
	for _, v := range t.MeanExpert {
		fmt.Fprintf(w, " %5.2f", v)
	}
	fmt.Fprintf(w, "\n")
}
