package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"crowddb/internal/space"
	"crowddb/internal/svm"
)

// SwapRates are the paper's corrupted-label fractions x.
var SwapRates = []float64{0.05, 0.10, 0.20}

// Table4Cell is one precision/recall pair.
type Table4Cell struct {
	Precision float64
	Recall    float64
}

// Table4Row is one genre's results across swap rates, on both spaces.
type Table4Row struct {
	Genre      string
	Perceptual []Table4Cell // indexed like SwapRates
	Metadata   []Table4Cell
}

// Table4Result reproduces Table 4 ("Automatic identification of
// questionable HIT responses").
type Table4Result struct {
	Rows        []Table4Row
	Repetitions int
	// MeanPerceptual / MeanMetadata aggregate over genres.
	MeanPerceptual []Table4Cell
	MeanMetadata   []Table4Cell
}

// questionablePR swaps x of the labels, trains an SVM on ALL (corrupted)
// labels over sp, flags items whose label contradicts the prediction, and
// scores the flags against the true swap set.
func questionablePR(sp *space.Space, labels []bool, x float64, seed int64) (precision, recall float64) {
	rng := rand.New(rand.NewSource(seed))
	n := len(labels)
	if n > sp.NumItems() {
		n = sp.NumItems()
	}
	corrupted := make([]bool, n)
	copy(corrupted, labels[:n])
	nSwap := int(x * float64(n))
	swapped := make(map[int]bool, nSwap)
	for len(swapped) < nSwap {
		i := rng.Intn(n)
		if swapped[i] {
			continue
		}
		swapped[i] = true
		corrupted[i] = !corrupted[i]
	}

	X := make([][]float64, n)
	for i := 0; i < n; i++ {
		X[i] = sp.Vector(i)
	}
	// A soft margin (C = 0.5) is essential here: the SVM must smooth over
	// isolated wrong labels rather than memorize them — memorization flags
	// nothing (this is exactly why the metadata space fails in the paper).
	model, err := svm.TrainSVC(X, corrupted, svm.SVCConfig{C: 0.5, Seed: seed})
	if err != nil {
		return 0, 0
	}
	tp, fp, fn := 0, 0, 0
	for i := 0; i < n; i++ {
		flagged := model.Predict(X[i]) != corrupted[i]
		switch {
		case flagged && swapped[i]:
			tp++
		case flagged && !swapped[i]:
			fp++
		case !flagged && swapped[i]:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// RunTable4 runs the questionable-response study for every genre and swap
// rate on both spaces.
func (e *Env) RunTable4() (*Table4Result, error) {
	reps := e.Opt.Table4Repetitions
	res := &Table4Result{
		Repetitions:    reps,
		MeanPerceptual: make([]Table4Cell, len(SwapRates)),
		MeanMetadata:   make([]Table4Cell, len(SwapRates)),
	}
	for _, spec := range e.U.Config.Categories {
		cat := e.U.Categories[spec.Name]
		row := Table4Row{Genre: spec.Name}
		for xi, x := range SwapRates {
			var pP, pR, mP, mR float64
			for rep := 0; rep < reps; rep++ {
				seed := e.Opt.Seed + int64(100*xi+rep)
				p1, r1 := questionablePR(e.Space, cat.Reference, x, seed)
				p2, r2 := questionablePR(e.MetaSpace, cat.Reference, x, seed)
				pP += p1
				pR += r1
				mP += p2
				mR += r2
			}
			f := float64(reps)
			row.Perceptual = append(row.Perceptual, Table4Cell{pP / f, pR / f})
			row.Metadata = append(row.Metadata, Table4Cell{mP / f, mR / f})
			res.MeanPerceptual[xi].Precision += pP / f
			res.MeanPerceptual[xi].Recall += pR / f
			res.MeanMetadata[xi].Precision += mP / f
			res.MeanMetadata[xi].Recall += mR / f
		}
		e.logf("Table 4: %-12s perceptual P/R at 20%% = %.2f/%.2f",
			spec.Name, row.Perceptual[len(row.Perceptual)-1].Precision,
			row.Perceptual[len(row.Perceptual)-1].Recall)
		res.Rows = append(res.Rows, row)
	}
	nG := float64(len(res.Rows))
	for xi := range SwapRates {
		res.MeanPerceptual[xi].Precision /= nG
		res.MeanPerceptual[xi].Recall /= nG
		res.MeanMetadata[xi].Precision /= nG
		res.MeanMetadata[xi].Recall /= nG
	}
	return res, nil
}

// Render prints the table in the paper's precision/recall layout.
func (t *Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4. Automatic identification of questionable HIT responses (precision/recall, %d repetitions)\n", t.Repetitions)
	fmt.Fprintf(w, "%-14s |", "Genre")
	for _, x := range SwapRates {
		fmt.Fprintf(w, "  P x=%2.0f%%   ", 100*x)
	}
	fmt.Fprintf(w, "|")
	for _, x := range SwapRates {
		fmt.Fprintf(w, "  M x=%2.0f%%   ", 100*x)
	}
	fmt.Fprintln(w)
	printRow := func(name string, p, m []Table4Cell) {
		fmt.Fprintf(w, "%-14s |", name)
		for _, c := range p {
			fmt.Fprintf(w, " %4.2f/%4.2f  ", c.Precision, c.Recall)
		}
		fmt.Fprintf(w, "|")
		for _, c := range m {
			fmt.Fprintf(w, " %4.2f/%4.2f  ", c.Precision, c.Recall)
		}
		fmt.Fprintln(w)
	}
	for _, row := range t.Rows {
		printRow(row.Genre, row.Perceptual, row.Metadata)
	}
	printRow("Mean", t.MeanPerceptual, t.MeanMetadata)
}
