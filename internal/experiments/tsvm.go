package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"crowddb/internal/eval"
	"crowddb/internal/svm"
)

// TSVMResult reproduces the §5 semi-supervised comparison: a transductive
// SVM achieves roughly the supervised SVM's accuracy at orders of
// magnitude higher runtime (the paper measured ≈3 s vs ≈90 min with
// SVMlight on its full database).
type TSVMResult struct {
	Genre          string
	N              int
	SVMGMean       float64
	TSVMGMean      float64
	SVMDuration    time.Duration
	TSVMDuration   time.Duration
	TSVMRetrains   int
	UnlabeledCount int
}

// SlowdownFactor is TSVM time / SVM time.
func (r *TSVMResult) SlowdownFactor() float64 {
	if r.SVMDuration <= 0 {
		return 0
	}
	return float64(r.TSVMDuration) / float64(r.SVMDuration)
}

// RunTSVMComparison trains both machines on the same n-per-class sample of
// the genre and evaluates both on the remaining items; the TSVM
// additionally sees all remaining items unlabeled.
func (e *Env) RunTSVMComparison(genre string, n int) (*TSVMResult, error) {
	cat, ok := e.U.Categories[genre]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown genre %q", genre)
	}
	sp := e.Space
	rng := rand.New(rand.NewSource(e.Opt.Seed + 500))

	var pos, neg []int
	for i, v := range cat.Reference {
		if i >= sp.NumItems() {
			break
		}
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < n+1 || len(neg) < n+1 {
		return nil, fmt.Errorf("experiments: genre %s too small for n=%d", genre, n)
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	var Xl [][]float64
	var yl []bool
	train := map[int]bool{}
	for i := 0; i < n; i++ {
		Xl = append(Xl, sp.Vector(pos[i]))
		yl = append(yl, true)
		train[pos[i]] = true
		Xl = append(Xl, sp.Vector(neg[i]))
		yl = append(yl, false)
		train[neg[i]] = true
	}
	var Xu [][]float64
	var idxU []int
	for i := range cat.Reference {
		if i >= sp.NumItems() || train[i] {
			continue
		}
		Xu = append(Xu, sp.Vector(i))
		idxU = append(idxU, i)
	}

	res := &TSVMResult{Genre: genre, N: n, UnlabeledCount: len(Xu)}

	start := time.Now()
	svc, err := svm.TrainSVC(Xl, yl, svm.SVCConfig{C: 2, Seed: e.Opt.Seed})
	if err != nil {
		return nil, err
	}
	res.SVMDuration = time.Since(start)
	var confS eval.Confusion
	for k, i := range idxU {
		confS.Observe(svc.Predict(Xu[k]), cat.Reference[i])
	}
	res.SVMGMean = confS.GMean()

	start = time.Now()
	tsvm, stats, err := svm.TrainTSVM(Xl, yl, Xu, svm.TSVMConfig{
		SVC:         svm.SVCConfig{C: 2, Seed: e.Opt.Seed},
		MaxRetrains: 50,
	})
	if err != nil {
		return nil, err
	}
	res.TSVMDuration = time.Since(start)
	res.TSVMRetrains = stats.Retrains
	var confT eval.Confusion
	for k, i := range idxU {
		confT.Observe(tsvm.Predict(Xu[k]), cat.Reference[i])
	}
	res.TSVMGMean = confT.GMean()

	e.logf("TSVM (%s, n=%d): SVM g=%.3f in %v; TSVM g=%.3f in %v (%d retrains, %.0fx slower)",
		genre, n, res.SVMGMean, res.SVMDuration, res.TSVMGMean, res.TSVMDuration,
		stats.Retrains, res.SlowdownFactor())
	return res, nil
}

// Render prints the comparison.
func (r *TSVMResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Section 5: supervised SVM vs transductive SVM (%s, n=%d/class, %d unlabeled)\n",
		r.Genre, r.N, r.UnlabeledCount)
	fmt.Fprintf(w, "%-8s %8s %14s\n", "machine", "g-mean", "runtime")
	fmt.Fprintf(w, "%-8s %8.3f %14v\n", "SVM", r.SVMGMean, r.SVMDuration.Round(time.Millisecond))
	fmt.Fprintf(w, "%-8s %8.3f %14v  (%d retrains, %.0fx slower)\n",
		"TSVM", r.TSVMGMean, r.TSVMDuration.Round(time.Millisecond), r.TSVMRetrains, r.SlowdownFactor())
}
