package index

import (
	"sort"

	"crowddb/internal/storage"
)

// Hash is an equality index: canonical key → row IDs. Point lookups are
// O(1) regardless of table size; it cannot answer range probes.
type Hash struct {
	name   string
	column string
	m      map[hashKey][]int
	n      int // total entries; kept incrementally — Entries() sits on the planner's hot path
}

// NewHash creates an empty hash index over column.
func NewHash(name, column string) *Hash {
	return &Hash{name: name, column: column, m: make(map[hashKey][]int)}
}

// Name returns the index name.
func (h *Hash) Name() string { return h.name }

// Column returns the indexed column's name.
func (h *Hash) Column() string { return h.column }

// Ordered reports whether the index supports range probes.
func (h *Hash) Ordered() bool { return false }

// Entries returns the number of indexed (non-NULL) rows.
func (h *Hash) Entries() int { return h.n }

// Add indexes v for rowID. NULLs are skipped.
func (h *Hash) Add(rowID int, v storage.Value) {
	k, ok := keyOf(v)
	if !ok {
		return
	}
	h.m[k] = append(h.m[k], rowID)
	h.n++
}

// Replace swaps rowID's entry from oldV to newV (the Set hook).
func (h *Hash) Replace(rowID int, oldV, newV storage.Value) {
	if k, ok := keyOf(oldV); ok {
		ids := h.m[k]
		for i, id := range ids {
			if id == rowID {
				ids = append(ids[:i], ids[i+1:]...)
				h.n--
				break
			}
		}
		if len(ids) == 0 {
			delete(h.m, k)
		} else {
			h.m[k] = ids
		}
	}
	h.Add(rowID, newV)
}

// Rebuild reindexes from scratch: vals[i] is row i's value.
func (h *Hash) Rebuild(vals []storage.Value) {
	h.m = make(map[hashKey][]int, len(vals))
	h.n = 0
	for i, v := range vals {
		h.Add(i, v)
	}
}

// Lookup returns the row IDs whose value equals v (storage.Value.Equal
// semantics), in ascending row order.
func (h *Hash) Lookup(v storage.Value) []int {
	k, ok := keyOf(v)
	if !ok {
		return nil
	}
	ids := h.m[k]
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	sort.Ints(out)
	return out
}

// Range is unsupported on a hash index; the planner never asks.
func (h *Hash) Range(lo, hi *storage.Value, loInc, hiInc bool) []int { return nil }
