package index

import (
	"sort"

	"crowddb/internal/storage"
)

// Hash is an equality index: canonical encoded key → row IDs. Point
// lookups are O(1) regardless of table size or key width; it cannot
// answer range probes.
type Hash struct {
	name string
	cols []string
	m    map[string][]int
	n    int // total entries; kept incrementally — Entries() sits on the planner's hot path
}

// NewHash creates an empty hash index keyed on cols.
func NewHash(name string, cols []string) *Hash {
	return &Hash{name: name, cols: cols, m: make(map[string][]int)}
}

// Name returns the index name.
func (h *Hash) Name() string { return h.name }

// Columns returns the key columns.
func (h *Hash) Columns() []string { return h.cols }

// Dirs returns all-false: a hash index has no order to direct.
func (h *Hash) Dirs() []bool { return make([]bool, len(h.cols)) }

// Ordered reports whether the index supports range probes.
func (h *Hash) Ordered() bool { return false }

// Entries returns the number of indexed (fully non-NULL) rows.
func (h *Hash) Entries() int { return h.n }

// Add indexes key for rowID. Keys with a NULL component are skipped.
func (h *Hash) Add(rowID int, key []storage.Value) {
	k, ok := encodeKey(key)
	if !ok {
		return
	}
	h.m[k] = append(h.m[k], rowID)
	h.n++
}

// Remove drops rowID's entry under key (the Delete hook).
func (h *Hash) Remove(rowID int, key []storage.Value) {
	k, ok := encodeKey(key)
	if !ok {
		return
	}
	ids := h.m[k]
	for i, id := range ids {
		if id == rowID {
			ids = append(ids[:i], ids[i+1:]...)
			h.n--
			break
		}
	}
	if len(ids) == 0 {
		delete(h.m, k)
	} else {
		h.m[k] = ids
	}
}

// Replace swaps rowID's entry from oldKey to newKey (the Set hook).
func (h *Hash) Replace(rowID int, oldKey, newKey []storage.Value) {
	h.Remove(rowID, oldKey)
	h.Add(rowID, newKey)
}

// Rebuild reindexes from scratch: cols[k][i] is row i's value for key
// column k; rows set in skip are tombstoned and excluded.
func (h *Hash) Rebuild(cols [][]storage.Value, skip []uint64) {
	nrows := 0
	if len(cols) > 0 {
		nrows = len(cols[0])
	}
	h.m = make(map[string][]int, nrows)
	h.n = 0
	for i := 0; i < nrows; i++ {
		if skipped(skip, i) {
			continue
		}
		key, ok := rowKey(cols, i)
		if !ok {
			continue
		}
		h.Add(i, key)
	}
}

// Lookup returns the row IDs whose key equals key (storage.Value.Equal
// semantics per component), in ascending row order.
func (h *Hash) Lookup(key []storage.Value) []int {
	if len(key) != len(h.cols) {
		return nil
	}
	k, ok := encodeKey(key)
	if !ok {
		return nil
	}
	ids := h.m[k]
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	sort.Ints(out)
	return out
}

// Range is unsupported on a hash index; the planner never asks.
func (h *Hash) Range(lo, hi *storage.Value, loInc, hiInc bool) []int { return nil }
