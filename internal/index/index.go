// Package index implements the secondary-index structures of the storage
// layer: a hash index for equality point lookups and an ordered
// (sorted-run) index for range predicates and index-ordered iteration.
// Both support composite keys; the ordered index additionally supports
// per-column DESC directions and key-carrying range probes (the
// index-only-scan hook).
//
// Indexes hold no locks of their own. Every structure in this package is
// mutated and probed exclusively under the owning table's index lock,
// through the storage.ColumnIndex maintenance hooks: the table calls
// Add/Remove/Replace/Rebuild in the same critical section that publishes
// the MVCC snapshot the change belongs to, and Lookup/Range while
// resolving an index cursor. That keeps the index exactly as fresh as
// the snapshot it is paired with, without a second lock hierarchy.
//
// NULL values are never indexed: under three-valued logic an equality or
// range predicate is never TRUE for a NULL operand, so a NULL entry
// could never be returned anyway. A composite key with any NULL
// component is skipped whole. A freshly expanded column (all NULLs until
// the crowd fills it) therefore indexes as empty and grows as judgments
// land.
package index

import (
	"encoding/binary"
	"math"

	"crowddb/internal/storage"
)

// Kind names an index implementation.
type Kind string

const (
	KindHash    Kind = "hash"
	KindOrdered Kind = "ordered"
)

// New constructs a single-column index of the given kind over column.
func New(kind Kind, name, column string) (storage.ColumnIndex, error) {
	return NewComposite(kind, name, []string{column}, []bool{false})
}

// NewComposite constructs an index over the key columns cols with
// per-column directions dirs (true = DESC; ignored by hash indexes,
// which have no order to direct).
func NewComposite(kind Kind, name string, cols []string, dirs []bool) (storage.ColumnIndex, error) {
	if len(dirs) != len(cols) {
		d := make([]bool, len(cols))
		copy(d, dirs)
		dirs = d
	}
	switch kind {
	case KindHash:
		return NewHash(name, cols), nil
	case KindOrdered:
		return NewOrdered(name, cols, dirs), nil
	default:
		return nil, &UnknownKindError{Kind: string(kind)}
	}
}

// UnknownKindError reports an unrecognized index kind in CREATE INDEX.
type UnknownKindError struct{ Kind string }

func (e *UnknownKindError) Error() string {
	return "index: unknown index kind " + e.Kind + " (want HASH or ORDERED)"
}

// appendKeyComp appends one key component's canonical byte encoding to
// dst. The encoding must agree exactly with storage.Value.Equal: two
// values encode identically iff Equal reports true. Numerics (int and
// float) compare through float64 there, so both normalize to float64
// bits here — Int(2) and Float(2.0) collide by design, and negative
// zero folds into positive so -0.0 Equal 0.0 holds. Cross-class values
// never Equal, and their encodings differ in the class tag. Text is
// length-prefixed so composite keys cannot alias across component
// boundaries. ok=false for NULL (never indexed, never probed).
func appendKeyComp(dst []byte, v storage.Value) ([]byte, bool) {
	switch v.Kind() {
	case storage.KindNull:
		return dst, false
	case storage.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(dst, 'b', 1), true
		}
		return append(dst, 'b', 0), true
	case storage.KindText:
		s, _ := v.AsText()
		dst = append(dst, 's')
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...), true
	default:
		f, _ := v.AsFloat()
		if f == 0 {
			f = 0 // fold -0.0
		}
		dst = append(dst, 'n')
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(f)), true
	}
}

// encodeKey builds the canonical hash key of a composite key tuple;
// ok=false when any component is NULL.
func encodeKey(key []storage.Value) (string, bool) {
	dst := make([]byte, 0, 16*len(key))
	for _, v := range key {
		var ok bool
		dst, ok = appendKeyComp(dst, v)
		if !ok {
			return "", false
		}
	}
	return string(dst), true
}

// classRank orders value classes for the ordered index, so entries of a
// mixed-kind probe land in an empty region instead of a wrong one.
// Columns are homogeneous (values are coerced on write), so within one
// index only probes can introduce a foreign class.
func classRank(v storage.Value) int {
	switch v.Kind() {
	case storage.KindBool:
		return 0
	case storage.KindText:
		return 2
	default:
		return 1 // numeric
	}
}

// compare orders two non-NULL values the way storage.Value.Compare does,
// extended with a deterministic cross-class order (bool < numeric < text)
// instead of an error — the ordered index must be able to place any
// probe.
func compare(a, b storage.Value) int {
	ra, rb := classRank(a), classRank(b)
	if ra != rb {
		return ra - rb
	}
	switch ra {
	case 0:
		ab, _ := a.AsBool()
		bb, _ := b.AsBool()
		switch {
		case ab == bb:
			return 0
		case ab:
			return 1
		default:
			return -1
		}
	case 2:
		as, _ := a.AsText()
		bs, _ := b.AsText()
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	default:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
}

// keyHasNull reports whether any component of key is NULL.
func keyHasNull(key []storage.Value) bool {
	for _, v := range key {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// cloneKey copies a key tuple so the index never aliases caller memory.
func cloneKey(key []storage.Value) []storage.Value {
	out := make([]storage.Value, len(key))
	copy(out, key)
	return out
}

// rowKey assembles row i's key tuple from the Rebuild column slices;
// ok=false when any component is NULL.
func rowKey(cols [][]storage.Value, i int) ([]storage.Value, bool) {
	key := make([]storage.Value, len(cols))
	for k, c := range cols {
		if c[i].IsNull() {
			return nil, false
		}
		key[k] = c[i]
	}
	return key, true
}

// skipped reports whether row i is tombstoned in the skip bitmap.
func skipped(skip []uint64, i int) bool {
	w := i >> 6
	return w < len(skip) && skip[w]&(1<<(uint(i)&63)) != 0
}
