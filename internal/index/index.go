// Package index implements the secondary-index structures of the storage
// layer: a hash index for equality point lookups and an ordered
// (sorted-run) index for range predicates and index-ordered iteration.
//
// Indexes hold no locks of their own. Every structure in this package is
// mutated and probed exclusively under the owning table's mutex, through
// the storage.ColumnIndex maintenance hooks: the table calls Add/Replace/
// Rebuild while applying a mutation (Insert, Set, FillColumn, Delete
// compaction, crowd fill of an expanded column) and Lookup/Range while
// serving an index cursor batch. That keeps the index exactly as fresh as
// the rows it describes without a second lock hierarchy.
//
// NULL values are never indexed: under three-valued logic an equality or
// range predicate is never TRUE for a NULL operand, so a NULL entry could
// never be returned anyway. A freshly expanded column (all NULLs until
// the crowd fills it) therefore indexes as empty and grows as judgments
// land.
package index

import (
	"crowddb/internal/storage"
)

// Kind names an index implementation.
type Kind string

const (
	KindHash    Kind = "hash"
	KindOrdered Kind = "ordered"
)

// New constructs an index of the given kind over column, named name.
func New(kind Kind, name, column string) (storage.ColumnIndex, error) {
	switch kind {
	case KindHash:
		return NewHash(name, column), nil
	case KindOrdered:
		return NewOrdered(name, column), nil
	default:
		return nil, &UnknownKindError{Kind: string(kind)}
	}
}

// UnknownKindError reports an unrecognized index kind in CREATE INDEX.
type UnknownKindError struct{ Kind string }

func (e *UnknownKindError) Error() string {
	return "index: unknown index kind " + e.Kind + " (want HASH or ORDERED)"
}

// hashKey is the canonical equality key of a value. It must agree exactly
// with storage.Value.Equal: two values are mapped to the same key iff
// Equal reports true. Numerics (int and float) compare through float64
// there, so both normalize to a float64 key here — Int(2) and Float(2.0)
// collide by design. Cross-class values (text vs int, bool vs float)
// never Equal, and their keys differ in class.
type hashKey struct {
	class byte // 'b' bool, 'n' numeric, 's' text
	b     bool
	f     float64
	s     string
}

// keyOf normalizes v; ok=false for NULL (never indexed, never probed).
func keyOf(v storage.Value) (hashKey, bool) {
	switch v.Kind() {
	case storage.KindNull:
		return hashKey{}, false
	case storage.KindBool:
		b, _ := v.AsBool()
		return hashKey{class: 'b', b: b}, true
	case storage.KindText:
		s, _ := v.AsText()
		return hashKey{class: 's', s: s}, true
	default:
		f, _ := v.AsFloat()
		return hashKey{class: 'n', f: f}, true
	}
}

// classRank orders value classes for the ordered index, so entries of a
// mixed-kind probe land in an empty region instead of a wrong one.
// Columns are homogeneous (values are coerced on write), so within one
// index only probes can introduce a foreign class.
func classRank(v storage.Value) int {
	switch v.Kind() {
	case storage.KindBool:
		return 0
	case storage.KindText:
		return 2
	default:
		return 1 // numeric
	}
}

// compare orders two non-NULL values the way storage.Value.Compare does,
// extended with a deterministic cross-class order (bool < numeric < text)
// instead of an error — the ordered index must be able to place any
// probe.
func compare(a, b storage.Value) int {
	ra, rb := classRank(a), classRank(b)
	if ra != rb {
		return ra - rb
	}
	switch ra {
	case 0:
		ab, _ := a.AsBool()
		bb, _ := b.AsBool()
		switch {
		case ab == bb:
			return 0
		case ab:
			return 1
		default:
			return -1
		}
	case 2:
		as, _ := a.AsText()
		bs, _ := b.AsText()
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		default:
			return 0
		}
	default:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
}
