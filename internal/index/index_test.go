package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"crowddb/internal/storage"
)

func TestHashLookupEqualSemantics(t *testing.T) {
	h := NewHash("ix", "c")
	h.Add(0, storage.Int(2))
	h.Add(1, storage.Float(2.0))
	h.Add(2, storage.Float(2.5))
	h.Add(3, storage.Text("2"))
	h.Add(4, storage.Null())
	h.Add(5, storage.Bool(true))

	// Int and integral Float collide (Value.Equal compares numerics via
	// float64); text "2" and bool stay apart; NULL is never indexed.
	if got := h.Lookup(storage.Int(2)); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Lookup(2) = %v", got)
	}
	if got := h.Lookup(storage.Float(2.5)); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Lookup(2.5) = %v", got)
	}
	if got := h.Lookup(storage.Text("2")); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Lookup('2') = %v", got)
	}
	if got := h.Lookup(storage.Null()); got != nil {
		t.Fatalf("Lookup(NULL) = %v", got)
	}
	if h.Entries() != 5 {
		t.Fatalf("Entries = %d, want 5 (NULL skipped)", h.Entries())
	}
}

func TestHashReplace(t *testing.T) {
	h := NewHash("ix", "c")
	h.Add(0, storage.Int(1))
	h.Add(1, storage.Int(1))
	h.Replace(0, storage.Int(1), storage.Int(9))
	if got := h.Lookup(storage.Int(1)); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Lookup(1) = %v", got)
	}
	if got := h.Lookup(storage.Int(9)); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(9) = %v", got)
	}
	// NULL → value transition (the crowd-fill Set path).
	h.Replace(2, storage.Null(), storage.Int(9))
	if got := h.Lookup(storage.Int(9)); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Lookup(9) after NULL fill = %v", got)
	}
}

// TestOrderedMatchesSortReference drives the ordered index through enough
// random inserts to force delta merges and checks every range shape
// against a brute-force reference.
func TestOrderedMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := NewOrdered("ix", "c")
	const n = 5000
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = float64(rng.Intn(200)) // heavy duplication
		o.Add(i, storage.Float(vals[i]))
	}
	ref := func(pred func(float64) bool) []int {
		type pair struct {
			v   float64
			row int
		}
		var ps []pair
		for i, v := range vals {
			if pred(v) {
				ps = append(ps, pair{v, i})
			}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].v != ps[j].v {
				return ps[i].v < ps[j].v
			}
			return ps[i].row < ps[j].row
		})
		out := make([]int, len(ps))
		for i, p := range ps {
			out[i] = p.row
		}
		return out
	}
	lo, hi := storage.Float(50), storage.Float(150)
	cases := []struct {
		name string
		got  []int
		want []int
	}{
		{"closed", o.Range(&lo, &hi, true, true), ref(func(v float64) bool { return v >= 50 && v <= 150 })},
		{"open", o.Range(&lo, &hi, false, false), ref(func(v float64) bool { return v > 50 && v < 150 })},
		{"lo only", o.Range(&lo, nil, true, false), ref(func(v float64) bool { return v >= 50 })},
		{"hi only", o.Range(nil, &hi, false, false), ref(func(v float64) bool { return v < 150 })},
		{"full", o.Range(nil, nil, false, false), ref(func(v float64) bool { return true })},
	}
	for _, c := range cases {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Fatalf("%s: got %d ids, want %d (first-diff check)", c.name, len(c.got), len(c.want))
		}
	}
	point := storage.Float(77)
	if got, want := o.Lookup(point), ref(func(v float64) bool { return v == 77 }); !reflect.DeepEqual(got, want) {
		t.Fatalf("Lookup(77): got %d ids, want %d", len(got), len(want))
	}
}

func TestOrderedReplaceAndRebuild(t *testing.T) {
	o := NewOrdered("ix", "c")
	o.Rebuild([]storage.Value{storage.Int(3), storage.Int(1), storage.Null(), storage.Int(2)})
	if o.Entries() != 3 {
		t.Fatalf("Entries = %d", o.Entries())
	}
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{1, 3, 0}) {
		t.Fatalf("full range = %v, want key order [1 3 0]", got)
	}
	o.Replace(2, storage.Null(), storage.Int(0)) // fill the NULL
	o.Replace(0, storage.Int(3), storage.Int(5))
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{2, 1, 3, 0}) {
		t.Fatalf("after replace = %v", got)
	}
	lo := storage.Int(2)
	if got := o.Range(&lo, nil, true, false); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Fatalf(">=2 = %v", got)
	}
}

func TestOrderedCrossKindProbe(t *testing.T) {
	o := NewOrdered("ix", "c")
	o.Rebuild([]storage.Value{storage.Int(10), storage.Int(20)})
	// An int probe against (conceptually float-typed) numeric entries
	// matches through float comparison; a text probe lands in an empty
	// class region.
	if got := o.Lookup(storage.Float(10.0)); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(10.0) = %v", got)
	}
	if got := o.Lookup(storage.Text("10")); got != nil {
		t.Fatalf("Lookup('10') = %v, want nil", got)
	}
}

func TestNewKinds(t *testing.T) {
	if idx, err := New(KindHash, "a", "c"); err != nil || idx.Ordered() {
		t.Fatalf("New hash: %v %v", idx, err)
	}
	if idx, err := New(KindOrdered, "a", "c"); err != nil || !idx.Ordered() {
		t.Fatalf("New ordered: %v %v", idx, err)
	}
	if _, err := New(Kind("btree"), "a", "c"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
