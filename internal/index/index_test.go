package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"crowddb/internal/storage"
)

// k wraps single values into the key-tuple form the index API takes.
func k(vs ...storage.Value) []storage.Value { return vs }

func TestHashLookupEqualSemantics(t *testing.T) {
	h := NewHash("ix", []string{"c"})
	h.Add(0, k(storage.Int(2)))
	h.Add(1, k(storage.Float(2.0)))
	h.Add(2, k(storage.Float(2.5)))
	h.Add(3, k(storage.Text("2")))
	h.Add(4, k(storage.Null()))
	h.Add(5, k(storage.Bool(true)))

	// Int and integral Float collide (Value.Equal compares numerics via
	// float64); text "2" and bool stay apart; NULL is never indexed.
	if got := h.Lookup(k(storage.Int(2))); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Lookup(2) = %v", got)
	}
	if got := h.Lookup(k(storage.Float(2.5))); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Lookup(2.5) = %v", got)
	}
	if got := h.Lookup(k(storage.Text("2"))); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Lookup('2') = %v", got)
	}
	if got := h.Lookup(k(storage.Null())); got != nil {
		t.Fatalf("Lookup(NULL) = %v", got)
	}
	if h.Entries() != 5 {
		t.Fatalf("Entries = %d, want 5 (NULL skipped)", h.Entries())
	}
}

func TestHashReplaceAndRemove(t *testing.T) {
	h := NewHash("ix", []string{"c"})
	h.Add(0, k(storage.Int(1)))
	h.Add(1, k(storage.Int(1)))
	h.Replace(0, k(storage.Int(1)), k(storage.Int(9)))
	if got := h.Lookup(k(storage.Int(1))); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Lookup(1) = %v", got)
	}
	if got := h.Lookup(k(storage.Int(9))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(9) = %v", got)
	}
	// NULL → value transition (the crowd-fill Set path).
	h.Replace(2, k(storage.Null()), k(storage.Int(9)))
	if got := h.Lookup(k(storage.Int(9))); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Lookup(9) after NULL fill = %v", got)
	}
	// Point-wise Remove (the tombstone Delete hook).
	h.Remove(0, k(storage.Int(9)))
	if got := h.Lookup(k(storage.Int(9))); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Lookup(9) after remove = %v", got)
	}
	if h.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", h.Entries())
	}
}

func TestHashCompositeKey(t *testing.T) {
	h := NewHash("ix", []string{"a", "b"})
	h.Add(0, k(storage.Text("x"), storage.Int(1)))
	h.Add(1, k(storage.Text("x"), storage.Int(2)))
	h.Add(2, k(storage.Text("xy"), storage.Int(1))) // must not alias ("x","y1")-style splits
	h.Add(3, k(storage.Text("x"), storage.Null()))  // NULL component: skipped whole

	if got := h.Lookup(k(storage.Text("x"), storage.Int(1))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(x,1) = %v", got)
	}
	if got := h.Lookup(k(storage.Text("xy"), storage.Int(1))); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Lookup(xy,1) = %v", got)
	}
	if got := h.Lookup(k(storage.Text("x"))); got != nil {
		t.Fatalf("prefix lookup = %v, want nil (full key required)", got)
	}
	if h.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", h.Entries())
	}
	// Int/Float collision holds per component.
	if got := h.Lookup(k(storage.Text("x"), storage.Float(2.0))); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Lookup(x,2.0) = %v", got)
	}
}

// TestOrderedMatchesSortReference drives the ordered index through enough
// random inserts to force delta merges and checks every range shape
// against a brute-force reference.
func TestOrderedMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	o := NewOrdered("ix", []string{"c"}, []bool{false})
	const n = 5000
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = float64(rng.Intn(200)) // heavy duplication
		o.Add(i, k(storage.Float(vals[i])))
	}
	ref := func(pred func(float64) bool) []int {
		type pair struct {
			v   float64
			row int
		}
		var ps []pair
		for i, v := range vals {
			if pred(v) {
				ps = append(ps, pair{v, i})
			}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].v != ps[j].v {
				return ps[i].v < ps[j].v
			}
			return ps[i].row < ps[j].row
		})
		out := make([]int, len(ps))
		for i, p := range ps {
			out[i] = p.row
		}
		return out
	}
	lo, hi := storage.Float(50), storage.Float(150)
	cases := []struct {
		name string
		got  []int
		want []int
	}{
		{"closed", o.Range(&lo, &hi, true, true), ref(func(v float64) bool { return v >= 50 && v <= 150 })},
		{"open", o.Range(&lo, &hi, false, false), ref(func(v float64) bool { return v > 50 && v < 150 })},
		{"lo only", o.Range(&lo, nil, true, false), ref(func(v float64) bool { return v >= 50 })},
		{"hi only", o.Range(nil, &hi, false, false), ref(func(v float64) bool { return v < 150 })},
		{"full", o.Range(nil, nil, false, false), ref(func(v float64) bool { return true })},
	}
	for _, c := range cases {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Fatalf("%s: got %d ids, want %d (first-diff check)", c.name, len(c.got), len(c.want))
		}
	}
	point := storage.Float(77)
	if got, want := o.Lookup(k(point)), ref(func(v float64) bool { return v == 77 }); !reflect.DeepEqual(got, want) {
		t.Fatalf("Lookup(77): got %d ids, want %d", len(got), len(want))
	}
}

func rebuildCols(vals ...storage.Value) [][]storage.Value {
	return [][]storage.Value{vals}
}

func TestOrderedReplaceAndRebuild(t *testing.T) {
	o := NewOrdered("ix", []string{"c"}, []bool{false})
	o.Rebuild(rebuildCols(storage.Int(3), storage.Int(1), storage.Null(), storage.Int(2)), nil)
	if o.Entries() != 3 {
		t.Fatalf("Entries = %d", o.Entries())
	}
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{1, 3, 0}) {
		t.Fatalf("full range = %v, want key order [1 3 0]", got)
	}
	o.Replace(2, k(storage.Null()), k(storage.Int(0))) // fill the NULL
	o.Replace(0, k(storage.Int(3)), k(storage.Int(5)))
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{2, 1, 3, 0}) {
		t.Fatalf("after replace = %v", got)
	}
	lo := storage.Int(2)
	if got := o.Range(&lo, nil, true, false); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Fatalf(">=2 = %v", got)
	}
}

func TestOrderedRebuildSkipsTombstones(t *testing.T) {
	o := NewOrdered("ix", []string{"c"}, []bool{false})
	skip := make([]uint64, 1)
	skip[0] |= 1 << 1 // row 1 tombstoned
	o.Rebuild(rebuildCols(storage.Int(3), storage.Int(1), storage.Int(2)), skip)
	if o.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", o.Entries())
	}
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("full range = %v, want [2 0]", got)
	}
}

func TestOrderedCrossKindProbe(t *testing.T) {
	o := NewOrdered("ix", []string{"c"}, []bool{false})
	o.Rebuild(rebuildCols(storage.Int(10), storage.Int(20)), nil)
	// An int probe against (conceptually float-typed) numeric entries
	// matches through float comparison; a text probe lands in an empty
	// class region.
	if got := o.Lookup(k(storage.Float(10.0))); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Lookup(10.0) = %v", got)
	}
	if got := o.Lookup(k(storage.Text("10"))); got != nil {
		t.Fatalf("Lookup('10') = %v, want nil", got)
	}
}

func TestOrderedDescLeadingColumn(t *testing.T) {
	o := NewOrdered("ix", []string{"c"}, []bool{true})
	for i, v := range []int64{30, 10, 20, 20} {
		o.Add(i, k(storage.Int(v)))
	}
	// Index order is value-descending, ties ascending by row ID.
	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{0, 2, 3, 1}) {
		t.Fatalf("full range = %v, want [0 2 3 1]", got)
	}
	// Bounds stay in VALUE space: lo=15 means value ≥ 15.
	lo := storage.Int(15)
	if got := o.Range(&lo, nil, true, false); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf(">=15 = %v, want [0 2 3]", got)
	}
	hi := storage.Int(20)
	if got := o.Range(nil, &hi, false, true); !reflect.DeepEqual(got, []int{2, 3, 1}) {
		t.Fatalf("<=20 = %v, want [2 3 1]", got)
	}
	if got := o.Lookup(k(storage.Int(20))); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Lookup(20) = %v", got)
	}
}

func TestOrderedCompositeDirsAndRangeWithKeys(t *testing.T) {
	// (genre ASC, year DESC): within a genre, newest first.
	o := NewOrdered("ix", []string{"genre", "year"}, []bool{false, true})
	add := func(row int, g string, y int64) { o.Add(row, k(storage.Text(g), storage.Int(y))) }
	add(0, "drama", 1999)
	add(1, "comedy", 2005)
	add(2, "drama", 2011)
	add(3, "comedy", 1990)
	add(4, "drama", 2011) // tie on full key → row order

	if got := o.Range(nil, nil, false, false); !reflect.DeepEqual(got, []int{1, 3, 2, 4, 0}) {
		t.Fatalf("full range = %v, want [1 3 2 4 0]", got)
	}
	lo := storage.Text("drama")
	ids, keys := o.RangeWithKeys(&lo, nil, true, false)
	if !reflect.DeepEqual(ids, []int{2, 4, 0}) {
		t.Fatalf("RangeWithKeys ids = %v", ids)
	}
	if len(keys) != 3 {
		t.Fatalf("RangeWithKeys keys = %d tuples", len(keys))
	}
	if y, _ := keys[0][1].AsInt(); y != 2011 {
		t.Fatalf("keys[0] year = %v", keys[0][1])
	}
	if g, _ := keys[2][0].AsText(); g != "drama" {
		t.Fatalf("keys[2] genre = %v", keys[2][0])
	}
	// Full-key lookup.
	if got := o.Lookup(k(storage.Text("drama"), storage.Int(2011))); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("Lookup(drama,2011) = %v", got)
	}
	// Point-wise remove keeps the twin.
	o.Remove(2, k(storage.Text("drama"), storage.Int(2011)))
	if got := o.Lookup(k(storage.Text("drama"), storage.Int(2011))); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("Lookup after remove = %v", got)
	}
}

func TestNewKinds(t *testing.T) {
	if idx, err := New(KindHash, "a", "c"); err != nil || idx.Ordered() {
		t.Fatalf("New hash: %v %v", idx, err)
	}
	if idx, err := New(KindOrdered, "a", "c"); err != nil || !idx.Ordered() {
		t.Fatalf("New ordered: %v %v", idx, err)
	}
	if _, err := New(Kind("btree"), "a", "c"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	idx, err := NewComposite(KindOrdered, "a", []string{"x", "y"}, []bool{false, true})
	if err != nil || !reflect.DeepEqual(idx.Columns(), []string{"x", "y"}) || !reflect.DeepEqual(idx.Dirs(), []bool{false, true}) {
		t.Fatalf("NewComposite: %v %v", idx, err)
	}
}
