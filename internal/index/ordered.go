package index

import (
	"sort"

	"crowddb/internal/storage"
)

// entry is one indexed (value, row) pair.
type entry struct {
	v   storage.Value
	row int
}

// deltaMax bounds the ordered index's insert buffer. Inserts are O(delta)
// memmoves until the buffer fills, then one linear merge folds it into
// the base run — the classic sorted-run compromise between skiplist
// pointer soup and O(table) per-insert memmoves.
const deltaMax = 1024

// Ordered is a two-run ordered index: a large sorted base plus a small
// sorted delta buffer that absorbs inserts and is merged into the base
// when full. Both runs are sorted by (value, rowID), so equal keys come
// back in table order — exactly the tie-break a stable ORDER BY produces,
// which is what lets the planner drop a Sort in favor of index order.
type Ordered struct {
	name   string
	column string
	base   []entry
	delta  []entry
}

// NewOrdered creates an empty ordered index over column.
func NewOrdered(name, column string) *Ordered {
	return &Ordered{name: name, column: column}
}

// Name returns the index name.
func (o *Ordered) Name() string { return o.name }

// Column returns the indexed column's name.
func (o *Ordered) Column() string { return o.column }

// Ordered reports whether the index supports range probes.
func (o *Ordered) Ordered() bool { return true }

// Entries returns the number of indexed (non-NULL) rows.
func (o *Ordered) Entries() int { return len(o.base) + len(o.delta) }

// less orders entries by (value, rowID).
func less(a, b entry) bool {
	if c := compare(a.v, b.v); c != 0 {
		return c < 0
	}
	return a.row < b.row
}

// insertPos is the first position in run not less than e.
func insertPos(run []entry, e entry) int {
	return sort.Search(len(run), func(i int) bool { return !less(run[i], e) })
}

// Add indexes v for rowID. NULLs are skipped.
func (o *Ordered) Add(rowID int, v storage.Value) {
	if v.IsNull() {
		return
	}
	e := entry{v: v, row: rowID}
	i := insertPos(o.delta, e)
	o.delta = append(o.delta, entry{})
	copy(o.delta[i+1:], o.delta[i:])
	o.delta[i] = e
	if len(o.delta) >= deltaMax {
		o.mergeDelta()
	}
}

// mergeDelta folds the delta buffer into the base run (linear merge).
func (o *Ordered) mergeDelta() {
	merged := make([]entry, 0, len(o.base)+len(o.delta))
	i, j := 0, 0
	for i < len(o.base) && j < len(o.delta) {
		if less(o.delta[j], o.base[i]) {
			merged = append(merged, o.delta[j])
			j++
		} else {
			merged = append(merged, o.base[i])
			i++
		}
	}
	merged = append(merged, o.base[i:]...)
	merged = append(merged, o.delta[j:]...)
	o.base, o.delta = merged, o.delta[:0]
}

// remove drops the entry (v, rowID) from whichever run holds it.
func (o *Ordered) remove(rowID int, v storage.Value) {
	if v.IsNull() {
		return
	}
	e := entry{v: v, row: rowID}
	for _, run := range []*[]entry{&o.base, &o.delta} {
		r := *run
		i := insertPos(r, e)
		if i < len(r) && r[i].row == rowID && compare(r[i].v, v) == 0 {
			*run = append(r[:i], r[i+1:]...)
			return
		}
	}
}

// Replace swaps rowID's entry from oldV to newV (the Set hook).
func (o *Ordered) Replace(rowID int, oldV, newV storage.Value) {
	o.remove(rowID, oldV)
	o.Add(rowID, newV)
}

// Rebuild reindexes from scratch: vals[i] is row i's value. One sort —
// the bulk-load path CREATE INDEX, FillColumn, and Delete compaction use.
func (o *Ordered) Rebuild(vals []storage.Value) {
	base := make([]entry, 0, len(vals))
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		base = append(base, entry{v: v, row: i})
	}
	sort.Slice(base, func(i, j int) bool { return less(base[i], base[j]) })
	o.base, o.delta = base, nil
}

// bounds returns the half-open [from, to) window of run covered by the
// probe. A nil bound is open on that side.
func bounds(run []entry, lo, hi *storage.Value, loInc, hiInc bool) (int, int) {
	from, to := 0, len(run)
	if lo != nil {
		from = sort.Search(len(run), func(i int) bool {
			c := compare(run[i].v, *lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	if hi != nil {
		to = sort.Search(len(run), func(i int) bool {
			c := compare(run[i].v, *hi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if to < from {
		to = from
	}
	return from, to
}

// mergeIDs merges two (value, rowID)-sorted entry slices into the row-ID
// stream the cursor consumes, preserving index order.
func mergeIDs(a, b []entry) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(a[i], b[j]) {
			out = append(out, a[i].row)
			i++
		} else {
			out = append(out, b[j].row)
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, a[i].row)
	}
	for ; j < len(b); j++ {
		out = append(out, b[j].row)
	}
	return out
}

// Range returns the row IDs whose value falls in the probe window, in
// index order: ascending by value, ties by row ID. Nil bounds are open.
func (o *Ordered) Range(lo, hi *storage.Value, loInc, hiInc bool) []int {
	bf, bt := bounds(o.base, lo, hi, loInc, hiInc)
	df, dt := bounds(o.delta, lo, hi, loInc, hiInc)
	return mergeIDs(o.base[bf:bt], o.delta[df:dt])
}

// Lookup returns the row IDs whose value equals v, ascending by row ID —
// equality through the ordered runs is the closed range [v, v].
func (o *Ordered) Lookup(v storage.Value) []int {
	if v.IsNull() {
		return nil
	}
	ids := o.Range(&v, &v, true, true)
	if len(ids) == 0 {
		return nil
	}
	return ids
}
