package index

import (
	"sort"

	"crowddb/internal/storage"
)

// entry is one indexed (key, row) pair.
type entry struct {
	key []storage.Value
	row int
}

// deltaMax bounds the ordered index's insert buffer. Inserts are O(delta)
// memmoves until the buffer fills, then one linear merge folds it into
// the base run — the classic sorted-run compromise between skiplist
// pointer soup and O(table) per-insert memmoves.
const deltaMax = 1024

// Ordered is a two-run ordered index: a large sorted base plus a small
// sorted delta buffer that absorbs inserts and is merged into the base
// when full. Both runs are sorted by (key, rowID) under the index's
// per-column directions, so equal keys come back in table order —
// exactly the tie-break a stable ORDER BY produces, which is what lets
// the planner drop a Sort in favor of index order.
type Ordered struct {
	name  string
	cols  []string
	dirs  []bool // true = DESC, parallel to cols
	base  []entry
	delta []entry
}

// NewOrdered creates an empty ordered index keyed on cols with
// directions dirs (true = DESC).
func NewOrdered(name string, cols []string, dirs []bool) *Ordered {
	return &Ordered{name: name, cols: cols, dirs: dirs}
}

// Name returns the index name.
func (o *Ordered) Name() string { return o.name }

// Columns returns the key columns.
func (o *Ordered) Columns() []string { return o.cols }

// Dirs returns each key column's direction (true = DESC).
func (o *Ordered) Dirs() []bool { return o.dirs }

// Ordered reports whether the index supports range probes.
func (o *Ordered) Ordered() bool { return true }

// Entries returns the number of indexed (fully non-NULL) rows.
func (o *Ordered) Entries() int { return len(o.base) + len(o.delta) }

// compareKeys orders two key tuples under the index's directions.
func (o *Ordered) compareKeys(a, b []storage.Value) int {
	for k := range a {
		c := compare(a[k], b[k])
		if o.dirs[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// less orders entries by (key, rowID).
func (o *Ordered) less(a, b entry) bool {
	if c := o.compareKeys(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.row < b.row
}

// insertPos is the first position in run not less than e.
func (o *Ordered) insertPos(run []entry, e entry) int {
	return sort.Search(len(run), func(i int) bool { return !o.less(run[i], e) })
}

// Add indexes key for rowID. Keys with a NULL component are skipped.
func (o *Ordered) Add(rowID int, key []storage.Value) {
	if keyHasNull(key) {
		return
	}
	e := entry{key: cloneKey(key), row: rowID}
	i := o.insertPos(o.delta, e)
	o.delta = append(o.delta, entry{})
	copy(o.delta[i+1:], o.delta[i:])
	o.delta[i] = e
	if len(o.delta) >= deltaMax {
		o.mergeDelta()
	}
}

// mergeDelta folds the delta buffer into the base run (linear merge).
func (o *Ordered) mergeDelta() {
	merged := make([]entry, 0, len(o.base)+len(o.delta))
	i, j := 0, 0
	for i < len(o.base) && j < len(o.delta) {
		if o.less(o.delta[j], o.base[i]) {
			merged = append(merged, o.delta[j])
			j++
		} else {
			merged = append(merged, o.base[i])
			i++
		}
	}
	merged = append(merged, o.base[i:]...)
	merged = append(merged, o.delta[j:]...)
	o.base, o.delta = merged, o.delta[:0]
}

// Remove drops the entry (key, rowID) from whichever run holds it — the
// point-wise Delete hook; no rebuild, no ID shifting.
func (o *Ordered) Remove(rowID int, key []storage.Value) {
	if keyHasNull(key) {
		return
	}
	e := entry{key: key, row: rowID}
	for _, run := range []*[]entry{&o.base, &o.delta} {
		r := *run
		i := o.insertPos(r, e)
		if i < len(r) && r[i].row == rowID && o.compareKeys(r[i].key, key) == 0 {
			*run = append(r[:i], r[i+1:]...)
			return
		}
	}
}

// Replace swaps rowID's entry from oldKey to newKey (the Set hook).
func (o *Ordered) Replace(rowID int, oldKey, newKey []storage.Value) {
	o.Remove(rowID, oldKey)
	o.Add(rowID, newKey)
}

// Rebuild reindexes from scratch: cols[k][i] is row i's value for key
// column k; rows set in skip are tombstoned and excluded. One sort —
// the bulk-load path CREATE INDEX and FillColumn use.
func (o *Ordered) Rebuild(cols [][]storage.Value, skip []uint64) {
	nrows := 0
	if len(cols) > 0 {
		nrows = len(cols[0])
	}
	base := make([]entry, 0, nrows)
	for i := 0; i < nrows; i++ {
		if skipped(skip, i) {
			continue
		}
		key, ok := rowKey(cols, i)
		if !ok {
			continue
		}
		base = append(base, entry{key: key, row: i})
	}
	sort.Slice(base, func(i, j int) bool { return o.less(base[i], base[j]) })
	o.base, o.delta = base, nil
}

// cmp0 compares an entry's leading key column against a probe bound in
// RUN order: for a DESC leading column the run is descending in value,
// so the comparison flips and the caller swaps which bound it searches
// with.
func (o *Ordered) cmp0(v storage.Value, bound storage.Value) int {
	c := compare(v, bound)
	if o.dirs[0] {
		return -c
	}
	return c
}

// bounds returns the half-open [from, to) window of run covered by the
// probe, in run order. runLo/runHi are already direction-adjusted.
func (o *Ordered) bounds(run []entry, runLo, runHi *storage.Value, loInc, hiInc bool) (int, int) {
	from, to := 0, len(run)
	if runLo != nil {
		from = sort.Search(len(run), func(i int) bool {
			c := o.cmp0(run[i].key[0], *runLo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	if runHi != nil {
		to = sort.Search(len(run), func(i int) bool {
			c := o.cmp0(run[i].key[0], *runHi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if to < from {
		to = from
	}
	return from, to
}

// runWindows computes both runs' probe windows. The Lo/Hi bounds are in
// VALUE space (lo ≤ value ≤ hi); when the leading column is DESC the
// value window maps to run positions in reverse, so the bounds swap.
func (o *Ordered) runWindows(lo, hi *storage.Value, loInc, hiInc bool) (bf, bt, df, dt int) {
	runLo, runHi, rli, rhi := lo, hi, loInc, hiInc
	if o.dirs[0] {
		runLo, runHi, rli, rhi = hi, lo, hiInc, loInc
	}
	bf, bt = o.bounds(o.base, runLo, runHi, rli, rhi)
	df, dt = o.bounds(o.delta, runLo, runHi, rli, rhi)
	return
}

// Range returns the row IDs whose leading key column falls in the probe
// window, in index order (per-column directions, ties by row ID). Nil
// bounds are open.
func (o *Ordered) Range(lo, hi *storage.Value, loInc, hiInc bool) []int {
	bf, bt, df, dt := o.runWindows(lo, hi, loInc, hiInc)
	a, b := o.base[bf:bt], o.delta[df:dt]
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if o.less(a[i], b[j]) {
			out = append(out, a[i].row)
			i++
		} else {
			out = append(out, b[j].row)
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, a[i].row)
	}
	for ; j < len(b); j++ {
		out = append(out, b[j].row)
	}
	return out
}

// RangeWithKeys is Range carrying each row's full key tuple — the
// index-only-scan hook (storage.KeyRanger): a covered projection is
// served from these keys without touching table data. The returned key
// slices alias index storage and must not be mutated.
func (o *Ordered) RangeWithKeys(lo, hi *storage.Value, loInc, hiInc bool) ([]int, [][]storage.Value) {
	bf, bt, df, dt := o.runWindows(lo, hi, loInc, hiInc)
	a, b := o.base[bf:bt], o.delta[df:dt]
	ids := make([]int, 0, len(a)+len(b))
	keys := make([][]storage.Value, 0, len(a)+len(b))
	i, j := 0, 0
	take := func(e entry) {
		ids = append(ids, e.row)
		keys = append(keys, e.key)
	}
	for i < len(a) && j < len(b) {
		if o.less(a[i], b[j]) {
			take(a[i])
			i++
		} else {
			take(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		take(a[i])
	}
	for ; j < len(b); j++ {
		take(b[j])
	}
	return ids, keys
}

// Lookup returns the row IDs whose full key equals key, ascending by
// row ID.
func (o *Ordered) Lookup(key []storage.Value) []int {
	if len(key) != len(o.cols) || keyHasNull(key) {
		return nil
	}
	var out []int
	probe := entry{key: key, row: -1}
	for _, run := range []*[]entry{&o.base, &o.delta} {
		r := *run
		for i := o.insertPos(r, probe); i < len(r) && o.compareKeys(r[i].key, key) == 0; i++ {
			out = append(out, r[i].row)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Ints(out)
	return out
}
