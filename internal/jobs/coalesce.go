package jobs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Coalescer batches submissions that arrive close together in time.
//
// Schema expansions of the same table tend to arrive in bursts — a
// dashboard query touching four missing genre columns fires four
// expansions within milliseconds — and each one that runs alone pays the
// crowd marketplace's fixed per-job overhead. The coalescer holds
// submissions of the same GROUP (e.g. the table) open for a short batching
// window; when the window closes, the whole group is sealed and handed to
// one BatchRunFunc, which can merge the members' sampling phases into
// shared HIT groups and charge the marketplace once.
//
// Every member still gets its own *Job — polling, per-job ledgers, and
// singleflight deduplication work exactly as for scheduler-run jobs; only
// execution is shared. The coalescer stays as ignorant of SQL, tables,
// and crowds as the scheduler: groups are opaque strings and payloads are
// opaque values.

// BatchMember is one submission inside a sealed batch.
type BatchMember struct {
	// Payload is the opaque value passed to Submit.
	Payload any

	job      *Job
	sched    *Scheduler
	finished atomic.Bool
}

// Job returns the member's job handle.
func (m *BatchMember) Job() *Job { return m.job }

// Ctl returns the member's control handle for phase/charge reporting.
func (m *BatchMember) Ctl() *Ctl { return &Ctl{job: m.job} }

// Finish completes the member's job with the given result or error.
// Only the first call has effect; the batch runner uses this to complete
// members one by one as their shares of the batch resolve.
func (m *BatchMember) Finish(result any, err error) {
	if !m.finished.CompareAndSwap(false, true) {
		return
	}
	m.sched.finish(m.job, result, err)
}

// Finished reports whether Finish has been called.
func (m *BatchMember) Finished() bool { return m.finished.Load() }

// BatchRunFunc executes one sealed batch. It must call Finish on every
// member (members it leaves unfinished are failed by the coalescer); a
// panic fails every unfinished member rather than killing the process.
type BatchRunFunc func(members []*BatchMember)

// Coalescer groups submissions into batches by key and time window.
//
// The scheduler's resource bounds carry over: at most as many batches
// execute concurrently as the scheduler has pool workers (sem), and at
// most queue-depth members may be admitted-but-not-yet-running before
// Submit sheds load with ErrQueueFull — so enabling batching never
// bypasses the backpressure the worker pool provides.
type Coalescer struct {
	sched  *Scheduler
	window time.Duration
	run    BatchRunFunc
	sem    chan struct{} // bounds concurrently-executing batches
	depth  int           // admission bound on pending members

	mu      sync.Mutex
	closed  bool
	pending int // members admitted but whose batch has not started
	groups  map[string]*batchGroup
	wg      sync.WaitGroup
}

type batchGroup struct {
	members []*BatchMember
	timer   *time.Timer
	sealed  bool
}

// NewCoalescer wires a batching window onto a scheduler. Jobs created
// through the coalescer share the scheduler's ID space, history, and
// singleflight map with directly-submitted jobs. A non-positive window
// gets a modest default (25ms): long enough to catch a burst of queries,
// short enough to be invisible next to simulated crowd minutes.
func NewCoalescer(sched *Scheduler, window time.Duration, run BatchRunFunc) *Coalescer {
	if window <= 0 {
		window = 25 * time.Millisecond
	}
	return &Coalescer{
		sched: sched, window: window, run: run,
		sem:    make(chan struct{}, sched.workers),
		depth:  cap(sched.queue),
		groups: map[string]*batchGroup{},
	}
}

// Window returns the batching window.
func (c *Coalescer) Window() time.Duration { return c.window }

// Pending returns the number of members admitted but whose batch has not
// started. Speculative submitters use it as a headroom check so that
// best-effort work never fills the admission bound and starves demand
// submissions with ErrQueueFull.
func (c *Coalescer) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// Depth returns the admission bound on pending members.
func (c *Coalescer) Depth() int { return c.depth }

// Submit enqueues payload under the batch group and the singleflight key.
// If a job for key is already queued, batched, or running, that job is
// returned with created=false (the submission joins it); otherwise a new
// job joins the group's open batch, creating one — and starting its
// window timer — if none is open. When the admission bound is reached
// (too many members waiting on batch starts), Submit returns
// ErrQueueFull like the scheduler's own admission queue would.
func (c *Coalescer) Submit(group, key string, payload any) (job *Job, created bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, ErrClosed
	}
	if c.pending >= c.depth {
		return nil, false, ErrQueueFull
	}
	j, created, err := c.sched.adopt(key)
	if err != nil || !created {
		return j, created, err
	}
	c.pending++
	g := c.groups[group]
	if g == nil {
		g = &batchGroup{}
		c.groups[group] = g
		grp := group
		g.timer = time.AfterFunc(c.window, func() { c.flush(grp) })
	}
	g.members = append(g.members, &BatchMember{Payload: payload, job: j, sched: c.sched})
	return j, true, nil
}

// flush seals the named group and runs its batch on a fresh goroutine.
func (c *Coalescer) flush(group string) {
	c.mu.Lock()
	g := c.groups[group]
	if g == nil || g.sealed {
		c.mu.Unlock()
		return
	}
	g.sealed = true
	delete(c.groups, group)
	members := g.members
	c.wg.Add(1)
	c.mu.Unlock()

	go c.runBatch(members)
}

func (c *Coalescer) runBatch(members []*BatchMember) {
	defer c.wg.Done()
	// Gate on the worker-pool-sized semaphore: sealed batches beyond the
	// pool size wait here instead of engaging the crowd all at once.
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	c.mu.Lock()
	c.pending -= len(members)
	c.mu.Unlock()

	now := time.Now()
	for _, m := range members {
		m.job.mu.Lock()
		m.job.started = now
		m.job.mu.Unlock()
	}
	defer func() {
		r := recover()
		for _, m := range members {
			if !m.Finished() {
				if r != nil {
					m.Finish(nil, fmt.Errorf("jobs: batch run panicked: %v", r))
				} else {
					m.Finish(nil, fmt.Errorf("jobs: batch run ended without finishing job %s", m.job.id))
				}
			}
		}
	}()
	c.run(members)
}

// Flush seals and runs every open group immediately (without waiting for
// their windows) and blocks until all running batches finish.
func (c *Coalescer) Flush() {
	c.mu.Lock()
	var names []string
	for name, g := range c.groups {
		g.timer.Stop()
		names = append(names, name)
	}
	c.mu.Unlock()
	for _, name := range names {
		c.flush(name)
	}
	c.wg.Wait()
}

// Close flushes all pending batches, waits for running ones, and rejects
// further submissions. Safe to call more than once.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.Flush()
}
