package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectBatches wires a Coalescer whose run func records every sealed
// batch (as payload slices) and finishes each member with its payload.
func collectBatches(sched *Scheduler, window time.Duration) (*Coalescer, *[][]any, *sync.Mutex) {
	var mu sync.Mutex
	var batches [][]any
	c := NewCoalescer(sched, window, func(members []*BatchMember) {
		var payloads []any
		for _, m := range members {
			payloads = append(payloads, m.Payload)
		}
		mu.Lock()
		batches = append(batches, payloads)
		mu.Unlock()
		for _, m := range members {
			m.Ctl().Phase(StateSampling)
			m.Finish(m.Payload, nil)
		}
	})
	return c, &batches, &mu
}

// TestCoalescerMergesWindow: members submitted within one window for the
// same group run as ONE batch; each still gets its own job and result.
func TestCoalescerMergesWindow(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	c, batches, mu := collectBatches(sched, 40*time.Millisecond)
	defer c.Close()

	var jobsList []*Job
	for i := 0; i < 4; i++ {
		j, created, err := c.Submit("movies", fmt.Sprintf("movies.col%d", i), i)
		if err != nil || !created {
			t.Fatalf("submit %d: created=%v err=%v", i, created, err)
		}
		jobsList = append(jobsList, j)
	}
	for i, j := range jobsList {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res != i {
			t.Fatalf("job %d result = %v, want %d", i, res, i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*batches) != 1 {
		t.Fatalf("ran %d batches, want 1 (window failed to merge)", len(*batches))
	}
	if len((*batches)[0]) != 4 {
		t.Fatalf("batch had %d members, want 4", len((*batches)[0]))
	}
}

// TestCoalescerGroupIsolation: different groups never share a batch.
func TestCoalescerGroupIsolation(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	c, batches, mu := collectBatches(sched, 30*time.Millisecond)
	defer c.Close()

	j1, _, _ := c.Submit("movies", "movies.a", "a")
	j2, _, _ := c.Submit("books", "books.a", "b")
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*batches) != 2 {
		t.Fatalf("ran %d batches, want 2 (groups merged)", len(*batches))
	}
}

// TestCoalescerSingleflight: re-submitting a key while its job is pending
// joins the existing job — across the coalescer AND the plain scheduler.
func TestCoalescerSingleflight(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	c, _, _ := collectBatches(sched, 30*time.Millisecond)
	defer c.Close()

	j1, created1, _ := c.Submit("movies", "movies.a", 1)
	j2, created2, _ := c.Submit("movies", "movies.a", 2)
	if !created1 || created2 {
		t.Fatalf("created = %v/%v, want true/false", created1, created2)
	}
	if j1 != j2 {
		t.Fatal("duplicate key produced a second job")
	}
	// The scheduler's own Submit must also see the batched job in flight.
	j3, created3, err := sched.Submit("movies.a", func(ctl *Ctl) (any, error) { return 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	if created3 || j3 != j1 {
		t.Fatal("scheduler Submit did not join the batched job")
	}
	if res, err := j1.Wait(context.Background()); err != nil || res != 1 {
		t.Fatalf("res=%v err=%v, want 1/nil", res, err)
	}
}

// TestCoalescerFailsUnfinishedMembers: a run func that forgets members or
// panics must still complete every job (with an error), never hang them.
func TestCoalescerFailsUnfinishedMembers(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	var calls atomic.Int32
	c := NewCoalescer(sched, 10*time.Millisecond, func(members []*BatchMember) {
		if calls.Add(1) == 2 {
			panic("boom")
		}
		// First batch: finish nobody.
	})
	defer c.Close()

	j1, _, _ := c.Submit("g1", "g1.a", nil)
	if _, err := j1.Wait(context.Background()); err == nil {
		t.Fatal("unfinished member completed without error")
	}
	j2, _, _ := c.Submit("g2", "g2.a", nil)
	if _, err := j2.Wait(context.Background()); err == nil {
		t.Fatal("panicked batch left member without error")
	}
	if st := j2.Status(); st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
}

// TestCoalescerCloseFlushes: Close runs pending batches instead of
// dropping them, then rejects new submissions.
func TestCoalescerCloseFlushes(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	c, batches, mu := collectBatches(sched, time.Hour) // window never fires on its own
	j, _, _ := c.Submit("movies", "movies.a", "x")
	c.Close()
	select {
	case <-j.Done():
	default:
		t.Fatal("Close returned with batch still unfinished")
	}
	mu.Lock()
	n := len(*batches)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("ran %d batches, want 1", n)
	}
	if _, _, err := c.Submit("movies", "movies.b", "y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestCoalescerBackpressure: admissions beyond the scheduler's queue
// depth are shed with ErrQueueFull — batching must not bypass the
// bounded-admission contract the HTTP layer's 503 path relies on.
func TestCoalescerBackpressure(t *testing.T) {
	sched := NewScheduler(1, 2)
	defer sched.Close()
	block := make(chan struct{})
	c := NewCoalescer(sched, time.Hour, func(members []*BatchMember) {
		<-block
		for _, m := range members {
			m.Finish(nil, nil)
		}
	})
	if _, _, err := c.Submit("g", "g.a", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit("g", "g.b", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit("g", "g.c", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull at depth 2", err)
	}
	close(block)
	c.Close()
}

// TestCoalescerBoundsConcurrentBatches: no more batches execute at once
// than the scheduler has pool workers.
func TestCoalescerBoundsConcurrentBatches(t *testing.T) {
	sched := NewScheduler(1, 16)
	defer sched.Close()
	var running, maxRunning atomic.Int32
	c := NewCoalescer(sched, 5*time.Millisecond, func(members []*BatchMember) {
		cur := running.Add(1)
		for {
			old := maxRunning.Load()
			if cur <= old || maxRunning.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		running.Add(-1)
		for _, m := range members {
			m.Finish(nil, nil)
		}
	})
	defer c.Close()
	var handles []*Job
	for i := 0; i < 4; i++ {
		j, created, err := c.Submit(fmt.Sprintf("g%d", i), fmt.Sprintf("g%d.a", i), nil)
		if err != nil || !created {
			t.Fatalf("submit %d: created=%v err=%v", i, created, err)
		}
		handles = append(handles, j)
	}
	for i, j := range handles {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if got := maxRunning.Load(); got != 1 {
		t.Fatalf("max concurrent batches = %d, want 1 (pool size)", got)
	}
}

// TestCoalescerLedgerAndHistory: batched jobs appear in the scheduler's
// history and their Ctl charges land in per-job ledgers and Totals.
func TestCoalescerLedgerAndHistory(t *testing.T) {
	sched := NewScheduler(2, 16)
	defer sched.Close()
	c := NewCoalescer(sched, 10*time.Millisecond, func(members []*BatchMember) {
		for i, m := range members {
			m.Ctl().Charge(10*(i+1), float64(i+1), 1)
			m.Finish(nil, nil)
		}
	})
	defer c.Close()

	ja, _, _ := c.Submit("movies", "movies.a", nil)
	jb, _, _ := c.Submit("movies", "movies.b", nil)
	_, _ = ja.Wait(context.Background())
	_, _ = jb.Wait(context.Background())

	if len(sched.Jobs()) != 2 {
		t.Fatalf("history has %d jobs, want 2", len(sched.Jobs()))
	}
	tot := sched.Totals()
	if tot.Judgments != 30 || tot.Cost != 3 || tot.Charges != 2 {
		t.Fatalf("totals = %+v, want 30 judgments, $3, 2 charges", tot)
	}
	if st := ja.Status(); st.Ledger.Judgments != 10 {
		t.Fatalf("job a ledger = %+v, want 10 judgments", st.Ledger)
	}
}
