package jobs

import "crowddb/internal/obs"

// Expansion-job metric families (catalog: DESIGN.md §17). Queue depth is
// the backpressure signal (ErrQueueFull → 503 fires when it hits the
// configured bound); the phase histogram attributes where expansion
// wall-clock goes — queued wait vs. sampling vs. training vs. filling —
// which for crowd work is dominated by simulated elicitation minutes.
var (
	mQueueDepth = obs.Default.Gauge("crowddb_jobs_queue_depth",
		"Expansion jobs admitted but not yet picked up by a worker.")
	mJobsTotal = obs.Default.CounterVec("crowddb_jobs_total",
		"Expansion jobs by terminal state (done, failed).", "state")
	mPhaseSeconds = obs.Default.HistogramVec("crowddb_expansion_phase_seconds",
		"Time spent in each expansion lifecycle phase, in seconds.", nil, "phase")
)
