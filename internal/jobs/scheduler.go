// Package jobs implements the asynchronous expansion-job subsystem: a
// worker-pool scheduler with a typed job lifecycle, singleflight
// deduplication, and per-job cost accounting.
//
// Schema expansion is slow and expensive — a crowd job takes simulated
// minutes and costs real dollars — so it must never run on a query
// goroutine's critical path, and N concurrent queries touching the same
// missing column must trigger exactly one crowd job. The scheduler is
// deliberately generic: it runs opaque RunFuncs and knows nothing about
// SQL, tables, or crowds. internal/core submits expansion closures; a
// future PR can reuse the same pool for space re-training or cleaning
// sweeps.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job lifecycle phase. Jobs move strictly forward:
// queued → sampling → training → filling → done|failed. CROWD-method
// expansions skip training (there is no model); failures may occur in any
// phase.
type State string

const (
	StateQueued   State = "queued"
	StateSampling State = "sampling"
	StateTraining State = "training"
	StateFilling  State = "filling"
	StateDone     State = "done"
	StateFailed   State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Ledger accounts the crowd work charged to one job.
type Ledger struct {
	Judgments int
	Cost      float64
	Minutes   float64
	Charges   int
}

// Ctl is handed to a running job so it can report phase transitions and
// crowd spending without knowing about the scheduler.
type Ctl struct{ job *Job }

// Phase records a lifecycle transition. Terminal states are owned by the
// scheduler and ignored here.
func (c *Ctl) Phase(s State) {
	if s.Terminal() {
		return
	}
	j := c.job
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || s == j.state {
		return
	}
	j.observePhaseLocked()
	j.state = s
}

// observePhaseLocked books the time spent in the job's current phase
// into the per-phase histogram and restarts the phase clock. Caller
// holds j.mu. The first transition measures from creation, so queued
// wait is attributed to the "queued" phase.
func (j *Job) observePhaseLocked() {
	now := time.Now()
	from := j.phaseAt
	if from.IsZero() {
		from = j.created
	}
	mPhaseSeconds.With(string(j.state)).Observe(now.Sub(from).Seconds())
	j.phaseAt = now
}

// Charge adds crowd work to the job's ledger.
func (c *Ctl) Charge(judgments int, cost, minutes float64) {
	c.job.mu.Lock()
	defer c.job.mu.Unlock()
	c.job.ledger.Judgments += judgments
	c.job.ledger.Cost += cost
	c.job.ledger.Minutes += minutes
	c.job.ledger.Charges++
}

// RunFunc performs the job's work. The result is opaque to the scheduler
// (internal/core returns its *ExpansionReport through it).
type RunFunc func(ctl *Ctl) (any, error)

// Job is one scheduled unit of work. All fields are guarded by mu; readers
// use Status for a consistent snapshot and Done/Wait for completion.
type Job struct {
	id      string
	key     string
	created time.Time
	done    chan struct{}

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	phaseAt  time.Time // start of the current phase, for mPhaseSeconds
	result   any
	err      error
	ledger   Ledger
	origin   string
}

// ID returns the job's unique identifier.
func (j *Job) ID() string { return j.id }

// Key returns the singleflight key the job was submitted under.
func (j *Job) Key() string { return j.key }

// SetOrigin tags the job with what triggered it (demand | speculative |
// admin). The scheduler only carries the tag — it is set by the layer
// that knows the provenance and surfaced in Status for spend auditing.
// Singleflight callers joining an existing job must not re-tag it, so
// only the creator (created=true from Submit, or the Coalescer's adopt
// path) should call this.
func (j *Job) SetOrigin(origin string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.origin = origin
}

// Origin returns the job's provenance tag ("" if never set).
func (j *Job) Origin() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.origin
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is cancelled, then returns the
// job's result and error.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Result returns the job's result and error; valid only after Done.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Status is a point-in-time snapshot of a job, safe to serialize.
type Status struct {
	ID       string    `json:"id"`
	Key      string    `json:"key"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Error    string    `json:"error,omitempty"`
	Ledger   Ledger    `json:"ledger"`
	// Origin records what triggered the job: demand (a user query hit a
	// missing column), speculative (the workload predictor pre-expanded),
	// or admin (/admin/expand). Empty for jobs predating the tag.
	Origin string `json:"origin,omitempty"`
	// Result carries the job's outcome once terminal (nil otherwise).
	Result any `json:"result,omitempty"`
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Key: j.key, State: j.state,
		Created: j.created, Started: j.started, Finished: j.finished,
		Ledger: j.ledger, Origin: j.origin,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state.Terminal() {
		st.Result = j.result
	}
	return st
}

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; callers should retry later (the HTTP layer maps it to 503).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: scheduler closed")

type task struct {
	job *Job
	run RunFunc
}

// Scheduler runs jobs on a fixed worker pool with a bounded queue.
// Submissions are deduplicated by key while a job for that key is queued
// or running (singleflight); once it finishes, the key is free again so
// explicit re-expansion stays possible.
type Scheduler struct {
	queue chan task
	wg    sync.WaitGroup

	workers int

	// OnTerminal, when set, is invoked (on the worker goroutine) after a
	// job reaches a terminal state and its Done channel is closed. The
	// durability layer uses it to log a completion record so a finished
	// expansion is never re-elicited after a restart. Set it before the
	// first Submit; it is not synchronized afterwards.
	OnTerminal func(Status)

	mu       sync.Mutex
	started  bool
	closed   bool
	seq      int
	inflight map[string]*Job // key → active job (singleflight window)
	jobs     map[string]*Job // id → job, kept after completion for polling
	order    []string        // job IDs in submission order
}

// NewScheduler creates a scheduler with the given worker-pool size and
// queue depth. Non-positive values get modest defaults (2 workers, 64
// queued jobs). Workers start lazily on first Submit, so constructing a
// scheduler is free.
func NewScheduler(workers, depth int) *Scheduler {
	if workers <= 0 {
		workers = 2
	}
	if depth <= 0 {
		depth = 64
	}
	return &Scheduler{workers: workers, queue: make(chan task, depth)}
}

// Submit enqueues run under the singleflight key. If a job for key is
// already queued or running, that job is returned with created=false and
// run is discarded — this is how N concurrent queries on the same missing
// column share one crowd job. Otherwise a new job is created (created=true).
func (s *Scheduler) Submit(key string, run RunFunc) (job *Job, created bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if j, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return j, false, nil
	}
	j := s.newJobLocked(key)
	select {
	case s.queue <- task{job: j, run: run}:
		mQueueDepth.Inc()
	default:
		s.seq--
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	s.registerLocked(j)
	if !s.started {
		s.started = true
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	s.mu.Unlock()
	return j, true, nil
}

// newJobLocked allocates the next job for key. Caller holds s.mu and must
// either registerLocked the job or roll s.seq back.
func (s *Scheduler) newJobLocked(key string) *Job {
	s.seq++
	return &Job{
		id:      fmt.Sprintf("job-%d", s.seq),
		key:     key,
		created: time.Now(),
		done:    make(chan struct{}),
		state:   StateQueued,
	}
}

// registerLocked installs a new job into the singleflight map, the ID
// index, and the history. Caller holds s.mu.
func (s *Scheduler) registerLocked(j *Job) {
	if s.inflight == nil {
		s.inflight = map[string]*Job{}
		s.jobs = map[string]*Job{}
	}
	s.inflight[j.key] = j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
}

// maxRetainedJobs bounds the completed-job history kept for polling; a
// long-running server otherwise accumulates every report ever produced.
// Active (non-terminal) jobs are never evicted.
const maxRetainedJobs = 1024

// evictLocked drops the oldest terminal jobs once the history exceeds
// maxRetainedJobs. Caller holds s.mu.
func (s *Scheduler) evictLocked() {
	excess := len(s.order) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		evictable := excess > 0 && func() bool {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.state.Terminal()
		}()
		if evictable {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.execute(t)
	}
}

func (s *Scheduler) execute(t task) {
	mQueueDepth.Dec()
	j := t.job
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()

	result, err := s.runSafely(t)
	s.finish(j, result, err)
}

// finish drives a job to its terminal state: it records the outcome,
// releases the singleflight key, runs the completion hook, and closes
// Done. Shared by worker-executed jobs and externally-driven (batched)
// ones, so both get identical completion semantics.
func (s *Scheduler) finish(j *Job, result any, err error) {
	j.mu.Lock()
	j.result, j.err = result, err
	j.finished = time.Now()
	if !j.state.Terminal() {
		j.observePhaseLocked() // close out the last running phase
	}
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	mJobsTotal.With(string(j.state)).Inc()
	j.mu.Unlock()

	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	// The completion hook runs BEFORE Done is closed: a client woken by
	// Done (and about to consume the expansion) must never observe a
	// completion whose durable record hasn't been written yet — a crash
	// in between would re-elicit work the client already consumed.
	if s.OnTerminal != nil {
		s.OnTerminal(j.Status())
	}
	close(j.done)
}

// adopt creates and registers a job whose execution is driven externally
// (by a Coalescer batch) instead of by the worker pool. It shares the
// singleflight map with Submit: if a job for key is already queued,
// batched, or running, that job is returned with created=false. The
// caller owns completion via finish.
func (s *Scheduler) adopt(key string) (job *Job, created bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if j, ok := s.inflight[key]; ok {
		return j, false, nil
	}
	j := s.newJobLocked(key)
	s.registerLocked(j)
	return j, true, nil
}

// RestoredJob describes one terminal job recovered from durable storage,
// for Restore.
type RestoredJob struct {
	ID       string
	Key      string
	State    State
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      error
	Result   any
	Ledger   Ledger
	Origin   string
}

// Restore repopulates the completed-job history (IDs, states, per-job
// ledgers) from jobs recovered off the WAL, so polling and per-job cost
// accounting survive a restart. Non-terminal entries are skipped — a job
// that was mid-flight when the process died left no completion record and
// simply re-runs via singleflight on the next query. Jobs whose ID is
// already present are ignored. The internal ID sequence advances past
// every restored ID so new jobs never collide.
func (s *Scheduler) Restore(restored []RestoredJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs == nil {
		s.inflight = map[string]*Job{}
		s.jobs = map[string]*Job{}
	}
	for _, r := range restored {
		if !r.State.Terminal() {
			continue
		}
		if _, dup := s.jobs[r.ID]; dup {
			continue
		}
		j := &Job{
			id: r.ID, key: r.Key, created: r.Created, done: make(chan struct{}),
			state: r.State, started: r.Started, finished: r.Finished,
			result: r.Result, err: r.Err, ledger: r.Ledger, origin: r.Origin,
		}
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		var n int
		if _, err := fmt.Sscanf(r.ID, "job-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	s.evictLocked()
}

// runSafely converts a panicking RunFunc into a failed job instead of
// killing the worker (a crashed expansion must not take the pool down).
func (s *Scheduler) runSafely(t task) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job %s panicked: %v", t.job.id, r)
		}
	}()
	return t.run(&Ctl{job: t.job})
}

// Get returns the job with the given ID, including finished ones.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns status snapshots of every retained job, in submission
// order.
func (s *Scheduler) Jobs() []Status {
	s.mu.Lock()
	list := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(list))
	for _, j := range list {
		out = append(out, j.Status())
	}
	return out
}

// Totals sums the per-job ledgers of all jobs.
func (s *Scheduler) Totals() Ledger {
	var sum Ledger
	for _, st := range s.Jobs() {
		sum.Judgments += st.Ledger.Judgments
		sum.Cost += st.Ledger.Cost
		sum.Minutes += st.Ledger.Minutes
		sum.Charges += st.Ledger.Charges
	}
	return sum
}

// Close stops accepting new jobs, drains the queue, and waits for running
// jobs to finish. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	close(s.queue)
	if started {
		s.wg.Wait()
	}
}
