package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobLifecycle(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	job, created, err := s.Submit("movies.comedy", func(ctl *Ctl) (any, error) {
		ctl.Phase(StateSampling)
		ctl.Charge(100, 0.25, 2.5)
		ctl.Phase(StateTraining)
		ctl.Phase(StateFilling)
		return "report", nil
	})
	if err != nil || !created {
		t.Fatalf("Submit: created=%v err=%v", created, err)
	}
	result, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result != "report" {
		t.Fatalf("result = %v", result)
	}
	st := job.Status()
	if st.State != StateDone {
		t.Fatalf("state = %s", st.State)
	}
	if st.Ledger.Judgments != 100 || st.Ledger.Cost != 0.25 || st.Ledger.Charges != 1 {
		t.Fatalf("ledger = %+v", st.Ledger)
	}
	if st.Result != "report" {
		t.Fatalf("status result = %v", st.Result)
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatal("missing timestamps")
	}
}

func TestJobFailureAndPanic(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	boom := errors.New("boom")
	job, _, err := s.Submit("a", func(ctl *Ctl) (any, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := job.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("status = %+v", st)
	}

	// A panicking job fails cleanly and the worker survives to run more.
	pjob, _, err := s.Submit("b", func(ctl *Ctl) (any, error) { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pjob.Wait(context.Background()); err == nil {
		t.Fatal("panic must surface as an error")
	}
	after, _, err := s.Submit("c", func(ctl *Ctl) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, err := after.Wait(context.Background()); err != nil || v != 42 {
		t.Fatalf("post-panic job: %v %v", v, err)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := NewScheduler(2, 16)
	defer s.Close()

	release := make(chan struct{})
	var runs atomic.Int32
	run := func(ctl *Ctl) (any, error) {
		runs.Add(1)
		<-release
		return nil, nil
	}

	const n = 32
	jobSet := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := s.Submit("movies.comedy", run)
			if err != nil {
				t.Error(err)
				return
			}
			jobSet[i] = j
		}(i)
	}
	wg.Wait()
	close(release)
	for _, j := range jobSet {
		if j != jobSet[0] {
			t.Fatal("concurrent submits under one key must share one job")
		}
	}
	jobSet[0].Wait(context.Background())
	if got := runs.Load(); got != 1 {
		t.Fatalf("run executed %d times, want 1", got)
	}

	// After completion the key is free: a new submit creates a new job.
	j2, created, err := s.Submit("movies.comedy", func(ctl *Ctl) (any, error) { return nil, nil })
	if err != nil || !created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if j2 == jobSet[0] {
		t.Fatal("finished job must not absorb new submissions")
	}
}

func TestWaitContextCancel(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	release := make(chan struct{})
	job, _, err := s.Submit("slow", func(ctl *Ctl) (any, error) { <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFullAndClose(t *testing.T) {
	s := NewScheduler(1, 1)

	release := make(chan struct{})
	block := func(ctl *Ctl) (any, error) { <-release; return nil, nil }
	first, _, err := s.Submit("k0", block)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot, possibly racing the worker dequeue of
	// k0; submit until a distinct key sticks in the queue.
	var queued *Job
	for i := 1; queued == nil; i++ {
		j, _, err := s.Submit(fmt.Sprintf("k%d", i), block)
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		queued = j
	}
	// Now one more distinct key must bounce with ErrQueueFull.
	bounced := false
	for i := 100; i < 110; i++ {
		if _, _, err := s.Submit(fmt.Sprintf("k%d", i), block); errors.Is(err, ErrQueueFull) {
			bounced = true
			break
		}
	}
	if !bounced {
		t.Fatal("bounded queue never reported ErrQueueFull")
	}

	close(release)
	first.Wait(context.Background())
	s.Close()
	if _, _, err := s.Submit("late", block); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v", err)
	}
	// All accepted jobs finished at Close.
	for _, st := range s.Jobs() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left in state %s after Close", st.ID, st.State)
		}
	}
}

// TestJobsListRacesSubmit hammers Jobs()/Get() while submissions land —
// a regression test for an unsynchronized map read in Jobs (run under
// -race in CI).
func TestJobsListRacesSubmit(t *testing.T) {
	s := NewScheduler(2, 256)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Jobs()
			s.Get("job-1")
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := s.Submit(fmt.Sprintf("k%d", i), func(ctl *Ctl) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestJobsOrderAndTotals(t *testing.T) {
	s := NewScheduler(2, 16)
	defer s.Close()

	for i := 0; i < 3; i++ {
		cost := float64(i + 1)
		_, _, err := s.Submit(fmt.Sprintf("key-%d", i), func(ctl *Ctl) (any, error) {
			ctl.Charge(1, cost, 0)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		done := 0
		for _, st := range s.Jobs() {
			if st.State.Terminal() {
				done++
			}
		}
		if done == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("jobs did not finish")
		case <-time.After(time.Millisecond):
		}
	}
	list := s.Jobs()
	if len(list) != 3 {
		t.Fatalf("len = %d", len(list))
	}
	for i, st := range list {
		if st.Key != fmt.Sprintf("key-%d", i) {
			t.Fatalf("order violated: %d → %s", i, st.Key)
		}
	}
	tot := s.Totals()
	if tot.Judgments != 3 || tot.Cost != 6 || tot.Charges != 3 {
		t.Fatalf("totals = %+v", tot)
	}
}
