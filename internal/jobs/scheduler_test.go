package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobLifecycle(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	job, created, err := s.Submit("movies.comedy", func(ctl *Ctl) (any, error) {
		ctl.Phase(StateSampling)
		ctl.Charge(100, 0.25, 2.5)
		ctl.Phase(StateTraining)
		ctl.Phase(StateFilling)
		return "report", nil
	})
	if err != nil || !created {
		t.Fatalf("Submit: created=%v err=%v", created, err)
	}
	result, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result != "report" {
		t.Fatalf("result = %v", result)
	}
	st := job.Status()
	if st.State != StateDone {
		t.Fatalf("state = %s", st.State)
	}
	if st.Ledger.Judgments != 100 || st.Ledger.Cost != 0.25 || st.Ledger.Charges != 1 {
		t.Fatalf("ledger = %+v", st.Ledger)
	}
	if st.Result != "report" {
		t.Fatalf("status result = %v", st.Result)
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatal("missing timestamps")
	}
}

func TestJobFailureAndPanic(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	boom := errors.New("boom")
	job, _, err := s.Submit("a", func(ctl *Ctl) (any, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := job.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("status = %+v", st)
	}

	// A panicking job fails cleanly and the worker survives to run more.
	pjob, _, err := s.Submit("b", func(ctl *Ctl) (any, error) { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pjob.Wait(context.Background()); err == nil {
		t.Fatal("panic must surface as an error")
	}
	after, _, err := s.Submit("c", func(ctl *Ctl) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, err := after.Wait(context.Background()); err != nil || v != 42 {
		t.Fatalf("post-panic job: %v %v", v, err)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := NewScheduler(2, 16)
	defer s.Close()

	release := make(chan struct{})
	var runs atomic.Int32
	run := func(ctl *Ctl) (any, error) {
		runs.Add(1)
		<-release
		return nil, nil
	}

	const n = 32
	jobSet := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := s.Submit("movies.comedy", run)
			if err != nil {
				t.Error(err)
				return
			}
			jobSet[i] = j
		}(i)
	}
	wg.Wait()
	close(release)
	for _, j := range jobSet {
		if j != jobSet[0] {
			t.Fatal("concurrent submits under one key must share one job")
		}
	}
	jobSet[0].Wait(context.Background())
	if got := runs.Load(); got != 1 {
		t.Fatalf("run executed %d times, want 1", got)
	}

	// After completion the key is free: a new submit creates a new job.
	j2, created, err := s.Submit("movies.comedy", func(ctl *Ctl) (any, error) { return nil, nil })
	if err != nil || !created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if j2 == jobSet[0] {
		t.Fatal("finished job must not absorb new submissions")
	}
}

func TestWaitContextCancel(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()

	release := make(chan struct{})
	job, _, err := s.Submit("slow", func(ctl *Ctl) (any, error) { <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFullAndClose(t *testing.T) {
	s := NewScheduler(1, 1)

	release := make(chan struct{})
	block := func(ctl *Ctl) (any, error) { <-release; return nil, nil }
	first, _, err := s.Submit("k0", block)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot, possibly racing the worker dequeue of
	// k0; submit until a distinct key sticks in the queue.
	var queued *Job
	for i := 1; queued == nil; i++ {
		j, _, err := s.Submit(fmt.Sprintf("k%d", i), block)
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		queued = j
	}
	// Now one more distinct key must bounce with ErrQueueFull.
	bounced := false
	for i := 100; i < 110; i++ {
		if _, _, err := s.Submit(fmt.Sprintf("k%d", i), block); errors.Is(err, ErrQueueFull) {
			bounced = true
			break
		}
	}
	if !bounced {
		t.Fatal("bounded queue never reported ErrQueueFull")
	}

	close(release)
	first.Wait(context.Background())
	s.Close()
	if _, _, err := s.Submit("late", block); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v", err)
	}
	// All accepted jobs finished at Close.
	for _, st := range s.Jobs() {
		if !st.State.Terminal() {
			t.Fatalf("job %s left in state %s after Close", st.ID, st.State)
		}
	}
}

// TestJobsListRacesSubmit hammers Jobs()/Get() while submissions land —
// a regression test for an unsynchronized map read in Jobs (run under
// -race in CI).
func TestJobsListRacesSubmit(t *testing.T) {
	s := NewScheduler(2, 256)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Jobs()
			s.Get("job-1")
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := s.Submit(fmt.Sprintf("k%d", i), func(ctl *Ctl) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestJobsOrderAndTotals(t *testing.T) {
	s := NewScheduler(2, 16)
	defer s.Close()

	for i := 0; i < 3; i++ {
		cost := float64(i + 1)
		_, _, err := s.Submit(fmt.Sprintf("key-%d", i), func(ctl *Ctl) (any, error) {
			ctl.Charge(1, cost, 0)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		done := 0
		for _, st := range s.Jobs() {
			if st.State.Terminal() {
				done++
			}
		}
		if done == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("jobs did not finish")
		case <-time.After(time.Millisecond):
		}
	}
	list := s.Jobs()
	if len(list) != 3 {
		t.Fatalf("len = %d", len(list))
	}
	for i, st := range list {
		if st.Key != fmt.Sprintf("key-%d", i) {
			t.Fatalf("order violated: %d → %s", i, st.Key)
		}
	}
	tot := s.Totals()
	if tot.Judgments != 3 || tot.Cost != 6 || tot.Charges != 3 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestRestoreRepopulatesHistory verifies the restart path: terminal jobs
// recovered from the WAL reappear in polling and ledger accounting, new
// IDs do not collide with restored ones, and mid-flight (non-terminal)
// records are dropped so singleflight can re-run them.
func TestRestoreRepopulatesHistory(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()
	s.Restore([]RestoredJob{
		{ID: "job-3", Key: "movies.comedy", State: StateDone,
			Result: "report", Ledger: Ledger{Judgments: 100, Cost: 2.5, Minutes: 8, Charges: 1}},
		{ID: "job-1", Key: "movies.horror", State: StateFailed, Err: errors.New("single-class sample")},
		{ID: "job-2", Key: "movies.drama", State: StateFilling}, // mid-flight at crash: dropped
		{ID: "job-3", Key: "movies.comedy", State: StateDone},   // duplicate: ignored
	})

	list := s.Jobs()
	if len(list) != 2 {
		t.Fatalf("restored %d jobs, want 2: %+v", len(list), list)
	}
	st, ok := s.Get("job-3")
	if !ok {
		t.Fatal("job-3 not restored")
	}
	got := st.Status()
	if got.State != StateDone || got.Ledger.Cost != 2.5 || got.Result != "report" {
		t.Fatalf("job-3 status = %+v", got)
	}
	// Wait must return instantly for a restored terminal job.
	if res, err := st.Wait(context.Background()); err != nil || res != "report" {
		t.Fatalf("Wait on restored job: %v, %v", res, err)
	}
	if fj, ok := s.Get("job-1"); !ok {
		t.Fatal("failed job not restored")
	} else if st := fj.Status(); st.State != StateFailed || st.Error == "" {
		t.Fatalf("failed job status = %+v", st)
	}
	if totals := s.Totals(); totals.Cost != 2.5 || totals.Judgments != 100 {
		t.Fatalf("totals = %+v", totals)
	}

	// A new submission must skip past restored IDs.
	j, created, err := s.Submit("movies.scifi", func(ctl *Ctl) (any, error) { return nil, nil })
	if err != nil || !created {
		t.Fatalf("submit after restore: created=%v err=%v", created, err)
	}
	if j.ID() != "job-4" {
		t.Fatalf("new job ID %s, want job-4", j.ID())
	}
}

// TestOnTerminalFires: the completion hook sees the terminal snapshot,
// after Done is observable.
func TestOnTerminalFires(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Close()
	ch := make(chan Status, 2)
	s.OnTerminal = func(st Status) { ch <- st }

	j, _, err := s.Submit("a", func(ctl *Ctl) (any, error) {
		ctl.Charge(10, 0.5, 1)
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := <-ch
	if st.ID != j.ID() || st.State != StateDone || st.Ledger.Judgments != 10 {
		t.Fatalf("OnTerminal status = %+v", st)
	}
	if _, _, err := s.Submit("b", func(ctl *Ctl) (any, error) { return nil, errors.New("boom") }); err != nil {
		t.Fatal(err)
	}
	st = <-ch
	if st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("OnTerminal failed-status = %+v", st)
	}
}
