// Package lsi implements Latent Semantic Indexing: tf-idf weighting of a
// token corpus followed by truncated SVD, yielding a low-dimensional
// "metadata space" for documents.
//
// The paper (§4.3) uses LSI over factual movie metadata (title, plot,
// actors, director, year, …) as the baseline representation to show that
// perceptual judgments cannot be mined from factual attributes: an SVM
// trained on this space overfits badly. This package reproduces that
// baseline with a sparse tf-idf matrix and subspace iteration for the
// dominant singular subspace.
package lsi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"crowddb/internal/vecmath"
)

// Tokenize lower-cases the text and splits it into letter/digit runs.
func Tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// term is one sparse matrix entry.
type term struct {
	idx    int
	weight float64
}

// Corpus is a tokenized document collection with a fitted vocabulary.
type Corpus struct {
	vocab map[string]int
	terms []string
	// docs[d] is the sparse tf-idf vector of document d, sorted by index.
	docs [][]term
	idf  []float64
}

// NewCorpus builds a tf-idf weighted corpus from raw documents (each a
// token slice). Terms appearing in fewer than minDocFreq documents are
// dropped (hapax pruning keeps the vocabulary sane).
func NewCorpus(docs [][]string, minDocFreq int) (*Corpus, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("lsi: empty corpus")
	}
	if minDocFreq < 1 {
		minDocFreq = 1
	}
	// Document frequencies.
	df := map[string]int{}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, t := range d {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	c := &Corpus{vocab: map[string]int{}}
	var kept []string
	for t, n := range df {
		if n >= minDocFreq {
			kept = append(kept, t)
		}
	}
	sort.Strings(kept) // deterministic vocabulary order
	for _, t := range kept {
		c.vocab[t] = len(c.terms)
		c.terms = append(c.terms, t)
	}
	if len(c.terms) == 0 {
		return nil, fmt.Errorf("lsi: vocabulary empty after pruning (minDocFreq=%d)", minDocFreq)
	}
	c.idf = make([]float64, len(c.terms))
	nDocs := float64(len(docs))
	for t, i := range c.vocab {
		c.idf[i] = math.Log(nDocs/float64(df[t])) + 1
	}

	// tf-idf with L2 normalization per document.
	for _, d := range docs {
		counts := map[int]int{}
		for _, t := range d {
			if i, ok := c.vocab[t]; ok {
				counts[i]++
			}
		}
		vec := make([]term, 0, len(counts))
		for i, n := range counts {
			w := (1 + math.Log(float64(n))) * c.idf[i]
			vec = append(vec, term{idx: i, weight: w})
		}
		sort.Slice(vec, func(a, b int) bool { return vec[a].idx < vec[b].idx })
		var norm float64
		for _, e := range vec {
			norm += e.weight * e.weight
		}
		if norm > 0 {
			norm = 1 / math.Sqrt(norm)
			for i := range vec {
				vec[i].weight *= norm
			}
		}
		c.docs = append(c.docs, vec)
	}
	return c, nil
}

// NumDocs returns the number of documents.
func (c *Corpus) NumDocs() int { return len(c.docs) }

// VocabSize returns the number of retained terms.
func (c *Corpus) VocabSize() int { return len(c.terms) }

// mulV computes dst = A·v (docs × 1) for v in term space.
func (c *Corpus) mulV(v []float64, dst []float64) {
	for d, vec := range c.docs {
		var s float64
		for _, e := range vec {
			s += e.weight * v[e.idx]
		}
		dst[d] = s
	}
}

// mulTU computes dst = Aᵀ·u (terms × 1) for u in document space.
func (c *Corpus) mulTU(u []float64, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for d, vec := range c.docs {
		ud := u[d]
		if ud == 0 {
			continue
		}
		for _, e := range vec {
			dst[e.idx] += e.weight * ud
		}
	}
}

// Embedding is the truncated-SVD document representation.
type Embedding struct {
	// Coords is docs × k: document d's coordinates are Coords.Row(d)
	// (U_k · Σ_k, the standard LSI document embedding).
	Coords *vecmath.Matrix
	// SingularValues are the top-k singular values, descending.
	SingularValues []float64
}

// TruncatedSVD computes the rank-k LSI embedding by orthogonal subspace
// iteration on AᵀA: V ← orth(Aᵀ(A·V)) until the singular values settle.
func (c *Corpus) TruncatedSVD(k, iters int, seed int64) (*Embedding, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lsi: k must be positive, got %d", k)
	}
	if k > len(c.terms) {
		k = len(c.terms)
	}
	if k > len(c.docs) {
		k = len(c.docs)
	}
	if iters <= 0 {
		iters = 30
	}
	rng := rand.New(rand.NewSource(seed))
	nT := len(c.terms)
	nD := len(c.docs)

	// V: term-space basis (k vectors of dim nT).
	V := vecmath.NewMatrix(k, nT)
	V.FillRandom(rng, 1)
	for r := 0; r < k; r++ {
		vecmath.Normalize(V.Row(r))
	}

	Av := make([]float64, nD)
	AtAv := make([]float64, nT)
	for it := 0; it < iters; it++ {
		// Multiply each basis vector by AᵀA.
		for r := 0; r < k; r++ {
			c.mulV(V.Row(r), Av)
			c.mulTU(Av, AtAv)
			copy(V.Row(r), AtAv)
		}
		// Gram–Schmidt orthonormalization.
		for r := 0; r < k; r++ {
			row := V.Row(r)
			for p := 0; p < r; p++ {
				vecmath.AXPY(row, -vecmath.Dot(row, V.Row(p)), V.Row(p))
			}
			if vecmath.Normalize(row) == 0 {
				// Degenerate direction: re-randomize.
				for i := range row {
					row[i] = rng.NormFloat64()
				}
				vecmath.Normalize(row)
			}
		}
	}

	// Singular values σ_r = ‖A v_r‖; document coords = A·V (= UΣ).
	emb := &Embedding{Coords: vecmath.NewMatrix(nD, k), SingularValues: make([]float64, k)}
	for r := 0; r < k; r++ {
		c.mulV(V.Row(r), Av)
		emb.SingularValues[r] = vecmath.Norm(Av)
		for d := 0; d < nD; d++ {
			emb.Coords.Set(d, r, Av[d])
		}
	}
	// Order by descending singular value.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return emb.SingularValues[order[a]] > emb.SingularValues[order[b]]
	})
	sorted := vecmath.NewMatrix(nD, k)
	sv := make([]float64, k)
	for newIdx, oldIdx := range order {
		sv[newIdx] = emb.SingularValues[oldIdx]
		for d := 0; d < nD; d++ {
			sorted.Set(d, newIdx, emb.Coords.At(d, oldIdx))
		}
	}
	emb.Coords = sorted
	emb.SingularValues = sv
	return emb, nil
}
