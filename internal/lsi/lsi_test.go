package lsi

import (
	"math"
	"strings"
	"testing"

	"crowddb/internal/vecmath"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The Birds (1963), dir. Hitchcock!")
	want := []string{"the", "birds", "1963", "dir", "hitchcock"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text must yield no tokens")
	}
	if got := Tokenize("actor_42"); len(got) != 1 || got[0] != "actor_42" {
		t.Fatalf("underscore tokens must survive: %v", got)
	}
}

func docs(texts ...string) [][]string {
	out := make([][]string, len(texts))
	for i, s := range texts {
		out[i] = Tokenize(s)
	}
	return out
}

func TestNewCorpusBasics(t *testing.T) {
	c, err := NewCorpus(docs(
		"rocky boxing underdog sports",
		"rocky ii boxing sequel sports",
		"psycho thriller hitchcock",
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 3 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	if c.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
}

func TestNewCorpusPruning(t *testing.T) {
	c, err := NewCorpus(docs(
		"shared unique1",
		"shared unique2",
	), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.VocabSize() != 1 {
		t.Fatalf("vocab = %d, want 1 (only 'shared')", c.VocabSize())
	}
	if _, err := NewCorpus(docs("a", "b"), 2); err == nil {
		t.Fatal("fully pruned corpus must fail")
	}
	if _, err := NewCorpus(nil, 1); err == nil {
		t.Fatal("empty corpus must fail")
	}
}

func TestDocVectorsAreL2Normalized(t *testing.T) {
	c, err := NewCorpus(docs(
		"alpha beta gamma",
		"alpha alpha beta delta",
		"gamma delta epsilon",
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	for d, vec := range c.docs {
		var norm float64
		for _, e := range vec {
			norm += e.weight * e.weight
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("doc %d norm² = %v", d, norm)
		}
	}
}

func TestTruncatedSVDSeparatesTopics(t *testing.T) {
	// Two clear topics with disjoint vocabulary.
	var texts []string
	for i := 0; i < 10; i++ {
		texts = append(texts, "boxing ring fighter punch training montage")
	}
	for i := 0; i < 10; i++ {
		texts = append(texts, "romance love wedding kiss couple ballroom")
	}
	c, err := NewCorpus(docs(texts...), 1)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := c.TruncatedSVD(2, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Documents of the same topic must be much closer than across topics.
	same := vecmath.Dist(emb.Coords.Row(0), emb.Coords.Row(5))
	diff := vecmath.Dist(emb.Coords.Row(0), emb.Coords.Row(15))
	if same > diff/4 {
		t.Fatalf("same-topic dist %v not well below cross-topic %v", same, diff)
	}
	// Singular values descending.
	if emb.SingularValues[0] < emb.SingularValues[1] {
		t.Fatal("singular values must be descending")
	}
}

func TestTruncatedSVDSingularValuesMatchDense(t *testing.T) {
	// Small corpus: verify σ₁ against a direct power-iteration on the
	// dense Gram matrix.
	c, err := NewCorpus(docs(
		"a b c",
		"a b",
		"c d",
		"d e f",
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := c.TruncatedSVD(1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Dense A.
	A := vecmath.NewMatrix(c.NumDocs(), c.VocabSize())
	for d, vec := range c.docs {
		for _, e := range vec {
			A.Set(d, e.idx, e.weight)
		}
	}
	// Power iteration on AᵀA.
	v := make([]float64, c.VocabSize())
	v[0] = 1
	tmpD := make([]float64, c.NumDocs())
	for i := 0; i < 500; i++ {
		A.MulVec(v, tmpD)
		A.MulVecT(tmpD, v)
		vecmath.Normalize(v)
	}
	A.MulVec(v, tmpD)
	sigma1 := vecmath.Norm(tmpD)
	if math.Abs(emb.SingularValues[0]-sigma1) > 1e-6*math.Max(1, sigma1) {
		t.Fatalf("σ₁ = %v, dense reference %v", emb.SingularValues[0], sigma1)
	}
}

func TestTruncatedSVDClampsK(t *testing.T) {
	c, err := NewCorpus(docs("a b", "b c"), 1)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := c.TruncatedSVD(50, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Coords.Cols > 3 {
		t.Fatalf("k should be clamped to min(docs, vocab), got %d", emb.Coords.Cols)
	}
	if _, err := c.TruncatedSVD(0, 10, 3); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestTruncatedSVDDeterministic(t *testing.T) {
	c, err := NewCorpus(docs(
		"alpha beta gamma delta",
		"beta gamma epsilon",
		"alpha epsilon zeta",
		"zeta delta gamma",
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.TruncatedSVD(2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.TruncatedSVD(2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.Coords.Data {
		if e1.Coords.Data[i] != e2.Coords.Data[i] {
			t.Fatal("same seed must give identical embeddings")
		}
	}
}
