// Package obs is the unified observability layer: a dependency-free
// metrics registry exposed in Prometheus text format, shared by every
// subsystem of the crowd-enabled database.
//
// A crowd-enabled DB spans two wildly different latency regimes —
// microsecond MVCC scans and minutes-long HIT elicitation — so a single
// "requests per second" number is useless. The registry therefore keeps
// one metric family per interesting quantity (per-route HTTP latency,
// WAL fsync latency, expansion phase durations, crowd dollars charged)
// and renders them all on one scrape at GET /v1/metrics.
//
// Design constraints, in order:
//
//   - Dependency-free: obs imports only the standard library, so storage,
//     wal, jobs, crowd, engine, core, and server can all import it without
//     cycles — it sits below everything.
//   - Cheap when idle: counters and gauges are single atomic words;
//     histograms are fixed-bucket atomic arrays. No locks on the hot
//     path, no allocation after the family is created. The contract
//     (enforced by BenchmarkInstrumentedSelect) is ≤2% overhead on the
//     query path with tracing off.
//   - Cumulative: families live in the process-wide Default registry and
//     only ever go up (gauges excepted). Multiple DB instances in one
//     process (tests) share families — fine for counters, which Prometheus
//     rates anyway.
//
// Quantiles (p50/p95/p99) are estimated from the fixed buckets by linear
// interpolation — good to a bucket width, which the exponential bucket
// layout keeps proportional to the value itself.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind tags a family for the # TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; enforced by convention, not code —
// the hot path stays a single atomic add).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric — crowd spend
// in dollars, simulated crowd minutes. CAS-loop add; charges are rare
// (one per crowd run), so contention is irrelevant.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable instantaneous value (queue depth, in-flight
// requests, pinned snapshots).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative-style buckets.
// Observe is lock-free: one binary search over the (immutable) bounds and
// two atomic adds.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	total  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		cur := math.Float64frombits(old)
		if h.sum.CompareAndSwap(old, math.Float64bits(cur+v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that crosses the target rank. Values in the overflow
// bucket clamp to the largest finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // overflow bucket: clamp
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// DefSecondsBuckets spans both latency regimes of this system: 1µs MVCC
// point reads through multi-minute simulated crowd elicitation.
var DefSecondsBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 300, 1200,
}

// family is one named metric with optional labeled children.
type family struct {
	name, help string
	kind       metricKind
	labels     []string // label names for vec families, nil for plain

	mu       sync.RWMutex
	children map[string]any // joined label values → *Counter/*Gauge/…
	single   any            // the unlabeled instance (plain families)
	bounds   []float64      // histogram bucket bounds
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// Default is the process-wide registry every subsystem registers into and
// GET /v1/metrics scrapes.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register returns the family for name, creating it on first use. A name
// re-registered with a different kind panics — that is a programming
// error, caught at init time since families are package-level vars.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, children: map[string]any{}}
	r.families[name] = f
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// FloatCounter registers (or fetches) an unlabeled float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	f := r.register(name, help, kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &FloatCounter{}
	}
	return f.single.(*FloatCounter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil picks DefSecondsBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	f := r.register(name, help, kindHistogram, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.bounds = bounds
		f.single = newHistogram(bounds)
	}
	return f.single.(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the child counter for the given label values (one per
// label name, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers (or fetches) a labeled histogram family (nil
// bounds picks DefSecondsBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	f := r.register(name, help, kindHistogram, labels)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = bounds
	}
	bounds = f.bounds
	f.mu.Unlock()
	return &HistogramVec{f: f, bounds: bounds}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.bounds) }).(*Histogram)
}

// labelSep joins label values into a child key; 0x1f cannot appear in
// sane label values and keeps ("a","bc") distinct from ("ab","c").
const labelSep = "\x1f"

func (f *family) child(values []string, mk func() any) any {
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	return c
}

// ---------- Prometheus text exposition ----------

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, histogram _bucket/_sum/_count
// series, label escaping per the spec.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.single == nil && len(f.children) == 0 {
		return nil // registered but never instantiated
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	write := func(labelStr string, m any) error {
		switch v := m.(type) {
		case *Counter:
			_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelStr, v.Value())
			return err
		case *FloatCounter:
			_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelStr, formatFloat(v.Value()))
			return err
		case *Gauge:
			_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelStr, v.Value())
			return err
		case *Histogram:
			return f.writeHistogram(w, labelStr, v)
		}
		return fmt.Errorf("obs: unknown metric type %T", m)
	}
	if f.single != nil {
		return write("", f.single)
	}
	// Deterministic output order for scrapers and tests.
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var values []string
		if k != "" {
			values = strings.Split(k, labelSep)
		}
		if err := write(labelString(f.labels, values, ""), f.children[k]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket series plus _sum/_count.
// labelStr carries the family's own labels; the le label is appended.
func (f *family) writeHistogram(w io.Writer, labelStr string, h *Histogram) error {
	// Re-derive the label list from labelStr: simpler to rebuild from the
	// family key, so pass the raw pieces instead.
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		ls := mergeLE(labelStr, formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLE(labelStr, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelStr, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelStr, h.Count())
	return err
}

// labelString renders {a="x",b="y"} (empty string for no labels); extra,
// when non-empty, is appended verbatim as one more pre-rendered pair.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(val))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

// mergeLE appends le="bound" to an existing (possibly empty) label set.
func mergeLE(labelStr, bound string) string {
	le := `le="` + bound + `"`
	if labelStr == "" {
		return "{" + le + "}"
	}
	return labelStr[:len(labelStr)-1] + "," + le + "}"
}

// formatFloat renders floats the way Prometheus expects: integers
// without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
