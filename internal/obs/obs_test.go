package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registering returns the same instance.
	if c2 := r.Counter("test_total", "a counter"); c2 != c {
		t.Fatal("re-registered counter is a different instance")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	fc := r.FloatCounter("test_dollars_total", "money")
	fc.Add(0.25)
	fc.Add(0.5)
	if got := fc.Value(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // values 0.5 .. 7.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 5 {
		t.Fatalf("p50 = %v, want in [1,5]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4 || p99 > 8 {
		t.Fatalf("p99 = %v, want in [4,8]", p99)
	}
	if q := h.Quantile(0.5); q < h.Quantile(0.1) {
		t.Fatalf("quantiles not monotone: p50=%v p10=%v", q, h.Quantile(0.1))
	}
	// Overflow clamps to largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
	// Empty histogram.
	h3 := newHistogram([]float64{1})
	if got := h3.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "reqs", "route", "status")
	v.With("/query", "2xx").Add(3)
	v.With("/query", "5xx").Inc()
	v.With("/jobs", "2xx").Inc()
	if got := v.With("/query", "2xx").Value(); got != 3 {
		t.Fatalf("child = %d, want 3", got)
	}
	// Same label values → same child.
	if v.With("/jobs", "2xx") != v.With("/jobs", "2xx") {
		t.Fatal("same labels produced different children")
	}
	// ("a","bc") vs ("ab","c") must be distinct children.
	v2 := r.CounterVec("amb_total", "ambiguity", "x", "y")
	v2.With("a", "bc").Inc()
	if got := v2.With("ab", "c").Value(); got != 0 {
		t.Fatalf("label ambiguity: got %d, want 0", got)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zoo_total", "last alphabetically").Add(2)
	r.Gauge("depth", "queue depth").Set(7)
	v := r.CounterVec("req_total", "requests", "route")
	v.With("/query").Add(9)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP zoo_total last alphabetically",
		"# TYPE zoo_total counter",
		"zoo_total 2",
		"# TYPE depth gauge",
		"depth 7",
		`req_total{route="/query"} 9`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// Families are emitted in sorted name order.
	if strings.Index(out, "# TYPE depth") > strings.Index(out, "# TYPE zoo_total") {
		t.Error("families not sorted by name")
	}
	// Every non-comment line parses as "name{labels} value".
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Errorf("unparseable line %q", line)
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(parts[1], "%g", &f); err != nil {
			t.Errorf("bad value in line %q: %v", line, err)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "escape test", "q")
	v.With(`he said "hi"` + "\n" + `back\slash`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `\"hi\"`) || !strings.Contains(out, `\n`) || !strings.Contains(out, `back\\slash`) {
		t.Fatalf("labels not escaped: %s", out)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "concurrent", []float64{0.001, 0.01, 0.1, 1})
	c := r.Counter("conc_total", "concurrent")
	v := r.CounterVec("conc_vec_total", "concurrent vec", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j%100) / 100)
				c.Inc()
				v.With(fmt.Sprintf("k%d", n%4)).Inc()
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = r.WriteText(&sb) // scrape while writing
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "second")
}
