package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"crowddb/internal/core"
)

func postAdminExpand(t *testing.T, url string, req adminExpandRequest) (int, queryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/admin/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestAdminExpandPreWarm: an explicit expansion returns 202 + a job, the
// job completes, and the column answers queries without further crowd
// work.
func TestAdminExpandPreWarm(t *testing.T) {
	svc := &fakeService{}
	_, ts := newTestServer(t, svc, Config{})

	code, out := postAdminExpand(t, ts.URL, adminExpandRequest{
		Table: "movies", Column: "is_comedy", Method: "CROWD", Key: "team-a", Budget: 5,
	})
	if code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", code)
	}
	if out.Job == nil {
		t.Fatal("no job in response")
	}
	// Wait for the job, then query without triggering a new expansion.
	var done queryResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
		}
		if c := getJSON(t, ts.URL+"/jobs/"+out.Job.ID+"?wait=1", &st); c != http.StatusOK {
			t.Fatalf("job poll status %d", c)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", st.State)
		}
	}
	code, done = postQuery(t, ts.URL, `SELECT name FROM movies WHERE is_comedy = true`, "sync")
	if code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if done.Expansion != nil {
		t.Fatal("query re-expanded a pre-warmed column")
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("crowd contacted %d times, want 1", got)
	}

	// The spend landed on the key's budget.
	var budgets struct {
		Budgets []core.BudgetStatus `json:"budgets"`
	}
	if c := getJSON(t, ts.URL+"/budgets", &budgets); c != http.StatusOK {
		t.Fatalf("budgets status %d", c)
	}
	if len(budgets.Budgets) != 1 || budgets.Budgets[0].Key != "team-a" || budgets.Budgets[0].Spent <= 0 {
		t.Fatalf("budgets = %+v, want team-a with spend", budgets.Budgets)
	}
}

// TestAdminExpandBudgetRejection: a cap the projected cost exceeds gets
// a 402 before any HIT is issued.
func TestAdminExpandBudgetRejection(t *testing.T) {
	svc := &fakeService{}
	_, ts := newTestServer(t, svc, Config{})

	code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{
		Table: "movies", Column: "is_comedy", Method: "CROWD", Key: "cheap", Budget: 0.01,
	})
	if code != http.StatusPaymentRequired {
		t.Fatalf("status = %d, want 402", code)
	}
	if got := svc.calls.Load(); got != 0 {
		t.Fatalf("crowd contacted %d times despite 402", got)
	}
}

// TestAdminExpandValidation: bad bodies and unknown tables are client
// errors with useful statuses.
func TestAdminExpandValidation(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	if code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{Table: "movies"}); code != http.StatusBadRequest {
		t.Fatalf("missing column: %d, want 400", code)
	}
	if code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{Table: "movies", Column: "c", Kind: "INTEGER"}); code != http.StatusBadRequest {
		t.Fatalf("bad kind: %d, want 400", code)
	}
	if code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{Table: "nope", Column: "c"}); code != http.StatusNotFound {
		t.Fatalf("unknown table: %d, want 404", code)
	}
	// A budget without a key would run uncapped; it must be rejected.
	if code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{Table: "movies", Column: "is_comedy", Budget: 2.5}); code != http.StatusBadRequest {
		t.Fatalf("budget without key: %d, want 400", code)
	}
}

// TestAdminExpandConflictWhileInFlight: re-submitting a column whose
// expansion is running is a 409, mirroring explicit EXPAND semantics.
func TestAdminExpandConflictWhileInFlight(t *testing.T) {
	svc := &fakeService{gate: make(chan struct{})}
	_, ts := newTestServer(t, svc, Config{})

	code, _ := postAdminExpand(t, ts.URL, adminExpandRequest{Table: "movies", Column: "is_comedy"})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", code)
	}
	// Wait until the expansion actually reaches the (stalled) crowd so
	// the second submit observes it in flight.
	deadline := time.Now().Add(5 * time.Second)
	for svc.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expansion never reached the crowd")
		}
		time.Sleep(time.Millisecond)
	}
	code, _ = postAdminExpand(t, ts.URL, adminExpandRequest{Table: "movies", Column: "is_comedy"})
	if code != http.StatusConflict {
		t.Fatalf("duplicate submit: %d, want 409", code)
	}
	close(svc.gate)
}
