package server

import (
	"errors"
	"net/http"

	"crowddb/internal/core"
	"crowddb/internal/jobs"
)

// Unified error envelope. Every error response from every endpoint —
// versioned or legacy — has the shape
//
//	{"error": {"code": "budget_exceeded", "message": "...", "status": 402}}
//
// Code is the stable, machine-readable contract; message text and status
// phrasing may change between releases, codes may only be added. The
// code table is documented in DESIGN.md §16.
const (
	// CodeBadRequest covers malformed bodies, parse errors, unknown
	// columns, and other client mistakes without a more specific code.
	CodeBadRequest = "bad_request"
	// CodeNotFound is an unknown job, table, or route resource.
	CodeNotFound = "not_found"
	// CodeNoSuchTable is specifically core.ErrNoSuchTable: the expansion
	// target table does not exist.
	CodeNoSuchTable = "no_such_table"
	// CodeBudgetExceeded maps core.ErrBudgetExceeded (402).
	CodeBudgetExceeded = "budget_exceeded"
	// CodeQueueFull maps jobs.ErrQueueFull and the HTTP admission
	// semaphore (503 + Retry-After).
	CodeQueueFull = "queue_full"
	// CodeExpansionInFlight maps core.ErrExpansionInFlight (409).
	CodeExpansionInFlight = "expansion_in_flight"
	// CodeExpansionFailed maps core.ErrExpansionFailed (500).
	CodeExpansionFailed = "expansion_failed"
	// CodeIndexOnVirtualColumn maps core.ErrIndexOnVirtualColumn (400).
	CodeIndexOnVirtualColumn = "index_on_virtual_column"
	// CodeNoDataDir maps core.ErrNoDataDir: snapshot requested on a
	// database opened without durability (409).
	CodeNoDataDir = "no_data_dir"
	// CodeInternal is an unclassified server-side failure (500).
	CodeInternal = "internal"
)

// errorBody is the envelope payload.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// writeError emits the unified error envelope. A 503 carries
// Retry-After: the condition is load, not a broken request.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]errorBody{
		"error": {Code: code, Message: err.Error(), Status: status},
	})
}

// classifyErr maps an error to its (status, code) pair via the core and
// jobs sentinels. Unmatched errors default to the caller's fallback.
func classifyErr(err error, fallbackStatus int, fallbackCode string) (int, string) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusServiceUnavailable, CodeQueueFull
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusPaymentRequired, CodeBudgetExceeded
	case errors.Is(err, core.ErrExpansionInFlight):
		return http.StatusConflict, CodeExpansionInFlight
	case errors.Is(err, core.ErrNoSuchTable):
		return http.StatusNotFound, CodeNoSuchTable
	case errors.Is(err, core.ErrIndexOnVirtualColumn):
		return http.StatusBadRequest, CodeIndexOnVirtualColumn
	case errors.Is(err, core.ErrExpansionFailed):
		return http.StatusInternalServerError, CodeExpansionFailed
	case errors.Is(err, core.ErrNoDataDir):
		return http.StatusConflict, CodeNoDataDir
	default:
		return fallbackStatus, fallbackCode
	}
}

// writeQueryError classifies a query failure: a full expansion queue is
// a retryable overload (503), a budget-capped expansion is a payment
// problem (402), a failed crowd expansion is a server-side fault (500);
// CREATE INDEX on a registered-but-unexpanded column is the client's
// sequencing mistake (400, explicitly — it must never fall into the 500
// bucket); everything else (parse errors, unknown tables/columns) is
// the client's query (400).
func writeQueryError(w http.ResponseWriter, err error) {
	status, code := classifyErr(err, http.StatusBadRequest, CodeBadRequest)
	writeError(w, status, code, err)
}
