package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestCreateIndexOverHTTP drives the index lifecycle through the API:
// create, introspect via /schema/{table}, and observe the planner using
// it in EXPLAIN.
func TestCreateIndexOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	code, resp := postQuery(t, ts.URL, `CREATE INDEX idx_year ON movies (year)`, "")
	if code != http.StatusOK {
		t.Fatalf("CREATE INDEX status = %d (%+v)", code, resp)
	}
	if !strings.Contains(resp.Message, "created ordered index idx_year") {
		t.Fatalf("message = %q", resp.Message)
	}

	// Schema inventory surfaces the index.
	httpRes, err := http.Get(ts.URL + "/schema/movies")
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	var schema struct {
		Indexes []indexInfo `json:"indexes"`
	}
	if err := json.NewDecoder(httpRes.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	if len(schema.Indexes) != 1 {
		t.Fatalf("indexes = %+v", schema.Indexes)
	}
	ix := schema.Indexes[0]
	if ix.Name != "idx_year" || ix.Column != "year" || ix.Kind != "ordered" || ix.Entries != 20 {
		t.Fatalf("index meta = %+v", ix)
	}

	// EXPLAIN through the API shows the index chosen.
	code, resp = postQuery(t, ts.URL, `EXPLAIN SELECT name FROM movies WHERE year = 1995`, "")
	if code != http.StatusOK {
		t.Fatalf("EXPLAIN status = %d", code)
	}
	var plan []string
	for _, row := range resp.Rows {
		plan = append(plan, row[0].(string))
	}
	if !strings.Contains(strings.Join(plan, "\n"), "IndexScan(idx_year, year=1995)") {
		t.Fatalf("plan over HTTP:\n%s", strings.Join(plan, "\n"))
	}

	// And the query answers through it.
	code, resp = postQuery(t, ts.URL, `SELECT name FROM movies WHERE year = 1995`, "")
	if code != http.StatusOK || len(resp.Rows) != 1 {
		t.Fatalf("query status=%d rows=%+v", code, resp.Rows)
	}
}

// TestCreateIndexOnVirtualColumnIs400 is the satellite fix's HTTP face:
// indexing a registered-but-unexpanded column must be the client's error
// (400 with the typed message), never a 500 — and must not kick off the
// expansion.
func TestCreateIndexOnVirtualColumnIs400(t *testing.T) {
	svc := &fakeService{}
	_, ts := newTestServer(t, svc, Config{})

	code, _ := postQuery(t, ts.URL, `CREATE INDEX idx_c ON movies (is_comedy)`, "")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	res, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"CREATE INDEX idx_c ON movies (is_comedy)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body map[string]errorBody
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"].Code != CodeIndexOnVirtualColumn {
		t.Fatalf("error code = %q, want %q", body["error"].Code, CodeIndexOnVirtualColumn)
	}
	if !strings.Contains(body["error"].Message, "not-yet-expanded") {
		t.Fatalf("error body = %+v", body)
	}
	if n := svc.calls.Load(); n != 0 {
		t.Fatalf("rejected CREATE INDEX triggered %d crowd calls", n)
	}
}
