package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"crowddb/internal/obs"
)

// HTTP-layer metric families (catalog: DESIGN.md §17). Routes are
// labeled by their canonical pattern (the /v1-relative path), never the
// raw URL — label cardinality stays bounded by the route table.
var (
	mHTTPRequests = obs.Default.CounterVec("crowdserve_http_requests_total",
		"HTTP requests by route, method, and status class.", "route", "method", "status_class")
	mHTTPSeconds = obs.Default.HistogramVec("crowdserve_http_request_seconds",
		"HTTP request latency by route, in seconds.", nil, "route")
	mHTTPInflight = obs.Default.Gauge("crowdserve_http_inflight",
		"HTTP requests currently being served.")
)

// statusRecorder captures the response status for metrics and logs.
// Flush passes through so NDJSON streaming (POST /query?stream=1) keeps
// its per-batch flushes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID mints a 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps a handler with the per-route observability envelope:
// in-flight gauge, request counter by status class, latency histogram,
// and one structured request log line carrying the request ID. An
// inbound X-Request-Id is propagated; otherwise one is minted. The same
// wrapper serves the /v1 mount and its deprecated alias, so both report
// under the canonical route label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mHTTPInflight.Inc()
		defer mHTTPInflight.Dec()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		dur := time.Since(start)
		mHTTPRequests.With(route, r.Method, fmt.Sprintf("%dxx", rec.status/100)).Inc()
		mHTTPSeconds.With(route).Observe(dur.Seconds())
		slog.Info("http request",
			"request_id", reqID,
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_us", dur.Microseconds(),
		)
	}
}

// handleMetrics serves the process-wide registry in Prometheus text
// exposition format. Registered without a method in the pattern so that
// a non-GET lands here (not the mux's plain-text 405) and gets the
// standard error envelope.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest,
			fmt.Errorf("server: %s not allowed on /v1/metrics (GET only)", r.Method))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default.WriteText(w); err != nil {
		// Headers are gone by now; all we can do is log.
		slog.Error("metrics scrape failed", "error", err)
	}
}
