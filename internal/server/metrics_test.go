package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/storage"
)

// TestMetricsEndpointPrometheusFormat scrapes /v1/metrics after driving
// some traffic and validates the text exposition line by line, plus the
// presence of every subsystem family group the catalog promises.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	// Drive traffic so families materialize: queries (cache miss + hit),
	// an expansion (crowd charge), a delete (tombstones).
	for i := 0; i < 2; i++ {
		if code, _ := postQuery(t, ts.URL, `SELECT name FROM movies WHERE year > 2000`, ""); code != http.StatusOK {
			t.Fatalf("query code = %d", code)
		}
	}
	if code, _ := postQuery(t, ts.URL, `SELECT COUNT(*) FROM movies WHERE is_comedy = true`, "sync"); code != http.StatusOK {
		t.Fatal("expansion query failed")
	}
	if code, _ := postQuery(t, ts.URL, `DELETE FROM movies WHERE movie_id = 19`, ""); code != http.StatusOK {
		t.Fatal("delete failed")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Line-level format validation: every non-comment line is
	// `name{labels} value` or `name value`, every family has HELP+TYPE.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series := line[:sp]
		name := series
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name = series[:b]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced label braces: %q", line)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q precedes its # TYPE header", line)
		}
	}

	// Every subsystem the issue promises shows up.
	for _, family := range []string{
		"crowdserve_http_requests_total",  // server
		"crowdserve_http_request_seconds", // server latency histogram
		"crowddb_query_seconds",           // core query latency
		"crowddb_query_phase_seconds",     // core phase split
		"crowddb_cache_hits_total",        // result cache
		"crowddb_cache_misses_total",
		"crowddb_storage_tombstones_total", // storage
		"crowddb_wal_appends_total",        // wal (registered; may be zero samples)
		"crowddb_jobs_total",               // jobs
		"crowddb_crowd_charges_total",      // crowd cost
		"crowddb_crowd_cost_dollars_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}

	// The traffic above produced at least one cache hit and one miss.
	if !strings.Contains(text, "crowddb_cache_hits_total 1") {
		t.Errorf("expected exactly one cache hit:\n%s", grepLines(text, "cache"))
	}
	// HTTP counter labeled by canonical route and status class.
	if !strings.Contains(text, `crowdserve_http_requests_total{route="/query",method="POST",status_class="2xx"}`) {
		t.Errorf("missing labeled /query counter:\n%s", grepLines(text, "http_requests"))
	}
}

// grepLines filters scrape output for error messages.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsEnvelopeOnBadMethod: satellite requirement — /v1/metrics
// failures use the standard error envelope, not the mux's plain 405.
func TestMetricsEnvelopeOnBadMethod(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})
	resp, err := http.Post(ts.URL+"/v1/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("POST /v1/metrics did not return the JSON envelope: %v", err)
	}
	e := body["error"]
	if e.Code != CodeBadRequest || e.Status != http.StatusMethodNotAllowed || e.Message == "" {
		t.Fatalf("envelope = %+v", e)
	}
}

// TestExplainAnalyzeOverHTTP: EXPLAIN ANALYZE runs through POST /query
// and the root actuals match a real run of the same query; failures use
// the error envelope.
func TestExplainAnalyzeOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	sql := `SELECT name FROM movies WHERE year >= 2000`
	code, real := postQuery(t, ts.URL, sql, "")
	if code != http.StatusOK {
		t.Fatalf("real query code = %d", code)
	}
	code, an := postQuery(t, ts.URL, "EXPLAIN ANALYZE "+sql, "")
	if code != http.StatusOK {
		t.Fatalf("analyze code = %d", code)
	}
	root, _ := an.Rows[0][0].(string)
	want := fmt.Sprintf("actual rows=%d", len(real.Rows))
	if !strings.Contains(root, want) {
		t.Fatalf("root line %q missing %q", root, want)
	}

	// Failure path: planning EXPLAIN ANALYZE against a missing table is
	// an envelope-shaped 400 (EXPLAIN never triggers expansion).
	body, _ := json.Marshal(queryRequest{SQL: "EXPLAIN ANALYZE SELECT * FROM nope"})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env map[string]errorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("analyze failure not enveloped: %v", err)
	}
	e := env["error"]
	if resp.StatusCode != http.StatusBadRequest || e.Code != CodeBadRequest || e.Message == "" {
		t.Fatalf("status=%d envelope=%+v", resp.StatusCode, e)
	}
}

// TestQueryTraceParam: POST /v1/query?trace=1 attaches the per-phase and
// per-operator breakdown; without the param the field is absent.
func TestQueryTraceParam(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	post := func(url, sql string) queryResponse {
		t.Helper()
		body, _ := json.Marshal(queryRequest{SQL: sql})
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var out queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	plain := post(ts.URL+"/v1/query", `SELECT name FROM movies WHERE year > 2005`)
	if plain.Trace != nil {
		t.Fatal("untraced query carries a trace")
	}

	// Distinct SQL so the traced run is a cache miss and actually executes.
	traced := post(ts.URL+"/v1/query?trace=1", `SELECT name FROM movies WHERE year > 2004`)
	if traced.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	qt := traced.Trace
	if qt.TotalUS <= 0 || qt.Rows != len(traced.Rows) {
		t.Fatalf("trace = %+v", qt)
	}
	if len(qt.Plan) == 0 || !strings.Contains(strings.Join(qt.Plan, "\n"), "actual rows=") {
		t.Fatalf("trace plan missing actuals: %v", qt.Plan)
	}

	// Second traced run hits the result cache: plan present, no actuals
	// (nothing executed), cache_hit set.
	cached := post(ts.URL+"/v1/query?trace=1", `SELECT name FROM movies WHERE year > 2004`)
	if cached.Trace == nil || !cached.Trace.CacheHit {
		t.Fatalf("second run should be a traced cache hit: %+v", cached.Trace)
	}
	if strings.Contains(strings.Join(cached.Trace.Plan, "\n"), "actual rows=") {
		t.Fatal("cache-hit trace must not carry actuals — nothing ran")
	}
}

// TestRequestIDHeader: every response carries X-Request-Id; inbound IDs
// propagate verbatim.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	resp, err := http.Get(ts.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); len(id) != 16 {
		t.Fatalf("minted request ID = %q (want 16 hex chars)", id)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/schema", nil)
	req.Header.Set("X-Request-Id", "caller-chose-this")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "caller-chose-this" {
		t.Fatalf("inbound request ID not propagated: %q", id)
	}
}

// TestPprofUnderV1: with EnablePprof the index answers under both the
// conventional and the versioned mount, and neither is stamped
// deprecated.
func TestPprofUnderV1(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/v1/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("goroutine")) {
			t.Errorf("%s does not look like a pprof index", path)
		}
		if d := resp.Header.Get("Deprecation"); d != "" {
			t.Errorf("%s carries Deprecation = %q", path, d)
		}
	}
	// Disabled by default.
	_, ts2 := newTestServer(t, &fakeService{}, Config{})
	resp, err := http.Get(ts2.URL + "/v1/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof mounted without EnablePprof: %d", resp.StatusCode)
	}
}

// TestMetricsScrapeRaceStress hammers /v1/metrics while a crowd fill,
// a query loop, and forced compactions run concurrently — the nightly
// -race proof that the lock-free registry and every instrumentation
// point tolerate concurrent scrapes. Kept short enough for the regular
// suite; nightly repeats it under -race with -count=10.
func TestMetricsScrapeRaceStress(t *testing.T) {
	db := core.NewDB(&fakeService{})
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	const rows = 4000
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("m-%04d", i)), storage.Int(int64(1900+i%120))); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes + compaction churn a separate table: a DELETE racing an
	// in-flight expansion of the same table is an application-level
	// conflict (FillColumn row-count mismatch), not what this test is
	// after.
	if _, _, err := db.ExecSQL(`CREATE TABLE events (id INTEGER, kind TEXT)`); err != nil {
		t.Fatal(err)
	}
	events, _ := db.Catalog().Get("events")
	for i := 0; i < rows; i++ {
		if err := events.Insert(storage.Int(int64(i)), storage.Text("k")); err != nil {
			t.Fatal(err)
		}
	}
	for _, col := range []string{"c0", "c1", "c2", "c3"} {
		db.RegisterExpandable("movies", col, storage.KindBool, core.ExpandOptions{Method: "CROWD"})
	}
	ts := httptest.NewServer(New(db, Config{}).Handler())
	t.Cleanup(ts.Close)

	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	// Scrapers: the registry must render consistently mid-update.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := http.Get(ts.URL + "/v1/metrics")
				if err != nil {
					fail <- "scrape: " + err.Error()
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte("# TYPE")) {
					fail <- fmt.Sprintf("scrape status=%d len=%d", resp.StatusCode, len(b))
					return
				}
			}
		}()
	}
	// Crowd fills: each expansion drives jobs + crowd-cost metrics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			sql := fmt.Sprintf(`SELECT COUNT(*) FROM movies WHERE c%d = true`, i%4)
			if _, _, err := db.ExecSQL(sql); err != nil {
				fail <- "fill: " + err.Error()
				return
			}
		}
	}()
	// Queries, traced and untraced, exercising cache + phase metrics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			sql := fmt.Sprintf(`SELECT name FROM movies WHERE year > %d LIMIT 5`, 1950+i%40)
			if _, _, _, err := db.ExecSQLTraced(sql, i%2 == 0); err != nil {
				fail <- "query: " + err.Error()
				return
			}
		}
	}()
	// Deletes + forced compactions: storage seal/tombstone/compaction
	// counters race the scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			del := fmt.Sprintf(`DELETE FROM events WHERE id = %d`, i%rows)
			if _, _, err := db.ExecSQL(del); err != nil {
				fail <- "delete: " + err.Error()
				return
			}
			db.CompactNow()
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
