// Package server exposes a crowd-enabled database over HTTP/JSON, making
// the system network-servable: queries, async expansion-job polling,
// schema introspection, and ledger accounting.
//
// The API is versioned under /v1/:
//
//	POST /v1/query          {"sql": "...", "mode": "sync"|"async"}
//	POST /v1/query?stream=1 NDJSON row streaming for SELECTs (sync only)
//	POST /v1/query?trace=1  attach the per-phase/per-operator trace (sync)
//	GET  /v1/metrics        Prometheus text exposition of all subsystems
//	GET  /v1/jobs           all expansion jobs, submission order
//	GET  /v1/jobs/{id}      one job (add ?wait=1 to block until terminal)
//	GET  /v1/schema         table names + storage backend
//	GET  /v1/schema/{table} column/index inventory + storage health
//	GET  /v1/ledger         cumulative crowd spend + per-job breakdown
//	GET  /v1/budgets        per-API-key budget caps and spend
//	GET  /v1/workload       workload trace + result-cache effectiveness
//	POST /v1/admin/expand   explicit pre-warm expansion with budget/key
//	POST /v1/admin/snapshot persist a snapshot and truncate the WAL
//	POST /v1/admin/compact  force a tombstone-compaction sweep
//	GET  /v1/healthz        liveness (also unversioned: /healthz)
//
// With pprof enabled, /debug/pprof/* is additionally mounted at
// /v1/debug/pprof/*; neither mount carries deprecation headers. Every
// route is wrapped in the observability middleware: per-route request
// counters, latency histograms, an in-flight gauge, and a structured
// request log line with an X-Request-Id (inbound IDs propagate).
//
// Every pre-versioning route remains mounted unversioned as a thin
// alias answering identically, with a "Deprecation: true" header and a
// Link to its /v1 successor. Errors share one envelope —
// {"error":{"code","message","status"}} — with stable machine-readable
// codes (see errors.go and DESIGN.md §16).
//
// Sync queries block until the answer is complete — including any crowd
// expansion they trigger — which can take simulated crowd minutes; async
// queries return 202 with a job handle instead. A bounded admission
// semaphore sheds load with 503 + Retry-After once MaxInflight queries
// are in flight, so a burst of expensive queries degrades loudly rather
// than queueing without bound.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/jobs"
	"crowddb/internal/sqlparse"
	"crowddb/internal/storage"
)

// Config tunes the HTTP layer.
type Config struct {
	// MaxInflight bounds concurrently admitted /query requests
	// (default 64). Excess requests receive 503 + Retry-After.
	MaxInflight int
	// WaitTimeout caps how long GET /jobs/{id}?wait=1 blocks
	// (default 30s).
	WaitTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — the
	// profiling companion to the storage metrics on GET /schema/{table}.
	// Off by default: profiles expose internals and cost CPU to collect.
	EnablePprof bool
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 30 * time.Second
	}
}

// Server serves one crowd-enabled database over HTTP.
type Server struct {
	db   *core.DB
	cfg  Config
	sem  chan struct{}
	mux  *http.ServeMux
	http *http.Server
}

// New builds a server around db.
func New(db *core.DB, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		db:  db,
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInflight),
		mux: http.NewServeMux(),
	}
	// Canonical routes live under /v1/. Every pre-versioning route stays
	// mounted unversioned as a thin alias answering identically, stamped
	// with a Deprecation header and a Link to its successor — clients
	// migrate on their own schedule, proxies can alert on the header.
	versioned := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"POST", "/query", s.handleQuery},
		{"GET", "/jobs", s.handleJobs},
		{"GET", "/jobs/{id}", s.handleJob},
		{"GET", "/schema", s.handleSchemaList},
		{"GET", "/schema/{table}", s.handleSchema},
		{"GET", "/ledger", s.handleLedger},
		{"GET", "/budgets", s.handleBudgets},
		{"GET", "/workload", s.handleWorkload},
		{"POST", "/admin/expand", s.handleAdminExpand},
		{"POST", "/admin/snapshot", s.handleSnapshot},
	}
	for _, rt := range versioned {
		// Both mounts share one instrumentation wrapper keyed by the
		// canonical route, so legacy-alias traffic reports under the same
		// metric labels it will keep after migrating.
		h := s.instrument(rt.path, rt.h)
		s.mux.HandleFunc(rt.method+" /v1"+rt.path, h)
		s.mux.HandleFunc(rt.method+" "+rt.path, s.instrument(rt.path, deprecatedAlias(rt.h)))
	}
	// New in v1 — no legacy alias.
	s.mux.HandleFunc("POST /v1/admin/compact", s.instrument("/admin/compact", s.handleAdminCompact))
	// Registered without a method so non-GETs get the error envelope
	// (the mux's own 405 is plain text); the handler enforces GET.
	s.mux.HandleFunc("/v1/metrics", s.instrument("/metrics", s.handleMetrics))
	// Liveness stays reachable unversioned (load balancers hardcode it)
	// without a Deprecation stamp, and under /v1 for uniform clients.
	healthz := s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /healthz", healthz)
	s.mux.HandleFunc("GET /v1/healthz", healthz)
	if cfg.EnablePprof {
		// net/http/pprof registers on DefaultServeMux as an import side
		// effect; route our mux's /debug/pprof/ straight to the handlers
		// so the profiles come up on the same port as the API. Mounted
		// both unversioned (the traditional path tooling expects) and
		// under /v1 for consistency with the versioning scheme; NEITHER
		// is a deprecated alias, so no Deprecation headers here. The v1
		// mount strips its prefix because pprof.Index derives the profile
		// name from the path after /debug/pprof/.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.mux.Handle("/v1/debug/pprof/", http.StripPrefix("/v1", http.HandlerFunc(pprof.Index)))
		s.mux.HandleFunc("/v1/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/v1/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/v1/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/v1/debug/pprof/trace", pprof.Trace)
	}
	// Built here, not in Serve, so a Shutdown racing (or preceding)
	// Serve still closes the listener instead of silently no-opping.
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// deprecatedAlias wraps a canonical handler for its legacy unversioned
// mount: identical behavior, plus the RFC 8594 deprecation signal and a
// successor link.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		h(w, r)
	}
}

// Handler returns the routing handler (exported for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops the HTTP listener, letting in-flight requests
// finish. The database (and its expansion scheduler) is owned by the
// caller and is not closed here.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// --- handlers ---

type queryRequest struct {
	SQL string `json:"sql"`
	// Mode is "sync" (default: block until the answer, expansions
	// included) or "async" (return 202 + job when an expansion is
	// needed).
	Mode string `json:"mode"`
}

type queryResponse struct {
	Columns   []string              `json:"columns,omitempty"`
	Rows      [][]any               `json:"rows,omitempty"`
	Affected  int                   `json:"affected"`
	Message   string                `json:"message,omitempty"`
	Expansion *core.ExpansionReport `json:"expansion,omitempty"`
	Job       *jobs.Status          `json:"job,omitempty"`
	// Trace is the per-phase and per-operator breakdown, present only
	// for ?trace=1 requests.
	Trace *core.QueryTrace `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		writeError(w, http.StatusServiceUnavailable, CodeQueueFull,
			fmt.Errorf("server: admission queue full (%d in flight)", s.cfg.MaxInflight))
		return
	}

	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("server: empty sql"))
		return
	}

	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		if req.Mode == "async" {
			writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("server: stream=1 is incompatible with mode=async"))
			return
		}
		s.streamQuery(w, r, req.SQL)
		return
	}

	// ?nocache=1 bypasses the semantic result cache for this statement —
	// the escape hatch for clients that must observe the live rows (e.g.
	// verifying an invalidation bug) without disabling the cache globally.
	nocache := false
	if v := r.URL.Query().Get("nocache"); v == "1" || v == "true" {
		nocache = true
	}
	// ?trace=1 executes with per-phase and per-operator tracing on and
	// attaches the annotated plan tree to the response (sync only —
	// async work runs on the scheduler, detached from this request).
	trace := false
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		trace = true
	}

	switch req.Mode {
	case "", "sync":
		if trace {
			res, report, qt, err := s.db.ExecSQLTraced(req.SQL, nocache)
			if err != nil {
				writeQueryError(w, err)
				return
			}
			resp := buildQueryResponse(res, report, nil)
			resp.Trace = qt
			writeJSON(w, http.StatusOK, resp)
			return
		}
		exec := s.db.ExecSQL
		if nocache {
			exec = s.db.ExecSQLNoCache
		}
		res, report, err := exec(req.SQL)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, buildQueryResponse(res, report, nil))
	case "async":
		res, job, err := s.db.ExecSQLAsync(req.SQL)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		if job != nil {
			st := job.Status()
			writeJSON(w, http.StatusAccepted, buildQueryResponse(nil, nil, &st))
			return
		}
		writeJSON(w, http.StatusOK, buildQueryResponse(res, nil, nil))
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("server: unknown mode %q", req.Mode))
	}
}

// streamQuery serves a SELECT as NDJSON (one JSON object per line):
// a header line {"columns": […]}, then {"row": […]} per result row, and
// finally a trailer {"done": true, "rows": n, "expansion": …} — or
// {"error": "…"} at whatever point the query failed. The response is
// flushed as rows are produced, so a client sees data while the scan is
// still running; the engine holds its read locks only per batch, never
// for the duration of the transfer.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, sql string) {
	stream, err := s.db.ExecSQLStream(sql)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	defer stream.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	_ = enc.Encode(map[string]any{"columns": stream.Columns()})
	flush()
	// Flush every flushEvery rows: responsive without one syscall per row.
	const flushEvery = 64
	ctx := r.Context()
	for {
		// A disconnected client must stop the scan, not leave it running
		// to exhaustion against a dead connection.
		if ctx.Err() != nil {
			return
		}
		row, ok, err := stream.Next()
		if err != nil {
			_ = enc.Encode(map[string]any{"error": err.Error()})
			flush()
			return
		}
		if !ok {
			break
		}
		vals := make([]any, len(row))
		for i, v := range row {
			vals[i] = valueToJSON(v)
		}
		if err := enc.Encode(map[string]any{"row": vals}); err != nil {
			return // write failed: the client is gone
		}
		if stream.Rows()%flushEvery == 0 {
			flush()
		}
	}
	trailer := map[string]any{"done": true, "rows": stream.Rows()}
	if rep := stream.Expansion(); rep != nil {
		trailer["expansion"] = rep
	}
	_ = enc.Encode(trailer)
	flush()
}

func buildQueryResponse(res *core.Result, report *core.ExpansionReport, job *jobs.Status) queryResponse {
	out := queryResponse{Expansion: report, Job: job}
	if res == nil {
		return out
	}
	out.Columns = res.Columns
	out.Affected = res.Affected
	out.Message = res.Message
	out.Rows = make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = valueToJSON(v)
		}
		out.Rows[i] = vals
	}
	return out
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.db.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") != "" {
		if job, ok := s.db.JobHandle(id); ok {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.WaitTimeout)
			defer cancel()
			// Result/error surface through the status below; a wait
			// timeout simply returns the still-running snapshot.
			_, _ = job.Wait(ctx)
		}
	}
	st, ok := s.db.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("server: no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSchemaList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"tables":  s.db.Catalog().Names(),
		"backend": s.db.Backend(),
	})
}

type columnInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Perceptual bool   `json:"perceptual"`
	Origin     string `json:"origin"`
}

// indexInfo is one secondary index in the schema inventory. Column is
// the first key column (kept for pre-composite clients); Columns carries
// the full key.
type indexInfo struct {
	Name    string   `json:"name"`
	Column  string   `json:"column"`
	Columns []string `json:"columns,omitempty"`
	Kind    string   `json:"kind"` // "hash" or "ordered"
	Entries int      `json:"entries"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("table")
	tbl, ok := s.db.Catalog().Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("server: no table %q", name))
		return
	}
	schema := tbl.Schema()
	cols := make([]columnInfo, 0, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		c := schema.Column(i)
		cols = append(cols, columnInfo{
			Name: c.Name, Kind: c.Kind.String(),
			Perceptual: c.Perceptual, Origin: c.Origin.String(),
		})
	}
	metas := tbl.IndexMetas()
	indexes := make([]indexInfo, 0, len(metas))
	for _, m := range metas {
		indexes = append(indexes, indexInfo{
			Name: m.Name, Column: m.Column, Columns: m.Columns,
			Kind: m.Kind(), Entries: m.Entries,
		})
	}
	epochs := tbl.LiveSnapshotEpochs()
	if epochs == nil {
		epochs = []uint64{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":   tbl.Name(),
		"rows":    tbl.NumRows(),
		"columns": cols,
		"indexes": indexes,
		// MVCC storage health: sealed chunk count, tombstoned rows not yet
		// compacted (this goes back DOWN when the compactor reclaims them),
		// the epochs readers currently hold pinned (a stuck reader shows up
		// here as an old epoch that never goes away), and cumulative
		// compaction accounting.
		"chunks":               tbl.ChunkCount(),
		"tombstones":           tbl.Tombstones(),
		"live_snapshot_epochs": epochs,
		"compaction":           tbl.CompactionStats(),
	})
}

// jobCost is one job's line in the ledger breakdown.
type jobCost struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	State     jobs.State `json:"state"`
	Origin    string     `json:"origin,omitempty"`
	Judgments int        `json:"judgments"`
	Cost      float64    `json:"cost"`
	Minutes   float64    `json:"minutes"`
	Charges   int        `json:"charges"`
}

// ledgerResponse extends the cumulative totals with a per-job cost
// breakdown (every retained expansion job, submission order — restored
// jobs included after a restart).
type ledgerResponse struct {
	core.LedgerTotals
	PerJob []jobCost `json:"per_job"`
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	resp := ledgerResponse{LedgerTotals: s.db.Ledger(), PerJob: []jobCost{}}
	for _, st := range s.db.Jobs() {
		resp.PerJob = append(resp.PerJob, jobCost{
			ID: st.ID, Key: st.Key, State: st.State, Origin: st.Origin,
			Judgments: st.Ledger.Judgments, Cost: st.Ledger.Cost,
			Minutes: st.Ledger.Minutes, Charges: st.Ledger.Charges,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// adminExpandRequest is the POST /admin/expand body: an explicit
// pre-warm expansion attributed to an API key, with an optional budget
// cap installed for that key in the same call.
type adminExpandRequest struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	// Kind is the column type; only BOOLEAN is crowd-expandable.
	// Defaults to BOOLEAN.
	Kind string `json:"kind,omitempty"`
	// Method is CROWD, SPACE, or HYBRID; empty picks the table default.
	Method string `json:"method,omitempty"`
	// Samples overrides SamplesPerClass for SPACE expansions.
	Samples int `json:"samples,omitempty"`
	// Key attributes the crowd spend to a per-key budget.
	Key string `json:"key,omitempty"`
	// Budget, with Key, installs (or replaces) the key's dollar cap
	// before the expansion is considered.
	Budget float64 `json:"budget,omitempty"`
}

// handleAdminExpand schedules an explicit pre-warm expansion. The
// projected crowd cost is checked against the key's budget cap BEFORE
// any HIT is issued; a request the cap cannot cover is rejected with
// 402 Payment Required (cap and recorded spend are durable, so the
// rejection is reproducible across restarts). Success returns 202 with
// the job handle to poll.
func (s *Server) handleAdminExpand(w http.ResponseWriter, r *http.Request) {
	var req adminExpandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return
	}
	if req.Table == "" || req.Column == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("server: expand requires table and column"))
		return
	}
	switch req.Kind {
	case "", "BOOLEAN", "boolean", "BOOL", "bool":
		// KindBool — the only crowd-expandable kind.
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("server: unsupported kind %q (only BOOLEAN is crowd-expandable)", req.Kind))
		return
	}
	if req.Budget > 0 && req.Key == "" {
		// A budget with no key to bind it to would silently run the
		// expansion uncapped — the opposite of what the caller asked.
		writeError(w, http.StatusBadRequest, CodeBadRequest, errors.New("server: budget requires a key to attribute it to"))
		return
	}
	if req.Budget > 0 {
		if err := s.db.SetBudget(req.Key, req.Budget); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
			return
		}
	}
	opts := core.ExpandOptions{
		Method: sqlparse.ExpandMethod(strings.ToUpper(req.Method)),
		APIKey: req.Key,
		Origin: core.OriginAdmin,
	}
	if req.Samples > 0 {
		opts.SamplesPerClass = req.Samples
	}
	job, err := s.db.SubmitExpand(req.Table, req.Column, storage.KindBool, opts)
	if err != nil {
		status, code := classifyErr(err, http.StatusBadRequest, CodeBadRequest)
		writeError(w, status, code, err)
		return
	}
	st := job.Status()
	writeJSON(w, http.StatusAccepted, buildQueryResponse(nil, nil, &st))
}

// handleBudgets lists every API key's cap and cumulative spend.
func (s *Server) handleBudgets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"budgets": s.db.Budgets()})
}

// handleWorkload exposes the workload subsystem's state: durable
// co-access counters, the recent observation trace, result-cache
// effectiveness, and the speculative budget account.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.db.Workload())
}

// handleSnapshot persists a snapshot on demand — the operator's lever for
// bounding recovery time (and WAL disk) between restarts.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	seq, err := s.db.Snapshot()
	if err != nil {
		status, code := classifyErr(err, http.StatusInternalServerError, CodeInternal)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq})
}

// handleAdminCompact forces a tombstone-compaction sweep over every
// table, bypassing the density threshold (pin/fence gates still apply),
// and reports each table's outcome — the operator's lever to reclaim
// DELETE debris without waiting for the background compactor.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.db.CompactNow()})
}

// --- helpers ---

func valueToJSON(v storage.Value) any {
	switch v.Kind() {
	case storage.KindBool:
		b, _ := v.AsBool()
		return b
	case storage.KindInt:
		i, _ := v.AsInt()
		return i
	case storage.KindFloat:
		f, _ := v.AsFloat()
		return f
	case storage.KindText:
		t, _ := v.AsText()
		return t
	default:
		return nil
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
