package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/jobs"
	"crowddb/internal/storage"
)

// fakeService answers every item with a deterministic majority:
// positive iff the item ID is even. A non-nil gate stalls Collect.
type fakeService struct {
	gate  chan struct{}
	calls atomic.Int32
}

func (s *fakeService) Collect(question string, itemIDs []int, cfg crowd.JobConfig) (*crowd.RunResult, error) {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	res := &crowd.RunResult{DurationMinutes: 1}
	for _, id := range itemIDs {
		for a := 0; a < cfg.AssignmentsPerItem; a++ {
			ans := crowd.Positive
			if id%2 == 1 {
				ans = crowd.Negative
			}
			res.Records = append(res.Records, crowd.Record{ItemID: id, WorkerID: a, Answer: ans})
		}
	}
	res.TotalCost = float64(len(res.Records)) * cfg.PayPerHIT / float64(cfg.ItemsPerHIT)
	return res, nil
}

func newTestServer(t *testing.T, svc core.JudgmentService, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := core.NewDB(svc)
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%02d", i)), storage.Int(int64(1990+i))); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterExpandable("movies", "is_comedy", storage.KindBool,
		core.ExpandOptions{Method: "CROWD"})
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url, sql, mode string) (int, queryResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql, Mode: mode})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestQueryRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	code, out := postQuery(t, ts.URL, `SELECT name, year FROM movies WHERE year >= 2005 ORDER BY year`, "")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if len(out.Rows) != 5 || out.Columns[0] != "name" {
		t.Fatalf("response = %+v", out)
	}
	if out.Rows[0][0] != "movie-15" || out.Rows[0][1] != float64(2005) {
		t.Fatalf("row0 = %v", out.Rows[0])
	}
}

func TestSyncQueryExpandsAndReports(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	code, out := postQuery(t, ts.URL, `SELECT COUNT(*) FROM movies WHERE is_comedy = true`, "sync")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if out.Expansion == nil || out.Expansion.Filled != 20 {
		t.Fatalf("expansion = %+v", out.Expansion)
	}
	if out.Rows[0][0] != float64(10) {
		t.Fatalf("count = %v", out.Rows[0][0])
	}
}

func TestAsyncQueryJobPolling(t *testing.T) {
	svc := &fakeService{gate: make(chan struct{})}
	_, ts := newTestServer(t, svc, Config{})

	code, out := postQuery(t, ts.URL, `SELECT name FROM movies WHERE is_comedy = true`, "async")
	if code != http.StatusAccepted {
		t.Fatalf("code = %d", code)
	}
	if out.Job == nil || out.Job.ID == "" {
		t.Fatalf("job = %+v", out.Job)
	}
	if out.Job.State.Terminal() {
		t.Fatalf("job already terminal: %s", out.Job.State)
	}

	// Poll without wait: still running.
	var st jobs.Status
	if code := getJSON(t, ts.URL+"/jobs/"+out.Job.ID, &st); code != http.StatusOK {
		t.Fatalf("poll code = %d", code)
	}
	if st.State.Terminal() {
		t.Fatalf("premature terminal state %s", st.State)
	}

	// Release the crowd and long-poll to completion.
	close(svc.gate)
	if code := getJSON(t, ts.URL+"/jobs/"+out.Job.ID+"?wait=1", &st); code != http.StatusOK {
		t.Fatalf("wait code = %d", code)
	}
	if st.State != jobs.StateDone || st.Ledger.Charges != 1 {
		t.Fatalf("status = %+v", st)
	}

	// The query now answers synchronously with no new expansion.
	code, out = postQuery(t, ts.URL, `SELECT name FROM movies WHERE is_comedy = true`, "async")
	if code != http.StatusOK || out.Job != nil {
		t.Fatalf("code = %d job = %+v", code, out.Job)
	}
	if len(out.Rows) != 10 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	if got := svc.calls.Load(); got != 1 {
		t.Fatalf("service calls = %d, want 1", got)
	}

	// The job list shows exactly one job.
	var list []jobs.Status
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("jobs list code=%d len=%d", code, len(list))
	}
}

func TestSchemaAndLedgerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	var tables struct {
		Tables []string `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/schema", &tables); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if len(tables.Tables) != 1 || tables.Tables[0] != "movies" {
		t.Fatalf("tables = %v", tables.Tables)
	}

	// Expand, then check the new column's provenance shows up.
	if code, _ := postQuery(t, ts.URL, `SELECT 1 FROM movies WHERE is_comedy = true`, "sync"); code != http.StatusOK {
		t.Fatalf("expand code = %d", code)
	}
	var schema struct {
		Table   string       `json:"table"`
		Rows    int          `json:"rows"`
		Columns []columnInfo `json:"columns"`
	}
	if code := getJSON(t, ts.URL+"/schema/movies", &schema); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if schema.Rows != 20 || len(schema.Columns) != 4 {
		t.Fatalf("schema = %+v", schema)
	}
	last := schema.Columns[3]
	if last.Name != "is_comedy" || last.Origin != "expanded" || !last.Perceptual {
		t.Fatalf("expanded column = %+v", last)
	}
	if code := getJSON(t, ts.URL+"/schema/nope", nil); code != http.StatusNotFound {
		t.Fatalf("missing table code = %d", code)
	}

	var led core.LedgerTotals
	if code := getJSON(t, ts.URL+"/ledger", &led); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if led.Jobs != 1 || led.Judgments == 0 {
		t.Fatalf("ledger = %+v", led)
	}
}

// TestLedgerPerJobBreakdown: /ledger must itemize each expansion job's
// spend alongside the cumulative totals, and the per-job costs must sum
// to them.
func TestLedgerPerJobBreakdown(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	// Two distinct expansions → two billed jobs.
	if code, _ := postQuery(t, ts.URL, `SELECT 1 FROM movies WHERE is_comedy = true`, "sync"); code != http.StatusOK {
		t.Fatalf("first expansion code = %d", code)
	}
	if code, _ := postQuery(t, ts.URL, `EXPAND TABLE movies ADD COLUMN is_scary BOOLEAN USING CROWD`, "sync"); code != http.StatusOK {
		t.Fatalf("second expansion code = %d", code)
	}

	var led ledgerResponse
	if code := getJSON(t, ts.URL+"/ledger", &led); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if len(led.PerJob) != 2 {
		t.Fatalf("per_job has %d entries, want 2: %+v", len(led.PerJob), led.PerJob)
	}
	keys := map[string]bool{}
	var sumCost float64
	var sumJudgments int
	for _, j := range led.PerJob {
		if j.ID == "" || j.State != jobs.StateDone || j.Cost == 0 || j.Judgments == 0 {
			t.Fatalf("job line = %+v", j)
		}
		keys[j.Key] = true
		sumCost += j.Cost
		sumJudgments += j.Judgments
	}
	if !keys["movies.is_comedy"] || !keys["movies.is_scary"] {
		t.Fatalf("job keys = %v", keys)
	}
	if sumCost != led.Cost || sumJudgments != led.Judgments {
		t.Fatalf("breakdown (%v, %d) does not sum to totals (%v, %d)",
			sumCost, sumJudgments, led.Cost, led.Judgments)
	}
}

// TestAdminSnapshot: on a durable DB the endpoint persists and reports
// the covered sequence number; on an in-memory DB it is a 409.
func TestAdminSnapshot(t *testing.T) {
	db, err := core.Open(core.Options{Service: &fakeService{}, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE t (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecSQL(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, Config{}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Seq == 0 {
		t.Fatalf("snapshot: code=%d seq=%d", resp.StatusCode, out.Seq)
	}

	// In-memory DB: snapshot is a conflict, not a crash.
	_, tsMem := newTestServer(t, &fakeService{}, Config{})
	resp, err = http.Post(tsMem.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-memory snapshot code = %d, want 409", resp.StatusCode)
	}
}

func TestAdmissionQueueSheds(t *testing.T) {
	svc := &fakeService{gate: make(chan struct{})}
	_, ts := newTestServer(t, svc, Config{MaxInflight: 1})

	// Occupy the single admission slot with a sync expanding query.
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		code, _ := postQuery(t, ts.URL, `SELECT 1 FROM movies WHERE is_comedy = true`, "sync")
		if code != http.StatusOK {
			t.Errorf("blocked query finished with %d", code)
		}
	}()
	<-started
	// Give the in-flight request time to take the slot, then expect 503.
	deadline := time.Now().Add(2 * time.Second)
	got503 := false
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(queryRequest{SQL: `SELECT 1 FROM movies`})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if retry == "" {
				t.Fatal("503 without Retry-After")
			}
			got503 = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !got503 {
		t.Fatal("admission queue never shed load")
	}
	close(svc.gate)
	<-done
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	if code, _ := postQuery(t, ts.URL, "", ""); code != http.StatusBadRequest {
		t.Fatalf("empty sql code = %d", code)
	}
	if code, _ := postQuery(t, ts.URL, "SELECT 1 FROM movies", "weird"); code != http.StatusBadRequest {
		t.Fatalf("bad mode code = %d", code)
	}
	if code, _ := postQuery(t, ts.URL, "SELEKT broken", ""); code != http.StatusBadRequest {
		t.Fatalf("parse error code = %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/job-999", nil); code != http.StatusNotFound {
		t.Fatalf("missing job code = %d", code)
	}
}

func TestGracefulShutdown(t *testing.T) {
	db := core.NewDB(&fakeService{})
	defer db.Close()
	if _, _, err := db.ExecSQL(`CREATE TABLE t (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}
