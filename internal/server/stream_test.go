package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowddb/internal/core"
)

// joinServer builds a two-table database: movies plus a credits table
// keyed by movie id.
func joinServer(t *testing.T) (*Server, string) {
	t.Helper()
	db := core.NewDB(nil)
	t.Cleanup(func() { _ = db.Close() })
	mustSQL := func(sql string) {
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`)
	mustSQL(`CREATE TABLE credits (credit_id INTEGER, movie INTEGER, role TEXT)`)
	for i := 0; i < 10; i++ {
		mustSQL(fmt.Sprintf(`INSERT INTO movies VALUES (%d, 'movie-%02d', %d)`, i, i, 1990+i))
		mustSQL(fmt.Sprintf(`INSERT INTO credits VALUES (%d, %d, 'director'), (%d, %d, 'writer')`,
			2*i, i, 2*i+1, i))
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// TestJoinEndToEndOverHTTP exercises the acceptance query shape:
// SELECT a.x, b.y FROM a JOIN b ON … WHERE … ORDER BY … LIMIT n.
func TestJoinEndToEndOverHTTP(t *testing.T) {
	_, url := joinServer(t)
	code, res := postQuery(t, url,
		`SELECT m.name, c.role FROM movies m JOIN credits c ON m.movie_id = c.movie
		 WHERE m.year >= 1995 AND c.role = 'director'
		 ORDER BY m.year DESC LIMIT 3`, "sync")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" || res.Columns[1] != "role" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Years 1999, 1998, 1997 → movies 9, 8, 7; one director row each.
	if res.Rows[0][0] != "movie-09" || res.Rows[2][0] != "movie-07" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

// TestExplainOverHTTPShowsPushdownBelowJoin asserts the planner pushed
// the single-table WHERE conjuncts below the hash join, into the scans.
func TestExplainOverHTTPShowsPushdownBelowJoin(t *testing.T) {
	_, url := joinServer(t)
	code, res := postQuery(t, url,
		`EXPLAIN SELECT m.name, c.role FROM movies m JOIN credits c ON m.movie_id = c.movie
		 WHERE m.year >= 1995 AND c.role = 'director'
		 ORDER BY m.year DESC LIMIT 3`, "sync")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %+v", code, res)
	}
	var lines []string
	for _, row := range res.Rows {
		lines = append(lines, row[0].(string))
	}
	text := strings.Join(lines, "\n")
	// The greedy join orderer picks the smaller filtered side (movies)
	// as the build input, so the key renders probe-side first.
	for _, want := range []string{
		"TopN(n=3",
		"HashJoin(c.movie = m.movie_id)",
		"Scan(movies m, filter=(m.year >= 1995))",
		"Scan(credits c, filter=(c.role = 'director'))",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	// Pushdown means no residual Filter node remains above the join.
	if strings.Contains(text, "Filter(") {
		t.Fatalf("expected fully pushed-down predicates:\n%s", text)
	}
}

// streamLines POSTs a streaming query and parses the NDJSON lines.
func streamLines(t *testing.T, url, sql string) (int, []map[string]any) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql})
	resp, err := http.Post(url+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, obj)
	}
	return resp.StatusCode, out
}

func TestStreamingSelectNDJSON(t *testing.T) {
	_, url := joinServer(t)
	code, lines := streamLines(t, url, `SELECT name FROM movies WHERE year < 1995 ORDER BY year`)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(lines) != 7 { // header + 5 rows + trailer
		t.Fatalf("lines = %d: %v", len(lines), lines)
	}
	cols, ok := lines[0]["columns"].([]any)
	if !ok || len(cols) != 1 || cols[0] != "name" {
		t.Fatalf("header = %v", lines[0])
	}
	first, _ := lines[1]["row"].([]any)
	if len(first) != 1 || first[0] != "movie-00" {
		t.Fatalf("first row = %v", lines[1])
	}
	trailer := lines[len(lines)-1]
	if trailer["done"] != true || trailer["rows"] != float64(5) {
		t.Fatalf("trailer = %v", trailer)
	}
}

func TestStreamingRejectsNonSelectAndAsync(t *testing.T) {
	_, url := joinServer(t)
	code, lines := streamLines(t, url, `DELETE FROM movies`)
	if code != http.StatusBadRequest {
		t.Fatalf("DML stream status = %d %v", code, lines)
	}

	body, _ := json.Marshal(queryRequest{SQL: "SELECT name FROM movies", Mode: "async"})
	resp, err := http.Post(url+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async stream status = %d", resp.StatusCode)
	}
}

// Streaming on an unexpanded registered column must complete the crowd
// job before the first row arrives — the header and rows reflect the
// filled column.
func TestStreamingWaitsForExpansion(t *testing.T) {
	svc := &fakeService{}
	_, ts := newTestServer(t, svc, Config{})
	code, lines := streamLines(t, ts.URL, `SELECT name FROM movies WHERE is_comedy = true ORDER BY name`)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, lines)
	}
	trailer := lines[len(lines)-1]
	if trailer["done"] != true {
		t.Fatalf("trailer = %v", trailer)
	}
	if trailer["expansion"] == nil {
		t.Fatal("trailer must carry the expansion report")
	}
	// fakeService marks even ids positive → 10 of 20 movies match.
	if trailer["rows"] != float64(10) {
		t.Fatalf("rows = %v", trailer["rows"])
	}
	if svc.calls.Load() == 0 {
		t.Fatal("expansion never reached the crowd service")
	}
}
