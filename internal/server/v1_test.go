package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestV1AndLegacyAnswerIdentically exercises every aliased endpoint under
// both mounts: same status, same body bytes, and the legacy mount carries
// the RFC 8594 Deprecation header plus a successor Link while /v1 stays
// clean.
func TestV1AndLegacyAnswerIdentically(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	queryBody := `{"sql":"SELECT name FROM movies WHERE movie_id = 3"}`
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/query", queryBody},
		{"GET", "/jobs", ""},
		{"GET", "/schema", ""},
		{"GET", "/schema/movies", ""},
		{"GET", "/ledger", ""},
		{"GET", "/budgets", ""},
		{"GET", "/workload", ""},
	}
	do := func(method, url, body string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}
	for _, c := range cases {
		legacy, legacyBody := do(c.method, ts.URL+c.path, c.body)
		v1, v1Body := do(c.method, ts.URL+"/v1"+c.path, c.body)
		if legacy.StatusCode != v1.StatusCode {
			t.Errorf("%s %s: legacy status %d, v1 status %d", c.method, c.path, legacy.StatusCode, v1.StatusCode)
		}
		if legacyBody != v1Body {
			t.Errorf("%s %s: body diverged\nlegacy: %s\nv1:     %s", c.method, c.path, legacyBody, v1Body)
		}
		if got := legacy.Header.Get("Deprecation"); got != "true" {
			t.Errorf("%s %s: legacy Deprecation header = %q, want \"true\"", c.method, c.path, got)
		}
		wantLink := `</v1` + c.path + `>; rel="successor-version"`
		if got := legacy.Header.Get("Link"); got != wantLink {
			t.Errorf("%s %s: legacy Link = %q, want %q", c.method, c.path, got, wantLink)
		}
		if got := v1.Header.Get("Deprecation"); got != "" {
			t.Errorf("%s %s: /v1 mount must not carry Deprecation, got %q", c.method, c.path, got)
		}
	}
}

// TestHealthzNotDeprecated: load balancers hardcode /healthz; it stays
// unversioned without a deprecation stamp, and also answers under /v1.
func TestHealthzNotDeprecated(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Deprecation"); got != "" {
			t.Errorf("%s carries Deprecation = %q", path, got)
		}
	}
}

// TestErrorEnvelopeShape: every failure uses the unified
// {"error":{code,message,status}} envelope with stable codes, on both
// mounts.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	decode := func(resp *http.Response) errorBody {
		t.Helper()
		defer resp.Body.Close()
		var body map[string]errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode envelope: %v", err)
		}
		return body["error"]
	}

	// Parse error → bad_request, both mounts.
	for _, prefix := range []string{"", "/v1"} {
		resp, err := http.Post(ts.URL+prefix+"/query", "application/json",
			strings.NewReader(`{"sql":"SELECTT * FROM movies"}`))
		if err != nil {
			t.Fatal(err)
		}
		e := decode(resp)
		if resp.StatusCode != http.StatusBadRequest || e.Code != CodeBadRequest || e.Status != http.StatusBadRequest {
			t.Errorf("%s/query parse error: status=%d envelope=%+v", prefix, resp.StatusCode, e)
		}
		if e.Message == "" {
			t.Errorf("%s/query: empty message in envelope", prefix)
		}
	}

	// Unknown job → not_found.
	resp, err := http.Get(ts.URL + "/v1/jobs/9999")
	if err != nil {
		t.Fatal(err)
	}
	if e := decode(resp); resp.StatusCode != http.StatusNotFound || e.Code != CodeNotFound {
		t.Errorf("jobs/9999: status=%d code=%q", resp.StatusCode, e.Code)
	}

	// Unknown schema table → not_found.
	resp, err = http.Get(ts.URL + "/v1/schema/nope")
	if err != nil {
		t.Fatal(err)
	}
	if e := decode(resp); resp.StatusCode != http.StatusNotFound || e.Code != CodeNotFound {
		t.Errorf("schema/nope: status=%d code=%q", resp.StatusCode, e.Code)
	}

	// admin/expand on a missing table → no_such_table (404).
	body, _ := json.Marshal(map[string]any{"table": "ghost", "column": "x"})
	resp, err = http.Post(ts.URL+"/v1/admin/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if e := decode(resp); resp.StatusCode != http.StatusNotFound || e.Code != CodeNoSuchTable {
		t.Errorf("admin/expand ghost: status=%d code=%q", resp.StatusCode, e.Code)
	}

	// Snapshot without a data dir → no_data_dir (409).
	resp, err = http.Post(ts.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := decode(resp); resp.StatusCode != http.StatusConflict || e.Code != CodeNoDataDir {
		t.Errorf("admin/snapshot: status=%d code=%q", resp.StatusCode, e.Code)
	}
}

// TestAdminCompactEndpoint: POST /v1/admin/compact forces a sweep and
// reports per-table results; GET /v1/schema/{table} then shows tombstones
// back at zero with compaction counters up.
func TestAdminCompactEndpoint(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})

	// Tombstone some rows first.
	if code, _ := postQuery(t, ts.URL, `DELETE FROM movies WHERE movie_id < 10`, ""); code != http.StatusOK {
		t.Fatalf("delete status = %d", code)
	}

	var before struct {
		Tombstones int `json:"tombstones"`
	}
	if code := getJSON(t, ts.URL+"/v1/schema/movies", &before); code != http.StatusOK {
		t.Fatalf("schema status = %d", code)
	}
	if before.Tombstones != 10 {
		t.Fatalf("tombstones before compact = %d, want 10", before.Tombstones)
	}

	resp, err := http.Post(ts.URL+"/v1/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("compact status = %d body=%s", resp.StatusCode, b)
	}
	var out struct {
		Tables map[string]struct {
			Compacted     bool `json:"compacted"`
			RowsReclaimed int  `json:"rows_reclaimed"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if got := out.Tables["movies"]; !got.Compacted || got.RowsReclaimed != 10 {
		t.Fatalf("compact result for movies = %+v", got)
	}

	var after struct {
		Tombstones int `json:"tombstones"`
		Rows       int `json:"rows"`
		Compaction struct {
			Runs          int64 `json:"runs"`
			RowsReclaimed int64 `json:"rows_reclaimed"`
		} `json:"compaction"`
	}
	if code := getJSON(t, ts.URL+"/v1/schema/movies", &after); code != http.StatusOK {
		t.Fatalf("schema status = %d", code)
	}
	if after.Tombstones != 0 {
		t.Errorf("tombstones after compact = %d, want 0", after.Tombstones)
	}
	if after.Compaction.Runs < 1 || after.Compaction.RowsReclaimed != 10 {
		t.Errorf("compaction stats = %+v", after.Compaction)
	}

	// The surviving rows still answer correctly.
	code, q := postQuery(t, ts.URL, `SELECT name FROM movies WHERE movie_id = 15`, "")
	if code != http.StatusOK || len(q.Rows) != 1 || q.Rows[0][0] != "movie-15" {
		t.Fatalf("post-compact query: status=%d rows=%+v", code, q.Rows)
	}

	// Legacy mount has no /admin/compact — it is new in v1.
	resp, err = http.Post(ts.URL+"/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("legacy /admin/compact status = %d, want 404", resp.StatusCode)
	}
}

// TestSchemaListReportsBackend: GET /v1/schema names the active storage
// backend so operators can confirm which seam implementation is live.
func TestSchemaListReportsBackend(t *testing.T) {
	_, ts := newTestServer(t, &fakeService{}, Config{})
	var out struct {
		Backend string   `json:"backend"`
		Tables  []string `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/v1/schema", &out); code != http.StatusOK {
		t.Fatalf("schema status = %d", code)
	}
	if out.Backend != "mem" {
		t.Errorf("backend = %q, want \"mem\"", out.Backend)
	}
	if len(out.Tables) != 1 || out.Tables[0] != "movies" {
		t.Errorf("tables = %v", out.Tables)
	}
}
