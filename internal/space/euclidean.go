package space

import (
	"fmt"
	"math"
	"math/rand"

	"crowddb/internal/vecmath"
)

// Config holds factor-model hyperparameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Dims is the dimensionality d of the space. The paper uses 100 and
	// reports insensitivity as long as d is "large enough".
	Dims int
	// Lambda is the regularization constant λ; the paper found 0.02 to
	// work across data sets.
	Lambda float64
	// LearnRate is the SGD step size.
	LearnRate float64
	// LearnRateDecay multiplies the step size after each epoch.
	LearnRateDecay float64
	// Epochs is the number of SGD passes over the ratings.
	Epochs int
	// InitScale is the coordinate initialization range.
	InitScale float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's published hyperparameters
// (d = 100, λ = 0.02); the SGD-specific knobs are set to values that
// converge on every dataset in this repository.
func DefaultConfig() Config {
	return Config{
		Dims:           100,
		Lambda:         0.02,
		LearnRate:      0.02,
		LearnRateDecay: 0.95,
		Epochs:         25,
		InitScale:      0.1,
		Seed:           1,
	}
}

func (c Config) validate() error {
	if c.Dims <= 0 {
		return fmt.Errorf("space: Dims must be positive, got %d", c.Dims)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("space: Epochs must be positive, got %d", c.Epochs)
	}
	if c.LearnRate <= 0 {
		return fmt.Errorf("space: LearnRate must be positive, got %g", c.LearnRate)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("space: Lambda must be non-negative, got %g", c.Lambda)
	}
	return nil
}

// TrainStats reports per-epoch training progress.
type TrainStats struct {
	// EpochRMSE[k] is the root-mean-square training error after epoch k.
	EpochRMSE []float64
}

// FinalRMSE returns the last epoch's RMSE, or +Inf if training never ran.
func (s TrainStats) FinalRMSE() float64 {
	if len(s.EpochRMSE) == 0 {
		return math.Inf(1)
	}
	return s.EpochRMSE[len(s.EpochRMSE)-1]
}

// Model is the common interface of the factor models in this package.
type Model interface {
	// Predict estimates the rating of item m by user u.
	Predict(m, u int) float64
	// ItemVector returns item m's coordinates (a view, do not mutate).
	ItemVector(m int) []float64
	// Dims returns the space dimensionality.
	Dims() int
	// NumItems returns the number of items.
	NumItems() int
}

// EuclideanModel is the paper's modified Euclidean-embedding factor model.
type EuclideanModel struct {
	Mu       float64
	ItemBias []float64
	UserBias []float64
	Items    *vecmath.Matrix // nItems × d
	Users    *vecmath.Matrix // nUsers × d
}

var _ Model = (*EuclideanModel)(nil)

// Dims returns the space dimensionality.
func (m *EuclideanModel) Dims() int { return m.Items.Cols }

// NumItems returns the number of items.
func (m *EuclideanModel) NumItems() int { return m.Items.Rows }

// ItemVector returns item i's coordinates in the perceptual space.
func (m *EuclideanModel) ItemVector(i int) []float64 { return m.Items.Row(i) }

// Predict estimates r̂ = μ + δm + δu − ‖a_m − b_u‖².
func (m *EuclideanModel) Predict(item, user int) float64 {
	return m.Mu + m.ItemBias[item] + m.UserBias[user] -
		vecmath.SqDist(m.Items.Row(item), m.Users.Row(user))
}

// RMSE computes the model's root-mean-square error over ratings.
func modelRMSE(m Model, ratings []Rating, predict func(Rating) float64) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range ratings {
		e := float64(r.Score) - predict(r)
		s += e * e
	}
	return math.Sqrt(s / float64(len(ratings)))
}

// RMSE computes the model's error on a rating set.
func (m *EuclideanModel) RMSE(ratings []Rating) float64 {
	return modelRMSE(m, ratings, func(r Rating) float64 { return m.Predict(int(r.Item), int(r.User)) })
}

// TrainEuclidean fits the paper's Euclidean-embedding model to the dataset
// by stochastic gradient descent on the objective of §3.3:
//
//	Σ ( r − [μ + δm + δu − d²(a,b)] )² + λ ( d⁴(a,b) + δm² + δu² ).
//
// Biases start at zero, coordinates at small uniform noise; each epoch
// visits the ratings in a fresh random order. Gradient steps are clipped to
// keep early epochs stable at large learning rates.
func TrainEuclidean(data *Dataset, cfg Config) (*EuclideanModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &EuclideanModel{
		Mu:       data.Mean(),
		ItemBias: make([]float64, data.Items),
		UserBias: make([]float64, data.Users),
		Items:    vecmath.NewMatrix(data.Items, cfg.Dims),
		Users:    vecmath.NewMatrix(data.Users, cfg.Dims),
	}
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))
	model.Users.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))

	stats := TrainStats{}
	lr := cfg.LearnRate
	order := make([]int, len(data.Ratings))
	for i := range order {
		order[i] = i
	}

	const clip = 4.0 // bound per-sample error signal; keeps SGD stable

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumSq float64
		for _, ri := range order {
			r := data.Ratings[ri]
			mi, ui := int(r.Item), int(r.User)
			a := model.Items.Row(mi)
			b := model.Users.Row(ui)

			d2 := vecmath.SqDist(a, b)
			pred := model.Mu + model.ItemBias[mi] + model.UserBias[ui] - d2
			e := float64(r.Score) - pred
			sumSq += e * e
			e = vecmath.Clamp(e, -clip, clip)

			// Bias updates: δ ← δ + lr (e − λ δ).
			model.ItemBias[mi] += lr * (e - cfg.Lambda*model.ItemBias[mi])
			model.UserBias[ui] += lr * (e - cfg.Lambda*model.UserBias[ui])

			// Coordinate updates. For each dimension k:
			//   ∂loss/∂a_k = 4 (a_k − b_k)(e + λ d²)   [descent direction]
			// (the shared factor 4 is absorbed into the learning rate; the
			// sign convention: positive error e pulls the item toward the
			// user, the d⁴ regularizer always contracts distances).
			g := lr * (e + cfg.Lambda*d2)
			for k := range a {
				diff := a[k] - b[k]
				a[k] -= g * diff
				b[k] += g * diff
			}
		}
		stats.EpochRMSE = append(stats.EpochRMSE, math.Sqrt(sumSq/float64(len(order))))
		lr *= cfg.LearnRateDecay
	}
	return model, stats, nil
}
