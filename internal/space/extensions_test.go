package space

import (
	"math"
	"math/rand"
	"testing"

	"crowddb/internal/vecmath"
)

func TestParallelMatchesSequentialQuality(t *testing.T) {
	w := makeWorld(150, 250, 35, 3, 21)
	cfg := smallConfig()

	seq, seqStats, err := TrainEuclidean(w.data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, parStats, err := TrainEuclideanParallel(w.data, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// DSGD visits ratings in a different order, so the models differ, but
	// the fit quality must be equivalent.
	if parStats.FinalRMSE() > seqStats.FinalRMSE()*1.15 {
		t.Fatalf("parallel RMSE %.4f much worse than sequential %.4f",
			parStats.FinalRMSE(), seqStats.FinalRMSE())
	}
	if par.RMSE(w.data.Ratings) > seq.RMSE(w.data.Ratings)*1.15 {
		t.Fatalf("parallel model error %.4f vs sequential %.4f",
			par.RMSE(w.data.Ratings), seq.RMSE(w.data.Ratings))
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	w := makeWorld(60, 100, 20, 2, 22)
	cfg := smallConfig()
	cfg.Epochs = 5
	m1, _, err := TrainEuclideanParallel(w.data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := TrainEuclideanParallel(w.data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Items.Data {
		if m1.Items.Data[i] != m2.Items.Data[i] {
			t.Fatal("DSGD must be deterministic for a fixed seed and worker count")
		}
	}
}

func TestParallelWorkerCountEdgeCases(t *testing.T) {
	w := makeWorld(30, 40, 10, 2, 23)
	cfg := smallConfig()
	cfg.Epochs = 3
	// workers <= 0 → GOMAXPROCS; workers > items → clamped.
	for _, workers := range []int{0, 1, 64} {
		if _, _, err := TrainEuclideanParallel(w.data, cfg, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	empty := &Dataset{Items: 5, Users: 5}
	if _, _, err := TrainEuclideanParallel(empty, cfg, 2); err == nil {
		t.Fatal("empty ratings must fail")
	}
	bad := cfg
	bad.Dims = 0
	if _, _, err := TrainEuclideanParallel(w.data, bad, 2); err == nil {
		t.Fatal("invalid config must fail")
	}
}

// bimodalWorld generates users with two distinct taste modes: each user
// alternates between two far-apart latent positions. A single-point user
// model cannot explain both; the multi-point model can.
func bimodalWorld(nItems, nUsers, perMode int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dims = 2
	itemPos := vecmath.NewMatrix(nItems, dims)
	itemPos.FillRandom(rng, 3.0)
	var ratings []Rating
	for u := 0; u < nUsers; u++ {
		// Two taste centres on opposite sides of the space.
		modes := [2][]float64{
			{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3},
			{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3},
		}
		for mode := 0; mode < 2; mode++ {
			seen := map[int]bool{}
			for n := 0; n < perMode; n++ {
				m := rng.Intn(nItems)
				if seen[m] {
					continue
				}
				seen[m] = true
				d2 := vecmath.SqDist(itemPos.Row(m), modes[mode])
				score := 4.5 - 0.08*d2 + rng.NormFloat64()*0.2
				ratings = append(ratings, Rating{
					Item: int32(m), User: int32(u),
					Score: float32(vecmath.Clamp(score, 1, 5)),
				})
			}
		}
	}
	return &Dataset{Items: nItems, Users: nUsers, Ratings: ratings}
}

func TestMultiPointBeatsSinglePointOnBimodalUsers(t *testing.T) {
	data := bimodalWorld(100, 120, 15, 24)
	cfg := smallConfig()
	cfg.Dims = 4
	cfg.Epochs = 40

	single, _, err := TrainEuclidean(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := TrainMultiPoint(data, cfg, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rmseSingle := single.RMSE(data.Ratings)
	rmseMulti := multi.RMSE(data.Ratings)
	if rmseMulti >= rmseSingle*0.97 {
		t.Fatalf("multi-point RMSE %.4f should clearly beat single-point %.4f on bimodal users",
			rmseMulti, rmseSingle)
	}
}

func TestMultiPointReducesToSingleBehaviour(t *testing.T) {
	w := makeWorld(80, 120, 25, 3, 25)
	cfg := smallConfig()
	cfg.Epochs = 20
	multi, stats, err := TrainMultiPoint(w.data, cfg, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalRMSE() > 0.8 {
		t.Fatalf("K=1 multi-point RMSE = %.4f, should train fine", stats.FinalRMSE())
	}
	// Interface sanity.
	if multi.Dims() != cfg.Dims || multi.NumItems() != 80 {
		t.Fatal("model interface broken")
	}
	p := multi.Predict(0, 0)
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction = %v", p)
	}
	// The item space snapshot works like any other model's.
	sp := FromModel(multi)
	if sp.NumItems() != 80 {
		t.Fatal("FromModel on multi-point model broken")
	}
}

func TestMultiPointValidation(t *testing.T) {
	w := makeWorld(20, 20, 5, 2, 26)
	cfg := smallConfig()
	if _, _, err := TrainMultiPoint(w.data, cfg, 0, 1); err == nil {
		t.Fatal("K=0 must fail")
	}
	empty := &Dataset{Items: 2, Users: 2}
	if _, _, err := TrainMultiPoint(empty, cfg, 2, 1); err == nil {
		t.Fatal("empty must fail")
	}
	bad := cfg
	bad.Epochs = 0
	if _, _, err := TrainMultiPoint(w.data, bad, 2, 1); err == nil {
		t.Fatal("bad config must fail")
	}
	// tau <= 0 falls back to a sane default rather than failing.
	if _, _, err := TrainMultiPoint(w.data, cfg, 2, -1); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPointWeightsSumToOne(t *testing.T) {
	w := makeWorld(30, 30, 10, 2, 27)
	cfg := smallConfig()
	cfg.Epochs = 5
	m, _, err := TrainMultiPoint(w.data, cfg, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, 3)
	for i := 0; i < 10; i++ {
		m.userWeights(m.Items.Row(i), i%30, weights)
		var sum float64
		for _, v := range weights {
			if v < 0 || v > 1 {
				t.Fatalf("weight %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}
