package space

import (
	"fmt"
	"math"
	"math/rand"

	"crowddb/internal/vecmath"
)

// MultiPointModel implements the paper's §5 "advanced perceptual spaces"
// extension: each user is represented by several points in the space to
// model diverse interests (a film-noir-loving comedy fan is not halfway
// between noir and comedy). The predicted rating uses a soft minimum over
// the user's points:
//
//	r̂ = μ + δm + δu − Σ_k w_k · d²(a_m, b_{u,k})
//	w_k = softmax_k( −d²(a_m, b_{u,k}) / τ )
//
// With K = 1 this reduces exactly to EuclideanModel. Item coordinates
// remain a single point each, so the perceptual space handed to
// classifiers keeps its shape.
type MultiPointModel struct {
	Mu       float64
	ItemBias []float64
	UserBias []float64
	Items    *vecmath.Matrix
	// UserPoints is (nUsers·K) × d: user u's k-th point is row u*K+k.
	UserPoints *vecmath.Matrix
	K          int
	Tau        float64
}

var _ Model = (*MultiPointModel)(nil)

// Dims returns the space dimensionality.
func (m *MultiPointModel) Dims() int { return m.Items.Cols }

// NumItems returns the number of items.
func (m *MultiPointModel) NumItems() int { return m.Items.Rows }

// ItemVector returns item i's coordinates.
func (m *MultiPointModel) ItemVector(i int) []float64 { return m.Items.Row(i) }

// userWeights computes the soft-min weights of user u's points for item
// coordinates a; dst must have length K. Returns the weighted distance.
func (m *MultiPointModel) userWeights(a []float64, u int, dst []float64) float64 {
	maxNeg := math.Inf(-1)
	for k := 0; k < m.K; k++ {
		d2 := vecmath.SqDist(a, m.UserPoints.Row(u*m.K+k))
		dst[k] = -d2 / m.Tau
		if dst[k] > maxNeg {
			maxNeg = dst[k]
		}
	}
	var z float64
	for k := 0; k < m.K; k++ {
		dst[k] = math.Exp(dst[k] - maxNeg)
		z += dst[k]
	}
	var soft float64
	for k := 0; k < m.K; k++ {
		dst[k] /= z
		soft += dst[k] * vecmath.SqDist(a, m.UserPoints.Row(u*m.K+k))
	}
	return soft
}

// Predict estimates user u's rating of item i.
func (m *MultiPointModel) Predict(item, user int) float64 {
	w := make([]float64, m.K)
	soft := m.userWeights(m.Items.Row(item), user, w)
	return m.Mu + m.ItemBias[item] + m.UserBias[user] - soft
}

// RMSE computes the model's error on a rating set.
func (m *MultiPointModel) RMSE(ratings []Rating) float64 {
	return modelRMSE(m, ratings, func(r Rating) float64 { return m.Predict(int(r.Item), int(r.User)) })
}

// TrainMultiPoint fits the multi-point model by SGD. The soft-min weights
// are treated as constants within each gradient step (an EM-style
// approximation: the responsibility assignment is held fixed while the
// geometry moves).
func TrainMultiPoint(data *Dataset, cfg Config, K int, tau float64) (*MultiPointModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}
	if K <= 0 {
		return nil, TrainStats{}, fmt.Errorf("space: K must be positive, got %d", K)
	}
	if tau <= 0 {
		tau = 1.0
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &MultiPointModel{
		Mu:         data.Mean(),
		ItemBias:   make([]float64, data.Items),
		UserBias:   make([]float64, data.Users),
		Items:      vecmath.NewMatrix(data.Items, cfg.Dims),
		UserPoints: vecmath.NewMatrix(data.Users*K, cfg.Dims),
		K:          K,
		Tau:        tau,
	}
	// Spread each user's points wide apart at init so the soft-min can
	// specialize them to different taste regions; a tight initialization
	// keeps all points glued together and the model collapses to K = 1.
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))
	model.UserPoints.FillRandom(rng, 1.0)

	stats := TrainStats{}
	lr := cfg.LearnRate
	const clip = 4.0
	order := make([]int, len(data.Ratings))
	for i := range order {
		order[i] = i
	}
	w := make([]float64, K)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumSq float64
		for _, ri := range order {
			r := data.Ratings[ri]
			mi, ui := int(r.Item), int(r.User)
			a := model.Items.Row(mi)

			soft := model.userWeights(a, ui, w)
			pred := model.Mu + model.ItemBias[mi] + model.UserBias[ui] - soft
			e := float64(r.Score) - pred
			sumSq += e * e
			e = vecmath.Clamp(e, -clip, clip)

			model.ItemBias[mi] += lr * (e - cfg.Lambda*model.ItemBias[mi])
			model.UserBias[ui] += lr * (e - cfg.Lambda*model.UserBias[ui])

			// With weights fixed, ∂soft/∂a = Σ_k w_k · 2(a − b_k) and
			// ∂soft/∂b_k = w_k · 2(b_k − a); absorb the 2 into lr as in
			// the single-point trainer, plus the d⁴-style contraction.
			g := lr * (e + cfg.Lambda*soft)
			for k := 0; k < K; k++ {
				if w[k] < 1e-6 {
					continue
				}
				b := model.UserPoints.Row(ui*K + k)
				gw := g * w[k]
				for x := range a {
					diff := a[x] - b[x]
					a[x] -= gw * diff
					b[x] += gw * diff
				}
			}
		}
		stats.EpochRMSE = append(stats.EpochRMSE, math.Sqrt(sumSq/float64(len(order))))
		lr *= cfg.LearnRateDecay
	}
	return model, stats, nil
}
