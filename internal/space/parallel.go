package space

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"crowddb/internal/vecmath"
)

// TrainEuclideanParallel fits the Euclidean-embedding model with
// distributed stochastic gradient descent (DSGD, Gemulla et al. — the
// paper's reference [13] for training factor models "even on large data
// sets"). Items and users are partitioned into P blocks; each sub-epoch
// processes P interchangeable strata — (item-block p, user-block
// (p+s) mod P) — in parallel. Strata touch disjoint parameters, so no
// locks are needed and the result is deterministic for a fixed seed
// regardless of goroutine scheduling.
//
// workers <= 0 selects GOMAXPROCS (capped at 8; beyond that, stratum
// imbalance dominates).
func TrainEuclideanParallel(data *Dataset, cfg Config, workers int) (*EuclideanModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 8 {
		workers = 8
	}
	if workers > data.Items {
		workers = data.Items
	}
	if workers > data.Users {
		workers = data.Users
	}
	if workers < 1 {
		workers = 1
	}
	P := workers

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &EuclideanModel{
		Mu:       data.Mean(),
		ItemBias: make([]float64, data.Items),
		UserBias: make([]float64, data.Users),
		Items:    vecmath.NewMatrix(data.Items, cfg.Dims),
		Users:    vecmath.NewMatrix(data.Users, cfg.Dims),
	}
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))
	model.Users.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))

	// Bucket ratings into the P×P grid by contiguous ranges.
	itemBlock := func(i int32) int { return int(int64(i) * int64(P) / int64(data.Items)) }
	userBlock := func(u int32) int { return int(int64(u) * int64(P) / int64(data.Users)) }
	buckets := make([][]int, P*P) // rating indices
	for ri, r := range data.Ratings {
		b := itemBlock(r.Item)*P + userBlock(r.User)
		buckets[b] = append(buckets[b], ri)
	}

	stats := TrainStats{}
	lr := cfg.LearnRate
	const clip = 4.0

	// processBucket runs plain SGD over one bucket with its own RNG.
	processBucket := func(bucket []int, lr float64, seed int64) float64 {
		brng := rand.New(rand.NewSource(seed))
		order := make([]int, len(bucket))
		copy(order, bucket)
		brng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumSq float64
		for _, ri := range order {
			r := data.Ratings[ri]
			mi, ui := int(r.Item), int(r.User)
			a := model.Items.Row(mi)
			b := model.Users.Row(ui)
			d2 := vecmath.SqDist(a, b)
			pred := model.Mu + model.ItemBias[mi] + model.UserBias[ui] - d2
			e := float64(r.Score) - pred
			sumSq += e * e
			e = vecmath.Clamp(e, -clip, clip)
			model.ItemBias[mi] += lr * (e - cfg.Lambda*model.ItemBias[mi])
			model.UserBias[ui] += lr * (e - cfg.Lambda*model.UserBias[ui])
			g := lr * (e + cfg.Lambda*d2)
			for k := range a {
				diff := a[k] - b[k]
				a[k] -= g * diff
				b[k] += g * diff
			}
		}
		return sumSq
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochSumSq float64
		for s := 0; s < P; s++ {
			sums := make([]float64, P)
			var wg sync.WaitGroup
			for p := 0; p < P; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					bucket := buckets[p*P+(p+s)%P]
					seed := cfg.Seed + int64(epoch)*10007 + int64(s)*101 + int64(p)
					sums[p] = processBucket(bucket, lr, seed)
				}(p)
			}
			wg.Wait()
			for _, v := range sums {
				epochSumSq += v
			}
		}
		stats.EpochRMSE = append(stats.EpochRMSE, math.Sqrt(epochSumSq/float64(len(data.Ratings))))
		lr *= cfg.LearnRateDecay
	}
	return model, stats, nil
}
