// Package space builds perceptual spaces from Social-Web rating data.
//
// A perceptual space (paper §3) is a d-dimensional coordinate space in
// which every item and every user is a point; a user's predicted rating of
// an item falls with the squared Euclidean distance between their points:
//
//	r̂(m,u) = μ + δm + δu − ‖a_m − b_u‖²
//
// where μ is the global rating mean and δm, δu are item and user biases.
// The model parameters are fit to observed ratings by stochastic gradient
// descent on the regularized squared error of §3.3. The package also
// implements the classic dot-product SVD factor model (with both SGD and
// ALS trainers) as the baseline the paper contrasts against: effective for
// rating prediction, but without a meaningful item–item distance.
package space

import (
	"fmt"
	"math/rand"
)

// Rating is one ⟨item, user, score⟩ triple.
type Rating struct {
	Item  int32
	User  int32
	Score float32
}

// Dataset is a collection of ratings over item and user index spaces
// [0, Items) × [0, Users).
type Dataset struct {
	Items   int
	Users   int
	Ratings []Rating
}

// Validate checks index bounds. Training on an invalid dataset would
// silently corrupt memory-adjacent rows, so trainers call this first.
func (d *Dataset) Validate() error {
	if d.Items <= 0 || d.Users <= 0 {
		return fmt.Errorf("space: dataset needs positive Items and Users, got %d×%d", d.Items, d.Users)
	}
	for i, r := range d.Ratings {
		if r.Item < 0 || int(r.Item) >= d.Items {
			return fmt.Errorf("space: rating %d has item %d out of [0,%d)", i, r.Item, d.Items)
		}
		if r.User < 0 || int(r.User) >= d.Users {
			return fmt.Errorf("space: rating %d has user %d out of [0,%d)", i, r.User, d.Users)
		}
	}
	return nil
}

// Mean returns the global mean rating μ, or 0 for an empty dataset.
func (d *Dataset) Mean() float64 {
	if len(d.Ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Ratings {
		s += float64(r.Score)
	}
	return s / float64(len(d.Ratings))
}

// Density is the fraction of the item×user matrix that is observed
// (the paper reports 1–2% for real platforms).
func (d *Dataset) Density() float64 {
	if d.Items == 0 || d.Users == 0 {
		return 0
	}
	return float64(len(d.Ratings)) / (float64(d.Items) * float64(d.Users))
}

// Split partitions the ratings into a training and a held-out set with the
// given holdout fraction, shuffled by rng. Used by cross-validation.
func (d *Dataset) Split(holdout float64, rng *rand.Rand) (train, test *Dataset) {
	idx := rng.Perm(len(d.Ratings))
	nTest := int(holdout * float64(len(d.Ratings)))
	testR := make([]Rating, 0, nTest)
	trainR := make([]Rating, 0, len(d.Ratings)-nTest)
	for i, j := range idx {
		if i < nTest {
			testR = append(testR, d.Ratings[j])
		} else {
			trainR = append(trainR, d.Ratings[j])
		}
	}
	return &Dataset{Items: d.Items, Users: d.Users, Ratings: trainR},
		&Dataset{Items: d.Items, Users: d.Users, Ratings: testR}
}
