package space

import (
	"fmt"
	"math/rand"
	"sort"

	"crowddb/internal/vecmath"
)

// Space is an immutable snapshot of item coordinates — the "perceptual
// space" handed to classifiers and nearest-neighbour queries. It decouples
// consumers from the factor model that produced it.
type Space struct {
	coords *vecmath.Matrix
}

// NewSpace wraps an item-coordinate matrix.
func NewSpace(coords *vecmath.Matrix) *Space { return &Space{coords: coords} }

// FromModel snapshots the item coordinates of a trained factor model.
func FromModel(m Model) *Space {
	out := vecmath.NewMatrix(m.NumItems(), m.Dims())
	for i := 0; i < m.NumItems(); i++ {
		copy(out.Row(i), m.ItemVector(i))
	}
	return &Space{coords: out}
}

// Dims returns the dimensionality.
func (s *Space) Dims() int { return s.coords.Cols }

// NumItems returns the number of items.
func (s *Space) NumItems() int { return s.coords.Rows }

// Vector returns item i's coordinates (a view; callers must not mutate).
func (s *Space) Vector(i int) []float64 { return s.coords.Row(i) }

// Distance returns the Euclidean distance between items i and j.
func (s *Space) Distance(i, j int) float64 {
	return vecmath.Dist(s.coords.Row(i), s.coords.Row(j))
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	Item     int
	Distance float64
}

// NearestNeighbors returns the k items closest to item (excluding itself),
// sorted by ascending distance. It is the machinery behind the paper's
// Table 2. The scan is linear — adequate for catalog-scale item counts.
func (s *Space) NearestNeighbors(item, k int) ([]Neighbor, error) {
	if item < 0 || item >= s.NumItems() {
		return nil, fmt.Errorf("space: item %d out of range [0,%d)", item, s.NumItems())
	}
	if k <= 0 {
		return nil, fmt.Errorf("space: k must be positive, got %d", k)
	}
	q := s.coords.Row(item)
	// Max-heap by distance of size k, kept as a sorted slice (k is small).
	out := make([]Neighbor, 0, k+1)
	for i := 0; i < s.NumItems(); i++ {
		if i == item {
			continue
		}
		d := vecmath.Dist(q, s.coords.Row(i))
		if len(out) == k && d >= out[len(out)-1].Distance {
			continue
		}
		pos := sort.Search(len(out), func(j int) bool { return out[j].Distance > d })
		out = append(out, Neighbor{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Neighbor{Item: i, Distance: d}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out, nil
}

// PairwiseConsensus computes the Pearson correlation between the space's
// item–item distances and an external dissimilarity judgment for the given
// item pairs. The paper reports 0.52 against human consensus (§4.2); the
// experiments reproduce the measurement against synthetic ground truth.
func (s *Space) PairwiseConsensus(pairs [][2]int, dissimilarity []float64) (float64, error) {
	if len(pairs) != len(dissimilarity) {
		return 0, fmt.Errorf("space: %d pairs but %d judgments", len(pairs), len(dissimilarity))
	}
	if len(pairs) == 0 {
		return 0, nil
	}
	dists := make([]float64, len(pairs))
	for i, p := range pairs {
		if p[0] < 0 || p[0] >= s.NumItems() || p[1] < 0 || p[1] >= s.NumItems() {
			return 0, fmt.Errorf("space: pair %v out of range", p)
		}
		dists[i] = s.Distance(p[0], p[1])
	}
	return vecmath.Pearson(dists, dissimilarity), nil
}

// CVResult reports one cross-validation configuration's held-out error.
type CVResult struct {
	Dims     int
	Lambda   float64
	TestRMSE float64
}

// CrossValidate evaluates the Euclidean model over a hyperparameter grid
// using holdout validation, returning results sorted by ascending RMSE.
// This is the procedure the paper uses to choose d and λ (§3.3) — and to
// observe that the choices barely matter beyond "d large enough".
func CrossValidate(data *Dataset, base Config, dims []int, lambdas []float64, holdout float64) ([]CVResult, error) {
	if holdout <= 0 || holdout >= 1 {
		return nil, fmt.Errorf("space: holdout must be in (0,1), got %g", holdout)
	}
	var out []CVResult
	for _, d := range dims {
		for _, lam := range lambdas {
			cfg := base
			cfg.Dims = d
			cfg.Lambda = lam
			// A fixed split per configuration keeps comparisons paired.
			rng := newRand(cfg.Seed)
			train, test := data.Split(holdout, rng)
			model, _, err := TrainEuclidean(train, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, CVResult{Dims: d, Lambda: lam, TestRMSE: model.RMSE(test.Ratings)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TestRMSE != out[j].TestRMSE {
			return out[i].TestRMSE < out[j].TestRMSE
		}
		if out[i].Dims != out[j].Dims {
			return out[i].Dims < out[j].Dims
		}
		return out[i].Lambda < out[j].Lambda
	})
	return out, nil
}

// Spread reports the mean and max pairwise distance over a sample of item
// pairs; useful for diagnosing degenerate (collapsed) spaces in tests.
func (s *Space) Spread(sample int) (mean, max float64) {
	n := s.NumItems()
	if n < 2 {
		return 0, 0
	}
	count := 0
	for i := 0; i < n && count < sample; i++ {
		for j := i + 1; j < n && count < sample; j++ {
			d := s.Distance(i, j)
			mean += d
			if d > max {
				max = d
			}
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return mean / float64(count), max
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
