package space

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowddb/internal/vecmath"
)

// syntheticWorld generates ratings from the exact generative family the
// Euclidean model assumes: items and users placed in a latent space with
// biases, ratings = μ + δm + δu − α·d² + noise, clamped to a star scale.
// Training must then recover a space whose geometry mirrors the latent one.
type syntheticWorld struct {
	data      *Dataset
	itemPos   *vecmath.Matrix // latent positions
	trueDims  int
	clusterOf []int // items come in clusters: recoverable structure
}

func makeWorld(nItems, nUsers, ratingsPerUser, trueDims int, seed int64) *syntheticWorld {
	rng := rand.New(rand.NewSource(seed))
	nClusters := 4
	centers := vecmath.NewMatrix(nClusters, trueDims)
	centers.FillRandom(rng, 2.0)

	itemPos := vecmath.NewMatrix(nItems, trueDims)
	clusterOf := make([]int, nItems)
	itemBias := make([]float64, nItems)
	for i := 0; i < nItems; i++ {
		c := rng.Intn(nClusters)
		clusterOf[i] = c
		row := itemPos.Row(i)
		copy(row, centers.Row(c))
		for k := range row {
			row[k] += rng.NormFloat64() * 0.35
		}
		itemBias[i] = rng.NormFloat64() * 0.4
	}
	userPos := vecmath.NewMatrix(nUsers, trueDims)
	userPos.FillRandom(rng, 2.0)
	userBias := make([]float64, nUsers)
	for u := range userBias {
		userBias[u] = rng.NormFloat64() * 0.3
	}

	const mu = 3.6
	const alpha = 0.25
	var ratings []Rating
	for u := 0; u < nUsers; u++ {
		seen := map[int]bool{}
		for r := 0; r < ratingsPerUser; r++ {
			m := rng.Intn(nItems)
			if seen[m] {
				continue
			}
			seen[m] = true
			d2 := vecmath.SqDist(itemPos.Row(m), userPos.Row(u))
			score := mu + itemBias[m] + userBias[u] - alpha*d2 + rng.NormFloat64()*0.3
			score = vecmath.Clamp(score, 1, 5)
			ratings = append(ratings, Rating{Item: int32(m), User: int32(u), Score: float32(score)})
		}
	}
	return &syntheticWorld{
		data:      &Dataset{Items: nItems, Users: nUsers, Ratings: ratings},
		itemPos:   itemPos,
		trueDims:  trueDims,
		clusterOf: clusterOf,
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Dims = 8
	cfg.Epochs = 30
	return cfg
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{Items: 2, Users: 2, Ratings: []Rating{{Item: 1, User: 1, Score: 3}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Items: 2, Users: 2, Ratings: []Rating{{Item: 2, User: 0, Score: 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range item must fail")
	}
	bad = &Dataset{Items: 2, Users: 2, Ratings: []Rating{{Item: 0, User: -1, Score: 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative user must fail")
	}
	if err := (&Dataset{}).Validate(); err == nil {
		t.Fatal("empty shape must fail")
	}
}

func TestDatasetMeanDensity(t *testing.T) {
	d := &Dataset{Items: 10, Users: 10, Ratings: []Rating{
		{Item: 0, User: 0, Score: 2}, {Item: 1, User: 1, Score: 4},
	}}
	if got := d.Mean(); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := d.Density(); got != 0.02 {
		t.Fatalf("Density = %v", got)
	}
	if (&Dataset{Items: 1, Users: 1}).Mean() != 0 {
		t.Fatal("empty Mean must be 0")
	}
}

func TestDatasetSplit(t *testing.T) {
	w := makeWorld(50, 40, 10, 3, 1)
	rng := rand.New(rand.NewSource(2))
	train, test := w.data.Split(0.25, rng)
	if len(train.Ratings)+len(test.Ratings) != len(w.data.Ratings) {
		t.Fatal("split lost ratings")
	}
	wantTest := int(0.25 * float64(len(w.data.Ratings)))
	if len(test.Ratings) != wantTest {
		t.Fatalf("test size = %d, want %d", len(test.Ratings), wantTest)
	}
}

func TestTrainEuclideanReducesRMSE(t *testing.T) {
	w := makeWorld(120, 200, 30, 3, 3)
	model, stats, err := TrainEuclidean(w.data, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats.EpochRMSE[0], stats.FinalRMSE()
	if last >= first {
		t.Fatalf("training did not reduce RMSE: %v -> %v", first, last)
	}
	if last > 0.6 {
		t.Fatalf("final RMSE = %v, want < 0.6 on model-family data", last)
	}
	// Predictions look like ratings.
	p := model.Predict(0, 0)
	if math.IsNaN(p) || p < -5 || p > 12 {
		t.Fatalf("prediction = %v looks degenerate", p)
	}
}

func TestTrainEuclideanBetterThanBiasOnly(t *testing.T) {
	w := makeWorld(120, 200, 30, 3, 4)
	model, _, err := TrainEuclidean(w.data, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bias-only predictor: μ + δm + δu with δ from per-entity means.
	mu := w.data.Mean()
	itemSum := make([]float64, w.data.Items)
	itemN := make([]int, w.data.Items)
	userSum := make([]float64, w.data.Users)
	userN := make([]int, w.data.Users)
	for _, r := range w.data.Ratings {
		itemSum[r.Item] += float64(r.Score) - mu
		itemN[r.Item]++
	}
	for _, r := range w.data.Ratings {
		userSum[r.User] += float64(r.Score) - mu - itemSum[r.Item]/math.Max(1, float64(itemN[r.Item]))
		userN[r.User]++
	}
	var sumSq float64
	for _, r := range w.data.Ratings {
		pred := mu + itemSum[r.Item]/math.Max(1, float64(itemN[r.Item])) +
			userSum[r.User]/math.Max(1, float64(userN[r.User]))
		e := float64(r.Score) - pred
		sumSq += e * e
	}
	biasRMSE := math.Sqrt(sumSq / float64(len(w.data.Ratings)))
	if model.RMSE(w.data.Ratings) >= biasRMSE {
		t.Fatalf("factor model (%.4f) must beat bias-only (%.4f)",
			model.RMSE(w.data.Ratings), biasRMSE)
	}
}

// The core scientific claim: the learned space groups items by their latent
// cluster, so same-cluster items are closer than cross-cluster items.
func TestEuclideanSpaceRecoversClusters(t *testing.T) {
	w := makeWorld(120, 300, 40, 3, 5)
	model, _, err := TrainEuclidean(w.data, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := FromModel(model)
	rng := rand.New(rand.NewSource(6))
	var within, across []float64
	for k := 0; k < 4000; k++ {
		i, j := rng.Intn(120), rng.Intn(120)
		if i == j {
			continue
		}
		d := sp.Distance(i, j)
		if w.clusterOf[i] == w.clusterOf[j] {
			within = append(within, d)
		} else {
			across = append(across, d)
		}
	}
	mw := vecmath.Mean(within)
	ma := vecmath.Mean(across)
	if mw >= ma*0.8 {
		t.Fatalf("within-cluster mean distance %.3f not clearly below across-cluster %.3f", mw, ma)
	}
}

func TestNearestNeighborsFindClusterSiblings(t *testing.T) {
	w := makeWorld(120, 300, 40, 3, 7)
	model, _, err := TrainEuclidean(w.data, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := FromModel(model)
	hits, total := 0, 0
	for item := 0; item < 40; item++ {
		nns, err := sp.NearestNeighbors(item, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(nns) != 5 {
			t.Fatalf("got %d neighbours", len(nns))
		}
		for i := 1; i < len(nns); i++ {
			if nns[i].Distance < nns[i-1].Distance {
				t.Fatal("neighbours not sorted")
			}
		}
		for _, nb := range nns {
			if nb.Item == item {
				t.Fatal("self in neighbour list")
			}
			total++
			if w.clusterOf[nb.Item] == w.clusterOf[item] {
				hits++
			}
		}
	}
	// Random guessing would hit ~25% (4 clusters). Expect far better.
	if frac := float64(hits) / float64(total); frac < 0.6 {
		t.Fatalf("cluster-sibling fraction = %.2f, want >= 0.6", frac)
	}
}

func TestNearestNeighborsErrors(t *testing.T) {
	sp := NewSpace(vecmath.NewMatrix(3, 2))
	if _, err := sp.NearestNeighbors(-1, 2); err == nil {
		t.Fatal("negative item must fail")
	}
	if _, err := sp.NearestNeighbors(3, 2); err == nil {
		t.Fatal("out-of-range item must fail")
	}
	if _, err := sp.NearestNeighbors(0, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	// k larger than the population returns everyone else.
	nns, err := sp.NearestNeighbors(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nns) != 2 {
		t.Fatalf("len = %d, want 2", len(nns))
	}
}

func TestTrainSVDReducesRMSEAndPredicts(t *testing.T) {
	w := makeWorld(100, 150, 25, 3, 8)
	model, stats, err := TrainSVD(w.data, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalRMSE() >= stats.EpochRMSE[0] {
		t.Fatal("SVD training did not reduce RMSE")
	}
	if rmse := model.RMSE(w.data.Ratings); rmse > 0.7 {
		t.Fatalf("SVD RMSE = %v", rmse)
	}
}

func TestTrainSVDALSConverges(t *testing.T) {
	w := makeWorld(60, 80, 20, 3, 9)
	cfg := smallConfig()
	cfg.Dims = 4
	cfg.Epochs = 8
	model, stats, err := TrainSVDALS(w.data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalRMSE() > stats.EpochRMSE[0] {
		t.Fatalf("ALS RMSE rose: %v -> %v", stats.EpochRMSE[0], stats.FinalRMSE())
	}
	if rmse := model.RMSE(w.data.Ratings); rmse > 0.8 {
		t.Fatalf("ALS RMSE = %v", rmse)
	}
}

func TestTrainValidation(t *testing.T) {
	w := makeWorld(10, 10, 3, 2, 10)
	bad := smallConfig()
	bad.Dims = 0
	if _, _, err := TrainEuclidean(w.data, bad); err == nil {
		t.Fatal("Dims=0 must fail")
	}
	bad = smallConfig()
	bad.Epochs = 0
	if _, _, err := TrainEuclidean(w.data, bad); err == nil {
		t.Fatal("Epochs=0 must fail")
	}
	bad = smallConfig()
	bad.LearnRate = 0
	if _, _, err := TrainSVD(w.data, bad); err == nil {
		t.Fatal("LearnRate=0 must fail")
	}
	bad = smallConfig()
	bad.Lambda = -1
	if _, _, err := TrainSVD(w.data, bad); err == nil {
		t.Fatal("negative Lambda must fail")
	}
	empty := &Dataset{Items: 5, Users: 5}
	if _, _, err := TrainEuclidean(empty, smallConfig()); err == nil {
		t.Fatal("empty ratings must fail")
	}
	if _, _, err := TrainSVDALS(empty, smallConfig()); err == nil {
		t.Fatal("ALS empty ratings must fail")
	}
	invalid := &Dataset{Items: 2, Users: 2, Ratings: []Rating{{Item: 5, User: 0}}}
	if _, _, err := TrainEuclidean(invalid, smallConfig()); err == nil {
		t.Fatal("invalid dataset must fail")
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	w := makeWorld(40, 60, 15, 2, 11)
	cfg := smallConfig()
	cfg.Epochs = 5
	m1, _, err := TrainEuclidean(w.data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := TrainEuclidean(w.data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Items.Data {
		if m1.Items.Data[i] != m2.Items.Data[i] {
			t.Fatal("equal seeds must give identical models")
		}
	}
}

func TestCrossValidate(t *testing.T) {
	w := makeWorld(80, 120, 20, 3, 12)
	cfg := smallConfig()
	cfg.Epochs = 10
	results, err := CrossValidate(w.data, cfg, []int{2, 8}, []float64{0.02}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].TestRMSE < results[i-1].TestRMSE {
			t.Fatal("results not sorted by RMSE")
		}
	}
	if _, err := CrossValidate(w.data, cfg, []int{2}, []float64{0}, 1.5); err == nil {
		t.Fatal("bad holdout must fail")
	}
}

func TestPairwiseConsensus(t *testing.T) {
	coords := vecmath.NewMatrix(3, 2)
	copy(coords.Row(1), []float64{1, 0})
	copy(coords.Row(2), []float64{5, 0})
	sp := NewSpace(coords)
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	// External dissimilarity perfectly aligned with distance.
	r, err := sp.PairwiseConsensus(pairs, []float64{1, 5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Fatalf("consensus = %v, want ≈ 1", r)
	}
	if _, err := sp.PairwiseConsensus(pairs, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := sp.PairwiseConsensus([][2]int{{0, 9}}, []float64{1}); err == nil {
		t.Fatal("out-of-range pair must fail")
	}
	if r, err := sp.PairwiseConsensus(nil, nil); err != nil || r != 0 {
		t.Fatal("empty input must return 0, nil")
	}
}

func TestSpread(t *testing.T) {
	coords := vecmath.NewMatrix(3, 1)
	coords.Set(1, 0, 3)
	coords.Set(2, 0, 4)
	sp := NewSpace(coords)
	mean, max := sp.Spread(100)
	if max != 4 {
		t.Fatalf("max = %v", max)
	}
	if math.Abs(mean-(3.0+4.0+1.0)/3) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	tiny := NewSpace(vecmath.NewMatrix(1, 1))
	if m, x := tiny.Spread(10); m != 0 || x != 0 {
		t.Fatal("single-item spread must be 0")
	}
}

func TestGaussSolve(t *testing.T) {
	A := vecmath.NewMatrix(3, 3)
	copy(A.Data, []float64{2, 1, 0, 1, 3, 1, 0, 1, 2})
	b := []float64{3, 5, 3}
	x := make([]float64, 3)
	if !gaussSolve(A.Clone(), append([]float64(nil), b...), x) {
		t.Fatal("solve failed")
	}
	// Verify A·x = b.
	A2 := vecmath.NewMatrix(3, 3)
	copy(A2.Data, []float64{2, 1, 0, 1, 3, 1, 0, 1, 2})
	got := A2.MulVec(x, nil)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-9 {
			t.Fatalf("A·x = %v, want %v", got, b)
		}
	}
	// Singular matrix must be reported.
	S := vecmath.NewMatrix(2, 2)
	copy(S.Data, []float64{1, 2, 2, 4})
	if gaussSolve(S, []float64{1, 2}, make([]float64, 2)) {
		t.Fatal("singular system must return false")
	}
}

// Property: gaussSolve solutions satisfy the original system for random
// well-conditioned matrices.
func TestGaussSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		A := vecmath.NewMatrix(n, n)
		A.FillRandom(rng, 1)
		for i := 0; i < n; i++ {
			A.Set(i, i, A.At(i, i)+3) // diagonally dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if !gaussSolve(A.Clone(), append([]float64(nil), b...), x) {
			return false
		}
		got := A.MulVec(x, nil)
		for i := range b {
			if math.Abs(got[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFromModelSnapshotIsolation(t *testing.T) {
	w := makeWorld(20, 30, 10, 2, 13)
	cfg := smallConfig()
	cfg.Epochs = 2
	model, _, err := TrainEuclidean(w.data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := FromModel(model)
	before := sp.Vector(0)[0]
	model.Items.Row(0)[0] += 100
	if sp.Vector(0)[0] != before {
		t.Fatal("FromModel must deep-copy coordinates")
	}
}
